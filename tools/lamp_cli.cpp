// lamp-cli — client and replay harness for the lampd scheduling daemon.
//
// Client mode (talks to a running daemon over its Unix socket):
//
//   lamp-cli --socket=PATH [request options] <benchmark-name | file.lamp>
//   lamp-cli --socket=PATH --stats [--format=json|prometheus]
//
//   --stats prints the daemon's metrics registry. The default format is
//   the raw NDJSON response; --format=prometheus prints the Prometheus
//   text exposition (decoded from the response's "prometheus" field),
//   ready to pipe into a node_exporter textfile or promtool.
//
//   request options: --method=hls|base|map --ii=N --tcp=NS --alpha=A
//   --beta=B --k=K --time-limit=SEC --deadline-ms=MS --paper-scale
//   --no-cache --id=STR
//
//   Prints the raw NDJSON response line; exit 0 iff the response has
//   "ok": true.
//
// Replay mode (spawns its own `lampd --stdio`, drives it through a
// recorded request trace, checks the cache behaviour):
//
//   lamp-cli --exec=PATH/TO/lampd --replay=TRACE.jsonl
//            [--passes=2] [--expect-warm-hit-ratio=0.95]
//            [--cache-dir=DIR] [--workers=N]
//
//   Replays the trace --passes times through ONE daemon process and
//   fails (exit 1) unless, in the final pass, at least the expected
//   fraction of requests is served from the solution cache AND every
//   cached result is bit-identical to the first pass's result for the
//   same request id. This is the ctest target `svc_replay_cache`.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/socket.h"

using namespace lamp;
using util::Json;

namespace {

struct Args {
  std::string socketPath;
  std::string execPath;
  std::string replayPath;
  int passes = 2;
  double expectWarmHitRatio = 0.95;
  std::string cacheDir;
  int workers = 0;
  bool stats = false;
  std::string statsFormat;  // "", "json" or "prometheus"

  // Request options (client mode).
  std::string input;
  std::string id = "cli";
  std::string method;
  int ii = 0;
  double tcp = 0.0, alpha = -1.0, beta = -1.0, timeLimit = 0.0;
  int k = 0;
  double deadlineMs = 0.0;
  bool noCache = false;
  bool paperScale = false;
};

bool parseArgs(int argc, char** argv, Args& a, std::string& err) {
  const auto valueOf = [](const std::string& s) {
    const auto eq = s.find('=');
    return eq == std::string::npos ? std::string() : s.substr(eq + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--socket=", 0) == 0) {
      a.socketPath = valueOf(s);
    } else if (s.rfind("--exec=", 0) == 0) {
      a.execPath = valueOf(s);
    } else if (s.rfind("--replay=", 0) == 0) {
      a.replayPath = valueOf(s);
    } else if (s.rfind("--passes=", 0) == 0) {
      a.passes = std::stoi(valueOf(s));
    } else if (s.rfind("--expect-warm-hit-ratio=", 0) == 0) {
      a.expectWarmHitRatio = std::stod(valueOf(s));
    } else if (s.rfind("--cache-dir=", 0) == 0) {
      a.cacheDir = valueOf(s);
    } else if (s.rfind("--workers=", 0) == 0) {
      a.workers = std::stoi(valueOf(s));
    } else if (s == "--stats") {
      a.stats = true;
    } else if (s.rfind("--format=", 0) == 0) {
      a.statsFormat = valueOf(s);
      if (a.statsFormat != "json" && a.statsFormat != "prometheus") {
        err = "--format must be json or prometheus";
        return false;
      }
    } else if (s.rfind("--id=", 0) == 0) {
      a.id = valueOf(s);
    } else if (s.rfind("--method=", 0) == 0) {
      a.method = valueOf(s);
    } else if (s.rfind("--ii=", 0) == 0) {
      a.ii = std::stoi(valueOf(s));
    } else if (s.rfind("--tcp=", 0) == 0) {
      a.tcp = std::stod(valueOf(s));
    } else if (s.rfind("--alpha=", 0) == 0) {
      a.alpha = std::stod(valueOf(s));
    } else if (s.rfind("--beta=", 0) == 0) {
      a.beta = std::stod(valueOf(s));
    } else if (s.rfind("--k=", 0) == 0) {
      a.k = std::stoi(valueOf(s));
    } else if (s.rfind("--time-limit=", 0) == 0) {
      a.timeLimit = std::stod(valueOf(s));
    } else if (s.rfind("--deadline-ms=", 0) == 0) {
      a.deadlineMs = std::stod(valueOf(s));
    } else if (s == "--no-cache") {
      a.noCache = true;
    } else if (s == "--paper-scale") {
      a.paperScale = true;
    } else if (s.rfind("--", 0) == 0) {
      err = "unknown option " + s;
      return false;
    } else if (a.input.empty()) {
      a.input = s;
    } else {
      err = "multiple inputs given";
      return false;
    }
  }
  const bool replay = !a.replayPath.empty();
  if (replay && a.execPath.empty()) {
    err = "--replay requires --exec=PATH/TO/lampd";
    return false;
  }
  if (!replay && a.socketPath.empty()) {
    err = "pass --socket=PATH (client mode) or --exec + --replay";
    return false;
  }
  if (!replay && !a.stats && a.input.empty()) {
    err = "no input; pass a benchmark name or a .lamp graph file";
    return false;
  }
  if (!a.statsFormat.empty() && !a.stats) {
    err = "--format is only valid with --stats";
    return false;
  }
  return true;
}

std::string buildRequest(const Args& a, std::string& err) {
  Json req = Json::object();
  req.set("id", Json::string(a.id));
  if (a.stats) {
    req.set("cmd", Json::string("stats"));
    if (!a.statsFormat.empty()) {
      req.set("format", Json::string(a.statsFormat));
    }
    return req.dump();
  }
  // A readable file is an inline graph; anything else is assumed to be a
  // built-in benchmark name (the daemon validates it).
  std::ifstream in(a.input);
  if (in) {
    std::stringstream ss;
    ss << in.rdbuf();
    req.set("graph", Json::string(ss.str()));
  } else {
    req.set("benchmark", Json::string(a.input));
  }
  if (!a.method.empty()) req.set("method", Json::string(a.method));
  Json options = Json::object();
  if (a.ii > 0) options.set("ii", Json::integer(a.ii));
  if (a.tcp > 0) options.set("tcpNs", Json::number(a.tcp));
  if (a.alpha >= 0) options.set("alpha", Json::number(a.alpha));
  if (a.beta >= 0) options.set("beta", Json::number(a.beta));
  if (a.k > 0) options.set("k", Json::integer(a.k));
  if (a.timeLimit > 0) options.set("timeLimitSeconds", Json::number(a.timeLimit));
  if (options.members().size() > 0) req.set("options", std::move(options));
  if (a.deadlineMs > 0) req.set("deadlineMs", Json::number(a.deadlineMs));
  if (a.noCache) req.set("noCache", Json::boolean(true));
  if (a.paperScale) req.set("paperScale", Json::boolean(true));
  (void)err;
  return req.dump();
}

int clientMode(const Args& a) {
  std::string err;
  const std::string request = buildRequest(a, err);
  const int fd = util::connectUnixSocket(a.socketPath, err);
  if (fd < 0) {
    std::cerr << "lamp-cli: " << err << "\n";
    return 1;
  }
  util::LineChannel channel(fd);
  std::string response;
  const bool ok = channel.writeLine(request) && channel.readLine(response);
  util::closeFd(fd);
  if (!ok) {
    std::cerr << "lamp-cli: daemon hung up\n";
    return 1;
  }
  const auto doc = Json::parse(response);
  const bool responseOk = doc && doc->isObject() &&
                          doc->find("ok") != nullptr &&
                          doc->find("ok")->asBool();
  // Prometheus text rides the NDJSON protocol as one string field;
  // unwrap it so the output is directly scrapeable.
  const Json* prom =
      responseOk && doc->isObject() ? doc->find("prometheus") : nullptr;
  if (a.statsFormat == "prometheus" && prom != nullptr && prom->isString()) {
    std::cout << prom->asString();
  } else {
    std::cout << response << "\n";
  }
  return responseOk ? 0 : 1;
}

// --- replay mode -------------------------------------------------------------

struct Daemon {
  pid_t pid = -1;
  int toChild = -1;    // write requests here
  int fromChild = -1;  // read responses here
};

bool spawnDaemon(const Args& a, Daemon& d, std::string& err) {
  int inPipe[2], outPipe[2];
  if (pipe(inPipe) != 0 || pipe(outPipe) != 0) {
    err = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    err = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid == 0) {
    dup2(inPipe[0], STDIN_FILENO);
    dup2(outPipe[1], STDOUT_FILENO);
    close(inPipe[0]);
    close(inPipe[1]);
    close(outPipe[0]);
    close(outPipe[1]);
    std::vector<std::string> argvStr = {a.execPath, "--stdio", "--quiet"};
    if (!a.cacheDir.empty()) argvStr.push_back("--cache-dir=" + a.cacheDir);
    if (a.workers > 0) {
      argvStr.push_back("--workers=" + std::to_string(a.workers));
    }
    std::vector<char*> argvRaw;
    for (std::string& s : argvStr) argvRaw.push_back(s.data());
    argvRaw.push_back(nullptr);
    execv(a.execPath.c_str(), argvRaw.data());
    std::perror("lamp-cli: execv");
    _exit(127);
  }
  close(inPipe[0]);
  close(outPipe[1]);
  d.pid = pid;
  d.toChild = inPipe[1];
  d.fromChild = outPipe[0];
  return true;
}

int replayMode(const Args& a) {
  std::ifstream trace(a.replayPath);
  if (!trace) {
    std::cerr << "lamp-cli: cannot read trace " << a.replayPath << "\n";
    return 1;
  }
  std::vector<std::string> requests;
  std::string line;
  while (std::getline(trace, line)) {
    if (!line.empty() && line[0] != '#') requests.push_back(line);
  }
  if (requests.empty()) {
    std::cerr << "lamp-cli: empty trace\n";
    return 1;
  }

  Daemon d;
  std::string err;
  if (!spawnDaemon(a, d, err)) {
    std::cerr << "lamp-cli: " << err << "\n";
    return 1;
  }
  util::LineChannel out(d.toChild);
  util::LineChannel in(d.fromChild);

  bool failed = false;
  // Request id -> result serialization of the pass that solved it.
  std::map<std::string, std::string> firstResults;
  std::size_t finalHits = 0, finalRequests = 0;

  for (int pass = 1; pass <= a.passes && !failed; ++pass) {
    for (const std::string& req : requests) {
      if (!out.writeLine(req)) {
        std::cerr << "lamp-cli: write to daemon failed\n";
        failed = true;
        break;
      }
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < requests.size() && !failed; ++i) {
      std::string response;
      if (!in.readLine(response)) {
        std::cerr << "lamp-cli: daemon hung up mid-pass\n";
        failed = true;
        break;
      }
      const auto doc = Json::parse(response);
      if (!doc || !doc->isObject()) {
        std::cerr << "lamp-cli: unparsable response: " << response << "\n";
        failed = true;
        break;
      }
      const Json* ok = doc->find("ok");
      if (ok == nullptr || !ok->asBool()) {
        std::cerr << "lamp-cli: request failed in pass " << pass << ": "
                  << response << "\n";
        failed = true;
        break;
      }
      const Json* cache = doc->find("cache");
      const Json* id = doc->find("id");
      const Json* result = doc->find("result");
      const std::string idText = id ? id->asString() : "";
      const std::string resultText = result ? result->dump() : "";
      if (cache != nullptr && cache->asString() == "hit") {
        ++hits;
        // Bit-identity: a hit must reproduce the originally solved
        // result exactly, byte for byte.
        const auto it = firstResults.find(idText);
        if (it != firstResults.end() && it->second != resultText) {
          std::cerr << "lamp-cli: cache hit for id '" << idText
                    << "' differs from the first-pass result\n";
          failed = true;
          break;
        }
      }
      firstResults.emplace(idText, resultText);
    }
    if (pass == a.passes) {
      finalHits = hits;
      finalRequests = requests.size();
    }
    std::cerr << "lamp-cli: pass " << pass << "/" << a.passes << ": " << hits
              << "/" << requests.size() << " served from cache\n";
  }

  close(d.toChild);  // EOF -> daemon exits
  close(d.fromChild);
  int status = 0;
  waitpid(d.pid, &status, 0);
  if (failed) return 1;
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::cerr << "lamp-cli: daemon exited abnormally\n";
    return 1;
  }
  const double ratio =
      finalRequests == 0
          ? 0.0
          : static_cast<double>(finalHits) / static_cast<double>(finalRequests);
  if (ratio + 1e-9 < a.expectWarmHitRatio) {
    std::cerr << "lamp-cli: final-pass cache hit ratio " << ratio
              << " below expected " << a.expectWarmHitRatio << "\n";
    return 1;
  }
  std::cerr << "lamp-cli: replay ok (final-pass hit ratio " << ratio << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  std::string err;
  if (!parseArgs(argc, argv, a, err)) {
    std::cerr << "lamp-cli: " << err << "\n";
    return 1;
  }
  return a.replayPath.empty() ? clientMode(a) : replayMode(a);
}
