#!/usr/bin/env python3
"""Diff a BENCH_cutenum.json against the committed baseline.

Advisory by default (mirrors tools/run-tidy.sh): regressions are printed
but the exit code stays 0 so the ctest lane never fails on machine noise
— pass --strict to turn findings into a non-zero exit for CI lanes that
want to gate on it.

Modes:
  --current FILE   compare an existing BENCH_cutenum.json
  --bench BIN      run the micro_cutenum binary into a scratch dir first
                   (what the bench_cutenum_regression ctest does)

A timing row regresses when msPerIter exceeds baseline * --tolerance
(default 2.0 — generous because ctest boxes are noisy and shared).
A quality row regresses when greedyLutCost exceeds the baseline at all:
mapping quality is deterministic, so any increase is a real regression.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def run_bench(binary, scratch):
    env = dict(os.environ)
    env["LAMP_BENCH_OUT"] = scratch
    # Fewer iterations than the default: this is a regression tripwire,
    # not the measurement of record (that one is committed).
    env.setdefault("LAMP_BENCH_ITERS", "15")
    subprocess.run([binary], check=True, env=env, stdout=subprocess.DEVNULL)
    return os.path.join(scratch, "BENCH_cutenum.json")


def main():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--baseline", required=True)
    p.add_argument("--current", help="existing BENCH_cutenum.json to check")
    p.add_argument("--bench", help="micro_cutenum binary to run first")
    p.add_argument("--tolerance", type=float, default=2.0,
                   help="allowed msPerIter ratio vs baseline (default 2.0)")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when a regression is found")
    args = p.parse_args()

    if not os.path.exists(args.baseline):
        print(f"baseline {args.baseline} missing; skipping", file=sys.stderr)
        return 77

    if args.bench:
        with tempfile.TemporaryDirectory() as scratch:
            current = load(run_bench(args.bench, scratch))
            return check(current, load(args.baseline), args)
    if not args.current or not os.path.exists(args.current):
        print("no --current file and no --bench binary; skipping",
              file=sys.stderr)
        return 77
    return check(load(args.current), load(args.baseline), args)


def check(current, baseline, args):
    regressions = []
    checked = 0
    for row in current.get("rows", []):
        base = baseline.get(row.get("benchmark", ""))
        if not isinstance(base, dict):
            continue
        name = f"{row['benchmark']} t={row.get('threads', '?')}"
        ms, base_ms = row.get("msPerIter", 0.0), base.get("msPerIter", 0.0)
        if base_ms > 0 and ms > base_ms * args.tolerance:
            regressions.append(
                f"{name}: {ms:.3f} ms/iter vs baseline {base_ms:.3f} "
                f"(> {args.tolerance:.2f}x)")
        lut, base_lut = row.get("greedyLutCost", -1), base.get(
            "greedyLutCost", -1)
        if base_lut >= 0 and lut > base_lut:
            regressions.append(
                f"{name}: greedy mapping LUT cost {lut} vs baseline "
                f"{base_lut} (quality regression)")
        checked += 1

    if checked == 0:
        print("no overlapping benchmarks between current and baseline; "
              "skipping", file=sys.stderr)
        return 77
    if regressions:
        print(f"{len(regressions)} cut-enumeration regression(s) vs "
              f"{len(baseline)} baseline entries:")
        for r in regressions:
            print(f"  {r}")
        return 1 if args.strict else 0
    print(f"ok: {checked} rows within {args.tolerance:.2f}x of baseline, "
          "no mapping-quality regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
