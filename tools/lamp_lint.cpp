// lamp-lint — standalone pre-solve static analysis of CDFGs.
//
//   lamp-lint [options] <input>
//
//   <input>          a .lamp graph file (ir::writeText format) or a
//                    built-in benchmark name (CLZ, XORR, GFMUL, CORDIC,
//                    MT, AES, RS, DR, GSM)
//   --ii=N           requested initiation interval (default 1)
//   --max-ii=N       largest II the caller would accept; MII bounds in
//                    (ii, max-ii] are Warnings, beyond it Errors.
//                    Default ii+8, matching flow::runFlow's retry window.
//                    Pass --max-ii equal to --ii for a strict lint.
//   --tcp=NS         target clock period in ns (default 10)
//   --k=K            LUT input count for the cone check (default 4)
//   --base           lint for the mapping-agnostic arms (unmappable
//                    cones downgrade from Error to Warning)
//   --paper-scale    use paper-sized benchmark instances
//   --json           machine-readable report on stdout
//   --Werror         treat Warning findings as Errors (exit 1)
//
// Runs every pass in analyze::passRegistry() and prints the findings.
// Exit codes (CI-friendly, like compilers):
//   0  clean — no Errors and no Warnings (Infos allowed)
//   1  at least one Error-severity finding (or any Warning with --Werror)
//   2  Warnings only, no Errors
//   3  usage / input errors
// The same engine gates flow::runFlow and lampd admission, so a clean
// lint means the solver will actually be tried.

#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "analyze/analyze.h"
#include "ir/passes.h"
#include "workloads/workloads.h"

using namespace lamp;

namespace {

struct Args {
  std::string input;
  int ii = 1;
  int maxIi = -1;  // -1: default to ii + 8
  double tcp = 10.0;
  int k = 4;
  bool mappingAware = true;
  bool paperScale = false;
  bool json = false;
  bool werror = false;
};

bool parseArgs(int argc, char** argv, Args& a, std::string& err) {
  const auto valueOf = [](const std::string& s) {
    const auto eq = s.find('=');
    return eq == std::string::npos ? std::string() : s.substr(eq + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--ii=", 0) == 0) {
      a.ii = std::stoi(valueOf(s));
    } else if (s.rfind("--max-ii=", 0) == 0) {
      a.maxIi = std::stoi(valueOf(s));
    } else if (s.rfind("--tcp=", 0) == 0) {
      a.tcp = std::stod(valueOf(s));
    } else if (s.rfind("--k=", 0) == 0) {
      a.k = std::stoi(valueOf(s));
    } else if (s == "--base") {
      a.mappingAware = false;
    } else if (s == "--paper-scale") {
      a.paperScale = true;
    } else if (s == "--json") {
      a.json = true;
    } else if (s == "--Werror") {
      a.werror = true;
    } else if (s.rfind("--", 0) == 0) {
      err = "unknown option " + s;
      return false;
    } else if (a.input.empty()) {
      a.input = s;
    } else {
      err = "multiple inputs given";
      return false;
    }
  }
  if (a.input.empty()) {
    err = "no input; pass a benchmark name or a .lamp graph file";
    return false;
  }
  if (a.ii < 1) {
    err = "--ii must be >= 1";
    return false;
  }
  return true;
}

std::optional<workloads::Benchmark> loadInput(const Args& a,
                                              std::string& err) {
  const auto scale =
      a.paperScale ? workloads::Scale::Paper : workloads::Scale::Default;
  for (auto& bm : workloads::allBenchmarks(scale)) {
    if (bm.name == a.input) return std::move(bm);
  }
  std::ifstream in(a.input);
  if (!in) {
    err = "'" + a.input + "' is neither a benchmark name nor a readable file";
    return std::nullopt;
  }
  auto g = ir::readText(in, &err);
  if (!g) {
    err = "parse error in " + a.input + ": " + err;
    return std::nullopt;
  }
  return workloads::benchmarkFromGraph(std::move(*g), a.input);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  std::string err;
  if (!parseArgs(argc, argv, a, err)) {
    std::cerr << "lamp-lint: " << err << "\n";
    return 3;
  }
  const auto bm = loadInput(a, err);
  if (!bm) {
    std::cerr << "lamp-lint: " << err << "\n";
    return 3;
  }

  analyze::AnalysisOptions ao;
  ao.ii = a.ii;
  ao.maxIi = a.maxIi < 0 ? a.ii + 8 : a.maxIi;
  ao.tcpNs = a.tcp;
  ao.k = a.k;
  ao.mappingAware = a.mappingAware;
  ao.resources = bm->resources;

  const analyze::AnalysisReport report = analyze::analyzeGraph(bm->graph, ao);
  if (a.json) {
    analyze::reportToJson(bm->graph, report).write(std::cout);
    std::cout << "\n";
  } else {
    std::cout << analyze::renderReport(bm->graph, report);
  }
  const std::size_t warnings = report.count(analyze::Severity::Warning);
  if (report.hasErrors() || (a.werror && warnings > 0)) return 1;
  return warnings > 0 ? 2 : 0;
}
