// lampd — the persistent lamp scheduling daemon.
//
//   lampd --socket=PATH [options]   serve a Unix-domain socket
//   lampd --stdio [options]         serve stdin/stdout (tests, replay)
//
//   --cache-dir=DIR      persist the solution cache here (warm restarts
//                        reload every previously solved instance)
//   --workers=N          solver worker threads (default: auto)
//   --queue-cap=N        bounded admission queue depth (default 64);
//                        excess requests are rejected with "overloaded"
//   --max-time-limit=S   clamp per-request solver time limits (default 300)
//   --no-cache           disable the solution cache entirely
//   --quiet              suppress the startup banner
//
// Protocol: newline-delimited JSON (see src/svc/proto.h). Exit code 0 on
// clean shutdown (EOF in stdio mode, SIGINT/SIGTERM in socket mode).

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "svc/server.h"

using namespace lamp;

namespace {

svc::UnixServer* g_server = nullptr;

void onSignal(int) {
  if (g_server != nullptr) g_server->requestStop();
}

}  // namespace

int main(int argc, char** argv) {
  svc::ServiceOptions opts;
  std::string socketPath;
  bool stdio = false;
  bool quiet = false;

  const auto valueOf = [](const std::string& s) {
    const auto eq = s.find('=');
    return eq == std::string::npos ? std::string() : s.substr(eq + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--socket=", 0) == 0) {
      socketPath = valueOf(s);
    } else if (s == "--stdio") {
      stdio = true;
    } else if (s.rfind("--cache-dir=", 0) == 0) {
      opts.cacheDir = valueOf(s);
    } else if (s.rfind("--workers=", 0) == 0) {
      opts.workers = std::atoi(valueOf(s).c_str());
    } else if (s.rfind("--queue-cap=", 0) == 0) {
      opts.queueCap = std::atoi(valueOf(s).c_str());
    } else if (s.rfind("--max-time-limit=", 0) == 0) {
      opts.maxTimeLimitSeconds = std::atof(valueOf(s).c_str());
    } else if (s == "--no-cache") {
      opts.cacheEnabled = false;
    } else if (s == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "lampd: unknown option " << s << "\n";
      return 1;
    }
  }
  if (stdio == !socketPath.empty()) {
    std::cerr << "lampd: pass exactly one of --stdio or --socket=PATH\n";
    return 1;
  }

  svc::Service service(opts);
  if (!quiet) {
    std::cerr << "lampd: " << service.options().workers << " workers, queue cap "
              << service.options().queueCap << ", cache "
              << (opts.cacheEnabled
                      ? (opts.cacheDir.empty() ? "memory" : opts.cacheDir)
                      : "off");
    if (opts.cacheEnabled && !opts.cacheDir.empty()) {
      std::cerr << " (" << service.cache().size() << " entries loaded)";
    }
    std::cerr << "\n";
  }

  if (stdio) {
    const std::size_t n = svc::serveStream(service, std::cin, std::cout);
    if (!quiet) std::cerr << "lampd: served " << n << " requests, exiting\n";
    return 0;
  }

  svc::UnixServer server(service, socketPath);
  std::string error;
  if (!server.listen(&error)) {
    std::cerr << "lampd: " << error << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  if (!quiet) std::cerr << "lampd: listening on " << socketPath << "\n";
  server.run();
  server.stop();
  service.drain();
  if (!quiet) std::cerr << "lampd: shut down\n";
  return 0;
}
