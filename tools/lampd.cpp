// lampd — the persistent lamp scheduling daemon.
//
//   lampd --socket=PATH [options]   serve a Unix-domain socket
//   lampd --stdio [options]         serve stdin/stdout (tests, replay)
//
//   --cache-dir=DIR      persist the solution cache here (warm restarts
//                        reload every previously solved instance)
//   --workers=N          solver worker threads (default: auto)
//   --queue-cap=N        bounded admission queue depth (default 64);
//                        excess requests are rejected with "overloaded"
//   --max-time-limit=S   clamp per-request solver time limits (default 300)
//   --no-cache           disable the solution cache entirely
//   --trace-dir=DIR      enable span tracing; on shutdown write a Chrome
//                        trace-event file lampd-trace-<pid>.json into DIR
//   --log-json           emit one structured NDJSON log line per request
//                        to stderr (request id, cache state, queue wait,
//                        deadline slack)
//   --quiet              suppress the startup banner
//
// Protocol: newline-delimited JSON (see src/svc/proto.h). Exit code 0 on
// clean shutdown (EOF in stdio mode, SIGINT/SIGTERM in socket mode).

#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include <unistd.h>

#include "obs/log.h"
#include "obs/trace.h"
#include "svc/server.h"

using namespace lamp;

namespace {

svc::UnixServer* g_server = nullptr;

void onSignal(int) {
  if (g_server != nullptr) g_server->requestStop();
}

/// Writes the accumulated Chrome trace into `dir` at daemon shutdown.
/// The file name carries the pid so repeated runs never clobber each
/// other's traces.
struct TraceDump {
  std::string dir;
  ~TraceDump() {
    if (dir.empty()) return;
    const std::string path =
        dir + "/lampd-trace-" + std::to_string(::getpid()) + ".json";
    std::ofstream out(path);
    if (out) {
      obs::writeChromeTrace(out);
    } else {
      std::cerr << "lampd: cannot write trace to '" << path << "'\n";
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  svc::ServiceOptions opts;
  std::string socketPath;
  std::string traceDir;
  bool logJson = false;
  bool stdio = false;
  bool quiet = false;

  const auto valueOf = [](const std::string& s) {
    const auto eq = s.find('=');
    return eq == std::string::npos ? std::string() : s.substr(eq + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--socket=", 0) == 0) {
      socketPath = valueOf(s);
    } else if (s == "--stdio") {
      stdio = true;
    } else if (s.rfind("--cache-dir=", 0) == 0) {
      opts.cacheDir = valueOf(s);
    } else if (s.rfind("--workers=", 0) == 0) {
      opts.workers = std::atoi(valueOf(s).c_str());
    } else if (s.rfind("--queue-cap=", 0) == 0) {
      opts.queueCap = std::atoi(valueOf(s).c_str());
    } else if (s.rfind("--max-time-limit=", 0) == 0) {
      opts.maxTimeLimitSeconds = std::atof(valueOf(s).c_str());
    } else if (s == "--no-cache") {
      opts.cacheEnabled = false;
    } else if (s.rfind("--trace-dir=", 0) == 0) {
      traceDir = valueOf(s);
      if (traceDir.empty()) {
        std::cerr << "lampd: --trace-dir needs a directory path\n";
        return 1;
      }
    } else if (s == "--log-json") {
      logJson = true;
    } else if (s == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "lampd: unknown option " << s << "\n";
      return 1;
    }
  }
  if (stdio == !socketPath.empty()) {
    std::cerr << "lampd: pass exactly one of --stdio or --socket=PATH\n";
    return 1;
  }

  TraceDump traceDump{traceDir};
  if (!traceDir.empty()) obs::setTraceEnabled(true);
  if (obs::traceEnabled()) obs::setThreadName("lampd-main");
  if (logJson) obs::setLogSink(&std::cerr);

  svc::Service service(opts);
  if (!quiet) {
    std::cerr << "lampd: " << service.options().workers << " workers, queue cap "
              << service.options().queueCap << ", cache "
              << (opts.cacheEnabled
                      ? (opts.cacheDir.empty() ? "memory" : opts.cacheDir)
                      : "off");
    if (opts.cacheEnabled && !opts.cacheDir.empty()) {
      std::cerr << " (" << service.cache().size() << " entries loaded)";
    }
    std::cerr << "\n";
  }

  if (stdio) {
    const std::size_t n = svc::serveStream(service, std::cin, std::cout);
    if (!quiet) std::cerr << "lampd: served " << n << " requests, exiting\n";
    return 0;
  }

  svc::UnixServer server(service, socketPath);
  std::string error;
  if (!server.listen(&error)) {
    std::cerr << "lampd: " << error << "\n";
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  if (!quiet) std::cerr << "lampd: listening on " << socketPath << "\n";
  server.run();
  server.stop();
  service.drain();
  if (!quiet) std::cerr << "lampd: shut down\n";
  return 0;
}
