// lampc — command-line driver for the lamp flows.
//
//   lampc [options] <input>
//
//   <input>                a .lamp graph file (ir::writeText format) or a
//                          built-in benchmark name (CLZ, XORR, GFMUL,
//                          CORDIC, MT, AES, RS, DR, GSM)
//   --method=hls|base|map|greedy   scheduling arm (default map)
//   --ii=N                 target initiation interval (default 1)
//   --tcp=NS               target clock period in ns (default 10)
//   --k=K                  LUT input count (default 4)
//   --cut-strategy=S       cut ranking: depth|area|support|balanced
//                          (default depth, the historical ordering)
//   --race-strategies      enumerate once per strategy and keep the
//                          database whose greedy covering costs least
//   --cut-threads=N        worker threads for cut enumeration (0 = one
//                          per hardware thread; output is identical at
//                          any thread count)
//   --alpha=A --beta=B     objective weights (default 0.5 / 0.5)
//   --time-limit=SEC       MILP wall-clock cap (default 20)
//   --threads=N            branch & bound worker threads for the MILP
//                          solver (default 0 = auto: one per hardware
//                          thread, capped at 8; 1 = the serial solver)
//   --formulation=compact|literal
//   --emit-verilog[=FILE]  print the scheduled pipeline as Verilog
//   --emit-dot[=FILE]      print the CDFG in GraphViz format
//   --emit-lp[=FILE]       dump the MILP in CPLEX LP format
//   --emit-vcd[=FILE]      simulate 16 iterations and dump a VCD waveform
//   --emit-json[=FILE]     print the flow result as JSON (same serializer
//                          as the lampd service protocol)
//   --emit-schedule        print the per-node schedule
//   --trace-out=FILE       enable the span tracer for the whole run and
//                          write a Chrome trace-event JSON file on exit
//                          (open in Perfetto or chrome://tracing);
//                          LAMP_TRACE=1 enables tracing without a file
//   --export=FILE          write the (possibly folded) graph as .lamp text
//   --fold                 run constant folding before scheduling
//   --simplify             rewrite the graph with bit-level-analysis-proven
//                          simplifications before scheduling (the flow
//                          checks the rewrite by differential simulation;
//                          downstream emitters then describe the
//                          rewritten graph)
//   --emit-analysis[=FILE] print the per-node dataflow summary (known
//                          bits, range, demanded/live masks) as JSON;
//                          also attaches it to --emit-json output
//   --paper-scale          use paper-sized benchmark instances
//   --quiet                suppress the summary report
//   --analyze              run the pre-solve static analysis only (no
//                          solve); exits 1 when it finds Error-severity
//                          diagnostics — see src/analyze/ and lamp-lint
//   --json                 with --analyze, print the report as JSON
//
// Exit code 0 on success, 1 on any failure.

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "flow/flow.h"
#include "flow/flow_json.h"
#include "ir/passes.h"
#include "lp/model.h"
#include "map/area.h"
#include "obs/trace.h"
#include "rtl/verilog.h"
#include "sim/vcd.h"
#include "sched/greedy.h"

using namespace lamp;

namespace {

struct Args {
  std::string input;
  std::string method = "map";
  int ii = 1;
  double tcp = 10.0;
  int k = 4;
  cut::CutStrategy cutStrategy = cut::CutStrategy::DepthAware;
  bool raceStrategies = false;
  int cutThreads = 1;
  double alpha = 0.5, beta = 0.5;
  double timeLimit = 20.0;
  int threads = 0;  // auto
  std::string formulation = "compact";
  std::optional<std::string> emitVerilog, emitDot, emitLp, emitVcd, emitJson;
  std::optional<std::string> emitAnalysis;
  std::optional<std::string> exportGraph;
  std::string traceOut;
  bool emitSchedule = false;
  bool fold = false;
  bool simplify = false;
  bool paperScale = false;
  bool quiet = false;
  bool analyze = false;
  bool json = false;
};

bool parseArgs(int argc, char** argv, Args& a, std::string& err) {
  const auto valueOf = [](const std::string& s) {
    const auto eq = s.find('=');
    return eq == std::string::npos ? std::string() : s.substr(eq + 1);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--method=", 0) == 0) {
      a.method = valueOf(s);
    } else if (s.rfind("--ii=", 0) == 0) {
      a.ii = std::stoi(valueOf(s));
    } else if (s.rfind("--tcp=", 0) == 0) {
      a.tcp = std::stod(valueOf(s));
    } else if (s.rfind("--k=", 0) == 0) {
      a.k = std::stoi(valueOf(s));
    } else if (s.rfind("--cut-strategy=", 0) == 0) {
      if (!cut::parseCutStrategy(valueOf(s), a.cutStrategy)) {
        err = "unknown cut strategy '" + valueOf(s) +
              "' (want depth|area|support|balanced)";
        return false;
      }
    } else if (s == "--race-strategies") {
      a.raceStrategies = true;
    } else if (s.rfind("--cut-threads=", 0) == 0) {
      a.cutThreads = std::stoi(valueOf(s));
    } else if (s.rfind("--alpha=", 0) == 0) {
      a.alpha = std::stod(valueOf(s));
    } else if (s.rfind("--beta=", 0) == 0) {
      a.beta = std::stod(valueOf(s));
    } else if (s.rfind("--time-limit=", 0) == 0) {
      a.timeLimit = std::stod(valueOf(s));
    } else if (s.rfind("--threads=", 0) == 0) {
      a.threads = std::stoi(valueOf(s));
    } else if (s.rfind("--formulation=", 0) == 0) {
      a.formulation = valueOf(s);
    } else if (s == "--emit-verilog" || s.rfind("--emit-verilog=", 0) == 0) {
      a.emitVerilog = valueOf(s);
    } else if (s == "--emit-dot" || s.rfind("--emit-dot=", 0) == 0) {
      a.emitDot = valueOf(s);
    } else if (s == "--emit-lp" || s.rfind("--emit-lp=", 0) == 0) {
      a.emitLp = valueOf(s);
    } else if (s == "--emit-vcd" || s.rfind("--emit-vcd=", 0) == 0) {
      a.emitVcd = valueOf(s);
    } else if (s == "--emit-json" || s.rfind("--emit-json=", 0) == 0) {
      a.emitJson = valueOf(s);
    } else if (s == "--emit-analysis" || s.rfind("--emit-analysis=", 0) == 0) {
      a.emitAnalysis = valueOf(s);
    } else if (s == "--emit-schedule") {
      a.emitSchedule = true;
    } else if (s.rfind("--trace-out=", 0) == 0) {
      a.traceOut = valueOf(s);
      if (a.traceOut.empty()) {
        err = "--trace-out needs a file path";
        return false;
      }
    } else if (s == "--fold") {
      a.fold = true;
    } else if (s == "--simplify") {
      a.simplify = true;
    } else if (s.rfind("--export=", 0) == 0) {
      a.exportGraph = valueOf(s);
    } else if (s == "--paper-scale") {
      a.paperScale = true;
    } else if (s == "--quiet") {
      a.quiet = true;
    } else if (s == "--analyze") {
      a.analyze = true;
    } else if (s == "--json") {
      a.json = true;
    } else if (s.rfind("--", 0) == 0) {
      err = "unknown option " + s;
      return false;
    } else if (a.input.empty()) {
      a.input = s;
    } else {
      err = "multiple inputs given";
      return false;
    }
  }
  if (a.input.empty()) {
    err = "no input; pass a benchmark name or a .lamp graph file";
    return false;
  }
  return true;
}

std::optional<workloads::Benchmark> loadInput(const Args& a,
                                              std::string& err) {
  const auto scale = a.paperScale ? workloads::Scale::Paper
                                  : workloads::Scale::Default;
  for (auto& bm : workloads::allBenchmarks(scale)) {
    if (bm.name == a.input) return std::move(bm);
  }
  std::ifstream in(a.input);
  if (!in) {
    err = "'" + a.input + "' is neither a benchmark name nor a readable file";
    return std::nullopt;
  }
  auto g = ir::readText(in, &err);
  if (!g) {
    err = "parse error in " + a.input + ": " + err;
    return std::nullopt;
  }
  return workloads::benchmarkFromGraph(std::move(*g), a.input);
}

/// Writes the Chrome trace on every exit path (including early errors),
/// so a failed run still leaves its partial trace behind.
struct TraceDump {
  std::string path;
  ~TraceDump() {
    if (path.empty()) return;
    std::ofstream out(path);
    if (out) {
      obs::writeChromeTrace(out);
    } else {
      std::cerr << "lampc: cannot write trace to '" << path << "'\n";
    }
  }
};

void writeTo(const std::optional<std::string>& path,
             const std::function<void(std::ostream&)>& fn) {
  if (path.has_value() && !path->empty()) {
    std::ofstream out(*path);
    fn(out);
  } else {
    fn(std::cout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  std::string err;
  if (!parseArgs(argc, argv, a, err)) {
    std::cerr << "lampc: " << err << "\n";
    return 1;
  }
  TraceDump traceDump{a.traceOut};
  if (!a.traceOut.empty()) obs::setTraceEnabled(true);
  if (obs::traceEnabled()) obs::setThreadName("lampc-main");

  auto bm = loadInput(a, err);
  if (!bm) {
    std::cerr << "lampc: " << err << "\n";
    return 1;
  }

  if (a.fold) {
    ir::FoldStats st;
    const std::size_t beforeNodes = bm->graph.size();
    bm->graph = ir::foldConstants(bm->graph, &st);
    // Input ids may shift; regenerate the frame maker over the new ids.
    bm->makeInputs =
        workloads::benchmarkFromGraph(bm->graph, bm->description).makeInputs;
    if (!a.quiet) {
      std::cerr << "fold: " << beforeNodes << " -> " << bm->graph.size()
                << " nodes (" << st.folded << " folded, " << st.forwarded
                << " forwarded)\n";
    }
  }

  if (a.exportGraph) {
    writeTo(a.exportGraph,
            [&](std::ostream& os) { ir::writeText(os, bm->graph); });
  }

  if (a.emitDot) {
    writeTo(a.emitDot, [&](std::ostream& os) { ir::writeDot(os, bm->graph); });
    if (a.method.empty()) return 0;
  }

  flow::FlowOptions opts;
  opts.ii = a.ii;
  opts.tcpNs = a.tcp;
  opts.alpha = a.alpha;
  opts.beta = a.beta;
  opts.cuts.k = a.k;
  opts.cuts.strategy = a.cutStrategy;
  opts.cuts.threads = a.cutThreads;
  opts.raceCutStrategies = a.raceStrategies;
  opts.solverTimeLimitSeconds = a.timeLimit;
  opts.solverThreads = a.threads;
  opts.simplify = a.simplify;
  opts.emitAnalysis = a.emitAnalysis.has_value();

  if (a.analyze) {
    flow::Method m = flow::Method::MilpMap;
    if (a.method != "greedy" && !flow::parseMethodToken(a.method, m)) {
      std::cerr << "lampc: unknown method '" << a.method << "'\n";
      return 1;
    }
    const analyze::AnalysisReport report =
        analyze::analyzeGraph(bm->graph, flow::analysisOptions(*bm, m, opts));
    if (a.json) {
      analyze::reportToJson(bm->graph, report).write(std::cout);
      std::cout << "\n";
    } else {
      std::cout << analyze::renderReport(bm->graph, report);
    }
    return report.hasErrors() ? 1 : 0;
  }

  flow::FlowResult result;
  flow::Method flowMethod;
  if (flow::parseMethodToken(a.method, flowMethod)) {
    result = flow::runFlow(*bm, flowMethod, opts);
  } else if (a.method == "greedy") {
    const auto db = cut::enumerateCuts(bm->graph, opts.cuts);
    sched::SdcOptions go;
    go.tcpNs = a.tcp;
    go.resources = bm->resources;
    sched::SdcResult r;
    for (go.ii = a.ii; go.ii <= a.ii + 8; ++go.ii) {
      r = sched::greedyMapSchedule(bm->graph, db, opts.delays, go);
      if (r.success) break;
    }
    if (!r.success) {
      std::cerr << "lampc: greedy scheduling failed: " << r.error << "\n";
      return 1;
    }
    result.success = true;
    result.method = flow::Method::MilpMap;
    result.schedule = r.schedule;
    result.area = map::evaluate(bm->graph, r.schedule, opts.delays);
  } else {
    std::cerr << "lampc: unknown method '" << a.method << "'\n";
    return 1;
  }

  if (!result.success) {
    std::cerr << "lampc: flow failed: " << result.error << "\n";
    return 1;
  }

  // With --simplify the schedule indexes the rewritten graph; every
  // graph-paired emitter below must use it, and NodeId-keyed input
  // frames must be routed through the rewrite's node map.
  const ir::Graph& sg = result.scheduleGraph(bm->graph);
  const auto makeFrames = [&](std::uint64_t count) {
    std::vector<sim::InputFrame> frames;
    for (std::uint64_t k = 0; k < count; ++k) {
      sim::InputFrame f = bm->makeInputs(k, 1);
      if (!result.simplifyMap.empty()) {
        sim::InputFrame r;
        for (const auto& [id, v] : f) {
          if (id < result.simplifyMap.size() &&
              result.simplifyMap[id] != ir::kNoNode) {
            r[result.simplifyMap[id]] = v;
          }
        }
        f = std::move(r);
      }
      frames.push_back(std::move(f));
    }
    return frames;
  };
  if (a.simplify && !a.quiet) {
    std::cerr << "simplify: " << bm->graph.size() << " -> " << sg.size()
              << " nodes\n";
  }

  if (a.emitAnalysis) {
    writeTo(a.emitAnalysis, [&](std::ostream& os) {
      analyze::dataflowToJson(result.analysis).write(os);
      os << "\n";
    });
  }

  if (a.emitJson) {
    util::Json doc = util::Json::object();
    doc.set("benchmark", util::Json::string(bm->name));
    doc.set("method", util::Json::string(a.method));
    doc.set("result", flow::resultToJson(result));
    writeTo(a.emitJson, [&](std::ostream& os) {
      doc.write(os);
      os << "\n";
    });
  }

  if (!a.quiet) {
    std::cout << bm->name << ": " << bm->graph.size() << " nodes, method "
              << a.method << ", II=" << result.schedule.ii << "\n"
              << "  LUTs " << result.area.luts << ", FFs " << result.area.ffs
              << ", stages " << result.area.stages << ", CP "
              << result.area.cpNs << " ns\n";
    if (a.raceStrategies && a.method == "map") {
      std::cout << "  cut strategy: "
                << cut::cutStrategyName(result.cutStrategy)
                << " (won the race)\n";
    }
    std::cout << map::timingSummary(result.area, opts.tcpNs);
  }
  if (a.emitSchedule) {
    for (ir::NodeId v = 0; v < sg.size(); ++v) {
      const ir::Node& n = sg.node(v);
      if (n.kind == ir::OpKind::Const) continue;
      std::cout << "  n" << v << " " << ir::opKindName(n.kind)
                << (n.name.empty() ? "" : " '" + n.name + "'") << " @ cycle "
                << result.schedule.cycle[v]
                << (result.schedule.isRoot(v) ? " [root]" : "") << "\n";
    }
  }
  if (a.emitVcd) {
    const std::vector<sim::InputFrame> frames = makeFrames(16);
    sim::Memory mem;
    if (bm->initMemory) bm->initMemory(mem);
    std::string vcdErr;
    bool ok = true;
    writeTo(a.emitVcd, [&](std::ostream& os) {
      ok = sim::writeVcd(os, sg, result.schedule, opts.delays, frames,
                         &mem, {}, &vcdErr);
    });
    if (!ok) {
      std::cerr << "lampc: VCD emission failed: " << vcdErr << "\n";
      return 1;
    }
  }
  if (a.emitVerilog) {
    writeTo(a.emitVerilog, [&](std::ostream& os) {
      rtl::emitVerilog(os, sg, result.schedule, opts.delays);
    });
  }
  if (a.emitLp) {
    // Rebuild the model with a dump hook (solve is cut short). The
    // mapping-aware flow enumerates under bit-level facts; reproduce
    // them so the dumped model matches the one actually solved.
    const ir::BitFacts facts =
        analyze::toBitFacts(analyze::analyzeDataflow(sg));
    cut::CutEnumOptions co = opts.cuts;
    co.facts = &facts;
    const auto db = a.method == "base" ? cut::trivialCuts(sg, opts.cuts)
                                       : cut::enumerateCuts(sg, co);
    sched::MilpSchedOptions mo;
    mo.ii = result.schedule.ii;
    mo.tcpNs = a.tcp;
    mo.alpha = a.alpha;
    mo.beta = a.beta;
    mo.maxLatency = result.schedule.latency(sg) + 1;
    mo.formulation = a.formulation == "literal"
                         ? sched::Formulation::Literal
                         : sched::Formulation::Compact;
    mo.resources = bm->resources;
    mo.solver.timeLimitSeconds = 0.1;
    mo.solver.maxNodes = 1;
    writeTo(a.emitLp, [&](std::ostream& os) {
      sched::MilpSchedOptions dumped = mo;
      dumped.dumpModel = &os;
      (void)sched::milpSchedule(sg, db, opts.delays, dumped);
    });
  }
  return 0;
}
