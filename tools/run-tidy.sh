#!/bin/sh
# run-tidy.sh [BUILD_DIR] — advisory clang-tidy sweep over the compile
# database, with the curated checks from .clang-tidy.
#
# Exit codes:
#   0  ran (findings, if any, are printed but do not fail the run)
#   77 skipped — no clang-tidy on PATH or no compile_commands.json
#      (ctest maps 77 to SKIPPED via SKIP_RETURN_CODE)
#
# Usage:
#   tools/run-tidy.sh build            # after: cmake -B build -S .
#   ctest -L lint_tidy -V              # same thing, through ctest
set -u

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${1:-"$ROOT/build"}

TIDY=""
for candidate in clang-tidy clang-tidy-21 clang-tidy-20 clang-tidy-19 \
                 clang-tidy-18 clang-tidy-17 clang-tidy-16 clang-tidy-15; do
  if command -v "$candidate" >/dev/null 2>&1; then
    TIDY=$candidate
    break
  fi
done
if [ -z "$TIDY" ]; then
  echo "run-tidy: clang-tidy not found on PATH; skipping" >&2
  exit 77
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run-tidy: $BUILD_DIR/compile_commands.json not found" >&2
  echo "run-tidy: configure first (CMAKE_EXPORT_COMPILE_COMMANDS is on" \
       "by default); skipping" >&2
  exit 77
fi

# First-party translation units only — every src/ subsystem (util, obs,
# ir, analyze, cut, lp, sched, map, sim, rtl, flow, svc, ...) plus
# tools/; new subsystems are picked up automatically. The compile
# database also lists test binaries and generated sources we don't want
# to lint.
FILES=$(find "$ROOT/src" "$ROOT/tools" -name '*.cpp' | sort)

echo "run-tidy: $TIDY over $(echo "$FILES" | wc -l) files" \
     "(checks from $ROOT/.clang-tidy)"
STATUS=0
# shellcheck disable=SC2086
$TIDY -p "$BUILD_DIR" --quiet $FILES 2>/dev/null || STATUS=$?
if [ "$STATUS" -ne 0 ]; then
  echo "run-tidy: findings reported above (advisory, not failing the run)"
fi
exit 0
