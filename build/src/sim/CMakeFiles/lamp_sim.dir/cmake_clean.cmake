file(REMOVE_RECURSE
  "CMakeFiles/lamp_sim.dir/interp.cpp.o"
  "CMakeFiles/lamp_sim.dir/interp.cpp.o.d"
  "CMakeFiles/lamp_sim.dir/pipeline_sim.cpp.o"
  "CMakeFiles/lamp_sim.dir/pipeline_sim.cpp.o.d"
  "CMakeFiles/lamp_sim.dir/vcd.cpp.o"
  "CMakeFiles/lamp_sim.dir/vcd.cpp.o.d"
  "liblamp_sim.a"
  "liblamp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
