# Empty compiler generated dependencies file for lamp_sim.
# This may be replaced when dependencies are built.
