file(REMOVE_RECURSE
  "liblamp_sim.a"
)
