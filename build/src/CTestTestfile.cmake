# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("ir")
subdirs("lp")
subdirs("cut")
subdirs("sched")
subdirs("map")
subdirs("sim")
subdirs("workloads")
subdirs("flow")
subdirs("report")
subdirs("rtl")
