# Empty dependencies file for lamp_ir.
# This may be replaced when dependencies are built.
