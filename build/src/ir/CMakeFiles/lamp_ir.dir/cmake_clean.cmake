file(REMOVE_RECURSE
  "CMakeFiles/lamp_ir.dir/builder.cpp.o"
  "CMakeFiles/lamp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/lamp_ir.dir/eval.cpp.o"
  "CMakeFiles/lamp_ir.dir/eval.cpp.o.d"
  "CMakeFiles/lamp_ir.dir/fold.cpp.o"
  "CMakeFiles/lamp_ir.dir/fold.cpp.o.d"
  "CMakeFiles/lamp_ir.dir/graph.cpp.o"
  "CMakeFiles/lamp_ir.dir/graph.cpp.o.d"
  "CMakeFiles/lamp_ir.dir/passes.cpp.o"
  "CMakeFiles/lamp_ir.dir/passes.cpp.o.d"
  "CMakeFiles/lamp_ir.dir/serialize.cpp.o"
  "CMakeFiles/lamp_ir.dir/serialize.cpp.o.d"
  "CMakeFiles/lamp_ir.dir/verify.cpp.o"
  "CMakeFiles/lamp_ir.dir/verify.cpp.o.d"
  "liblamp_ir.a"
  "liblamp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
