
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/lamp_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/eval.cpp" "src/ir/CMakeFiles/lamp_ir.dir/eval.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/eval.cpp.o.d"
  "/root/repo/src/ir/fold.cpp" "src/ir/CMakeFiles/lamp_ir.dir/fold.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/fold.cpp.o.d"
  "/root/repo/src/ir/graph.cpp" "src/ir/CMakeFiles/lamp_ir.dir/graph.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/graph.cpp.o.d"
  "/root/repo/src/ir/passes.cpp" "src/ir/CMakeFiles/lamp_ir.dir/passes.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/passes.cpp.o.d"
  "/root/repo/src/ir/serialize.cpp" "src/ir/CMakeFiles/lamp_ir.dir/serialize.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/serialize.cpp.o.d"
  "/root/repo/src/ir/verify.cpp" "src/ir/CMakeFiles/lamp_ir.dir/verify.cpp.o" "gcc" "src/ir/CMakeFiles/lamp_ir.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
