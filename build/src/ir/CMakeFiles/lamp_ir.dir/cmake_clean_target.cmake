file(REMOVE_RECURSE
  "liblamp_ir.a"
)
