file(REMOVE_RECURSE
  "liblamp_map.a"
)
