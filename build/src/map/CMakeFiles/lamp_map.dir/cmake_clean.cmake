file(REMOVE_RECURSE
  "CMakeFiles/lamp_map.dir/area.cpp.o"
  "CMakeFiles/lamp_map.dir/area.cpp.o.d"
  "liblamp_map.a"
  "liblamp_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
