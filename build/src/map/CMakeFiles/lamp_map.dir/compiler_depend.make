# Empty compiler generated dependencies file for lamp_map.
# This may be replaced when dependencies are built.
