file(REMOVE_RECURSE
  "liblamp_cut.a"
)
