# Empty compiler generated dependencies file for lamp_cut.
# This may be replaced when dependencies are built.
