file(REMOVE_RECURSE
  "CMakeFiles/lamp_cut.dir/dep.cpp.o"
  "CMakeFiles/lamp_cut.dir/dep.cpp.o.d"
  "CMakeFiles/lamp_cut.dir/enumerate.cpp.o"
  "CMakeFiles/lamp_cut.dir/enumerate.cpp.o.d"
  "liblamp_cut.a"
  "liblamp_cut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
