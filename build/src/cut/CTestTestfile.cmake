# CMake generated Testfile for 
# Source directory: /root/repo/src/cut
# Build directory: /root/repo/build/src/cut
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
