file(REMOVE_RECURSE
  "CMakeFiles/lamp_report.dir/table.cpp.o"
  "CMakeFiles/lamp_report.dir/table.cpp.o.d"
  "liblamp_report.a"
  "liblamp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
