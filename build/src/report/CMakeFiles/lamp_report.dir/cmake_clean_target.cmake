file(REMOVE_RECURSE
  "liblamp_report.a"
)
