# Empty compiler generated dependencies file for lamp_report.
# This may be replaced when dependencies are built.
