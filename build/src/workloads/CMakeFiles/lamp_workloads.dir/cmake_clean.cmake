file(REMOVE_RECURSE
  "CMakeFiles/lamp_workloads.dir/aes.cpp.o"
  "CMakeFiles/lamp_workloads.dir/aes.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/clz.cpp.o"
  "CMakeFiles/lamp_workloads.dir/clz.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/cordic.cpp.o"
  "CMakeFiles/lamp_workloads.dir/cordic.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/dr.cpp.o"
  "CMakeFiles/lamp_workloads.dir/dr.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/gfmul.cpp.o"
  "CMakeFiles/lamp_workloads.dir/gfmul.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/golden.cpp.o"
  "CMakeFiles/lamp_workloads.dir/golden.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/gsm.cpp.o"
  "CMakeFiles/lamp_workloads.dir/gsm.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/mt.cpp.o"
  "CMakeFiles/lamp_workloads.dir/mt.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/registry.cpp.o"
  "CMakeFiles/lamp_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/rs.cpp.o"
  "CMakeFiles/lamp_workloads.dir/rs.cpp.o.d"
  "CMakeFiles/lamp_workloads.dir/xorr.cpp.o"
  "CMakeFiles/lamp_workloads.dir/xorr.cpp.o.d"
  "liblamp_workloads.a"
  "liblamp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
