
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/aes.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/aes.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/aes.cpp.o.d"
  "/root/repo/src/workloads/clz.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/clz.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/clz.cpp.o.d"
  "/root/repo/src/workloads/cordic.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/cordic.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/cordic.cpp.o.d"
  "/root/repo/src/workloads/dr.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/dr.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/dr.cpp.o.d"
  "/root/repo/src/workloads/gfmul.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/gfmul.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/gfmul.cpp.o.d"
  "/root/repo/src/workloads/golden.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/golden.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/golden.cpp.o.d"
  "/root/repo/src/workloads/gsm.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/gsm.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/gsm.cpp.o.d"
  "/root/repo/src/workloads/mt.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/mt.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/mt.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/rs.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/rs.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/rs.cpp.o.d"
  "/root/repo/src/workloads/xorr.cpp" "src/workloads/CMakeFiles/lamp_workloads.dir/xorr.cpp.o" "gcc" "src/workloads/CMakeFiles/lamp_workloads.dir/xorr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lamp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lamp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lamp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cut/CMakeFiles/lamp_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lamp_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
