file(REMOVE_RECURSE
  "liblamp_workloads.a"
)
