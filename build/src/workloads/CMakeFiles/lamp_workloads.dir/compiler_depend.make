# Empty compiler generated dependencies file for lamp_workloads.
# This may be replaced when dependencies are built.
