file(REMOVE_RECURSE
  "CMakeFiles/lamp_lp.dir/milp.cpp.o"
  "CMakeFiles/lamp_lp.dir/milp.cpp.o.d"
  "CMakeFiles/lamp_lp.dir/model.cpp.o"
  "CMakeFiles/lamp_lp.dir/model.cpp.o.d"
  "CMakeFiles/lamp_lp.dir/presolve.cpp.o"
  "CMakeFiles/lamp_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/lamp_lp.dir/simplex.cpp.o"
  "CMakeFiles/lamp_lp.dir/simplex.cpp.o.d"
  "liblamp_lp.a"
  "liblamp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
