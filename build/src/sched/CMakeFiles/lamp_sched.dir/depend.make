# Empty dependencies file for lamp_sched.
# This may be replaced when dependencies are built.
