file(REMOVE_RECURSE
  "liblamp_sched.a"
)
