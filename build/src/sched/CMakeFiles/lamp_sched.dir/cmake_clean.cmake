file(REMOVE_RECURSE
  "CMakeFiles/lamp_sched.dir/delay_model.cpp.o"
  "CMakeFiles/lamp_sched.dir/delay_model.cpp.o.d"
  "CMakeFiles/lamp_sched.dir/greedy.cpp.o"
  "CMakeFiles/lamp_sched.dir/greedy.cpp.o.d"
  "CMakeFiles/lamp_sched.dir/milp_sched.cpp.o"
  "CMakeFiles/lamp_sched.dir/milp_sched.cpp.o.d"
  "CMakeFiles/lamp_sched.dir/schedule.cpp.o"
  "CMakeFiles/lamp_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/lamp_sched.dir/sdc.cpp.o"
  "CMakeFiles/lamp_sched.dir/sdc.cpp.o.d"
  "liblamp_sched.a"
  "liblamp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
