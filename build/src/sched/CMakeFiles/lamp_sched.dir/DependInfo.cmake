
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/delay_model.cpp" "src/sched/CMakeFiles/lamp_sched.dir/delay_model.cpp.o" "gcc" "src/sched/CMakeFiles/lamp_sched.dir/delay_model.cpp.o.d"
  "/root/repo/src/sched/greedy.cpp" "src/sched/CMakeFiles/lamp_sched.dir/greedy.cpp.o" "gcc" "src/sched/CMakeFiles/lamp_sched.dir/greedy.cpp.o.d"
  "/root/repo/src/sched/milp_sched.cpp" "src/sched/CMakeFiles/lamp_sched.dir/milp_sched.cpp.o" "gcc" "src/sched/CMakeFiles/lamp_sched.dir/milp_sched.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/lamp_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/lamp_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/sdc.cpp" "src/sched/CMakeFiles/lamp_sched.dir/sdc.cpp.o" "gcc" "src/sched/CMakeFiles/lamp_sched.dir/sdc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lamp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/cut/CMakeFiles/lamp_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lamp_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
