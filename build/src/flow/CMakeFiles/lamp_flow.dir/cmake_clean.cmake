file(REMOVE_RECURSE
  "CMakeFiles/lamp_flow.dir/flow.cpp.o"
  "CMakeFiles/lamp_flow.dir/flow.cpp.o.d"
  "liblamp_flow.a"
  "liblamp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
