file(REMOVE_RECURSE
  "liblamp_flow.a"
)
