# Empty compiler generated dependencies file for lamp_flow.
# This may be replaced when dependencies are built.
