file(REMOVE_RECURSE
  "liblamp_rtl.a"
)
