# Empty compiler generated dependencies file for lamp_rtl.
# This may be replaced when dependencies are built.
