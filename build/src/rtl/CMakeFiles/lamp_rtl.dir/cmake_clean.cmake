file(REMOVE_RECURSE
  "CMakeFiles/lamp_rtl.dir/verilog.cpp.o"
  "CMakeFiles/lamp_rtl.dir/verilog.cpp.o.d"
  "liblamp_rtl.a"
  "liblamp_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lamp_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
