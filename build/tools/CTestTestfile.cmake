# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(lampc_benchmark_greedy "/root/repo/build/tools/lampc" "GFMUL" "--method=greedy" "--quiet")
set_tests_properties(lampc_benchmark_greedy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lampc_benchmark_hls_verilog "/root/repo/build/tools/lampc" "RS" "--method=hls" "--emit-verilog" "--quiet")
set_tests_properties(lampc_benchmark_hls_verilog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lampc_graph_file "/root/repo/build/tools/lampc" "/root/repo/examples/data/parity.lamp" "--method=map" "--time-limit=5" "--emit-schedule")
set_tests_properties(lampc_graph_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(lampc_rejects_garbage "/root/repo/build/tools/lampc" "no_such_input_anywhere" "--method=map")
set_tests_properties(lampc_rejects_garbage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
