# Empty dependencies file for lampc.
# This may be replaced when dependencies are built.
