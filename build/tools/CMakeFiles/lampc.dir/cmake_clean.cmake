file(REMOVE_RECURSE
  "CMakeFiles/lampc.dir/lampc.cpp.o"
  "CMakeFiles/lampc.dir/lampc.cpp.o.d"
  "lampc"
  "lampc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lampc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
