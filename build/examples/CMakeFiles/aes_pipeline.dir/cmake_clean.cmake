file(REMOVE_RECURSE
  "CMakeFiles/aes_pipeline.dir/aes_pipeline.cpp.o"
  "CMakeFiles/aes_pipeline.dir/aes_pipeline.cpp.o.d"
  "aes_pipeline"
  "aes_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aes_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
