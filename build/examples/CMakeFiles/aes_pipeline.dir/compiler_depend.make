# Empty compiler generated dependencies file for aes_pipeline.
# This may be replaced when dependencies are built.
