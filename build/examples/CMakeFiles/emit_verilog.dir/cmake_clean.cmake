file(REMOVE_RECURSE
  "CMakeFiles/emit_verilog.dir/emit_verilog.cpp.o"
  "CMakeFiles/emit_verilog.dir/emit_verilog.cpp.o.d"
  "emit_verilog"
  "emit_verilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emit_verilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
