# Empty compiler generated dependencies file for emit_verilog.
# This may be replaced when dependencies are built.
