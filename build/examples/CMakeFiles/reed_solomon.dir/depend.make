# Empty dependencies file for reed_solomon.
# This may be replaced when dependencies are built.
