file(REMOVE_RECURSE
  "CMakeFiles/reed_solomon.dir/reed_solomon.cpp.o"
  "CMakeFiles/reed_solomon.dir/reed_solomon.cpp.o.d"
  "reed_solomon"
  "reed_solomon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reed_solomon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
