file(REMOVE_RECURSE
  "CMakeFiles/micro_cutenum.dir/micro_cutenum.cpp.o"
  "CMakeFiles/micro_cutenum.dir/micro_cutenum.cpp.o.d"
  "micro_cutenum"
  "micro_cutenum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cutenum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
