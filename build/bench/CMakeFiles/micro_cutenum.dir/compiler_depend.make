# Empty compiler generated dependencies file for micro_cutenum.
# This may be replaced when dependencies are built.
