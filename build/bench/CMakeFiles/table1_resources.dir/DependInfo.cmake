
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_resources.cpp" "bench/CMakeFiles/table1_resources.dir/table1_resources.cpp.o" "gcc" "bench/CMakeFiles/table1_resources.dir/table1_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/lamp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/lamp_report.dir/DependInfo.cmake"
  "/root/repo/build/src/map/CMakeFiles/lamp_map.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lamp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lamp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/lamp_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cut/CMakeFiles/lamp_cut.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/lamp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lamp_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
