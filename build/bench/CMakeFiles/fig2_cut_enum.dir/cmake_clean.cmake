file(REMOVE_RECURSE
  "CMakeFiles/fig2_cut_enum.dir/fig2_cut_enum.cpp.o"
  "CMakeFiles/fig2_cut_enum.dir/fig2_cut_enum.cpp.o.d"
  "fig2_cut_enum"
  "fig2_cut_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_cut_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
