# Empty compiler generated dependencies file for fig2_cut_enum.
# This may be replaced when dependencies are built.
