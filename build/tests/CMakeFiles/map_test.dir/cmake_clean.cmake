file(REMOVE_RECURSE
  "CMakeFiles/map_test.dir/map_test.cpp.o"
  "CMakeFiles/map_test.dir/map_test.cpp.o.d"
  "map_test"
  "map_test.pdb"
  "map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
