file(REMOVE_RECURSE
  "CMakeFiles/fold_test.dir/fold_test.cpp.o"
  "CMakeFiles/fold_test.dir/fold_test.cpp.o.d"
  "fold_test"
  "fold_test.pdb"
  "fold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
