# Empty compiler generated dependencies file for e2e_random_test.
# This may be replaced when dependencies are built.
