file(REMOVE_RECURSE
  "CMakeFiles/cut_semantics_test.dir/cut_semantics_test.cpp.o"
  "CMakeFiles/cut_semantics_test.dir/cut_semantics_test.cpp.o.d"
  "cut_semantics_test"
  "cut_semantics_test.pdb"
  "cut_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cut_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
