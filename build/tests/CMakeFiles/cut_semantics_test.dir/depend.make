# Empty dependencies file for cut_semantics_test.
# This may be replaced when dependencies are built.
