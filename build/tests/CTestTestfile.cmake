# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/milp_test[1]_include.cmake")
include("/root/repo/build/tests/cut_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/map_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/rtl_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_lp_test[1]_include.cmake")
include("/root/repo/build/tests/formulation_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_random_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/presolve_test[1]_include.cmake")
include("/root/repo/build/tests/fold_test[1]_include.cmake")
include("/root/repo/build/tests/validator_test[1]_include.cmake")
include("/root/repo/build/tests/cut_semantics_test[1]_include.cmake")
