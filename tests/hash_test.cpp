// Tests for the structural CDFG digests (ir/hash.h) that address the
// lampd solution cache: the canonical hash must be invariant under node
// permutation and renaming, and sensitive to every structural detail a
// schedule depends on (opcodes, widths, constants, edge distances).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "ir/hash.h"
#include "workloads/workloads.h"

namespace lamp::ir {
namespace {

using workloads::Benchmark;
using workloads::Scale;

std::vector<Benchmark> testBenchmarks() {
  return workloads::allBenchmarks(Scale::Default);
}

/// Rebuilds `g` with node ids shuffled by `perm` (perm[oldId] = newId).
/// Graph::add accepts forward references, so the permuted emission order
/// need not be topological.
Graph permuteGraph(const Graph& g, const std::vector<NodeId>& perm) {
  std::vector<NodeId> inverse(perm.size());
  for (NodeId old = 0; old < g.size(); ++old) inverse[perm[old]] = old;
  Graph out(g.name());
  for (NodeId id = 0; id < g.size(); ++id) {
    Node n = g.node(inverse[id]);
    for (Edge& e : n.operands) e.src = perm[e.src];
    out.add(std::move(n));
  }
  return out;
}

Node makeNode(OpKind kind, std::uint16_t width,
              std::vector<Edge> operands = {}) {
  Node n;
  n.kind = kind;
  n.width = width;
  n.operands = std::move(operands);
  return n;
}

std::vector<NodeId> randomPermutation(std::size_t n, std::uint32_t seed) {
  std::vector<NodeId> perm(n);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  std::mt19937 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

TEST(HashTest, HexRoundTrip) {
  for (const Benchmark& bm : testBenchmarks()) {
    const GraphDigest d = canonicalHash(bm.graph);
    const std::string hex = d.hex();
    EXPECT_EQ(hex.size(), 32u);
    const auto back = GraphDigest::fromHex(hex);
    ASSERT_TRUE(back.has_value()) << bm.name;
    EXPECT_EQ(*back, d) << bm.name;
  }
  EXPECT_FALSE(GraphDigest::fromHex("not-a-digest").has_value());
  EXPECT_FALSE(GraphDigest::fromHex("0123").has_value());
}

TEST(HashTest, CanonicalInvariantUnderPermutation) {
  // Property over all nine workload generators: any node renumbering
  // leaves the canonical hash unchanged, while the layout hash (which
  // pins NodeId order for schedule replay) changes.
  for (const Benchmark& bm : testBenchmarks()) {
    const GraphDigest canon = canonicalHash(bm.graph);
    const GraphDigest layout = layoutHash(bm.graph);
    for (std::uint32_t seed = 1; seed <= 3; ++seed) {
      const auto perm = randomPermutation(bm.graph.size(), seed);
      const Graph shuffled = permuteGraph(bm.graph, perm);
      EXPECT_EQ(canonicalHash(shuffled), canon)
          << bm.name << " perm seed " << seed;
      if (!std::is_sorted(perm.begin(), perm.end())) {
        EXPECT_NE(layoutHash(shuffled), layout)
            << bm.name << " perm seed " << seed;
      }
    }
  }
}

TEST(HashTest, BothHashesIgnoreNames) {
  for (const Benchmark& bm : testBenchmarks()) {
    Graph renamed = bm.graph;
    renamed.setName("completely_different");
    for (NodeId id = 0; id < renamed.size(); ++id) {
      renamed.node(id).name = "n_" + std::to_string(id * 7 + 3);
    }
    EXPECT_EQ(canonicalHash(renamed), canonicalHash(bm.graph)) << bm.name;
    EXPECT_EQ(layoutHash(renamed), layoutHash(bm.graph)) << bm.name;
  }
}

TEST(HashTest, OneBitConstantChangeChangesHash) {
  for (const Benchmark& bm : testBenchmarks()) {
    Graph g = bm.graph;
    NodeId constId = kNoNode;
    for (NodeId id = 0; id < g.size(); ++id) {
      if (g.node(id).kind == OpKind::Const) {
        constId = id;
        break;
      }
    }
    if (constId == kNoNode) continue;  // benchmark without constants
    g.node(constId).constValue ^= 1;
    EXPECT_NE(canonicalHash(g), canonicalHash(bm.graph)) << bm.name;
    EXPECT_NE(layoutHash(g), layoutHash(bm.graph)) << bm.name;
  }
}

TEST(HashTest, WidthChangeChangesHash) {
  for (const Benchmark& bm : testBenchmarks()) {
    Graph g = bm.graph;
    g.node(0).width = static_cast<std::uint16_t>(g.node(0).width + 1);
    EXPECT_NE(canonicalHash(g), canonicalHash(bm.graph)) << bm.name;
  }
}

TEST(HashTest, EdgeDistanceChangeChangesHash) {
  for (const Benchmark& bm : testBenchmarks()) {
    Graph g = bm.graph;
    NodeId withOperand = kNoNode;
    for (NodeId id = 0; id < g.size(); ++id) {
      if (!g.node(id).operands.empty()) {
        withOperand = id;
        break;
      }
    }
    ASSERT_NE(withOperand, kNoNode) << bm.name;
    g.node(withOperand).operands[0].dist += 1;
    EXPECT_NE(canonicalHash(g), canonicalHash(bm.graph)) << bm.name;
  }
}

TEST(HashTest, BenchmarksAreMutuallyDistinct) {
  const auto benchmarks = testBenchmarks();
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    for (std::size_t j = i + 1; j < benchmarks.size(); ++j) {
      EXPECT_NE(canonicalHash(benchmarks[i].graph),
                canonicalHash(benchmarks[j].graph))
          << benchmarks[i].name << " vs " << benchmarks[j].name;
    }
  }
}

TEST(HashTest, OperandOrderMatters) {
  // a - b and b - a are different computations; swapping operand order
  // must change the canonical hash even though the multiset of edges is
  // identical.
  Graph g1("sub");
  const NodeId a1 = g1.add(makeNode(OpKind::Input, 8));
  const NodeId b1 = g1.add(makeNode(OpKind::Input, 8));
  g1.add(makeNode(OpKind::Sub, 8, {{a1, 0}, {b1, 0}}));

  Graph g2("sub");
  const NodeId a2 = g2.add(makeNode(OpKind::Input, 8));
  const NodeId b2 = g2.add(makeNode(OpKind::Input, 8));
  g2.add(makeNode(OpKind::Sub, 8, {{b2, 0}, {a2, 0}}));

  // The two inputs are structurally symmetric here, so swapping them is a
  // graph automorphism: hashes must be EQUAL. Break the symmetry by
  // width, then expect inequality.
  EXPECT_EQ(canonicalHash(g1), canonicalHash(g2));

  Graph g3("sub");
  const NodeId a3 = g3.add(makeNode(OpKind::Input, 8));
  const NodeId b3 = g3.add(makeNode(OpKind::Input, 16));
  g3.add(makeNode(OpKind::Sub, 16, {{a3, 0}, {b3, 0}}));

  Graph g4("sub");
  const NodeId a4 = g4.add(makeNode(OpKind::Input, 8));
  const NodeId b4 = g4.add(makeNode(OpKind::Input, 16));
  g4.add(makeNode(OpKind::Sub, 16, {{b4, 0}, {a4, 0}}));

  EXPECT_NE(canonicalHash(g3), canonicalHash(g4));
}

}  // namespace
}  // namespace lamp::ir
