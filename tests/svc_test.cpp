// Tests for the lampd scheduling service: lossless FlowResult JSON
// round-trips, solution-cache hit/warm/miss semantics, end-to-end
// request handling (cache hits bit-identical to the first solve),
// bounded-admission overload shedding, deadlines, on-disk persistence
// across service restarts, and warm-start objective parity with cold
// solves.

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analyze/analyze.h"
#include "flow/flow_json.h"
#include "ir/builder.h"
#include "svc/cache.h"
#include "svc/proto.h"
#include "svc/service.h"
#include "util/json.h"

namespace lamp::svc {
namespace {

using util::Json;

/// One short GFMUL solve, shared by every test that just needs *a*
/// successful FlowResult (the 5s limit need not prove optimality).
const flow::FlowResult& solveSmall() {
  static const flow::FlowResult r = [] {
    for (auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
      if (bm.name == "GFMUL") {
        flow::FlowOptions o;
        o.solverTimeLimitSeconds = 5.0;
        return flow::runFlow(bm, flow::Method::MilpMap, o);
      }
    }
    return flow::FlowResult{};
  }();
  return r;
}

TEST(FlowJsonTest, ResultRoundTripIsLossless) {
  const flow::FlowResult r = solveSmall();
  ASSERT_TRUE(r.success) << r.error;
  const std::string first = flow::resultToJson(r).dump();

  const auto doc = Json::parse(first);
  ASSERT_TRUE(doc.has_value());
  flow::FlowResult back;
  std::string err;
  ASSERT_TRUE(flow::resultFromJson(*doc, back, &err)) << err;

  // Bit-identity: serialize -> parse -> serialize must reproduce the
  // exact bytes (doubles included) — the cache's core guarantee.
  EXPECT_EQ(flow::resultToJson(back).dump(), first);
  EXPECT_EQ(back.schedule.cycle, r.schedule.cycle);
  EXPECT_EQ(back.schedule.selectedCut, r.schedule.selectedCut);
  EXPECT_EQ(back.area.luts, r.area.luts);
  EXPECT_EQ(back.area.ffs, r.area.ffs);
  EXPECT_EQ(back.objective, r.objective);
  EXPECT_EQ(back.status, r.status);
}

TEST(FlowJsonTest, ResultFromJsonRejectsMalformed) {
  flow::FlowResult out;
  std::string err;
  const auto notObject = Json::parse("[1,2,3]");
  ASSERT_TRUE(notObject.has_value());
  EXPECT_FALSE(flow::resultFromJson(*notObject, out, &err));

  // Schedule arrays of unequal length are inconsistent.
  const flow::FlowResult r = solveSmall();
  ASSERT_TRUE(r.success);
  Json doc = flow::resultToJson(r);
  Json* sched = const_cast<Json*>(doc.find("schedule"));
  ASSERT_NE(sched, nullptr);
  Json* cycle = const_cast<Json*>(sched->find("cycle"));
  ASSERT_NE(cycle, nullptr);
  cycle->push(Json::integer(0));
  EXPECT_FALSE(flow::resultFromJson(doc, out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(FlowJsonTest, OptionsRejectUnknownKeys) {
  flow::FlowOptions opts;
  std::string err;
  const auto ok = Json::parse(R"({"ii":2,"tcpNs":8.5,"k":6})");
  ASSERT_TRUE(ok.has_value());
  ASSERT_TRUE(flow::optionsFromJson(*ok, opts, &err)) << err;
  EXPECT_EQ(opts.ii, 2);
  EXPECT_EQ(opts.tcpNs, 8.5);
  EXPECT_EQ(opts.cuts.k, 6);

  const auto bad = Json::parse(R"({"ii":2,"unknownKnob":1})");
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(flow::optionsFromJson(*bad, opts, &err));
  EXPECT_NE(err.find("unknownKnob"), std::string::npos);
}

CacheKey keyFor(const flow::FlowResult& r, double tcpNs, double timeLimit) {
  // The graph hashes only have to be consistent within the test.
  CacheKey key;
  key.canonical = ir::GraphDigest{1, 2};
  key.layout = ir::GraphDigest{3, 4};
  flow::FlowOptions o;
  key.hardKey = flow::hardOptionKey(r.method, o);
  key.tcpNs = tcpNs;
  key.timeLimitSeconds = timeLimit;
  return key;
}

TEST(CacheTest, ExactWarmAndMissSemantics) {
  const flow::FlowResult r = solveSmall();
  ASSERT_TRUE(r.success) << r.error;
  SolutionCache cache;

  const CacheKey base = keyFor(r, 10.0, 20.0);
  EXPECT_EQ(cache.lookup(base).kind, SolutionCache::Lookup::Kind::Miss);
  cache.insert(base, r);
  EXPECT_EQ(cache.size(), 1u);

  // Same soft axes: exact hit, stored result returned verbatim.
  const auto exact = cache.lookup(base);
  EXPECT_EQ(exact.kind, SolutionCache::Lookup::Kind::Exact);
  EXPECT_EQ(flow::resultToJson(exact.result).dump(),
            flow::resultToJson(r).dump());

  // Looser clock target: warm hit (schedule feasible at 10ns stays
  // feasible at 12ns).
  const auto warm = cache.lookup(keyFor(r, 12.0, 20.0));
  EXPECT_EQ(warm.kind, SolutionCache::Lookup::Kind::Warm);

  // Different time limit at the same clock: also a warm hit.
  EXPECT_EQ(cache.lookup(keyFor(r, 10.0, 5.0)).kind,
            SolutionCache::Lookup::Kind::Warm);

  // Tighter clock target: the cached schedule may be infeasible — miss.
  EXPECT_EQ(cache.lookup(keyFor(r, 8.0, 20.0)).kind,
            SolutionCache::Lookup::Kind::Miss);

  // Different hard options: different bucket entirely.
  CacheKey otherOptions = base;
  otherOptions.hardKey += ";ii=999";
  EXPECT_EQ(cache.lookup(otherOptions).kind,
            SolutionCache::Lookup::Kind::Miss);

  // Different graph: different bucket.
  CacheKey otherGraph = base;
  otherGraph.canonical = ir::GraphDigest{99, 99};
  EXPECT_EQ(cache.lookup(otherGraph).kind, SolutionCache::Lookup::Kind::Miss);

  const CacheStats st = cache.stats();
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.exactHits, 1u);
  EXPECT_EQ(st.warmHits, 2u);
  EXPECT_EQ(st.misses, 4u);
}

TEST(CacheTest, WarmPrefersTightestUsableClock) {
  const flow::FlowResult r = solveSmall();
  ASSERT_TRUE(r.success) << r.error;
  SolutionCache cache;
  flow::FlowResult r8 = r, r10 = r;
  r8.objective = 8.0;
  r10.objective = 10.0;
  cache.insert(keyFor(r, 8.0, 20.0), r8);
  cache.insert(keyFor(r, 10.0, 20.0), r10);

  // A request at 11ns can reuse either entry; the one solved at the
  // largest usable tcpNs (closest constraints) wins.
  const auto warm = cache.lookup(keyFor(r, 11.0, 20.0));
  ASSERT_EQ(warm.kind, SolutionCache::Lookup::Kind::Warm);
  EXPECT_EQ(warm.result.objective, 10.0);
}

std::string requestLine(const std::string& id, const std::string& benchmark,
                        double timeLimit = 5.0, double tcpNs = 10.0,
                        bool noCache = false) {
  std::ostringstream os;
  os << "{\"id\":\"" << id << "\",\"benchmark\":\"" << benchmark
     << "\",\"method\":\"map\",\"options\":{\"timeLimitSeconds\":" << timeLimit
     << ",\"tcpNs\":" << tcpNs << "}";
  if (noCache) os << ",\"noCache\":true";
  os << "}";
  return os.str();
}

const Json* field(const Json& doc, const char* key) {
  const Json* f = doc.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key << " in " << doc.dump();
  return f;
}

TEST(ServiceTest, RepeatedRequestHitsCacheBitIdentically) {
  ServiceOptions so;
  so.workers = 1;
  Service service(so);

  const std::string line = requestLine("a", "GFMUL");
  const std::string first = service.call(line);
  const auto doc1 = Json::parse(first);
  ASSERT_TRUE(doc1.has_value()) << first;
  ASSERT_TRUE(field(*doc1, "ok")->asBool()) << first;
  EXPECT_EQ(field(*doc1, "cache")->asString(), "miss");

  const std::string second = service.call(line);
  const auto doc2 = Json::parse(second);
  ASSERT_TRUE(doc2.has_value()) << second;
  ASSERT_TRUE(field(*doc2, "ok")->asBool()) << second;
  EXPECT_EQ(field(*doc2, "cache")->asString(), "hit");

  // The acceptance bar: a cache hit returns the *bit-identical* result.
  EXPECT_EQ(field(*doc2, "result")->dump(), field(*doc1, "result")->dump());

  EXPECT_EQ(service.cache().stats().exactHits, 1u);
  EXPECT_EQ(service.stats().served, 2u);
}

TEST(ServiceTest, NoCacheRequestsBypassTheCache) {
  ServiceOptions so;
  so.workers = 1;
  Service service(so);
  const std::string line = requestLine("a", "GFMUL", 20.0, 10.0, true);
  service.call(line);
  const std::string second = service.call(line);
  const auto doc = Json::parse(second);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(field(*doc, "cache")->asString(), "off");
  EXPECT_EQ(service.cache().size(), 0u);
}

TEST(ServiceTest, MalformedRequestsAreRejectedInline) {
  Service service;
  for (const char* bad :
       {"not json at all", "{\"id\":\"x\"}",
        "{\"id\":\"x\",\"benchmark\":\"GFMUL\",\"surprise\":1}",
        "{\"id\":\"x\",\"benchmark\":\"NO_SUCH_BENCHMARK\"}",
        "{\"id\":\"x\",\"benchmark\":\"GFMUL\",\"options\":{\"ii\":0}}"}) {
    const std::string resp = service.call(bad);
    const auto doc = Json::parse(resp);
    ASSERT_TRUE(doc.has_value()) << resp;
    EXPECT_FALSE(field(*doc, "ok")->asBool()) << bad;
  }
  EXPECT_EQ(service.stats().badRequests, 5u);
}

TEST(ServiceTest, OverloadShedsExplicitly) {
  ServiceOptions so;
  so.workers = 1;
  so.queueCap = 1;
  Service service(so);

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::string> responses;
  const auto collect = [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(std::move(r));
    cv.notify_all();
  };

  // One request occupies the worker (give it time to be picked up), one
  // sits in the queue; every further submission inside the sleep window
  // must be rejected inline with "overloaded".
  const std::string sleeper = R"({"id":"s","cmd":"sleep","ms":800})";
  service.submit(sleeper, collect);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  service.submit(sleeper, collect);
  int overloaded = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string resp = service.call(sleeper);
    if (resp.find("\"overloaded\"") != std::string::npos) ++overloaded;
  }
  EXPECT_GE(overloaded, 3);  // tolerate one slow-machine pickup race
  service.drain();
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() == 2u; });
  }
  EXPECT_GE(service.stats().overloaded, 3u);
}

TEST(ServiceTest, ExpiredDeadlineSkipsTheSolve) {
  ServiceOptions so;
  so.workers = 1;
  Service service(so);
  std::mutex mu;
  std::vector<std::string> sink;
  service.submit(R"({"id":"s","cmd":"sleep","ms":300})", [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    sink.push_back(std::move(r));
  });
  // This request's 50ms budget burns away behind the sleeper; the worker
  // must answer deadline_exceeded without starting the solver.
  const std::string resp = service.call(
      R"({"id":"d","benchmark":"RS","deadlineMs":50})");
  const auto doc = Json::parse(resp);
  ASSERT_TRUE(doc.has_value()) << resp;
  EXPECT_FALSE(field(*doc, "ok")->asBool());
  EXPECT_EQ(field(*doc, "status")->asString(), "deadline_exceeded");
  EXPECT_EQ(service.stats().deadlineExceeded, 1u);
  service.drain();
}

TEST(ServiceTest, DiskCacheSurvivesRestart) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "lamp_svc_cache_test";
  std::filesystem::remove_all(dir);

  const std::string line = requestLine("a", "GFMUL");
  std::string coldResult;
  {
    ServiceOptions so;
    so.workers = 1;
    so.cacheDir = dir.string();
    Service service(so);
    const auto doc = Json::parse(service.call(line));
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(field(*doc, "ok")->asBool());
    coldResult = field(*doc, "result")->dump();
    EXPECT_EQ(service.cache().stats().inserts, 1u);
  }
  {
    // A fresh service over the same directory serves the request from
    // the reloaded cache, bit-identically, without solving.
    ServiceOptions so;
    so.workers = 1;
    so.cacheDir = dir.string();
    Service service(so);
    EXPECT_EQ(service.cache().stats().loadedFromDisk, 1u);
    const auto doc = Json::parse(service.call(line));
    ASSERT_TRUE(doc.has_value());
    ASSERT_TRUE(field(*doc, "ok")->asBool());
    EXPECT_EQ(field(*doc, "cache")->asString(), "hit");
    EXPECT_EQ(field(*doc, "result")->dump(), coldResult);
  }
  std::filesystem::remove_all(dir);
}

TEST(ServiceTest, InlineGraphRequestsAreCachedByContent) {
  // Two textually different graphs (node names, graph name differ) with
  // identical structure must land in the same cache bucket.
  const char* g1 =
      "lampgraph v1 \"parity_a\"\n"
      "n input 8 0 0 0 0 \"x\"\n"
      "n input 8 0 0 0 0 \"y\"\n"
      "n xor 8 0 0 0 2 0:0 1:0 \"p\"\n"
      "n output 8 0 0 0 1 2:0 \"o\"\n"
      "end\n";
  const char* g2 =
      "lampgraph v1 \"parity_b\"\n"
      "n input 8 0 0 0 0 \"u\"\n"
      "n input 8 0 0 0 0 \"v\"\n"
      "n xor 8 0 0 0 2 0:0 1:0 \"q\"\n"
      "n output 8 0 0 0 1 2:0 \"z\"\n"
      "end\n";
  ServiceOptions so;
  so.workers = 1;
  Service service(so);
  const auto lineFor = [](const char* text) {
    Json req = Json::object();
    req.set("id", Json::string("g"));
    req.set("graph", Json::string(text));
    req.set("options", *Json::parse(R"({"timeLimitSeconds":5})"));
    return req.dump();
  };
  const auto doc1 = Json::parse(service.call(lineFor(g1)));
  ASSERT_TRUE(doc1.has_value());
  ASSERT_TRUE(field(*doc1, "ok")->asBool()) << service.call(lineFor(g1));
  const auto doc2 = Json::parse(service.call(lineFor(g2)));
  ASSERT_TRUE(doc2.has_value());
  ASSERT_TRUE(field(*doc2, "ok")->asBool());
  EXPECT_EQ(field(*doc2, "cache")->asString(), "hit");
  EXPECT_EQ(field(*doc2, "result")->dump(), field(*doc1, "result")->dump());
}

// Warm starts must never hurt: the hint only seeds the incumbent, so a
// warm solve's objective is never worse than the cold solve's under the
// same budget, and exactly equal whenever both prove optimality. (On
// time-limit-truncated instances warm can end strictly BETTER — the
// inherited incumbent prunes subtrees the cold search wastes its budget
// in.) Checked on three benchmarks by default; LAMP_SVC_FULL_PARITY=1
// widens the sweep to all nine workloads (minutes of solver time).
TEST(ServiceTest, WarmStartReachesColdObjective) {
  std::vector<std::string> names = {"CLZ", "XORR", "GFMUL"};
  if (const char* full = std::getenv("LAMP_SVC_FULL_PARITY");
      full != nullptr && full[0] == '1') {
    names = {"CLZ", "XORR", "GFMUL", "CORDIC", "MT", "AES", "RS", "DR", "GSM"};
  }
  ServiceOptions so;
  so.workers = 1;
  Service service(so);
  for (const std::string& name : names) {
    // Solve at a tight clock, then request a looser clock: the second
    // solve warm-starts from the first solve's schedule.
    const auto seedDoc =
        Json::parse(service.call(requestLine("seed-" + name, name, 20, 10)));
    ASSERT_TRUE(seedDoc.has_value());
    ASSERT_TRUE(field(*seedDoc, "ok")->asBool()) << name;

    const std::string warmLine = requestLine("warm-" + name, name, 20, 12);
    const auto warmDoc = Json::parse(service.call(warmLine));
    ASSERT_TRUE(warmDoc.has_value());
    ASSERT_TRUE(field(*warmDoc, "ok")->asBool()) << name;
    EXPECT_EQ(field(*warmDoc, "cache")->asString(), "warm") << name;

    const std::string coldLine =
        requestLine("cold-" + name, name, 20, 12, /*noCache=*/true);
    const auto coldDoc = Json::parse(service.call(coldLine));
    ASSERT_TRUE(coldDoc.has_value());
    ASSERT_TRUE(field(*coldDoc, "ok")->asBool()) << name;

    const Json* warmSolver = field(*field(*warmDoc, "result"), "solver");
    const Json* coldSolver = field(*field(*coldDoc, "result"), "solver");
    const double warmObj = warmSolver->find("objective")->asDouble();
    const double coldObj = coldSolver->find("objective")->asDouble();
    EXPECT_LE(warmObj, coldObj + 1e-6) << name;
    if (warmSolver->find("status")->asString() == "optimal" &&
        coldSolver->find("status")->asString() == "optimal") {
      EXPECT_NEAR(warmObj, coldObj, 1e-6) << name;
    }
  }
}

// The "infeasible" status carries the analyzer's structured diagnostics
// and they survive the wire format losslessly.
TEST(ProtoTest, InfeasibleResponseCarriesDiagnosticsLosslessly) {
  std::vector<analyze::Diagnostic> diags(2);
  diags[0].code = std::string(analyze::kCodeClockInfeasible);
  diags[0].severity = analyze::Severity::Error;
  diags[0].message = "1 operation slower than tcpNs=1";
  diags[0].nodes = {2, 5};
  diags[0].hint = "raise tcpNs above 1.77 ns";
  diags[1].code = std::string(analyze::kCodeRecurrenceMii);
  diags[1].severity = analyze::Severity::Warning;
  diags[1].message = "recMII=5 exceeds the requested II";
  diags[1].nodes = {7, 8, 9};

  const std::string line = errorResponse(
      "req-1", "infeasible", "pre-solve analysis: ...", nullptr, &diags);
  const auto doc = Json::parse(line);
  ASSERT_TRUE(doc.has_value()) << line;
  EXPECT_FALSE(field(*doc, "ok")->asBool());
  EXPECT_EQ(field(*doc, "id")->asString(), "req-1");
  EXPECT_EQ(field(*doc, "status")->asString(), "infeasible");

  std::vector<analyze::Diagnostic> back;
  std::string err;
  ASSERT_TRUE(analyze::diagnosticsFromJson(*field(*doc, "diagnostics"), back,
                                           &err))
      << err;
  EXPECT_EQ(back, diags);

  // An empty diagnostic list is omitted, not serialized as [].
  const std::vector<analyze::Diagnostic> none;
  const auto bare =
      Json::parse(errorResponse("x", "bad_request", "m", nullptr, &none));
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->find("diagnostics"), nullptr);
}

// An analysis-infeasible request must be answered inline by submit() —
// never occupying a queue slot or a solver worker. With the only worker
// pinned by a sleeper, the response still arrives immediately.
TEST(ServiceTest, InfeasibleRequestAnsweredWithoutWorker) {
  ServiceOptions so;
  so.workers = 1;
  Service service(so);

  std::mutex mu;
  std::vector<std::string> sink;
  service.submit(R"({"id":"s","cmd":"sleep","ms":800})", [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    sink.push_back(std::move(r));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // tcpNs=1 is below a single LUT level: provably infeasible (LAMP001).
  const std::string resp = service.call(
      R"({"id":"i","benchmark":"GFMUL","options":{"tcpNs":1.0}})");
  {
    // The sleeper (800ms) has not finished, so the worker never served
    // this request — it was answered from the admission path.
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(sink.empty()) << "response waited behind the busy worker";
  }
  const auto doc = Json::parse(resp);
  ASSERT_TRUE(doc.has_value()) << resp;
  EXPECT_FALSE(field(*doc, "ok")->asBool());
  EXPECT_EQ(field(*doc, "status")->asString(), "infeasible");
  std::vector<analyze::Diagnostic> diags;
  std::string err;
  ASSERT_TRUE(analyze::diagnosticsFromJson(*field(*doc, "diagnostics"), diags,
                                           &err))
      << err;
  ASSERT_FALSE(diags.empty());
  EXPECT_EQ(diags[0].code, analyze::kCodeClockInfeasible);
  EXPECT_EQ(diags[0].severity, analyze::Severity::Error);
  EXPECT_FALSE(diags[0].nodes.empty());

  EXPECT_EQ(service.stats().infeasible, 1u);
  EXPECT_EQ(service.stats().flowFailures, 0u);
  EXPECT_EQ(service.cache().size(), 0u);
  service.drain();
}

// Acceptance bar for the recurrence pass: on a loop-carried multiply the
// analyzer's recMII equals the II the MILP proves optimal. dspMulNs=20
// at a 10ns clock gives the multiplier exactly 2 cycles with no
// combinational remainder, so the dist-1 cycle forces II >= 2 and the
// solver can achieve it exactly.
TEST(ServiceTest, AnalyzerRecMiiMatchesMilpProvenOptimalIi) {
  ir::GraphBuilder b("recurrence");
  ir::Value a = b.input("a", 8);
  ir::Value st = b.placeholder(8, "st");
  ir::Value m = b.mul(st.prev(1), a, 8, "m");
  b.bindPlaceholder(st, m);
  b.output(m, "out");
  const workloads::Benchmark bm =
      workloads::benchmarkFromGraph(b.take(), "recMII acceptance");

  flow::FlowOptions opts;
  opts.delays.dspMulNs = 20.0;
  opts.solverTimeLimitSeconds = 10.0;

  const analyze::AnalysisReport report = analyze::analyzeGraph(
      bm.graph, flow::analysisOptions(bm, flow::Method::MilpMap, opts));
  EXPECT_EQ(report.recMii, 2);
  // Within runFlow's retry window: a Warning, not an Error — the flow
  // may proceed and settle at II=2.
  EXPECT_FALSE(report.hasErrors()) << analyze::summarizeErrors(report);

  const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.status, lp::SolveStatus::Optimal);
  EXPECT_EQ(r.schedule.ii, report.recMii);
  // The successful result still carries the LAMP002 warning.
  bool sawRecWarning = false;
  for (const analyze::Diagnostic& d : r.diagnostics) {
    if (d.code == analyze::kCodeRecurrenceMii) {
      sawRecWarning = true;
      EXPECT_EQ(d.severity, analyze::Severity::Warning);
    }
  }
  EXPECT_TRUE(sawRecWarning);
}

}  // namespace
}  // namespace lamp::svc
