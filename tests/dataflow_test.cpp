// Tests for the bit-level dataflow framework: transfer functions of the
// forward known-bits and range lattices, the backward demanded-bits
// pass, fixpoint termination on cyclic (loop-carried) graphs, and the
// lossless JSON round-trip used by --emit-analysis.

#include <gtest/gtest.h>

#include "analyze/dataflow.h"
#include "ir/builder.h"

namespace lamp::analyze {
namespace {

using ir::GraphBuilder;
using ir::Value;

DataflowResult run(const GraphBuilder& b) {
  return analyzeDataflow(b.graph());
}

TEST(DataflowTest, ConstantIsFullyKnown) {
  GraphBuilder b("t");
  Value c = b.constant(0xA5, 8);
  b.output(c, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[c.id].knownMask, 0xFFu);
  EXPECT_EQ(r.bits[c.id].knownVal, 0xA5u);
  EXPECT_EQ(r.bits[c.id].lo, 0xA5u);
  EXPECT_EQ(r.bits[c.id].hi, 0xA5u);
}

TEST(DataflowTest, AndWithConstantMaskKnowsZeros) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(m, "o");
  const auto r = run(b);
  // High nibble is known 0; low nibble unknown.
  EXPECT_EQ(r.bits[m.id].knownMask & 0xF0u, 0xF0u);
  EXPECT_EQ(r.bits[m.id].knownVal & 0xF0u, 0u);
  EXPECT_EQ(r.bits[m.id].knownMask & 0x0Fu, 0u);
  EXPECT_LE(r.bits[m.id].hi, 0x0Fu);
}

TEST(DataflowTest, OrWithOnesKnowsOnes) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.bor(a, b.constant(0xC0, 8));
  b.output(m, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[m.id].knownMask & 0xC0u, 0xC0u);
  EXPECT_EQ(r.bits[m.id].knownVal & 0xC0u, 0xC0u);
  EXPECT_GE(r.bits[m.id].lo, 0xC0u);
}

TEST(DataflowTest, ShlKnowsLowZeros) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value s = b.shl(a, 3);
  b.output(s, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[s.id].knownMask & 0x07u, 0x07u);
  EXPECT_EQ(r.bits[s.id].knownVal & 0x07u, 0u);
}

TEST(DataflowTest, ZextKnowsHighZerosAndBoundsRange) {
  GraphBuilder b("t");
  Value a = b.input("a", 4);
  Value z = b.zext(a, 16);
  b.output(z, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[z.id].knownMask & 0xFFF0u, 0xFFF0u);
  EXPECT_EQ(r.bits[z.id].knownVal & 0xFFF0u, 0u);
  EXPECT_LE(r.bits[z.id].hi, 0xFu);
}

TEST(DataflowTest, AddRangePropagates) {
  GraphBuilder b("t");
  Value a = b.input("a", 4);
  Value s = b.add(b.zext(a, 8), b.constant(3, 8));
  b.output(s, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[s.id].lo, 3u);
  EXPECT_EQ(r.bits[s.id].hi, 0xFu + 3u);
}

TEST(DataflowTest, MuxWithKnownSelectCopiesChosenArm) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.mux(b.constant(1, 1), b.constant(0x55, 8), a);
  b.output(m, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[m.id].knownMask, 0xFFu);
  EXPECT_EQ(r.bits[m.id].knownVal, 0x55u);
}

TEST(DataflowTest, MuxJoinKeepsAgreeingBits) {
  GraphBuilder b("t");
  Value s = b.input("s", 1);
  // 0x1B and 0x00 agree on bits 2,5,6,7 (both 0 there).
  Value m = b.mux(s, b.constant(0x1B, 8), b.constant(0x00, 8));
  b.output(m, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[m.id].knownMask, 0xE4u);
  EXPECT_EQ(r.bits[m.id].knownVal, 0u);
}

TEST(DataflowTest, DemandedSeedsAtOutputs) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  b.output(a, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[a.id].demanded, 0xFFu);
}

TEST(DataflowTest, SliceNarrowsDemand) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value s = b.slice(a, 2, 3);  // bits 2..4
  b.output(s, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[a.id].demanded, 0x1Cu);
}

TEST(DataflowTest, KnownZeroAndMaskKillsDemand) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(m, "o");
  const auto r = run(b);
  // The AND's high nibble is known 0, so a's high bits are undemanded.
  EXPECT_EQ(r.bits[a.id].demanded, 0x0Fu);
}

TEST(DataflowTest, DemandPropagatesThroughAddPrefix) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value s = b.add(a, c);
  Value lo = b.slice(s, 0, 4);
  b.output(lo, "o");
  const auto r = run(b);
  // Only the low 4 sum bits are observed; carries never flow downward.
  EXPECT_EQ(r.bits[a.id].demanded, 0x0Fu);
  EXPECT_EQ(r.bits[c.id].demanded, 0x0Fu);
}

TEST(DataflowTest, LiveKeepsKnownBitsDemandStrips) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(m, "o");
  const auto r = run(b);
  // The output reads all eight And bits: the known-zero top nibble is
  // stripped from demand (no logic computes it) but stays live (a
  // substitute value would have to reproduce it).
  EXPECT_EQ(r.bits[m.id].demanded, 0x0Fu);
  EXPECT_EQ(r.bits[m.id].live, 0xFFu);
  // Through the And, a's top bits are dead either way: the Const mask
  // is immutable, so the known-0 dominance refinement applies to
  // liveness too.
  EXPECT_EQ(r.bits[a.id].live, 0x0Fu);
}

TEST(DataflowTest, LiveIsASupersetOfDemanded) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value s = b.add(b.band(a, b.constant(0x3F, 8)), c);
  b.output(b.slice(s, 0, 6), "o");
  b.output(b.bor(s, b.constant(0x80, 8)), "p");
  const auto r = run(b);
  for (const NodeBits& nb : r.bits) {
    EXPECT_EQ(nb.live & nb.demanded, nb.demanded);
  }
}

TEST(DataflowTest, DeadNodeHasNoDemand) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value dead = b.bxor(a, b.constant(0x7, 8));
  (void)dead;
  b.output(a, "o");
  const auto r = run(b);
  EXPECT_EQ(r.bits[dead.id].demanded, 0u);
  EXPECT_NE(r.bits[a.id].demanded, 0u);
}

TEST(DataflowTest, CyclicRecurrenceTerminates) {
  // acc = (acc + 1) & 0x3F, loop-carried: the range lattice must widen
  // instead of stepping once per representable value, and the fixpoint
  // must converge within the visit budget.
  GraphBuilder b("t");
  Value x = b.input("x", 8);
  Value acc = b.placeholder(8, "acc");
  Value next = b.band(b.add(acc.prev(1), b.constant(1, 8)),
                      b.constant(0x3F, 8));
  b.bindPlaceholder(acc, next);
  b.output(b.bxor(acc, x), "o");
  DataflowOptions opts;
  opts.maxVisits = 10000;
  const auto r = analyzeDataflow(b.graph(), opts);
  EXPECT_TRUE(r.converged);
  // The AND mask keeps the top two bits known 0 through the cycle.
  EXPECT_EQ(r.bits[next.id].knownMask & 0xC0u, 0xC0u);
  EXPECT_LE(r.bits[next.id].hi, 0x3Fu);
}

TEST(DataflowTest, LoopCarriedJoinIncludesResetValue) {
  // mux select is loop-carried from a constant 1: iteration 0 reads the
  // register reset (0), so the select is NOT known 1 and both arms stay
  // feasible.
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value cte = b.constant(1, 1);
  Value m = b.mux(Value{cte.id, 1}, b.constant(0x55, 8), a);
  b.output(m, "o");
  const auto r = run(b);
  EXPECT_NE(r.bits[m.id].knownMask, 0xFFu);
  EXPECT_NE(r.bits[a.id].demanded, 0u);
}

TEST(DataflowTest, JsonRoundTripIsLossless) {
  GraphBuilder b("t");
  Value a = b.input("a", 16);
  Value acc = b.placeholder(16, "acc");
  Value next = b.bxor(b.band(a, b.constant(0xF0F0, 16)), acc.prev(1));
  b.bindPlaceholder(acc, next);
  b.output(next, "o");
  const auto r = run(b);
  const util::Json j = dataflowToJson(r.bits);
  std::vector<NodeBits> back;
  std::string err;
  ASSERT_TRUE(dataflowFromJson(j, back, &err)) << err;
  ASSERT_EQ(back.size(), r.bits.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i], r.bits[i]) << "node " << i;
  }
}

TEST(DataflowTest, ToBitFactsMatchesResult) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(m, "o");
  const auto r = run(b);
  const ir::BitFacts f = toBitFacts(r);
  ASSERT_TRUE(f.compatibleWith(b.graph()));
  for (std::size_t i = 0; i < r.bits.size(); ++i) {
    EXPECT_EQ(f.knownMask[i], r.bits[i].knownMask);
    EXPECT_EQ(f.knownVal[i], r.bits[i].knownVal);
    EXPECT_EQ(f.demanded[i], r.bits[i].demanded);
  }
}

}  // namespace
}  // namespace lamp::analyze
