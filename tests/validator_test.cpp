// Negative-path tests for the schedule validator: every constraint family
// of Section 3.2 must be independently detectable. (Positive paths are
// covered by the flow and scheduler suites.)

#include <gtest/gtest.h>

#include "cut/cut.h"
#include "ir/builder.h"
#include "sched/sdc.h"

namespace lamp::sched {
namespace {

using ir::GraphBuilder;
using ir::Value;

const DelayModel kDm;

struct Fixture {
  ir::Graph g;
  cut::CutDatabase db;
  Schedule s;
  ResourceLimits res;
};

Fixture makeFixture() {
  GraphBuilder b("fix");
  Value a0 = b.input("a0", 10);
  Value a1 = b.input("a1", 10);
  Value l0 = b.load(ir::ResourceClass::MemPortA, a0, 16, "l0");
  Value l1 = b.load(ir::ResourceClass::MemPortA, a1, 16, "l1");
  Value m = b.mul(l0, l1, 16, "m");  // multi-cycle DSP
  Value x = b.bxor(m, l0, "x");
  b.output(x, "o");
  Fixture f{b.take(), {}, {}, {}};
  f.db = cut::trivialCuts(f.g);
  f.res[ir::ResourceClass::MemPortA] = 2;
  SdcOptions opts;
  opts.resources = f.res;
  const SdcResult r = sdcSchedule(f.g, f.db, kDm, opts);
  EXPECT_TRUE(r.success) << r.error;
  f.s = r.schedule;
  return f;
}

std::string diagnose(const Fixture& f) {
  const auto diag = validateSchedule({f.g, f.db, kDm, f.res}, f.s);
  return diag.value_or("");
}

TEST(ValidatorNegativeTest, BaselineIsValid) {
  Fixture f = makeFixture();
  EXPECT_EQ(diagnose(f), "");
}

TEST(ValidatorNegativeTest, WrongVectorSizes) {
  Fixture f = makeFixture();
  f.s.cycle.pop_back();
  EXPECT_NE(diagnose(f).find("graph size"), std::string::npos);
}

TEST(ValidatorNegativeTest, BadIi) {
  Fixture f = makeFixture();
  f.s.ii = 0;
  EXPECT_NE(diagnose(f).find("II"), std::string::npos);
}

TEST(ValidatorNegativeTest, InputNotAtCycleZero) {
  Fixture f = makeFixture();
  f.s.cycle[f.g.inputs()[0]] = 1;
  EXPECT_NE(diagnose(f).find("cycle 0"), std::string::npos);
}

TEST(ValidatorNegativeTest, UnscheduledNode) {
  Fixture f = makeFixture();
  f.s.cycle[f.g.outputs()[0]] = kUnscheduled;
  EXPECT_NE(diagnose(f).find("not scheduled"), std::string::npos);
}

TEST(ValidatorNegativeTest, BlackBoxMustBeRoot) {
  Fixture f = makeFixture();
  for (ir::NodeId v = 0; v < f.g.size(); ++v) {
    if (f.g.node(v).kind == ir::OpKind::Mul) f.s.selectedCut[v] = kAbsorbed;
  }
  EXPECT_NE(diagnose(f).find("must be roots"), std::string::npos);
}

TEST(ValidatorNegativeTest, CutIndexOutOfRange) {
  Fixture f = makeFixture();
  for (ir::NodeId v = 0; v < f.g.size(); ++v) {
    if (f.g.node(v).kind == ir::OpKind::Xor) f.s.selectedCut[v] = 99;
  }
  EXPECT_NE(diagnose(f).find("out of range"), std::string::npos);
}

TEST(ValidatorNegativeTest, MultiCycleOpMustStartAtZeroNs) {
  Fixture f = makeFixture();
  for (ir::NodeId v = 0; v < f.g.size(); ++v) {
    if (f.g.node(v).kind == ir::OpKind::Mul) f.s.startNs[v] = 3.0;
  }
  EXPECT_NE(diagnose(f).find("L=0"), std::string::npos);
}

TEST(ValidatorNegativeTest, ResourceOverSubscription) {
  Fixture f = makeFixture();
  f.res[ir::ResourceClass::MemPortA] = 1;  // both loads share slot 0 at II=1
  EXPECT_NE(diagnose(f).find("oversubscribed"), std::string::npos);
}

TEST(ValidatorNegativeTest, DependenceViolationAcrossLatency) {
  Fixture f = makeFixture();
  // Consume the multiplier's result in its own start cycle.
  ir::NodeId mul = ir::kNoNode, x = ir::kNoNode;
  for (ir::NodeId v = 0; v < f.g.size(); ++v) {
    if (f.g.node(v).kind == ir::OpKind::Mul) mul = v;
    if (f.g.node(v).kind == ir::OpKind::Xor) x = v;
  }
  f.s.cycle[x] = f.s.cycle[mul];
  EXPECT_NE(diagnose(f).find("dependence violated"), std::string::npos);
}

TEST(ValidatorNegativeTest, ExceedsClockPeriod) {
  Fixture f = makeFixture();
  for (ir::NodeId v = 0; v < f.g.size(); ++v) {
    if (f.g.node(v).kind == ir::OpKind::Xor) {
      f.s.startNs[v] = f.s.tcpNs - 0.1;  // no room for the LUT delay
    }
  }
  EXPECT_NE(diagnose(f).find("clock period"), std::string::npos);
}

}  // namespace
}  // namespace lamp::sched
