// Semantic validation of cut enumeration: beyond structural invariants,
// every enumerated LUT cut must be *functionally* correct —
//  (a) evaluating the cone from its boundary values reproduces the root's
//      value for random stimuli (cone closure / element sufficiency), and
//  (b) flipping a boundary bit that is NOT in an output bit's support set
//      never changes that output bit (support exactness of the DEP
//      tracking, the heart of Section 3.1).

#include <gtest/gtest.h>

#include <map>
#include <random>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/eval.h"
#include "ir/passes.h"
#include "sim/interp.h"

namespace lamp::cut {
namespace {

using ir::Graph;
using ir::GraphBuilder;
using ir::NodeId;
using ir::OpKind;
using ir::Value;

/// Evaluates the cone of `cut` rooted at `root`, reading boundary element
/// values from `boundary` (keyed by node id; graphs here are
/// combinational so dist == 0 everywhere).
std::uint64_t evalCone(const Graph& g, NodeId root, const Cut& cut,
                       const std::map<NodeId, std::uint64_t>& boundary) {
  std::map<NodeId, std::uint64_t> value;
  // Topological evaluation restricted to cone nodes.
  for (const NodeId v : ir::topologicalOrder(g)) {
    if (!std::binary_search(cut.coneNodes.begin(), cut.coneNodes.end(), v)) {
      continue;
    }
    std::vector<std::uint64_t> ops;
    for (const ir::Edge& e : g.node(v).operands) {
      const ir::Node& u = g.node(e.src);
      if (u.kind == OpKind::Const) {
        ops.push_back(ir::maskToWidth(u.constValue, u.width));
      } else if (cut.containsElement(e.src, 0)) {
        ops.push_back(boundary.at(e.src));
      } else {
        // Must be an interior cone node or an irrelevant operand; use its
        // computed value when present, zero otherwise (irrelevant).
        const auto it = value.find(e.src);
        ops.push_back(it == value.end() ? 0 : it->second);
      }
    }
    value[v] = *ir::evalPureOp(g, v, ops);
  }
  return value.at(root);
}

/// Random combinational logic graph (no loop-carried edges, no black
/// boxes) plus constants — the domain where cone evaluation is exact.
Graph randomLogic(unsigned seed, int ops) {
  std::mt19937 rng(seed * 48947u + 101);
  GraphBuilder b("sem" + std::to_string(seed));
  std::vector<Value> pool;
  for (int i = 0; i < 3; ++i) {
    pool.push_back(b.input("in" + std::to_string(i), 6));
  }
  pool.push_back(b.constant(0x2A & 0x3F, 6));
  for (int i = 0; i < ops; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    Value x = pool[pick(rng)];
    Value y = pool[pick(rng)];
    switch (rng() % 8) {
      case 0: pool.push_back(b.band(x, y)); break;
      case 1: pool.push_back(b.bor(x, y)); break;
      case 2: pool.push_back(b.bxor(x, y)); break;
      case 3: pool.push_back(b.bnot(x)); break;
      case 4: pool.push_back(b.shr(x, 1 + static_cast<int>(rng() % 3))); break;
      case 5: pool.push_back(b.mux(b.bit(x, rng() % 6), x, y)); break;
      case 6: pool.push_back(b.add(x, y)); break;
      default: pool.push_back(b.shl(x, 1 + static_cast<int>(rng() % 2))); break;
    }
  }
  b.output(pool.back(), "o");
  return b.take();
}

class CutSemanticsTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CutSemanticsTest, ConesReproduceRootValues) {
  const Graph g = randomLogic(GetParam(), 18);
  const CutDatabase db = enumerateCuts(g);
  std::mt19937 rng(GetParam());

  for (int trial = 0; trial < 6; ++trial) {
    // Global evaluation via the interpreter.
    sim::InputFrame frame;
    for (const NodeId in : g.inputs()) frame[in] = rng();
    sim::Interpreter interp(g);
    (void)interp.step(frame);
    // Recompute every node value directly for lookup.
    std::map<NodeId, std::uint64_t> val;
    for (const NodeId v : ir::topologicalOrder(g)) {
      const ir::Node& n = g.node(v);
      if (n.kind == OpKind::Input) {
        val[v] = ir::maskToWidth(frame[v], n.width);
        continue;
      }
      std::vector<std::uint64_t> ops;
      for (const ir::Edge& e : n.operands) ops.push_back(val[e.src]);
      if (const auto r = ir::evalPureOp(g, v, ops)) val[v] = *r;
    }

    for (NodeId v = 0; v < g.size(); ++v) {
      for (const Cut& c : db.at(v).cuts) {
        if (c.kind != CutKind::Lut) continue;
        std::map<NodeId, std::uint64_t> boundary;
        for (const CutElement& e : c.elements) boundary[e.node] = val[e.node];
        EXPECT_EQ(evalCone(g, v, c, boundary), val[v])
            << "node " << v << " cut " << c.str(g) << " trial " << trial;
      }
    }
  }
}

TEST_P(CutSemanticsTest, BitsOutsideSupportNeverMatter) {
  const Graph g = randomLogic(GetParam() + 100, 14);
  const CutDatabase db = enumerateCuts(g);
  std::mt19937 rng(GetParam() * 31);

  // A base assignment of boundary values per cut; then flip single bits.
  for (NodeId v = 0; v < g.size(); ++v) {
    const ir::Node& n = g.node(v);
    for (const Cut& c : db.at(v).cuts) {
      if (c.kind != CutKind::Lut || c.elements.empty()) continue;
      std::map<NodeId, std::uint64_t> base;
      for (const CutElement& e : c.elements) {
        base[e.node] = ir::maskToWidth(rng(), g.node(e.node).width);
      }
      const std::uint64_t rootBase = evalCone(g, v, c, base);

      for (const CutElement& e : c.elements) {
        const std::uint16_t w = g.node(e.node).width;
        for (std::uint16_t bit = 0; bit < w; ++bit) {
          auto flipped = base;
          flipped[e.node] ^= (1ull << bit);
          const std::uint64_t rootFlipped = evalCone(g, v, c, flipped);
          const BitKey key = makeBitKey(e.node, 0, bit);
          for (std::uint16_t j = 0; j < n.width; ++j) {
            const bool inSupport =
                std::binary_search(c.bitSupport[j].begin(),
                                   c.bitSupport[j].end(), key);
            if (!inSupport) {
              EXPECT_EQ((rootBase >> j) & 1, (rootFlipped >> j) & 1)
                  << "node " << v << " cut " << c.str(g) << " boundary bit "
                  << e.node << "[" << bit << "] leaked into output bit " << j;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutSemanticsTest, ::testing::Range(1u, 9u));

}  // namespace
}  // namespace lamp::cut
