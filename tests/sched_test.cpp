// Tests for the scheduling layer: delay model, dependence windows, the
// SDC heuristic baseline, and the MILP formulation in both arms
// (MILP-base on trivial cuts, MILP-map on enumerated cuts). Every
// produced schedule must pass the independent constraint validator.

#include <gtest/gtest.h>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

namespace lamp::sched {
namespace {

using ir::GraphBuilder;
using ir::OpKind;
using ir::Value;

const DelayModel kDm;  // defaults: 1.37 ns LUT, 10 ns target in options

/// xor chain of `n` ops over `width` bits — the XORR shape from the paper.
ir::Graph xorChain(int n, int width) {
  GraphBuilder b("xorchain");
  Value acc = b.input("i0", static_cast<std::uint16_t>(width));
  for (int i = 1; i <= n; ++i) {
    acc = b.bxor(acc, b.input("i" + std::to_string(i),
                              static_cast<std::uint16_t>(width)));
  }
  b.output(acc, "out");
  return b.take();
}

/// Balanced xor reduction over 2^levels inputs.
ir::Graph xorTree(int levels, int width) {
  GraphBuilder b("xortree");
  std::vector<Value> layer;
  for (int i = 0; i < (1 << levels); ++i) {
    layer.push_back(b.input("i" + std::to_string(i),
                            static_cast<std::uint16_t>(width)));
  }
  while (layer.size() > 1) {
    std::vector<Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.bxor(layer[i], layer[i + 1]));
    }
    layer = std::move(next);
  }
  b.output(layer[0], "out");
  return b.take();
}

// --- delay model -----------------------------------------------------------

TEST(DelayModelTest, ClassDelays) {
  GraphBuilder b("t");
  Value a = b.input("a", 32);
  Value c = b.input("c", 32);
  Value x = b.bxor(a, c);
  Value sh = b.shr(a, 3);
  Value s = b.add(a, c);
  Value m = b.mul(a, c, 32);
  const ir::Graph& g = b.graph();
  EXPECT_DOUBLE_EQ(kDm.additiveDelay(g, x.id), 1.37);
  EXPECT_DOUBLE_EQ(kDm.additiveDelay(g, sh.id), 0.0);
  EXPECT_DOUBLE_EQ(kDm.additiveDelay(g, s.id), 1.37 + 0.05 * 32);
  EXPECT_DOUBLE_EQ(kDm.additiveDelay(g, m.id), 12.0);
  EXPECT_EQ(kDm.latencyCycles(g, m.id, 10.0), 1);
  EXPECT_NEAR(kDm.remainderNs(g, m.id, 10.0), 2.0, 1e-12);
  EXPECT_EQ(kDm.latencyCycles(g, x.id, 10.0), 0);
}

TEST(DelayModelTest, CompareUsesOperandWidth) {
  GraphBuilder b("t");
  Value a = b.input("a", 48);
  Value c = b.input("c", 48);
  Value lt = b.lt(a, c, false);
  EXPECT_DOUBLE_EQ(kDm.rootDelay(b.graph(), lt.id), 1.37 + 0.05 * 48);
}

// --- windows ----------------------------------------------------------------

TEST(WindowsTest, CombinationalGraphHasFullWindows) {
  const ir::Graph g = xorChain(4, 8);
  const Windows w = computeWindows(g, kDm, 1, 10.0, 5);
  ASSERT_TRUE(w.feasible);
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    if (g.node(v).kind == OpKind::Input) {
      EXPECT_EQ(w.alap[v], 0);
    } else {
      EXPECT_EQ(w.asap[v], 0);  // no BB latencies anywhere
      EXPECT_EQ(w.alap[v], 5);
    }
  }
}

TEST(WindowsTest, BlackBoxLatencyShiftsWindows) {
  GraphBuilder b("bb");
  Value a = b.input("a", 16);
  Value m = b.mul(a, a, 16);   // 12 ns -> 1 cycle latency at 10 ns
  Value x = b.bnot(m);
  b.output(x, "o");
  const Windows w = computeWindows(b.graph(), kDm, 1, 10.0, 4);
  ASSERT_TRUE(w.feasible);
  EXPECT_EQ(w.asap[x.id], 1);              // must wait for the multiplier
  EXPECT_EQ(w.alap[m.id], 3);              // leave one cycle for latency
}

TEST(WindowsTest, InfeasibleRecurrenceDetected) {
  // acc = mul(acc@1) needs 1 cycle latency + same-iteration distance 1:
  // feasible at II=1 only if lat <= II; make lat 2 by a slower DSP.
  GraphBuilder b("rec");
  Value x = b.input("x", 8);
  Value ph = b.placeholder(8, "st");
  Value m = b.mul(ph, x, 8);
  Value nx = b.bxor(m, x);
  b.bindPlaceholder(ph, Value{nx.id, 1});
  b.output(nx, "o");
  DelayModel slow = kDm;
  slow.dspMulNs = 25.0;  // 2-cycle latency at 10 ns
  const Windows w1 = computeWindows(ir::compact(b.graph()), slow, 1, 10.0, 8);
  EXPECT_FALSE(w1.feasible);
  const Windows w3 = computeWindows(ir::compact(b.graph()), slow, 3, 10.0, 8);
  EXPECT_TRUE(w3.feasible);
}

// --- SDC baseline ------------------------------------------------------------

TEST(SdcTest, ChainSplitsAtClockBoundary) {
  // 9 chained xors at 1.37 ns each = 12.33 ns > 10 ns: needs 2 cycles.
  const ir::Graph g = xorChain(9, 32);
  const auto db = cut::trivialCuts(g);
  SdcOptions opts;
  const SdcResult r = sdcSchedule(g, db, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.schedule.latency(g), 1);  // cycles 0 and 1
  const auto diag = validateSchedule({g, db, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

TEST(SdcTest, ShortChainFitsOneCycle) {
  const ir::Graph g = xorChain(5, 32);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.schedule.latency(g), 0);
}

TEST(SdcTest, ResourceConstraintSerializesLoads) {
  GraphBuilder b("mem");
  Value a0 = b.input("a0", 10);
  Value a1 = b.input("a1", 10);
  Value l0 = b.load(ir::ResourceClass::MemPortA, a0, 32);
  Value l1 = b.load(ir::ResourceClass::MemPortA, a1, 32);
  b.output(b.bxor(l0, l1), "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  SdcOptions opts;
  opts.ii = 2;
  opts.resources[ir::ResourceClass::MemPortA] = 1;
  const SdcResult r = sdcSchedule(g, db, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_NE(r.schedule.cycle[l0.id] % 2, r.schedule.cycle[l1.id] % 2);
  const auto diag =
      validateSchedule({g, db, kDm, opts.resources}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

TEST(SdcTest, ResourceInfeasibleAtLowIi) {
  GraphBuilder b("mem");
  Value a0 = b.input("a0", 10);
  Value l0 = b.load(ir::ResourceClass::MemPortA, a0, 32);
  Value l1 = b.load(ir::ResourceClass::MemPortA, a0, 32);
  b.output(b.bxor(l0, l1), "o");
  const ir::Graph g = b.take();
  SdcOptions opts;
  opts.ii = 1;
  opts.resources[ir::ResourceClass::MemPortA] = 1;
  const SdcResult r = sdcSchedule(g, cut::trivialCuts(g), kDm, opts);
  EXPECT_FALSE(r.success);
}

TEST(SdcTest, MultiCycleBlackBoxChainsCorrectly) {
  GraphBuilder b("bb");
  Value a = b.input("a", 16);
  Value m = b.mul(a, a, 16);
  Value x = b.bnot(m);
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  // mul occupies cycle 0 (latency 1, remainder 2 ns): the not runs in
  // cycle 1 after the 2 ns remainder.
  EXPECT_EQ(r.schedule.cycle[m.id], 0);
  EXPECT_EQ(r.schedule.cycle[x.id], 1);
  EXPECT_NEAR(r.schedule.startNs[x.id], 2.0, 1e-9);
  const auto diag = validateSchedule({g, db, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

// --- MILP -------------------------------------------------------------------

MilpSchedOptions quickOpts(int maxLatency) {
  MilpSchedOptions o;
  o.maxLatency = maxLatency;
  o.solver.timeLimitSeconds = 30.0;
  return o;
}

TEST(MilpSchedTest, BaseMatchesSdcOnChain) {
  // MILP-base sees the same additive delays... it sees rootDelay, which
  // equals the additive delay for every class used here; on a pure chain
  // there is nothing to absorb, so latency must match the SDC result.
  const ir::Graph g = xorChain(9, 8);
  const auto db = cut::trivialCuts(g);
  const SdcResult sdc = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(sdc.success);
  MilpSchedOptions opts = quickOpts(sdc.schedule.latency(g) + 1);
  opts.warmStart = &sdc.schedule;
  const MilpSchedResult r = milpSchedule(g, db, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  const auto diag = validateSchedule({g, db, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
  EXPECT_EQ(r.schedule.latency(g), 1);
}

TEST(MilpSchedTest, MapCollapsesXorTreeToOneCycle) {
  // Depth-4 xor tree: additive 4*1.37 fits one cycle anyway; use depth 9
  // chain instead: mapping packs pairs of xors into 4-LUTs, so the chain
  // becomes 5 LUT levels = 6.85 ns < 10 ns -> single cycle, zero regs.
  const ir::Graph g = xorChain(9, 8);
  const auto trivial = cut::trivialCuts(g);
  const auto mapped = cut::enumerateCuts(g);
  const SdcResult sdc = sdcSchedule(g, trivial, kDm, {});
  ASSERT_TRUE(sdc.success);
  ASSERT_EQ(sdc.schedule.latency(g), 1);  // the baseline needs 2 stages

  MilpSchedOptions opts = quickOpts(sdc.schedule.latency(g) + 1);
  opts.warmStart = &sdc.schedule;
  const MilpSchedResult r = milpSchedule(g, mapped, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  const auto diag = validateSchedule({g, mapped, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
  EXPECT_EQ(r.schedule.latency(g), 0) << "mapping-aware should fit 1 cycle";
  EXPECT_NEAR(r.regTerm, 0.0, 1e-6);
}

TEST(MilpSchedTest, MapReducesLutCountOnTree) {
  // 8-input xor tree (7 xors, 8 bits): unit-cut cover needs 7*8 LUT bits,
  // the mapped cover needs at most 3 roots' worth (two 4-input LUT layers).
  const ir::Graph g = xorTree(3, 8);
  const auto mapped = cut::enumerateCuts(g);
  const auto trivial = cut::trivialCuts(g);
  const SdcResult sdc = sdcSchedule(g, trivial, kDm, {});
  ASSERT_TRUE(sdc.success);
  MilpSchedOptions opts = quickOpts(sdc.schedule.latency(g) + 1);
  opts.warmStart = &sdc.schedule;
  const MilpSchedResult r = milpSchedule(g, mapped, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  // alpha = 0.5: 3 roots * 8 bits * 0.5 = 12.
  EXPECT_LE(r.lutTerm, 12.0 + 1e-6);
  const auto diag = validateSchedule({g, mapped, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

TEST(MilpSchedTest, RegistersCountLifetimes) {
  // a (cycle 0) consumed again 2 cycles later via a BB chain: its 8 bits
  // must be held for 2 cycles => regTerm = beta * 8 * 2.
  GraphBuilder b("life");
  Value a = b.input("a", 8);
  Value m = b.mul(a, a, 8, "m");   // 1-cycle latency, finishes cycle 1
  Value x = b.bxor(m, a, "x");     // consumes a at cycle >= 1
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const SdcResult sdc = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(sdc.success);
  MilpSchedOptions opts = quickOpts(3);
  opts.warmStart = &sdc.schedule;
  const MilpSchedResult r = milpSchedule(g, db, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  // a lives 0..1 (1 cycle), m's result is consumed the cycle it appears.
  EXPECT_NEAR(r.regTerm, 0.5 * 8 * 1, 1e-6);
}

TEST(MilpSchedTest, ResourceConstraintRespected) {
  GraphBuilder b("mem");
  Value a0 = b.input("a0", 10);
  Value a1 = b.input("a1", 10);
  Value l0 = b.load(ir::ResourceClass::MemPortA, a0, 16);
  Value l1 = b.load(ir::ResourceClass::MemPortA, a1, 16);
  b.output(b.bxor(l0, l1), "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  MilpSchedOptions opts = quickOpts(4);
  opts.ii = 2;
  opts.resources[ir::ResourceClass::MemPortA] = 1;
  const MilpSchedResult r = milpSchedule(g, db, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;
  const auto diag = validateSchedule({g, db, kDm, opts.resources}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

TEST(MilpSchedTest, LoopCarriedAccumulatorSchedules) {
  GraphBuilder b("acc");
  Value x = b.input("x", 8);
  Value ph = b.placeholder(8, "st");
  Value nx = b.bxor(x, Value{ph.id, 1}, "next");
  b.bindPlaceholder(ph, nx);
  b.output(nx, "o");
  const ir::Graph g = ir::compact(b.graph());
  const auto db = cut::enumerateCuts(g);
  const MilpSchedResult r = milpSchedule(g, db, kDm, quickOpts(2));
  ASSERT_TRUE(r.success) << r.error;
  const auto diag = validateSchedule({g, db, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
  // The recurrence register (8 bits held 1 cycle = II) is unavoidable.
  EXPECT_NEAR(r.regTerm, 0.5 * 8.0, 1e-6);
}

TEST(MilpSchedTest, InfeasibleLatencyBoundFails) {
  GraphBuilder b("bb2");
  Value a = b.input("a", 8);
  Value m1 = b.mul(a, a, 8);
  Value m2 = b.mul(m1, a, 8);
  b.output(m2, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const MilpSchedResult r = milpSchedule(g, db, kDm, quickOpts(1));
  EXPECT_FALSE(r.success);  // needs >= 2 cycles of latency for two DSPs
}

TEST(MilpSchedTest, WarmStartAcceptedAndImproved) {
  const ir::Graph g = xorChain(9, 4);
  const auto mapped = cut::enumerateCuts(g);
  const auto trivial = cut::trivialCuts(g);
  const SdcResult sdc = sdcSchedule(g, trivial, kDm, {});
  ASSERT_TRUE(sdc.success);

  MilpSchedOptions opts = quickOpts(2);
  opts.warmStart = &sdc.schedule;
  opts.solver.maxNodes = 1;  // only the root relaxation + warm start
  const MilpSchedResult r = milpSchedule(g, mapped, kDm, opts);
  ASSERT_TRUE(r.success) << r.error;  // warm start guarantees an incumbent
  const auto diag = validateSchedule({g, mapped, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

// --- validator rejects broken schedules -------------------------------------

TEST(ValidateTest, CatchesDependenceViolation) {
  const ir::Graph g = xorChain(2, 4);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  Schedule broken = r.schedule;
  // Move the final xor before its operand's cycle... all in cycle 0 here;
  // instead move an input's consumer impossible; move output earlier than
  // driver by pushing driver later.
  broken.cycle[broken.cycle.size() - 2] = 1;  // the last xor
  const auto diag = validateSchedule({g, db, kDm, {}}, broken);
  EXPECT_NE(diag, std::nullopt);
}

TEST(ValidateTest, CatchesMissingRoot) {
  const ir::Graph g = xorChain(2, 4);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  Schedule broken = r.schedule;
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    if (g.node(v).kind == OpKind::Xor) {
      broken.selectedCut[v] = kAbsorbed;
      break;
    }
  }
  const auto diag = validateSchedule({g, db, kDm, {}}, broken);
  EXPECT_NE(diag, std::nullopt);
}

TEST(ValidateTest, CatchesTimingViolation) {
  const ir::Graph g = xorChain(9, 4);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  Schedule broken = r.schedule;
  // Flatten everything into cycle 0 with L=0: chaining now violates Tcp.
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    if (broken.cycle[v] > 0) broken.cycle[v] = 0;
    broken.startNs[v] = 0.0;
  }
  const auto diag = validateSchedule({g, db, kDm, {}}, broken);
  EXPECT_NE(diag, std::nullopt);
}

}  // namespace
}  // namespace lamp::sched
