// Tests for the downstream implementation evaluator: materialization,
// register counting, per-stage remapping, achieved clock period — and the
// key cross-flow property that the same evaluator charges the HLS-style
// schedule more FFs than the mapping-aware schedule.

#include <gtest/gtest.h>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "map/area.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

namespace lamp::map {
namespace {

using ir::GraphBuilder;
using ir::Value;
using sched::DelayModel;
using sched::Schedule;
using sched::SdcResult;

const DelayModel kDm;

ir::Graph xorChain(int n, int width) {
  GraphBuilder b("xorchain");
  Value acc = b.input("i0", static_cast<std::uint16_t>(width));
  for (int i = 1; i <= n; ++i) {
    acc = b.bxor(acc, b.input("i" + std::to_string(i),
                              static_cast<std::uint16_t>(width)));
  }
  b.output(acc, "out");
  return b.take();
}

TEST(RegisterCountTest, SingleCycleNeedsNoRegisters) {
  const ir::Graph g = xorChain(3, 8);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.schedule.latency(g), 0);
  EXPECT_EQ(countRegisterBits(g, r.schedule, kDm), 0);
}

TEST(RegisterCountTest, CrossStageValuesAreCounted) {
  // Chain of 9 xors, 32 bits: SDC splits after 7 ops (7*1.37 = 9.59 ns).
  // One 32-bit value crosses the boundary, plus the two inputs consumed
  // in cycle 1 must be held one cycle each.
  const ir::Graph g = xorChain(9, 32);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.schedule.latency(g), 1);
  const int ffs = countRegisterBits(g, r.schedule, kDm);
  EXPECT_EQ(ffs, 32 * 3);  // chain value + 2 held inputs
}

TEST(RegisterCountTest, LoopCarriedValueHeldForIi) {
  GraphBuilder b("acc");
  Value x = b.input("x", 16);
  Value ph = b.placeholder(16, "st");
  Value nx = b.bxor(x, Value{ph.id, 1});
  b.bindPlaceholder(ph, nx);
  b.output(nx, "o");
  const ir::Graph g = ir::compact(b.graph());
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  EXPECT_EQ(countRegisterBits(g, r.schedule, kDm), 16);
}

TEST(EvaluateTest, RemapPacksLogicWithinStage) {
  // 9-xor chain, 8 bits, single MILP-map cycle: remap needs ceil(9 xors
  // into 4-LUTs) = 3 LUT roots x 8 bits = 24 LUTs; 5 levels -> 6.85 ns.
  const ir::Graph g = xorChain(9, 8);
  const auto mapped = cut::enumerateCuts(g);
  const auto trivial = cut::trivialCuts(g);
  const SdcResult sdc = sdcSchedule(g, trivial, kDm, {});
  ASSERT_TRUE(sdc.success);
  sched::MilpSchedOptions mo;
  mo.maxLatency = sdc.schedule.latency(g) + 1;
  mo.warmStart = &sdc.schedule;
  mo.solver.timeLimitSeconds = 30;
  const auto milp = milpSchedule(g, mapped, kDm, mo);
  ASSERT_TRUE(milp.success) << milp.error;
  ASSERT_EQ(milp.schedule.latency(g), 0);

  const AreaReport rep = evaluate(g, milp.schedule, kDm);
  EXPECT_EQ(rep.ffs, 0);
  EXPECT_EQ(rep.stages, 1);
  EXPECT_EQ(rep.luts, 3 * 8);
  EXPECT_LE(rep.cpNs, 10.0 + 1e-9);
  EXPECT_TRUE(rep.warning.empty()) << rep.warning;
}

TEST(EvaluateTest, SameEvaluatorChargesBaselineMoreFfs) {
  const ir::Graph g = xorChain(9, 32);
  const auto trivial = cut::trivialCuts(g);
  const auto mapped = cut::enumerateCuts(g);
  const SdcResult sdc = sdcSchedule(g, trivial, kDm, {});
  ASSERT_TRUE(sdc.success);
  sched::MilpSchedOptions mo;
  mo.maxLatency = sdc.schedule.latency(g) + 1;
  mo.warmStart = &sdc.schedule;
  mo.solver.timeLimitSeconds = 30;
  const auto milp = milpSchedule(g, mapped, kDm, mo);
  ASSERT_TRUE(milp.success) << milp.error;

  const AreaReport hls = evaluate(g, sdc.schedule, kDm);
  const AreaReport mapAware = evaluate(g, milp.schedule, kDm);
  EXPECT_GT(hls.ffs, 0);
  EXPECT_EQ(mapAware.ffs, 0);
  // Both flows' logic is remapped by the same covering, so LUTs match on
  // this simple chain (no sharing constraints from registers here).
  EXPECT_LE(mapAware.luts, hls.luts + 1);
}

TEST(EvaluateTest, BlackBoxChainsIntoStageTiming) {
  GraphBuilder b("bb");
  Value a = b.input("a", 16);
  Value addr = b.input("addr", 10);
  Value l = b.load(ir::ResourceClass::MemPortA, addr, 16);  // 3.0 ns
  Value x = b.bxor(a, l);  // + one mapped LUT level (1.2 ns)
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.schedule.latency(g), 0);
  const AreaReport rep = evaluate(g, r.schedule, kDm);
  EXPECT_NEAR(rep.cpNs, kDm.memReadNs + kDm.lutDelayNs, 1e-9);
  EXPECT_EQ(rep.ffs, 0);
}

TEST(EvaluateTest, WideAddCountsCarryLuts) {
  GraphBuilder b("add");
  Value a = b.input("a", 32);
  Value c = b.input("c", 32);
  b.output(b.add(a, c), "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  const AreaReport rep = evaluate(g, r.schedule, kDm);
  EXPECT_EQ(rep.luts, 32);
  EXPECT_NEAR(rep.cpNs, 1.37 + 0.05 * 32, 1e-9);
}

TEST(EvaluateTest, PureWiringCostsNothing) {
  GraphBuilder b("wire");
  Value a = b.input("a", 32);
  b.output(b.slice(b.shr(a, 3), 0, 8), "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  const AreaReport rep = evaluate(g, r.schedule, kDm);
  EXPECT_EQ(rep.luts, 0);
  EXPECT_EQ(rep.ffs, 0);
  EXPECT_NEAR(rep.cpNs, 0.0, 1e-9);
}

TEST(EvaluateTest, MultiCycleBlackBoxLifetime) {
  GraphBuilder b("dsp");
  Value a = b.input("a", 8);
  Value m = b.mul(a, a, 8);   // ready at cycle 1
  Value x = b.bxor(m, a);     // consumes a at cycle 1: a held 1 cycle
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  const AreaReport rep = evaluate(g, r.schedule, kDm);
  EXPECT_EQ(rep.ffs, 8);      // the held input
  EXPECT_EQ(rep.stages, 2);
}


TEST(EvaluateTest, TimingSummaryListsStages) {
  const ir::Graph g = xorChain(9, 32);
  const auto db = cut::trivialCuts(g);
  const SdcResult r = sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);
  const AreaReport rep = evaluate(g, r.schedule, kDm);
  ASSERT_EQ(rep.cpPerStage.size(), static_cast<std::size_t>(rep.stages));
  const std::string text = timingSummary(rep, 10.0);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
  EXPECT_NE(text.find("stage 1"), std::string::npos);
  EXPECT_NE(text.find("slack"), std::string::npos);
  EXPECT_EQ(text.find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace lamp::map
