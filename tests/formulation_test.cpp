// Equivalence of the two MILP renderings: the paper-literal Eqs. (9)-(13)
// (per-cut chaining rows, explicit live_{v,t} variables) and the compact
// lifetime form must agree on the optimal objective for every small
// instance — they encode the same polytope projection.

#include <gtest/gtest.h>

#include <random>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

namespace lamp::sched {
namespace {

using ir::GraphBuilder;
using ir::Value;

const DelayModel kDm;

MilpSchedResult solveWith(const ir::Graph& g, const cut::CutDatabase& db,
                          Formulation f, int maxLatency) {
  MilpSchedOptions mo;
  mo.formulation = f;
  mo.maxLatency = maxLatency;
  mo.solver.timeLimitSeconds = 60;
  return milpSchedule(g, db, kDm, mo);
}

void expectEquivalent(const ir::Graph& g, int maxLatency) {
  for (const bool mapped : {false, true}) {
    const cut::CutDatabase db =
        mapped ? cut::enumerateCuts(g) : cut::trivialCuts(g);
    const auto compact = solveWith(g, db, Formulation::Compact, maxLatency);
    const auto lit = solveWith(g, db, Formulation::Literal, maxLatency);
    ASSERT_TRUE(compact.success) << compact.error;
    ASSERT_TRUE(lit.success) << lit.error;
    ASSERT_EQ(compact.status, lp::SolveStatus::Optimal);
    ASSERT_EQ(lit.status, lp::SolveStatus::Optimal);
    EXPECT_NEAR(compact.objective, lit.objective, 1e-5)
        << (mapped ? "mapped" : "trivial") << " cuts";
    // Both schedules must validate.
    for (const auto* r : {&compact, &lit}) {
      const auto diag = validateSchedule({g, db, kDm, {}}, r->schedule);
      EXPECT_EQ(diag, std::nullopt) << *diag;
    }
  }
}

TEST(FormulationTest, XorChainEquivalent) {
  GraphBuilder b("chain");
  std::vector<Value> in;
  for (int i = 0; i < 9; ++i) in.push_back(b.input("i" + std::to_string(i), 4));
  Value acc = in[0];
  for (int i = 1; i < 9; ++i) acc = b.bxor(acc, in[i]);
  b.output(acc, "o");
  expectEquivalent(b.take(), 3);
}

TEST(FormulationTest, LoopCarriedEquivalent) {
  GraphBuilder b("acc");
  Value xv = b.input("x", 4);
  Value ph = b.placeholder(4, "st");
  Value mixed = b.band(xv, b.bnot(Value{ph.id, 1}));
  Value nx = b.bxor(mixed, xv);
  b.bindPlaceholder(ph, nx);
  b.output(nx, "o");
  expectEquivalent(ir::compact(b.graph()), 3);
}

TEST(FormulationTest, MultiCycleBlackBoxEquivalent) {
  GraphBuilder b("bb");
  Value a = b.input("a", 6);
  Value m = b.mul(a, a, 6);
  Value x = b.bxor(m, a);
  b.output(x, "o");
  expectEquivalent(b.take(), 3);
}

TEST(FormulationTest, RandomGraphsEquivalent) {
  for (unsigned seed = 1; seed <= 6; ++seed) {
    std::mt19937 rng(seed * 40503u);
    GraphBuilder b("rand");
    std::vector<Value> pool;
    for (int i = 0; i < 3; ++i) {
      pool.push_back(b.input("in" + std::to_string(i), 6));
    }
    for (int i = 0; i < 8; ++i) {
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      Value x = pool[pick(rng)];
      Value y = pool[pick(rng)];
      switch (rng() % 4) {
        case 0: pool.push_back(b.band(x, y)); break;
        case 1: pool.push_back(b.bxor(x, y)); break;
        case 2: pool.push_back(b.bor(b.bnot(x), y)); break;
        default: pool.push_back(b.mux(b.bit(x, 0), x, y)); break;
      }
    }
    b.output(pool.back(), "o");
    ir::Graph g = b.take();
    SCOPED_TRACE("seed " + std::to_string(seed));
    expectEquivalent(g, 2);
  }
}

TEST(FormulationTest, LiteralBuildsMoreRows) {
  // The whole reason Compact exists: Literal's per-(v,i,u,t) liveness
  // rows dominate instance size (Table 2's "runtime scales with the
  // number of constraints" observation).
  GraphBuilder b("chain");
  std::vector<Value> in;
  for (int i = 0; i < 9; ++i) in.push_back(b.input("i" + std::to_string(i), 8));
  Value acc = in[0];
  for (int i = 1; i < 9; ++i) acc = b.bxor(acc, in[i]);
  b.output(acc, "o");
  const ir::Graph g = b.take();
  const auto db = cut::enumerateCuts(g);
  const auto compact = solveWith(g, db, Formulation::Compact, 3);
  const auto lit = solveWith(g, db, Formulation::Literal, 3);
  ASSERT_TRUE(compact.success && lit.success);
  EXPECT_GT(lit.numConstraints, 2 * compact.numConstraints);
}

}  // namespace
}  // namespace lamp::sched
