// Functional validation of every benchmark DFG against its C++ golden
// reference via the untimed interpreter, plus structural sanity checks
// (verified graphs, no combinational cycles, plausible op counts).

#include <gtest/gtest.h>

#include "ir/passes.h"
#include "sim/interp.h"
#include "workloads/workloads.h"

namespace lamp::workloads {
namespace {

using sim::InputFrame;
using sim::Interpreter;
using sim::OutputFrame;

class AllBenchmarksTest : public ::testing::TestWithParam<int> {};

TEST_P(AllBenchmarksTest, GraphVerifiesAndHasIo) {
  for (const Scale scale : {Scale::Default, Scale::Paper}) {
    const Benchmark bm = allBenchmarks(scale)[GetParam()];
    const auto diag = ir::verify(bm.graph);
    EXPECT_EQ(diag, std::nullopt) << bm.name << ": " << *diag;
    EXPECT_FALSE(bm.graph.inputs().empty()) << bm.name;
    EXPECT_FALSE(bm.graph.outputs().empty()) << bm.name;
    EXPECT_GE(bm.graph.size(), 10u) << bm.name;
  }
}

TEST_P(AllBenchmarksTest, PaperScaleIsLarger) {
  const Benchmark d = allBenchmarks(Scale::Default)[GetParam()];
  const Benchmark p = allBenchmarks(Scale::Paper)[GetParam()];
  EXPECT_GT(p.graph.size(), d.graph.size()) << d.name;
}

INSTANTIATE_TEST_SUITE_P(All, AllBenchmarksTest, ::testing::Range(0, 9));

// --- golden-vs-interpreter checks, one per benchmark ------------------------

TEST(ClzTest, MatchesReference) {
  const Benchmark bm = makeClz(Scale::Default);
  Interpreter interp(bm.graph);
  const ir::NodeId in = bm.graph.inputs()[0];
  const ir::NodeId out = bm.graph.outputs()[0];
  for (std::uint64_t v :
       {0ull, 1ull, 0xFFFFFFFFull, 0x80000000ull, 0x00010000ull, 0x7ull,
        0x0000FFFFull, 0x12345678ull, 0x00000001ull, 0x40000000ull}) {
    interp.reset();
    const OutputFrame f = interp.step({{in, v}});
    EXPECT_EQ(f.at(out), static_cast<std::uint64_t>(clzRef(v, 32)))
        << "v=" << std::hex << v;
  }
}

TEST(ClzTest, PaperScaleMatchesReference64) {
  const Benchmark bm = makeClz(Scale::Paper);
  Interpreter interp(bm.graph);
  const ir::NodeId in = bm.graph.inputs()[0];
  const ir::NodeId out = bm.graph.outputs()[0];
  for (std::uint64_t v : {0ull, 1ull, ~0ull, 0x8000000000000000ull,
                          0x0000000100000000ull, 0x00FF00FF00FF00FFull}) {
    interp.reset();
    EXPECT_EQ(interp.step({{in, v}}).at(out),
              static_cast<std::uint64_t>(clzRef(v, 64)));
  }
}

TEST(XorrTest, MatchesReference) {
  const Benchmark bm = makeXorr(Scale::Default);
  Interpreter interp(bm.graph);
  const ir::NodeId out = bm.graph.outputs()[0];
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    const InputFrame f = bm.makeInputs(seed * 3, seed);
    std::uint64_t expected = 0;
    for (const auto& [id, v] : f) expected ^= v & 0xFFFFFFFFull;
    interp.reset();
    EXPECT_EQ(interp.step(f).at(out), expected);
  }
}

TEST(GfmulTest, MatchesReferenceExhaustiveSample) {
  const Benchmark bm = makeGfmul(Scale::Default);
  Interpreter interp(bm.graph);
  const auto ins = bm.graph.inputs();
  const ir::NodeId out = bm.graph.outputs()[0];
  for (int a = 0; a < 256; a += 7) {
    for (int c = 0; c < 256; c += 11) {
      interp.reset();
      const OutputFrame f = interp.step(
          {{ins[0], static_cast<std::uint64_t>(a)},
           {ins[1], static_cast<std::uint64_t>(c)}});
      EXPECT_EQ(f.at(out), gfmulRef(static_cast<std::uint8_t>(a),
                                    static_cast<std::uint8_t>(c)))
          << a << "*" << c;
    }
  }
}

TEST(CordicTest, MatchesStepReference) {
  const Benchmark bm = makeCordic(Scale::Default);
  Interpreter interp(bm.graph);
  const auto ins = bm.graph.inputs();
  const auto outs = bm.graph.outputs();
  constexpr std::uint16_t kAtan[12] = {12868, 7596, 4014, 2037, 1023, 512,
                                       256,   128,  64,   32,   16,   8};
  // 14-bit two's-complement arithmetic mirroring the graph.
  const auto sex = [](std::uint64_t v) {
    return static_cast<std::int32_t>((v & 0x2000) ? (v | ~0x3FFFu) : v);
  };
  const auto wrap = [](std::int32_t v) {
    return static_cast<std::uint16_t>(v & 0x3FFF);
  };
  const auto ref = [&](std::uint16_t x0, std::uint16_t y0, std::uint16_t z0) {
    std::int32_t x = sex(x0), y = sex(y0), z = sex(z0);
    for (int i = 0; i < 6; ++i) {
      const bool d = z >= 0;
      const std::int32_t xs = x >> i;
      const std::int32_t ys = y >> i;
      const std::int32_t at = kAtan[i] >> 2;
      const std::int32_t xn = d ? x - ys : x + ys;
      const std::int32_t yn = d ? y + xs : y - xs;
      const std::int32_t zn = d ? z - at : z + at;
      x = sex(wrap(xn)); y = sex(wrap(yn)); z = sex(wrap(zn));
    }
    return std::array<std::uint16_t, 3>{wrap(x), wrap(y), wrap(z)};
  };
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const InputFrame f = bm.makeInputs(seed, seed * 3);
    interp.reset();
    const OutputFrame o = interp.step(f);
    const auto expect = ref(static_cast<std::uint16_t>(f.at(ins[0])),
                            static_cast<std::uint16_t>(f.at(ins[1])),
                            static_cast<std::uint16_t>(f.at(ins[2])));
    EXPECT_EQ(o.at(outs[0]), expect[0]);
    EXPECT_EQ(o.at(outs[1]), expect[1]);
    EXPECT_EQ(o.at(outs[2]), expect[2]);
  }
}

TEST(MtTest, MatchesReference) {
  const Benchmark bm = makeMt(Scale::Default);
  Interpreter interp(bm.graph);
  bm.initMemory(interp.memory());
  const ir::NodeId in = bm.graph.inputs()[0];
  const ir::NodeId out = bm.graph.outputs()[0];
  // Rebuild the same bank to fetch expected words.
  std::vector<std::uint64_t> bank(1024);
  std::uint32_t s = 19650218u;
  for (auto& w : bank) {
    s = 1812433253u * (s ^ (s >> 30)) + 1;
    w = s;
  }
  for (std::uint64_t idx : {0ull, 5ull, 123ull, 599ull}) {
    interp.reset();
    const OutputFrame f = interp.step({{in, idx}});
    EXPECT_EQ(f.at(out),
              mtStepRef(static_cast<std::uint32_t>(bank[idx]),
                        static_cast<std::uint32_t>(bank[idx + 1]),
                        static_cast<std::uint32_t>(bank[idx + 397])));
  }
}

TEST(AesTest, MatchesColumnReference) {
  const Benchmark bm = makeAes(Scale::Default);
  Interpreter interp(bm.graph);
  bm.initMemory(interp.memory());
  const auto ins = bm.graph.inputs();
  const auto outs = bm.graph.outputs();
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const InputFrame f = bm.makeInputs(seed, seed * 7);
    std::array<std::uint8_t, 4> sIn{}, kIn{};
    for (int i = 0; i < 4; ++i) {
      sIn[i] = static_cast<std::uint8_t>(f.at(ins[i]));
      kIn[i] = static_cast<std::uint8_t>(f.at(ins[4 + i]));
    }
    interp.reset();
    const OutputFrame o = interp.step(f);
    const auto expect = aesColumnRef(sIn, kIn);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(o.at(outs[i]), expect[i]) << "byte " << i;
    }
  }
}

TEST(RsTest, MatchesSyndromeRecurrence) {
  const Benchmark bm = makeRs(Scale::Default);
  Interpreter interp(bm.graph);
  const ir::NodeId in = bm.graph.inputs()[0];
  const auto outs = bm.graph.outputs();
  std::array<std::uint8_t, 3> syn{};
  for (std::uint64_t iter = 0; iter < 20; ++iter) {
    const std::uint8_t r = static_cast<std::uint8_t>(iter * 37 + 5);
    const OutputFrame f = interp.step({{in, r}});
    std::uint8_t any = 0;
    for (int j = 0; j < 3; ++j) {
      syn[j] = static_cast<std::uint8_t>(gfmulByXkRef(syn[j], j) ^ r);
      any |= syn[j];
      EXPECT_EQ(f.at(outs[j]), syn[j]) << "iter " << iter << " syn " << j;
    }
    EXPECT_EQ(f.at(outs[3]), any != 0 ? 1u : 0u) << "iter " << iter;
  }
}

TEST(DrTest, MatchesKnnReference) {
  const Benchmark bm = makeDr(Scale::Default);
  Interpreter interp(bm.graph);
  bm.initMemory(interp.memory());
  const auto ins = bm.graph.inputs();
  const auto outs = bm.graph.outputs();
  // Mirror of initMemory's bank.
  std::vector<std::uint64_t> bank(1024);
  std::uint64_t s = 0x1234567890ABCDEFull;
  for (auto& wd : bank) {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    wd = (s >> 8) & ((1ull << 25) - 1);
  }
  std::uint64_t best = 0;
  std::uint64_t bestIdx = 0;
  bool seen = false;
  for (std::uint64_t iter = 0; iter < 30; ++iter) {
    const InputFrame f = bm.makeInputs(iter, 3);
    const std::uint64_t test = f.at(ins[0]) & ((1ull << 25) - 1);
    const std::uint64_t idx = f.at(ins[1]);
    const std::uint64_t dist = popcountRef(test ^ bank[idx]);
    if (!seen || dist < best) {
      best = dist;
      bestIdx = idx;
      seen = true;
    }
    const OutputFrame o = interp.step(f);
    EXPECT_EQ(o.at(outs[0]), best) << "iter " << iter;
    EXPECT_EQ(o.at(outs[1]), bestIdx) << "iter " << iter;
  }
}

TEST(GsmTest, MatchesWindowMaxReference) {
  const Benchmark bm = makeGsm(Scale::Default);
  Interpreter interp(bm.graph);
  const ir::NodeId in = bm.graph.inputs()[0];
  const auto outs = bm.graph.outputs();
  std::vector<std::uint64_t> absHist;
  for (std::uint64_t iter = 0; iter < 25; ++iter) {
    const InputFrame f = bm.makeInputs(iter, 9);
    const std::int16_t x = static_cast<std::int16_t>(f.at(in));
    const std::uint16_t a =
        static_cast<std::uint16_t>(x < 0 ? -static_cast<std::int32_t>(x) : x);
    absHist.push_back(a);
    std::uint64_t mx = 0;
    for (int d = 0; d < 5; ++d) {
      const std::int64_t k = static_cast<std::int64_t>(iter) - d;
      const std::uint64_t tap = k < 0 ? 0 : absHist[k];
      mx = std::max(mx, tap);
    }
    const OutputFrame o = interp.step(f);
    EXPECT_EQ(o.at(outs[0]), mx) << "iter " << iter;
  }
}


// --- paper-scale golden checks ------------------------------------------------

TEST(PaperScaleTest, XorrMatchesReference) {
  const Benchmark bm = makeXorr(Scale::Paper);
  Interpreter interp(bm.graph);
  const ir::NodeId out = bm.graph.outputs()[0];
  const InputFrame f = bm.makeInputs(5, 9);
  std::uint64_t expected = 0;
  for (const auto& [id, v] : f) expected ^= v & 0xFFFFFFFFull;
  EXPECT_EQ(interp.step(f).at(out), expected);
}

TEST(PaperScaleTest, GfmulBothLanesMatchReference) {
  const Benchmark bm = makeGfmul(Scale::Paper);
  Interpreter interp(bm.graph);
  const auto ins = bm.graph.inputs();
  const auto outs = bm.graph.outputs();
  ASSERT_EQ(ins.size(), 4u);
  ASSERT_EQ(outs.size(), 2u);
  const OutputFrame f = interp.step(
      {{ins[0], 0x57}, {ins[1], 0x83}, {ins[2], 0xCA}, {ins[3], 0x35}});
  EXPECT_EQ(f.at(outs[0]), gfmulRef(0x57, 0x83));
  EXPECT_EQ(f.at(outs[1]), gfmulRef(0xCA, 0x35));
}

TEST(PaperScaleTest, AesAllFourColumnsMatchReference) {
  const Benchmark bm = makeAes(Scale::Paper);
  Interpreter interp(bm.graph);
  bm.initMemory(interp.memory());
  const auto ins = bm.graph.inputs();
  const auto outs = bm.graph.outputs();
  ASSERT_EQ(ins.size(), 32u);
  ASSERT_EQ(outs.size(), 16u);
  const InputFrame f = bm.makeInputs(3, 11);
  const OutputFrame o = interp.step(f);
  for (int c = 0; c < 4; ++c) {
    std::array<std::uint8_t, 4> sIn{}, kIn{};
    for (int i = 0; i < 4; ++i) {
      sIn[i] = static_cast<std::uint8_t>(f.at(ins[c * 4 + i]));
      kIn[i] = static_cast<std::uint8_t>(f.at(ins[16 + c * 4 + i]));
    }
    const auto expect = aesColumnRef(sIn, kIn);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(o.at(outs[c * 4 + i]), expect[i]) << "col " << c;
    }
  }
}

TEST(PaperScaleTest, RsSixSyndromesMatchRecurrence) {
  const Benchmark bm = makeRs(Scale::Paper);
  Interpreter interp(bm.graph);
  const ir::NodeId in = bm.graph.inputs()[0];
  const auto outs = bm.graph.outputs();
  std::array<std::uint8_t, 6> syn{};
  for (std::uint64_t iter = 0; iter < 12; ++iter) {
    const std::uint8_t r = static_cast<std::uint8_t>(iter * 41 + 3);
    const OutputFrame f = interp.step({{in, r}});
    for (int j = 0; j < 6; ++j) {
      syn[j] = static_cast<std::uint8_t>(gfmulByXkRef(syn[j], j) ^ r);
      EXPECT_EQ(f.at(outs[j]), syn[j]) << "iter " << iter << " syn " << j;
    }
  }
}

TEST(PaperScaleTest, GsmWindowEight) {
  const Benchmark bm = makeGsm(Scale::Paper);
  Interpreter interp(bm.graph);
  const ir::NodeId in = bm.graph.inputs()[0];
  const auto outs = bm.graph.outputs();
  std::vector<std::uint64_t> absHist;
  for (std::uint64_t iter = 0; iter < 20; ++iter) {
    const InputFrame f = bm.makeInputs(iter, 4);
    const std::int16_t x = static_cast<std::int16_t>(f.at(in));
    absHist.push_back(static_cast<std::uint16_t>(
        x < 0 ? -static_cast<std::int32_t>(x) : x));
    std::uint64_t mx = 0;
    for (int d = 0; d < 8; ++d) {
      const std::int64_t k = static_cast<std::int64_t>(iter) - d;
      mx = std::max(mx, k < 0 ? 0 : absHist[k]);
    }
    EXPECT_EQ(interp.step(f).at(outs[0]), mx) << "iter " << iter;
  }
}

}  // namespace
}  // namespace lamp::workloads
