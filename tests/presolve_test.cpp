// Tests for the shape-preserving MILP presolve: bound propagation with
// integral rounding, redundant/singleton row handling, infeasibility
// detection, and the soundness contract (integer-feasible points survive;
// MILP optima are unchanged with presolve on or off).

#include <gtest/gtest.h>

#include <random>

#include "lp/milp.h"
#include "lp/presolve.h"

namespace lamp::lp {
namespace {

TEST(PresolveTest, SingletonRowsBecomeBounds) {
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  m.addConstraint(LinExpr::term(x, 2.0), Sense::Le, 6.0);   // x <= 3
  m.addConstraint(LinExpr::term(x, -1.0), Sense::Le, -1.0); // x >= 1
  PresolveStats st;
  const Model r = presolve(m, &st);
  EXPECT_EQ(r.numConstraints(), 0u);
  EXPECT_NEAR(r.lowerBound(x), 1.0, 1e-9);
  EXPECT_NEAR(r.upperBound(x), 3.0, 1e-9);
  EXPECT_EQ(st.singletonRows, 2);
}

TEST(PresolveTest, IntegerRounding) {
  Model m;
  const Var x = m.addVar(0, 10, VarType::Integer, "x");
  m.addConstraint(LinExpr::term(x, 2.0), Sense::Le, 7.0);  // x <= 3.5 -> 3
  const Model r = presolve(m);
  EXPECT_NEAR(r.upperBound(x), 3.0, 1e-9);
}

TEST(PresolveTest, PropagatesThroughRows) {
  // x + y <= 3 with y >= 2 forces x <= 1.
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  const Var y = m.addContinuous(2, 10, "y");
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 3.0);
  const Model r = presolve(m);
  EXPECT_NEAR(r.upperBound(x), 1.0, 1e-9);
  EXPECT_NEAR(r.upperBound(y), 3.0, 1e-9);
}

TEST(PresolveTest, DropsRedundantRows) {
  Model m;
  const Var x = m.addBinary("x");
  const Var y = m.addBinary("y");
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 5.0);  // slack
  PresolveStats st;
  const Model r = presolve(m, &st);
  EXPECT_EQ(r.numConstraints(), 0u);
  EXPECT_EQ(st.rowsDropped, 1);
}

TEST(PresolveTest, DetectsInfeasibility) {
  Model m;
  const Var x = m.addBinary("x");
  const Var y = m.addBinary("y");
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Ge, 3.0);
  PresolveStats st;
  (void)presolve(m, &st);
  EXPECT_TRUE(st.infeasible);
}

TEST(PresolveTest, EqualitySingletonFixesVariable) {
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  const Var y = m.addContinuous(0, 10, "y");
  m.addConstraint(LinExpr::term(x, 2.0), Sense::Eq, 6.0);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 4.0);
  const Model r = presolve(m);
  EXPECT_NEAR(r.lowerBound(x), 3.0, 1e-9);
  EXPECT_NEAR(r.upperBound(x), 3.0, 1e-9);
  EXPECT_NEAR(r.upperBound(y), 1.0, 1e-9);  // propagated through row 2
}

TEST(PresolveTest, KeepsVariableIndexing) {
  Model m;
  for (int i = 0; i < 5; ++i) m.addBinary("b" + std::to_string(i));
  m.addConstraint(LinExpr::term(0, 1.0).add(4, 1.0), Sense::Le, 1.0);
  const Model r = presolve(m);
  ASSERT_EQ(r.numVars(), m.numVars());
  for (Var v = 0; v < 5; ++v) EXPECT_EQ(r.varName(v), m.varName(v));
}

// Soundness: presolve must never change the MILP optimum.
class PresolveEquivalenceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PresolveEquivalenceTest, OptimumUnchanged) {
  std::mt19937 rng(GetParam() * 48271u + 3);
  std::uniform_int_distribution<int> nDist(3, 9), mDist(1, 5);
  std::uniform_real_distribution<double> cDist(-4.0, 4.0);
  const int n = nDist(rng), rows = mDist(rng);
  Model m;
  for (int j = 0; j < n; ++j) m.addBinary();
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) e.add(j, cDist(rng));
    m.addConstraint(e, Sense::Le, cDist(rng) + 1.5);
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add(j, cDist(rng));
  m.setObjective(obj);

  MilpOptions with, without;
  with.presolve = true;
  without.presolve = false;
  const Solution a = MilpSolver(m, with).solve();
  const Solution b = MilpSolver(m, without).solve();
  ASSERT_EQ(a.status, b.status) << "seed " << GetParam();
  if (a.status == SolveStatus::Optimal) {
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "seed " << GetParam();
    EXPECT_TRUE(m.checkFeasible(a.values).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalenceTest,
                         ::testing::Range(1u, 31u));

}  // namespace
}  // namespace lamp::lp
