// Tests for the branch & bound MILP solver: knapsacks with known optima,
// infeasible integer systems, SOS1 branching, incumbent warm starts,
// time-limit behaviour, and randomized cross-checks against brute-force
// enumeration over binary variables.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "lp/milp.h"

namespace lamp::lp {
namespace {

TEST(MilpTest, SmallKnapsack) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5  (binary) => min negated.
  // Best: a=1, c=1, b=1 -> weight 6 > 5; a=1,b=1 -> 5 w=5 -> value 9;
  // a=1,c=1 w=3 value 8; a+b = 9 is optimal? a=1,b=1,c=0: w=5 ok, v=9.
  // a=1,b=0,c=1: v=8. So optimum 9.
  Model m;
  const Var a = m.addBinary("a");
  const Var b = m.addBinary("b");
  const Var c = m.addBinary("c");
  m.addConstraint(
      LinExpr::term(a, 2.0).add(b, 3.0).add(c, 1.0), Sense::Le, 5.0);
  m.setObjective(LinExpr::term(a, -5.0).add(b, -4.0).add(c, -3.0));
  MilpSolver solver(m);
  const Solution s = solver.solve();
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -9.0, 1e-6);
  EXPECT_TRUE(m.checkFeasible(s.values).empty());
}

TEST(MilpTest, IntegerRounding) {
  // min -x s.t. 2x <= 7, x integer in [0, 10] -> x = 3.
  Model m;
  const Var x = m.addVar(0, 10, VarType::Integer, "x");
  m.addConstraint(LinExpr::term(x, 2.0), Sense::Le, 7.0);
  m.setObjective(LinExpr::term(x, -1.0));
  const Solution s = MilpSolver(m).solve();
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[0], 3.0, 1e-9);
}

TEST(MilpTest, InfeasibleIntegerSystem) {
  // 2x + 2y = 3 has no integer solution but a fractional one.
  Model m;
  const Var x = m.addVar(0, 5, VarType::Integer, "x");
  const Var y = m.addVar(0, 5, VarType::Integer, "y");
  m.addConstraint(LinExpr::term(x, 2.0).add(y, 2.0), Sense::Eq, 3.0);
  const Solution s = MilpSolver(m).solve();
  EXPECT_EQ(s.status, SolveStatus::Infeasible);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // min y s.t. y >= 1.5 - x, y >= x - 1.5, x binary, y continuous.
  // For either x, |1.5 - x| is minimized at x=1 -> y = 0.5.
  Model m;
  const Var x = m.addBinary("x");
  const Var y = m.addContinuous(0, 10, "y");
  m.addConstraint(LinExpr::term(y, 1.0).add(x, 1.0), Sense::Ge, 1.5);
  m.addConstraint(LinExpr::term(y, 1.0).add(x, -1.0), Sense::Ge, -1.5);
  m.setObjective(LinExpr::term(y, 1.0));
  const Solution s = MilpSolver(m).solve();
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.5, 1e-6);
  EXPECT_NEAR(s.values[x], 1.0, 1e-6);
}

TEST(MilpTest, OneHotAssignmentWithSos1) {
  // Three tasks, one-hot over 4 slots each; task i prefers slot i with
  // decreasing reward; tasks must occupy distinct slots.
  Model m;
  std::vector<std::vector<Var>> s(3);
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    LinExpr onehot;
    for (int t = 0; t < 4; ++t) {
      const Var v = m.addBinary("s" + std::to_string(i) + "_" +
                                std::to_string(t));
      s[i].push_back(v);
      onehot.add(v, 1.0);
      obj.add(v, std::abs(i - t));  // cost grows away from preferred slot
    }
    m.addConstraint(onehot, Sense::Eq, 1.0);
  }
  for (int t = 0; t < 4; ++t) {
    LinExpr cap;
    for (int i = 0; i < 3; ++i) cap.add(s[i][t], 1.0);
    m.addConstraint(cap, Sense::Le, 1.0);
  }
  m.setObjective(obj);
  MilpSolver solver(m);
  for (int i = 0; i < 3; ++i) {
    solver.addSos1Group(s[i], {0.0, 1.0, 2.0, 3.0});
  }
  const Solution sol = solver.solve();
  ASSERT_EQ(sol.status, SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-6);  // everyone gets the preferred slot
}

TEST(MilpTest, InitialIncumbentAccepted) {
  Model m;
  const Var x = m.addBinary("x");
  const Var y = m.addBinary("y");
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 1.0);
  m.setObjective(LinExpr::term(x, -2.0).add(y, -1.0));
  MilpSolver solver(m);
  solver.setInitialIncumbent({0.0, 1.0});  // feasible, objective -1
  const Solution s = solver.solve();
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -2.0, 1e-6);  // improved over the warm start
}

TEST(MilpTest, BogusIncumbentIgnored) {
  Model m;
  const Var x = m.addBinary("x");
  m.addConstraint(LinExpr::term(x, 1.0), Sense::Le, 0.0);
  m.setObjective(LinExpr::term(x, 1.0));
  MilpSolver solver(m);
  solver.setInitialIncumbent({1.0});  // violates the row
  const Solution s = solver.solve();
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.values[0], 0.0, 1e-9);
}

TEST(MilpTest, NodeLimitReturnsIncumbentAsFeasible) {
  Model m;
  std::vector<Var> vars;
  LinExpr cap, obj;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> d(1.0, 10.0);
  for (int i = 0; i < 25; ++i) {
    const Var v = m.addBinary();
    vars.push_back(v);
    cap.add(v, d(rng));
    obj.add(v, -d(rng));
  }
  m.addConstraint(cap, Sense::Le, 40.0);
  m.setObjective(obj);
  MilpOptions opts;
  opts.maxNodes = 3;
  MilpSolver solver(m, opts);
  std::vector<double> zero(m.numVars(), 0.0);
  solver.setInitialIncumbent(zero);
  const Solution s = solver.solve();
  EXPECT_EQ(s.status, SolveStatus::Feasible);
  EXPECT_TRUE(m.checkFeasible(s.values).empty());
}

TEST(MilpTest, IncumbentCallbackFires) {
  Model m;
  const Var x = m.addBinary("x");
  m.setObjective(LinExpr::term(x, -1.0));
  MilpOptions opts;
  int calls = 0;
  opts.onIncumbent = [&](double, const std::vector<double>&) { ++calls; };
  const Solution s = MilpSolver(m, opts).solve();
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_GE(calls, 1);
}

// --- randomized cross-check against brute force ---------------------------

class MilpRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MilpRandomTest, MatchesBruteForceOnBinaryPrograms) {
  std::mt19937 rng(GetParam() * 104729u);
  std::uniform_int_distribution<int> nDist(3, 10), mDist(1, 5);
  std::uniform_real_distribution<double> cDist(-4.0, 4.0);
  const int n = nDist(rng), rows = mDist(rng);

  Model m;
  for (int j = 0; j < n; ++j) m.addBinary();
  std::vector<std::vector<double>> A(rows, std::vector<double>(n));
  std::vector<double> b(rows);
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) {
      A[i][j] = cDist(rng);
      e.add(j, A[i][j]);
    }
    b[i] = cDist(rng) + 1.0;
    m.addConstraint(e, Sense::Le, b[i]);
  }
  std::vector<double> c(n);
  LinExpr obj;
  for (int j = 0; j < n; ++j) {
    c[j] = cDist(rng);
    obj.add(j, c[j]);
  }
  m.setObjective(obj);

  // Brute force over all 2^n assignments.
  double bestBrute = kInf;
  for (unsigned mask = 0; mask < (1u << n); ++mask) {
    bool ok = true;
    for (int i = 0; i < rows && ok; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) {
        if (mask & (1u << j)) lhs += A[i][j];
      }
      ok = lhs <= b[i] + 1e-12;
    }
    if (!ok) continue;
    double val = 0.0;
    for (int j = 0; j < n; ++j) {
      if (mask & (1u << j)) val += c[j];
    }
    bestBrute = std::min(bestBrute, val);
  }

  const Solution s = MilpSolver(m).solve();
  if (bestBrute == kInf) {
    EXPECT_EQ(s.status, SolveStatus::Infeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "seed " << GetParam();
    EXPECT_NEAR(s.objective, bestBrute, 1e-6) << "seed " << GetParam();
    EXPECT_TRUE(m.checkFeasible(s.values).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MilpRandomTest, ::testing::Range(1u, 41u));

}  // namespace
}  // namespace lamp::lp
