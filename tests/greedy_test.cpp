// Tests for the scalable mapping-aware greedy scheduler (the paper's
// Section 5 future work): validity on every benchmark, quality relative
// to the SDC baseline, and behaviour as a MILP warm start.

#include <gtest/gtest.h>

#include "cut/cut.h"
#include "map/area.h"
#include "sched/greedy.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"
#include "workloads/workloads.h"

namespace lamp::sched {
namespace {

const DelayModel kDm;

class GreedyAllBenchmarksTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyAllBenchmarksTest, ProducesValidSchedules) {
  const workloads::Benchmark bm =
      workloads::allBenchmarks(workloads::Scale::Default)[GetParam()];
  const auto db = cut::enumerateCuts(bm.graph);
  SdcOptions opts;
  opts.resources = bm.resources;
  SdcResult r;
  for (opts.ii = 1; opts.ii <= 4; ++opts.ii) {
    r = greedyMapSchedule(bm.graph, db, kDm, opts);
    if (r.success) break;
  }
  ASSERT_TRUE(r.success) << bm.name << ": " << r.error;
  const auto diag =
      validateSchedule({bm.graph, db, kDm, bm.resources}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << bm.name << ": " << *diag;
}

INSTANTIATE_TEST_SUITE_P(All, GreedyAllBenchmarksTest, ::testing::Range(0, 9));

TEST(GreedyTest, BeatsSdcOnLogicHeavyKernels) {
  // On XORR / GFMUL the mapped schedule should need no registers at all
  // while SDC (additive) pipelines.
  for (const auto maker : {workloads::makeXorr, workloads::makeGfmul}) {
    const workloads::Benchmark bm = maker(workloads::Scale::Default);
    const auto db = cut::enumerateCuts(bm.graph);
    const auto trivial = cut::trivialCuts(bm.graph);
    const auto sdc = sdcSchedule(bm.graph, trivial, kDm, {});
    const auto greedy = greedyMapSchedule(bm.graph, db, kDm, {});
    ASSERT_TRUE(sdc.success);
    ASSERT_TRUE(greedy.success) << bm.name << ": " << greedy.error;
    const int sdcFfs = map::countRegisterBits(bm.graph, sdc.schedule, kDm);
    const int greedyFfs =
        map::countRegisterBits(bm.graph, greedy.schedule, kDm);
    EXPECT_GT(sdcFfs, 0) << bm.name;
    EXPECT_EQ(greedyFfs, 0) << bm.name;
    EXPECT_EQ(greedy.schedule.latency(bm.graph), 0) << bm.name;
  }
}

TEST(GreedyTest, TrivialCutsDegenerateToMappedSdc) {
  // With only unit cuts the greedy cover selects every node as a root;
  // the schedule must still validate.
  const workloads::Benchmark bm = workloads::makeGsm(workloads::Scale::Default);
  const auto trivial = cut::trivialCuts(bm.graph);
  const auto r = greedyMapSchedule(bm.graph, trivial, kDm, {});
  ASSERT_TRUE(r.success) << r.error;
  const auto diag = validateSchedule({bm.graph, trivial, kDm, {}}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
  for (ir::NodeId v = 0; v < bm.graph.size(); ++v) {
    if (ir::isLutMappable(bm.graph.node(v).kind)) {
      // reachable logic is rooted (dead nodes may stay absorbed)
      if (r.schedule.isRoot(v)) {
        EXPECT_TRUE(trivial.at(v).cuts[r.schedule.selectedCut[v]].isUnit);
      }
    }
  }
}

TEST(GreedyTest, WarmStartAcceptedByMilp) {
  const workloads::Benchmark bm =
      workloads::makeGfmul(workloads::Scale::Default);
  const auto db = cut::enumerateCuts(bm.graph);
  const auto greedy = greedyMapSchedule(bm.graph, db, kDm, {});
  ASSERT_TRUE(greedy.success);

  MilpSchedOptions mo;
  mo.maxLatency = std::max(1, greedy.schedule.latency(bm.graph)) + 1;
  mo.warmStart = &greedy.schedule;
  mo.warmStartSelectsCuts = true;
  mo.solver.maxNodes = 1;  // root only: the incumbent must carry the day
  mo.solver.timeLimitSeconds = 20;
  const auto milp = milpSchedule(bm.graph, db, kDm, mo);
  ASSERT_TRUE(milp.success) << milp.error;
  // The returned incumbent can only be as good or better than the greedy
  // warm start's objective.
  double greedyCost = 0.0;
  for (ir::NodeId v = 0; v < bm.graph.size(); ++v) {
    if (greedy.schedule.isRoot(v)) {
      greedyCost +=
          0.5 * db.at(v).cuts[greedy.schedule.selectedCut[v]].lutCost;
    }
  }
  greedyCost += 0.5 * map::countRegisterBits(bm.graph, greedy.schedule, kDm);
  EXPECT_LE(milp.objective, greedyCost + 1e-6);
}

TEST(GreedyTest, ResourceConstraintsHonored) {
  workloads::Benchmark bm = workloads::makeAes(workloads::Scale::Default);
  bm.resources[ir::ResourceClass::MemPortA] = 2;  // starve the S-boxes
  const auto db = cut::enumerateCuts(bm.graph);
  SdcOptions opts;
  opts.resources = bm.resources;
  SdcResult r;
  for (opts.ii = 1; opts.ii <= 4; ++opts.ii) {
    r = greedyMapSchedule(bm.graph, db, kDm, opts);
    if (r.success) break;
  }
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_GE(r.schedule.ii, 2);  // 4 loads / 2 ports
  const auto diag =
      validateSchedule({bm.graph, db, kDm, bm.resources}, r.schedule);
  EXPECT_EQ(diag, std::nullopt) << *diag;
}

}  // namespace
}  // namespace lamp::sched
