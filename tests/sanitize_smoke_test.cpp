// Sanitized smoke coverage (built with -fsanitize=address,undefined by
// tests/CMakeLists.txt): one small benchmark end-to-end through
// flow::runFlow, and one request through the lampd stdio transport
// (serveStream over string streams — exactly what `lampd --stdio`
// wraps). The point is not functional depth — the plain test suite has
// that — but walking the allocation- and cast-heavy paths (cut
// enumeration, MILP build/solve, JSON protocol) under ASan+UBSan.

#include <gtest/gtest.h>

#include <sstream>

#include "flow/flow.h"
#include "svc/server.h"
#include "svc/service.h"
#include "util/json.h"

namespace lamp {
namespace {

workloads::Benchmark benchmark(const std::string& name) {
  for (auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
    if (bm.name == name) return std::move(bm);
  }
  ADD_FAILURE() << "benchmark " << name << " not found";
  return {};
}

TEST(SanitizeSmokeTest, FlowRunsOneBenchmarkClean) {
  const workloads::Benchmark bm = benchmark("GFMUL");
  flow::FlowOptions opts;
  opts.solverTimeLimitSeconds = 10.0;
  const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_TRUE(r.functionallyVerified);
}

TEST(SanitizeSmokeTest, StdioTransportServesOneRequest) {
  svc::ServiceOptions so;
  so.workers = 1;
  so.cacheEnabled = false;
  svc::Service service(so);

  std::istringstream in(
      "{\"id\":\"r1\",\"benchmark\":\"GFMUL\","
      "\"options\":{\"timeLimitSeconds\":10}}\n"
      "{\"id\":\"r2\",\"cmd\":\"stats\"}\n");
  std::ostringstream out;
  EXPECT_EQ(svc::serveStream(service, in, out), 2u);

  std::istringstream responses(out.str());
  std::string line;
  std::size_t okLines = 0;
  while (std::getline(responses, line)) {
    const auto doc = util::Json::parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const util::Json* ok = doc->find("ok");
    ASSERT_NE(ok, nullptr) << line;
    EXPECT_TRUE(ok->asBool()) << line;
    ++okLines;
  }
  EXPECT_EQ(okLines, 2u);
}

}  // namespace
}  // namespace lamp
