// Tests for bit-level dependence tracking (DEP functions) and word-level
// cut enumeration (Algorithm 1): feasibility invariants, wire cones,
// carry fallbacks, loop-carried boundaries, pruning behaviour.

#include <gtest/gtest.h>

#include <random>

#include "cut/cut.h"
#include "cut/dep.h"
#include "ir/builder.h"
#include "ir/passes.h"

namespace lamp::cut {
namespace {

using ir::GraphBuilder;
using ir::OpKind;
using ir::Value;

// --- DEP functions ---------------------------------------------------------

TEST(DepTest, BitwiseDependsOnSameBit) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value x = b.bxor(a, c);
  const auto deps = depBits(b.graph(), x.id, 5);
  ASSERT_EQ(deps.size(), 2u);
  EXPECT_EQ(deps[0].operandIndex, 0);
  EXPECT_EQ(deps[0].bit, 5);
  EXPECT_EQ(deps[1].operandIndex, 1);
  EXPECT_EQ(deps[1].bit, 5);
}

TEST(DepTest, ShrShiftsDependence) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value s = b.shr(a, 3);
  EXPECT_EQ(depBits(b.graph(), s.id, 0).size(), 1u);
  EXPECT_EQ(depBits(b.graph(), s.id, 0)[0].bit, 3);
  // Bits shifted in from beyond the width are constants: no deps.
  EXPECT_TRUE(depBits(b.graph(), s.id, 6).empty());
}

TEST(DepTest, ShlShiftsDependence) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value s = b.shl(a, 2);
  EXPECT_TRUE(depBits(b.graph(), s.id, 1).empty());  // zero-filled
  ASSERT_EQ(depBits(b.graph(), s.id, 7).size(), 1u);
  EXPECT_EQ(depBits(b.graph(), s.id, 7)[0].bit, 5);
}

TEST(DepTest, AShrSaturatesAtSignBit) {
  GraphBuilder b("t");
  Value a = b.input("a", 8, true);
  Value s = b.ashr(a, 4);
  ASSERT_EQ(depBits(b.graph(), s.id, 7).size(), 1u);
  EXPECT_EQ(depBits(b.graph(), s.id, 7)[0].bit, 7);  // sign fill
  EXPECT_EQ(depBits(b.graph(), s.id, 1)[0].bit, 5);
}

TEST(DepTest, AddHasTriangularDependence) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value s = b.add(a, c);
  EXPECT_EQ(depBits(b.graph(), s.id, 0).size(), 2u);
  EXPECT_EQ(depBits(b.graph(), s.id, 3).size(), 8u);  // bits 0..3 of both
}

TEST(DepTest, SignTestCollapsesToTopBit) {
  GraphBuilder b("t");
  Value a = b.input("a", 8, true);
  Value zero = b.constant(0, 8);
  Value ge = b.ge(a, zero, true);
  EXPECT_TRUE(isSignTest(b.graph(), ge.id));
  const auto deps = depBits(b.graph(), ge.id, 0);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0].bit, 7);
}

TEST(DepTest, UnsignedCompareIsNotSignTest) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value zero = b.constant(0, 8);
  Value ge = b.ge(a, zero, false);
  EXPECT_FALSE(isSignTest(b.graph(), ge.id));
}

TEST(DepTest, EqAgainstConstUsesOnlyVariableBits) {
  GraphBuilder b("t");
  Value a = b.input("a", 4);
  Value c = b.constant(9, 4);
  Value eq = b.eq(a, c);
  const auto deps = depBits(b.graph(), eq.id, 0);
  EXPECT_EQ(deps.size(), 4u);  // only a's bits; const folds away
  for (const DepBit& d : deps) EXPECT_EQ(d.operandIndex, 0);
}

TEST(DepTest, MuxDependsOnSelectAndDataBits) {
  GraphBuilder b("t");
  Value s = b.input("s", 1);
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value m = b.mux(s, a, c);
  const auto deps = depBits(b.graph(), m.id, 6);
  ASSERT_EQ(deps.size(), 3u);
  EXPECT_EQ(deps[0].operandIndex, 0);
  EXPECT_EQ(deps[0].bit, 0);
  EXPECT_EQ(deps[1].bit, 6);
  EXPECT_EQ(deps[2].bit, 6);
}

TEST(DepTest, ConcatRoutesBits) {
  GraphBuilder b("t");
  Value hi = b.input("h", 3);
  Value lo = b.input("l", 5);
  Value cc = b.concat(hi, lo);
  EXPECT_EQ(depBits(b.graph(), cc.id, 2)[0].operandIndex, 1);
  EXPECT_EQ(depBits(b.graph(), cc.id, 6)[0].operandIndex, 0);
  EXPECT_EQ(depBits(b.graph(), cc.id, 6)[0].bit, 1);
}

TEST(DepTest, BlackBoxHasNoDeps) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.mul(a, a, 8);
  EXPECT_TRUE(depBits(b.graph(), m.id, 0).empty());
}

// --- enumeration -----------------------------------------------------------

/// Invariants every database must satisfy.
void checkInvariants(const ir::Graph& g, const CutDatabase& db, int k,
                     int maxElements) {
  ASSERT_EQ(db.cutsOf.size(), g.size());
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    const ir::Node& n = g.node(v);
    const auto& cuts = db.at(v).cuts;
    if (n.kind == OpKind::Input || n.kind == OpKind::Const) {
      EXPECT_TRUE(cuts.empty());
      continue;
    }
    ASSERT_FALSE(cuts.empty()) << "node " << v << " has no cuts";
    bool hasFallback = false;
    for (const Cut& c : cuts) {
      EXPECT_TRUE(std::is_sorted(c.elements.begin(), c.elements.end()));
      EXPECT_LE(static_cast<int>(c.elements.size()), maxElements);
      if (c.kind == CutKind::Lut) {
        EXPECT_LE(c.maxSupport, k);
        for (const SupportSet& s : c.bitSupport) {
          EXPECT_LE(static_cast<int>(s.size()), static_cast<std::size_t>(k));
          EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
          // Every support bit's element is listed in the cut.
          for (const BitKey key : s) {
            EXPECT_TRUE(c.containsElement(bitKeyNode(key), bitKeyDist(key)));
          }
        }
      }
      if (c.isUnit) hasFallback = true;
      // Elements must never be Const nodes, and never value-less nodes.
      for (const CutElement& e : c.elements) {
        EXPECT_NE(g.node(e.node).kind, OpKind::Const);
        EXPECT_NE(g.node(e.node).kind, OpKind::Output);
        EXPECT_NE(g.node(e.node).kind, OpKind::Store);
      }
    }
    EXPECT_TRUE(hasFallback) << "node " << v << " lost its unit cut";
  }
}

TEST(CutEnumTest, XorTreeCollapsesIntoOneCut) {
  // x = (a ^ b) ^ (c ^ d): with K=4 the root has a cut {a,b,c,d} with
  // per-bit support 4 and the whole tree in one LUT level.
  GraphBuilder b("tree");
  Value a = b.input("a", 8), c = b.input("b", 8);
  Value d = b.input("c", 8), e = b.input("d", 8);
  Value x = b.bxor(b.bxor(a, c), b.bxor(d, e), "root");
  b.output(x, "o");
  const auto db = enumerateCuts(b.graph());
  checkInvariants(b.graph(), db, 4, 8);

  const auto& cuts = db.at(x.id).cuts;
  bool foundFull = false;
  for (const Cut& cut : cuts) {
    if (cut.elements.size() == 4 && cut.coneNodes.size() == 3) {
      foundFull = true;
      EXPECT_EQ(cut.maxSupport, 4);
      EXPECT_EQ(cut.lutCost, 8);  // one 4-LUT per output bit
    }
  }
  EXPECT_TRUE(foundFull);
}

TEST(CutEnumTest, DeepXorChainRespectsK) {
  // A chain of 6 xors with K=4 cannot be absorbed into a single cut:
  // the root's best cut has support at most 4.
  GraphBuilder b("chain");
  Value acc = b.input("i0", 4);
  for (int i = 1; i <= 6; ++i) {
    acc = b.bxor(acc, b.input("i" + std::to_string(i), 4));
  }
  b.output(acc, "o");
  const auto db = enumerateCuts(b.graph());
  checkInvariants(b.graph(), db, 4, 8);
  for (const Cut& cut : db.at(acc.id).cuts) {
    EXPECT_LE(cut.maxSupport, 4);
  }
}

TEST(CutEnumTest, NarrowAddIsLutFeasible) {
  GraphBuilder b("add2");
  Value a = b.input("a", 2), c = b.input("c", 2);
  Value s = b.add(a, c);
  b.output(s, "o");
  const auto db = enumerateCuts(b.graph());
  const auto& cuts = db.at(s.id).cuts;
  ASSERT_FALSE(cuts.empty());
  bool lutUnit = false;
  for (const Cut& cut : cuts) {
    if (cut.isUnit && cut.kind == CutKind::Lut) {
      lutUnit = true;
      EXPECT_EQ(cut.maxSupport, 4);  // out[1] needs a[1:0], c[1:0]
    }
  }
  EXPECT_TRUE(lutUnit);
}

TEST(CutEnumTest, WideAddFallsBackToCarry) {
  GraphBuilder b("add16");
  Value a = b.input("a", 16), c = b.input("c", 16);
  Value s = b.add(a, c);
  b.output(s, "o");
  const auto db = enumerateCuts(b.graph());
  const auto& cuts = db.at(s.id).cuts;
  ASSERT_EQ(cuts.size(), 1u);
  EXPECT_EQ(cuts[0].kind, CutKind::Carry);
  EXPECT_EQ(cuts[0].lutCost, 16);
  EXPECT_EQ(cuts[0].elements.size(), 2u);
}

TEST(CutEnumTest, WireConesCostNothing) {
  GraphBuilder b("wires");
  Value a = b.input("a", 16);
  Value s = b.shr(a, 4);
  Value sl = b.slice(s, 0, 8);
  b.output(sl, "o");
  const auto db = enumerateCuts(b.graph());
  for (const Cut& cut : db.at(sl.id).cuts) {
    EXPECT_EQ(cut.lutCost, 0) << cut.str(b.graph());
  }
}

TEST(CutEnumTest, LogicBehindWiresStillCosts) {
  GraphBuilder b("wl");
  Value a = b.input("a", 8), c = b.input("c", 8);
  Value x = b.bxor(a, c);
  Value s = b.slice(x, 0, 4);
  b.output(s, "o");
  const auto db = enumerateCuts(b.graph());
  // A cut of the slice absorbing the xor costs 4 LUTs (4 costed bits);
  // the unit cut (boundary = xor node) costs 0 (pure routing).
  bool sawAbsorbing = false, sawUnit = false;
  for (const Cut& cut : db.at(s.id).cuts) {
    if (cut.isUnit) {
      sawUnit = true;
      EXPECT_EQ(cut.lutCost, 0);
    } else if (cut.coneNodes.size() == 2) {
      sawAbsorbing = true;
      EXPECT_EQ(cut.lutCost, 4);
    }
  }
  EXPECT_TRUE(sawUnit);
  EXPECT_TRUE(sawAbsorbing);
}

TEST(CutEnumTest, SignTestThroughXorTracksOneBit) {
  // Fig. 2 shape: C = (t ^ A) >= 0 (signed) depends only on the sign bit,
  // so a cut of C through the xor needs just two boundary bits.
  GraphBuilder b("fig2");
  Value t = b.input("t", 8, true);
  Value a = b.input("a", 8, true);
  Value x = b.bxor(t, a, "B");
  Value zero = b.constant(0, 8);
  Value c = b.ge(x, zero, true, "C");
  b.output(c, "o");
  const auto db = enumerateCuts(b.graph());
  bool foundDeep = false;
  for (const Cut& cut : db.at(c.id).cuts) {
    if (cut.coneNodes.size() == 2) {  // absorbed the xor
      foundDeep = true;
      EXPECT_EQ(cut.maxSupport, 2);
      EXPECT_EQ(cut.lutCost, 1);
    }
  }
  EXPECT_TRUE(foundDeep);
}

TEST(CutEnumTest, LoopCarriedEdgeIsBoundary) {
  // next = x ^ next@1 : the unit cut contains (next, dist 1) itself and
  // enumeration terminates despite the cycle.
  GraphBuilder b("acc");
  Value x = b.input("x", 8);
  Value ph = b.placeholder(8, "acc");
  Value nxt = b.bxor(x, Value{ph.id, 1}, "next");
  b.bindPlaceholder(ph, nxt);
  b.output(nxt, "o");
  const ir::Graph g = ir::compact(b.graph());
  const auto db = enumerateCuts(g);
  checkInvariants(g, db, 4, 8);
  const ir::NodeId xorId = 1;  // input, xor, output after compaction
  ASSERT_EQ(g.node(xorId).kind, OpKind::Xor);
  const auto& cuts = db.at(xorId).cuts;
  ASSERT_FALSE(cuts.empty());
  for (const Cut& cut : cuts) {
    EXPECT_TRUE(cut.containsElement(xorId, 1));
  }
}

TEST(CutEnumTest, BlackBoxGetsPortCutOnly) {
  GraphBuilder b("bb");
  Value a = b.input("a", 8);
  Value addr = b.input("addr", 8);
  Value m = b.mul(a, a, 8, "m");
  Value l = b.load(ir::ResourceClass::MemPortA, addr, 8, "l");
  Value x = b.bxor(m, l);
  b.output(x, "o");
  const auto db = enumerateCuts(b.graph());
  ASSERT_EQ(db.at(m.id).cuts.size(), 1u);
  EXPECT_EQ(db.at(m.id).cuts[0].kind, CutKind::BlackBox);
  ASSERT_EQ(db.at(l.id).cuts.size(), 1u);
  // Consumers of black boxes cannot absorb them.
  for (const Cut& cut : db.at(x.id).cuts) {
    EXPECT_LE(cut.coneNodes.size(), 1u);
  }
}

TEST(CutEnumTest, CutCapRespected) {
  GraphBuilder b("wide");
  std::vector<Value> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(b.input("i" + std::to_string(i), 4));
  Value l1a = b.bxor(ins[0], ins[1]), l1b = b.bxor(ins[2], ins[3]);
  Value l1c = b.bxor(ins[4], ins[5]), l1d = b.bxor(ins[6], ins[7]);
  Value l2a = b.bxor(l1a, l1b), l2b = b.bxor(l1c, l1d);
  Value root = b.bxor(l2a, l2b);
  b.output(root, "o");
  CutEnumOptions opts;
  opts.maxCutsPerNode = 3;
  const auto db = enumerateCuts(b.graph(), opts);
  for (ir::NodeId v = 0; v < b.graph().size(); ++v) {
    EXPECT_LE(db.at(v).cuts.size(), 3u);
  }
  checkInvariants(b.graph(), db, 4, 8);
}

TEST(CutEnumTest, TrivialDatabaseHasOneCutPerNode) {
  GraphBuilder b("t");
  Value a = b.input("a", 8), c = b.input("c", 8);
  Value x = b.bxor(a, c);
  Value s = b.add(x, c);
  b.output(s, "o");
  const auto db = trivialCuts(b.graph());
  EXPECT_TRUE(db.at(a.id).cuts.empty());
  ASSERT_EQ(db.at(x.id).cuts.size(), 1u);
  EXPECT_TRUE(db.at(x.id).cuts[0].isUnit);
  ASSERT_EQ(db.at(s.id).cuts.size(), 1u);
  EXPECT_EQ(db.at(s.id).cuts[0].kind, CutKind::Carry);  // 8-bit add
}

TEST(CutEnumTest, SharedOperandUsesOneChoice) {
  // v = a ^ a (same source twice): cuts must not double-count elements.
  GraphBuilder b("dup");
  Value a0 = b.input("a0", 4), a1 = b.input("a1", 4);
  Value a = b.bxor(a0, a1);
  Value v = b.band(a, a);
  b.output(v, "o");
  const auto db = enumerateCuts(b.graph());
  for (const Cut& cut : db.at(v.id).cuts) {
    EXPECT_LE(cut.elements.size(), 2u);
  }
}


TEST(DepTest, DominatingConstantBitsHaveNoDeps) {
  GraphBuilder b("mask");
  Value a = b.input("a", 8);
  Value mask = b.constant(0x0F, 8);
  Value masked = b.band(a, mask);
  // Low nibble: identity wires; high nibble: constant zero.
  EXPECT_EQ(depBits(b.graph(), masked.id, 2).size(), 1u);
  EXPECT_TRUE(depBits(b.graph(), masked.id, 6).empty());
  EXPECT_TRUE(isIdentityBit(b.graph(), masked.id, 2));
  EXPECT_FALSE(isIdentityBit(b.graph(), masked.id, 6));
}

TEST(DepTest, XorWithConstantNeedsLutOnSetBits) {
  GraphBuilder b("inv");
  Value a = b.input("a", 4);
  Value mask = b.constant(0b0101, 4);
  Value x = b.bxor(a, mask);
  EXPECT_FALSE(isIdentityBit(b.graph(), x.id, 0));  // inverted: NOT gate
  EXPECT_TRUE(isIdentityBit(b.graph(), x.id, 1));   // pass-through
  EXPECT_EQ(depBits(b.graph(), x.id, 0).size(), 1u);
}

TEST(CutEnumTest, NeutralMasksCostNothing) {
  // (a & 0x0F) | 0x30 : every bit is a wire or a constant -> 0 LUTs.
  GraphBuilder b("mask");
  Value a = b.input("a", 8);
  Value low = b.band(a, b.constant(0x0F, 8));
  Value out = b.bor(low, b.constant(0x30, 8));
  b.output(out, "o");
  const auto db = enumerateCuts(b.graph());
  for (const Cut& cut : db.at(out.id).cuts) {
    EXPECT_EQ(cut.lutCost, 0) << cut.str(b.graph());
  }
}

// Property sweep: random DAGs keep all invariants for several K values.
class CutEnumRandomTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(CutEnumRandomTest, InvariantsHoldOnRandomGraphs) {
  const unsigned seed = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  std::mt19937 rng(seed * 2654435761u + k);
  GraphBuilder b("rand");
  std::vector<Value> pool;
  std::uniform_int_distribution<int> widthDist(1, 16);
  for (int i = 0; i < 4; ++i) {
    pool.push_back(b.input("in" + std::to_string(i), 8));
  }
  std::uniform_int_distribution<int> opDist(0, 8);
  for (int i = 0; i < 30; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    Value x = pool[pick(rng)];
    Value y = pool[pick(rng)];
    Value v;
    switch (opDist(rng)) {
      case 0: v = b.band(x, y); break;
      case 1: v = b.bor(x, y); break;
      case 2: v = b.bxor(x, y); break;
      case 3: v = b.bnot(x); break;
      case 4: v = b.shr(x, 1 + static_cast<int>(rng() % 4)); break;
      case 5: v = b.add(x, y); break;
      case 6: v = b.mux(b.bit(x, 0), x, y); break;
      case 7: v = b.sub(x, y); break;
      default: v = b.shl(x, 1 + static_cast<int>(rng() % 3)); break;
    }
    pool.push_back(v);
  }
  b.output(pool.back(), "o");
  (void)widthDist;
  CutEnumOptions opts;
  opts.k = k;
  const auto db = enumerateCuts(b.graph(), opts);
  checkInvariants(b.graph(), db, k, opts.maxElements);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CutEnumRandomTest,
    ::testing::Combine(::testing::Range(1u, 11u), ::testing::Values(3, 4, 6)));

}  // namespace
}  // namespace lamp::cut
