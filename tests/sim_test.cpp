// Tests for the interpreter (golden op semantics) and the cycle-accurate
// pipeline simulator (readiness assertions, interpreter equivalence,
// register-pressure cross-check against the static FF count).

#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "map/area.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"
#include "sim/pipeline_sim.h"
#include "sim/vcd.h"
#include "sched/greedy.h"

namespace lamp::sim {
namespace {

using ir::GraphBuilder;
using ir::Value;
using sched::DelayModel;

const DelayModel kDm;

TEST(InterpTest, BitwiseAndShiftSemantics) {
  GraphBuilder b("ops");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  b.output(b.band(a, c), "and");
  b.output(b.bxor(a, c), "xor");
  b.output(b.bnot(a), "not");
  b.output(b.shl(a, 2), "shl");
  b.output(b.shr(a, 2), "shr");
  const ir::Graph g = b.take();
  Interpreter interp(g);
  const auto outs = g.outputs();
  const OutputFrame f = interp.step({{0, 0xCA}, {1, 0x5F}});
  EXPECT_EQ(f.at(outs[0]), 0xCAu & 0x5F);
  EXPECT_EQ(f.at(outs[1]), 0xCAu ^ 0x5F);
  EXPECT_EQ(f.at(outs[2]), (~0xCAu) & 0xFF);
  EXPECT_EQ(f.at(outs[3]), (0xCAu << 2) & 0xFF);
  EXPECT_EQ(f.at(outs[4]), 0xCAu >> 2);
}

TEST(InterpTest, SignedSemantics) {
  GraphBuilder b("signed");
  Value a = b.input("a", 8, true);
  Value zero = b.constant(0, 8);
  b.output(b.ashr(a, 2), "ashr");
  b.output(b.lt(a, zero, true), "neg");
  b.output(b.sext(a, 16), "sext");
  const ir::Graph g = b.take();
  Interpreter interp(g);
  const auto outs = g.outputs();
  const OutputFrame f = interp.step({{0, 0xF0}});  // -16 as int8
  EXPECT_EQ(f.at(outs[0]), 0xFCu);   // -16 >> 2 = -4 = 0xFC
  EXPECT_EQ(f.at(outs[1]), 1u);
  EXPECT_EQ(f.at(outs[2]), 0xFFF0u);
}

TEST(InterpTest, ArithAndCompare) {
  GraphBuilder b("arith");
  Value a = b.input("a", 16);
  Value c = b.input("c", 16);
  b.output(b.add(a, c), "add");
  b.output(b.sub(a, c), "sub");
  b.output(b.lt(a, c, false), "ltu");
  b.output(b.eq(a, c), "eq");
  const ir::Graph g = b.take();
  Interpreter interp(g);
  const auto outs = g.outputs();
  const OutputFrame f = interp.step({{0, 0xFFFF}, {1, 2}});
  EXPECT_EQ(f.at(outs[0]), 1u);       // wraps
  EXPECT_EQ(f.at(outs[1]), 0xFFFDu);
  EXPECT_EQ(f.at(outs[2]), 0u);
  EXPECT_EQ(f.at(outs[3]), 0u);
}

TEST(InterpTest, ConcatSliceMux) {
  GraphBuilder b("bits");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value s = b.input("s", 1);
  b.output(b.concat(a, c), "cc");
  b.output(b.slice(a, 4, 4), "hi");
  b.output(b.mux(s, a, c), "mux");
  const ir::Graph g = b.take();
  Interpreter interp(g);
  const auto outs = g.outputs();
  OutputFrame f = interp.step({{0, 0xAB}, {1, 0xCD}, {2, 1}});
  EXPECT_EQ(f.at(outs[0]), 0xABCDu);
  EXPECT_EQ(f.at(outs[1]), 0xAu);
  EXPECT_EQ(f.at(outs[2]), 0xABu);
  f = interp.step({{0, 0xAB}, {1, 0xCD}, {2, 0}});
  EXPECT_EQ(f.at(outs[2]), 0xCDu);
}

TEST(InterpTest, LoopCarriedAccumulator) {
  GraphBuilder b("acc");
  Value x = b.input("x", 16);
  Value ph = b.placeholder(16, "st");
  Value nx = b.bxor(x, Value{ph.id, 1});
  b.bindPlaceholder(ph, nx);
  b.output(nx, "o");
  const ir::Graph g = ir::compact(b.graph());
  Interpreter interp(g);
  const auto out = g.outputs()[0];
  const ir::NodeId in = g.inputs()[0];
  std::uint64_t acc = 0;
  for (std::uint64_t v : {0x1111ull, 0x2222ull, 0x0F0Full}) {
    acc ^= v;
    EXPECT_EQ(interp.step({{in, v}}).at(out), acc);
  }
  interp.reset();
  EXPECT_EQ(interp.step({{in, 5}}).at(out), 5u);
}

TEST(InterpTest, MemoryLoadStore) {
  // Loads see the pre-set bank; stores land in the bank. (Load/store
  // ordering within an iteration is only defined through data edges, so
  // the two access different addresses here.)
  GraphBuilder b("mem");
  Value addr = b.input("addr", 10);
  Value data = b.input("data", 32);
  b.store(ir::ResourceClass::MemPortA, addr, data);
  Value rdAddr = b.input("rdAddr", 10);
  Value rd = b.load(ir::ResourceClass::MemPortA, rdAddr, 32);
  b.output(rd, "o");
  const ir::Graph g = b.take();
  Interpreter interp(g);
  interp.memory().setBank(ir::ResourceClass::MemPortA,
                          std::vector<std::uint64_t>(64, 7));
  const auto out = g.outputs()[0];
  const OutputFrame f = interp.step({{0, 3}, {1, 99}, {3, 5}});
  EXPECT_EQ(f.at(out), 7u);  // untouched word
  EXPECT_EQ(interp.memory().read(ir::ResourceClass::MemPortA, 3), 99u);
}

// --- pipeline simulator -----------------------------------------------------

/// Helper: schedule with MILP-map and check the pipeline streams the same
/// outputs as the untimed interpreter.
void checkPipelineMatchesInterp(const ir::Graph& g, unsigned seed) {
  const auto trivial = cut::trivialCuts(g);
  const auto mapped = cut::enumerateCuts(g);
  const auto sdc = sched::sdcSchedule(g, trivial, kDm, {});
  ASSERT_TRUE(sdc.success) << sdc.error;
  sched::MilpSchedOptions mo;
  mo.maxLatency = sdc.schedule.latency(g) + 1;
  mo.warmStart = &sdc.schedule;
  mo.solver.timeLimitSeconds = 20;
  const auto milp = milpSchedule(g, mapped, kDm, mo);
  ASSERT_TRUE(milp.success) << milp.error;

  std::mt19937 rng(seed);
  std::vector<InputFrame> frames(13);
  for (auto& f : frames) {
    for (const ir::NodeId in : g.inputs()) {
      f[in] = rng();
    }
  }
  Interpreter interp(g);
  const auto golden = interp.run(frames);

  const std::pair<const sched::Schedule*, const cut::CutDatabase*> arms[] = {
      {&sdc.schedule, &trivial}, {&milp.schedule, &mapped}};
  for (const auto& [s, db] : arms) {
    const PipelineRunResult r = runPipeline(g, *s, kDm, frames, nullptr, db);
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_EQ(r.outputs.size(), golden.size());
    for (std::size_t k = 0; k < golden.size(); ++k) {
      EXPECT_EQ(r.outputs[k], golden[k]) << "iteration " << k;
    }
  }
}

TEST(PipelineSimTest, MatchesInterpreterOnChain) {
  GraphBuilder b("chain");
  Value acc = b.input("i0", 16);
  for (int i = 1; i <= 9; ++i) {
    acc = b.bxor(acc, b.input("i" + std::to_string(i), 16));
  }
  b.output(acc, "out");
  checkPipelineMatchesInterp(b.take(), 42);
}

TEST(PipelineSimTest, MatchesInterpreterWithLoopCarry) {
  GraphBuilder b("acc");
  Value x = b.input("x", 16);
  Value y = b.input("y", 16);
  Value ph = b.placeholder(16, "st");
  Value mixed = b.bxor(x, b.band(y, Value{ph.id, 1}));
  b.bindPlaceholder(ph, mixed);
  b.output(mixed, "o");
  checkPipelineMatchesInterp(ir::compact(b.graph()), 7);
}

TEST(PipelineSimTest, PeakLiveBitsMatchesStaticCount) {
  GraphBuilder b("regs");
  Value a = b.input("a", 8);
  Value m = b.mul(a, a, 8);  // ready cycle 1
  Value x = b.bxor(m, a);    // holds a for one cycle
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const auto sdc = sched::sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(sdc.success);
  const int staticBits = map::countRegisterBits(g, sdc.schedule, kDm);
  std::vector<InputFrame> frames(10);
  for (std::size_t k = 0; k < frames.size(); ++k) frames[k] = {{0, k + 1}};
  const PipelineRunResult r = runPipeline(g, sdc.schedule, kDm, frames);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.peakLiveBits, staticBits);
}

TEST(PipelineSimTest, RejectsBrokenSchedule) {
  GraphBuilder b("bad");
  Value a = b.input("a", 8);
  Value m = b.mul(a, a, 8);  // needs 1 cycle of latency
  Value x = b.bxor(m, a);
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  auto sdc = sched::sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(sdc.success);
  sched::Schedule broken = sdc.schedule;
  broken.cycle[x.id] = 0;  // consume the multiplier result too early
  const PipelineRunResult r = runPipeline(g, broken, kDm, {{{0, 1}}});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("not ready"), std::string::npos);
}


// --- VCD waveforms -----------------------------------------------------------

TEST(VcdTest, EmitsWellFormedTrace) {
  GraphBuilder b("wave");
  Value a = b.input("a", 4);
  Value c = b.input("c", 4);
  Value x = b.bxor(a, c, "x");
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::trivialCuts(g);
  const auto r = sched::sdcSchedule(g, db, kDm, {});
  ASSERT_TRUE(r.success);

  std::vector<InputFrame> frames = {{{0, 1}, {1, 2}}, {{0, 3}, {1, 3}}};
  std::ostringstream os;
  std::string err;
  ASSERT_TRUE(writeVcd(os, g, r.schedule, kDm, frames, nullptr, {}, &err))
      << err;
  const std::string vcd = os.str();
  EXPECT_NE(vcd.find("$timescale"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(vcd.find("n2_x"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("b0011"), std::string::npos);  // 1 ^ 2
  EXPECT_NE(vcd.find("b0000"), std::string::npos);  // 3 ^ 3
}

TEST(VcdTest, AbsorbedNodesCanBeSuppressed) {
  GraphBuilder b("wave2");
  Value a = b.input("a", 4);
  Value c = b.input("c", 4);
  Value inner = b.band(a, c, "inner");
  Value x = b.bxor(inner, a, "x");
  b.output(x, "o");
  const ir::Graph g = b.take();
  const auto db = cut::enumerateCuts(g);
  const auto greedy = sched::greedyMapSchedule(g, db, kDm, {});
  ASSERT_TRUE(greedy.success);
  ASSERT_FALSE(greedy.schedule.isRoot(inner.id));  // absorbed

  std::vector<InputFrame> frames = {{{0, 5}, {1, 6}}};
  VcdOptions opts;
  opts.includeAbsorbed = false;
  std::ostringstream os;
  ASSERT_TRUE(writeVcd(os, g, greedy.schedule, kDm, frames, nullptr, opts));
  EXPECT_EQ(os.str().find("inner"), std::string::npos);
}

TEST(VcdTest, RejectsBrokenSchedule) {
  GraphBuilder b("bad");
  Value a = b.input("a", 8);
  Value m = b.mul(a, a, 8);
  Value x = b.bxor(m, a);
  b.output(x, "o");
  const ir::Graph g = b.take();
  auto r = sched::sdcSchedule(g, cut::trivialCuts(g), kDm, {});
  ASSERT_TRUE(r.success);
  r.schedule.cycle[x.id] = 0;
  std::ostringstream os;
  std::string err;
  EXPECT_FALSE(writeVcd(os, g, r.schedule, kDm, {{{0, 1}}}, nullptr, {}, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace lamp::sim
