// End-to-end property sweep: random CDFGs (mixed op classes, loop-carried
// state, black boxes) are pushed through all three flows. Every produced
// schedule must (a) pass the independent constraint validator, (b) drive
// the cycle-accurate pipeline simulator to the exact output stream of the
// untimed interpreter, and (c) never use more registers under MILP-map
// than under MILP-base when both prove optimality.

#include <gtest/gtest.h>

#include <random>

#include "flow/flow.h"
#include "ir/builder.h"
#include "ir/passes.h"

namespace lamp::flow {
namespace {

using ir::GraphBuilder;
using ir::Value;

workloads::Benchmark randomBenchmark(unsigned seed) {
  std::mt19937 rng(seed * 2654435761u + 17);
  GraphBuilder b("rand" + std::to_string(seed));
  std::vector<Value> pool;
  const int numInputs = 2 + static_cast<int>(rng() % 3);
  for (int i = 0; i < numInputs; ++i) {
    pool.push_back(b.input("in" + std::to_string(i), 8));
  }
  // One loop-carried accumulator to exercise recurrence handling.
  Value ph = b.placeholder(8, "st");
  pool.push_back(Value{ph.id, 1});

  const int ops = 10 + static_cast<int>(rng() % 15);
  bool usedLoad = false;
  for (int i = 0; i < ops; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    Value x = pool[pick(rng)];
    Value y = pool[pick(rng)];
    switch (rng() % 10) {
      case 0: pool.push_back(b.band(x, y)); break;
      case 1: pool.push_back(b.bor(x, y)); break;
      case 2: pool.push_back(b.bxor(x, y)); break;
      case 3: pool.push_back(b.bnot(x)); break;
      case 4: pool.push_back(b.shr(x, 1 + static_cast<int>(rng() % 3))); break;
      case 5: pool.push_back(b.add(x, y)); break;
      case 6: pool.push_back(b.mux(b.bit(x, rng() % 8), x, y)); break;
      case 7: pool.push_back(b.sub(x, y)); break;
      case 8:
        if (!usedLoad) {
          pool.push_back(
              b.load(ir::ResourceClass::MemPortA, b.zext(b.slice(x, 0, 6), 10), 8));
          usedLoad = true;
          break;
        }
        [[fallthrough]];
      default: pool.push_back(b.bxor(b.shl(x, 1), y)); break;
    }
  }
  // Close the loop: the accumulator mixes the last value.
  Value next = b.bxor(pool.back(), Value{ph.id, 1}, "st_next");
  b.bindPlaceholder(ph, next);
  b.output(next, "acc");
  b.output(pool[pool.size() / 2], "mid");

  workloads::Benchmark bm;
  bm.name = "rand" + std::to_string(seed);
  bm.domain = "Random";
  bm.graph = ir::compact(b.graph());
  if (usedLoad) {
    bm.resources[ir::ResourceClass::MemPortA] = 1;
    bm.initMemory = [](sim::Memory& mem) {
      std::vector<std::uint64_t> bank(1024);
      for (std::size_t i = 0; i < bank.size(); ++i) bank[i] = i * 37 + 11;
      mem.setBank(ir::ResourceClass::MemPortA, bank);
    };
  }
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t s) {
    sim::InputFrame f;
    std::uint64_t state = s * 0x9E3779B97F4A7C15ull + iter * 1181783497ull;
    for (const ir::NodeId id : ins) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f[id] = state >> 40;
    }
    return f;
  };
  return bm;
}

class EndToEndRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EndToEndRandomTest, AllFlowsValidAndFunctionallyExact) {
  const workloads::Benchmark bm = randomBenchmark(GetParam());
  ASSERT_EQ(ir::verify(bm.graph), std::nullopt);

  FlowOptions opts;
  opts.solverTimeLimitSeconds = 10.0;
  opts.verifyFrames = 11;  // flow runs the interpreter cross-check itself
  const BenchmarkResults r = runAllMethods(bm, opts);

  for (const FlowResult* f : {&r.hls, &r.milpBase, &r.milpMap}) {
    ASSERT_TRUE(f->success)
        << bm.name << " " << methodName(f->method) << ": " << f->error;
    EXPECT_TRUE(f->functionallyVerified)
        << bm.name << " " << methodName(f->method);
  }
  if (r.milpBase.status == lp::SolveStatus::Optimal &&
      r.milpMap.status == lp::SolveStatus::Optimal &&
      r.milpBase.schedule.ii == r.milpMap.schedule.ii) {
    EXPECT_LE(r.milpMap.objective, r.milpBase.objective + 1e-6) << bm.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndRandomTest, ::testing::Range(1u, 13u));

}  // namespace
}  // namespace lamp::flow
