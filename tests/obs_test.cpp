// Tests for the lamp::obs subsystem: span tracing (nesting across
// threads, Chrome trace-event output shape), histogram bucket math and
// quantile estimation, the Prometheus text exposition, and the
// disabled-tracing overhead budget the tracer's header promises.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/timer.h"

using namespace lamp;
using util::Json;

namespace {

// --- tracing -----------------------------------------------------------------

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::setTraceEnabled(false);
  obs::clearTrace();
  {
    obs::Span s("quiet", "test");
    EXPECT_FALSE(s.active());
  }
  obs::instant("quiet-instant", "test");
  EXPECT_EQ(obs::traceEventCount(), 0u);
}

TEST(TraceTest, SpanNestingAcrossThreads) {
  obs::setTraceEnabled(true);
  obs::clearTrace();

  const auto worker = [](int i) {
    obs::setThreadName("obs-test-" + std::to_string(i));
    obs::Span outer("outer", "test");
    {
      obs::Span inner("inner", "test");
      obs::instant("tick", "test", obs::traceArg("i", i));
    }
  };
  std::thread a(worker, 0);
  std::thread b(worker, 1);
  a.join();
  b.join();
  {
    obs::Span top("top", "test", obs::traceArg("x", 1.0));
  }
  obs::setTraceEnabled(false);

  std::ostringstream os;
  obs::writeChromeTrace(os);
  const auto doc = Json::parse(os.str());
  ASSERT_TRUE(doc) << "trace output is not valid JSON";
  const Json* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->isArray());

  // Per-tid begin/end matching with proper LIFO nesting and
  // non-decreasing timestamps.
  std::map<std::int64_t, std::vector<std::string>> stacks;
  std::map<std::int64_t, double> lastTs;
  std::vector<std::string> threadNames;
  std::size_t spanPairs = 0, instants = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const std::string ph = e.find("ph")->asString();
    if (ph == "M") {
      threadNames.push_back(e.find("args")->find("name")->asString());
      continue;
    }
    const std::int64_t tid = e.find("tid")->asInt();
    const double ts = e.find("ts")->asDouble();
    EXPECT_GE(ts, lastTs[tid]) << "timestamps regress on tid " << tid;
    lastTs[tid] = ts;
    if (ph == "B") {
      stacks[tid].push_back(e.find("name")->asString());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty()) << "E without matching B";
      stacks[tid].pop_back();
      ++spanPairs;
    } else if (ph == "i") {
      ++instants;
      // Spec: the inner span is open when the instant fires.
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), "inner");
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
  EXPECT_EQ(spanPairs, 5u);  // 2x (outer+inner) + top
  EXPECT_EQ(instants, 2u);
  EXPECT_NE(std::find(threadNames.begin(), threadNames.end(), "obs-test-0"),
            threadNames.end());
  EXPECT_NE(std::find(threadNames.begin(), threadNames.end(), "obs-test-1"),
            threadNames.end());

  obs::clearTrace();
}

TEST(TraceTest, DisabledOverheadUnderTwoPercent) {
  obs::setTraceEnabled(false);

  // A fixed CPU-bound workload (xorshift mixing), with one disabled Span
  // construction per outer chunk vs. none. The tracer's contract is that
  // a disabled Span costs one relaxed atomic load, so the delta must
  // stay under the 2% budget with a wide margin.
  const auto work = [](bool withSpans) {
    std::uint64_t x = 88172645463325252ull;
    const util::Stopwatch sw;
    for (int outer = 0; outer < 2000; ++outer) {
      if (withSpans) {
        obs::Span s("chunk", "bench");
        for (int i = 0; i < 3000; ++i) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
        }
      } else {
        for (int i = 0; i < 3000; ++i) {
          x ^= x << 13;
          x ^= x >> 7;
          x ^= x << 17;
        }
      }
    }
    const double seconds = sw.seconds();
    // Keep the mixing loop observable.
    volatile std::uint64_t sink = x;
    (void)sink;
    return seconds;
  };

  // Interleave the two variants and take the minimum of each — the
  // noise-robust estimator for a CPU-bound loop on a shared machine.
  double with = 1e9, without = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    without = std::min(without, work(false));
    with = std::min(with, work(true));
  }
  EXPECT_LT(with, without * 1.02 + 0.005)
      << "disabled tracing cost " << (with / without - 1.0) * 100.0 << "%";
}

// --- histograms --------------------------------------------------------------

TEST(HistogramTest, BucketMathWithInclusiveBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);    // (0, 1]
  h.observe(1.0);    // exactly on a bound -> le="1" (inclusive)
  h.observe(3.0);    // (2, 4]
  h.observe(100.0);  // +Inf
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 104.5);
  ASSERT_EQ(s.counts.size(), 4u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
}

TEST(HistogramTest, QuantileInterpolatesAndClamps) {
  obs::Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 8; ++i) h.observe(0.5);  // all in (0, 1]
  h.observe(8.0);                              // one in +Inf
  h.observe(9.0);                              // one in +Inf
  const auto s = h.snapshot();
  // rank(p50) = 5 of 10 lands in the first bucket: 0 + (5/8) * 1.
  EXPECT_DOUBLE_EQ(s.quantile(0.50), 0.625);
  // rank(p99) lands in the +Inf bucket: clamp to the last finite bound.
  EXPECT_DOUBLE_EQ(s.quantile(0.99), 4.0);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(obs::Histogram({1.0}).snapshot().quantile(0.5), 0.0);
}

TEST(HistogramTest, ExponentialBounds) {
  const auto b = obs::Histogram::exponentialBounds(0.001, 4.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 0.001);
  EXPECT_DOUBLE_EQ(b[1], 0.004);
  EXPECT_DOUBLE_EQ(b[2], 0.016);
  EXPECT_DOUBLE_EQ(b[3], 0.064);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

// --- registry ----------------------------------------------------------------

TEST(RegistryTest, SameNameReturnsSameMetric) {
  obs::Registry reg;
  obs::Counter& c1 = reg.counter("x_total");
  obs::Counter& c2 = reg.counter("x_total");
  EXPECT_EQ(&c1, &c2);
  c1.inc(2);
  EXPECT_EQ(c2.value(), 2u);

  // Pointer stability across reset() — svc::Service caches these.
  reg.reset();
  EXPECT_EQ(c1.value(), 0u);
  EXPECT_EQ(&reg.counter("x_total"), &c1);
}

TEST(RegistryTest, JsonCarriesQuantiles) {
  obs::Registry reg;
  reg.counter("req_total", "requests").inc(7);
  reg.gauge("depth").set(3.5);
  obs::Histogram& h = reg.histogram("lat_seconds", {0.1, 1.0}, "latency");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const Json j = reg.toJson();
  EXPECT_EQ(j.find("req_total")->find("value")->asInt(), 7);
  EXPECT_EQ(j.find("req_total")->find("type")->asString(), "counter");
  EXPECT_DOUBLE_EQ(j.find("depth")->find("value")->asDouble(), 3.5);
  const Json* lat = j.find("lat_seconds");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->find("count")->asInt(), 3);
  ASSERT_NE(lat->find("p50"), nullptr);
  ASSERT_NE(lat->find("p95"), nullptr);
  ASSERT_NE(lat->find("p99"), nullptr);
  const Json* buckets = lat->find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->size(), 3u);  // 0.1, 1, +Inf
  // Cumulative counts.
  EXPECT_EQ(buckets->at(0).find("count")->asInt(), 1);
  EXPECT_EQ(buckets->at(1).find("count")->asInt(), 2);
  EXPECT_EQ(buckets->at(2).find("count")->asInt(), 3);
  EXPECT_EQ(buckets->at(2).find("le")->asString(), "+Inf");
}

TEST(RegistryTest, PrometheusExpositionFormat) {
  obs::Registry reg;
  reg.counter("test_total", "a counter").inc(3);
  reg.gauge("test_gauge", "a gauge").set(1.5);
  obs::Histogram& h = reg.histogram("test_seconds", {0.1, 1.0}, "a histogram");
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = reg.toPrometheus();
  const auto has = [&](const std::string& needle) {
    return text.find(needle) != std::string::npos;
  };
  EXPECT_TRUE(has("# HELP test_total a counter"));
  EXPECT_TRUE(has("# TYPE test_total counter"));
  EXPECT_TRUE(has("test_total 3\n"));
  EXPECT_TRUE(has("# TYPE test_gauge gauge"));
  EXPECT_TRUE(has("test_gauge 1.5\n"));
  EXPECT_TRUE(has("# TYPE test_seconds histogram"));
  EXPECT_TRUE(has("test_seconds_bucket{le=\"0.1\"} 1\n"));
  EXPECT_TRUE(has("test_seconds_bucket{le=\"1\"} 2\n"));
  EXPECT_TRUE(has("test_seconds_bucket{le=\"+Inf\"} 3\n"));
  EXPECT_TRUE(has("test_seconds_count 3\n"));
  EXPECT_TRUE(has("test_seconds_sum "));
  // Every line is either a comment or `name{labels} value`.
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

}  // namespace
