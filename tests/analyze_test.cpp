// Tests for the pre-solve static analysis engine (src/analyze/): one
// positive test per diagnostic code — a seeded defective graph must
// trigger exactly that code on the expected node set — plus the negative
// guarantee that all nine paper benchmarks analyze clean at their
// Table 1 clock target (10 ns, II=1), the ir::verifyAll accumulation
// contract, diagnostic JSON round-trips, and the flow-level gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "flow/flow.h"
#include "flow/flow_json.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "workloads/workloads.h"

namespace lamp::analyze {
namespace {

using ir::GraphBuilder;
using ir::Value;

std::vector<const Diagnostic*> withCode(const AnalysisReport& r,
                                        std::string_view code) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

bool hasNode(const Diagnostic& d, ir::NodeId id) {
  return std::find(d.nodes.begin(), d.nodes.end(), id) != d.nodes.end();
}

// ---------------------------------------------------------------------------
// Negative guarantee: the paper's nine benchmarks are clean at Table 1
// targets (10 ns clock, II=1) under the flow's own analysis options.

TEST(AnalyzeTest, AllNineBenchmarksAnalyzeCleanAtTableOneTargets) {
  for (auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
    for (const flow::Method m :
         {flow::Method::HlsTool, flow::Method::MilpBase, flow::Method::MilpMap}) {
      flow::FlowOptions opts;  // ii=1, tcpNs=10, k=4 — the Table 1 setup
      const AnalysisReport report =
          analyzeGraph(bm.graph, flow::analysisOptions(bm, m, opts));
      EXPECT_FALSE(report.hasErrors()) << bm.name << ": "
                                       << summarizeErrors(report);
      // "Clean" matches lamp-lint's exit-0 contract: no Errors and no
      // Warnings. Info-severity advisories are allowed — e.g. DR's
      // output port legitimately carries provably-zero top bits
      // (LAMP010), which is a tuning hint, not a defect.
      for (const Diagnostic& d : report.diagnostics) {
        EXPECT_LT(d.severity, Severity::Warning)
            << bm.name << " has unexpected findings: "
            << renderReport(bm.graph, report);
      }
      EXPECT_EQ(report.recMii, 1) << bm.name;
    }
  }
}

// ---------------------------------------------------------------------------
// LAMP001 — clock-infeasible node

TEST(AnalyzeTest, ClockInfeasibleNodeIsFlagged) {
  GraphBuilder b("clock");
  Value x = b.input("x", 8);
  Value y = b.input("y", 8);
  Value slow = b.bxor(x, y, "slow");        // LUT root: 1.2 ns
  Value wide = b.add(slow, y, "wide");      // carry: 1.37 + 0.05*8 = 1.77 ns
  Value dsp = b.mul(x, y, 8, "dsp");        // black box: exempt (12 ns)
  b.output(b.bxor(wide, dsp), "out");

  AnalysisOptions opts;
  opts.tcpNs = 1.0;  // below even one LUT level
  const AnalysisReport report = analyzeGraph(b.graph(), opts);
  ASSERT_TRUE(report.hasErrors());
  const auto found = withCode(report, kCodeClockInfeasible);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::Error);
  EXPECT_TRUE(hasNode(*found[0], slow.id));
  EXPECT_TRUE(hasNode(*found[0], wide.id));
  EXPECT_FALSE(hasNode(*found[0], dsp.id)) << "black boxes are pipelined IP";

  // At the Table 1 clock everything fits in a cycle: no finding.
  opts.tcpNs = 10.0;
  EXPECT_TRUE(withCode(analyzeGraph(b.graph(), opts), kCodeClockInfeasible)
                  .empty());
}

// ---------------------------------------------------------------------------
// LAMP002 — recurrence-bound minimum II, with the binding cycle

TEST(AnalyzeTest, RecurrenceMiiReportsBindingCycle) {
  GraphBuilder b("rec");
  Value a = b.input("a", 8);
  Value st = b.placeholder(8, "st");
  Value m1 = b.mul(st.prev(1), a, 8, "m1");
  Value m2 = b.mul(m1, a, 8, "m2");
  b.bindPlaceholder(st, m2);
  b.output(m2, "out");

  AnalysisOptions opts;
  opts.delays.dspMulNs = 20.0;  // 2 whole cycles at 10 ns, no remainder
  const Recurrence rec = recurrenceMii(b.graph(), opts.delays, opts.tcpNs);
  EXPECT_EQ(rec.recMii, 4);  // two lat-2 muls on a dist-1 cycle
  EXPECT_FALSE(rec.cycle.empty());

  // Strict II budget (maxIi == ii): provably unreachable -> Error.
  opts.ii = 1;
  opts.maxIi = 1;
  AnalysisReport report = analyzeGraph(b.graph(), opts);
  EXPECT_EQ(report.recMii, 4);
  auto found = withCode(report, kCodeRecurrenceMii);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::Error);
  EXPECT_TRUE(hasNode(*found[0], m1.id));
  EXPECT_TRUE(hasNode(*found[0], m2.id));

  // Inside the flow's retry window: same bound, only a Warning.
  opts.maxIi = 9;
  report = analyzeGraph(b.graph(), opts);
  found = withCode(report, kCodeRecurrenceMii);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::Warning);
  EXPECT_FALSE(report.hasErrors());

  // Requested II at the bound: clean.
  opts.ii = opts.maxIi = 4;
  EXPECT_TRUE(withCode(analyzeGraph(b.graph(), opts), kCodeRecurrenceMii)
                  .empty());
}

// ---------------------------------------------------------------------------
// LAMP003 — resource-bound minimum II

TEST(AnalyzeTest, ResourceMiiCountsPortPressure) {
  GraphBuilder b("res");
  Value addr = b.input("addr", 10);
  Value l1 = b.load(ir::ResourceClass::MemPortA, addr, 8, "l1");
  Value l2 = b.load(ir::ResourceClass::MemPortA, addr, 8, "l2");
  Value l3 = b.load(ir::ResourceClass::MemPortA, addr, 8, "l3");
  b.output(b.bxor(b.bxor(l1, l2), l3), "out");

  AnalysisOptions opts;
  opts.resources[ir::ResourceClass::MemPortA] = 1;
  opts.ii = 1;
  opts.maxIi = 1;
  const AnalysisReport report = analyzeGraph(b.graph(), opts);
  EXPECT_EQ(report.resMii, 3);
  EXPECT_EQ(resourceMii(b.graph(), opts.resources), 3);
  const auto found = withCode(report, kCodeResourceMii);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::Error);
  EXPECT_EQ(found[0]->nodes.size(), 3u);
  EXPECT_TRUE(hasNode(*found[0], l1.id));
  EXPECT_TRUE(hasNode(*found[0], l2.id));
  EXPECT_TRUE(hasNode(*found[0], l3.id));

  // Two ports -> ceil(3/2) = 2, reachable within the retry window.
  opts.resources[ir::ResourceClass::MemPortA] = 2;
  opts.maxIi = 9;
  const AnalysisReport relaxed = analyzeGraph(b.graph(), opts);
  EXPECT_EQ(relaxed.resMii, 2);
  ASSERT_EQ(withCode(relaxed, kCodeResourceMii).size(), 1u);
  EXPECT_EQ(withCode(relaxed, kCodeResourceMii)[0]->severity,
            Severity::Warning);
}

// ---------------------------------------------------------------------------
// LAMP004 — cone that can never be K-feasible

TEST(AnalyzeTest, UnmappableConeIsFlagged) {
  GraphBuilder b("cone");
  Value sel = b.input("sel", 1);
  Value p = b.input("p", 8);
  Value q = b.input("q", 8);
  // Every cut of the mux keeps sel, p[j], q[j] on its boundary (all
  // three are Inputs) — 3 bits, so K=2 is provably infeasible.
  Value m = b.mux(sel, p, q, "m");
  b.output(m, "out");

  AnalysisOptions opts;
  opts.k = 2;
  opts.mappingAware = true;
  const AnalysisReport report = analyzeGraph(b.graph(), opts);
  const auto found = withCode(report, kCodeUnmappableCone);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::Error);
  EXPECT_TRUE(hasNode(*found[0], m.id));

  // Mapping-agnostic arms use trivial cuts with a carry fallback — the
  // same finding only warns there.
  opts.mappingAware = false;
  const AnalysisReport base = analyzeGraph(b.graph(), opts);
  ASSERT_EQ(withCode(base, kCodeUnmappableCone).size(), 1u);
  EXPECT_EQ(withCode(base, kCodeUnmappableCone)[0]->severity,
            Severity::Warning);

  // At K=4 (the default LUT size) the mux fits: clean.
  opts.k = 4;
  opts.mappingAware = true;
  EXPECT_TRUE(withCode(analyzeGraph(b.graph(), opts), kCodeUnmappableCone)
                  .empty());
}

// ---------------------------------------------------------------------------
// LAMP005 / LAMP006 — dead nodes and unused inputs

TEST(AnalyzeTest, DeadNodesAndUnusedInputsWarn) {
  GraphBuilder b("dead");
  Value a = b.input("a", 8);
  Value unused = b.input("unused", 8);
  Value dead = b.bxor(a, a, "dead");  // never reaches a sink
  b.output(b.bnot(a), "out");
  (void)dead;

  const AnalysisReport report = analyzeGraph(b.graph(), AnalysisOptions{});
  EXPECT_FALSE(report.hasErrors());
  const auto deadFound = withCode(report, kCodeDeadNode);
  ASSERT_EQ(deadFound.size(), 1u);
  EXPECT_EQ(deadFound[0]->severity, Severity::Warning);
  EXPECT_TRUE(hasNode(*deadFound[0], dead.id));
  const auto unusedFound = withCode(report, kCodeUnusedInput);
  ASSERT_EQ(unusedFound.size(), 1u);
  EXPECT_EQ(unusedFound[0]->nodes, std::vector<ir::NodeId>{unused.id});
}

// ---------------------------------------------------------------------------
// LAMP007 — structural violations, all of them, with node identity

TEST(AnalyzeTest, StructuralViolationsAllReportedAndGateLaterPasses) {
  ir::Graph g("broken");
  ir::Node in;
  in.kind = ir::OpKind::Input;
  in.width = 8;
  const ir::NodeId inId = g.add(in);
  ir::Node bad;
  bad.kind = ir::OpKind::Xor;
  bad.width = 4;  // mismatches its 8-bit operands
  bad.operands = {{inId, 0}, {inId, 0}};
  const ir::NodeId badId = g.add(bad);
  ir::Node worse;
  worse.kind = ir::OpKind::And;
  worse.width = 0;  // zero width AND operand mismatch
  worse.operands = {{inId, 0}, {inId, 0}};
  const ir::NodeId worseId = g.add(worse);
  ir::Node out;
  out.kind = ir::OpKind::Output;
  out.width = 4;
  out.operands = {{badId, 0}};
  g.add(out);

  const std::vector<ir::VerifyIssue> issues = ir::verifyAll(g);
  ASSERT_EQ(issues.size(), 3u);  // xor mismatch, and mismatch, and zero-width
  EXPECT_EQ(issues[0].node, badId);
  EXPECT_EQ(issues[1].node, worseId);
  EXPECT_EQ(issues[2].node, worseId);
  // verify() is the accumulating checker's first finding, verbatim.
  ASSERT_TRUE(ir::verify(g).has_value());
  EXPECT_EQ(*ir::verify(g), issues[0].message);
  // Node identity is embedded in every message.
  EXPECT_NE(issues[0].message.find("node 1 (xor)"), std::string::npos)
      << issues[0].message;

  const AnalysisReport report = analyzeGraph(g, AnalysisOptions{});
  EXPECT_FALSE(report.structurallyValid);
  EXPECT_TRUE(report.hasErrors());
  const auto found = withCode(report, kCodeStructural);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_TRUE(hasNode(*found[0], badId));
  // Later passes must not run on a malformed graph: the dead 'and' node
  // would otherwise produce LAMP005.
  EXPECT_TRUE(withCode(report, kCodeDeadNode).empty());
}

// ---------------------------------------------------------------------------
// LAMP008 — constant-foldable islands (transitively)

TEST(AnalyzeTest, ConstantFoldableIslandIsInfo) {
  GraphBuilder b("fold");
  Value x = b.input("x", 8);
  Value c = b.add(b.constant(3, 8), b.constant(4, 8), "c");
  Value c2 = b.bnot(c, "c2");  // constant transitively
  b.output(b.bxor(x, c2), "out");

  const AnalysisReport report = analyzeGraph(b.graph(), AnalysisOptions{});
  EXPECT_FALSE(report.hasErrors());
  const auto found = withCode(report, kCodeConstFoldable);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::Info);
  EXPECT_TRUE(hasNode(*found[0], c.id));
  EXPECT_TRUE(hasNode(*found[0], c2.id));

  // ir::foldConstants is exactly the fix the hint names: afterwards the
  // island is gone.
  const ir::Graph folded = ir::foldConstants(b.graph());
  EXPECT_TRUE(withCode(analyzeGraph(folded, AnalysisOptions{}),
                       kCodeConstFoldable)
                  .empty());
}

// ---------------------------------------------------------------------------
// LAMP009 — no observable sinks

TEST(AnalyzeTest, MissingSinksWarn) {
  GraphBuilder b("sinkless");
  Value x = b.input("x", 8);
  (void)b.bnot(x, "n");

  const AnalysisReport report = analyzeGraph(b.graph(), AnalysisOptions{});
  EXPECT_FALSE(report.hasErrors());
  ASSERT_EQ(withCode(report, kCodeNoSinks).size(), 1u);
  EXPECT_EQ(withCode(report, kCodeNoSinks)[0]->severity, Severity::Warning);
}

// ---------------------------------------------------------------------------
// Registry and serialization plumbing

// ---------------------------------------------------------------------------
// LAMP010-013: seeded positive tests for the bit-level dataflow findings.

TEST(AnalyzeTest, DeadOutputBitsAreFlagged) {
  GraphBuilder b("dead_bits");
  Value a = b.input("a", 4);
  const ir::NodeId out = b.output(b.zext(a, 8), "o");  // top 4 never rise
  const AnalysisReport r = analyzeGraph(b.graph(), AnalysisOptions{});
  const auto found = withCode(r, kCodeDeadOutputBits);
  ASSERT_EQ(found.size(), 1u) << renderReport(b.graph(), r);
  EXPECT_EQ(found[0]->severity, Severity::Info);
  EXPECT_TRUE(hasNode(*found[0], out));
  EXPECT_FALSE(r.hasErrors());
}

TEST(AnalyzeTest, OverflowTruncationIsFlagged) {
  GraphBuilder b("trunc");
  Value a = b.input("a", 8);
  Value set = b.bor(a, b.constant(0x80, 8));  // bit 7 provably 1
  Value low = b.slice(set, 0, 4);             // drops the known-set bit
  b.output(low, "o");
  const ir::NodeId sliceId = low.id;
  const AnalysisReport r = analyzeGraph(b.graph(), AnalysisOptions{});
  const auto found = withCode(r, kCodeOverflowTruncation);
  ASSERT_EQ(found.size(), 1u) << renderReport(b.graph(), r);
  EXPECT_EQ(found[0]->severity, Severity::Warning);
  EXPECT_TRUE(hasNode(*found[0], sliceId));
}

TEST(AnalyzeTest, ConstantCompareIsFlagged) {
  GraphBuilder b("cmp");
  Value a = b.input("a", 4);
  // zext(a) <= 15 < 64: the ranges prove the comparison before any input.
  Value always = b.lt(b.zext(a, 8), b.constant(0x40, 8), false, "always");
  b.output(always, "o");
  const AnalysisReport r = analyzeGraph(b.graph(), AnalysisOptions{});
  const auto found = withCode(r, kCodeConstantCompare);
  ASSERT_EQ(found.size(), 1u) << renderReport(b.graph(), r);
  EXPECT_EQ(found[0]->severity, Severity::Warning);
  EXPECT_TRUE(hasNode(*found[0], always.id));
  EXPECT_NE(found[0]->message.find("always-true"), std::string::npos);
}

TEST(AnalyzeTest, DeadMuxArmIsFlagged) {
  GraphBuilder b("mux_arm");
  Value a = b.input("a", 8);
  Value t = b.input("t", 8);
  Value f = b.input("f", 8);
  Value sel = b.bit(b.bor(a, b.constant(1, 8)), 0);  // provably 1
  Value m = b.mux(sel, t, f);
  b.output(m, "o");
  const AnalysisReport r = analyzeGraph(b.graph(), AnalysisOptions{});
  const auto found = withCode(r, kCodeDeadMuxArm);
  ASSERT_EQ(found.size(), 1u) << renderReport(b.graph(), r);
  EXPECT_EQ(found[0]->severity, Severity::Warning);
  EXPECT_TRUE(hasNode(*found[0], m.id));
}

// The --emit-analysis flow surface: per-node facts ride on FlowResult and
// survive the JSON wire format losslessly.
TEST(AnalyzeTest, FlowEmitAnalysisRoundTrips) {
  GraphBuilder b("emit");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(m, "o");
  const workloads::Benchmark bm =
      workloads::benchmarkFromGraph(b.take(), "emit test");

  flow::FlowOptions opts;
  opts.emitAnalysis = true;
  opts.simplify = true;
  opts.solverTimeLimitSeconds = 5.0;
  const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
  ASSERT_TRUE(r.success) << r.error;
  ASSERT_FALSE(r.analysis.empty());
  EXPECT_FALSE(r.simplifyMap.empty());

  flow::FlowResult back;
  std::string error;
  ASSERT_TRUE(flow::resultFromJson(flow::resultToJson(r), back, &error))
      << error;
  EXPECT_EQ(back.analysis, r.analysis);
  EXPECT_EQ(back.simplifyMap, r.simplifyMap);
  EXPECT_EQ(flow::resultToJson(back).dump(), flow::resultToJson(r).dump());
}

TEST(AnalyzeTest, PassRegistryCoversEveryDiagnosticCode) {
  std::string allCodes;
  for (const Pass& p : passRegistry()) {
    EXPECT_FALSE(std::string(p.name).empty());
    EXPECT_NE(p.run, nullptr);
    allCodes += p.codes;
    allCodes += ",";
  }
  for (const std::string_view code :
       {kCodeClockInfeasible, kCodeRecurrenceMii, kCodeResourceMii,
        kCodeUnmappableCone, kCodeDeadNode, kCodeUnusedInput, kCodeStructural,
        kCodeConstFoldable, kCodeNoSinks}) {
    EXPECT_NE(allCodes.find(code), std::string::npos)
        << code << " claimed by no pass";
  }
}

TEST(AnalyzeTest, DiagnosticJsonRoundTrips) {
  Diagnostic d;
  d.code = "LAMP002";
  d.severity = Severity::Warning;
  d.message = "a loop-carried recurrence requires II >= 4";
  d.nodes = {3, 7, 12};
  d.hint = "raise ii";

  const util::Json j = diagnosticToJson(d);
  const auto reparsed = util::Json::parse(j.dump());
  ASSERT_TRUE(reparsed.has_value());
  Diagnostic back;
  std::string error;
  ASSERT_TRUE(diagnosticFromJson(*reparsed, back, &error)) << error;
  EXPECT_EQ(back, d);

  // Hint omitted when empty, tolerated when absent.
  d.hint.clear();
  const util::Json noHint = diagnosticToJson(d);
  EXPECT_EQ(noHint.find("hint"), nullptr);
  ASSERT_TRUE(diagnosticFromJson(noHint, back, &error)) << error;
  EXPECT_EQ(back, d);

  // Shape violations are rejected, not silently defaulted.
  util::Json missingCode = util::Json::object();
  missingCode.set("severity", util::Json::string("error"));
  missingCode.set("message", util::Json::string("m"));
  EXPECT_FALSE(diagnosticFromJson(missingCode, back, &error));
  util::Json badSeverity = diagnosticToJson(d);
  badSeverity.set("severity", util::Json::string("fatal"));
  EXPECT_FALSE(diagnosticFromJson(badSeverity, back, &error));

  // List round trip.
  std::vector<Diagnostic> list = {d, d};
  list[1].code = "LAMP005";
  std::vector<Diagnostic> listBack;
  ASSERT_TRUE(diagnosticsFromJson(diagnosticsToJson(list), listBack, &error))
      << error;
  EXPECT_EQ(listBack, list);
}

// ---------------------------------------------------------------------------
// The flow-level gate: runFlow fails fast with diagnostics attached,
// and they survive the flow_json round trip.

TEST(AnalyzeTest, FlowGateFailsFastWithDiagnosticsAttached) {
  GraphBuilder b("gate");
  Value x = b.input("x", 8);
  Value y = b.input("y", 8);
  b.output(b.bxor(x, y, "slow"), "out");
  const workloads::Benchmark bm =
      workloads::benchmarkFromGraph(b.take(), "gate test");

  flow::FlowOptions opts;
  opts.tcpNs = 1.0;  // LAMP001 for the xor (1.2 ns LUT level)
  const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.status, lp::SolveStatus::Infeasible);
  EXPECT_NE(r.error.find("pre-solve analysis"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("LAMP001"), std::string::npos) << r.error;
  ASSERT_FALSE(r.diagnostics.empty());
  EXPECT_EQ(r.diagnostics[0].code, kCodeClockInfeasible);
  EXPECT_EQ(r.numVars, 0u) << "the solver must never have been built";

  // Diagnostics are part of the FlowResult wire format.
  flow::FlowResult back;
  std::string error;
  ASSERT_TRUE(flow::resultFromJson(flow::resultToJson(r), back, &error))
      << error;
  EXPECT_EQ(back.diagnostics, r.diagnostics);
  EXPECT_EQ(flow::resultToJson(back).dump(), flow::resultToJson(r).dump());
}

}  // namespace
}  // namespace lamp::analyze
