// Tests for the dataflow-driven graph simplification: targeted rewrites
// (constant-cone folding, width narrowing, identity elimination), the
// old-to-new id mapping, and the differential-simulation guarantee over
// all nine paper benchmarks — the simplified graph must be bit-identical
// on every output for every simulated iteration.

#include <gtest/gtest.h>

#include <vector>

#include "analyze/dataflow.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "ir/simplify.h"
#include "sim/interp.h"
#include "workloads/workloads.h"

namespace lamp::ir {
namespace {

using analyze::analyzeDataflow;
using analyze::toBitFacts;

Graph simplified(const Graph& g, SimplifyStats* st = nullptr,
                 std::vector<NodeId>* map = nullptr) {
  const BitFacts facts = toBitFacts(analyzeDataflow(g));
  return simplify(g, facts, st, map);
}

TEST(SimplifyTest, FoldsConstantCone) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value c = b.bxor(b.constant(0x0F, 8), b.constant(0x35, 8));
  Value s = b.add(c, b.constant(1, 8));
  b.output(b.bxor(a, s), "o");
  SimplifyStats st;
  const Graph g = simplified(b.graph(), &st);
  EXPECT_GE(st.folded, 1);
  EXPECT_FALSE(ir::verify(g).has_value());
  // The xor/add cone collapsed; only input, one const, the xor with the
  // input, and the output remain.
  EXPECT_LT(g.size(), b.graph().size());
}

TEST(SimplifyTest, MapTracksSurvivingNodes) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value x = b.bxor(a, b.constant(0x7, 8));
  const NodeId out = b.output(x, "o");
  std::vector<NodeId> map;
  const Graph g = simplified(b.graph(), nullptr, &map);
  ASSERT_EQ(map.size(), b.graph().size());
  ASSERT_NE(map[a.id], kNoNode);
  ASSERT_NE(map[out], kNoNode);
  EXPECT_EQ(g.node(map[a.id]).kind, OpKind::Input);
  EXPECT_EQ(g.node(map[out]).kind, OpKind::Output);
}

// Regression: `a & 0x0F` feeding an Output must NOT forward to `a`.
// The output reads all eight bits; the top nibble is known-zero (so not
// *demanded* — no logic computes it) but it is *live*, and `a`'s raw
// top bits would differ. Forwarding neutrality is judged on the live
// mask for exactly this reason.
TEST(SimplifyTest, MaskedValueFeedingOutputIsNotForwarded) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(m, "o");
  SimplifyStats st;
  const Graph g = simplified(b.graph(), &st);
  EXPECT_EQ(st.forwarded, 0u);
  EXPECT_EQ(g.size(), b.graph().size());
}

// ...but the same And does forward when a downstream Slice proves the
// top nibble unobservable: only the low four bits are live.
TEST(SimplifyTest, MaskedValueForwardsWhenTopBitsAreDead) {
  GraphBuilder b("t");
  Value a = b.input("a", 8);
  Value m = b.band(a, b.constant(0x0F, 8));
  b.output(b.slice(m, 0, 4), "o");
  SimplifyStats st;
  const Graph g = simplified(b.graph(), &st);
  EXPECT_GE(st.forwarded, 1u);
  EXPECT_LT(g.size(), b.graph().size());
}

TEST(SimplifyTest, SimplifiedGraphVerifies) {
  for (const auto& bm :
       workloads::allBenchmarks(workloads::Scale::Default)) {
    const Graph g = simplified(bm.graph);
    const auto issue = ir::verify(g);
    EXPECT_FALSE(issue.has_value()) << bm.name << ": " << *issue;
  }
}

// The core acceptance property: for every benchmark, the original and
// the simplified graph produce bit-identical output streams (the
// rewrites may only touch bits no output can observe).
TEST(SimplifyTest, DifferentialSimulationAllBenchmarks) {
  constexpr int kIterations = 24;
  constexpr std::uint32_t kSeed = 7;
  for (const auto& bm :
       workloads::allBenchmarks(workloads::Scale::Default)) {
    std::vector<NodeId> map;
    const Graph g = simplified(bm.graph, nullptr, &map);

    std::vector<sim::InputFrame> origFrames;
    std::vector<sim::InputFrame> newFrames;
    for (int k = 0; k < kIterations; ++k) {
      sim::InputFrame f = bm.makeInputs(k, kSeed);
      sim::InputFrame r;
      for (const auto& [node, value] : f) {
        ASSERT_NE(map[node], kNoNode) << bm.name << " input dropped";
        r[map[node]] = value;
      }
      origFrames.push_back(std::move(f));
      newFrames.push_back(std::move(r));
    }

    sim::Interpreter orig(bm.graph);
    sim::Interpreter simp(g);
    if (bm.initMemory) {
      bm.initMemory(orig.memory());
      bm.initMemory(simp.memory());
    }
    const auto a = orig.run(origFrames);
    const auto c = simp.run(newFrames);
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      for (const auto& [node, value] : a[k]) {
        ASSERT_NE(map[node], kNoNode) << bm.name << " output dropped";
        const auto it = c[k].find(map[node]);
        ASSERT_NE(it, c[k].end()) << bm.name;
        EXPECT_EQ(it->second, value)
            << bm.name << " iteration " << k << " output node " << node;
      }
    }
  }
}

TEST(SimplifyTest, SecondPassNeverGrows) {
  for (const auto& bm :
       workloads::allBenchmarks(workloads::Scale::Default)) {
    const Graph once = simplified(bm.graph);
    const Graph twice = simplified(once);
    EXPECT_LE(twice.size(), once.size()) << bm.name;
  }
}

}  // namespace
}  // namespace lamp::ir
