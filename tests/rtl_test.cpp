// Tests for the Verilog emitter: structural properties of the generated
// text (ports, valid chain, register chains, memories, balanced module),
// loop-carried state, and multi-cycle DSP staging.

#include <gtest/gtest.h>

#include <sstream>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "rtl/verilog.h"
#include "sched/sdc.h"

namespace lamp::rtl {
namespace {

using ir::GraphBuilder;
using ir::Value;

const sched::DelayModel kDm;

std::string emit(const ir::Graph& g, const sched::Schedule& s) {
  std::ostringstream os;
  emitVerilog(os, g, s, kDm);
  return os.str();
}

sched::Schedule scheduleOf(const ir::Graph& g) {
  const auto db = cut::trivialCuts(g);
  const auto r = sched::sdcSchedule(g, db, kDm, {});
  EXPECT_TRUE(r.success) << r.error;
  return r.schedule;
}

int countOccurrences(const std::string& text, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(VerilogTest, CombinationalModuleShape) {
  GraphBuilder b("comb");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  b.output(b.bxor(a, c), "out");
  const ir::Graph g = b.take();
  const std::string v = emit(g, scheduleOf(g));

  EXPECT_NE(v.find("module comb ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire [7:0] n0_a"), std::string::npos);
  EXPECT_NE(v.find("output wire [7:0]"), std::string::npos);
  EXPECT_NE(v.find("^"), std::string::npos);
  // Zero-latency pipeline: valid passes straight through, no registers.
  EXPECT_NE(v.find("assign valid_out = valid_in;"), std::string::npos);
  EXPECT_EQ(v.find("always @(posedge clk)"), std::string::npos);
}

TEST(VerilogTest, PipelineRegistersForCrossStageValues) {
  GraphBuilder b("deep");
  std::vector<Value> in;
  for (int i = 0; i < 10; ++i) in.push_back(b.input("i" + std::to_string(i), 16));
  Value acc = in[0];
  for (int i = 1; i < 10; ++i) acc = b.bxor(acc, in[i]);
  b.output(acc, "out");
  const ir::Graph g = b.take();
  const sched::Schedule s = scheduleOf(g);
  ASSERT_GE(s.latency(g), 1);
  const std::string v = emit(g, s);

  EXPECT_NE(v.find("valid_sr"), std::string::npos);
  EXPECT_NE(v.find("_d1;"), std::string::npos);  // held values
  EXPECT_GT(countOccurrences(v, "always @(posedge clk)"), 1);
}

TEST(VerilogTest, LoopCarriedStateBecomesRegister) {
  GraphBuilder b("acc");
  Value x = b.input("x", 8);
  Value ph = b.placeholder(8, "st");
  Value nx = b.bxor(x, Value{ph.id, 1}, "next");
  b.bindPlaceholder(ph, nx);
  b.output(nx, "o");
  const ir::Graph g = ir::compact(b.graph());
  const std::string v = emit(g, scheduleOf(g));
  // The xor reads its own one-iteration-delayed value.
  EXPECT_NE(v.find("n1_next_d1"), std::string::npos);
  EXPECT_NE(v.find("n1_next_d1 <= n1_next"), std::string::npos);
}

TEST(VerilogTest, MemoriesAndMultiCycleDsp) {
  GraphBuilder b("bb");
  Value addr = b.input("addr", 10);
  Value l = b.load(ir::ResourceClass::MemPortA, addr, 16, "rom");
  Value m = b.mul(l, l, 16, "prod");
  b.output(m, "o");
  const ir::Graph g = b.take();
  const std::string v = emit(g, scheduleOf(g));
  EXPECT_NE(v.find("mem_rc1 [0:1023]"), std::string::npos);
  EXPECT_NE(v.find("DSP"), std::string::npos);
  EXPECT_NE(v.find("*"), std::string::npos);
}

TEST(VerilogTest, SignedOpsUseSignedCasts) {
  GraphBuilder b("sgn");
  Value a = b.input("a", 8, true);
  Value zero = b.constant(0, 8);
  Value neg = b.lt(a, zero, true);
  b.output(b.mux(neg, b.ashr(a, 2), a), "o");
  const ir::Graph g = b.take();
  const std::string v = emit(g, scheduleOf(g));
  EXPECT_NE(v.find("$signed"), std::string::npos);
  EXPECT_NE(v.find(">>>"), std::string::npos);
  EXPECT_NE(v.find("8'd0"), std::string::npos);  // constant operand
}

TEST(VerilogTest, BalancedStructure) {
  GraphBuilder b("bal");
  Value a = b.input("a", 4);
  b.output(b.add(a, a), "o");
  const ir::Graph g = b.take();
  const std::string v = emit(g, scheduleOf(g));
  EXPECT_EQ(countOccurrences(v, "module "), countOccurrences(v, "endmodule"));
  EXPECT_EQ(countOccurrences(v, "begin"), countOccurrences(v, "end\n") +
                                              countOccurrences(v, "end "));
}

}  // namespace
}  // namespace lamp::rtl
