// Tests for the parallel branch & bound solver: objective equality
// between thread counts on every model family the serial suite covers,
// incumbent-callback serialization (no torn vectors, strictly improving
// order), node/time limits under contention, and serial-mode determinism.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "lp/milp.h"
#include "util/timer.h"

namespace lamp::lp {
namespace {

struct SosGroup {
  std::vector<Var> vars;
  std::vector<double> positions;
};

/// A model plus the solver decorations needed to reproduce a solve.
struct TestInstance {
  std::string name;
  Model model;
  std::vector<SosGroup> sos;
  std::vector<double> incumbent;  ///< empty = no warm start
};

Solution solveWith(const TestInstance& inst, MilpOptions opts) {
  MilpSolver solver(inst.model, std::move(opts));
  for (const SosGroup& g : inst.sos) solver.addSos1Group(g.vars, g.positions);
  if (!inst.incumbent.empty()) solver.setInitialIncumbent(inst.incumbent);
  return solver.solve();
}

TestInstance makeKnapsack() {
  TestInstance inst;
  inst.name = "knapsack";
  Model& m = inst.model;
  const Var a = m.addBinary("a");
  const Var b = m.addBinary("b");
  const Var c = m.addBinary("c");
  m.addConstraint(LinExpr::term(a, 2.0).add(b, 3.0).add(c, 1.0), Sense::Le,
                  5.0);
  m.setObjective(LinExpr::term(a, -5.0).add(b, -4.0).add(c, -3.0));
  return inst;
}

TestInstance makeIntegerRounding() {
  TestInstance inst;
  inst.name = "integer-rounding";
  Model& m = inst.model;
  const Var x = m.addVar(0, 10, VarType::Integer, "x");
  m.addConstraint(LinExpr::term(x, 2.0), Sense::Le, 7.0);
  m.setObjective(LinExpr::term(x, -1.0));
  return inst;
}

TestInstance makeInfeasible() {
  TestInstance inst;
  inst.name = "infeasible";
  Model& m = inst.model;
  const Var x = m.addVar(0, 5, VarType::Integer, "x");
  const Var y = m.addVar(0, 5, VarType::Integer, "y");
  m.addConstraint(LinExpr::term(x, 2.0).add(y, 2.0), Sense::Eq, 3.0);
  return inst;
}

TestInstance makeMixed() {
  TestInstance inst;
  inst.name = "mixed";
  Model& m = inst.model;
  const Var x = m.addBinary("x");
  const Var y = m.addContinuous(0, 10, "y");
  m.addConstraint(LinExpr::term(y, 1.0).add(x, 1.0), Sense::Ge, 1.5);
  m.addConstraint(LinExpr::term(y, 1.0).add(x, -1.0), Sense::Ge, -1.5);
  m.setObjective(LinExpr::term(y, 1.0));
  return inst;
}

TestInstance makeOneHotSos() {
  TestInstance inst;
  inst.name = "one-hot-sos";
  Model& m = inst.model;
  std::vector<std::vector<Var>> s(3);
  LinExpr obj;
  for (int i = 0; i < 3; ++i) {
    LinExpr onehot;
    for (int t = 0; t < 4; ++t) {
      const Var v = m.addBinary();
      s[i].push_back(v);
      onehot.add(v, 1.0);
      obj.add(v, std::abs(i - t));
    }
    m.addConstraint(onehot, Sense::Eq, 1.0);
  }
  for (int t = 0; t < 4; ++t) {
    LinExpr cap;
    for (int i = 0; i < 3; ++i) cap.add(s[i][t], 1.0);
    m.addConstraint(cap, Sense::Le, 1.0);
  }
  m.setObjective(obj);
  for (int i = 0; i < 3; ++i) {
    inst.sos.push_back({s[i], {0.0, 1.0, 2.0, 3.0}});
  }
  return inst;
}

TestInstance makeRandomBinary(unsigned seed) {
  TestInstance inst;
  inst.name = "random-" + std::to_string(seed);
  std::mt19937 rng(seed * 104729u);
  std::uniform_int_distribution<int> nDist(3, 10), mDist(1, 5);
  std::uniform_real_distribution<double> cDist(-4.0, 4.0);
  const int n = nDist(rng), rows = mDist(rng);
  Model& m = inst.model;
  for (int j = 0; j < n; ++j) m.addBinary();
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) e.add(j, cDist(rng));
    m.addConstraint(e, Sense::Le, cDist(rng) + 1.0);
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add(j, cDist(rng));
  m.setObjective(obj);
  return inst;
}

/// A knapsack big enough that the tree has hundreds of nodes, with many
/// improving incumbents along the way.
TestInstance makeWideKnapsack(int n, unsigned seed) {
  TestInstance inst;
  inst.name = "wide-knapsack";
  Model& m = inst.model;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> d(1.0, 10.0);
  LinExpr cap, obj;
  for (int i = 0; i < n; ++i) {
    const Var v = m.addBinary();
    cap.add(v, d(rng));
    obj.add(v, -d(rng));
  }
  m.addConstraint(cap, Sense::Le, 1.6 * n);
  m.setObjective(obj);
  return inst;
}

/// Subset-sum knapsack with all-even weights and an odd capacity: the LP
/// relaxation's bound sits at the (unreachable) capacity in every node,
/// so pruning barely bites and the tree is reliably exponential — the
/// classic fuel for limit tests.
TestInstance makeHardKnapsack(int n, unsigned seed) {
  TestInstance inst;
  inst.name = "hard-knapsack";
  Model& m = inst.model;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> w(10, 50);
  LinExpr cap, obj;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double weight = 2.0 * w(rng);  // even
    total += weight;
    const Var v = m.addBinary();
    cap.add(v, weight);
    obj.add(v, -weight);  // profit == weight (subset sum)
  }
  const double capacity = 2.0 * std::floor(total / 4.0) + 1.0;  // odd
  m.addConstraint(cap, Sense::Le, capacity);
  m.setObjective(obj);
  return inst;
}

std::vector<TestInstance> allInstances() {
  std::vector<TestInstance> out;
  out.push_back(makeKnapsack());
  out.push_back(makeIntegerRounding());
  out.push_back(makeInfeasible());
  out.push_back(makeMixed());
  out.push_back(makeOneHotSos());
  for (unsigned seed = 1; seed <= 20; ++seed) {
    out.push_back(makeRandomBinary(seed));
  }
  out.push_back(makeWideKnapsack(18, 11));
  return out;
}

// (a) Objective equality between threads=1 and threads=4 on every model.
TEST(MilpParallelTest, ObjectiveMatchesSerialOnAllModels) {
  for (const TestInstance& inst : allInstances()) {
    MilpOptions serialOpts;
    serialOpts.threads = 1;
    const Solution serial = solveWith(inst, serialOpts);

    MilpOptions parOpts;
    parOpts.threads = 4;
    const Solution parallel = solveWith(inst, parOpts);

    EXPECT_EQ(parallel.status, serial.status) << inst.name;
    if (serial.feasible()) {
      EXPECT_NEAR(parallel.objective, serial.objective, 1e-6) << inst.name;
      EXPECT_TRUE(inst.model.checkFeasible(parallel.values).empty())
          << inst.name;
    }
  }
}

// Warm-start incumbents survive the parallel path too.
TEST(MilpParallelTest, InitialIncumbentRespected) {
  TestInstance inst = makeWideKnapsack(18, 11);
  inst.incumbent.assign(inst.model.numVars(), 0.0);
  MilpOptions opts;
  opts.threads = 4;
  const Solution s = solveWith(inst, opts);
  ASSERT_TRUE(s.feasible());
  EXPECT_TRUE(inst.model.checkFeasible(s.values).empty());

  MilpOptions serialOpts;
  serialOpts.threads = 1;
  const Solution serial = solveWith(inst, serialOpts);
  EXPECT_NEAR(s.objective, serial.objective, 1e-6);
}

// (b) Incumbent callbacks are serialized: never concurrent, never a torn
// vector, and objectives arrive strictly improving (a reordered or
// overlapping pair would break monotonicity).
TEST(MilpParallelTest, IncumbentCallbackSerialized) {
  const TestInstance inst = makeWideKnapsack(20, 3);
  const std::size_t n = inst.model.numVars();

  std::atomic<int> inCallback{0};
  std::atomic<int> maxConcurrent{0};
  std::vector<double> objectives;  // guarded by callback serialization
  bool sizesOk = true;
  bool valuesMatchObjective = true;

  MilpOptions opts;
  opts.threads = 4;
  opts.onIncumbent = [&](double obj, const std::vector<double>& x) {
    const int now = inCallback.fetch_add(1) + 1;
    int seen = maxConcurrent.load();
    while (now > seen && !maxConcurrent.compare_exchange_weak(seen, now)) {
    }
    // Hold the callback open long enough that an unserialized second
    // incumbent would overlap.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
    sizesOk = sizesOk && x.size() == n;
    valuesMatchObjective =
        valuesMatchObjective &&
        std::abs(inst.model.objective().evaluate(x) - obj) < 1e-6;
    objectives.push_back(obj);
    inCallback.fetch_sub(1);
  };

  const Solution s = solveWith(inst, opts);
  ASSERT_TRUE(s.feasible());
  EXPECT_EQ(maxConcurrent.load(), 1) << "callbacks overlapped";
  EXPECT_TRUE(sizesOk) << "torn incumbent vector";
  EXPECT_TRUE(valuesMatchObjective) << "objective/vector mismatch";
  ASSERT_FALSE(objectives.empty());
  for (std::size_t i = 1; i < objectives.size(); ++i) {
    EXPECT_LT(objectives[i], objectives[i - 1])
        << "incumbents not strictly improving at #" << i;
  }
  EXPECT_NEAR(objectives.back(), s.objective, 1e-9);
}

// (c) The wall-clock limit holds under thread contention.
TEST(MilpParallelTest, TimeLimitRespectedUnderContention) {
  // Oversubscribe on purpose: more workers than cores, a tree far too
  // large to finish, and a tight cap.
  const TestInstance inst = makeHardKnapsack(60, 7);
  MilpOptions opts;
  opts.threads = 8;
  opts.timeLimitSeconds = 0.3;

  util::Stopwatch clock;
  const Solution s = solveWith(inst, opts);
  const double wall = clock.seconds();

  // Generous slack: each in-flight LP may run up to its 0.1 s floor after
  // the cap trips, plus sanitizer/scheduling overhead on busy CI boxes.
  EXPECT_LT(wall, 10.0) << "time limit ignored";
  EXPECT_NE(s.status, SolveStatus::Optimal);
  if (s.feasible()) {
    EXPECT_TRUE(inst.model.checkFeasible(s.values).empty());
  }
}

// Node limits stop the parallel search promptly (within one node per
// in-flight worker of the cap).
TEST(MilpParallelTest, NodeLimitRespected) {
  const TestInstance inst = makeHardKnapsack(40, 9);
  MilpOptions opts;
  opts.threads = 4;
  opts.maxNodes = 16;
  const Solution s = solveWith(inst, opts);
  EXPECT_LE(s.branchNodes, opts.maxNodes + 4);
}

// threads=1 is the historical serial solver: repeated runs are
// bit-deterministic in node count, objective, and status.
TEST(MilpParallelTest, SerialModeIsDeterministic) {
  for (int run = 0; run < 2; ++run) {
    const TestInstance inst = makeWideKnapsack(18, 11);
    MilpOptions opts;
    opts.threads = 1;
    const Solution a = solveWith(inst, opts);
    const Solution b = solveWith(inst, opts);
    ASSERT_EQ(a.status, b.status);
    EXPECT_EQ(a.branchNodes, b.branchNodes);
    EXPECT_EQ(a.simplexIterations, b.simplexIterations);
    EXPECT_EQ(a.objective, b.objective);
    EXPECT_EQ(a.values, b.values);
  }
}

// Parallel runs at any thread count agree with serial on SOS models too
// (the branching scheme most of the scheduler's models rely on).
TEST(MilpParallelTest, SosObjectiveStableAcrossThreadCounts) {
  const TestInstance inst = makeOneHotSos();
  double reference = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    MilpOptions opts;
    opts.threads = threads;
    const Solution s = solveWith(inst, opts);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << threads << " threads";
    if (threads == 1) {
      reference = s.objective;
    } else {
      EXPECT_NEAR(s.objective, reference, 1e-6) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace lamp::lp
