// trace_valid ctest driver: runs lampc with --trace-out on one
// benchmark (mapping-aware MILP, simplify on, two solver threads — the
// configuration that exercises all seven flow phases plus the parallel
// B&B workers) and validates the emitted file is well-formed Chrome
// trace-event JSON:
//
//   - the document parses and carries a traceEvents array,
//   - every 'B' has a matching 'E' on the same tid (LIFO nesting),
//   - timestamps are monotonic (non-decreasing) per tid,
//   - all seven flow phases, the per-worker B&B spans and at least one
//     incumbent instant event are present.
//
// Usage: trace_check <path-to-lampc>

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

using lamp::util::Json;

namespace {

int fail(const std::string& msg) {
  std::cerr << "trace_check: FAIL: " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: trace_check <path-to-lampc>\n";
    return 2;
  }
  const std::string traceFile = "trace_valid.json";
  const std::string cmd = std::string("\"") + argv[1] +
                          "\" CLZ --method=map --simplify --threads=2"
                          " --time-limit=10 --quiet --trace-out=" +
                          traceFile;
  std::cerr << "trace_check: running " << cmd << "\n";
  if (std::system(cmd.c_str()) != 0) return fail("lampc run failed");

  std::ifstream in(traceFile);
  if (!in) return fail("lampc did not write " + traceFile);
  std::stringstream ss;
  ss << in.rdbuf();

  std::string parseError;
  const auto doc = Json::parse(ss.str(), &parseError);
  if (!doc) return fail("trace is not valid JSON: " + parseError);
  const Json* events = doc->isObject() ? doc->find("traceEvents") : nullptr;
  if (events == nullptr || !events->isArray()) {
    return fail("no traceEvents array");
  }

  std::map<std::int64_t, std::vector<std::string>> stacks;
  std::map<std::int64_t, double> lastTs;
  std::set<std::string> beginNames;
  std::size_t workerSpans = 0, incumbents = 0;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const Json& e = events->at(i);
    const Json* phField = e.find("ph");
    if (phField == nullptr) return fail("event without ph");
    const std::string ph = phField->asString();
    if (ph == "M") continue;  // metadata carries no timeline timestamp
    if (ph != "B" && ph != "E" && ph != "i") {
      return fail("unexpected event phase '" + ph + "'");
    }
    const Json* tidField = e.find("tid");
    const Json* tsField = e.find("ts");
    if (tidField == nullptr || tsField == nullptr) {
      return fail("timeline event without tid/ts");
    }
    const std::int64_t tid = tidField->asInt();
    const double ts = tsField->asDouble();
    if (lastTs.count(tid) != 0 && ts < lastTs[tid]) {
      return fail("timestamps regress on tid " + std::to_string(tid));
    }
    lastTs[tid] = ts;
    if (ph == "B") {
      const std::string name = e.find("name")->asString();
      beginNames.insert(name);
      if (name == "bnb_worker") ++workerSpans;
      stacks[tid].push_back(name);
    } else if (ph == "E") {
      if (stacks[tid].empty()) {
        return fail("E without matching B on tid " + std::to_string(tid));
      }
      stacks[tid].pop_back();
    } else if (e.find("name")->asString() == "incumbent") {
      ++incumbents;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      return fail("unclosed span '" + stack.back() + "' on tid " +
                  std::to_string(tid));
    }
  }

  for (const char* phase : {"analyze", "dataflow", "simplify", "cut_enum",
                            "milp_build", "milp_solve", "validate", "verify"}) {
    if (beginNames.count(phase) == 0) {
      return fail(std::string("missing flow phase span '") + phase + "'");
    }
  }
  if (workerSpans < 2) return fail("expected >= 2 bnb_worker spans");
  if (incumbents < 1) return fail("expected >= 1 incumbent instant");

  std::cerr << "trace_check: OK (" << events->size() << " events, "
            << workerSpans << " worker spans, " << incumbents
            << " incumbents)\n";
  return 0;
}
