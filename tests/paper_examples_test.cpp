// Regression guards for the paper's running example: Figure 1's schedule
// collapse and Figure 2's cut-set properties must keep reproducing. These
// are the headline claims — if a refactor breaks them, this file fails.

#include <gtest/gtest.h>

#include "../bench/fig_common.h"
#include "cut/cut.h"
#include "cut/dep.h"
#include "flow/flow.h"

namespace lamp::bench {
namespace {

workloads::Benchmark figureBenchmark() {
  const FigKernel k = figureKernel();
  workloads::Benchmark bm;
  bm.name = "fig1";
  bm.domain = "Kernel";
  bm.graph = k.graph;
  bm.makeInputs = [](std::uint64_t iter, std::uint32_t seed) {
    return sim::InputFrame{{0, (iter * 3 + seed) & 3},
                           {1, (iter * 7 + seed * 5) & 3}};
  };
  return bm;
}

TEST(Figure1Test, AdditiveScheduleNeedsThreeStages) {
  flow::FlowOptions opts;
  opts.tcpNs = kFigureTcp;
  opts.delays = figureDelays();
  const auto r = flow::runFlow(figureBenchmark(), flow::Method::HlsTool, opts);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.area.stages, 3);   // paper: 3 pipeline stages
  EXPECT_GT(r.area.ffs, 0);
  EXPECT_TRUE(r.functionallyVerified);
}

TEST(Figure1Test, MappingAwareScheduleCollapsesToOneStage) {
  flow::FlowOptions opts;
  opts.tcpNs = kFigureTcp;
  opts.delays = figureDelays();
  opts.solverTimeLimitSeconds = 20;
  const auto r = flow::runFlow(figureBenchmark(), flow::Method::MilpMap, opts);
  ASSERT_TRUE(r.success) << r.error;
  EXPECT_EQ(r.area.stages, 1);   // paper: 1 stage
  EXPECT_EQ(r.area.luts, 2);     // paper: "2 LUTs" (the kernel is 2 bits)
  EXPECT_TRUE(r.functionallyVerified);
  // Only the recurrence register remains.
  EXPECT_LE(r.area.ffs, 2);
}

TEST(Figure2Test, SignTestCollapsesThroughXor) {
  const FigKernel k = figureKernel();
  const auto deps = cut::depBits(k.graph, k.c, 0);
  ASSERT_EQ(deps.size(), 1u);          // C depends on one bit only
  const auto db = cut::enumerateCuts(k.graph);
  // C owns a cut that reaches through B to primary inputs.
  bool reachesThroughB = false;
  for (const cut::Cut& c : db.at(k.c).cuts) {
    if (!c.containsElement(k.b, 0) && c.kind == cut::CutKind::Lut &&
        !c.elements.empty()) {
      reachesThroughB = true;
      EXPECT_LE(c.maxSupport, 2);
    }
  }
  EXPECT_TRUE(reachesThroughB);
}

TEST(Figure2Test, LoopCarriedCutsCarryPreviousIterationElements) {
  const FigKernel k = figureKernel();
  const auto db = cut::enumerateCuts(k.graph);
  // Every cut of D (select) references E from the previous iteration.
  ASSERT_FALSE(db.at(k.d).cuts.empty());
  for (const cut::Cut& c : db.at(k.d).cuts) {
    EXPECT_TRUE(c.containsElement(k.e, 1)) << c.str(k.graph);
  }
  // The whole-kernel cut of E exists: boundary {s, t, E@-1}, K-feasible.
  bool wholeKernel = false;
  for (const cut::Cut& c : db.at(k.e).cuts) {
    if (c.containsElement(k.e, 1) && c.elements.size() == 3 &&
        c.maxSupport <= 4) {
      wholeKernel = true;
    }
  }
  EXPECT_TRUE(wholeKernel);
}

TEST(Figure2Test, ShiftedInConstantBitHasNoDependence) {
  const FigKernel k = figureKernel();
  // A = s >> 1 at width 2: A[1] is a shifted-in zero.
  EXPECT_EQ(cut::depBits(k.graph, k.a, 0).size(), 1u);
  EXPECT_TRUE(cut::depBits(k.graph, k.a, 1).empty());
}

}  // namespace
}  // namespace lamp::bench
