// Property tests for the incremental (dual-simplex hot restart) LP path:
// every hot re-solve must agree with a cold from-scratch solve on status
// and objective, across randomized bound-change sequences — exactly the
// access pattern branch & bound generates.

#include <gtest/gtest.h>

#include <random>

#include "lp/simplex.h"

namespace lamp::lp {
namespace {

Model randomModel(std::mt19937& rng, int n, int rows) {
  std::uniform_real_distribution<double> cDist(-3.0, 3.0);
  Model m;
  for (int j = 0; j < n; ++j) m.addContinuous(0.0, 1.0);
  std::vector<double> interior(n, 0.4);
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = cDist(rng);
      e.add(j, a);
      lhs += a * interior[j];
    }
    m.addConstraint(e, Sense::Le, lhs + 0.3);
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add(j, cDist(rng));
  m.setObjective(obj);
  return m;
}

class IncrementalLpTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(IncrementalLpTest, HotResolvesMatchColdSolves) {
  std::mt19937 rng(GetParam() * 7919u + 13);
  std::uniform_int_distribution<int> nDist(4, 12), mDist(2, 8);
  const int n = nDist(rng), rows = mDist(rng);
  const Model m = randomModel(rng, n, rows);

  IncrementalSimplex inc(m);
  SimplexSolver cold(m);

  std::vector<double> lb(n), ub(n);
  for (int j = 0; j < n; ++j) {
    lb[j] = 0.0;
    ub[j] = 1.0;
  }

  std::uniform_int_distribution<int> varDist(0, n - 1);
  std::uniform_int_distribution<int> moveDist(0, 3);
  for (int step = 0; step < 30; ++step) {
    // Random branch-like bound change: fix to 0, fix to 1, or relax.
    const int v = varDist(rng);
    switch (moveDist(rng)) {
      case 0: ub[v] = 0.0; break;
      case 1: lb[v] = 1.0; break;
      case 2: lb[v] = 0.0; ub[v] = 1.0; break;
      default: ub[v] = 0.5; break;
    }
    if (lb[v] > ub[v]) lb[v] = ub[v];

    const SimplexResult hot = inc.solve(lb, ub);
    const SimplexResult ref = cold.solve(lb, ub);
    ASSERT_EQ(hot.status, ref.status)
        << "seed " << GetParam() << " step " << step;
    if (hot.status == SolveStatus::Optimal) {
      EXPECT_NEAR(hot.objective, ref.objective, 1e-5)
          << "seed " << GetParam() << " step " << step;
      EXPECT_TRUE(m.checkFeasible(hot.x, 1e-5).empty());
      // Solution respects the overridden bounds too.
      for (int j = 0; j < n; ++j) {
        EXPECT_GE(hot.x[j], lb[j] - 1e-6);
        EXPECT_LE(hot.x[j], ub[j] + 1e-6);
      }
    }
  }
  // The whole point: hot solves should rarely fall back to cold ones.
  EXPECT_LE(inc.coldSolves(), 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalLpTest, ::testing::Range(1u, 26u));

TEST(IncrementalLpTest, EqualityModelsSurviveRebound) {
  // Equality rows exercise the artificial-variable path of the cold solve
  // and the fixed slack bounds of the dual path.
  Model m;
  const Var x = m.addContinuous(0, 4);
  const Var y = m.addContinuous(0, 4);
  const Var z = m.addContinuous(0, 4);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0).add(z, 1.0), Sense::Eq,
                  4.0);
  m.setObjective(LinExpr::term(x, 1.0).add(y, 2.0).add(z, 3.0));
  IncrementalSimplex inc(m);
  std::vector<double> lb{0, 0, 0}, ub{4, 4, 4};
  auto r = inc.solve(lb, ub);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);  // all mass on x

  ub[0] = 1.0;  // force spill to y
  r = inc.solve(lb, ub);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.0 + 2.0 * 3.0, 1e-7);

  ub[1] = 0.0;  // force spill to z
  r = inc.solve(lb, ub);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.0 + 3.0 * 3.0, 1e-7);

  lb[0] = 5.0;  // conflicting bounds
  r = inc.solve(lb, ub);
  EXPECT_EQ(r.status, SolveStatus::Infeasible);

  lb[0] = 0.0;
  ub[0] = 4.0;
  ub[1] = 4.0;  // fully relax again
  r = inc.solve(lb, ub);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 4.0, 1e-7);
}

TEST(IncrementalLpTest, InfeasibleThenFeasibleStaysHot) {
  Model m;
  const Var x = m.addContinuous(0, 1);
  const Var y = m.addContinuous(0, 1);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Ge, 1.0);
  m.setObjective(LinExpr::term(x, 1.0).add(y, 1.0));
  IncrementalSimplex inc(m);
  std::vector<double> lb{0, 0}, ub{1, 1};
  ASSERT_EQ(inc.solve(lb, ub).status, SolveStatus::Optimal);
  ub[0] = 0.0;
  ub[1] = 0.0;  // row 1 cannot be met
  EXPECT_EQ(inc.solve(lb, ub).status, SolveStatus::Infeasible);
  ub[1] = 1.0;
  const auto r = inc.solve(lb, ub);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[1], 1.0, 1e-7);
  EXPECT_EQ(inc.coldSolves(), 1);  // only the very first solve was cold
}

}  // namespace
}  // namespace lamp::lp
