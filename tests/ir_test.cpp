// Unit tests for the word-level CDFG IR: builder, verifier, topological
// order, compaction, serialization round trips.

#include <gtest/gtest.h>

#include <sstream>

#include "ir/builder.h"
#include "ir/passes.h"

namespace lamp::ir {
namespace {

Graph simpleXorChain() {
  GraphBuilder b("chain");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value x = b.bxor(a, c, "x");
  Value y = b.band(x, a, "y");
  b.output(y, "out");
  return b.take();
}

TEST(GraphTest, BuildAndQuery) {
  const Graph g = simpleXorChain();
  EXPECT_EQ(g.size(), 5u);
  EXPECT_EQ(g.inputs().size(), 2u);
  EXPECT_EQ(g.outputs().size(), 1u);
  EXPECT_EQ(g.node(2).kind, OpKind::Xor);
  EXPECT_EQ(g.node(2).width, 8);
  EXPECT_EQ(opKindName(g.node(2).kind), "xor");
}

TEST(GraphTest, FanoutsReflectOperands) {
  const Graph g = simpleXorChain();
  const auto& fo = g.fanouts();
  // Input a feeds the xor (operand 0) and the and (operand 1).
  ASSERT_EQ(fo[0].size(), 2u);
  EXPECT_EQ(fo[0][0].dst, 2u);
  EXPECT_EQ(fo[0][1].dst, 3u);
  EXPECT_EQ(fo[0][1].operandIndex, 1u);
}

TEST(GraphTest, OpClassification) {
  EXPECT_EQ(opClass(OpKind::Xor), OpClass::Bitwise);
  EXPECT_EQ(opClass(OpKind::Shl), OpClass::Shift);
  EXPECT_EQ(opClass(OpKind::Slice), OpClass::Shift);
  EXPECT_EQ(opClass(OpKind::Add), OpClass::Arith);
  EXPECT_EQ(opClass(OpKind::Ge), OpClass::Arith);
  EXPECT_EQ(opClass(OpKind::Mux), OpClass::Mux);
  EXPECT_EQ(opClass(OpKind::Load), OpClass::BlackBox);
  EXPECT_TRUE(isLutMappable(OpKind::Xor));
  EXPECT_FALSE(isLutMappable(OpKind::Mul));
  EXPECT_FALSE(isLutMappable(OpKind::Const));
  EXPECT_TRUE(isBlackBox(OpKind::Store));
}

TEST(GraphTest, ParseOpKindRoundTrip) {
  for (int k = 0; k <= static_cast<int>(OpKind::Store); ++k) {
    const OpKind kind = static_cast<OpKind>(k);
    OpKind parsed;
    ASSERT_TRUE(parseOpKind(opKindName(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  OpKind dummy;
  EXPECT_FALSE(parseOpKind("bogus", dummy));
}

TEST(VerifyTest, AcceptsWellFormed) {
  const Graph g = simpleXorChain();
  EXPECT_EQ(verify(g), std::nullopt);
}

TEST(VerifyTest, RejectsWidthMismatch) {
  GraphBuilder b("bad");
  Value a = b.input("a", 8);
  Value c = b.input("c", 4);
  // Bypass the builder's assert by editing the graph directly.
  Node n;
  n.kind = OpKind::Xor;
  n.width = 8;
  n.operands = {Edge{a.id, 0}, Edge{c.id, 0}};
  b.graph().add(std::move(n));
  EXPECT_NE(verify(b.graph()), std::nullopt);
}

TEST(VerifyTest, RejectsCombinationalCycle) {
  Graph g("cyc");
  Node a;
  a.kind = OpKind::And;
  a.width = 1;
  a.operands = {Edge{1, 0}, Edge{1, 0}};
  g.add(a);
  Node bnode;
  bnode.kind = OpKind::Or;
  bnode.width = 1;
  bnode.operands = {Edge{0, 0}, Edge{0, 0}};
  g.add(bnode);
  const auto diag = verify(g);
  ASSERT_NE(diag, std::nullopt);
  EXPECT_NE(diag->find("cycle"), std::string::npos);
}

TEST(VerifyTest, AcceptsLoopCarriedCycle) {
  GraphBuilder b("acc");
  Value x = b.input("x", 16);
  Value ph = b.placeholder(16, "acc");
  Value next = b.bxor(x, Value{ph.id, 1}, "next");
  b.bindPlaceholder(ph, next);
  b.output(next, "out");
  EXPECT_EQ(verify(b.graph()), std::nullopt);
  // The loop-carried self-dependence survived placeholder binding.
  const Node& n = b.graph().node(next.id);
  EXPECT_EQ(n.operands[1].src, next.id);
  EXPECT_EQ(n.operands[1].dist, 1u);
}

TEST(VerifyTest, RejectsShiftOutOfRange) {
  GraphBuilder b("s");
  Value a = b.input("a", 8);
  Node n;
  n.kind = OpKind::Shr;
  n.width = 8;
  n.attr0 = 9;
  n.operands = {Edge{a.id, 0}};
  b.graph().add(std::move(n));
  EXPECT_NE(verify(b.graph()), std::nullopt);
}

TEST(VerifyTest, RejectsUnboundPlaceholderUse) {
  GraphBuilder b("p");
  Value ph = b.placeholder(8, "state");
  Value y = b.bnot(Value{ph.id, 1});
  b.output(y, "out");
  EXPECT_NE(verify(b.graph()), std::nullopt);
}

TEST(TopoTest, RespectsDistZeroEdges) {
  const Graph g = simpleXorChain();
  const auto order = topologicalOrder(g);
  ASSERT_EQ(order.size(), g.size());
  std::vector<std::size_t> posOf(g.size());
  for (std::size_t i = 0; i < order.size(); ++i) posOf[order[i]] = i;
  for (NodeId id = 0; id < g.size(); ++id) {
    for (const Edge& e : g.node(id).operands) {
      if (e.dist == 0) {
        EXPECT_LT(posOf[e.src], posOf[id]);
      }
    }
  }
}

TEST(TopoTest, HandlesLoopCarriedBackEdge) {
  GraphBuilder b("acc");
  Value x = b.input("x", 16);
  Value ph = b.placeholder(16, "acc");
  Value next = b.bxor(x, Value{ph.id, 1});
  b.bindPlaceholder(ph, next);
  b.output(next, "out");
  const auto order = topologicalOrder(b.graph());
  EXPECT_EQ(order.size(), b.graph().size());
}

TEST(CompactTest, DropsDeadNodes) {
  GraphBuilder b("dead");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  b.bxor(a, c, "unused");
  Value used = b.band(a, c, "used");
  b.output(used, "out");
  std::vector<NodeId> remap;
  const Graph g = compact(b.graph(), &remap);
  EXPECT_EQ(g.size(), 4u);  // 2 inputs + and + output
  EXPECT_EQ(remap[2], kNoNode);
  EXPECT_EQ(verify(g), std::nullopt);
}

TEST(CompactTest, RemovesBoundPlaceholders) {
  GraphBuilder b("acc");
  Value x = b.input("x", 16);
  Value ph = b.placeholder(16, "acc");
  Value next = b.bxor(x, Value{ph.id, 1});
  b.bindPlaceholder(ph, next);
  b.output(next, "out");
  const Graph g = compact(b.graph());
  EXPECT_EQ(g.size(), 3u);  // input, xor, output
  EXPECT_EQ(verify(g), std::nullopt);
}

TEST(DepthTest, CountsLevels) {
  GraphBuilder b("d");
  Value a = b.input("a", 4);
  Value v = a;
  for (int i = 0; i < 5; ++i) v = b.bnot(v);
  b.output(v, "o");
  EXPECT_EQ(combinationalDepth(b.graph()), 6u);  // 5 nots + output marker
}

TEST(SerializeTest, RoundTrip) {
  GraphBuilder b("rt");
  Value a = b.input("a", 32, true);
  Value c = b.constant(0x1234, 32);
  Value s = b.ashr(a, 3, "shift");
  Value m = b.mux(b.lt(a, c, true), s, c, "sel \"quoted\"");
  Value ph = b.placeholder(32, "st");
  Value nxt = b.add(m, Value{ph.id, 2});
  b.bindPlaceholder(ph, nxt);
  b.output(nxt, "out");
  const Graph g = compact(b.graph());

  std::stringstream ss;
  writeText(ss, g);
  std::string error;
  const auto back = readText(ss, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), g.size());
  EXPECT_EQ(back->name(), g.name());
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& x = g.node(id);
    const Node& y = back->node(id);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.width, y.width);
    EXPECT_EQ(x.isSigned, y.isSigned);
    EXPECT_EQ(x.attr0, y.attr0);
    EXPECT_EQ(x.constValue, y.constValue);
    EXPECT_EQ(x.operands, y.operands);
    EXPECT_EQ(x.name, y.name);
  }
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream ss("not a graph");
  std::string error;
  EXPECT_FALSE(readText(ss, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(SerializeTest, RejectsTruncated) {
  GraphBuilder b("t");
  b.output(b.input("a", 4), "o");
  std::stringstream ss;
  writeText(ss, b.graph());
  std::string text = ss.str();
  text.resize(text.size() - 5);  // chop "end\n"
  std::stringstream in(text);
  EXPECT_FALSE(readText(in).has_value());
}

TEST(DotTest, EmitsNodesAndEdges) {
  std::stringstream ss;
  writeDot(ss, simpleXorChain());
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("xor"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(BuilderTest, ConstantMasksToWidth) {
  GraphBuilder b("c");
  Value c = b.constant(0xFFFF, 8);
  EXPECT_EQ(b.graph().node(c.id).constValue, 0xFFu);
  Value c64 = b.constant(~0ull, 64);
  EXPECT_EQ(b.graph().node(c64.id).constValue, ~0ull);
}

TEST(BuilderTest, CompareProducesOneBit) {
  GraphBuilder b("cmp");
  Value a = b.input("a", 32);
  Value c = b.input("c", 32);
  EXPECT_EQ(b.width(b.lt(a, c, false)), 1);
  EXPECT_EQ(b.width(b.eq(a, c)), 1);
}

TEST(BuilderTest, ConcatAndSliceWidths) {
  GraphBuilder b("cs");
  Value a = b.input("a", 8);
  Value c = b.input("c", 24);
  Value cc = b.concat(a, c);
  EXPECT_EQ(b.width(cc), 32);
  EXPECT_EQ(b.width(b.slice(cc, 4, 9)), 9);
  EXPECT_EQ(b.width(b.bit(cc, 31)), 1);
}

}  // namespace
}  // namespace lamp::ir
