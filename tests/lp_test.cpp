// Unit and property tests for the LP layer: model building, the bounded
// revised simplex (hand instances with known optima, degenerate cases,
// randomized feasibility/optimality sweeps).

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "lp/model.h"
#include "lp/simplex.h"

namespace lamp::lp {
namespace {

TEST(LinExprTest, NormalizeMergesAndDropsZeros) {
  LinExpr e;
  e.add(3, 2.0).add(1, 1.0).add(3, -2.0).add(0, 4.0);
  e.normalize();
  ASSERT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.terms()[0].var, 0);
  EXPECT_DOUBLE_EQ(e.terms()[0].coef, 4.0);
  EXPECT_EQ(e.terms()[1].var, 1);
}

TEST(LinExprTest, Evaluate) {
  LinExpr e;
  e.add(0, 2.0).add(1, -1.0).addConstant(5.0);
  EXPECT_DOUBLE_EQ(e.evaluate({3.0, 4.0}), 2 * 3 - 4 + 5);
}

TEST(ModelTest, ConstantFoldsIntoRhs) {
  Model m;
  const Var x = m.addContinuous(0, 10);
  LinExpr e = LinExpr::term(x, 1.0);
  e.addConstant(3.0);
  m.addConstraint(e, Sense::Le, 5.0);
  EXPECT_DOUBLE_EQ(m.constraints()[0].rhs, 2.0);
}

TEST(ModelTest, CheckFeasibleCatchesEverything) {
  Model m;
  const Var x = m.addVar(0, 4, VarType::Integer, "x");
  const Var y = m.addContinuous(0, 4, "y");
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 5.0, "cap");
  EXPECT_TRUE(m.checkFeasible({2.0, 3.0}).empty());
  EXPECT_NE(m.checkFeasible({2.5, 1.0}), "");   // integrality
  EXPECT_NE(m.checkFeasible({5.0, 0.0}), "");   // bound
  EXPECT_NE(m.checkFeasible({4.0, 4.0}), "");   // row
}

TEST(ModelTest, WriteLpProducesText) {
  Model m("demo");
  const Var x = m.addBinary("x");
  const Var y = m.addContinuous(0, 2, "y");
  m.addConstraint(LinExpr::term(x, 1.0).add(y, -2.0), Sense::Ge, -1.0, "r");
  m.setObjective(LinExpr::term(x, 1.0).add(y, 1.0));
  std::ostringstream os;
  m.writeLp(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Minimize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
}

// --- simplex on hand instances -------------------------------------------

TEST(SimplexTest, TwoVarKnownOptimum) {
  // min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0. Opt at (2,2): -6.
  Model m;
  const Var x = m.addContinuous(0, 3);
  const Var y = m.addContinuous(0, 2);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 4.0);
  m.setObjective(LinExpr::term(x, -1.0).add(y, -2.0));
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, -6.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 2.0, 1e-7);
}

TEST(SimplexTest, EqualityConstraints) {
  // min x + y  s.t. x + 2y = 4, x - y = 1  ->  x = 2, y = 1.
  Model m;
  const Var x = m.addContinuous(-10, 10);
  const Var y = m.addContinuous(-10, 10);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 2.0), Sense::Eq, 4.0);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, -1.0), Sense::Eq, 1.0);
  m.setObjective(LinExpr::term(x, 1.0).add(y, 1.0));
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
  EXPECT_NEAR(r.x[1], 1.0, 1e-6);
}

TEST(SimplexTest, GreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 5, x >= 1, y >= 0, x,y <= 10. Opt (5,0): 10.
  Model m;
  const Var x = m.addContinuous(1, 10);
  const Var y = m.addContinuous(0, 10);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Ge, 5.0);
  m.setObjective(LinExpr::term(x, 2.0).add(y, 3.0));
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-7);
}

TEST(SimplexTest, DetectsInfeasible) {
  Model m;
  const Var x = m.addContinuous(0, 1);
  m.addConstraint(LinExpr::term(x, 1.0), Sense::Ge, 2.0);
  const auto r = SimplexSolver(m).solve();
  EXPECT_EQ(r.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  Model m;
  const Var x = m.addContinuous(0, 10);
  const Var y = m.addContinuous(0, 10);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Eq, 3.0);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Eq, 5.0);
  const auto r = SimplexSolver(m).solve();
  EXPECT_EQ(r.status, SolveStatus::Infeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Model m;
  const Var x = m.addContinuous(0, kInf);
  m.addConstraint(LinExpr::term(x, -1.0), Sense::Le, 0.0);
  m.setObjective(LinExpr::term(x, -1.0));
  const auto r = SimplexSolver(m).solve();
  EXPECT_EQ(r.status, SolveStatus::Unbounded);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x s.t. x + y >= -3, y <= 1, x in [-5,5] -> x = -4 when y = 1.
  Model m;
  const Var x = m.addContinuous(-5, 5);
  const Var y = m.addContinuous(-5, 1);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Ge, -3.0);
  m.setObjective(LinExpr::term(x, 1.0));
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-7);
}

TEST(SimplexTest, FixedVariables) {
  Model m;
  const Var x = m.addContinuous(2, 2);
  const Var y = m.addContinuous(0, 10);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 5.0);
  m.setObjective(LinExpr::term(y, -1.0));
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
  EXPECT_NEAR(r.x[1], 3.0, 1e-7);
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Classic degeneracy: multiple constraints meet at the optimum.
  Model m;
  const Var x = m.addContinuous(0, kInf);
  const Var y = m.addContinuous(0, kInf);
  m.addConstraint(LinExpr::term(x, 1.0).add(y, 1.0), Sense::Le, 1.0);
  m.addConstraint(LinExpr::term(x, 1.0), Sense::Le, 1.0);
  m.addConstraint(LinExpr::term(y, 1.0), Sense::Le, 1.0);
  m.addConstraint(LinExpr::term(x, 2.0).add(y, 1.0), Sense::Le, 2.0);
  m.setObjective(LinExpr::term(x, -1.0).add(y, -1.0));
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-7);
}

TEST(SimplexTest, ObjectiveConstantCarried) {
  Model m;
  const Var x = m.addContinuous(0, 1);
  LinExpr obj = LinExpr::term(x, 1.0);
  obj.addConstant(10.0);
  m.setObjective(obj);
  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 10.0, 1e-9);
}

TEST(SimplexTest, BoundOverridesRestrict) {
  Model m;
  const Var x = m.addContinuous(0, 10);
  m.setObjective(LinExpr::term(x, -1.0));
  SimplexSolver s(m);
  const auto r1 = s.solve();
  ASSERT_EQ(r1.status, SolveStatus::Optimal);
  EXPECT_NEAR(r1.x[0], 10.0, 1e-7);
  const auto r2 = s.solve({0.0}, {4.0});
  ASSERT_EQ(r2.status, SolveStatus::Optimal);
  EXPECT_NEAR(r2.x[0], 4.0, 1e-7);
  const auto r3 = s.solve({6.0}, {4.0});
  EXPECT_EQ(r3.status, SolveStatus::Infeasible);
}

// --- randomized property sweeps -------------------------------------------

struct RandomLpCase {
  unsigned seed;
};

class SimplexRandomTest : public ::testing::TestWithParam<unsigned> {};

/// Random bounded LPs: the solver's answer must (a) be feasible and
/// (b) weakly dominate a cloud of random feasible points built by
/// constraint-respecting rejection sampling.
TEST_P(SimplexRandomTest, OptimumDominatesRandomFeasiblePoints) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> nDist(2, 8), mDist(1, 6);
  std::uniform_real_distribution<double> cDist(-3.0, 3.0);

  const int n = nDist(rng), rows = mDist(rng);
  Model m;
  for (int j = 0; j < n; ++j) m.addContinuous(-2.0, 2.0);

  // Rows are built around a designated interior point so the LP is feasible.
  std::vector<double> interior(n);
  for (double& v : interior) v = cDist(rng) / 3.0;

  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    double lhsAtInterior = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = cDist(rng);
      e.add(j, a);
      lhsAtInterior += a * interior[j];
    }
    m.addConstraint(e, Sense::Le, lhsAtInterior + 0.5);
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add(j, cDist(rng));
  m.setObjective(obj);

  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal) << "seed " << GetParam();
  EXPECT_TRUE(m.checkFeasible(r.x, 1e-5).empty())
      << m.checkFeasible(r.x, 1e-5);

  // Sample feasible points; none may beat the reported optimum.
  std::uniform_real_distribution<double> xDist(-2.0, 2.0);
  int found = 0;
  for (int trial = 0; trial < 3000 && found < 50; ++trial) {
    std::vector<double> x(n);
    for (double& v : x) v = xDist(rng);
    if (!m.checkFeasible(x, 1e-9).empty()) continue;
    ++found;
    double val = 0.0;
    for (const Term& t : m.objective().terms()) val += t.coef * x[t.var];
    EXPECT_GE(val, r.objective - 1e-6) << "seed " << GetParam();
  }
  EXPECT_GT(found, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomTest,
                         ::testing::Range(1u, 41u));

/// Equality-constrained random LPs validated against the interior point.
class SimplexEqualityRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexEqualityRandomTest, FeasibleAndDominatesInteriorPoint) {
  std::mt19937 rng(GetParam() * 7919);
  std::uniform_int_distribution<int> nDist(3, 8);
  std::uniform_real_distribution<double> cDist(-2.0, 2.0);
  const int n = nDist(rng);
  const int rows = std::max(1, n / 2 - 1);

  Model m;
  for (int j = 0; j < n; ++j) m.addContinuous(-4.0, 4.0);
  std::vector<double> point(n);
  for (double& v : point) v = cDist(rng);
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    double lhs = 0.0;
    for (int j = 0; j < n; ++j) {
      const double a = cDist(rng);
      e.add(j, a);
      lhs += a * point[j];
    }
    m.addConstraint(e, Sense::Eq, lhs);
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj.add(j, cDist(rng));
  m.setObjective(obj);

  const auto r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, SolveStatus::Optimal) << "seed " << GetParam();
  EXPECT_TRUE(m.checkFeasible(r.x, 1e-5).empty());
  double objAtPoint = 0.0;
  for (const Term& t : m.objective().terms()) {
    objAtPoint += t.coef * point[t.var];
  }
  EXPECT_LE(r.objective, objAtPoint + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexEqualityRandomTest,
                         ::testing::Range(1u, 31u));

}  // namespace
}  // namespace lamp::lp
