// Integration tests: the three experimental flows end to end on real
// benchmarks, checking validity, functional equivalence, and the paper's
// directional claims (MILP-map saves FFs over both baselines).

#include <gtest/gtest.h>

#include "flow/flow.h"
#include "report/table.h"

namespace lamp::flow {
namespace {

using workloads::Benchmark;
using workloads::Scale;

FlowOptions quick() {
  FlowOptions o;
  o.solverTimeLimitSeconds = 30.0;
  return o;
}

TEST(FlowTest, GfmulAllMethodsRunAndVerify) {
  const Benchmark bm = workloads::makeGfmul(Scale::Default);
  const BenchmarkResults r = runAllMethods(bm, quick());
  for (const FlowResult* f : {&r.hls, &r.milpBase, &r.milpMap}) {
    ASSERT_TRUE(f->success) << methodName(f->method) << ": " << f->error;
    EXPECT_TRUE(f->functionallyVerified) << methodName(f->method);
  }
  // Paper: GFMUL collapses to a single combinational stage, 0 FFs.
  EXPECT_GT(r.hls.area.ffs, 0);
  EXPECT_EQ(r.milpMap.area.ffs, 0);
  EXPECT_EQ(r.milpMap.area.stages, 1);
  EXPECT_LE(r.milpMap.area.luts, r.hls.area.luts);
}

TEST(FlowTest, XorrCollapsesToCombinational) {
  const Benchmark bm = workloads::makeXorr(Scale::Default);
  const BenchmarkResults r = runAllMethods(bm, quick());
  ASSERT_TRUE(r.hls.success) << r.hls.error;
  ASSERT_TRUE(r.milpBase.success) << r.milpBase.error;
  ASSERT_TRUE(r.milpMap.success) << r.milpMap.error;
  // Paper Section 4.1: MILP-base generates an identical schedule to the
  // HLS tool on XORR (same stage count, same FFs); MILP-map removes all
  // pipeline registers.
  EXPECT_EQ(r.milpBase.area.stages, r.hls.area.stages);
  EXPECT_GT(r.hls.area.ffs, 0);
  EXPECT_EQ(r.milpMap.area.ffs, 0);
  EXPECT_EQ(r.milpMap.area.stages, 1);
}

TEST(FlowTest, RsLoopCarriedFlowVerifies) {
  const Benchmark bm = workloads::makeRs(Scale::Default);
  const BenchmarkResults r = runAllMethods(bm, quick());
  for (const FlowResult* f : {&r.hls, &r.milpBase, &r.milpMap}) {
    ASSERT_TRUE(f->success) << methodName(f->method) << ": " << f->error;
    EXPECT_TRUE(f->functionallyVerified);
  }
  // The recurrence registers (3 syndromes x 8 bits) can never vanish.
  EXPECT_GE(r.milpMap.area.ffs, 3 * 8);
  EXPECT_LE(r.milpMap.area.ffs, r.hls.area.ffs);
}

TEST(FlowTest, MtWithBlackBoxesVerifies) {
  const Benchmark bm = workloads::makeMt(Scale::Default);
  const BenchmarkResults r = runAllMethods(bm, quick());
  for (const FlowResult* f : {&r.hls, &r.milpBase, &r.milpMap}) {
    ASSERT_TRUE(f->success) << methodName(f->method) << ": " << f->error;
    EXPECT_TRUE(f->functionallyVerified);
  }
  EXPECT_LE(r.milpMap.area.ffs, r.hls.area.ffs);
}

TEST(FlowTest, MilpMapNeverUsesMoreRegistersThanMilpBase) {
  for (const auto maker :
       {workloads::makeGfmul, workloads::makeXorr, workloads::makeGsm}) {
    const Benchmark bm = maker(Scale::Default);
    const BenchmarkResults r = runAllMethods(bm, quick());
    ASSERT_TRUE(r.milpBase.success) << bm.name << ": " << r.milpBase.error;
    ASSERT_TRUE(r.milpMap.success) << bm.name << ": " << r.milpMap.error;
    // Mapping awareness strictly enlarges the MILP's feasible space, so
    // with the solver run to optimality the objective cannot be worse.
    if (r.milpBase.status == lp::SolveStatus::Optimal &&
        r.milpMap.status == lp::SolveStatus::Optimal) {
      EXPECT_LE(r.milpMap.objective, r.milpBase.objective + 1e-6) << bm.name;
    }
  }
}

TEST(ReportTest, TableFormatsAndCsv) {
  report::Table t({"Design", "CP(ns)", "LUT"});
  t.addRow({"CLZ", "5.43", "171"});
  t.addRule();
  t.addRow({"XORR", "5.55", "3394"});
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("Design"), std::string::npos);
  EXPECT_NE(text.find("XORR"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  std::ostringstream csv;
  t.printCsv(csv);
  EXPECT_NE(csv.str().find("CLZ,5.43,171"), std::string::npos);
}

TEST(ReportTest, PctDelta) {
  EXPECT_EQ(report::pctDelta(90, 100), "(-10.0%)");
  EXPECT_EQ(report::pctDelta(115, 100), "(+15.0%)");
  EXPECT_EQ(report::pctDelta(0, 0), "(+0.0%)");
  EXPECT_EQ(report::pctDelta(5, 0), "(  -  )");
}

}  // namespace
}  // namespace lamp::flow
