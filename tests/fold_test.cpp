// Tests for constant folding + identity forwarding: specific rewrites,
// loop-carried safety (registers reset to 0, so back-edge operands are
// never constants), and randomized semantic-equivalence sweeps against
// the interpreter.

#include <gtest/gtest.h>

#include <random>

#include "ir/builder.h"
#include "ir/eval.h"
#include "ir/passes.h"
#include "sim/interp.h"

namespace lamp::ir {
namespace {

TEST(FoldTest, FoldsPureConstantExpressions) {
  GraphBuilder b("f");
  Value a = b.constant(0x0F, 8);
  Value c = b.constant(0x35, 8);
  Value x = b.bxor(a, c);
  Value y = b.add(x, b.constant(1, 8));
  b.output(y, "o");
  FoldStats st;
  const Graph g = foldConstants(b.graph(), &st);
  EXPECT_EQ(st.folded, 2);
  // input-less graph: const + output only.
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.node(0).kind, OpKind::Const);
  EXPECT_EQ(g.node(0).constValue, ((0x0Fu ^ 0x35u) + 1) & 0xFF);
}

TEST(FoldTest, ForwardsNeutralOps) {
  GraphBuilder b("fwd");
  Value a = b.input("a", 8);
  Value v = b.bor(a, b.constant(0, 8));
  v = b.band(v, b.constant(0xFF, 8));
  v = b.bxor(v, b.constant(0, 8));
  v = b.shl(v, 0);
  v = b.add(v, b.constant(0, 8));
  b.output(v, "o");
  FoldStats st;
  const Graph g = foldConstants(b.graph(), &st);
  EXPECT_EQ(st.forwarded, 5);
  EXPECT_EQ(g.size(), 2u);  // input + output
  EXPECT_EQ(g.node(g.outputs()[0]).operands[0].src, g.inputs()[0]);
}

TEST(FoldTest, MuxWithConstantSelectPicksBranch) {
  GraphBuilder b("mux");
  Value a = b.input("a", 8);
  Value c = b.input("c", 8);
  Value m1 = b.mux(b.constant(1, 1), a, c);
  Value m0 = b.mux(b.constant(0, 1), a, c);
  b.output(m1, "one");
  b.output(m0, "zero");
  const Graph g = foldConstants(b.graph());
  const auto outs = g.outputs();
  EXPECT_EQ(g.node(outs[0]).operands[0].src, g.inputs()[0]);
  EXPECT_EQ(g.node(outs[1]).operands[0].src, g.inputs()[1]);
}

TEST(FoldTest, NeverFoldsThroughLoopCarriedEdges) {
  // next = c ^ next@1 with c constant: next is NOT a constant (it reads
  // the reset value 0 in iteration 0, then toggles).
  GraphBuilder b("loop");
  Value c = b.constant(0xAA, 8);
  Value ph = b.placeholder(8, "st");
  Value next = b.bxor(c, Value{ph.id, 1}, "next");
  b.bindPlaceholder(ph, next);
  b.output(next, "o");
  const Graph g = foldConstants(ir::compact(b.graph()));
  bool hasXor = false;
  for (NodeId v = 0; v < g.size(); ++v) {
    hasXor |= g.node(v).kind == OpKind::Xor;
  }
  EXPECT_TRUE(hasXor);

  sim::Interpreter interp(g);
  const auto out = g.outputs()[0];
  EXPECT_EQ(interp.step({}).at(out), 0xAAu);
  EXPECT_EQ(interp.step({}).at(out), 0x00u);
  EXPECT_EQ(interp.step({}).at(out), 0xAAu);
}

TEST(FoldTest, ForwardsIdentityAcrossLoopEdgeSafely) {
  // v = (x@1 | 0): pure identity of a registered value; forwarding must
  // compose the distance onto v's consumers.
  GraphBuilder b("loopfwd");
  Value x = b.input("x", 8);
  Value ph = b.placeholder(8, "st");
  Value idPrev = b.bor(Value{ph.id, 1}, b.constant(0, 8), "idprev");
  Value next = b.bxor(x, idPrev, "next");
  b.bindPlaceholder(ph, next);
  b.output(next, "o");
  const Graph before = ir::compact(b.graph());
  const Graph after = foldConstants(before);
  EXPECT_LT(after.size(), before.size());

  sim::Interpreter ib(before), ia(after);
  for (std::uint64_t k = 0; k < 6; ++k) {
    const sim::InputFrame f{{before.inputs()[0], k * 77 + 5}};
    EXPECT_EQ(ib.step(f).begin()->second, ia.step(f).begin()->second);
  }
}

TEST(FoldTest, MutualLoopIdentitiesDoNotCycle) {
  // a = b@1 | 0 ; b = a@1 | 0 : forwarding both would chase a cycle.
  Graph g("cyc");
  Node c0;
  c0.kind = OpKind::Const;
  c0.width = 4;
  g.add(c0);
  Node a;
  a.kind = OpKind::Or;
  a.width = 4;
  a.operands = {Edge{2, 1}, Edge{0, 0}};
  g.add(a);  // id 1
  Node bn;
  bn.kind = OpKind::Or;
  bn.width = 4;
  bn.operands = {Edge{1, 1}, Edge{0, 0}};
  g.add(bn);  // id 2
  Node outn;
  outn.kind = OpKind::Output;
  outn.width = 4;
  outn.operands = {Edge{1, 0}};
  g.add(outn);
  ASSERT_EQ(verify(g), std::nullopt);
  const Graph folded = foldConstants(g);
  EXPECT_EQ(verify(folded), std::nullopt);
}

class FoldRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FoldRandomTest, SemanticsPreserved) {
  std::mt19937 rng(GetParam() * 77773u + 5);
  GraphBuilder b("rand");
  std::vector<Value> pool;
  for (int i = 0; i < 2; ++i) {
    pool.push_back(b.input("in" + std::to_string(i), 8));
  }
  // Plant plenty of constants so folding has work to do.
  for (const std::uint64_t c : {0ull, 0xFFull, 0x0Full, 1ull}) {
    pool.push_back(b.constant(c, 8));
  }
  Value ph = b.placeholder(8, "st");
  pool.push_back(Value{ph.id, 1});
  for (int i = 0; i < 20; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    Value x = pool[pick(rng)];
    Value y = pool[pick(rng)];
    switch (rng() % 8) {
      case 0: pool.push_back(b.band(x, y)); break;
      case 1: pool.push_back(b.bor(x, y)); break;
      case 2: pool.push_back(b.bxor(x, y)); break;
      case 3: pool.push_back(b.add(x, y)); break;
      case 4: pool.push_back(b.sub(x, y)); break;
      case 5: pool.push_back(b.mux(b.bit(x, rng() % 8), x, y)); break;
      case 6: pool.push_back(b.shr(x, static_cast<int>(rng() % 8))); break;
      default: pool.push_back(b.bnot(x)); break;
    }
  }
  Value next = b.bxor(pool.back(), Value{ph.id, 1});
  b.bindPlaceholder(ph, next);
  b.output(next, "acc");
  b.output(pool[pool.size() / 2], "mid");
  const Graph before = ir::compact(b.graph());
  FoldStats st;
  const Graph after = foldConstants(before, &st);
  ASSERT_EQ(verify(after), std::nullopt);
  EXPECT_LE(after.size(), before.size());

  // Output node count and order are preserved; compare streams.
  ASSERT_EQ(after.outputs().size(), before.outputs().size());
  sim::Interpreter ib(before), ia(after);
  for (std::uint64_t k = 0; k < 9; ++k) {
    sim::InputFrame fb, fa;
    std::uint64_t s = GetParam() * 31 + k;
    for (const NodeId in : before.inputs()) fb[in] = s = s * 131 + 7;
    s = GetParam() * 31 + k;
    for (const NodeId in : after.inputs()) fa[in] = s = s * 131 + 7;
    const auto ob = ib.step(fb);
    const auto oa = ia.step(fa);
    auto itB = ob.begin();
    auto itA = oa.begin();
    for (; itB != ob.end(); ++itB, ++itA) {
      EXPECT_EQ(itB->second, itA->second) << "iter " << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldRandomTest, ::testing::Range(1u, 21u));

}  // namespace
}  // namespace lamp::ir
