// Determinism of parallel cut enumeration: the database must be
// bit-identical at every thread count — requested counts (which the
// engine may clamp to the machine) and exact counts via the negative
// testing hook (which force real workers even on one core, so this
// file doubles as the ThreadSanitizer workload for the enumerator).
//
// LAMP_CUTENUM_TSAN_MIN builds the sanitizer variant: synthetic graphs
// only, no workloads/flow dependencies (mirrors milp_parallel_tsan_test
// — TSan needs the whole object chain instrumented, so the target
// recompiles the cut/ir/obs/util sources it runs).

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cut/cut.h"
#include "ir/builder.h"

#ifndef LAMP_CUTENUM_TSAN_MIN
#include "analyze/dataflow.h"
#include "flow/flow.h"
#include "flow/flow_json.h"
#include "workloads/workloads.h"
#endif

using namespace lamp;

namespace {

/// FNV-1a over every observable field of every cut: any divergence in
/// ordering, feasibility, costs or bit-level supports changes it.
std::uint64_t digest(const cut::CutDatabase& db) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t x) {
    h = (h ^ x) * 1099511628211ull;
  };
  mix(db.cutsOf.size());
  for (const cut::CutSet& cs : db.cutsOf) {
    mix(cs.cuts.size());
    for (const cut::Cut& c : cs.cuts) {
      mix(static_cast<std::uint64_t>(c.kind));
      mix(c.isUnit ? 1 : 0);
      mix(static_cast<std::uint64_t>(c.lutCost));
      mix(static_cast<std::uint64_t>(c.maxSupport));
      mix(c.elements.size());
      for (const cut::CutElement& e : c.elements) {
        mix((static_cast<std::uint64_t>(e.node) << 32) | e.dist);
      }
      mix(c.coneNodes.size());
      for (const ir::NodeId n : c.coneNodes) mix(n);
      mix(c.bitSupport.size());
      for (const cut::SupportSet& s : c.bitSupport) {
        mix(s.size());
        for (const cut::BitKey k : s) mix(k);
      }
      mix(c.bitIsWire.size());
      for (const bool w : c.bitIsWire) mix(w ? 1 : 0);
    }
  }
  return h;
}

/// Requested counts (clamped to the machine) plus exact counts through
/// the negative hook — the latter spawn real workers everywhere.
constexpr int kThreadCounts[] = {1, 2, 8, -2, -8};

void expectIdenticalAcrossThreads(const ir::Graph& g,
                                  cut::CutEnumOptions opts,
                                  const std::string& tag) {
  opts.threads = 1;
  const cut::CutDatabase ref = cut::enumerateCuts(g, opts);
  const std::uint64_t want = digest(ref);
  for (const int t : kThreadCounts) {
    opts.threads = t;
    const cut::CutDatabase db = cut::enumerateCuts(g, opts);
    EXPECT_EQ(digest(db), want) << tag << " diverges at threads=" << t;
    EXPECT_EQ(db.totalCuts, ref.totalCuts) << tag << " threads=" << t;
    EXPECT_EQ(db.memoHits, ref.memoHits) << tag << " threads=" << t;
    EXPECT_EQ(db.nodesComputed, ref.nodesComputed) << tag << " threads=" << t;
    // The arena peak is a max over nodes, so it is partition-invariant.
    EXPECT_EQ(db.arenaPeakBytes, ref.arenaPeakBytes)
        << tag << " threads=" << t;
  }
}

/// Wide xor-reduction tree: many same-level nodes per wave, so every
/// worker gets a chunk.
ir::Graph xorTree(int leaves, int width) {
  ir::GraphBuilder b("tree");
  std::vector<ir::Value> layer;
  for (int i = 0; i < leaves; ++i) {
    layer.push_back(b.input("i" + std::to_string(i),
                            static_cast<std::uint16_t>(width)));
  }
  while (layer.size() > 1) {
    std::vector<ir::Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.bxor(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  b.output(layer[0], "o");
  return b.take();
}

/// Parallel accumulator lanes with loop-carried feedback: exercises the
/// back-edge revisit pass (changed producers behind the wave front).
ir::Graph feedbackLanes(int lanes) {
  ir::GraphBuilder b("lanes");
  std::vector<ir::Value> accs;
  for (int i = 0; i < lanes; ++i) {
    const ir::Value x = b.input("x" + std::to_string(i), 8);
    const ir::Value acc = b.placeholder(8, "acc" + std::to_string(i));
    const ir::Value nxt = b.bxor(b.add(acc.prev(1), x), b.shl(x, 1));
    b.bindPlaceholder(acc, nxt);
    accs.push_back(nxt);
  }
  ir::Value sum = accs[0];
  for (int i = 1; i < lanes; ++i) sum = b.bxor(sum, accs[i]);
  b.output(sum, "o");
  return b.take();
}

TEST(CutEnumParallelTest, SyntheticGraphsBitIdenticalAcrossThreadCounts) {
  expectIdenticalAcrossThreads(xorTree(96, 12), {}, "xorTree");
  cut::CutEnumOptions k6;
  k6.k = 6;
  expectIdenticalAcrossThreads(xorTree(48, 16), k6, "xorTree/k6");
  expectIdenticalAcrossThreads(feedbackLanes(24), {}, "feedbackLanes");
  for (const cut::CutStrategy s : cut::allCutStrategies()) {
    cut::CutEnumOptions opts;
    opts.strategy = s;
    expectIdenticalAcrossThreads(
        xorTree(64, 8), opts,
        std::string("xorTree/") + std::string(cut::cutStrategyName(s)));
  }
}

#ifndef LAMP_CUTENUM_TSAN_MIN

TEST(CutEnumParallelTest, NineBenchmarksBitIdenticalAcrossThreadCounts) {
  for (const auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
    expectIdenticalAcrossThreads(bm.graph, {}, bm.name);
    // Masked enumeration too: the facts digest feeds the memo key.
    const auto dflow = analyze::analyzeDataflow(bm.graph);
    const ir::BitFacts facts = analyze::toBitFacts(dflow);
    cut::CutEnumOptions masked;
    masked.facts = &facts;
    expectIdenticalAcrossThreads(bm.graph, masked, bm.name + "/facts");
  }
}

TEST(CutEnumParallelTest, FlowJsonBitIdenticalAcrossCutThreads) {
  for (const auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
    if (bm.name != "XORR" && bm.name != "RS") continue;
    std::string want;
    for (const int t : {1, 2, 8}) {
      flow::FlowOptions opts;
      opts.cuts.threads = t;
      opts.solverTimeLimitSeconds = 60.0;
      flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
      ASSERT_TRUE(r.success) << bm.name << " threads=" << t << ": " << r.error;
      // Timing is the one legitimately nondeterministic part; everything
      // else must serialize byte-identically.
      r.solveSeconds = 0.0;
      r.buildSeconds = 0.0;
      r.phases = {};
      std::ostringstream os;
      flow::resultToJson(r).write(os);
      if (t == 1) {
        want = os.str();
      } else {
        EXPECT_EQ(os.str(), want)
            << bm.name << ": flow JSON diverges at cut threads=" << t;
      }
    }
  }
}

#endif  // LAMP_CUTENUM_TSAN_MIN

}  // namespace
