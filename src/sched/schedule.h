#ifndef LAMP_SCHED_SCHEDULE_H
#define LAMP_SCHED_SCHEDULE_H

/// \file schedule.h
/// Modulo schedules: per-node cycle and intra-cycle start time, plus the
/// cut (LUT cone) selected for each root node. Includes the constraint
/// validator used by tests and flows, and the dependence-window machinery
/// (ASAP/ALAP over the modulo constraint graph) shared by the SDC
/// heuristic and the MILP.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cut/cut.h"
#include "ir/graph.h"
#include "sched/delay_model.h"

namespace lamp::sched {

/// Index of "no cut selected" (node absorbed into consumers' cones).
inline constexpr int kAbsorbed = -1;
/// Cycle assigned to nodes that are not scheduled (Const).
inline constexpr int kUnscheduled = -1;

/// A modulo schedule of one loop iteration.
struct Schedule {
  int ii = 1;
  double tcpNs = 10.0;
  /// S_v: cycle per node (kUnscheduled for Const nodes).
  std::vector<int> cycle;
  /// L_v: start time inside the cycle, in ns (0 for Const/Input).
  std::vector<double> startNs;
  /// Selected cut index into the CutDatabase (kAbsorbed for non-roots,
  /// kUnscheduled-style -1 also for Input/Const which have no cuts).
  std::vector<int> selectedCut;

  bool isRoot(ir::NodeId v) const { return selectedCut[v] >= 0; }

  /// Latest cycle of any Output/Store node (pipeline depth in cycles).
  int latency(const ir::Graph& g) const;

  /// Number of pipeline stages (distinct cycles used), = latency + 1.
  int stages(const ir::Graph& g) const { return latency(g) + 1; }
};

/// Resource limits per class (absent class = unconstrained).
using ResourceLimits = std::map<ir::ResourceClass, int>;

/// Everything the validator needs to judge a schedule.
struct ValidationInput {
  const ir::Graph& graph;
  const cut::CutDatabase& cuts;
  const DelayModel& delays;
  ResourceLimits resources;
  /// Bit-level facts the cut database was enumerated with (nullptr for
  /// unmasked databases). The cone-closure check must see the same
  /// masks, or it would demand operands the masked cones never read.
  const ir::BitFacts* facts = nullptr;
};

/// Checks all constraints of Section 3.2 against a schedule:
///  - every node scheduled within [0, maxLatency], Inputs at cycle 0,
///  - cut cover: outputs/black boxes rooted, selected-cut boundary
///    elements rooted, every non-root reachable inside a selected cone,
///  - dependences: S_u + lat_u <= S_v + II*dist for every edge,
///  - cycle time: recomputed chain arrival times within each cycle stay
///    under Tcp (selected roots chain by rootDelay),
///  - modulo resource limits for black-box classes.
/// Returns std::nullopt if valid, else a diagnostic.
std::optional<std::string> validateSchedule(const ValidationInput& in,
                                            const Schedule& s);

/// Dependence windows for exact scheduling. Computed by Bellman-Ford
/// longest paths over the modulo constraint graph (edge weight
/// lat_u - II*dist), so they never exclude a feasible schedule with
/// latency <= maxLatency.
struct Windows {
  std::vector<int> asap;
  std::vector<int> alap;
  int maxLatency = 0;
  bool feasible = true;  ///< false when a positive cycle makes II infeasible
};

Windows computeWindows(const ir::Graph& g, const DelayModel& dm, int ii,
                       double tcpNs, int maxLatency);

}  // namespace lamp::sched

#endif  // LAMP_SCHED_SCHEDULE_H
