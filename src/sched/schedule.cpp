#include "sched/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cut/dep.h"
#include "ir/passes.h"

namespace lamp::sched {

using cut::Cut;
using cut::CutElement;
using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

namespace {

bool schedulable(const Node& n) {
  return n.kind != OpKind::Const;
}

std::string nodeDesc(const Graph& g, NodeId id) {
  std::ostringstream os;
  os << "node " << id << " (" << ir::opKindName(g.node(id).kind);
  if (!g.node(id).name.empty()) os << " '" << g.node(id).name << "'";
  os << ")";
  return os.str();
}

}  // namespace

int Schedule::latency(const Graph& g) const {
  int best = 0;
  bool sawSink = false;
  for (NodeId v = 0; v < g.size(); ++v) {
    const OpKind k = g.node(v).kind;
    if (k == OpKind::Output || k == OpKind::Store) {
      best = std::max(best, cycle[v]);
      sawSink = true;
    }
  }
  if (!sawSink) {
    for (NodeId v = 0; v < g.size(); ++v) {
      if (cycle[v] != kUnscheduled) best = std::max(best, cycle[v]);
    }
  }
  return best;
}

std::optional<std::string> validateSchedule(const ValidationInput& in,
                                            const Schedule& s) {
  const Graph& g = in.graph;
  constexpr double kEps = 1e-6;
  if (s.cycle.size() != g.size() || s.startNs.size() != g.size() ||
      s.selectedCut.size() != g.size()) {
    return "schedule vectors do not match graph size";
  }
  if (s.ii < 1) return "II must be >= 1";

  // --- per-node basics -----------------------------------------------------
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    if (s.cycle[v] < 0) return nodeDesc(g, v) + ": not scheduled";
    if (n.kind == OpKind::Input && s.cycle[v] != 0) {
      return nodeDesc(g, v) + ": inputs must be scheduled at cycle 0";
    }
    const auto& cuts = in.cuts.at(v).cuts;
    if (s.selectedCut[v] >= static_cast<int>(cuts.size())) {
      return nodeDesc(g, v) + ": cut index out of range";
    }
    const bool mustRoot = n.kind == OpKind::Output ||
                          ir::isBlackBox(n.kind);
    if (mustRoot && !s.isRoot(v)) {
      return nodeDesc(g, v) + ": outputs and black boxes must be roots";
    }
  }

  // --- dependences -----------------------------------------------------------
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    for (const Edge& e : n.operands) {
      if (!schedulable(g.node(e.src))) continue;
      const int lat = in.delays.latencyCycles(g, e.src, s.tcpNs);
      if (s.cycle[e.src] + lat >
          s.cycle[v] + static_cast<int>(e.dist) * s.ii) {
        return nodeDesc(g, v) + ": dependence violated from " +
               nodeDesc(g, e.src);
      }
    }
  }

  // --- cut cover -------------------------------------------------------------
  // (a) boundary elements of selected cuts must themselves be rooted;
  // (b) cones must be closed: operands of cone nodes are boundary,
  //     in-cone, or constants;
  // (c) everything needed transitively from the sinks must materialize.
  auto isAvailable = [&](NodeId u) {
    const OpKind k = g.node(u).kind;
    return k == OpKind::Input || k == OpKind::Const || s.isRoot(u);
  };
  for (NodeId v = 0; v < g.size(); ++v) {
    if (!s.isRoot(v)) continue;
    const Cut& c = in.cuts.at(v).cuts[s.selectedCut[v]];
    for (const CutElement& e : c.elements) {
      if (!isAvailable(e.node)) {
        return nodeDesc(g, v) + ": cut input " + nodeDesc(g, e.node) +
               " is not a root";
      }
    }
    if (c.kind != cut::CutKind::Lut) continue;
    // With bit-level facts the enumerator builds the cone for the root's
    // costed bits only (demanded and not analysis-known); an absorbed
    // node's operand is required in cone/boundary only when one of those
    // bits transitively reads it. Propagate the needed-bit masks backward
    // through the cone — coneNodes ids are topological (append-only
    // graph), so one descending sweep suffices.
    const bool masked = in.facts != nullptr && in.facts->compatibleWith(g);
    std::vector<std::uint64_t> need;
    std::vector<NodeId> order = c.coneNodes;
    if (masked) {
      need.assign(c.coneNodes.size(), 0);
      std::sort(order.begin(), order.end(), std::greater<NodeId>());
      const auto slotOf = [&](NodeId u) -> std::uint64_t* {
        const auto it =
            std::lower_bound(c.coneNodes.begin(), c.coneNodes.end(), u);
        if (it == c.coneNodes.end() || *it != u) return nullptr;
        return &need[static_cast<std::size_t>(it - c.coneNodes.begin())];
      };
      *slotOf(v) = in.facts->demandedOf(g, v) & ~in.facts->knownMask[v];
      for (const NodeId x : order) {
        const std::uint64_t bits = *slotOf(x);
        const Node& xn = g.node(x);
        if (bits == 0 && xn.width <= 64) continue;
        for (std::uint16_t j = 0; j < xn.width; ++j) {
          if (j < 64 && ((bits >> j) & 1) == 0) continue;
          for (const cut::DepBit& d : cut::depBits(g, x, j, in.facts)) {
            const Edge& e = xn.operands[d.operandIndex];
            if (e.dist != 0) continue;
            // Boundary wins over cone membership: a read of an element
            // uses the LUT input (the element is rooted by check (a)),
            // not in-cone logic, so it creates no deeper obligations.
            if (c.containsElement(e.src, e.dist)) continue;
            if (std::uint64_t* slot = slotOf(e.src)) {
              *slot |= d.bit < 64 ? (1ull << d.bit) : 0;
            }
          }
        }
      }
    }
    const auto operandNeeded = [&](NodeId x, std::uint16_t oi) {
      if (!masked) return cut::operandRelevant(g, x, oi, in.facts);
      const auto it =
          std::lower_bound(c.coneNodes.begin(), c.coneNodes.end(), x);
      const std::uint64_t bits =
          need[static_cast<std::size_t>(it - c.coneNodes.begin())];
      const Node& xn = g.node(x);
      for (std::uint16_t j = 0; j < xn.width; ++j) {
        if (j < 64 && ((bits >> j) & 1) == 0) continue;
        for (const cut::DepBit& d : cut::depBits(g, x, j, in.facts)) {
          if (d.operandIndex == oi) return true;
        }
      }
      return false;
    };
    for (const NodeId x : c.coneNodes) {
      if (s.cycle[x] > s.cycle[v]) {
        return nodeDesc(g, v) + ": cone node " + nodeDesc(g, x) +
               " scheduled after its root";
      }
      const auto& xOps = g.node(x).operands;
      for (std::uint16_t oi = 0; oi < xOps.size(); ++oi) {
        const Edge& e = xOps[oi];
        const bool inCone =
            e.dist == 0 &&
            std::binary_search(c.coneNodes.begin(), c.coneNodes.end(), e.src);
        const bool isBoundary = c.containsElement(e.src, e.dist);
        const bool isConst = g.node(e.src).kind == OpKind::Const;
        // Operands with no bit-level dependence (dominated by constants,
        // shifted out) don't have to appear in the cone at all.
        if (!inCone && !isBoundary && !isConst && operandNeeded(x, oi)) {
          return nodeDesc(g, v) + ": cone not closed at " + nodeDesc(g, e.src);
        }
      }
    }
  }
  {
    std::vector<bool> needed(g.size(), false);
    std::vector<NodeId> work;
    for (NodeId v = 0; v < g.size(); ++v) {
      const OpKind k = g.node(v).kind;
      if (k == OpKind::Output || k == OpKind::Store) {
        needed[v] = true;
        work.push_back(v);
      }
    }
    while (!work.empty()) {
      const NodeId v = work.back();
      work.pop_back();
      if (g.node(v).kind == OpKind::Input ||
          g.node(v).kind == OpKind::Const) {
        continue;
      }
      if (!s.isRoot(v)) return nodeDesc(g, v) + ": needed but not a root";
      const Cut& c = in.cuts.at(v).cuts[s.selectedCut[v]];
      for (const CutElement& e : c.elements) {
        if (!needed[e.node]) {
          needed[e.node] = true;
          work.push_back(e.node);
        }
      }
    }
  }

  // --- cycle time ------------------------------------------------------------
  for (NodeId v = 0; v < g.size(); ++v) {
    if (!s.isRoot(v)) continue;
    const int lat = in.delays.latencyCycles(g, v, s.tcpNs);
    const double rem = in.delays.remainderNs(g, v, s.tcpNs);
    if (lat >= 1 && s.startNs[v] > kEps) {
      return nodeDesc(g, v) + ": multi-cycle ops must start at L=0";
    }
    if (s.startNs[v] + rem > s.tcpNs + kEps) {
      return nodeDesc(g, v) + ": exceeds the clock period";
    }
    const Cut& c = in.cuts.at(v).cuts[s.selectedCut[v]];
    for (const CutElement& e : c.elements) {
      const Node& u = g.node(e.node);
      if (u.kind == OpKind::Input || u.kind == OpKind::Const) continue;
      const int latU = in.delays.latencyCycles(g, e.node, s.tcpNs);
      const int ready = s.cycle[e.node] + latU;
      // Same-clock chaining binds when the producer's ready cycle equals
      // the consumer's cycle shifted by II*dist iterations.
      if (ready != s.cycle[v] + static_cast<int>(e.dist) * s.ii) continue;
      const double remU = in.delays.remainderNs(g, e.node, s.tcpNs);
      if (s.startNs[e.node] + remU > s.startNs[v] + kEps) {
        return nodeDesc(g, v) + ": chaining violates timing from " +
               nodeDesc(g, e.node);
      }
    }
  }

  // --- modulo resource limits -------------------------------------------------
  for (const auto& [rc, limit] : in.resources) {
    std::vector<int> perSlot(s.ii, 0);
    for (NodeId v = 0; v < g.size(); ++v) {
      const Node& n = g.node(v);
      if (!ir::isBlackBox(n.kind) || n.resourceClass() != rc) continue;
      if (++perSlot[s.cycle[v] % s.ii] > limit) {
        std::ostringstream os;
        os << "resource class " << ir::resourceClassName(rc)
           << " oversubscribed in modulo slot " << (s.cycle[v] % s.ii);
        return os.str();
      }
    }
  }
  return std::nullopt;
}

Windows computeWindows(const Graph& g, const DelayModel& dm, int ii,
                       double tcpNs, int maxLatency) {
  Windows w;
  w.maxLatency = maxLatency;
  w.asap.assign(g.size(), 0);
  w.alap.assign(g.size(), maxLatency);

  struct Arc {
    NodeId u, v;
    int weight;  // S_v >= S_u + weight
  };
  std::vector<Arc> arcs;
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    for (const Edge& e : n.operands) {
      if (!schedulable(g.node(e.src))) continue;
      const int lat = dm.latencyCycles(g, e.src, tcpNs);
      arcs.push_back(Arc{e.src, v, lat - static_cast<int>(e.dist) * ii});
    }
  }

  // Longest-path relaxation (Bellman-Ford). A change on pass |V| means a
  // positive cycle: the recurrence cannot meet this II.
  for (std::size_t pass = 0; pass <= g.size(); ++pass) {
    bool changed = false;
    for (const Arc& a : arcs) {
      if (w.asap[a.u] + a.weight > w.asap[a.v]) {
        w.asap[a.v] = w.asap[a.u] + a.weight;
        changed = true;
      }
      if (w.alap[a.v] - a.weight < w.alap[a.u]) {
        w.alap[a.u] = w.alap[a.v] - a.weight;
        changed = true;
      }
    }
    if (!changed) break;
    if (pass == g.size()) {
      w.feasible = false;
      return w;
    }
  }

  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Input) w.alap[v] = 0;  // inputs arrive at t = 0
    if (!schedulable(n)) continue;
    if (w.asap[v] > w.alap[v]) {
      w.feasible = false;
      return w;
    }
  }
  return w;
}

}  // namespace lamp::sched
