#ifndef LAMP_SCHED_SDC_H
#define LAMP_SCHED_SDC_H

/// \file sdc.h
/// SDC-style heuristic modulo scheduler with operator chaining — the
/// stand-in for the commercial HLS tool of the paper's experiments
/// (Vivado HLS / LegUp both schedule this way, refs [22][3]).
///
/// The scheduler uses the *additive* delay model: every operation charges
/// its characterized delay, chains accumulate within a cycle, and a new
/// pipeline stage starts whenever the accumulated delay would exceed the
/// target clock period. Black-box operations are placed against a modulo
/// reservation table. Every node becomes a root with its unit cut (no
/// mapping awareness).

#include <string>

#include "sched/schedule.h"

namespace lamp::sched {

struct SdcOptions {
  int ii = 1;
  double tcpNs = 10.0;
  ResourceLimits resources;
  /// Hard bound on pipeline latency in cycles.
  int maxLatency = 256;
};

struct SdcResult {
  bool success = false;
  std::string error;
  Schedule schedule;
};

/// Schedules `g` at the requested II. `trivialDb` must be the unit-cut
/// database (cut::trivialCuts); the resulting schedule selects the unit
/// cut of every materialized node. Fails (success=false) when the
/// recurrence or resource constraints cannot be met at this II.
SdcResult sdcSchedule(const ir::Graph& g, const cut::CutDatabase& trivialDb,
                      const DelayModel& dm, const SdcOptions& opts = {});

}  // namespace lamp::sched

#endif  // LAMP_SCHED_SDC_H
