#include "sched/sdc.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ir/passes.h"

namespace lamp::sched {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

SdcResult sdcSchedule(const Graph& g, const cut::CutDatabase& trivialDb,
                      const DelayModel& dm, const SdcOptions& opts) {
  SdcResult result;
  Schedule& s = result.schedule;
  s.ii = opts.ii;
  s.tcpNs = opts.tcpNs;
  s.cycle.assign(g.size(), kUnscheduled);
  s.startNs.assign(g.size(), 0.0);
  s.selectedCut.assign(g.size(), kAbsorbed);

  // Recurrence feasibility at this II (cycle-level constraints only).
  const Windows win = computeWindows(g, dm, opts.ii, opts.tcpNs,
                                     opts.maxLatency);
  if (!win.feasible) {
    result.error = "recurrence infeasible at II=" + std::to_string(opts.ii);
    return result;
  }

  const auto order = ir::topologicalOrder(g);

  // ASAP list scheduling with chaining, iterated to a fixed point so that
  // chains through loop-carried edges (a back-edge producer finishing in
  // the same clock its consumer reads it) settle. Placements only grow
  // between passes, so the loop either converges or exceeds the latency
  // bound (=> this II is infeasible for the heuristic).
  constexpr int kMaxPasses = 12;
  bool converged = false;
  for (int pass = 0; pass < kMaxPasses && !converged; ++pass) {
    converged = pass > 0;

    // Modulo reservation table, rebuilt per pass.
    std::map<ir::ResourceClass, std::vector<int>> mrt;
    for (const auto& [rc, limit] : opts.resources) {
      (void)limit;
      mrt[rc].assign(opts.ii, 0);
    }

    for (const NodeId v : order) {
      const Node& n = g.node(v);
      if (n.kind == OpKind::Const) continue;

      int cyc = 0;
      double start = 0.0;
      for (const Edge& e : n.operands) {
        const Node& u = g.node(e.src);
        if (u.kind == OpKind::Const) continue;
        if (s.cycle[e.src] == kUnscheduled) continue;  // first-pass back edge
        const int latU = dm.latencyCycles(g, e.src, opts.tcpNs);
        const int ready =
            s.cycle[e.src] + latU - static_cast<int>(e.dist) * opts.ii;
        // Additive model: producers finish after their full characterized
        // delay (not the mapped remainder the validator uses).
        const double readyNs =
            s.startNs[e.src] +
            (dm.additiveDelay(g, e.src) - latU * opts.tcpNs);
        if (ready > cyc) {
          cyc = ready;
          start = readyNs;
        } else if (ready == cyc) {
          start = std::max(start, readyNs);
        }
      }
      if (cyc < 0) {
        cyc = 0;
        start = 0.0;
      }

      const double delay = dm.additiveDelay(g, v);
      const int lat = dm.latencyCycles(g, v, opts.tcpNs);
      // Chaining: push to the next stage when the op does not fit, or
      // when a multi-cycle op does not start at a register boundary.
      if (start + (lat > 0 ? 0.0 : delay) > opts.tcpNs + 1e-9 ||
          (lat > 0 && start > 1e-9)) {
        ++cyc;
        start = 0.0;
      }

      // Modulo reservation for constrained black boxes.
      if (ir::isBlackBox(n.kind)) {
        const auto it = opts.resources.find(n.resourceClass());
        if (it != opts.resources.end()) {
          auto& slots = mrt[n.resourceClass()];
          int tries = 0;
          while (slots[cyc % opts.ii] >= it->second) {
            ++cyc;
            start = 0.0;
            if (++tries > opts.ii + opts.maxLatency) {
              result.error =
                  "resource class " +
                  std::string(ir::resourceClassName(it->first)) +
                  " infeasible at II=" + std::to_string(opts.ii);
              return result;
            }
          }
          ++slots[cyc % opts.ii];
        }
      }

      if (cyc > opts.maxLatency) {
        result.error = "latency bound exceeded";
        return result;
      }
      if (cyc != s.cycle[v] || std::abs(start - s.startNs[v]) > 1e-9) {
        converged = false;
      }
      s.cycle[v] = cyc;
      s.startNs[v] = start;
      // Every materialized node roots its unit cut in the additive flow.
      s.selectedCut[v] = trivialDb.at(v).cuts.empty() ? kAbsorbed : 0;
    }
  }
  if (!converged) {
    result.error = "recurrence chaining did not converge at II=" +
                   std::to_string(opts.ii);
    return result;
  }

  // Loop-carried upper bounds: ASAP placement is as early as possible, so
  // a violated back edge means this II is infeasible for this heuristic.
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const) continue;
    for (const Edge& e : n.operands) {
      if (g.node(e.src).kind == OpKind::Const) continue;
      const int lat = dm.latencyCycles(g, e.src, opts.tcpNs);
      if (s.cycle[e.src] + lat >
          s.cycle[v] + static_cast<int>(e.dist) * opts.ii) {
        result.error = "loop-carried dependence violated at II=" +
                       std::to_string(opts.ii);
        return result;
      }
    }
  }

  result.success = true;
  return result;
}

}  // namespace lamp::sched
