#ifndef LAMP_SCHED_DELAY_MODEL_H
#define LAMP_SCHED_DELAY_MODEL_H

/// \file delay_model.h
/// Characterized delays for operations on the target FPGA device (given 5
/// of the problem statement in Section 3). Two views exist:
///
///  - additiveDelay(): the per-operation delay a mapping-agnostic scheduler
///    (the commercial HLS baseline and MILP-base) charges. Chained ops add
///    up — this is the pessimism the paper attacks.
///  - rootDelay(): the delay a value incurs when its node is the root of a
///    mapped cone — one LUT level for logic, a carry chain for wide
///    arithmetic, the characterized delay for black boxes, zero for pure
///    wiring.
///
/// Delays are in nanoseconds. Multi-cycle black boxes are expressed via
/// latencyCycles()/remainderNs() against a clock period.

#include "ir/graph.h"

namespace lamp::sched {

struct DelayModel {
  /// One mapped LUT level including local routing — what a chain of LUTs
  /// costs per level after technology mapping.
  double lutDelayNs = 1.2;
  /// Additive (pre-mapping) per-operation charges, mirroring commercial
  /// HLS characterization: the paper reports 1.37 ns per xor; wide
  /// selects are charged a little more. The gap between these and
  /// lutDelayNs * (mapped levels) is exactly the pessimism the paper's
  /// technique recovers.
  double bitwiseAdditiveNs = 1.37;
  double muxAdditiveNs = 1.71;
  /// Carry chains: fixed entry cost plus per-bit propagation (same in
  /// both models — mapping cannot restructure carry macros).
  double carryBaseNs = 1.37;
  double carryPerBitNs = 0.05;
  /// Black boxes.
  double dspMulNs = 12.0;   ///< pipelined DSP multiply (2 cycles at 10 ns)
  double memReadNs = 3.0;   ///< synchronous BRAM/ROM read incl. routing
  double memWriteNs = 1.2;
  /// Extra additive-model charge for Shift-class ops. Zero by default
  /// (constant shifts are wiring); Figure 1 of the paper charges every
  /// operation uniformly, which this knob reproduces.
  double shiftAdditiveNs = 0.0;

  /// Delay charged for node `id` by the additive (mapping-agnostic) model.
  double additiveDelay(const ir::Graph& g, ir::NodeId id) const;

  /// Delay of node `id` implemented as a mapped root.
  double rootDelay(const ir::Graph& g, ir::NodeId id) const;

  /// Whole cycles the node occupies beyond its start cycle: floor(d/Tcp).
  int latencyCycles(const ir::Graph& g, ir::NodeId id, double tcpNs) const;

  /// Delay left in the node's final cycle: d - latencyCycles * Tcp.
  double remainderNs(const ir::Graph& g, ir::NodeId id, double tcpNs) const;

  /// Carry-chain delay of a W-bit arithmetic operation.
  double carryDelay(int widthBits) const {
    return carryBaseNs + carryPerBitNs * widthBits;
  }
};

}  // namespace lamp::sched

#endif  // LAMP_SCHED_DELAY_MODEL_H
