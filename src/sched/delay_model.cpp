#include "sched/delay_model.h"

#include <cmath>

namespace lamp::sched {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpClass;
using ir::OpKind;

namespace {

/// Effective carry-chain width: result width for add/sub, operand width
/// for comparisons.
int carryWidth(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (n.kind == OpKind::Add || n.kind == OpKind::Sub) return n.width;
  return g.node(n.operands[0].src).width;
}

}  // namespace

double DelayModel::additiveDelay(const Graph& g, NodeId id) const {
  const Node& n = g.node(id);
  switch (ir::opClass(n.kind)) {
    case OpClass::Io:
      return 0.0;
    case OpClass::Shift:
      return shiftAdditiveNs;
    case OpClass::Bitwise:
      return bitwiseAdditiveNs;
    case OpClass::Mux:
      return muxAdditiveNs;
    case OpClass::Arith:
      return carryDelay(carryWidth(g, id));
    case OpClass::BlackBox:
      switch (n.kind) {
        case OpKind::Mul: return dspMulNs;
        case OpKind::Load: return memReadNs;
        case OpKind::Store: return memWriteNs;
        default: return lutDelayNs;
      }
  }
  return lutDelayNs;
}

double DelayModel::rootDelay(const Graph& g, NodeId id) const {
  const Node& n = g.node(id);
  switch (ir::opClass(n.kind)) {
    case OpClass::Io:
    case OpClass::Shift:
      return 0.0;
    case OpClass::Bitwise:
    case OpClass::Mux:
      return lutDelayNs;
    case OpClass::Arith:
      return carryDelay(carryWidth(g, id));
    case OpClass::BlackBox:
      return additiveDelay(g, id);
  }
  return lutDelayNs;
}

int DelayModel::latencyCycles(const Graph& g, NodeId id, double tcpNs) const {
  const double d = rootDelay(g, id);
  if (d < tcpNs) return 0;
  return static_cast<int>(std::floor(d / tcpNs));
}

double DelayModel::remainderNs(const Graph& g, NodeId id, double tcpNs) const {
  return rootDelay(g, id) - latencyCycles(g, id, tcpNs) * tcpNs;
}

}  // namespace lamp::sched
