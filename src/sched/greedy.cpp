#include "sched/greedy.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "ir/passes.h"

namespace lamp::sched {

using cut::Cut;
using cut::CutElement;
using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

namespace {

bool schedulable(const Node& n) { return n.kind != OpKind::Const; }

}  // namespace

SdcResult greedyMapSchedule(const Graph& g, const cut::CutDatabase& db,
                            const DelayModel& dm, const SdcOptions& opts) {
  SdcResult result;
  Schedule& s = result.schedule;
  s.ii = opts.ii;
  s.tcpNs = opts.tcpNs;
  s.cycle.assign(g.size(), kUnscheduled);
  s.startNs.assign(g.size(), 0.0);
  s.selectedCut.assign(g.size(), kAbsorbed);

  const Windows win =
      computeWindows(g, dm, opts.ii, opts.tcpNs, opts.maxLatency);
  if (!win.feasible) {
    result.error = "recurrence infeasible at II=" + std::to_string(opts.ii);
    return result;
  }

  const auto order = ir::topologicalOrder(g);
  const auto& fanouts = g.fanouts();

  // --- phase 1: area-flow over all nodes, two passes so that back-edge
  // boundary elements (defined later in topological order) see a
  // reasonable estimate on the second pass.
  std::vector<double> af(g.size(), 0.0);
  std::vector<int> bestCut(g.size(), kAbsorbed);
  for (int pass = 0; pass < 2; ++pass) {
    for (const NodeId v : order) {
      const Node& n = g.node(v);
      if (!schedulable(n) || db.at(v).cuts.empty()) continue;
      double best = 1e30;
      int bestIdx = 0;
      for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
        const Cut& c = db.at(v).cuts[i];
        double score = c.lutCost;
        for (const CutElement& e : c.elements) {
          const double share =
              std::max<std::size_t>(1, fanouts[e.node].size());
          score += af[e.node] / static_cast<double>(share);
        }
        if (score < best - 1e-12) {
          best = score;
          bestIdx = static_cast<int>(i);
        }
      }
      af[v] = best;
      bestCut[v] = bestIdx;
    }
  }

  // --- phase 2: cover extraction from the sinks.
  std::vector<bool> isRoot(g.size(), false);
  std::vector<NodeId> work;
  for (NodeId v = 0; v < g.size(); ++v) {
    const OpKind k = g.node(v).kind;
    if (k == OpKind::Output || k == OpKind::Store) {
      isRoot[v] = true;
      work.push_back(v);
    }
  }
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    if (db.at(v).cuts.empty()) continue;  // Input reached
    s.selectedCut[v] = bestCut[v] >= 0 ? bestCut[v] : 0;
    const Cut& c = db.at(v).cuts[s.selectedCut[v]];
    for (const CutElement& e : c.elements) {
      if (!isRoot[e.node] && schedulable(g.node(e.node))) {
        isRoot[e.node] = true;
        work.push_back(e.node);
      }
    }
  }

  // --- phase 3: list scheduling over roots (and a dependence-safe
  // placement for dead/absorbed nodes). Roots chain by their mapped
  // delays; everything else inherits placement from its cone roots.
  // Iterated to a fixed point so same-clock chains through loop-carried
  // boundaries settle (see sdcSchedule for the convergence argument).
  constexpr int kMaxPasses = 12;
  bool converged = false;
  for (int pass = 0; pass < kMaxPasses && !converged; ++pass) {
    converged = pass > 0;
    std::map<ir::ResourceClass, std::vector<int>> mrt;
    for (const auto& [rc, limit] : opts.resources) {
      (void)limit;
      mrt[rc].assign(opts.ii, 0);
    }

    for (const NodeId v : order) {
      const Node& n = g.node(v);
      if (!schedulable(n)) continue;
      if (n.kind == OpKind::Input) {
        s.cycle[v] = 0;
        s.startNs[v] = 0.0;
        continue;
      }
      if (!isRoot[v] || s.selectedCut[v] < 0) continue;  // placed later

      int cyc = 0;
      double start = 0.0;
      const Cut& c = db.at(v).cuts[s.selectedCut[v]];
      for (const CutElement& e : c.elements) {
        const Node& u = g.node(e.node);
        if (u.kind == OpKind::Const) continue;
        if (s.cycle[e.node] == kUnscheduled) continue;  // first pass only
        const int ready = s.cycle[e.node] +
                          dm.latencyCycles(g, e.node, opts.tcpNs) -
                          static_cast<int>(e.dist) * opts.ii;
        const double readyNs =
            s.startNs[e.node] + dm.remainderNs(g, e.node, opts.tcpNs);
        if (ready > cyc) {
          cyc = ready;
          start = readyNs;
        } else if (ready == cyc) {
          start = std::max(start, readyNs);
        }
      }
      if (cyc < 0) {
        cyc = 0;
        start = 0.0;
      }
      const int lat = dm.latencyCycles(g, v, opts.tcpNs);
      const double rem = dm.remainderNs(g, v, opts.tcpNs);
      if (start + (lat > 0 ? 0.0 : rem) > opts.tcpNs + 1e-9 ||
          (lat > 0 && start > 1e-9)) {
        ++cyc;
        start = 0.0;
      }
      if (ir::isBlackBox(n.kind)) {
        const auto it = opts.resources.find(n.resourceClass());
        if (it != opts.resources.end()) {
          auto& slots = mrt[n.resourceClass()];
          int tries = 0;
          while (slots[cyc % opts.ii] >= it->second) {
            ++cyc;
            start = 0.0;
            if (++tries > opts.ii + opts.maxLatency) {
              result.error = "resource infeasible at II=" +
                             std::to_string(opts.ii);
              return result;
            }
          }
          ++slots[cyc % opts.ii];
        }
      }
      if (cyc > opts.maxLatency) {
        result.error = "latency bound exceeded";
        return result;
      }
      if (cyc != s.cycle[v] || std::abs(start - s.startNs[v]) > 1e-9) {
        converged = false;
      }
      s.cycle[v] = cyc;
      s.startNs[v] = start;
    }
  }
  if (!converged) {
    result.error = "recurrence chaining did not converge at II=" +
                   std::to_string(opts.ii);
    return result;
  }

  // Absorbed / dead nodes: place at the earliest cycle their containing
  // root(s) allow, or dependence-ASAP for dead logic.
  std::vector<int> minRootCycle(g.size(), std::numeric_limits<int>::max());
  std::vector<double> rootStart(g.size(), 0.0);
  for (NodeId v = 0; v < g.size(); ++v) {
    if (s.selectedCut[v] < 0 || db.at(v).cuts.empty()) continue;
    const Cut& c = db.at(v).cuts[s.selectedCut[v]];
    for (const NodeId cn : c.coneNodes) {
      if (cn != v && s.cycle[v] != kUnscheduled &&
          s.cycle[v] < minRootCycle[cn]) {
        minRootCycle[cn] = s.cycle[v];
        rootStart[cn] = s.startNs[v];
      }
    }
  }
  for (const NodeId v : order) {
    const Node& n = g.node(v);
    if (!schedulable(n) || s.cycle[v] != kUnscheduled) continue;
    if (minRootCycle[v] != std::numeric_limits<int>::max()) {
      s.cycle[v] = minRootCycle[v];
      s.startNs[v] = rootStart[v];
      continue;
    }
    // Dead logic: dependence-safe ASAP.
    int cyc = 0;
    for (const Edge& e : n.operands) {
      if (!schedulable(g.node(e.src)) || s.cycle[e.src] == kUnscheduled) {
        continue;
      }
      cyc = std::max(cyc, s.cycle[e.src] +
                              dm.latencyCycles(g, e.src, opts.tcpNs) -
                              static_cast<int>(e.dist) * opts.ii);
    }
    s.cycle[v] = std::min(cyc, opts.maxLatency);
    s.startNs[v] = 0.0;
  }

  // Loop-carried upper bounds over everything (greedy ASAP is earliest
  // possible for this cover, so a violation means failure at this II).
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    for (const Edge& e : n.operands) {
      if (!schedulable(g.node(e.src))) continue;
      if (s.cycle[e.src] + dm.latencyCycles(g, e.src, opts.tcpNs) >
          s.cycle[v] + static_cast<int>(e.dist) * opts.ii) {
        result.error = "loop-carried dependence violated at II=" +
                       std::to_string(opts.ii);
        return result;
      }
    }
  }

  result.success = true;
  return result;
}

}  // namespace lamp::sched
