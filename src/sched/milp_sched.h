#ifndef LAMP_SCHED_MILP_SCHED_H
#define LAMP_SCHED_MILP_SCHED_H

/// \file milp_sched.h
/// Mapping-aware modulo scheduling as a mixed integer linear program —
/// Section 3.2 of the paper. The same builder covers both experimental
/// arms: MILP-base (pass cut::trivialCuts) and MILP-map (pass
/// cut::enumerateCuts).
///
/// Formulation (paper equation -> here):
///  - (2)(3)(4) LUT cover: binary c_{v,i} per selectable cut;
///    sum_i c_{v,i} <= 1; outputs/black boxes have their single port cut
///    pre-selected, which forces (3); boundary rooting (4) is emitted in
///    the aggregated per-pair form  sum_{i: u in cut_i} c_{v,i} <= root_u
///    (exactly equivalent given one selected cut per node, but one row per
///    distinct (u, v) pair instead of one per (u, i, v)).
///  - (5)(6) one-hot cycle assignment s_{v,t} over exact ASAP/ALAP windows;
///    S_v is substituted as the expression sum t*s_{v,t}.
///  - (7) dependence rows, generalized with black-box latencies:
///    S_u + lat_u <= S_v + II*dist.
///  - (8) cycle time: folded into variable bounds L_v <= Tcp - rem_v
///    (L_v = 0 for multi-cycle ops).
///  - (9) chaining rows in the aggregated per-pair form:
///    (S_u + lat_u - S_v - II*d)*Tcp + L_u - L_v + B_{u,d,v}*rem_u <= 0.
///  - (10)-(13) register counting in the equivalent lifetime form
///    (Eichenberger-style): lastUse_u >= S_v + II*d - M*(1 - B_{u,d,v}),
///    lastUse_u >= S_u + lat_u; FF bits = Bits(u)*(lastUse_u - S_u - lat_u).
///    Summing live_{v,t} over all t and all modulo slots (the paper's
///    sum_m Reg(m)) equals exactly this lifetime sum.
///  - (14) modulo resource rows for black-box classes.
///  - (15) objective: alpha * sum lutCost(v,i)*c_{v,i} + beta * FF bits.
///    lutCost refines Bits(v)*root_v by charging nothing for pure-wire
///    cones and carry-chain costs for wide arithmetic.

#include <string>

#include "lp/milp.h"
#include "sched/schedule.h"

namespace lamp::sched {

/// Which rendering of the register/chaining constraints to emit.
enum class Formulation : std::uint8_t {
  /// Aggregated boundary pairs + lifetime variables (default): one row
  /// per (u, v) pair and one continuous lastUse_u per value. Equivalent
  /// objective, far fewer rows.
  Compact,
  /// The paper's Eqs. (9)-(13) verbatim: one chaining row per
  /// (v, cut i, u in cut), binary-free live_{v,t} variables constrained
  /// by def/kill sums, Reg(m) summed per modulo slot.
  Literal,
};

struct MilpSchedOptions {
  int ii = 1;
  double tcpNs = 10.0;
  double alpha = 0.5;  ///< LUT weight in (15)
  double beta = 0.5;   ///< register weight in (15)
  Formulation formulation = Formulation::Compact;
  /// Hard latency bound M (a member of constraint set C). Callers usually
  /// pass the SDC schedule's latency plus a small margin.
  int maxLatency = 16;
  /// Refuse to build models beyond this many rows: the dense-basis
  /// simplex would thrash (memory is O(rows^2)). Callers fall back to the
  /// greedy mapping-aware heuristic — mirroring the paper's observation
  /// that the exact ILP does not scale and a heuristic must take over.
  std::size_t maxRows = 6000;
  ResourceLimits resources;
  lp::MilpOptions solver;
  /// When set, the fully built model is dumped in CPLEX LP format before
  /// solving (inspection / debugging; lampc --emit-lp).
  std::ostream* dumpModel = nullptr;
  /// Optional feasible schedule used as the warm-start incumbent.
  const Schedule* warmStart = nullptr;
  /// When true, warmStart->selectedCut indexes *this* cut database and is
  /// honored (e.g. a greedyMapSchedule result); otherwise every
  /// materialized node warm-starts on its unit cut.
  bool warmStartSelectsCuts = false;
};

struct MilpSchedResult {
  bool success = false;
  std::string error;
  Schedule schedule;

  lp::SolveStatus status = lp::SolveStatus::Error;
  double objective = 0.0;
  double bestBound = 0.0;
  /// Objective components at the returned schedule.
  double lutTerm = 0.0;
  double regTerm = 0.0;

  double buildSeconds = 0.0;
  double solveSeconds = 0.0;
  std::int64_t branchNodes = 0;
  std::int64_t prunedNodes = 0;
  std::int64_t steals = 0;
  std::int64_t simplexIterations = 0;
  std::int64_t dualPivots = 0;
  std::int64_t coldSolves = 0;
  std::size_t numVars = 0;
  std::size_t numConstraints = 0;
  std::size_t numCuts = 0;
};

/// Builds and solves the modulo-scheduling MILP over the given cut
/// database. The database decides the arm: trivialCuts => MILP-base,
/// enumerateCuts => MILP-map.
MilpSchedResult milpSchedule(const ir::Graph& g, const cut::CutDatabase& db,
                             const DelayModel& dm,
                             const MilpSchedOptions& opts = {});

}  // namespace lamp::sched

#endif  // LAMP_SCHED_MILP_SCHED_H
