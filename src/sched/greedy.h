#ifndef LAMP_SCHED_GREEDY_H
#define LAMP_SCHED_GREEDY_H

/// \file greedy.h
/// Scalable mapping-aware heuristic scheduler — the "future work" of the
/// paper's Section 5, used here both as a standalone method and as the
/// warm-start incumbent for the MILP.
///
/// Two phases:
///  1. global area-oriented cut cover (area-flow selection over the whole
///     CDFG, starting from the primary outputs and black-box ports);
///  2. list scheduling of the contracted root graph: each selected root
///     is an atomic unit with its mapped delay (one LUT level / carry /
///     black-box), chained within the clock period like the SDC scheduler
///     chains operations — but over LUTs instead of operations.

#include "cut/cut.h"
#include "sched/sdc.h"

namespace lamp::sched {

/// Mapping-aware greedy schedule over the given cut database. With a
/// trivial-cut database this degenerates to SDC scheduling with mapped
/// delays. Options reuse SdcOptions (II, Tcp, resources, latency bound).
SdcResult greedyMapSchedule(const ir::Graph& g, const cut::CutDatabase& db,
                            const DelayModel& dm, const SdcOptions& opts = {});

}  // namespace lamp::sched

#endif  // LAMP_SCHED_GREEDY_H
