#include "sched/milp_sched.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <optional>

#include "ir/passes.h"
#include "obs/trace.h"

namespace lamp::sched {

using cut::Cut;
using cut::CutElement;
using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;
using lp::LinExpr;
using lp::Sense;
using lp::Var;

namespace {

bool schedulable(const Node& n) { return n.kind != OpKind::Const; }

bool hasCutVars(const Graph& g, NodeId v) {
  return ir::isLutMappable(g.node(v).kind);
}

/// One boundary pair (u consumed as a cut element of v at distance d).
struct Pair {
  NodeId u = ir::kNoNode;
  NodeId v = ir::kNoNode;
  std::uint32_t dist = 0;
  std::vector<int> cutIdx;  ///< cuts of v containing (u, d); empty if the
                            ///< consumer's cut is pre-selected (B == 1)
  bool fixed = false;
};

}  // namespace

MilpSchedResult milpSchedule(const Graph& g, const cut::CutDatabase& db,
                             const DelayModel& dm,
                             const MilpSchedOptions& opts) {
  using Clock = std::chrono::steady_clock;
  const auto tBuild = Clock::now();
  std::optional<obs::Span> buildSpan;
  buildSpan.emplace("milp_build", "milp");

  MilpSchedResult result;
  const Windows win =
      computeWindows(g, dm, opts.ii, opts.tcpNs, opts.maxLatency);
  if (!win.feasible) {
    result.error = "window computation: II or latency bound infeasible";
    return result;
  }

  lp::Model model(g.name() + "_milp");

  // --- variables -------------------------------------------------------------
  const Var noVar = lp::kNoVar;
  std::vector<std::vector<Var>> sVar(g.size());  // indexed by t - asap
  std::vector<Var> lVar(g.size(), noVar);
  std::vector<Var> lastUseVar(g.size(), noVar);
  std::vector<std::vector<Var>> cVar(g.size());

  std::vector<int> lat(g.size(), 0);
  std::vector<double> rem(g.size(), 0.0);
  for (NodeId v = 0; v < g.size(); ++v) {
    if (!schedulable(g.node(v))) continue;
    lat[v] = dm.latencyCycles(g, v, opts.tcpNs);
    rem[v] = dm.remainderNs(g, v, opts.tcpNs);
  }

  const auto sExpr = [&](NodeId v) {
    LinExpr e;
    if (g.node(v).kind == OpKind::Input) return e;  // fixed at 0
    for (int t = win.asap[v]; t <= win.alap[v]; ++t) {
      e.add(sVar[v][t - win.asap[v]], t);
    }
    return e;
  };

  const auto& fanouts = g.fanouts();
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    const std::string base = "n" + std::to_string(v);
    if (n.kind != OpKind::Input) {
      sVar[v].resize(win.alap[v] - win.asap[v] + 1);
      for (int t = win.asap[v]; t <= win.alap[v]; ++t) {
        sVar[v][t - win.asap[v]] =
            model.addBinary(base + "_s" + std::to_string(t));
      }
      const double lub = lat[v] > 0 ? 0.0 : opts.tcpNs - rem[v];
      lVar[v] = model.addContinuous(0.0, std::max(0.0, lub), base + "_L");
    }
    if (hasCutVars(g, v)) {
      cVar[v].resize(db.at(v).cuts.size());
      for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
        cVar[v][i] = model.addBinary(base + "_c" + std::to_string(i));
      }
      result.numCuts += db.at(v).cuts.size();
    }
    if (opts.formulation == Formulation::Compact && !fanouts[v].empty() &&
        n.width > 0) {
      lastUseVar[v] = model.addContinuous(
          0.0, opts.maxLatency + 64.0, base + "_lu");
    }
  }
  const bool literal = opts.formulation == Formulation::Literal;
  // live_{u,t} variables (Literal mode only), created on demand. They are
  // binary in the paper; with a minimizing objective and the >= rows of
  // (12) they take 0/1 values automatically, so continuous [0,1] is exact.
  std::map<std::pair<NodeId, int>, Var> liveVar;
  const auto liveOf = [&](NodeId u, int t) {
    const auto key = std::make_pair(u, t);
    const auto it = liveVar.find(key);
    if (it != liveVar.end()) return it->second;
    const Var v = model.addContinuous(
        0.0, 1.0, "live_n" + std::to_string(u) + "_t" + std::to_string(t));
    liveVar.emplace(key, v);
    return v;
  };
  // def_{u,t}: 1 iff u's result is available on or before cycle t (10).
  const auto defExpr = [&](NodeId u, int t) {
    LinExpr e;
    if (g.node(u).kind == OpKind::Input) {
      e.addConstant(1.0);
      return e;
    }
    for (int z = win.asap[u]; z <= win.alap[u] && z <= t - lat[u]; ++z) {
      e.add(sVar[u][z - win.asap[u]], 1.0);
    }
    return e;
  };
  // kill_{v,t} for a consumer at distance d: 1 iff v has executed, in the
  // producer's iteration frame, on or before cycle t (11).
  const auto killExpr = [&](NodeId v, int t, int d) {
    LinExpr e;
    if (g.node(v).kind == OpKind::Input) {
      e.addConstant(1.0);
      return e;
    }
    for (int z = win.asap[v];
         z <= win.alap[v] && z + opts.ii * d <= t; ++z) {
      e.add(sVar[v][z - win.asap[v]], 1.0);
    }
    return e;
  };
  // Pre-selected port cuts still count as cuts for statistics.
  for (NodeId v = 0; v < g.size(); ++v) {
    if (schedulable(g.node(v)) && !hasCutVars(g, v) &&
        !db.at(v).cuts.empty()) {
      ++result.numCuts;
    }
  }

  const auto rootExpr = [&](NodeId u) {
    LinExpr e;
    for (const Var cv : cVar[u]) e.add(cv, 1.0);
    return e;
  };

  // --- one-hot cycle assignment (5)(6) ---------------------------------------
  std::vector<std::pair<std::vector<Var>, std::vector<double>>> sosGroups;
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n) || n.kind == OpKind::Input) continue;
    LinExpr onehot;
    std::vector<double> pos;
    for (std::size_t k = 0; k < sVar[v].size(); ++k) {
      onehot.add(sVar[v][k], 1.0);
      pos.push_back(win.asap[v] + static_cast<double>(k));
    }
    model.addConstraint(onehot, Sense::Eq, 1.0,
                        "onehot_n" + std::to_string(v));
    if (sVar[v].size() > 1) sosGroups.emplace_back(sVar[v], pos);
  }

  // --- at most one cut per node (2) -------------------------------------------
  for (NodeId v = 0; v < g.size(); ++v) {
    if (cVar[v].size() > 1) {
      model.addConstraint(rootExpr(v), Sense::Le, 1.0,
                          "root_n" + std::to_string(v));
    }
  }

  // --- dependence rows (7) ------------------------------------------------------
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    for (const Edge& e : n.operands) {
      if (!schedulable(g.node(e.src))) continue;
      const int offset = lat[e.src] - static_cast<int>(e.dist) * opts.ii;
      // Statically satisfied?
      if (win.alap[e.src] + offset <= win.asap[v]) continue;
      LinExpr row = sExpr(e.src);
      row.add(sExpr(v), -1.0);
      model.addConstraint(row, Sense::Le, -offset,
                          "dep_n" + std::to_string(e.src) + "_n" +
                              std::to_string(v));
    }
  }

  // --- boundary pairs: rooting (4), chaining (9), liveness (10-13) -------------
  std::vector<Pair> pairs;
  {
    std::map<std::tuple<NodeId, NodeId, std::uint32_t>, std::size_t> index;
    for (NodeId v = 0; v < g.size(); ++v) {
      const Node& n = g.node(v);
      if (!schedulable(n) || db.at(v).cuts.empty()) continue;
      const bool fixed = !hasCutVars(g, v);
      for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
        for (const CutElement& e : db.at(v).cuts[i].elements) {
          if (!schedulable(g.node(e.node))) continue;
          const auto key = std::make_tuple(e.node, v, e.dist);
          auto it = index.find(key);
          if (it == index.end()) {
            it = index.emplace(key, pairs.size()).first;
            pairs.push_back(Pair{e.node, v, e.dist, {}, fixed});
          }
          if (!fixed) pairs[it->second].cutIdx.push_back(static_cast<int>(i));
        }
      }
    }
  }

  for (const Pair& p : pairs) {
    const auto bExpr = [&]() {
      LinExpr b;
      if (p.fixed) {
        b.addConstant(1.0);
      } else {
        for (const int i : p.cutIdx) b.add(cVar[p.v][i], 1.0);
      }
      return b;
    };
    const std::string tag =
        "_n" + std::to_string(p.u) + "_n" + std::to_string(p.v);

    // Selection weights for this pair: either one aggregated B expression
    // (Compact) or one term per cut (Literal, the paper's per-(v,i,u)
    // rows).
    std::vector<std::pair<LinExpr, std::string>> selections;
    if (!literal || p.fixed) {
      selections.emplace_back(bExpr(), tag);
    } else {
      for (const int i : p.cutIdx) {
        selections.emplace_back(LinExpr::term(cVar[p.v][i], 1.0),
                                tag + "_c" + std::to_string(i));
      }
    }

    // (4) rooting: selection <= root_u (skip implicit roots).
    if (hasCutVars(g, p.u)) {
      for (const auto& [sel, stag] : selections) {
        LinExpr row = sel;
        row.add(rootExpr(p.u), -1.0);
        model.addConstraint(row, Sense::Le, 0.0, "cover" + stag);
      }
    }

    // (9) chaining: skip when the windows make the row inactive.
    const int d = static_cast<int>(p.dist);
    {
      const double maxLhs =
          (win.alap[p.u] + lat[p.u] - win.asap[p.v] - opts.ii * d) *
              opts.tcpNs +
          (opts.tcpNs - rem[p.u]) - 0.0 + rem[p.u];
      // Rows with an Input producer are vacuous: S_u = 0, L_u = 0,
      // rem_u = 0 makes the LHS <= 0 for any schedule of v.
      const bool uIsInput = g.node(p.u).kind == OpKind::Input;
      if (maxLhs > 1e-9 && !uIsInput) {
        for (const auto& [sel, stag] : selections) {
          LinExpr row = sExpr(p.u);
          row.add(sExpr(p.v), -1.0);
          LinExpr scaled;  // scale the cycle part by Tcp
          scaled.add(row, opts.tcpNs);
          scaled.add(lVar[p.u], 1.0);
          scaled.add(lVar[p.v], -1.0);
          if (rem[p.u] > 0.0) scaled.add(sel, rem[p.u]);
          model.addConstraint(scaled, Sense::Le,
                              -(lat[p.u] - opts.ii * d) * opts.tcpNs,
                              "chain" + stag);
        }
      }
    }

    if (!literal) {
      // Liveness, lifetime form: lastUse_u >= S_v + II*d - M*(1 - B).
      if (lastUseVar[p.u] != noVar) {
        const double bigM = win.alap[p.v] + opts.ii * d + 1.0;
        // Static skip: consumption can never happen after definition.
        if (win.alap[p.v] + opts.ii * d > win.asap[p.u] + lat[p.u]) {
          LinExpr row = sExpr(p.v);
          row.add(lastUseVar[p.u], -1.0);
          row.add(bExpr(), bigM);
          model.addConstraint(row, Sense::Le, bigM - opts.ii * d,
                              "live" + tag);
        }
      }
    } else if (g.node(p.u).width > 0) {
      // Liveness, the paper's (12): for every cycle t where u can be
      // defined and v not yet executed,
      //   def_{u,t} - kill_{v,t} - (1 - c_{v,i}) <= live_{u,t}.
      const int tLo = std::max(
          0, g.node(p.u).kind == OpKind::Input ? 0
                                               : win.asap[p.u] + lat[p.u]);
      const int tHi = win.alap[p.v] + opts.ii * d - 1;
      for (int t = tLo; t <= tHi; ++t) {
        for (const auto& [sel, stag] : selections) {
          LinExpr row = defExpr(p.u, t);
          row.add(killExpr(p.v, t, d), -1.0);
          row.add(liveOf(p.u, t), -1.0);
          if (!p.fixed) row.add(sel, 1.0);
          model.addConstraint(row, Sense::Le, p.fixed ? 0.0 : 1.0,
                              "live" + stag + "_t" + std::to_string(t));
        }
      }
    }
  }

  // lastUse_u >= S_u + lat_u keeps lifetimes non-negative (Compact only).
  for (NodeId u = 0; u < g.size(); ++u) {
    if (lastUseVar[u] == noVar) continue;
    LinExpr row = sExpr(u);
    row.add(lastUseVar[u], -1.0);
    model.addConstraint(row, Sense::Le, -lat[u],
                        "lu_lb_n" + std::to_string(u));
  }

  // --- modulo resource rows (14) ------------------------------------------------
  for (const auto& [rc, limit] : opts.resources) {
    for (int m = 0; m < opts.ii; ++m) {
      LinExpr row;
      for (NodeId v = 0; v < g.size(); ++v) {
        const Node& n = g.node(v);
        if (!ir::isBlackBox(n.kind) || n.resourceClass() != rc) continue;
        for (int t = win.asap[v]; t <= win.alap[v]; ++t) {
          if (t % opts.ii == m) row.add(sVar[v][t - win.asap[v]], 1.0);
        }
      }
      if (!row.terms().empty()) {
        model.addConstraint(row, Sense::Le, limit,
                            "res_" +
                                std::string(ir::resourceClassName(rc)) +
                                "_m" + std::to_string(m));
      }
    }
  }

  // --- objective (15) -------------------------------------------------------------
  LinExpr objective;
  for (NodeId v = 0; v < g.size(); ++v) {
    for (std::size_t i = 0; i < cVar[v].size(); ++i) {
      const int cost = db.at(v).cuts[i].lutCost;
      if (cost > 0) objective.add(cVar[v][i], opts.alpha * cost);
    }
    if (lastUseVar[v] != noVar) {
      const double bits = g.node(v).width;
      objective.add(lastUseVar[v], opts.beta * bits);
      objective.add(sExpr(v), -opts.beta * bits);
      objective.addConstant(-opts.beta * bits * lat[v]);
    }
  }
  // Literal register term: sum_m Reg(m) = sum over all (u, t) of
  // Bits(u) * live_{u,t} (13).
  for (const auto& [key, lv] : liveVar) {
    objective.add(lv, opts.beta * g.node(key.first).width);
  }
  model.setObjective(objective);

  result.numVars = model.numVars();
  result.numConstraints = model.numConstraints();
  result.buildSeconds =
      std::chrono::duration<double>(Clock::now() - tBuild).count();
  buildSpan->endArgs(
      obs::traceArg("numConstraints",
                    static_cast<double>(model.numConstraints())));
  buildSpan.reset();
  if (opts.dumpModel != nullptr) model.writeLp(*opts.dumpModel);
  if (model.numConstraints() > opts.maxRows) {
    result.status = lp::SolveStatus::NoSolution;
    result.error = "MILP too large for the dense-basis solver (" +
                   std::to_string(model.numConstraints()) + " rows > " +
                   std::to_string(opts.maxRows) +
                   "); use the greedy mapping-aware heuristic";
    return result;
  }

  // --- warm start -------------------------------------------------------------------
  lp::MilpSolver solver(model, opts.solver);
  for (auto& [vars, pos] : sosGroups) {
    solver.addSos1Group(vars, pos);
  }
  if (opts.warmStart != nullptr) {
    const Schedule& ws = *opts.warmStart;
    std::vector<double> x(model.numVars(), 0.0);
    bool ok = ws.cycle.size() == g.size();

    // Which cut each node warm-starts on: the schedule's own selection
    // when its indices target this database, else the unit fallback.
    std::vector<int> selCut(g.size(), -1);
    for (NodeId v = 0; ok && v < g.size(); ++v) {
      const Node& n = g.node(v);
      if (!schedulable(n) || db.at(v).cuts.empty()) continue;
      if (!hasCutVars(g, v)) {
        selCut[v] = 0;  // port cut, pre-selected
        continue;
      }
      if (opts.warmStartSelectsCuts) {
        if (ws.selectedCut[v] >= static_cast<int>(db.at(v).cuts.size())) {
          ok = false;
          break;
        }
        selCut[v] = ws.selectedCut[v];
      } else {
        for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
          if (db.at(v).cuts[i].isUnit) selCut[v] = static_cast<int>(i);
        }
        if (selCut[v] < 0) ok = false;
      }
    }

    // Cycle assignment + cut variables.
    const auto sCycle = [&](NodeId v) {
      return g.node(v).kind == OpKind::Input ? 0 : ws.cycle[v];
    };
    for (NodeId v = 0; ok && v < g.size(); ++v) {
      const Node& n = g.node(v);
      if (!schedulable(n)) continue;
      if (n.kind != OpKind::Input) {
        const int t = ws.cycle[v];
        if (t < win.asap[v] || t > win.alap[v]) {
          ok = false;
          break;
        }
        x[sVar[v][t - win.asap[v]]] = 1.0;
      }
      if (!cVar[v].empty() && selCut[v] >= 0) x[cVar[v][selCut[v]]] = 1.0;
    }

    if (ok) {
      // Whether pair (u, v, d) is an active boundary of v's selected cut.
      const auto pairActive = [&](const Pair& p) {
        if (p.fixed) return true;
        if (selCut[p.v] < 0) return false;
        return db.at(p.v).cuts[selCut[p.v]].containsElement(p.u, p.dist);
      };

      // L values: the model forces L monotone along *every* enumerated
      // boundary pair within a cycle (active pairs additionally add the
      // producer's delay), so recompute rather than trusting ws.startNs.
      // Two passes settle same-clock chains across back edges.
      std::vector<double> L(g.size(), 0.0);
      for (int pass = 0; pass < 2; ++pass) {
        for (const NodeId v : ir::topologicalOrder(g)) {
          if (!schedulable(g.node(v)) ||
              g.node(v).kind == OpKind::Input) {
            continue;
          }
          double need = 0.0;
          for (const Pair& p : pairs) {
            if (p.v != v) continue;
            if (g.node(p.u).kind == OpKind::Input) continue;
            const double diff =
                (sCycle(p.u) + lat[p.u] - sCycle(v) -
                 opts.ii * static_cast<int>(p.dist)) *
                opts.tcpNs;
            const double bonus = pairActive(p) ? rem[p.u] : 0.0;
            need = std::max(need, L[p.u] + bonus + diff);
          }
          L[v] = std::max(0.0, need);
        }
      }
      for (NodeId v = 0; v < g.size(); ++v) {
        if (lVar[v] == noVar) continue;
        x[lVar[v]] = L[v];
      }

      // lastUse from active boundary pairs (plus the definition itself).
      for (const Pair& p : pairs) {
        if (lastUseVar[p.u] == noVar || !pairActive(p)) continue;
        const double use =
            sCycle(p.v) + opts.ii * static_cast<double>(p.dist);
        x[lastUseVar[p.u]] = std::max(x[lastUseVar[p.u]], use);
      }
      for (NodeId u = 0; u < g.size(); ++u) {
        if (lastUseVar[u] == noVar) continue;
        x[lastUseVar[u]] =
            std::max(x[lastUseVar[u]], double(sCycle(u) + lat[u]));
      }
      // Literal live_{u,t}: 1 on cycles where u is defined and an active
      // consumer has not yet executed.
      for (const Pair& p : pairs) {
        if (!pairActive(p)) continue;
        const int def = (g.node(p.u).kind == OpKind::Input ? 0 : sCycle(p.u)) +
                        lat[p.u];
        const int use = sCycle(p.v) + opts.ii * static_cast<int>(p.dist);
        for (int t = def; t < use; ++t) {
          const auto it = liveVar.find({p.u, t});
          if (it != liveVar.end()) x[it->second] = 1.0;
        }
      }
      solver.setInitialIncumbent(std::move(x));
    }
  }

  // --- solve & extract ----------------------------------------------------------------
  const lp::Solution sol = solver.solve();
  result.status = sol.status;
  result.objective = sol.objective;
  result.bestBound = sol.bestBound;
  result.solveSeconds = sol.wallSeconds;
  result.branchNodes = sol.branchNodes;
  result.prunedNodes = sol.prunedNodes;
  result.steals = sol.steals;
  result.simplexIterations = sol.simplexIterations;
  result.dualPivots = sol.dualPivots;
  result.coldSolves = sol.coldSolves;
  if (!sol.feasible()) {
    result.error = std::string("MILP: ") +
                   std::string(lp::solveStatusName(sol.status));
    return result;
  }

  Schedule& s = result.schedule;
  s.ii = opts.ii;
  s.tcpNs = opts.tcpNs;
  s.cycle.assign(g.size(), kUnscheduled);
  s.startNs.assign(g.size(), 0.0);
  s.selectedCut.assign(g.size(), kAbsorbed);
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!schedulable(n)) continue;
    if (n.kind == OpKind::Input) {
      s.cycle[v] = 0;
    } else {
      for (std::size_t k = 0; k < sVar[v].size(); ++k) {
        if (sol.value(sVar[v][k]) > 0.5) {
          s.cycle[v] = win.asap[v] + static_cast<int>(k);
        }
      }
      s.startNs[v] = std::max(0.0, sol.value(lVar[v]));
    }
    if (!db.at(v).cuts.empty()) {
      if (!hasCutVars(g, v)) {
        s.selectedCut[v] = 0;  // pre-selected port cut
      } else {
        for (std::size_t i = 0; i < cVar[v].size(); ++i) {
          if (sol.value(cVar[v][i]) > 0.5) {
            s.selectedCut[v] = static_cast<int>(i);
          }
        }
      }
    }
  }

  // Objective components at the solution.
  for (NodeId v = 0; v < g.size(); ++v) {
    if (s.isRoot(v) && hasCutVars(g, v)) {
      result.lutTerm += opts.alpha * db.at(v).cuts[s.selectedCut[v]].lutCost;
    }
    if (lastUseVar[v] != noVar) {
      const double sv = g.node(v).kind == OpKind::Input ? 0.0 : s.cycle[v];
      result.regTerm += opts.beta * g.node(v).width *
                        (sol.value(lastUseVar[v]) - sv - lat[v]);
    }
  }
  for (const auto& [key, lv] : liveVar) {
    result.regTerm += opts.beta * g.node(key.first).width * sol.value(lv);
  }

  result.success = true;
  return result;
}

}  // namespace lamp::sched
