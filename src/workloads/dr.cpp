#include "ir/builder.h"
#include "ir/passes.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::ResourceClass;
using ir::Value;

Benchmark makeDr(Scale scale) {
  // Digit recognition via k-nearest-neighbours: per training sample,
  // Hamming distance between the test digit and a stored digit (xor +
  // popcount tree of narrow adds — prime LUT-packing territory), then a
  // loop-carried running minimum with its index.
  const int bits = scale == Scale::Paper ? 49 : 25;
  GraphBuilder b("dr" + std::to_string(bits));
  Value test = b.input("test", static_cast<std::uint16_t>(bits));
  Value idx = b.input("idx", 10);

  Value train =
      b.load(ResourceClass::MemPortA, idx, static_cast<std::uint16_t>(bits),
             "train");
  Value diff = b.bxor(test, train, "diff");

  // Popcount tree: widths grow 1 -> 6.
  std::vector<Value> layer;
  for (int i = 0; i < bits; ++i) layer.push_back(b.bit(diff, i));
  std::uint16_t w = 1;
  while (layer.size() > 1) {
    ++w;
    std::vector<Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.add(b.zext(layer[i], w), b.zext(layer[i + 1], w)));
    }
    if (layer.size() % 2) next.push_back(b.zext(layer.back(), w));
    layer = std::move(next);
  }
  Value dist = b.zext(layer[0], 8, "dist");

  // Running minimum distance + argmin index across the stream.
  Value bestPh = b.placeholder(8, "best");
  Value bestIdxPh = b.placeholder(10, "bestIdx");
  Value initPh = b.placeholder(1, "seen");
  Value seenPrev = Value{initPh.id, 1};
  Value better = b.lt(dist, Value{bestPh.id, 1}, false, "better");
  // Replace when this is the first sample or strictly better.
  Value take = b.bor(b.bnot(seenPrev), better, "take");
  Value bestNext = b.mux(take, dist, Value{bestPh.id, 1}, "best_next");
  Value bestIdxNext =
      b.mux(take, idx, Value{bestIdxPh.id, 1}, "best_idx_next");
  Value seenNext = b.bor(seenPrev, b.constant(1, 1), "seen_next");
  b.bindPlaceholder(bestPh, bestNext);
  b.bindPlaceholder(bestIdxPh, bestIdxNext);
  b.bindPlaceholder(initPh, seenNext);
  b.output(bestNext, "best");
  b.output(bestIdxNext, "bestIdx");

  Benchmark bm;
  bm.name = "DR";
  bm.domain = "Machine Learning";
  bm.description = "Digit recognition using k-nearest neighbours algorithm";
  bm.graph = ir::compact(b.graph());
  bm.resources[ResourceClass::MemPortA] = 1;
  bm.initMemory = [bits](sim::Memory& mem) {
    std::vector<std::uint64_t> bank(1024);
    std::uint64_t s = 0x1234567890ABCDEFull;
    for (auto& wd : bank) {
      s = s * 6364136223846793005ull + 1442695040888963407ull;
      wd = (s >> 8) & ((bits >= 64 ? 0 : (1ull << bits)) - 1);
    }
    mem.setBank(ResourceClass::MemPortA, bank);
  };
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    f[ins[0]] = 0x15A5F0F0F5ull ^ (seed * 0x9E37ull);  // the test digit
    f[ins[1]] = iter & 1023;                           // streaming index
    return f;
  };
  return bm;
}

}  // namespace lamp::workloads
