#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::Value;

namespace {

/// One reduction element: zero flag (1 bit) and leading-zero count
/// (valid only when the block is not all-zero).
struct Block {
  Value zero;
  Value count;
};

}  // namespace

Benchmark makeClz(Scale scale) {
  const int width = scale == Scale::Paper ? 64 : 32;
  GraphBuilder b("clz" + std::to_string(width));
  Value x = b.input("x", static_cast<std::uint16_t>(width));

  // Base layer: 2-bit blocks (high bit first).
  std::vector<Block> layer;
  for (int i = width - 2; i >= 0; i -= 2) {
    Value hi = b.bit(x, i + 1);
    Value lo = b.bit(x, i);
    Block blk;
    blk.zero = b.bnot(b.bor(hi, lo));
    blk.count = b.bnot(hi);  // 0 leading zeros when the high bit is set
    layer.push_back(blk);
  }

  // Pairwise combination: count gains one bit per level.
  while (layer.size() > 1) {
    std::vector<Block> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      const Block& hiB = layer[i];      // more significant half
      const Block& loB = layer[i + 1];
      Block c;
      c.zero = b.band(hiB.zero, loB.zero);
      // If the high half is all zero, count = blockBits + low count,
      // which is exactly {1, loCount}; otherwise {0, hiCount}.
      Value inner = b.mux(hiB.zero, loB.count, hiB.count);
      c.count = b.concat(hiB.zero, inner);
      next.push_back(c);
    }
    layer = std::move(next);
  }

  // Full-zero handling: output width fits the value `width` itself.
  std::uint16_t w = 1;
  while ((1 << w) < width + 1) ++w;
  Value count = b.zext(layer[0].count, w);
  Value all = b.constant(static_cast<std::uint64_t>(width), w);
  Value result = b.mux(layer[0].zero, all, count);
  b.output(result, "clz");

  Benchmark bm;
  bm.name = "CLZ";
  bm.domain = "Kernel";
  bm.description = "Count the number of leading zeros in a " +
                   std::to_string(width) + "-bit value";
  bm.graph = b.take();
  bm.makeInputs = [width](std::uint64_t iter, std::uint32_t seed) {
    // Mix of random values and values with long zero prefixes.
    std::uint64_t v = (iter * 2654435761u) ^ (seed * 40503u) ^ (seed >> 3);
    if (iter % 4 == 1) v >>= (iter % 61);
    if (iter % 7 == 2) v = 0;
    return sim::InputFrame{{0, v & (width >= 64 ? ~0ull
                                                : ((1ull << width) - 1))}};
  };
  return bm;
}

}  // namespace lamp::workloads
