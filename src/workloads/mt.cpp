#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::ResourceClass;
using ir::Value;

Benchmark makeMt(Scale scale) {
  // One Mersenne Twister step: state mix of mt[i], mt[i+1], mt[i+397]
  // (BRAM loads — black boxes) followed by the tempering network (pure
  // shift/xor/and logic, richly LUT-packable). Scale::Paper generates two
  // independent lanes, as a dual-stream PRNG would.
  const int lanes = scale == Scale::Paper ? 2 : 1;
  GraphBuilder b("mt");
  std::vector<Value> idxIn;
  for (int l = 0; l < lanes; ++l) {
    idxIn.push_back(b.input("i" + std::to_string(l), 10));
  }
  for (int l = 0; l < lanes; ++l) {
    Value idx = idxIn[l];
    Value one = b.constant(1, 10);
    Value off = b.constant(397, 10);
    Value mtI = b.load(ResourceClass::MemPortA, idx, 32, "mt_i");
    Value mtI1 = b.load(ResourceClass::MemPortA, b.add(idx, one), 32, "mt_i1");
    Value mtI397 =
        b.load(ResourceClass::MemPortB, b.add(idx, off), 32, "mt_i397");

    Value upper = b.band(mtI, b.constant(0x80000000u, 32));
    Value lower = b.band(mtI1, b.constant(0x7FFFFFFFu, 32));
    Value x = b.bor(upper, lower, "x");
    Value xsh = b.shr(x, 1);
    Value matA = b.constant(0x9908B0DFu, 32);
    Value zero = b.constant(0, 32);
    Value xA = b.bxor(xsh, b.mux(b.bit(x, 0), matA, zero), "xA");
    Value y = b.bxor(mtI397, xA, "mix");

    y = b.bxor(y, b.shr(y, 11));
    y = b.bxor(y, b.band(b.shl(y, 7), b.constant(0x9D2C5680u, 32)));
    y = b.bxor(y, b.band(b.shl(y, 15), b.constant(0xEFC60000u, 32)));
    y = b.bxor(y, b.shr(y, 18));
    b.output(y, "rnd" + std::to_string(l));
  }

  Benchmark bm;
  bm.name = "MT";
  bm.domain = "Scientific Computing";
  bm.description = "Mersenne Twister pseudorandom number generation";
  bm.graph = b.take();
  bm.resources[ResourceClass::MemPortA] = 2 * lanes;  // dual-port BRAM
  bm.resources[ResourceClass::MemPortB] = 1 * lanes;
  bm.initMemory = [](sim::Memory& mem) {
    std::vector<std::uint64_t> bank(1024);
    std::uint32_t s = 19650218u;
    for (auto& w : bank) {
      s = 1812433253u * (s ^ (s >> 30)) + 1;
      w = s;
    }
    mem.setBank(ResourceClass::MemPortA, bank);
    mem.setBank(ResourceClass::MemPortB, bank);
  };
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    for (std::size_t l = 0; l < ins.size(); ++l) {
      f[ins[l]] = (iter * 7 + seed + l * 131) % 600;
    }
    return f;
  };
  return bm;
}

}  // namespace lamp::workloads
