#include "ir/builder.h"
#include "ir/passes.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::Value;

namespace {

Value xtime8(GraphBuilder& b, Value v, const std::string& name = {}) {
  Value hi = b.bit(v, 7);
  Value red = b.mux(hi, b.constant(0x1B, 8), b.constant(0, 8));
  return b.bxor(b.shl(v, 1), red, name);
}

/// v * x^k in GF(2^8) (constant multiplier alpha^k with alpha = x).
Value gfConstMul(GraphBuilder& b, Value v, int k) {
  Value acc = v;
  for (int i = 0; i < k; ++i) acc = xtime8(b, acc);
  return acc;
}

}  // namespace

Benchmark makeRs(Scale scale) {
  // Reed-Solomon decoder syndrome computation: for each syndrome j,
  // s_j <- alpha^j * s_j(prev iteration) + r, streaming one received
  // symbol per cycle. Loop-carried accumulators exercise exactly the
  // cyclic cut enumeration of Fig. 2. Larger alpha powers lengthen the
  // recurrence chain; the additive model cannot sustain II=1 beyond
  // alpha^2 at 10 ns, which is why Paper scale stresses the II logic.
  const int syndromes = scale == Scale::Paper ? 6 : 3;
  GraphBuilder b("rs" + std::to_string(syndromes));
  Value r = b.input("r", 8);

  std::vector<Value> syn;
  for (int j = 0; j < syndromes; ++j) {
    Value ph = b.placeholder(8, "s" + std::to_string(j));
    Value scaled = j == 0 ? Value{ph.id, 1} : gfConstMul(b, Value{ph.id, 1}, j);
    Value next = b.bxor(scaled, r, "s" + std::to_string(j) + "_next");
    b.bindPlaceholder(ph, next);
    b.output(next, "syn" + std::to_string(j));
    syn.push_back(next);
  }
  // Error detector: any syndrome non-zero.
  Value any = syn[0];
  for (std::size_t j = 1; j < syn.size(); ++j) any = b.bor(any, syn[j]);
  Value zero = b.constant(0, 8);
  b.output(b.ne(any, zero, "errFlag"), "err");

  Benchmark bm;
  bm.name = "RS";
  bm.domain = "Communication";
  bm.description = "Reed-Solomon decoder";
  bm.graph = ir::compact(b.graph());
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    return sim::InputFrame{
        {ins[0], (iter * 37 + seed * 11 + (iter >> 3)) & 0xFF}};
  };
  return bm;
}

}  // namespace lamp::workloads
