#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::Value;

Benchmark makeXorr(Scale scale) {
  // The HLS front-end unrolls `for (i) acc ^= a[i];` into a chain; the
  // paper's version was additionally tree-balanced but the algorithmic
  // story (many 1.37 ns xors forced into 2 stages by the additive model,
  // one LUT level chain after mapping) is identical.
  const int elements = scale == Scale::Paper ? 25 : 13;
  const int width = 32;
  GraphBuilder b("xorr" + std::to_string(elements));
  std::vector<Value> in;
  for (int i = 0; i < elements; ++i) {
    in.push_back(b.input("a" + std::to_string(i), width));
  }
  Value acc = in[0];
  for (int i = 1; i < elements; ++i) acc = b.bxor(acc, in[i]);
  b.output(acc, "xorr");

  Benchmark bm;
  bm.name = "XORR";
  bm.domain = "Kernel";
  bm.description = "XOR reduction for an array of elements";
  bm.graph = b.take();
  bm.makeInputs = [elements](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    std::uint64_t state = seed * 6364136223846793005ull + iter + 1;
    for (int i = 0; i < elements; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f[static_cast<ir::NodeId>(i)] = state >> 16;
    }
    return f;
  };
  return bm;
}

}  // namespace lamp::workloads
