#ifndef LAMP_WORKLOADS_WORKLOADS_H
#define LAMP_WORKLOADS_WORKLOADS_H

/// \file workloads.h
/// The paper's benchmark suite (Table 1), rebuilt as CDFG generators with
/// golden C++ references. Kernels: CLZ, XORR, GFMUL. Applications:
/// CORDIC, MT, AES, RS, DR, GSM.
///
/// Two sizes exist per benchmark: Scale::Default keeps MILP instances
/// laptop-scale (the paper capped CPLEX at 60 minutes on 2015 hardware;
/// we cap at seconds); Scale::Paper approaches the paper's op counts and
/// is expected to hit the solver cap, reproducing the Table 2 behaviour.

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "sched/schedule.h"
#include "sim/interp.h"

namespace lamp::workloads {

enum class Scale { Default, Paper };

/// A ready-to-run benchmark.
struct Benchmark {
  std::string name;
  std::string domain;       ///< Table 1 "Domain" column
  std::string description;  ///< Table 1 "Description" column
  ir::Graph graph;
  sched::ResourceLimits resources;
  /// Fills ROM/RAM banks (e.g. the AES S-box) before simulation.
  std::function<void(sim::Memory&)> initMemory;
  /// Draws one iteration's input frame from a PRNG (for validation runs).
  std::function<sim::InputFrame(std::uint64_t iteration, std::uint32_t seed)>
      makeInputs;
};

// --- kernels -----------------------------------------------------------------

/// Count leading zeros (paper: 64-bit). Built as the classic pairwise
/// (zero-flag, count) reduction tree — richly LUT-packable.
Benchmark makeClz(Scale scale);
/// XOR reduction over an array of elements (chain form after the HLS
/// front-end's naive unroll).
Benchmark makeXorr(Scale scale);
/// Galois-field GF(2^8) multiplication via shift/xor/conditional-reduce.
Benchmark makeGfmul(Scale scale);

// --- applications --------------------------------------------------------------

/// CORDIC rotation iterations (scientific computing).
Benchmark makeCordic(Scale scale);
/// Mersenne Twister: state mix + tempering, state in BRAM (black boxes).
Benchmark makeMt(Scale scale);
/// AES round column(s): S-box ROM loads, MixColumns, AddRoundKey.
Benchmark makeAes(Scale scale);
/// Reed-Solomon decoder syndrome cells with loop-carried accumulators.
Benchmark makeRs(Scale scale);
/// Digit recognition (kNN): Hamming distance popcount + running minimum.
Benchmark makeDr(Scale scale);
/// GSM: sliding-window maximum of |sample| (RPE block normalization).
Benchmark makeGsm(Scale scale);

/// All nine, in Table 1 order.
std::vector<Benchmark> allBenchmarks(Scale scale);

/// Wraps a user-supplied CDFG as a runnable Benchmark: deterministic
/// PRNG input frames, no memory init, no resource limits. Shared by the
/// lampc file loader and the lampd service so external graphs get
/// identical verification behaviour everywhere.
Benchmark benchmarkFromGraph(ir::Graph g, std::string description = "");

// --- golden references (for tests) ---------------------------------------------

/// Leading zeros of the low `width` bits of v (width if zero).
int clzRef(std::uint64_t v, int width);
/// GF(2^8) product modulo x^8+x^4+x^3+x+1 (0x11B).
std::uint8_t gfmulRef(std::uint8_t a, std::uint8_t b);
/// xtime chain: a * (x^k) in GF(2^8).
std::uint8_t gfmulByXkRef(std::uint8_t a, int k);
/// The AES S-box.
const std::array<std::uint8_t, 256>& aesSbox();
/// MixColumns on one column (after SubBytes), plus AddRoundKey.
std::array<std::uint8_t, 4> aesColumnRef(const std::array<std::uint8_t, 4>& s,
                                         const std::array<std::uint8_t, 4>& k);
/// Mersenne Twister reference: one state-mix + temper step.
std::uint32_t mtStepRef(std::uint32_t mtI, std::uint32_t mtI1,
                        std::uint32_t mtI397);
/// Population count.
int popcountRef(std::uint64_t v);

}  // namespace lamp::workloads

#endif  // LAMP_WORKLOADS_WORKLOADS_H
