#include "workloads/workloads.h"

namespace lamp::workloads {

std::vector<Benchmark> allBenchmarks(Scale scale) {
  std::vector<Benchmark> result;
  result.push_back(makeClz(scale));
  result.push_back(makeXorr(scale));
  result.push_back(makeGfmul(scale));
  result.push_back(makeCordic(scale));
  result.push_back(makeMt(scale));
  result.push_back(makeAes(scale));
  result.push_back(makeRs(scale));
  result.push_back(makeDr(scale));
  result.push_back(makeGsm(scale));
  return result;
}

}  // namespace lamp::workloads
