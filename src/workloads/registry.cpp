#include "workloads/workloads.h"

namespace lamp::workloads {

Benchmark benchmarkFromGraph(ir::Graph g, std::string description) {
  Benchmark bm;
  bm.name = g.name();
  bm.domain = "User";
  bm.description = std::move(description);
  bm.graph = std::move(g);
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    std::uint64_t state = seed * 0x9E3779B97F4A7C15ull + iter;
    for (const ir::NodeId id : ins) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f[id] = state >> 13;
    }
    return f;
  };
  return bm;
}

std::vector<Benchmark> allBenchmarks(Scale scale) {
  std::vector<Benchmark> result;
  result.push_back(makeClz(scale));
  result.push_back(makeXorr(scale));
  result.push_back(makeGfmul(scale));
  result.push_back(makeCordic(scale));
  result.push_back(makeMt(scale));
  result.push_back(makeAes(scale));
  result.push_back(makeRs(scale));
  result.push_back(makeDr(scale));
  result.push_back(makeGsm(scale));
  return result;
}

}  // namespace lamp::workloads
