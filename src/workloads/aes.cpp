#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::ResourceClass;
using ir::Value;

namespace {

Value xtime8(GraphBuilder& b, Value v) {
  Value hi = b.bit(v, 7);
  Value red = b.mux(hi, b.constant(0x1B, 8), b.constant(0, 8));
  return b.bxor(b.shl(v, 1), red);
}

}  // namespace

Benchmark makeAes(Scale scale) {
  // AES round column(s): SubBytes via S-box ROM (black-box loads),
  // MixColumns (xtime networks), AddRoundKey. Scale::Paper processes all
  // four columns of the state; Default one column.
  const int columns = scale == Scale::Paper ? 4 : 1;
  GraphBuilder b("aes" + std::to_string(columns));
  std::vector<Value> state, key;
  for (int i = 0; i < 4 * columns; ++i) {
    state.push_back(b.input("s" + std::to_string(i), 8));
  }
  for (int i = 0; i < 4 * columns; ++i) {
    key.push_back(b.input("k" + std::to_string(i), 8));
  }

  for (int c = 0; c < columns; ++c) {
    std::array<Value, 4> sb;
    for (int i = 0; i < 4; ++i) {
      sb[i] = b.load(ResourceClass::MemPortA,
                     b.zext(state[c * 4 + i], 10), 8,
                     "sbox" + std::to_string(c * 4 + i));
    }
    Value t = b.bxor(b.bxor(sb[0], sb[1]), b.bxor(sb[2], sb[3]), "t");
    for (int i = 0; i < 4; ++i) {
      Value pair = b.bxor(sb[i], sb[(i + 1) & 3]);
      Value mixed = b.bxor(b.bxor(sb[i], t), xtime8(b, pair));
      Value out = b.bxor(mixed, key[c * 4 + i]);
      b.output(out, "o" + std::to_string(c * 4 + i));
    }
  }

  Benchmark bm;
  bm.name = "AES";
  bm.domain = "Cryptography";
  bm.description = "Advanced Encryption Standard";
  bm.graph = b.take();
  bm.resources[ResourceClass::MemPortA] = 4 * columns;  // replicated ROMs
  bm.initMemory = [](sim::Memory& mem) {
    std::vector<std::uint64_t> rom(1024, 0);
    for (int i = 0; i < 256; ++i) rom[i] = aesSbox()[i];
    mem.setBank(ResourceClass::MemPortA, rom);
  };
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    std::uint64_t state = seed ^ (iter * 0xA24BAED4963EE407ull);
    for (const ir::NodeId id : ins) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f[id] = (state >> 29) & 0xFF;
    }
    return f;
  };
  return bm;
}

}  // namespace lamp::workloads
