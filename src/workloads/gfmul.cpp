#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::Value;

namespace {

/// xtime: multiply by x in GF(2^8) modulo 0x11B.
ir::Value xtime(GraphBuilder& b, Value v) {
  Value hi = b.bit(v, 7);
  Value shifted = b.shl(v, 1);
  Value poly = b.constant(0x1B, 8);
  Value zero = b.constant(0, 8);
  Value red = b.mux(hi, poly, zero);
  return b.bxor(shifted, red);
}

}  // namespace

Benchmark makeGfmul(Scale scale) {
  // Full 8 partial products in both scales (the kernel is already small);
  // Paper additionally widens to two parallel products.
  const int copies = scale == Scale::Paper ? 2 : 1;
  GraphBuilder b("gfmul");
  std::vector<Value> as, bs;
  for (int c = 0; c < copies; ++c) {
    as.push_back(b.input("a" + std::to_string(c), 8));
    bs.push_back(b.input("b" + std::to_string(c), 8));
  }
  for (int c = 0; c < copies; ++c) {
    Value a = as[c], bb = bs[c];
    Value zero = b.constant(0, 8);
    Value p = zero;
    Value aa = a;
    for (int i = 0; i < 8; ++i) {
      Value bi = b.bit(bb, i);
      Value term = b.mux(bi, aa, zero);
      p = i == 0 ? term : b.bxor(p, term);
      if (i < 7) aa = xtime(b, aa);
    }
    b.output(p, "p" + std::to_string(c));
  }

  Benchmark bm;
  bm.name = "GFMUL";
  bm.domain = "Kernel";
  bm.description = "Efficient Galois field multiplication";
  bm.graph = b.take();
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    std::uint64_t state = seed ^ (iter * 0x9E3779B97F4A7C15ull);
    for (const ir::NodeId id : ins) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f[id] = (state >> 24) & 0xFF;
    }
    return f;
  };
  return bm;
}

}  // namespace lamp::workloads
