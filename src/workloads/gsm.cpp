#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::Value;

Benchmark makeGsm(Scale scale) {
  // GSM full-rate RPE block normalization: |sample| via sign select, a
  // sliding-window maximum over the last W samples (loop-carried taps),
  // and the scale-factor thresholds used to normalize the block.
  const int window = scale == Scale::Paper ? 8 : 5;
  GraphBuilder b("gsm" + std::to_string(window));
  Value x = b.input("x", 16, true);
  Value zero = b.constant(0, 16);

  Value neg = b.lt(x, zero, true, "neg");  // sign test
  Value absx = b.mux(neg, b.sub(zero, x), x, "abs");

  // Window maximum over |x| taps from the previous iterations.
  Value mx = absx;
  for (int d = 1; d < window; ++d) {
    Value tap = Value{absx.id, static_cast<std::uint32_t>(d)};
    Value ge = b.ge(mx, tap, false, "ge" + std::to_string(d));
    mx = b.mux(ge, mx, tap, "mx" + std::to_string(d));
  }
  b.output(mx, "blockMax");

  // Scale factor: number of leading thresholds the max stays under.
  Value t1 = b.lt(mx, b.constant(1 << 14, 16), false);
  Value t2 = b.lt(mx, b.constant(1 << 12, 16), false);
  Value t3 = b.lt(mx, b.constant(1 << 10, 16), false);
  Value scaleBits = b.concat(t1, b.concat(t2, t3), "scaleBits");
  b.output(scaleBits, "scale");

  // Normalized sample at the coarse scale (shift by constant).
  Value shifted = b.shl(absx, 2, "norm2");
  Value normalized = b.mux(t2, shifted, absx, "normalized");
  b.output(normalized, "norm");

  Benchmark bm;
  bm.name = "GSM";
  bm.domain = "Communication";
  bm.description = "Global system for mobile communications";
  bm.graph = b.take();
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    const std::uint64_t v =
        (iter * 2246822519ull + seed * 374761393ull) & 0xFFFF;
    return sim::InputFrame{{ins[0], v}};
  };
  return bm;
}

}  // namespace lamp::workloads
