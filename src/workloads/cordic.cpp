#include "ir/builder.h"
#include "workloads/workloads.h"

namespace lamp::workloads {

using ir::GraphBuilder;
using ir::Value;

namespace {

/// atan(2^-i) in Q14 fixed point.
constexpr std::uint16_t kAtan[12] = {12868, 7596, 4014, 2037, 1023, 512,
                                     256,   128,  64,   32,   16,   8};

}  // namespace

Benchmark makeCordic(Scale scale) {
  const int iterationsCount = scale == Scale::Paper ? 10 : 6;
  // 14-bit datapath (Q2.12): the carry chains stay short enough that LUT
  // packing of the sign-select network shifts the stage boundaries.
  const std::uint16_t w = 14;
  GraphBuilder b("cordic" + std::to_string(iterationsCount));
  Value x = b.input("x", w, true);
  Value y = b.input("y", w, true);
  Value z = b.input("z", w, true);
  Value zero = b.constant(0, w);

  for (int i = 0; i < iterationsCount; ++i) {
    Value d = b.ge(z, zero, true, "d" + std::to_string(i));  // sign test
    Value ys = b.ashr(y, i);
    Value xs = b.ashr(x, i);
    Value atan = b.constant(kAtan[i] >> 2, w);  // rescaled to Q2.12
    Value xn = b.mux(d, b.sub(x, ys), b.add(x, ys));
    Value yn = b.mux(d, b.add(y, xs), b.sub(y, xs));
    Value zn = b.mux(d, b.sub(z, atan), b.add(z, atan));
    x = xn;
    y = yn;
    z = zn;
  }
  b.output(x, "cos");
  b.output(y, "sin");
  b.output(z, "zres");

  Benchmark bm;
  bm.name = "CORDIC";
  bm.domain = "Scientific Computing";
  bm.description = "Coordinate Rotation Digital Computer";
  bm.graph = b.take();
  const std::vector<ir::NodeId> ins = bm.graph.inputs();
  bm.makeInputs = [ins](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    std::uint64_t state = seed ^ (iter * 0xD1B54A32D192ED03ull);
    for (const ir::NodeId id : ins) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      f[id] = (state >> 19) & 0x3FFF;
    }
    return f;
  };
  return bm;
}

}  // namespace lamp::workloads
