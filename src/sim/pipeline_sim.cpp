#include "sim/pipeline_sim.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "ir/passes.h"

namespace lamp::sim {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;
using sched::DelayModel;
using sched::Schedule;

PipelineRunResult runPipeline(const Graph& g, const Schedule& s,
                              const DelayModel& dm,
                              const std::vector<InputFrame>& frames,
                              Memory* memory,
                              const cut::CutDatabase* cuts) {
  PipelineRunResult res;
  const int iterations = static_cast<int>(frames.size());
  const auto order = ir::topologicalOrder(g);

  // Ready clock / finish ns of each node, per the schedule.
  std::vector<int> readyClk(g.size(), 0);
  std::vector<double> finishNs(g.size(), 0.0);
  std::vector<int> startClk(g.size(), 0);
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const) continue;
    const int cyc = n.kind == OpKind::Input ? 0 : s.cycle[v];
    startClk[v] = cyc;
    readyClk[v] = cyc + dm.latencyCycles(g, v, s.tcpNs);
    finishNs[v] = (n.kind == OpKind::Input ? 0.0 : s.startNs[v]) +
                  dm.remainderNs(g, v, s.tcpNs);
  }

  // Values per (node, iteration). maxDist bounds how far back reads go.
  std::uint32_t maxDist = 0;
  for (NodeId v = 0; v < g.size(); ++v) {
    for (const Edge& e : g.node(v).operands) maxDist = std::max(maxDist, e.dist);
  }
  const std::size_t ring = maxDist + 1;
  std::vector<std::vector<std::uint64_t>> value(
      g.size(), std::vector<std::uint64_t>(ring, 0));

  res.outputs.resize(iterations);
  std::vector<std::uint64_t> ops;

  // Lifetime bookkeeping for peak register pressure: a value produced at
  // clock r and last consumed at clock c occupies r..c-1.
  std::vector<int> lastUseClkRel(g.size(), 0);
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const) continue;
    for (const Edge& e : n.operands) {
      if (g.node(e.src).kind == OpKind::Const) continue;
      lastUseClkRel[e.src] =
          std::max(lastUseClkRel[e.src],
                   startClk[v] + static_cast<int>(e.dist) * s.ii);
    }
  }
  const int lastClock = (iterations - 1) * s.ii + s.latency(g) + 8;
  std::vector<long long> liveDelta(lastClock + 2, 0);

  for (int k = 0; k < iterations; ++k) {
    const std::size_t slot = k % ring;
    for (const NodeId v : order) {
      const Node& n = g.node(v);
      if (n.kind == OpKind::Const) {
        value[v][slot] = maskTo(n.constValue, n.width);
        continue;
      }
      const int myClock = k * s.ii + startClk[v];
      std::uint64_t out = 0;
      if (n.kind == OpKind::Input) {
        const auto it = frames[k].find(v);
        out = maskTo(it == frames[k].end() ? 0 : it->second, n.width);
      } else {
        ops.clear();
        for (const Edge& e : n.operands) {
          const Node& u = g.node(e.src);
          if (u.kind == OpKind::Const) {
            // Reset applies at the edge, Const producers included: a
            // loop-carried read sees 0 until iteration e.dist (matches
            // sim::Interpreter; folding can rewire dist > 0 edges to
            // constants).
            ops.push_back(k < static_cast<int>(e.dist)
                              ? 0
                              : maskTo(u.constValue, u.width));
            continue;
          }
          const int prodIter = k - static_cast<int>(e.dist);
          if (prodIter < 0) {
            ops.push_back(0);  // registers reset to 0
            continue;
          }
          // Dynamic readiness check (the hardware-legality assertion).
          const int prodClock = prodIter * s.ii + readyClk[e.src];
          if (prodClock > myClock) {
            std::ostringstream os;
            os << "iteration " << k << ": node " << v << " at clock "
               << myClock << " consumes node " << e.src
               << " not ready until clock " << prodClock;
            res.error = os.str();
            return res;
          }
          ops.push_back(value[e.src][prodIter % ring]);
        }
        out = evalOp(g, v, ops, memory);

        // Same-clock chaining order along selected cut boundaries: the
        // boundary value must be stable before this root's LUT (or port)
        // starts evaluating.
        if (cuts != nullptr && s.isRoot(v)) {
          const cut::Cut& c = cuts->at(v).cuts[s.selectedCut[v]];
          for (const cut::CutElement& e : c.elements) {
            const Node& u = g.node(e.node);
            if (u.kind == OpKind::Const) continue;
            const int prodIter = k - static_cast<int>(e.dist);
            if (prodIter < 0) continue;
            const int prodClock = prodIter * s.ii + readyClk[e.node];
            if (prodClock == myClock &&
                finishNs[e.node] > s.startNs[v] + 1e-6) {
              std::ostringstream os;
              os << "iteration " << k << ": same-clock chaining order "
                 << "violated between nodes " << e.node << " and " << v;
              res.error = os.str();
              return res;
            }
          }
        }
      }
      value[v][slot] = out;
      if (n.kind == OpKind::Output) res.outputs[k][v] = out;

      // Register pressure: live from ready clock to last use.
      if (n.width > 0 && n.kind != OpKind::Output) {
        const int from = k * s.ii + readyClk[v];
        const int to = k * s.ii + lastUseClkRel[v];
        if (to > from && from <= lastClock) {
          liveDelta[from] += n.width;
          liveDelta[std::min(to, lastClock + 1)] -= n.width;
        }
      }
    }
  }

  long long live = 0, peak = 0;
  for (int c = 0; c <= lastClock + 1; ++c) {
    live += liveDelta[c];
    peak = std::max(peak, live);
  }
  res.peakLiveBits = static_cast<int>(peak);
  res.clocksSimulated = lastClock + 1;
  res.ok = true;
  return res;
}

}  // namespace lamp::sim
