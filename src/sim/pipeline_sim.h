#ifndef LAMP_SIM_PIPELINE_SIM_H
#define LAMP_SIM_PIPELINE_SIM_H

/// \file pipeline_sim.h
/// Cycle-accurate execution of a modulo Schedule. Iteration k's node v
/// computes at clock k*II + S_v; the simulator checks dynamically that
///  - every operand value was produced at an earlier clock, or at the
///    same clock with compatible intra-cycle start times (chaining), and
///  - outputs stream at exactly one result per II clocks.
/// It also measures peak live register bits, the dynamic counterpart of
/// the schedule's static FF count.

#include <string>
#include <vector>

#include "sched/schedule.h"
#include "sim/interp.h"

namespace lamp::sim {

struct PipelineRunResult {
  bool ok = false;
  std::string error;
  std::vector<OutputFrame> outputs;  ///< one frame per iteration
  /// Peak register bits live at any simulated clock (steady-state value
  /// equals the static lifetime count for II=1 pipelines).
  int peakLiveBits = 0;
  int clocksSimulated = 0;
};

/// Runs `frames.size()` iterations through the scheduled pipeline.
/// `memory` may be null when the graph has no Load/Store nodes.
/// When `cuts` (the database the schedule was built against) is given,
/// same-clock chaining order is checked along selected cut boundaries —
/// absorbed nodes live inside their root's LUT and have no timing of
/// their own. Without it only cycle-level readiness is checked.
PipelineRunResult runPipeline(const ir::Graph& g, const sched::Schedule& s,
                              const sched::DelayModel& dm,
                              const std::vector<InputFrame>& frames,
                              Memory* memory = nullptr,
                              const cut::CutDatabase* cuts = nullptr);

}  // namespace lamp::sim

#endif  // LAMP_SIM_PIPELINE_SIM_H
