#include "sim/vcd.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "ir/passes.h"

namespace lamp::sim {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;
using sched::DelayModel;
using sched::Schedule;

namespace {

std::string vcdId(std::size_t k) {
  std::string id;
  do {
    id += static_cast<char>(33 + (k % 94));
    k /= 94;
  } while (k > 0);
  return id;
}

std::string bin(std::uint64_t v, std::uint16_t width) {
  std::string s = "b";
  for (int b = width - 1; b >= 0; --b) {
    s += ((v >> b) & 1) ? '1' : '0';
  }
  return s;
}

std::string vcdName(const Graph& g, NodeId v) {
  const Node& n = g.node(v);
  std::string name = "n" + std::to_string(v);
  if (!n.name.empty()) {
    name += "_";
    for (const char c : n.name) {
      name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
    }
  }
  return name;
}

}  // namespace

bool writeVcd(std::ostream& os, const Graph& g, const Schedule& s,
              const DelayModel& dm, const std::vector<InputFrame>& frames,
              Memory* memory, const VcdOptions& opts, std::string* error) {
  // Which nodes appear in the trace.
  std::vector<bool> traced(g.size(), false);
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const || n.width == 0) continue;
    if (!opts.includeAbsorbed && !s.isRoot(v) && n.kind != OpKind::Input) {
      continue;
    }
    traced[v] = true;
  }

  os << "$timescale " << opts.timescale << " $end\n";
  os << "$scope module " << (g.name().empty() ? "lamp" : g.name())
     << " $end\n";
  std::vector<std::string> idOf(g.size());
  std::size_t counter = 0;
  for (NodeId v = 0; v < g.size(); ++v) {
    if (!traced[v]) continue;
    idOf[v] = vcdId(counter++);
    os << "$var wire " << g.node(v).width << " " << idOf[v] << " "
       << vcdName(g, v) << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Execute and collect (clock -> value changes).
  const auto order = ir::topologicalOrder(g);
  std::uint32_t maxDist = 0;
  for (NodeId v = 0; v < g.size(); ++v) {
    for (const Edge& e : g.node(v).operands) maxDist = std::max(maxDist, e.dist);
  }
  const std::size_t ring = maxDist + 1;
  std::vector<std::vector<std::uint64_t>> value(
      g.size(), std::vector<std::uint64_t>(ring, 0));
  std::map<int, std::vector<std::pair<NodeId, std::uint64_t>>> changes;

  std::vector<std::uint64_t> ops;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const std::size_t slot = k % ring;
    for (const NodeId v : order) {
      const Node& n = g.node(v);
      if (n.kind == OpKind::Const) {
        value[v][slot] = maskTo(n.constValue, n.width);
        continue;
      }
      std::uint64_t out = 0;
      if (n.kind == OpKind::Input) {
        const auto it = frames[k].find(v);
        out = maskTo(it == frames[k].end() ? 0 : it->second, n.width);
      } else {
        ops.clear();
        for (const Edge& e : n.operands) {
          const Node& u = g.node(e.src);
          if (u.kind == OpKind::Const) {
            // Loop-carried reads reset to 0 even from Const producers
            // (edge semantics, matching sim::Interpreter).
            ops.push_back(static_cast<std::int64_t>(k) <
                                  static_cast<std::int64_t>(e.dist)
                              ? 0
                              : maskTo(u.constValue, u.width));
            continue;
          }
          const std::int64_t prodIter =
              static_cast<std::int64_t>(k) - e.dist;
          if (prodIter < 0) {
            ops.push_back(0);
            continue;
          }
          const int prodClock =
              static_cast<int>(prodIter) * s.ii +
              (u.kind == OpKind::Input ? 0 : s.cycle[e.src]) +
              dm.latencyCycles(g, e.src, s.tcpNs);
          const int myClock =
              static_cast<int>(k) * s.ii +
              (n.kind == OpKind::Input ? 0 : s.cycle[v]);
          if (prodClock > myClock) {
            if (error) {
              *error = "schedule violates readiness at node " +
                       std::to_string(v);
            }
            return false;
          }
          ops.push_back(value[e.src][prodIter % ring]);
        }
        out = evalOp(g, v, ops, memory);
      }
      value[v][slot] = out;
      if (traced[v]) {
        const int clock =
            static_cast<int>(k) * s.ii +
            (n.kind == OpKind::Input ? 0 : s.cycle[v]) +
            dm.latencyCycles(g, v, s.tcpNs);
        changes[clock].emplace_back(v, out);
      }
    }
  }

  // Emit changes; later writes at the same time win (map preserves clock
  // order, vector preserves production order within a clock).
  std::vector<std::uint64_t> last(g.size(), ~0ull);
  for (const auto& [clock, list] : changes) {
    bool headerWritten = false;
    for (const auto& [v, val] : list) {
      if (last[v] == val) continue;
      if (!headerWritten) {
        os << "#" << clock << "\n";
        headerWritten = true;
      }
      os << bin(val, g.node(v).width) << " " << idOf[v] << "\n";
      last[v] = val;
    }
  }
  os << "#" << ((frames.size()) * s.ii + s.latency(g) + 1) << "\n";
  return true;
}

}  // namespace lamp::sim
