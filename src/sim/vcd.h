#ifndef LAMP_SIM_VCD_H
#define LAMP_SIM_VCD_H

/// \file vcd.h
/// Value-change-dump (IEEE 1364 §18) waveform emission for scheduled
/// pipelines: re-executes the schedule clock by clock and records every
/// node's value stream, so the pipeline can be inspected in GTKWave
/// alongside the RTL the Verilog emitter produces.

#include <iosfwd>
#include <string>

#include "sched/schedule.h"
#include "sim/interp.h"

namespace lamp::sim {

struct VcdOptions {
  /// Timescale per clock cycle.
  std::string timescale = "1ns";
  /// Also dump absorbed (non-root) intermediate values.
  bool includeAbsorbed = true;
};

/// Simulates `frames.size()` iterations through the schedule and writes a
/// VCD trace of every node value at its compute clock. Returns false
/// (stream untouched beyond the header) when the pipeline run fails; the
/// failure reason is written to `error` if non-null.
bool writeVcd(std::ostream& os, const ir::Graph& g, const sched::Schedule& s,
              const sched::DelayModel& dm,
              const std::vector<InputFrame>& frames, Memory* memory = nullptr,
              const VcdOptions& opts = {}, std::string* error = nullptr);

}  // namespace lamp::sim

#endif  // LAMP_SIM_VCD_H
