#include "sim/interp.h"

#include <cassert>
#include <stdexcept>

#include "ir/eval.h"
#include "ir/passes.h"

namespace lamp::sim {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

std::uint64_t maskTo(std::uint64_t value, std::uint16_t width) {
  return ir::maskToWidth(value, width);
}

std::uint64_t Memory::read(ir::ResourceClass rc, std::uint64_t addr) const {
  const auto it = banks_.find(rc);
  if (it == banks_.end() || it->second.empty()) return 0;
  return it->second[addr % it->second.size()];
}

void Memory::write(ir::ResourceClass rc, std::uint64_t addr,
                   std::uint64_t value) {
  auto& bank = banks_[rc];
  if (bank.empty()) bank.resize(1024, 0);
  bank[addr % bank.size()] = value;
}

std::uint64_t evalOp(const Graph& g, NodeId v,
                     const std::vector<std::uint64_t>& ops, Memory* mem) {
  const Node& n = g.node(v);
  switch (n.kind) {
    case OpKind::Input:
      throw std::logic_error("evalOp on Input");
    case OpKind::Load:
      return maskTo(mem ? mem->read(n.resourceClass(), ops[0]) : 0, n.width);
    case OpKind::Store:
      if (mem) mem->write(n.resourceClass(), ops[0], ops[1]);
      return 0;
    default:
      return *ir::evalPureOp(g, v, ops);
  }
}

Interpreter::Interpreter(const Graph& g)
    : g_(g), order_(ir::topologicalOrder(g)) {
  for (NodeId v = 0; v < g.size(); ++v) {
    for (const Edge& e : g.node(v).operands) {
      maxDist_ = std::max(maxDist_, e.dist);
    }
  }
  reset();
}

void Interpreter::reset() {
  history_.assign(g_.size(),
                  std::vector<std::uint64_t>(maxDist_ + 1, 0));
  iteration_ = 0;
}

OutputFrame Interpreter::step(const InputFrame& inputs) {
  const std::size_t slot = iteration_ % (maxDist_ + 1);
  OutputFrame out;
  std::vector<std::uint64_t> ops;
  for (const NodeId v : order_) {
    const Node& n = g_.node(v);
    std::uint64_t value = 0;
    if (n.kind == OpKind::Input) {
      const auto it = inputs.find(v);
      value = maskTo(it == inputs.end() ? 0 : it->second, n.width);
    } else {
      ops.clear();
      for (const Edge& e : n.operands) {
        if (e.dist == 0) {
          ops.push_back(history_[e.src][slot]);
        } else if (e.dist > iteration_) {
          ops.push_back(0);  // reset value of the register chain
        } else {
          const std::size_t past =
              (iteration_ - e.dist) % (maxDist_ + 1);
          ops.push_back(history_[e.src][past]);
        }
      }
      value = evalOp(g_, v, ops, &mem_);
    }
    history_[v][slot] = value;
    if (n.kind == OpKind::Output) out[v] = value;
  }
  ++iteration_;
  return out;
}

std::vector<OutputFrame> Interpreter::run(
    const std::vector<InputFrame>& frames) {
  std::vector<OutputFrame> result;
  result.reserve(frames.size());
  for (const InputFrame& f : frames) result.push_back(step(f));
  return result;
}

}  // namespace lamp::sim
