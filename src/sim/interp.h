#ifndef LAMP_SIM_INTERP_H
#define LAMP_SIM_INTERP_H

/// \file interp.h
/// Functional execution of CDFGs. Two engines share the semantics:
///
///  - Interpreter: untimed, iteration-by-iteration evaluation in
///    topological order — the golden reference for workload validation.
///  - PipelineSimulator (pipeline_sim.h): cycle-accurate execution of a
///    Schedule that additionally asserts every operand was produced by
///    the time it is consumed.
///
/// Loop-carried operands (dist > 0) read the value produced `dist`
/// iterations earlier; before the first iteration they read 0
/// (reset-initialized registers).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace lamp::sim {

/// Simple banked memory for Load/Store black boxes: one bank per resource
/// class, word-addressed, wrap-around indexing.
class Memory {
 public:
  void setBank(ir::ResourceClass rc, std::vector<std::uint64_t> words) {
    banks_[rc] = std::move(words);
  }
  std::uint64_t read(ir::ResourceClass rc, std::uint64_t addr) const;
  void write(ir::ResourceClass rc, std::uint64_t addr, std::uint64_t value);

 private:
  std::map<ir::ResourceClass, std::vector<std::uint64_t>> banks_;
};

/// Per-iteration input assignment: values for every Input node, by id.
using InputFrame = std::map<ir::NodeId, std::uint64_t>;

/// Values observed at Output nodes for one iteration, by output node id.
using OutputFrame = std::map<ir::NodeId, std::uint64_t>;

/// Evaluates a single operation. Exposed so both engines (and tests) use
/// identical semantics. `ops` holds the already-masked operand values.
std::uint64_t evalOp(const ir::Graph& g, ir::NodeId v,
                     const std::vector<std::uint64_t>& ops, Memory* mem);

/// Masks a value to `width` bits.
std::uint64_t maskTo(std::uint64_t value, std::uint16_t width);

/// Untimed reference interpreter.
class Interpreter {
 public:
  explicit Interpreter(const ir::Graph& g);

  Memory& memory() { return mem_; }

  /// Runs one iteration with the given inputs and returns the outputs.
  OutputFrame step(const InputFrame& inputs);

  /// Runs `frames.size()` iterations.
  std::vector<OutputFrame> run(const std::vector<InputFrame>& frames);

  /// Resets loop-carried history (registers back to 0).
  void reset();

 private:
  const ir::Graph& g_;
  std::vector<ir::NodeId> order_;
  Memory mem_;
  std::uint32_t maxDist_ = 0;
  std::vector<std::vector<std::uint64_t>> history_;  // ring per node
  std::uint64_t iteration_ = 0;
};

}  // namespace lamp::sim

#endif  // LAMP_SIM_INTERP_H
