#include <istream>
#include <ostream>
#include <sstream>

#include "ir/passes.h"

namespace lamp::ir {

namespace {

void writeQuoted(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

bool readQuoted(std::istream& is, std::string& out) {
  char c = 0;
  is >> c;
  if (!is || c != '"') return false;
  out.clear();
  while (is.get(c)) {
    if (c == '\\') {
      if (!is.get(c)) return false;
      out += c;
    } else if (c == '"') {
      return true;
    } else {
      out += c;
    }
  }
  return false;
}

}  // namespace

void writeText(std::ostream& os, const Graph& g) {
  os << "lampgraph v1 ";
  writeQuoted(os, g.name());
  os << "\n";
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& n = g.node(id);
    os << "n " << opKindName(n.kind) << ' ' << n.width << ' '
       << (n.isSigned ? 1 : 0) << ' ' << n.attr0 << ' ' << n.constValue << ' '
       << n.operands.size();
    for (const Edge& e : n.operands) os << ' ' << e.src << ':' << e.dist;
    os << ' ';
    writeQuoted(os, n.name);
    os << "\n";
  }
  os << "end\n";
}

std::optional<Graph> readText(std::istream& is, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Graph> {
    if (error) *error = msg;
    return std::nullopt;
  };

  std::string magic, version;
  is >> magic >> version;
  if (magic != "lampgraph" || version != "v1") return fail("bad header");
  std::string name;
  if (!readQuoted(is, name)) return fail("bad graph name");
  Graph g(name);

  std::string tok;
  while (is >> tok) {
    if (tok == "end") {
      if (const auto diag = verify(g)) return fail("verify: " + *diag);
      return g;
    }
    if (tok != "n") return fail("expected 'n' or 'end', got '" + tok + "'");
    std::string kindName;
    int width = 0, isSigned = 0;
    std::int64_t attr0 = 0;
    std::uint64_t constValue = 0;
    std::size_t nops = 0;
    is >> kindName >> width >> isSigned >> attr0 >> constValue >> nops;
    if (!is) return fail("malformed node line");
    Node n;
    if (!parseOpKind(kindName, n.kind)) return fail("bad kind " + kindName);
    if (width < 0 || width > 64) return fail("bad width");
    n.width = static_cast<std::uint16_t>(width);
    n.isSigned = isSigned != 0;
    n.attr0 = static_cast<std::int32_t>(attr0);
    n.constValue = constValue;
    for (std::size_t k = 0; k < nops; ++k) {
      std::string edge;
      is >> edge;
      const auto colon = edge.find(':');
      if (colon == std::string::npos) return fail("bad edge " + edge);
      Edge e;
      e.src = static_cast<NodeId>(std::stoul(edge.substr(0, colon)));
      e.dist = static_cast<std::uint32_t>(std::stoul(edge.substr(colon + 1)));
      if (e.src >= g.size() && e.dist == 0) {
        return fail("forward dist-0 reference in edge " + edge);
      }
      n.operands.push_back(e);
    }
    if (!readQuoted(is, n.name)) return fail("bad node name");
    g.add(std::move(n));
  }
  return fail("missing 'end'");
}

}  // namespace lamp::ir
