#include "ir/simplify.h"

#include <algorithm>
#include <bit>

#include "ir/eval.h"
#include "ir/passes.h"

namespace lamp::ir {

namespace {

enum class Act : std::uint8_t { Keep, Fold, Forward, Narrow };

struct Target {
  NodeId node = kNoNode;
  std::uint32_t dist = 0;
};

std::uint64_t fullMask(std::uint16_t width) {
  return width >= 64 ? ~0ull : (1ull << width) - 1;
}

/// Known bits of the value an operand reference reads. Loop-carried
/// edges join with the register reset value 0 (matching the dataflow
/// engine and the interpreter): a known-1 producer bit is unknown
/// through a register, a known-0 bit survives.
struct ReadBits {
  std::uint64_t km = 0;
  std::uint64_t kv = 0;
};

ReadBits readKnown(const BitFacts& f, const Edge& e) {
  ReadBits r{f.knownMask[e.src], f.knownVal[e.src]};
  if (e.dist > 0) {
    r.km &= ~r.kv;
    r.kv = 0;
  }
  return r;
}

}  // namespace

Graph simplify(const Graph& g, const BitFacts& facts, SimplifyStats* stats,
               std::vector<NodeId>* oldToNew) {
  SimplifyStats st;
  if (!facts.compatibleWith(g)) {
    if (oldToNew) {
      oldToNew->resize(g.size());
      for (NodeId v = 0; v < g.size(); ++v) (*oldToNew)[v] = v;
    }
    if (stats) *stats = st;
    return g;
  }

  std::vector<Act> act(g.size(), Act::Keep);
  std::vector<std::uint64_t> foldVal(g.size(), 0);
  std::vector<Target> fwd(g.size());
  std::vector<std::uint16_t> narrowW(g.size(), 0);

  // -------------------------------------------------------------------
  // Decisions. Unlike foldConstants these are per-node reads of the
  // fixpoint facts, so no propagation order is needed.
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (!isLutMappable(n.kind)) continue;
    const std::uint64_t mask = fullMask(n.width);
    const std::uint64_t km = facts.knownMask[v];

    // Fold: every demanded bit is known. Undemanded bits take their
    // known value (0 when unknown) — no observer can tell.
    if ((facts.demanded[v] & ~km) == 0) {
      act[v] = Act::Fold;
      foldVal[v] = facts.knownVal[v] & mask;
      ++st.folded;
      continue;
    }

    // Forward: the facts prove the op neutral for one operand — on the
    // LIVE bits only. Dead bits of v are free to change, no observer
    // reads them, so e.g. `x & 0x3F` forwards to `x` whenever only the
    // low six result bits are read downstream. The mask must be `live`,
    // not `demanded`: demanded strips bits the analysis already knows,
    // but observers still read those bits and a substituted value must
    // reproduce them (an Output of `a & 0x0F` sees the known-zero top
    // nibble; forwarding `a` there would expose a's raw top bits).
    const auto forward = [&](std::size_t operand) {
      act[v] = Act::Forward;
      fwd[v] = Target{n.operands[operand].src, n.operands[operand].dist};
      ++st.forwarded;
    };
    const auto readVal = [&](std::size_t i) {
      return readKnown(facts, n.operands[i]);
    };
    const auto fold = [&](std::uint64_t value) {
      act[v] = Act::Fold;
      foldVal[v] = value & mask;
      ++st.folded;
    };
    const auto sameOperand = [&](std::size_t i, std::size_t j) {
      return n.operands[i].src == n.operands[j].src &&
             n.operands[i].dist == n.operands[j].dist;
    };
    const std::uint64_t liv = facts.live[v] & mask;  // != 0 past Fold
    switch (n.kind) {
      case OpKind::And: {
        if (sameOperand(0, 1)) { forward(0); break; }
        const ReadBits a = readVal(0), b = readVal(1);
        if ((a.km & a.kv & liv) == liv) forward(1);
        else if ((b.km & b.kv & liv) == liv) forward(0);
        break;
      }
      case OpKind::Or: {
        if (sameOperand(0, 1)) { forward(0); break; }
        const ReadBits a = readVal(0), b = readVal(1);
        if ((a.km & liv) == liv && (a.kv & liv) == 0) forward(1);
        else if ((b.km & liv) == liv && (b.kv & liv) == 0) forward(0);
        break;
      }
      case OpKind::Xor: {
        if (sameOperand(0, 1)) { fold(0); break; }
        const ReadBits a = readVal(0), b = readVal(1);
        if ((a.km & liv) == liv && (a.kv & liv) == 0) forward(1);
        else if ((b.km & liv) == liv && (b.kv & liv) == 0) forward(0);
        break;
      }
      case OpKind::Add:
      case OpKind::Sub: {
        if (n.kind == OpKind::Sub && sameOperand(0, 1)) { fold(0); break; }
        // Carries only travel upward, so the operand must be known zero
        // on every bit up to the highest live one.
        const std::uint64_t low =
            fullMask(static_cast<std::uint16_t>(std::bit_width(liv)));
        const ReadBits b = readVal(1);
        if ((b.km & low) == low && (b.kv & low) == 0) forward(0);
        else if (n.kind == OpKind::Add) {
          const ReadBits a = readVal(0);
          if ((a.km & low) == low && (a.kv & low) == 0) forward(1);
        }
        break;
      }
      case OpKind::Mux: {
        if (sameOperand(1, 2)) { forward(1); break; }
        const ReadBits sel = readVal(0);
        if ((sel.km & 1) != 0) forward((sel.kv & 1) != 0 ? 1 : 2);
        break;
      }
      case OpKind::Shl:
      case OpKind::Shr:
      case OpKind::AShr:
        if (n.attr0 == 0 && n.width == g.node(n.operands[0].src).width) {
          forward(0);
        }
        break;
      case OpKind::Slice:
        if (n.attr0 == 0 && n.width == g.node(n.operands[0].src).width) {
          forward(0);
        }
        break;
      case OpKind::ZExt:
      case OpKind::SExt:
        if (n.width == g.node(n.operands[0].src).width) forward(0);
        break;
      default:
        break;
    }
  }

  // Break forwarding cycles (mutually-forwarding loop identities), as
  // in foldConstants: unterminated chains demote to Keep.
  for (NodeId v = 0; v < g.size(); ++v) {
    if (act[v] != Act::Forward) continue;
    std::vector<NodeId> path;
    Target t{v, 0};
    while (act[t.node] == Act::Forward && path.size() <= g.size()) {
      path.push_back(t.node);
      const Target& next = fwd[t.node];
      t = Target{next.node, t.dist + next.dist};
    }
    if (path.size() > g.size()) {
      for (const NodeId p : path) {
        if (act[p] == Act::Forward) {
          act[p] = Act::Keep;
          --st.forwarded;
        }
      }
    }
  }

  const auto resolve = [&](NodeId u, std::uint32_t d) {
    Target t{u, d};
    for (int hops = 0; act[t.node] == Act::Forward; ++hops) {
      if (hops > static_cast<int>(g.size())) break;  // defensive
      const Target& next = fwd[t.node];
      t = Target{next.node, t.dist + next.dist};
    }
    return t;
  };

  // -------------------------------------------------------------------
  // Narrowing: an Add/Sub whose top bits are known zero computes the
  // same word as a narrower Add/Sub zero-extended back (truncation
  // commutes with two's-complement add/sub). Restricted to operands a
  // narrow form exists for without inserting Slice logic: zero-extends
  // (rebuilt at the smaller width) and constants (masked).
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (act[v] != Act::Keep) continue;
    if (n.kind != OpKind::Add && n.kind != OpKind::Sub) continue;
    const std::uint64_t mask = fullMask(n.width);
    const std::uint64_t knownZero = facts.knownMask[v] & ~facts.knownVal[v];
    // Width of the lowest run covering every bit some observer can see
    // differ: live AND not known zero (truncation commutes with
    // two's-complement add/sub, and the ZExt adapter's zero padding is
    // unobservable on dead bits and correct on known-zero ones; live
    // known-ONE bits keep the width up, since the padding would flip
    // them).
    int w = std::bit_width(mask & ~knownZero & facts.live[v]);
    if (w < 1) w = 1;
    bool eligible = w < n.width;
    for (const Edge& e : n.operands) {
      if (!eligible) break;
      const Target t = resolve(e.src, e.dist);
      const Node& src = g.node(t.node);
      if (act[t.node] == Act::Fold ||
          (src.kind == OpKind::Const && t.dist == 0)) {
        continue;  // constant: masked in place
      }
      if (src.kind == OpKind::ZExt && act[t.node] == Act::Keep) {
        w = std::max(w, static_cast<int>(g.node(src.operands[0].src).width));
        eligible = w < n.width;
        continue;
      }
      eligible = false;
    }
    if (!eligible) continue;
    act[v] = Act::Narrow;
    narrowW[v] = static_cast<std::uint16_t>(w);
    ++st.narrowed;
  }

  // -------------------------------------------------------------------
  // Layout: per old node, how many new nodes it expands to and which of
  // them consumers read. Precomputing every id first lets loop-carried
  // edges point at nodes materialized later (as in foldConstants).
  std::vector<NodeId> visible(g.size(), kNoNode);
  std::vector<NodeId> base(g.size(), kNoNode);
  {
    NodeId next = 0;
    for (NodeId v = 0; v < g.size(); ++v) {
      if (act[v] == Act::Forward) continue;
      base[v] = next;
      if (act[v] == Act::Narrow) {
        // operand clones, the narrow arith node, the ZExt adapter
        next += static_cast<NodeId>(g.node(v).operands.size()) + 2;
        visible[v] = next - 1;
      } else {
        next += 1;
        visible[v] = base[v];
      }
    }
  }

  const auto newEdge = [&](const Edge& e) {
    const Target t = resolve(e.src, e.dist);
    return Edge{visible[t.node], t.dist};
  };

  Graph out(g.name());
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    switch (act[v]) {
      case Act::Forward:
        break;
      case Act::Fold: {
        Node c;
        c.kind = OpKind::Const;
        c.width = n.width;
        c.constValue = foldVal[v];
        c.name = n.name;
        out.add(std::move(c));
        break;
      }
      case Act::Keep: {
        Node copy = n;
        for (Edge& e : copy.operands) e = newEdge(e);
        out.add(std::move(copy));
        break;
      }
      case Act::Narrow: {
        const std::uint16_t w = narrowW[v];
        Node arith = n;
        arith.width = w;
        arith.operands.clear();
        for (const Edge& e : n.operands) {
          const Target t = resolve(e.src, e.dist);
          const Node& src = g.node(t.node);
          Node clone;
          clone.width = w;
          if (act[t.node] == Act::Fold ||
              (src.kind == OpKind::Const && t.dist == 0)) {
            clone.kind = OpKind::Const;
            const std::uint64_t cv =
                act[t.node] == Act::Fold ? foldVal[t.node] : src.constValue;
            clone.constValue = maskToWidth(cv, w);
            // t.dist is preserved: a constant read through registers
            // still resets to 0 on the first t.dist iterations.
            arith.operands.push_back(Edge{out.add(std::move(clone)), t.dist});
          } else {  // ZExt rebuilt at the narrow width (or forwarded away)
            const Edge inner = newEdge(src.operands[0]);
            if (g.node(src.operands[0].src).width == w && t.dist == 0) {
              arith.operands.push_back(inner);  // ZExt became an identity
              Node pad;  // keep the precomputed layout: emit a dead Const
              pad.kind = OpKind::Const;
              pad.width = 1;
              out.add(std::move(pad));
            } else {
              clone.kind = OpKind::ZExt;
              clone.operands.push_back(inner);
              arith.operands.push_back(
                  Edge{out.add(std::move(clone)), t.dist});
            }
          }
        }
        const NodeId arithId = out.add(std::move(arith));
        Node adapter;
        adapter.kind = OpKind::ZExt;
        adapter.width = n.width;
        adapter.name = n.name;
        adapter.operands.push_back(Edge{arithId, 0});
        out.add(std::move(adapter));
        break;
      }
    }
  }

  // Drop the dead padding constants, unreferenced clones and any logic
  // the rewrites orphaned; compose the remapping for the caller.
  std::vector<NodeId> compactMap;
  Graph result = compact(out, oldToNew ? &compactMap : nullptr);
  if (oldToNew) {
    oldToNew->assign(g.size(), kNoNode);
    for (NodeId v = 0; v < g.size(); ++v) {
      Target t{v, 0};
      if (act[v] == Act::Forward) {
        t = resolve(v, 0);
        if (t.dist != 0) continue;  // no same-iteration replacement exists
      }
      if (visible[t.node] != kNoNode) {
        (*oldToNew)[v] = compactMap[visible[t.node]];
      }
    }
  }
  if (stats) *stats = st;
  return result;
}

}  // namespace lamp::ir
