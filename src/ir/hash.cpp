#include "ir/hash.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace lamp::ir {

namespace {

/// splitmix64 finalizer — the standard strong 64-bit mixer.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Order-sensitive accumulation (a Merkle-Damgard-style fold).
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ (mix64(v) + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2)));
}

/// Local structural fingerprint of one node, ignoring its id, its name
/// and its operands. constValue only means anything on Const nodes;
/// folding it in unconditionally would hash stale scratch on other kinds.
std::uint64_t localSeed(const Node& n) {
  std::uint64_t h = 0x243F6A8885A308D3ull;  // pi, for want of a nothing-up-my-sleeve seed
  h = fold(h, static_cast<std::uint64_t>(n.kind));
  h = fold(h, n.width);
  h = fold(h, n.isSigned ? 1 : 0);
  h = fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(n.attr0)));
  h = fold(h, n.kind == OpKind::Const ? n.constValue : 0);
  h = fold(h, n.operands.size());
  return h;
}

/// Collapses the per-node hashes into one digest, invariant to their
/// order. Two independent seeds give the two 64-bit halves.
GraphDigest aggregate(std::vector<std::uint64_t> hashes) {
  std::sort(hashes.begin(), hashes.end());
  GraphDigest d;
  d.hi = fold(0x452821E638D01377ull, hashes.size());
  d.lo = fold(0x13198A2E03707344ull, hashes.size());
  for (const std::uint64_t h : hashes) {
    d.hi = fold(d.hi, h);
    d.lo = fold(d.lo, ~h);
  }
  return d;
}

}  // namespace

std::string GraphDigest::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::optional<GraphDigest> GraphDigest::fromHex(std::string_view s) {
  if (s.size() != 32) return std::nullopt;
  GraphDigest d;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t v = 0;
    for (int i = 0; i < 16; ++i) {
      const char c = s[half * 16 + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else {
        return std::nullopt;
      }
    }
    (half == 0 ? d.hi : d.lo) = v;
  }
  return d;
}

GraphDigest canonicalHash(const Graph& g) {
  const std::size_t n = g.size();
  if (n == 0) return aggregate({});

  // Weisfeiler-Leman-style refinement: every round folds each node's
  // operand hashes (order- and distance-sensitive) into its own. The
  // update never reads NodeId values, so any permutation of the node
  // array yields the same multiset of hashes. Distinguishing power only
  // grows with rounds; a node adjacent to any structural difference
  // already differs after one round and the difference then radiates
  // outward, so a modest round count separates real-world graphs while
  // keeping the pass O(rounds * edges).
  std::vector<std::uint64_t> h(n), next(n);
  for (NodeId v = 0; v < n; ++v) h[v] = localSeed(g.node(v));

  const int rounds = static_cast<int>(std::min<std::size_t>(n, 32));
  for (int r = 0; r < rounds; ++r) {
    for (NodeId v = 0; v < n; ++v) {
      std::uint64_t acc = fold(localSeed(g.node(v)), h[v]);
      for (const Edge& e : g.node(v).operands) {
        acc = fold(acc, h[e.src]);
        acc = fold(acc, e.dist);
      }
      next[v] = acc;
    }
    h.swap(next);
  }
  return aggregate(std::move(h));
}

GraphDigest layoutHash(const Graph& g) {
  std::uint64_t hi = 0x082EFA98EC4E6C89ull;
  std::uint64_t lo = 0xA4093822299F31D0ull;
  const auto feed = [&](std::uint64_t v) {
    hi = fold(hi, v);
    lo = fold(lo, ~v);
  };
  feed(g.size());
  for (NodeId v = 0; v < g.size(); ++v) {
    feed(localSeed(g.node(v)));
    for (const Edge& e : g.node(v).operands) {
      feed(e.src);
      feed(e.dist);
    }
  }
  return GraphDigest{hi, lo};
}

}  // namespace lamp::ir
