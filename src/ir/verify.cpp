#include <sstream>
#include <string>

#include "ir/passes.h"

namespace lamp::ir {

namespace {

/// Expected operand count per kind; -1 means "any".
int expectedOperands(OpKind kind) {
  switch (kind) {
    case OpKind::Input:
    case OpKind::Const:
      return 0;
    case OpKind::Output:
    case OpKind::Not:
    case OpKind::Shl:
    case OpKind::Shr:
    case OpKind::AShr:
    case OpKind::Slice:
    case OpKind::ZExt:
    case OpKind::SExt:
    case OpKind::Load:
      return 1;
    case OpKind::And:
    case OpKind::Or:
    case OpKind::Xor:
    case OpKind::Concat:
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Eq:
    case OpKind::Ne:
    case OpKind::Lt:
    case OpKind::Le:
    case OpKind::Gt:
    case OpKind::Ge:
    case OpKind::Mul:
    case OpKind::Store:
      return 2;
    case OpKind::Mux:
      return 3;
  }
  return -1;
}

std::string describe(const Graph& g, NodeId id) {
  std::ostringstream os;
  const Node& n = g.node(id);
  os << "node " << id << " (" << opKindName(n.kind);
  if (!n.name.empty()) os << " '" << n.name << "'";
  os << ")";
  return os.str();
}

}  // namespace

std::vector<VerifyIssue> verifyAll(const Graph& g) {
  std::vector<VerifyIssue> issues;
  const auto report = [&](NodeId id, std::string msg) {
    issues.push_back(VerifyIssue{id, describe(g, id) + ": " + std::move(msg)});
  };

  bool anyOutOfRange = false;
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& n = g.node(id);
    const int want = expectedOperands(n.kind);
    // Operand-shape violations make the width checks below unsafe to
    // evaluate (they index operands), so they gate those for this node —
    // but every node is still visited and reports its own violations.
    bool shapeOk = true;
    if (want >= 0 && static_cast<int>(n.operands.size()) != want) {
      report(id, "expected " + std::to_string(want) + " operands, has " +
                     std::to_string(n.operands.size()));
      shapeOk = false;
    }
    for (const Edge& e : n.operands) {
      if (e.src >= g.size()) {
        report(id, "operand id out of range");
        shapeOk = false;
        anyOutOfRange = true;
        continue;
      }
      const Node& src = g.node(e.src);
      if (src.kind == OpKind::Store || src.kind == OpKind::Output) {
        report(id, "consumes a value-less node");
      }
      if (src.name.rfind("placeholder:", 0) == 0 &&
          src.name.find(":bound") == std::string::npos) {
        report(id, "uses an unbound placeholder");
      }
    }
    auto opw = [&](std::size_t k) { return g.node(n.operands[k].src).width; };
    if (shapeOk) {
      switch (n.kind) {
        case OpKind::And:
        case OpKind::Or:
        case OpKind::Xor:
        case OpKind::Add:
        case OpKind::Sub:
          if (opw(0) != opw(1) || n.width != opw(0)) {
            report(id, "operand/result width mismatch");
          }
          break;
        case OpKind::Eq:
        case OpKind::Ne:
        case OpKind::Lt:
        case OpKind::Le:
        case OpKind::Gt:
        case OpKind::Ge:
          if (opw(0) != opw(1) || n.width != 1) {
            report(id, "compare width mismatch");
          }
          break;
        case OpKind::Not:
        case OpKind::Output:
          if (n.width != opw(0)) {
            report(id, "width must match operand");
          }
          break;
        case OpKind::Shl:
        case OpKind::Shr:
        case OpKind::AShr:
          if (n.width != opw(0)) {
            report(id, "shift width must match operand");
          }
          if (n.attr0 < 0 || n.attr0 >= n.width) {
            report(id, "shift amount out of range");
          }
          break;
        case OpKind::Slice:
          if (n.attr0 < 0 || n.attr0 + n.width > opw(0)) {
            report(id, "slice out of bounds");
          }
          break;
        case OpKind::ZExt:
        case OpKind::SExt:
          if (n.width < opw(0)) {
            report(id, "extension narrows");
          }
          break;
        case OpKind::Mux:
          if (opw(0) != 1 || opw(1) != opw(2) || n.width != opw(1)) {
            report(id, "mux width mismatch");
          }
          break;
        case OpKind::Store:
          if (n.width != 0) {
            report(id, "store must have width 0");
          }
          break;
        default:
          break;
      }
    }
    if (n.kind != OpKind::Store && n.width == 0) {
      report(id, "zero width");
    }
    if (n.width > 64) {
      report(id, "width > 64 unsupported");
    }
  }

  // Combinational cycle check: DFS over dist==0 edges. Skipped when any
  // operand id is out of range (the traversal would index invalid nodes).
  if (anyOutOfRange) return issues;
  enum class Mark : std::uint8_t { White, Grey, Black };
  std::vector<Mark> mark(g.size(), Mark::White);
  std::vector<std::pair<NodeId, std::size_t>> stack;
  for (NodeId root = 0; root < g.size(); ++root) {
    if (mark[root] != Mark::White) continue;
    stack.emplace_back(root, 0);
    mark[root] = Mark::Grey;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const Node& n = g.node(id);
      bool descended = false;
      while (next < n.operands.size()) {
        const Edge& e = n.operands[next++];
        if (e.dist != 0) continue;
        if (mark[e.src] == Mark::Grey) {
          issues.push_back(VerifyIssue{
              e.src, "combinational cycle through " + describe(g, e.src)});
          continue;
        }
        if (mark[e.src] == Mark::White) {
          mark[e.src] = Mark::Grey;
          stack.emplace_back(e.src, 0);
          descended = true;
          break;
        }
      }
      if (!descended && next >= n.operands.size()) {
        mark[id] = Mark::Black;
        stack.pop_back();
      }
    }
  }
  return issues;
}

std::optional<std::string> verify(const Graph& g) {
  const std::vector<VerifyIssue> issues = verifyAll(g);
  if (issues.empty()) return std::nullopt;
  return issues.front().message;
}

}  // namespace lamp::ir
