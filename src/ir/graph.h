#ifndef LAMP_IR_GRAPH_H
#define LAMP_IR_GRAPH_H

/// \file graph.h
/// Word-level control/data-flow graph (CDFG) used by the mapping-aware
/// modulo scheduler. Nodes are word-level operations with bit widths;
/// edges carry an inter-iteration dependence distance (0 = same loop
/// iteration, >0 = value produced `dist` iterations earlier).

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lamp::ir {

/// Identifier of a node inside one Graph. Stable for the Graph's lifetime
/// (nodes are never removed, only added).
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Word-level operation kinds.
///
/// Three delay/mapping classes exist (see OpClass):
///  - LUT-mappable logic (bitwise, shifts-by-constant, bit rearrangement,
///    narrow arithmetic) — participates in cut enumeration;
///  - arithmetic that maps to carry chains when wide;
///  - black-box operations (memory/DSP) that never map into LUT cones.
enum class OpKind : std::uint8_t {
  // Primary inputs / outputs / constants.
  Input,   ///< primary input (live-in value), no operands
  Output,  ///< primary output marker, one operand, width = operand width
  Const,   ///< compile-time constant, no operands

  // Bitwise logic: out[j] depends on in_i[j] only.
  And,
  Or,
  Xor,
  Not,

  // Shifts by a *constant* amount (attr0 = shift amount):
  // out[j] depends on a single shifted input bit.
  Shl,   ///< logical shift left
  Shr,   ///< logical shift right
  AShr,  ///< arithmetic shift right (sign fill)

  // Bit rearrangement (free wiring on an FPGA, still tracked for deps).
  Slice,   ///< out = in[attr0 + width - 1 : attr0]
  Concat,  ///< out = {op0, op1} with op0 in the high bits
  ZExt,    ///< zero-extend to `width`
  SExt,    ///< sign-extend to `width`

  // Arithmetic: out[j] depends on all bits <= j of both operands.
  Add,
  Sub,

  // Comparisons: 1-bit result depending on (generically) all input bits.
  // Bit-level dependence tracking special-cases sign tests (x < 0, x >= 0)
  // and comparisons against constants.
  Eq,
  Ne,
  Lt,  ///< signedness from Node::isSigned
  Le,
  Gt,
  Ge,

  // Selection: out[j] depends on {sel[0], a[j], b[j]}.
  Mux,  ///< operands: (sel, a, b); out = sel ? a : b

  // Black boxes — never LUT-mapped, may be resource constrained.
  Mul,   ///< DSP multiply
  Load,  ///< memory read  (attr0 = resource class)
  Store, ///< memory write (attr0 = resource class); width 0 result
};

/// Returns a short lowercase mnemonic ("xor", "add", ...).
std::string_view opKindName(OpKind kind);

/// Parses a mnemonic produced by opKindName(); returns false on failure.
bool parseOpKind(std::string_view name, OpKind& out);

/// Coarse classification used by cut enumeration and the delay model.
enum class OpClass : std::uint8_t {
  Io,        ///< Input / Output / Const
  Bitwise,   ///< And/Or/Xor/Not
  Shift,     ///< Shl/Shr/AShr/Slice/Concat/ZExt/SExt — pure bit routing
  Arith,     ///< Add/Sub and comparisons
  Mux,       ///< Mux
  BlackBox,  ///< Mul/Load/Store
};

/// Maps an OpKind to its OpClass.
OpClass opClass(OpKind kind);

/// True for operations that may be absorbed into a LUT cone
/// (everything except Io and BlackBox).
bool isLutMappable(OpKind kind);

/// True for Mul/Load/Store.
bool isBlackBox(OpKind kind);

/// Resource classes for black-box operations (Eq. 14 of the paper).
enum class ResourceClass : std::uint8_t {
  None = 0,     ///< unconstrained
  MemPortA = 1, ///< memory port (one access per cycle per port)
  MemPortB = 2,
  Dsp = 3,      ///< DSP multiplier block
};

/// Returns a short name for a resource class.
std::string_view resourceClassName(ResourceClass rc);

/// One operand reference: producing node plus inter-iteration distance.
struct Edge {
  NodeId src = kNoNode;
  std::uint32_t dist = 0;  ///< 0 = intra-iteration dependence

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A word-level CDFG node. Plain data; invariants are checked by verify().
struct Node {
  OpKind kind = OpKind::Const;
  std::uint16_t width = 1;      ///< result width in bits (0 for Store)
  bool isSigned = false;        ///< interpretation for AShr/SExt/compares
  std::int32_t attr0 = 0;       ///< shift amount / slice low bit / resource class
  std::uint64_t constValue = 0; ///< value for Const nodes
  std::vector<Edge> operands;
  std::string name;             ///< optional debug name

  /// Resource class for black-box nodes (stored in attr0).
  ResourceClass resourceClass() const {
    return static_cast<ResourceClass>(attr0);
  }
};

/// Word-level CDFG. Nodes are append-only; NodeIds index into nodes().
///
/// The graph represents one iteration of a pipelined loop body (or a
/// straight-line function). Edges with dist > 0 reference values produced
/// by earlier iterations (loop-carried dependences).
class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  /// Appends a node and returns its id.
  NodeId add(Node node);

  /// Number of nodes.
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  const Node& node(NodeId id) const { return nodes_[id]; }
  Node& node(NodeId id) { return nodes_[id]; }

  std::span<const Node> nodes() const { return nodes_; }

  const std::string& name() const { return name_; }
  void setName(std::string name) { name_ = std::move(name); }

  /// Ids of all Output nodes, in insertion order.
  std::vector<NodeId> outputs() const;
  /// Ids of all Input nodes, in insertion order.
  std::vector<NodeId> inputs() const;

  /// Fanout adjacency: fanouts()[u] lists every (consumer, operand index).
  /// Recomputed on demand; invalidated by add().
  struct Fanout {
    NodeId dst;
    std::uint32_t operandIndex;
  };
  const std::vector<std::vector<Fanout>>& fanouts() const;

  /// Count of nodes for which pred(node) holds.
  template <typename Pred>
  std::size_t count(Pred pred) const {
    std::size_t n = 0;
    for (const Node& node : nodes_) {
      if (pred(node)) ++n;
    }
    return n;
  }

 private:
  std::string name_;
  std::vector<Node> nodes_;
  mutable std::vector<std::vector<Fanout>> fanouts_;  // lazy cache
  mutable bool fanoutsValid_ = false;
};

}  // namespace lamp::ir

#endif  // LAMP_IR_GRAPH_H
