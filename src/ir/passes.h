#ifndef LAMP_IR_PASSES_H
#define LAMP_IR_PASSES_H

/// \file passes.h
/// Structural analyses and transforms over CDFGs: verification,
/// topological ordering (back-edge aware), dead-node elimination,
/// GraphViz and text serialization.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace lamp::ir {

/// Checks structural invariants:
///  - operand ids in range, operand counts/widths legal per OpKind,
///  - shift amounts within width, slices within bounds,
///  - no combinational cycles (cycles through dist=0 edges only),
///  - every Output has exactly one operand,
///  - no surviving placeholder uses.
/// Returns std::nullopt on success, else the first violation found (in
/// node-id order). Use verifyAll() to collect every violation.
std::optional<std::string> verify(const Graph& g);

/// One structural violation, tied to the node it was found on. The
/// message embeds the node's id, kind, and name ("node 3 (xor 'p'): ...").
struct VerifyIssue {
  NodeId node = kNoNode;
  std::string message;
};

/// Accumulating form of verify(): visits every node and returns ALL
/// structural violations instead of stopping at the first. An empty
/// vector means the graph is well-formed. verify() is implemented on top
/// of this, so the two never disagree.
std::vector<VerifyIssue> verifyAll(const Graph& g);

/// Topological order of all nodes over intra-iteration (dist == 0) edges.
/// Loop-carried (dist > 0) edges are ignored, so a verified graph always
/// has such an order. Ties are broken by node id for determinism.
std::vector<NodeId> topologicalOrder(const Graph& g);

/// Dead-node elimination: keeps only nodes reachable (against edges,
/// regardless of distance) from Output and Store nodes. Returns the
/// compacted graph; `oldToNew`, if non-null, receives the id remapping
/// (kNoNode for removed nodes).
Graph compact(const Graph& g, std::vector<NodeId>* oldToNew = nullptr);

/// Longest path length (#edges) from any source over dist=0 edges;
/// a rough "logic depth in operations" measure.
std::size_t combinationalDepth(const Graph& g);

struct FoldStats {
  int folded = 0;     ///< nodes replaced by constants
  int forwarded = 0;  ///< identity nodes wired through
};

/// Constant folding + identity forwarding (what an HLS front-end's
/// optimizer does before scheduling): pure operations whose intra-
/// iteration operands are all constant become Const nodes; neutral
/// operations (x&~0, x|0, x^0, shifts by 0, width-preserving extends and
/// slices, muxes with constant selects) are wired through. Loop-carried
/// (dist > 0) operands are never treated as constants — their first
/// iterations read the register reset value. Dead nodes are compacted
/// away; the result is verified-equivalent (see FoldTest).
Graph foldConstants(const Graph& g, FoldStats* stats = nullptr);

/// Writes a GraphViz dot rendering (for debugging / documentation).
void writeDot(std::ostream& os, const Graph& g);

/// Serializes the graph to a stable line-oriented text format.
void writeText(std::ostream& os, const Graph& g);

/// Parses the format produced by writeText(). Returns std::nullopt and
/// fills `error` on malformed input.
std::optional<Graph> readText(std::istream& is, std::string* error = nullptr);

}  // namespace lamp::ir

#endif  // LAMP_IR_PASSES_H
