#ifndef LAMP_IR_HASH_H
#define LAMP_IR_HASH_H

/// \file hash.h
/// Structural digests of CDFGs, the addressing scheme of the lampd
/// solution cache (see src/svc/cache.h):
///
///  - canonicalHash(): invariant under node reordering and under node /
///    graph renaming. Covers opcodes, widths, signedness, attributes,
///    constants and the full edge structure (operand order and
///    inter-iteration distances included). Two graphs that differ in any
///    of those hash differently with overwhelming probability; two
///    graphs that are the same modulo a node permutation and renaming
///    hash identically, always.
///  - layoutHash(): additionally pins the concrete NodeId numbering
///    (still ignoring names). Schedules are per-NodeId vectors, so a
///    cached schedule can only be replayed onto a graph with an equal
///    *layout* hash; the canonical hash addresses the cache bucket, the
///    layout hash gates replay.
///
/// Both are probabilistic 128-bit digests, not canonical forms: equal
/// digests of structurally different graphs are possible in principle
/// but need an engineered collision of the underlying mixer.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ir/graph.h"

namespace lamp::ir {

/// A 128-bit digest with a fixed 32-character lowercase-hex rendering.
struct GraphDigest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const GraphDigest&, const GraphDigest&) = default;
  friend auto operator<=>(const GraphDigest&, const GraphDigest&) = default;

  std::string hex() const;
  static std::optional<GraphDigest> fromHex(std::string_view s);
};

/// Permutation- and name-invariant structural digest (see file comment).
GraphDigest canonicalHash(const Graph& g);

/// NodeId-ordered structural digest; name-invariant, permutation-variant.
GraphDigest layoutHash(const Graph& g);

}  // namespace lamp::ir

#endif  // LAMP_IR_HASH_H
