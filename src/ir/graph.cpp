#include "ir/graph.h"

#include <array>
#include <utility>

namespace lamp::ir {

namespace {

struct KindInfo {
  OpKind kind;
  std::string_view name;
  OpClass cls;
};

constexpr std::array<KindInfo, 27> kKindTable = {{
    {OpKind::Input, "input", OpClass::Io},
    {OpKind::Output, "output", OpClass::Io},
    {OpKind::Const, "const", OpClass::Io},
    {OpKind::And, "and", OpClass::Bitwise},
    {OpKind::Or, "or", OpClass::Bitwise},
    {OpKind::Xor, "xor", OpClass::Bitwise},
    {OpKind::Not, "not", OpClass::Bitwise},
    {OpKind::Shl, "shl", OpClass::Shift},
    {OpKind::Shr, "shr", OpClass::Shift},
    {OpKind::AShr, "ashr", OpClass::Shift},
    {OpKind::Slice, "slice", OpClass::Shift},
    {OpKind::Concat, "concat", OpClass::Shift},
    {OpKind::ZExt, "zext", OpClass::Shift},
    {OpKind::SExt, "sext", OpClass::Shift},
    {OpKind::Add, "add", OpClass::Arith},
    {OpKind::Sub, "sub", OpClass::Arith},
    {OpKind::Eq, "eq", OpClass::Arith},
    {OpKind::Ne, "ne", OpClass::Arith},
    {OpKind::Lt, "lt", OpClass::Arith},
    {OpKind::Le, "le", OpClass::Arith},
    {OpKind::Gt, "gt", OpClass::Arith},
    {OpKind::Ge, "ge", OpClass::Arith},
    {OpKind::Mux, "mux", OpClass::Mux},
    {OpKind::Mul, "mul", OpClass::BlackBox},
    {OpKind::Load, "load", OpClass::BlackBox},
    {OpKind::Store, "store", OpClass::BlackBox},
}};

}  // namespace

std::string_view opKindName(OpKind kind) {
  for (const KindInfo& info : kKindTable) {
    if (info.kind == kind) return info.name;
  }
  return "?";
}

bool parseOpKind(std::string_view name, OpKind& out) {
  for (const KindInfo& info : kKindTable) {
    if (info.name == name) {
      out = info.kind;
      return true;
    }
  }
  return false;
}

OpClass opClass(OpKind kind) {
  for (const KindInfo& info : kKindTable) {
    if (info.kind == kind) return info.cls;
  }
  return OpClass::Io;
}

bool isLutMappable(OpKind kind) {
  const OpClass cls = opClass(kind);
  return cls != OpClass::Io && cls != OpClass::BlackBox;
}

bool isBlackBox(OpKind kind) { return opClass(kind) == OpClass::BlackBox; }

std::string_view resourceClassName(ResourceClass rc) {
  switch (rc) {
    case ResourceClass::None: return "none";
    case ResourceClass::MemPortA: return "memA";
    case ResourceClass::MemPortB: return "memB";
    case ResourceClass::Dsp: return "dsp";
  }
  return "?";
}

NodeId Graph::add(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  fanoutsValid_ = false;
  return id;
}

std::vector<NodeId> Graph::outputs() const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == OpKind::Output) result.push_back(id);
  }
  return result;
}

std::vector<NodeId> Graph::inputs() const {
  std::vector<NodeId> result;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == OpKind::Input) result.push_back(id);
  }
  return result;
}

const std::vector<std::vector<Graph::Fanout>>& Graph::fanouts() const {
  if (!fanoutsValid_) {
    fanouts_.assign(nodes_.size(), {});
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      const Node& n = nodes_[id];
      for (std::uint32_t k = 0; k < n.operands.size(); ++k) {
        fanouts_[n.operands[k].src].push_back(Fanout{id, k});
      }
    }
    fanoutsValid_ = true;
  }
  return fanouts_;
}

}  // namespace lamp::ir
