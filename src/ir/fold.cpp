#include <optional>
#include <vector>

#include "ir/eval.h"
#include "ir/passes.h"

namespace lamp::ir {

namespace {

enum class Act : std::uint8_t { Keep, Fold, Forward };

struct Target {
  NodeId node = kNoNode;
  std::uint32_t dist = 0;
};

}  // namespace

Graph foldConstants(const Graph& g, FoldStats* stats) {
  FoldStats st;
  std::vector<Act> act(g.size(), Act::Keep);
  std::vector<std::uint64_t> foldVal(g.size(), 0);
  std::vector<Target> fwd(g.size());

  // Resolve forwarding chains with a cycle guard (cycles can arise from
  // mutually-forwarding loop-carried identities; they stay Keep).
  const auto resolve = [&](NodeId u, std::uint32_t d) {
    Target t{u, d};
    for (int hops = 0; act[t.node] == Act::Forward; ++hops) {
      if (hops > static_cast<int>(g.size())) break;  // defensive
      const Target& next = fwd[t.node];
      t = Target{next.node, t.dist + next.dist};
    }
    return t;
  };

  // Constant value of a resolved operand reference, if any. Loop-carried
  // references are never constant (register reset semantics).
  const auto constOf = [&](const Target& t) -> std::optional<std::uint64_t> {
    if (t.dist != 0) return std::nullopt;
    if (act[t.node] == Act::Fold) return foldVal[t.node];
    if (g.node(t.node).kind == OpKind::Const) {
      return maskToWidth(g.node(t.node).constValue, g.node(t.node).width);
    }
    return std::nullopt;
  };

  for (const NodeId v : topologicalOrder(g)) {
    const Node& n = g.node(v);
    if (!isLutMappable(n.kind) && n.kind != OpKind::Const) continue;

    std::vector<Target> res;
    std::vector<std::optional<std::uint64_t>> cval;
    bool allConst = true;
    for (const Edge& e : n.operands) {
      res.push_back(resolve(e.src, e.dist));
      cval.push_back(constOf(res.back()));
      allConst &= cval.back().has_value();
    }

    // Full fold.
    if (allConst && !n.operands.empty()) {
      std::vector<std::uint64_t> ops;
      for (const auto& c : cval) ops.push_back(*c);
      if (const auto value = evalPureOp(g, v, ops)) {
        act[v] = Act::Fold;
        foldVal[v] = *value;
        ++st.folded;
        continue;
      }
    }

    // Identity forwarding.
    const auto forward = [&](std::size_t operand) {
      act[v] = Act::Forward;
      fwd[v] = res[operand];
      ++st.forwarded;
    };
    const auto opWidth = [&](std::size_t i) {
      return g.node(n.operands[i].src).width;
    };
    switch (n.kind) {
      case OpKind::And:
        if (cval[0] && *cval[0] == maskToWidth(~0ull, n.width)) forward(1);
        else if (cval[1] && *cval[1] == maskToWidth(~0ull, n.width)) forward(0);
        break;
      case OpKind::Or:
      case OpKind::Xor:
        if (cval[0] && *cval[0] == 0) forward(1);
        else if (cval[1] && *cval[1] == 0) forward(0);
        break;
      case OpKind::Add:
      case OpKind::Sub:
        if (cval[1] && *cval[1] == 0) forward(0);
        else if (n.kind == OpKind::Add && cval[0] && *cval[0] == 0) forward(1);
        break;
      case OpKind::Shl:
      case OpKind::Shr:
      case OpKind::AShr:
        if (n.attr0 == 0) forward(0);
        break;
      case OpKind::ZExt:
      case OpKind::SExt:
        if (n.width == opWidth(0)) forward(0);
        break;
      case OpKind::Slice:
        if (n.attr0 == 0 && n.width == opWidth(0)) forward(0);
        break;
      case OpKind::Mux:
        if (cval[0]) forward(*cval[0] ? 1 : 2);
        break;
      default:
        break;
    }
  }

  // Break forwarding cycles (mutually-forwarding loop identities): every
  // node on an unterminated chain is demoted to Keep. Fold decisions made
  // earlier stay sound — resolving through such a chain never produced a
  // constant.
  for (NodeId v = 0; v < g.size(); ++v) {
    if (act[v] != Act::Forward) continue;
    std::vector<NodeId> path;
    Target t{v, 0};
    while (act[t.node] == Act::Forward && path.size() <= g.size()) {
      path.push_back(t.node);
      const Target& next = fwd[t.node];
      t = Target{next.node, t.dist + next.dist};
    }
    if (path.size() > g.size()) {
      for (const NodeId p : path) {
        if (act[p] == Act::Forward) {
          act[p] = Act::Keep;
          --st.forwarded;
        }
      }
    }
  }

  // Materialize: new ids for surviving nodes (two passes — loop-carried
  // edges may point forward).
  std::vector<NodeId> newId(g.size(), kNoNode);
  Graph out(g.name());
  {
    NodeId next = 0;
    for (NodeId v = 0; v < g.size(); ++v) {
      if (act[v] != Act::Forward) newId[v] = next++;
    }
  }
  for (NodeId v = 0; v < g.size(); ++v) {
    if (act[v] == Act::Forward) continue;
    if (act[v] == Act::Fold) {
      Node c;
      c.kind = OpKind::Const;
      c.width = g.node(v).width;
      c.constValue = foldVal[v];
      c.name = g.node(v).name;
      out.add(std::move(c));
      continue;
    }
    Node copy = g.node(v);
    for (Edge& e : copy.operands) {
      const Target t = resolve(e.src, e.dist);
      e.src = newId[t.node];
      e.dist = t.dist;
    }
    out.add(std::move(copy));
  }

  if (stats) *stats = st;
  return compact(out);
}

}  // namespace lamp::ir
