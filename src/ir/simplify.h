#ifndef LAMP_IR_SIMPLIFY_H
#define LAMP_IR_SIMPLIFY_H

/// \file simplify.h
/// Dataflow-driven graph simplification, plus the plain bit-fact
/// container it consumes. The facts are produced by the fixpoint engine
/// in analyze/dataflow.h; keeping the container here (the lowest layer)
/// lets cut enumeration and the schedule validator consume the same
/// masks without depending on the analyze library.

#include <cstdint>
#include <vector>

#include "ir/graph.h"

namespace lamp::ir {

/// Per-node bit-level facts over ONE graph (vectors indexed by NodeId).
/// All masks are pre-masked to the node's width. A BitFacts instance is
/// meaningless against any other graph — rebuilt graphs (simplify,
/// foldConstants, per-stage remaps) need freshly computed facts.
struct BitFacts {
  /// Bit j of knownMask[v] set: bit j of v has the same value in every
  /// iteration; that value is bit j of knownVal[v]. knownVal is always a
  /// subset of knownMask (unknown bits read 0).
  std::vector<std::uint64_t> knownMask;
  std::vector<std::uint64_t> knownVal;
  /// Bit j set: bit j of v must be *computed* for some observer —
  /// reachable from an Output/Store/black-box AND not already supplied
  /// by knownMask (known bits hard-wire into LUT masks or folds). The
  /// right mask for costing. 0 for dead nodes — consumers that need a
  /// conservative mask must treat 0 as "all width bits" (demandedOf()).
  std::vector<std::uint64_t> demanded;
  /// Bit j set: some observer *reads* bit j of v, known or not — a
  /// superset of demanded. The right mask for rewrites that substitute
  /// a whole value (forwarding, narrowing): every live bit must keep
  /// its exact value, even one the analysis already knows.
  std::vector<std::uint64_t> live;
  /// Unsigned value interval [lo, hi] of v's computed value.
  std::vector<std::uint64_t> lo;
  std::vector<std::uint64_t> hi;

  bool empty() const { return knownMask.empty(); }

  /// True when the vectors index `g` (size match is the only cheap
  /// invariant; callers are responsible for graph identity).
  bool compatibleWith(const Graph& g) const {
    return knownMask.size() == g.size() && knownVal.size() == g.size() &&
           demanded.size() == g.size() && live.size() == g.size() &&
           lo.size() == g.size() && hi.size() == g.size();
  }

  /// Demanded mask with the conservative fallback: a node the backward
  /// pass never reached (demanded == 0) is treated as fully demanded so
  /// masked consumers stay sound on dead or detached logic.
  std::uint64_t demandedOf(const Graph& g, NodeId v) const {
    const std::uint64_t full =
        g.node(v).width >= 64 ? ~0ull : (1ull << g.node(v).width) - 1;
    if (v >= demanded.size()) return full;
    const std::uint64_t d = demanded[v];
    return d == 0 ? full : d;
  }
};

struct SimplifyStats {
  int folded = 0;     ///< nodes replaced by constants
  int forwarded = 0;  ///< identity nodes wired through
  int narrowed = 0;   ///< nodes rebuilt at a smaller width
};

/// Rewrites `g` using `facts` (which must have been computed on `g`):
///  - nodes whose demanded bits are all known become Const nodes,
///  - operations the facts prove neutral (AND with known-1s, OR/XOR with
///    known-0s, muxes with known selects, extends of known-zero tops)
///    are wired through,
///  - Add/Sub/bitwise nodes whose high bits are known zero AND whose
///    consumers never demand them are rebuilt at a smaller width with a
///    ZExt adapter, shrinking later cut supports and carry chains.
/// Dead nodes are compacted away. `oldToNew`, if non-null, receives the
/// composed id remapping (kNoNode for removed nodes). The result
/// verifies and is differential-simulation-equivalent on every demanded
/// output bit (see SimplifyTest).
Graph simplify(const Graph& g, const BitFacts& facts,
               SimplifyStats* stats = nullptr,
               std::vector<NodeId>* oldToNew = nullptr);

}  // namespace lamp::ir

#endif  // LAMP_IR_SIMPLIFY_H
