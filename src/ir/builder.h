#ifndef LAMP_IR_BUILDER_H
#define LAMP_IR_BUILDER_H

/// \file builder.h
/// Convenience API for constructing CDFGs. A Value is a lightweight handle
/// (node id + inter-iteration distance); GraphBuilder methods create nodes
/// with width checking and return Values.
///
/// Example — one step of a xor-reduction with a loop-carried accumulator:
/// \code
///   GraphBuilder b("acc");
///   Value x = b.input("x", 32);
///   Value acc = b.placeholder(32, "acc");       // defined below
///   Value next = b.bxor(x, acc.prev(1));        // acc from last iteration
///   b.bindPlaceholder(acc, next);
///   b.output(next, "out");
/// \endcode

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.h"

namespace lamp::ir {

/// Handle to a node's value, optionally displaced by loop iterations.
struct Value {
  NodeId id = kNoNode;
  std::uint32_t dist = 0;

  bool valid() const { return id != kNoNode; }

  /// The same value produced `extra` iterations earlier.
  Value prev(std::uint32_t extra) const { return Value{id, dist + extra}; }
};

/// Builder for word-level CDFGs with width/operand checking (via assert in
/// debug builds; ir::verify() performs the authoritative full check).
class GraphBuilder {
 public:
  explicit GraphBuilder(std::string graphName) : graph_(std::move(graphName)) {}

  /// Access the graph under construction.
  Graph& graph() { return graph_; }
  const Graph& graph() const { return graph_; }

  /// Moves the finished graph out of the builder.
  Graph take() { return std::move(graph_); }

  // --- sources ------------------------------------------------------------

  Value input(std::string name, std::uint16_t width, bool isSigned = false);
  Value constant(std::uint64_t value, std::uint16_t width);

  /// Creates a Mux-with-self placeholder used to express cyclic
  /// (loop-carried) definitions; see bindPlaceholder().
  Value placeholder(std::uint16_t width, std::string name);

  /// Resolves a placeholder created by placeholder(): rewrites it into a
  /// pass-through of `definition` (an Or with a zero constant so the node
  /// stays LUT-transparent).
  void bindPlaceholder(Value ph, Value definition);

  // --- bitwise ------------------------------------------------------------

  Value band(Value a, Value b, std::string name = {});
  Value bor(Value a, Value b, std::string name = {});
  Value bxor(Value a, Value b, std::string name = {});
  Value bnot(Value a, std::string name = {});

  // --- shifts / bit rearrangement ------------------------------------------

  Value shl(Value a, int amount, std::string name = {});
  Value shr(Value a, int amount, std::string name = {});
  Value ashr(Value a, int amount, std::string name = {});
  Value slice(Value a, int lowBit, std::uint16_t width, std::string name = {});
  Value concat(Value hi, Value lo, std::string name = {});
  Value zext(Value a, std::uint16_t width, std::string name = {});
  Value sext(Value a, std::uint16_t width, std::string name = {});
  /// slice(a, bit, 1)
  Value bit(Value a, int bitIndex, std::string name = {});

  // --- arithmetic / compare -----------------------------------------------

  Value add(Value a, Value b, std::string name = {});
  Value sub(Value a, Value b, std::string name = {});
  Value eq(Value a, Value b, std::string name = {});
  Value ne(Value a, Value b, std::string name = {});
  Value lt(Value a, Value b, bool isSigned, std::string name = {});
  Value le(Value a, Value b, bool isSigned, std::string name = {});
  Value gt(Value a, Value b, bool isSigned, std::string name = {});
  Value ge(Value a, Value b, bool isSigned, std::string name = {});

  // --- select ---------------------------------------------------------------

  /// sel must be 1 bit wide; a and b equal width.
  Value mux(Value sel, Value a, Value b, std::string name = {});

  // --- black boxes ----------------------------------------------------------

  Value mul(Value a, Value b, std::uint16_t width, std::string name = {});
  Value load(ResourceClass rc, Value addr, std::uint16_t width,
             std::string name = {});
  /// Returns the (width-0) store node id for dependence tracking.
  Value store(ResourceClass rc, Value addr, Value data, std::string name = {});

  // --- sinks ---------------------------------------------------------------

  NodeId output(Value v, std::string name);

  /// Width of the node behind a value.
  std::uint16_t width(Value v) const { return graph_.node(v.id).width; }

 private:
  Value binary(OpKind kind, Value a, Value b, std::uint16_t width,
               std::string name, bool isSigned = false);

  Graph graph_;
};

}  // namespace lamp::ir

#endif  // LAMP_IR_BUILDER_H
