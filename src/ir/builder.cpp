#include "ir/builder.h"

#include <utility>

namespace lamp::ir {

Value GraphBuilder::input(std::string name, std::uint16_t width,
                          bool isSigned) {
  Node n;
  n.kind = OpKind::Input;
  n.width = width;
  n.isSigned = isSigned;
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::constant(std::uint64_t value, std::uint16_t width) {
  Node n;
  n.kind = OpKind::Const;
  n.width = width;
  n.constValue = width >= 64 ? value : (value & ((std::uint64_t{1} << width) - 1));
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::placeholder(std::uint16_t width, std::string name) {
  // A placeholder is a Const that will be forwarded away by
  // bindPlaceholder(); it must never survive into a verified graph
  // with uses (bindPlaceholder rewrites all its uses).
  Node n;
  n.kind = OpKind::Const;
  n.width = width;
  n.name = "placeholder:" + std::move(name);
  return Value{graph_.add(std::move(n))};
}

void GraphBuilder::bindPlaceholder(Value ph, Value definition) {
  assert(graph_.node(ph.id).width == graph_.node(definition.id).width);
  for (NodeId id = 0; id < graph_.size(); ++id) {
    for (Edge& e : graph_.node(id).operands) {
      if (e.src == ph.id) {
        e.src = definition.id;
        e.dist += definition.dist;
      }
    }
  }
  // Leave the placeholder node behind as an unused constant; callers that
  // care about exact node counts run ir::compact() afterwards.
  graph_.node(ph.id).name += ":bound";
}

Value GraphBuilder::binary(OpKind kind, Value a, Value b, std::uint16_t width,
                           std::string name, bool isSigned) {
  Node n;
  n.kind = kind;
  n.width = width;
  n.isSigned = isSigned;
  n.operands = {Edge{a.id, a.dist}, Edge{b.id, b.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::band(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::And, a, b, width(a), std::move(name));
}

Value GraphBuilder::bor(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Or, a, b, width(a), std::move(name));
}

Value GraphBuilder::bxor(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Xor, a, b, width(a), std::move(name));
}

Value GraphBuilder::bnot(Value a, std::string name) {
  Node n;
  n.kind = OpKind::Not;
  n.width = width(a);
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::shl(Value a, int amount, std::string name) {
  Node n;
  n.kind = OpKind::Shl;
  n.width = width(a);
  n.attr0 = amount;
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::shr(Value a, int amount, std::string name) {
  Node n;
  n.kind = OpKind::Shr;
  n.width = width(a);
  n.attr0 = amount;
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::ashr(Value a, int amount, std::string name) {
  Node n;
  n.kind = OpKind::AShr;
  n.width = width(a);
  n.attr0 = amount;
  n.isSigned = true;
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::slice(Value a, int lowBit, std::uint16_t w,
                          std::string name) {
  assert(lowBit >= 0 && lowBit + w <= width(a));
  Node n;
  n.kind = OpKind::Slice;
  n.width = w;
  n.attr0 = lowBit;
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::concat(Value hi, Value lo, std::string name) {
  Node n;
  n.kind = OpKind::Concat;
  n.width = static_cast<std::uint16_t>(width(hi) + width(lo));
  n.operands = {Edge{hi.id, hi.dist}, Edge{lo.id, lo.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::zext(Value a, std::uint16_t w, std::string name) {
  assert(w >= width(a));
  Node n;
  n.kind = OpKind::ZExt;
  n.width = w;
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::sext(Value a, std::uint16_t w, std::string name) {
  assert(w >= width(a));
  Node n;
  n.kind = OpKind::SExt;
  n.width = w;
  n.isSigned = true;
  n.operands = {Edge{a.id, a.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::bit(Value a, int bitIndex, std::string name) {
  return slice(a, bitIndex, 1, std::move(name));
}

Value GraphBuilder::add(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Add, a, b, width(a), std::move(name));
}

Value GraphBuilder::sub(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Sub, a, b, width(a), std::move(name));
}

Value GraphBuilder::eq(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Eq, a, b, 1, std::move(name));
}

Value GraphBuilder::ne(Value a, Value b, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Ne, a, b, 1, std::move(name));
}

Value GraphBuilder::lt(Value a, Value b, bool isSigned, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Lt, a, b, 1, std::move(name), isSigned);
}

Value GraphBuilder::le(Value a, Value b, bool isSigned, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Le, a, b, 1, std::move(name), isSigned);
}

Value GraphBuilder::gt(Value a, Value b, bool isSigned, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Gt, a, b, 1, std::move(name), isSigned);
}

Value GraphBuilder::ge(Value a, Value b, bool isSigned, std::string name) {
  assert(width(a) == width(b));
  return binary(OpKind::Ge, a, b, 1, std::move(name), isSigned);
}

Value GraphBuilder::mux(Value sel, Value a, Value b, std::string name) {
  assert(width(sel) == 1);
  assert(width(a) == width(b));
  Node n;
  n.kind = OpKind::Mux;
  n.width = width(a);
  n.operands = {Edge{sel.id, sel.dist}, Edge{a.id, a.dist}, Edge{b.id, b.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::mul(Value a, Value b, std::uint16_t w, std::string name) {
  Node n;
  n.kind = OpKind::Mul;
  n.width = w;
  n.attr0 = static_cast<std::int32_t>(ResourceClass::Dsp);
  n.operands = {Edge{a.id, a.dist}, Edge{b.id, b.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::load(ResourceClass rc, Value addr, std::uint16_t w,
                         std::string name) {
  Node n;
  n.kind = OpKind::Load;
  n.width = w;
  n.attr0 = static_cast<std::int32_t>(rc);
  n.operands = {Edge{addr.id, addr.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

Value GraphBuilder::store(ResourceClass rc, Value addr, Value data,
                          std::string name) {
  Node n;
  n.kind = OpKind::Store;
  n.width = 0;
  n.attr0 = static_cast<std::int32_t>(rc);
  n.operands = {Edge{addr.id, addr.dist}, Edge{data.id, data.dist}};
  n.name = std::move(name);
  return Value{graph_.add(std::move(n))};
}

NodeId GraphBuilder::output(Value v, std::string name) {
  Node n;
  n.kind = OpKind::Output;
  n.width = width(v);
  n.operands = {Edge{v.id, v.dist}};
  n.name = std::move(name);
  return graph_.add(std::move(n));
}

}  // namespace lamp::ir
