#include <algorithm>
#include <deque>
#include <ostream>

#include "ir/passes.h"

namespace lamp::ir {

std::vector<NodeId> topologicalOrder(const Graph& g) {
  std::vector<std::uint32_t> indeg(g.size(), 0);
  for (NodeId id = 0; id < g.size(); ++id) {
    for (const Edge& e : g.node(id).operands) {
      if (e.dist == 0) ++indeg[id];
    }
  }
  // Kahn's algorithm with an id-ordered frontier for determinism.
  std::vector<NodeId> order;
  order.reserve(g.size());
  std::deque<NodeId> frontier;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (indeg[id] == 0) frontier.push_back(id);
  }
  const auto& fanouts = g.fanouts();
  while (!frontier.empty()) {
    const NodeId id = frontier.front();
    frontier.pop_front();
    order.push_back(id);
    for (const Graph::Fanout& f : fanouts[id]) {
      if (g.node(f.dst).operands[f.operandIndex].dist != 0) continue;
      if (--indeg[f.dst] == 0) frontier.push_back(f.dst);
    }
  }
  return order;
}

Graph compact(const Graph& g, std::vector<NodeId>* oldToNew) {
  std::vector<bool> live(g.size(), false);
  std::vector<NodeId> work;
  for (NodeId id = 0; id < g.size(); ++id) {
    const OpKind k = g.node(id).kind;
    if (k == OpKind::Output || k == OpKind::Store) {
      live[id] = true;
      work.push_back(id);
    }
  }
  while (!work.empty()) {
    const NodeId id = work.back();
    work.pop_back();
    for (const Edge& e : g.node(id).operands) {
      if (!live[e.src]) {
        live[e.src] = true;
        work.push_back(e.src);
      }
    }
  }

  // Two passes: ids first, then copies — loop-carried (dist > 0) edges may
  // reference nodes that appear later (or the node itself).
  std::vector<NodeId> remap(g.size(), kNoNode);
  NodeId next = 0;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (live[id]) remap[id] = next++;
  }
  Graph out(g.name());
  for (NodeId id = 0; id < g.size(); ++id) {
    if (!live[id]) continue;
    Node copy = g.node(id);
    for (Edge& e : copy.operands) e.src = remap[e.src];
    out.add(std::move(copy));
  }
  if (oldToNew) *oldToNew = std::move(remap);
  return out;
}

std::size_t combinationalDepth(const Graph& g) {
  std::vector<std::size_t> depth(g.size(), 0);
  std::size_t best = 0;
  for (const NodeId id : topologicalOrder(g)) {
    std::size_t d = 0;
    for (const Edge& e : g.node(id).operands) {
      if (e.dist == 0) d = std::max(d, depth[e.src] + 1);
    }
    depth[id] = d;
    best = std::max(best, d);
  }
  return best;
}

void writeDot(std::ostream& os, const Graph& g) {
  os << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n";
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& n = g.node(id);
    os << "  n" << id << " [label=\"" << opKindName(n.kind);
    if (!n.name.empty()) os << "\\n" << n.name;
    os << "\\nw" << n.width << "\"";
    if (isBlackBox(n.kind)) os << ", shape=box";
    os << "];\n";
  }
  for (NodeId id = 0; id < g.size(); ++id) {
    for (const Edge& e : g.node(id).operands) {
      os << "  n" << e.src << " -> n" << id;
      if (e.dist != 0) os << " [style=dashed, label=\"d" << e.dist << "\"]";
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace lamp::ir
