#include "ir/eval.h"

namespace lamp::ir {

std::uint64_t maskToWidth(std::uint64_t value, std::uint16_t width) {
  if (width >= 64) return value;
  return value & ((std::uint64_t{1} << width) - 1);
}

std::int64_t toSignedWidth(std::uint64_t v, std::uint16_t width) {
  if (width >= 64) return static_cast<std::int64_t>(v);
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  if (v & sign) {
    return static_cast<std::int64_t>(v | ~((std::uint64_t{1} << width) - 1));
  }
  return static_cast<std::int64_t>(v);
}

std::optional<std::uint64_t> evalPureOp(const Graph& g, NodeId v,
                                        std::span<const std::uint64_t> ops) {
  const Node& n = g.node(v);
  const auto opw = [&](std::size_t i) {
    return g.node(n.operands[i].src).width;
  };
  switch (n.kind) {
    case OpKind::Input:
    case OpKind::Load:
    case OpKind::Store:
      return std::nullopt;
    case OpKind::Const:
      return maskToWidth(n.constValue, n.width);
    case OpKind::Output:
      return ops[0];
    case OpKind::And: return ops[0] & ops[1];
    case OpKind::Or: return ops[0] | ops[1];
    case OpKind::Xor: return ops[0] ^ ops[1];
    case OpKind::Not: return maskToWidth(~ops[0], n.width);
    case OpKind::Shl: return maskToWidth(ops[0] << n.attr0, n.width);
    case OpKind::Shr: return ops[0] >> n.attr0;
    case OpKind::AShr: {
      const std::int64_t s = toSignedWidth(ops[0], opw(0));
      return maskToWidth(static_cast<std::uint64_t>(s >> n.attr0), n.width);
    }
    case OpKind::Slice: return maskToWidth(ops[0] >> n.attr0, n.width);
    case OpKind::Concat:
      return maskToWidth((ops[0] << opw(1)) | ops[1], n.width);
    case OpKind::ZExt: return ops[0];
    case OpKind::SExt:
      return maskToWidth(
          static_cast<std::uint64_t>(toSignedWidth(ops[0], opw(0))), n.width);
    case OpKind::Add: return maskToWidth(ops[0] + ops[1], n.width);
    case OpKind::Sub: return maskToWidth(ops[0] - ops[1], n.width);
    case OpKind::Eq: return ops[0] == ops[1] ? 1 : 0;
    case OpKind::Ne: return ops[0] != ops[1] ? 1 : 0;
    case OpKind::Lt:
      return (n.isSigned
                  ? toSignedWidth(ops[0], opw(0)) < toSignedWidth(ops[1], opw(1))
                  : ops[0] < ops[1])
                 ? 1
                 : 0;
    case OpKind::Le:
      return (n.isSigned
                  ? toSignedWidth(ops[0], opw(0)) <= toSignedWidth(ops[1], opw(1))
                  : ops[0] <= ops[1])
                 ? 1
                 : 0;
    case OpKind::Gt:
      return (n.isSigned
                  ? toSignedWidth(ops[0], opw(0)) > toSignedWidth(ops[1], opw(1))
                  : ops[0] > ops[1])
                 ? 1
                 : 0;
    case OpKind::Ge:
      return (n.isSigned
                  ? toSignedWidth(ops[0], opw(0)) >= toSignedWidth(ops[1], opw(1))
                  : ops[0] >= ops[1])
                 ? 1
                 : 0;
    case OpKind::Mux: return ops[0] ? ops[1] : ops[2];
    case OpKind::Mul: return maskToWidth(ops[0] * ops[1], n.width);
  }
  return std::nullopt;
}

}  // namespace lamp::ir
