#ifndef LAMP_IR_EVAL_H
#define LAMP_IR_EVAL_H

/// \file eval.h
/// Evaluation of pure (side-effect-free, non-port) operations, shared by
/// the simulator and the constant-folding pass so semantics can never
/// diverge.

#include <cstdint>
#include <optional>
#include <span>

#include "ir/graph.h"

namespace lamp::ir {

/// Masks a value to `width` bits.
std::uint64_t maskToWidth(std::uint64_t value, std::uint16_t width);

/// Sign-extends the low `width` bits of v to a signed 64-bit value.
std::int64_t toSignedWidth(std::uint64_t v, std::uint16_t width);

/// Evaluates node `v` on already-width-masked operand values. Returns
/// std::nullopt for Input/Load/Store (ports and side effects) — every
/// other kind, including Const and Mul, is computed.
std::optional<std::uint64_t> evalPureOp(const Graph& g, NodeId v,
                                        std::span<const std::uint64_t> ops);

}  // namespace lamp::ir

#endif  // LAMP_IR_EVAL_H
