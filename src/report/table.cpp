#include "report/table.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>
#include <sstream>

namespace lamp::report {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::addRule() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto rule = [&] {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(width[c] + 2, '-');
      os << (c + 1 < header_.size() ? "+" : "");
    }
    os << "\n";
  };
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
      os << (c + 1 < row.size() ? "|" : "");
    }
    os << "\n";
  };
  printRow(header_);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      printRow(row);
    }
  }
}

void Table::printCsv(std::ostream& os) const {
  const auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::string cell = row[c];
      std::erase(cell, ',');
      os << cell << (c + 1 < row.size() ? "," : "");
    }
    os << "\n";
  };
  printRow(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) printRow(row);
  }
}

std::string pctDelta(double value, double baseline) {
  if (baseline == 0.0) {
    return value == 0.0 ? "(+0.0%)" : "(  -  )";
  }
  const double pct = (value - baseline) / baseline * 100.0;
  std::ostringstream os;
  os << '(' << (pct >= 0 ? "+" : "") << fixed(pct, 1) << "%)";
  return os.str();
}

std::string fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

}  // namespace lamp::report
