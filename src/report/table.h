#ifndef LAMP_REPORT_TABLE_H
#define LAMP_REPORT_TABLE_H

/// \file table.h
/// Fixed-width text tables and CSV output for the paper-style reports
/// printed by the bench binaries (Table 1, Table 2, figures).

#include <iosfwd>
#include <string>
#include <vector>

namespace lamp::report {

/// A simple column-aligned table with an optional header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);
  /// Adds a horizontal separator at the current position.
  void addRule();

  void print(std::ostream& os) const;
  void printCsv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = rule
};

/// Formats "(+12.6%)" / "(-42.1%)" relative to a baseline; "(  -  )" when
/// the baseline is zero.
std::string pctDelta(double value, double baseline);

/// Fixed-precision double ("5.43").
std::string fixed(double v, int digits = 2);

}  // namespace lamp::report

#endif  // LAMP_REPORT_TABLE_H
