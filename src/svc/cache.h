#ifndef LAMP_SVC_CACHE_H
#define LAMP_SVC_CACHE_H

/// \file cache.h
/// Content-addressed solution cache — the core of the lampd scheduling
/// service. A solved instance is addressed by
///
///   (canonicalHash(graph), layoutHash(graph), hardOptionKey)
///
/// where the canonical hash is invariant under node reordering/renaming
/// (see ir/hash.h), the layout hash gates replay of the per-NodeId
/// schedule vectors, and the hard option key covers every option that
/// changes the solution space (method, II, alpha/beta, K, ...). The two
/// *soft* axes — clock target tcpNs and solver time limit — live inside
/// the bucket:
///
///  - exact hit: an entry with equal tcpNs and equal time limit returns
///    the stored FlowResult verbatim (bit-identical schedule);
///  - near miss: an entry solved at a clock target no looser than the
///    request (cached tcpNs <= requested tcpNs; any time limit) is
///    returned as a warm-start incumbent — a schedule feasible under a
///    tighter clock stays feasible under a looser one, so branch & bound
///    starts from the previous solve's upper bound instead of cold.
///
/// With a cache directory configured, every insert is persisted as one
/// JSON file (write-to-temp + rename) and the constructor reloads the
/// directory, so a warm daemon restart skips every solved instance.
/// Thread-safe; every public method may be called from any worker.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "ir/hash.h"

namespace lamp::svc {

struct CacheKey {
  ir::GraphDigest canonical;
  ir::GraphDigest layout;
  std::string hardKey;  ///< flow::hardOptionKey()
  double tcpNs = 10.0;
  double timeLimitSeconds = 20.0;
};

struct CacheStats {
  std::uint64_t exactHits = 0;
  std::uint64_t warmHits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t loadedFromDisk = 0;
  std::uint64_t diskWriteFailures = 0;
};

class SolutionCache {
 public:
  /// `dir` empty = in-memory only; otherwise the directory is created if
  /// needed and existing entries are loaded eagerly (unreadable files
  /// are skipped, never fatal).
  explicit SolutionCache(std::string dir = {});

  struct Lookup {
    enum class Kind { Miss, Exact, Warm } kind = Kind::Miss;
    /// Exact: the stored result. Warm: the stored result whose schedule
    /// serves as the warm-start incumbent.
    flow::FlowResult result;
  };

  Lookup lookup(const CacheKey& key);

  /// Stores (and persists) a result. Replaces an existing entry with the
  /// same exact key. Callers only insert successful results.
  void insert(const CacheKey& key, const flow::FlowResult& result);

  CacheStats stats() const;
  std::size_t size() const;
  const std::string& directory() const { return dir_; }

 private:
  struct Entry {
    double tcpNs = 0.0;
    double timeLimitSeconds = 0.0;
    flow::FlowResult result;
  };

  static std::string bucketId(const CacheKey& key);
  std::string entryPath(const CacheKey& key) const;
  void loadDirectory();
  void persist(const CacheKey& key, const flow::FlowResult& result);

  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Entry>> buckets_;
  CacheStats stats_;
};

}  // namespace lamp::svc

#endif  // LAMP_SVC_CACHE_H
