#ifndef LAMP_SVC_SERVER_H
#define LAMP_SVC_SERVER_H

/// \file server.h
/// Transports in front of svc::Service: a stdio loop (`lampd --stdio`,
/// used by tests and the replay harness) and a Unix-domain socket
/// listener (`lampd --socket=PATH`). Both speak the NDJSON protocol of
/// proto.h; responses are written in completion order, clients correlate
/// by id.

#include <atomic>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.h"

namespace lamp::svc {

/// Reads newline-delimited requests from `in` until EOF, writes each
/// response (completion order) to `out`, flushing per line. Returns the
/// number of requests read after all responses have been written.
std::size_t serveStream(Service& svc, std::istream& in, std::ostream& out);

/// Unix-domain socket front end. One reader thread per connection;
/// responses are serialized per connection.
class UnixServer {
 public:
  UnixServer(Service& svc, std::string socketPath);
  ~UnixServer();
  UnixServer(const UnixServer&) = delete;
  UnixServer& operator=(const UnixServer&) = delete;

  /// Binds and listens. Returns false with `error` filled on failure.
  bool listen(std::string* error);

  /// Blocking accept loop; returns after stop() (or a listen error).
  void run();

  /// Closes the listening socket (unblocking run()) and joins finished
  /// connection threads. Live connections end when their peers hang up.
  /// Not async-signal-safe; call from normal context after run() returns.
  void stop();

  /// Async-signal-safe shutdown trigger: unblocks the accept loop so
  /// run() returns. The signal handler calls this; main then calls
  /// stop() to join.
  void requestStop();

  const std::string& socketPath() const { return path_; }

 private:
  void handleClient(int fd);

  Service& svc_;
  std::string path_;
  int listenFd_ = -1;
  std::atomic<bool> running_{false};
  std::vector<std::thread> clients_;
};

}  // namespace lamp::svc

#endif  // LAMP_SVC_SERVER_H
