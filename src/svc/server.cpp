#include "svc/server.h"

#include <condition_variable>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>

#include <sys/socket.h>
#include <unistd.h>

#include "util/socket.h"

namespace lamp::svc {

namespace {

/// Tracks responses still owed on one stream so teardown can wait for
/// them; shared by the submit callbacks, which may outlive the reader
/// loop's stack frame on worker threads.
struct StreamState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t outstanding = 0;

  void add() {
    std::lock_guard<std::mutex> lock(mu);
    ++outstanding;
  }
  void finish() {
    std::lock_guard<std::mutex> lock(mu);
    --outstanding;
    cv.notify_all();
  }
  void waitDrained() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return outstanding == 0; });
  }
};

}  // namespace

std::size_t serveStream(Service& svc, std::istream& in, std::ostream& out) {
  auto state = std::make_shared<StreamState>();
  std::size_t requests = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++requests;
    state->add();
    svc.submit(line, [state, &out](std::string response) {
      {
        // state->mu doubles as the write lock: responses land from
        // worker threads and must not interleave.
        std::lock_guard<std::mutex> lock(state->mu);
        out << response << "\n";
        out.flush();
      }
      state->finish();
    });
  }
  state->waitDrained();
  return requests;
}

UnixServer::UnixServer(Service& svc, std::string socketPath)
    : svc_(svc), path_(std::move(socketPath)) {}

UnixServer::~UnixServer() { stop(); }

bool UnixServer::listen(std::string* error) {
  std::string err;
  listenFd_ = util::listenUnixSocket(path_, err);
  if (listenFd_ < 0) {
    if (error) *error = err;
    return false;
  }
  running_.store(true);
  return true;
}

void UnixServer::run() {
  while (running_.load()) {
    const int fd = util::acceptClient(listenFd_);
    if (fd < 0) break;  // listening socket closed (stop()) or fatal error
    clients_.emplace_back([this, fd] { handleClient(fd); });
  }
}

void UnixServer::handleClient(int fd) {
  auto channel = std::make_shared<util::LineChannel>(fd);
  auto state = std::make_shared<StreamState>();
  std::string line;
  while (channel->readLine(line)) {
    if (line.empty()) continue;
    state->add();
    svc_.submit(line, [state, channel](std::string response) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        (void)channel->writeLine(response);
      }
      state->finish();
    });
  }
  state->waitDrained();
  util::closeFd(fd);
}

void UnixServer::requestStop() {
  running_.store(false);
  // shutdown() (async-signal-safe) makes the blocked accept() fail while
  // leaving the fd for stop() to close in normal context.
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
}

void UnixServer::stop() {
  if (running_.exchange(false)) {
    // Closing the fd makes the blocking accept fail, ending run().
    util::closeFd(listenFd_);
    listenFd_ = -1;
    ::unlink(path_.c_str());
  }
  for (std::thread& t : clients_) {
    if (t.joinable()) t.join();
  }
  clients_.clear();
}

}  // namespace lamp::svc
