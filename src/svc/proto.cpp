#include "svc/proto.h"

#include "flow/flow_json.h"
#include "util/json.h"

namespace lamp::svc {

using util::Json;

namespace {

std::string idText(const Json* id) {
  if (id == nullptr) return "";
  if (id->isString()) return id->asString();
  if (id->isNumber() || id->isBool()) return id->dump();
  return "";
}

}  // namespace

std::optional<Request> parseRequest(const std::string& line,
                                    std::string* error, std::string* idOut) {
  const auto fail = [&](const std::string& msg) -> std::optional<Request> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::string parseError;
  const auto doc = Json::parse(line, &parseError);
  if (!doc) return fail("malformed JSON: " + parseError);
  if (!doc->isObject()) return fail("request is not an object");

  Request req;
  req.id = idText(doc->find("id"));
  if (idOut) *idOut = req.id;

  for (const auto& [key, value] : doc->members()) {
    if (key == "id") {
      // already captured
    } else if (key == "cmd") {
      req.cmd = value.asString();
    } else if (key == "ms") {
      req.sleepMs = value.asDouble();
    } else if (key == "format") {
      if (!value.isString()) return fail("format must be a string");
      req.statsFormat = value.asString();
    } else if (key == "benchmark") {
      if (!value.isString()) return fail("benchmark must be a string");
      req.benchmark = value.asString();
    } else if (key == "graph") {
      if (!value.isString()) return fail("graph must be a string");
      req.graphText = value.asString();
    } else if (key == "method") {
      if (!flow::parseMethodToken(value.asString(), req.method)) {
        return fail("unknown method '" + value.asString() + "'");
      }
    } else if (key == "options") {
      std::string optError;
      if (!flow::optionsFromJson(value, req.options, &optError)) {
        return fail("bad options: " + optError);
      }
    } else if (key == "deadlineMs") {
      req.deadlineMs = value.asDouble();
    } else if (key == "paperScale") {
      req.paperScale = value.asBool();
    } else if (key == "noCache") {
      req.noCache = value.asBool();
    } else {
      return fail("unknown request key '" + key + "'");
    }
  }

  if (req.cmd.empty()) {
    if (req.benchmark.empty() == req.graphText.empty()) {
      return fail("exactly one of 'benchmark' or 'graph' is required");
    }
  } else if (req.cmd != "stats" && req.cmd != "sleep") {
    return fail("unknown cmd '" + req.cmd + "'");
  }
  if (!req.statsFormat.empty()) {
    if (req.cmd != "stats") return fail("'format' is only valid with stats");
    if (req.statsFormat != "json" && req.statsFormat != "prometheus") {
      return fail("unknown stats format '" + req.statsFormat + "'");
    }
    if (req.statsFormat == "json") req.statsFormat.clear();
  }
  return req;
}

std::string errorResponse(const std::string& id, std::string_view status,
                          const std::string& message,
                          const flow::FlowResult* partial,
                          const std::vector<analyze::Diagnostic>* diagnostics) {
  Json j = Json::object();
  j.set("id", Json::string(id));
  j.set("ok", Json::boolean(false));
  j.set("status", Json::string(std::string(status)));
  j.set("error", Json::string(message));
  if (partial != nullptr) j.set("result", flow::resultToJson(*partial));
  if (diagnostics != nullptr && !diagnostics->empty()) {
    j.set("diagnostics", analyze::diagnosticsToJson(*diagnostics));
  }
  return j.dump();
}

std::string resultResponse(const std::string& id, std::string_view cacheState,
                           double queueMs, double wallMs,
                           const flow::FlowResult& result) {
  Json j = Json::object();
  j.set("id", Json::string(id));
  j.set("ok", Json::boolean(true));
  j.set("cache", Json::string(std::string(cacheState)));
  j.set("queueMs", Json::number(queueMs));
  j.set("wallMs", Json::number(wallMs));
  j.set("result", flow::resultToJson(result));
  return j.dump();
}

}  // namespace lamp::svc
