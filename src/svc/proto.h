#ifndef LAMP_SVC_PROTO_H
#define LAMP_SVC_PROTO_H

/// \file proto.h
/// The lampd wire protocol: newline-delimited JSON, one request and one
/// response per line. Responses carry the request's "id" so clients may
/// pipeline; completion order is not arrival order.
///
/// Request:
///   {"id": "r1",
///    "benchmark": "RS" | "graph": "<ir::writeText text>",
///    "method": "hls" | "base" | "map",           // default "map"
///    "options": {"ii":1, "tcpNs":10, "alpha":0.5, "beta":0.5, "k":4,
///                "timeLimitSeconds":20, "latencyMargin":1,
///                "verifyFrames":8, "verifySeed":1, "solverThreads":1,
///                "simplify":0, "emitAnalysis":0},
///                // simplify: rewrite the graph from bit-level dataflow
///                // facts before scheduling (the result then carries
///                // "simplifyMap"); emitAnalysis: attach the per-node
///                // known-bits/range/demanded report as "analysis".
///                // Both are 0/1 integers and are part of the solution
///                // cache key, so cached replays are bit-identical.
///    "deadlineMs": 5000,      // optional total budget (queue + solve)
///    "paperScale": true,      // optional, benchmark-name requests only
///    "noCache": true}         // optional, bypass the solution cache
///
/// Control requests: {"cmd": "stats"} and {"cmd": "sleep", "ms": N}
/// (the latter occupies a worker — a test/diagnostics hook).
///
/// "stats" returns one consistent snapshot of the service metrics
/// registry: the legacy flat "stats" object, a "metrics" object with
/// every counter/gauge/histogram (histograms carry p50/p95/p99), and a
/// "process" object with the process-wide solver registry. With
/// {"cmd":"stats","format":"prometheus"} the response is instead
/// {"ok":true,"prometheus":"<text exposition>"} — the multi-line
/// Prometheus text rides the NDJSON protocol as one string field.
///
/// Success response:
///   {"id":"r1","ok":true,"cache":"hit"|"warm"|"miss"|"off",
///    "queueMs":..,"wallMs":..,"result":{...flow::resultToJson...}}
/// Failure response:
///   {"id":"r1","ok":false,"status":"bad_request"|"overloaded"|
///    "deadline_exceeded"|"flow_failed"|"infeasible","error":"...",
///    ["result":{...}],      // flow_failed keeps the partial result
///    ["diagnostics":[{"code":"LAMP001","severity":"error",
///      "message":"...","nodes":[3,7],"hint":"..."}, ...]]}
///
/// "overloaded" is the bounded-admission rejection: the daemon never
/// buffers beyond its queue cap, it sheds load explicitly.
///
/// "infeasible" is the pre-solve static-analysis rejection: the request
/// was proven unsolvable (see analyze::analyzeGraph) and was answered
/// inline — it never occupied a solver worker or a queue slot. The
/// "diagnostics" array explains why, with stable LAMPnnn codes.

#include <optional>
#include <string>

#include "flow/flow.h"

namespace lamp::svc {

struct Request {
  std::string id;                ///< echoed verbatim ("" if absent)
  std::string cmd;               ///< "", "stats" or "sleep"
  std::string statsFormat;       ///< "" (JSON) or "prometheus"
  double sleepMs = 0.0;
  std::string benchmark;         ///< built-in benchmark name, or
  std::string graphText;         ///< inline .lamp graph text
  flow::Method method = flow::Method::MilpMap;
  flow::FlowOptions options;
  double deadlineMs = 0.0;       ///< 0 = no deadline
  bool paperScale = false;
  bool noCache = false;
};

/// Parses one request line. Unknown top-level or option keys fail the
/// parse (protocol drift guard). On failure returns std::nullopt with
/// `error` and `idOut` (best-effort) filled.
std::optional<Request> parseRequest(const std::string& line,
                                    std::string* error, std::string* idOut);

/// `diagnostics`, when non-null and non-empty, is attached as a
/// top-level "diagnostics" array (used by the "infeasible" status).
std::string errorResponse(
    const std::string& id, std::string_view status, const std::string& message,
    const flow::FlowResult* partial = nullptr,
    const std::vector<analyze::Diagnostic>* diagnostics = nullptr);

std::string resultResponse(const std::string& id, std::string_view cacheState,
                           double queueMs, double wallMs,
                           const flow::FlowResult& result);

}  // namespace lamp::svc

#endif  // LAMP_SVC_PROTO_H
