#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "flow/flow_json.h"
#include "ir/passes.h"
#include "util/json.h"
#include "util/timer.h"
#include "workloads/workloads.h"

namespace lamp::svc {

using util::Json;

namespace {

/// Resolves a request's graph — a built-in benchmark name or an inline
/// .lamp text — into a Benchmark. Pure; returns false with `error` set
/// when the name is unknown or the text does not parse.
bool resolveBenchmark(const Request& req, workloads::Benchmark& bm,
                      std::string* error) {
  if (!req.benchmark.empty()) {
    const auto scale =
        req.paperScale ? workloads::Scale::Paper : workloads::Scale::Default;
    for (auto& candidate : workloads::allBenchmarks(scale)) {
      if (candidate.name == req.benchmark) {
        bm = std::move(candidate);
        return true;
      }
    }
    if (error) *error = "unknown benchmark '" + req.benchmark + "'";
    return false;
  }
  std::istringstream in(req.graphText);
  std::string parseError;
  auto g = ir::readText(in, &parseError);
  if (!g) {
    if (error) *error = "graph parse error: " + parseError;
    return false;
  }
  bm = workloads::benchmarkFromGraph(std::move(*g), "service request");
  return true;
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir) {
  if (opts_.workers <= 0) opts_.workers = util::ThreadPool::defaultThreads();
  if (opts_.queueCap < 1) opts_.queueCap = 1;
  pool_ = std::make_unique<util::ThreadPool>(opts_.workers);
}

Service::~Service() { pool_->wait(); }

void Service::drain() { pool_->wait(); }

void Service::submit(const std::string& line,
                     std::function<void(std::string)> done) {
  counters_.received.fetch_add(1, std::memory_order_relaxed);

  std::string error, id;
  auto req = parseRequest(line, &error, &id);
  if (!req) {
    counters_.badRequests.fetch_add(1, std::memory_order_relaxed);
    done(errorResponse(id, "bad_request", error));
    return;
  }

  if (req->cmd == "stats") {  // served inline, never queued
    counters_.served.fetch_add(1, std::memory_order_relaxed);
    done(statsJson());
    return;
  }

  // Resolve the graph and run the pre-solve static analysis inline: a
  // request the analysis proves doomed (clock-infeasible op, recurrence
  // MII beyond the retry window, malformed IR, ...) is answered in
  // microseconds with structured diagnostics and never occupies a queue
  // slot or a solver worker — its whole deadline budget stays unspent.
  // The same gate runs again inside flow::runFlow (shared via
  // flow::analysisOptions), so the two layers cannot disagree.
  workloads::Benchmark bm;
  if (req->cmd.empty()) {
    std::string resolveError;
    if (!resolveBenchmark(*req, bm, &resolveError)) {
      counters_.badRequests.fetch_add(1, std::memory_order_relaxed);
      done(errorResponse(req->id, "bad_request", resolveError));
      return;
    }
    analyze::AnalysisReport report = analyze::analyzeGraph(
        bm.graph, flow::analysisOptions(bm, req->method, req->options));
    if (report.hasErrors()) {
      counters_.infeasible.fetch_add(1, std::memory_order_relaxed);
      done(errorResponse(
          req->id, "infeasible",
          "pre-solve analysis: " + analyze::summarizeErrors(report), nullptr,
          &report.diagnostics));
      return;
    }
  }

  // Bounded admission: reject instead of buffering without limit. The
  // counter tracks admitted-but-not-started requests, so the cap bounds
  // queueing delay independently of how long individual solves run.
  int depth = queued_.load(std::memory_order_relaxed);
  do {
    if (depth >= opts_.queueCap) {
      counters_.overloaded.fetch_add(1, std::memory_order_relaxed);
      done(errorResponse(req->id, "overloaded",
                         "admission queue full (cap " +
                             std::to_string(opts_.queueCap) + ")"));
      return;
    }
  } while (!queued_.compare_exchange_weak(depth, depth + 1,
                                          std::memory_order_relaxed));

  pool_->submit([this, req = std::move(*req), bm = std::move(bm),
                 done = std::move(done),
                 enqueued = std::chrono::steady_clock::now()]() mutable {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    const double queueMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - enqueued)
            .count();
    done(process(req, bm, queueMs));
  });
}

std::string Service::call(const std::string& line) {
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool ready = false;
  submit(line, [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(r);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return response;
}

std::string Service::process(const Request& req,
                             const workloads::Benchmark& bm, double queueMs) {
  if (req.cmd == "sleep") {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(req.sleepMs));
    counters_.served.fetch_add(1, std::memory_order_relaxed);
    Json j = Json::object();
    j.set("id", Json::string(req.id));
    j.set("ok", Json::boolean(true));
    j.set("sleptMs", Json::number(req.sleepMs));
    return j.dump();
  }

  // Deadline check on pickup: a request that spent its whole budget in
  // the queue is answered without burning a solve on it.
  if (req.deadlineMs > 0 && queueMs >= req.deadlineMs) {
    counters_.deadlineExceeded.fetch_add(1, std::memory_order_relaxed);
    return errorResponse(req.id, "deadline_exceeded",
                         "deadline of " + std::to_string(req.deadlineMs) +
                             " ms expired after " + std::to_string(queueMs) +
                             " ms in queue");
  }
  return runFlowRequest(req, bm, queueMs);
}

std::string Service::runFlowRequest(const Request& req,
                                    const workloads::Benchmark& bm,
                                    double queueMs) {
  util::Stopwatch wall;

  flow::FlowOptions opts = req.options;
  opts.solverTimeLimitSeconds =
      std::min(opts.solverTimeLimitSeconds, opts_.maxTimeLimitSeconds);
  if (req.deadlineMs > 0) {
    // Leave the remaining budget to the solver; queue time already spent
    // counts against it.
    opts.solverTimeLimitSeconds = std::min(
        opts.solverTimeLimitSeconds, (req.deadlineMs - queueMs) / 1000.0);
  }

  const bool useCache = opts_.cacheEnabled && !req.noCache;
  CacheKey key;
  if (useCache) {
    key.canonical = ir::canonicalHash(bm.graph);
    key.layout = ir::layoutHash(bm.graph);
    key.hardKey = flow::hardOptionKey(req.method, opts);
    // paperScale picks a different graph per name, but the graph hash
    // already separates the two sizes — no need to key on the flag.
    key.tcpNs = opts.tcpNs;
    key.timeLimitSeconds = opts.solverTimeLimitSeconds;
  }

  std::string cacheState = useCache ? "miss" : "off";
  flow::FlowResult warmSource;
  if (useCache) {
    SolutionCache::Lookup hit = cache_.lookup(key);
    if (hit.kind == SolutionCache::Lookup::Kind::Exact) {
      counters_.served.fetch_add(1, std::memory_order_relaxed);
      return resultResponse(req.id, "hit", queueMs, wall.seconds() * 1000.0,
                            hit.result);
    }
    if (hit.kind == SolutionCache::Lookup::Kind::Warm) {
      cacheState = "warm";
      warmSource = std::move(hit.result);
      opts.warmStartHint = &warmSource.schedule;
    }
  }

  const flow::FlowResult result = flow::runFlow(bm, req.method, opts);
  if (useCache && result.success) cache_.insert(key, result);

  if (!result.success) {
    counters_.flowFailures.fetch_add(1, std::memory_order_relaxed);
    // The partial result rides along: a verification failure after a
    // successful solve still carries its schedule and solver stats.
    return errorResponse(req.id, "flow_failed", result.error, &result);
  }
  counters_.served.fetch_add(1, std::memory_order_relaxed);
  return resultResponse(req.id, cacheState, queueMs, wall.seconds() * 1000.0,
                        result);
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.received = counters_.received.load(std::memory_order_relaxed);
  s.served = counters_.served.load(std::memory_order_relaxed);
  s.badRequests = counters_.badRequests.load(std::memory_order_relaxed);
  s.overloaded = counters_.overloaded.load(std::memory_order_relaxed);
  s.deadlineExceeded =
      counters_.deadlineExceeded.load(std::memory_order_relaxed);
  s.flowFailures = counters_.flowFailures.load(std::memory_order_relaxed);
  s.infeasible = counters_.infeasible.load(std::memory_order_relaxed);
  return s;
}

std::string Service::statsJson() const {
  const ServiceStats s = stats();
  const CacheStats c = cache_.stats();
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  Json stats = Json::object();
  stats.set("received", Json::integer(static_cast<std::int64_t>(s.received)));
  stats.set("served", Json::integer(static_cast<std::int64_t>(s.served)));
  stats.set("badRequests",
            Json::integer(static_cast<std::int64_t>(s.badRequests)));
  stats.set("overloaded",
            Json::integer(static_cast<std::int64_t>(s.overloaded)));
  stats.set("deadlineExceeded",
            Json::integer(static_cast<std::int64_t>(s.deadlineExceeded)));
  stats.set("flowFailures",
            Json::integer(static_cast<std::int64_t>(s.flowFailures)));
  stats.set("infeasible",
            Json::integer(static_cast<std::int64_t>(s.infeasible)));
  stats.set("workers", Json::integer(opts_.workers));
  stats.set("queueCap", Json::integer(opts_.queueCap));
  Json cache = Json::object();
  cache.set("entries", Json::integer(static_cast<std::int64_t>(cache_.size())));
  cache.set("exactHits",
            Json::integer(static_cast<std::int64_t>(c.exactHits)));
  cache.set("warmHits", Json::integer(static_cast<std::int64_t>(c.warmHits)));
  cache.set("misses", Json::integer(static_cast<std::int64_t>(c.misses)));
  cache.set("inserts", Json::integer(static_cast<std::int64_t>(c.inserts)));
  cache.set("loadedFromDisk",
            Json::integer(static_cast<std::int64_t>(c.loadedFromDisk)));
  cache.set("dir", Json::string(cache_.directory()));
  stats.set("cache", std::move(cache));
  j.set("stats", std::move(stats));
  return j.dump();
}

}  // namespace lamp::svc
