#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

#include "flow/flow_json.h"
#include "ir/passes.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/timer.h"
#include "workloads/workloads.h"

namespace lamp::svc {

using util::Json;

namespace {

/// Resolves a request's graph — a built-in benchmark name or an inline
/// .lamp text — into a Benchmark. Pure; returns false with `error` set
/// when the name is unknown or the text does not parse.
bool resolveBenchmark(const Request& req, workloads::Benchmark& bm,
                      std::string* error) {
  if (!req.benchmark.empty()) {
    const auto scale =
        req.paperScale ? workloads::Scale::Paper : workloads::Scale::Default;
    for (auto& candidate : workloads::allBenchmarks(scale)) {
      if (candidate.name == req.benchmark) {
        bm = std::move(candidate);
        return true;
      }
    }
    if (error) *error = "unknown benchmark '" + req.benchmark + "'";
    return false;
  }
  std::istringstream in(req.graphText);
  std::string parseError;
  auto g = ir::readText(in, &parseError);
  if (!g) {
    if (error) *error = "graph parse error: " + parseError;
    return false;
  }
  bm = workloads::benchmarkFromGraph(std::move(*g), "service request");
  return true;
}

/// One NDJSON record per answered request (no-op unless a log sink is
/// attached, see obs::setLogSink). `deadlineMs <= 0` omits the slack.
void logRequestDone(const Request& req, std::string_view status,
                    std::string_view cache, double queueMs, double wallMs) {
  if (!obs::logEnabled()) return;
  Json f = Json::object();
  f.set("id", Json::string(req.id));
  f.set("status", Json::string(std::string(status)));
  if (!cache.empty()) f.set("cache", Json::string(std::string(cache)));
  f.set("queueMs", Json::number(queueMs));
  f.set("wallMs", Json::number(wallMs));
  if (req.deadlineMs > 0) {
    f.set("deadlineSlackMs",
          Json::number(req.deadlineMs - queueMs - wallMs));
  }
  obs::logEvent("request_done", std::move(f));
}

}  // namespace

Service::Service(ServiceOptions opts)
    : opts_(std::move(opts)), cache_(opts_.cacheDir) {
  if (opts_.workers <= 0) opts_.workers = util::ThreadPool::defaultThreads();
  if (opts_.queueCap < 1) opts_.queueCap = 1;

  cReceived_ = &metrics_.counter("lamp_svc_requests_received_total",
                                 "requests submitted");
  cServed_ = &metrics_.counter("lamp_svc_requests_served_total",
                               "requests answered ok");
  cBadRequests_ = &metrics_.counter("lamp_svc_bad_requests_total",
                                    "parse/resolve rejections");
  cOverloaded_ = &metrics_.counter("lamp_svc_overloaded_total",
                                   "bounded-admission rejections");
  cDeadlineExceeded_ = &metrics_.counter(
      "lamp_svc_deadline_exceeded_total", "deadlines expired in queue");
  cFlowFailures_ = &metrics_.counter("lamp_svc_flow_failures_total",
                                     "flows that failed to produce a result");
  cInfeasible_ = &metrics_.counter("lamp_svc_infeasible_total",
                                   "pre-solve analysis rejections");
  gQueueDepth_ = &metrics_.gauge("lamp_svc_queue_depth",
                                 "admitted requests not yet started");
  gUptime_ = &metrics_.gauge("lamp_svc_uptime_seconds",
                             "seconds since service start");
  gCacheEntries_ = &metrics_.gauge("lamp_svc_cache_entries",
                                   "solution cache entries");
  hQueueWaitMs_ = &metrics_.histogram(
      "lamp_svc_queue_wait_ms", obs::Histogram::exponentialBounds(0.1, 4.0, 10),
      "time between admission and worker pickup");
  hSolveSeconds_ = &metrics_.histogram(
      "lamp_svc_solve_seconds",
      obs::Histogram::exponentialBounds(0.001, 4.0, 12),
      "wall time per flow request (cache hits included)");

  pool_ = std::make_unique<util::ThreadPool>(opts_.workers);
}

Service::~Service() { pool_->wait(); }

void Service::drain() { pool_->wait(); }

void Service::submit(const std::string& line,
                     std::function<void(std::string)> done) {
  cReceived_->inc();

  std::string error, id;
  auto req = parseRequest(line, &error, &id);
  if (!req) {
    cBadRequests_->inc();
    Request rejected;
    rejected.id = id;
    logRequestDone(rejected, "bad_request", {}, 0.0, 0.0);
    done(errorResponse(id, "bad_request", error));
    return;
  }

  if (req->cmd == "stats") {  // served inline, never queued
    cServed_->inc();
    if (req->statsFormat == "prometheus") {
      // The multi-line exposition rides the NDJSON protocol as one
      // string field; clients (lamp-cli --format=prometheus) unwrap it.
      Json j = Json::object();
      if (!req->id.empty()) j.set("id", Json::string(req->id));
      j.set("ok", Json::boolean(true));
      j.set("prometheus", Json::string(statsPrometheus()));
      done(j.dump());
      return;
    }
    done(statsJson(req->id));
    return;
  }

  // Resolve the graph and run the pre-solve static analysis inline: a
  // request the analysis proves doomed (clock-infeasible op, recurrence
  // MII beyond the retry window, malformed IR, ...) is answered in
  // microseconds with structured diagnostics and never occupies a queue
  // slot or a solver worker — its whole deadline budget stays unspent.
  // The same gate runs again inside flow::runFlow (shared via
  // flow::analysisOptions), so the two layers cannot disagree.
  workloads::Benchmark bm;
  if (req->cmd.empty()) {
    std::string resolveError;
    if (!resolveBenchmark(*req, bm, &resolveError)) {
      cBadRequests_->inc();
      logRequestDone(*req, "bad_request", {}, 0.0, 0.0);
      done(errorResponse(req->id, "bad_request", resolveError));
      return;
    }
    analyze::AnalysisReport report = analyze::analyzeGraph(
        bm.graph, flow::analysisOptions(bm, req->method, req->options));
    if (report.hasErrors()) {
      cInfeasible_->inc();
      logRequestDone(*req, "infeasible", {}, 0.0, 0.0);
      done(errorResponse(
          req->id, "infeasible",
          "pre-solve analysis: " + analyze::summarizeErrors(report), nullptr,
          &report.diagnostics));
      return;
    }
  }

  // Bounded admission: reject instead of buffering without limit. The
  // counter tracks admitted-but-not-started requests, so the cap bounds
  // queueing delay independently of how long individual solves run.
  int depth = queued_.load(std::memory_order_relaxed);
  do {
    if (depth >= opts_.queueCap) {
      cOverloaded_->inc();
      logRequestDone(*req, "overloaded", {}, 0.0, 0.0);
      done(errorResponse(req->id, "overloaded",
                         "admission queue full (cap " +
                             std::to_string(opts_.queueCap) + ")"));
      return;
    }
  } while (!queued_.compare_exchange_weak(depth, depth + 1,
                                          std::memory_order_relaxed));

  pool_->submit([this, req = std::move(*req), bm = std::move(bm),
                 done = std::move(done),
                 enqueued = std::chrono::steady_clock::now()]() mutable {
    queued_.fetch_sub(1, std::memory_order_relaxed);
    const double queueMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - enqueued)
            .count();
    done(process(req, bm, queueMs));
  });
}

std::string Service::call(const std::string& line) {
  std::mutex mu;
  std::condition_variable cv;
  std::string response;
  bool ready = false;
  submit(line, [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(r);
    ready = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return ready; });
  return response;
}

std::string Service::process(const Request& req,
                             const workloads::Benchmark& bm, double queueMs) {
  hQueueWaitMs_->observe(queueMs);
  if (req.cmd == "sleep") {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(req.sleepMs));
    cServed_->inc();
    Json j = Json::object();
    j.set("id", Json::string(req.id));
    j.set("ok", Json::boolean(true));
    j.set("sleptMs", Json::number(req.sleepMs));
    return j.dump();
  }

  // Deadline check on pickup: a request that spent its whole budget in
  // the queue is answered without burning a solve on it.
  if (req.deadlineMs > 0 && queueMs >= req.deadlineMs) {
    cDeadlineExceeded_->inc();
    logRequestDone(req, "deadline_exceeded", {}, queueMs, 0.0);
    return errorResponse(req.id, "deadline_exceeded",
                         "deadline of " + std::to_string(req.deadlineMs) +
                             " ms expired after " + std::to_string(queueMs) +
                             " ms in queue");
  }
  return runFlowRequest(req, bm, queueMs);
}

std::string Service::runFlowRequest(const Request& req,
                                    const workloads::Benchmark& bm,
                                    double queueMs) {
  util::Stopwatch wall;

  flow::FlowOptions opts = req.options;
  opts.solverTimeLimitSeconds =
      std::min(opts.solverTimeLimitSeconds, opts_.maxTimeLimitSeconds);
  if (req.deadlineMs > 0) {
    // Leave the remaining budget to the solver; queue time already spent
    // counts against it.
    opts.solverTimeLimitSeconds = std::min(
        opts.solverTimeLimitSeconds, (req.deadlineMs - queueMs) / 1000.0);
  }

  const bool useCache = opts_.cacheEnabled && !req.noCache;
  CacheKey key;
  if (useCache) {
    key.canonical = ir::canonicalHash(bm.graph);
    key.layout = ir::layoutHash(bm.graph);
    key.hardKey = flow::hardOptionKey(req.method, opts);
    // paperScale picks a different graph per name, but the graph hash
    // already separates the two sizes — no need to key on the flag.
    key.tcpNs = opts.tcpNs;
    key.timeLimitSeconds = opts.solverTimeLimitSeconds;
  }

  std::string cacheState = useCache ? "miss" : "off";
  flow::FlowResult warmSource;
  if (useCache) {
    SolutionCache::Lookup hit = cache_.lookup(key);
    if (hit.kind == SolutionCache::Lookup::Kind::Exact) {
      cServed_->inc();
      const double wallMs = wall.seconds() * 1000.0;
      hSolveSeconds_->observe(wall.seconds());
      logRequestDone(req, "ok", "hit", queueMs, wallMs);
      return resultResponse(req.id, "hit", queueMs, wallMs, hit.result);
    }
    if (hit.kind == SolutionCache::Lookup::Kind::Warm) {
      cacheState = "warm";
      warmSource = std::move(hit.result);
      opts.warmStartHint = &warmSource.schedule;
    }
  }

  const flow::FlowResult result = flow::runFlow(bm, req.method, opts);
  if (useCache && result.success) cache_.insert(key, result);

  const double wallMs = wall.seconds() * 1000.0;
  hSolveSeconds_->observe(wall.seconds());
  if (!result.success) {
    cFlowFailures_->inc();
    logRequestDone(req, "flow_failed", cacheState, queueMs, wallMs);
    // The partial result rides along: a verification failure after a
    // successful solve still carries its schedule and solver stats.
    return errorResponse(req.id, "flow_failed", result.error, &result);
  }
  cServed_->inc();
  logRequestDone(req, "ok", cacheState, queueMs, wallMs);
  return resultResponse(req.id, cacheState, queueMs, wallMs, result);
}

ServiceStats Service::stats() const {
  ServiceStats s;
  s.received = cReceived_->value();
  s.served = cServed_->value();
  s.badRequests = cBadRequests_->value();
  s.overloaded = cOverloaded_->value();
  s.deadlineExceeded = cDeadlineExceeded_->value();
  s.flowFailures = cFlowFailures_->value();
  s.infeasible = cInfeasible_->value();
  return s;
}

void Service::refreshGauges() const {
  gQueueDepth_->set(static_cast<double>(queued_.load(std::memory_order_relaxed)));
  gUptime_->set(uptime_.seconds());
  gCacheEntries_->set(static_cast<double>(cache_.size()));
}

std::string Service::statsJson(const std::string& id) const {
  refreshGauges();
  // One registry pass: every counter/gauge/histogram below is read in
  // the same locked traversal (obs::Registry::toJson), not one load per
  // field at drifting instants like the pre-obs statsJson.
  util::Json metrics = metrics_.toJson();

  const auto metricValue = [&](const char* name) -> std::int64_t {
    const Json* m = metrics.find(name);
    const Json* v = m != nullptr ? m->find("value") : nullptr;
    return v != nullptr ? v->asInt(0) : 0;
  };

  const CacheStats c = cache_.stats();
  Json j = Json::object();
  if (!id.empty()) j.set("id", Json::string(id));
  j.set("ok", Json::boolean(true));
  Json stats = Json::object();
  // Legacy flat fields, kept for wire back-compat — sourced from the
  // same snapshot as the "metrics" object below.
  stats.set("received",
            Json::integer(metricValue("lamp_svc_requests_received_total")));
  stats.set("served",
            Json::integer(metricValue("lamp_svc_requests_served_total")));
  stats.set("badRequests",
            Json::integer(metricValue("lamp_svc_bad_requests_total")));
  stats.set("overloaded",
            Json::integer(metricValue("lamp_svc_overloaded_total")));
  stats.set("deadlineExceeded",
            Json::integer(metricValue("lamp_svc_deadline_exceeded_total")));
  stats.set("flowFailures",
            Json::integer(metricValue("lamp_svc_flow_failures_total")));
  stats.set("infeasible",
            Json::integer(metricValue("lamp_svc_infeasible_total")));
  stats.set("workers", Json::integer(opts_.workers));
  stats.set("queueCap", Json::integer(opts_.queueCap));
  stats.set("uptimeSeconds", Json::number(uptime_.seconds()));
  Json cache = Json::object();
  cache.set("entries", Json::integer(static_cast<std::int64_t>(cache_.size())));
  cache.set("exactHits",
            Json::integer(static_cast<std::int64_t>(c.exactHits)));
  cache.set("warmHits", Json::integer(static_cast<std::int64_t>(c.warmHits)));
  cache.set("misses", Json::integer(static_cast<std::int64_t>(c.misses)));
  cache.set("inserts", Json::integer(static_cast<std::int64_t>(c.inserts)));
  cache.set("loadedFromDisk",
            Json::integer(static_cast<std::int64_t>(c.loadedFromDisk)));
  cache.set("dir", Json::string(cache_.directory()));
  stats.set("cache", std::move(cache));
  j.set("stats", std::move(stats));
  // The full registry: counters, gauges and histograms with p50/p95/p99.
  j.set("metrics", std::move(metrics));
  // Process-wide solver telemetry (MILP node/prune/steal counters and
  // solve-latency histogram), shared by every service in the process.
  j.set("process", obs::Registry::global().toJson());
  return j.dump();
}

std::string Service::statsPrometheus() const {
  refreshGauges();
  return metrics_.toPrometheus() + obs::Registry::global().toPrometheus();
}

}  // namespace lamp::svc
