#ifndef LAMP_SVC_SERVICE_H
#define LAMP_SVC_SERVICE_H

/// \file service.h
/// The scheduling service: parses protocol requests (proto.h), admits
/// them into a *bounded* queue in front of the PR-1 thread pool, serves
/// repeats from the content-addressed solution cache (cache.h), and
/// renders responses. Transport-agnostic — server.h plugs stdio or a
/// Unix socket in front, tests and benches call it directly.
///
/// Request lifecycle:
///   parse -> resolve graph + pre-solve static analysis (bad or provably
///            infeasible requests are answered inline with structured
///            diagnostics — they never occupy a queue slot or worker)
///         -> admission (queue depth < queueCap, else "overloaded")
///         -> worker picks up (deadline re-checked; expired requests are
///            answered "deadline_exceeded" without solving)
///         -> cache lookup (exact hit -> cached result verbatim;
///            near miss -> cached schedule becomes the MILP warm-start
///            incumbent; miss -> cold solve)
///         -> successful solves inserted (and persisted) into the cache
///         -> response via the completion callback.
///
/// Back-pressure is explicit: the queue never grows past queueCap, so a
/// traffic burst costs each rejected client one round-trip instead of
/// unbounded daemon memory and unbounded queueing delay for everyone.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "svc/cache.h"
#include "svc/proto.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lamp::svc {

struct ServiceOptions {
  /// Worker threads (<= 0: util::ThreadPool::defaultThreads()).
  int workers = 0;
  /// Bounded admission: maximum requests admitted but not yet started.
  /// Beyond it, submissions are rejected with status "overloaded".
  int queueCap = 64;
  /// Solution-cache directory ("" = in-memory cache only).
  std::string cacheDir;
  /// Upper clamp on any request's solver time limit.
  double maxTimeLimitSeconds = 300.0;
  /// Disables the cache entirely (every request solves cold).
  bool cacheEnabled = true;
};

struct ServiceStats {
  std::uint64_t received = 0;
  std::uint64_t served = 0;
  std::uint64_t badRequests = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadlineExceeded = 0;
  std::uint64_t flowFailures = 0;
  /// Requests rejected inline by the pre-solve static analysis.
  std::uint64_t infeasible = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();  ///< drains all in-flight work
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Asynchronous entry point: parses and admits `line`; `done` receives
  /// exactly one response line, possibly on a worker thread and possibly
  /// before submit returns (rejections respond inline).
  void submit(const std::string& line, std::function<void(std::string)> done);

  /// Synchronous convenience wrapper (waits for the response).
  std::string call(const std::string& line);

  /// Blocks until every admitted request has been answered.
  void drain();

  /// One consistent snapshot of the whole metrics registry (service
  /// counters, latency histograms with p50/p95/p99, cache state, queue
  /// depth and uptime gauges) rendered as the "stats" JSON response.
  /// Unlike the pre-obs implementation, every value comes from the same
  /// registry pass — no counter is read at a different instant than its
  /// neighbors. `id`, when non-empty, is echoed as the response "id"
  /// (protocol pipelining contract).
  std::string statsJson(const std::string& id = {}) const;
  /// Same snapshot in Prometheus text exposition format, concatenated
  /// with the process-global registry (MILP solver telemetry).
  std::string statsPrometheus() const;
  ServiceStats stats() const;
  const SolutionCache& cache() const { return cache_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  std::string process(const Request& req, const workloads::Benchmark& bm,
                      double queueMs);
  std::string runFlowRequest(const Request& req,
                             const workloads::Benchmark& bm, double queueMs);
  /// Refreshes the point-in-time gauges (queue depth, uptime, cache
  /// size) just before a registry render.
  void refreshGauges() const;

  ServiceOptions opts_;
  SolutionCache cache_;
  std::atomic<int> queued_{0};
  util::Stopwatch uptime_;

  /// Per-service registry (NOT obs::Registry::global()): tests run
  /// several Services in one process and assert exact counts, so each
  /// instance owns its counters. Pointers below are stable aliases into
  /// the registry, bound once in the constructor.
  mutable obs::Registry metrics_;
  obs::Counter* cReceived_ = nullptr;
  obs::Counter* cServed_ = nullptr;
  obs::Counter* cBadRequests_ = nullptr;
  obs::Counter* cOverloaded_ = nullptr;
  obs::Counter* cDeadlineExceeded_ = nullptr;
  obs::Counter* cFlowFailures_ = nullptr;
  obs::Counter* cInfeasible_ = nullptr;
  obs::Gauge* gQueueDepth_ = nullptr;
  obs::Gauge* gUptime_ = nullptr;
  obs::Gauge* gCacheEntries_ = nullptr;
  obs::Histogram* hQueueWaitMs_ = nullptr;
  obs::Histogram* hSolveSeconds_ = nullptr;

  /// Declared last: the pool's destructor runs first and joins workers
  /// while the members above are still alive.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace lamp::svc

#endif  // LAMP_SVC_SERVICE_H
