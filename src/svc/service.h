#ifndef LAMP_SVC_SERVICE_H
#define LAMP_SVC_SERVICE_H

/// \file service.h
/// The scheduling service: parses protocol requests (proto.h), admits
/// them into a *bounded* queue in front of the PR-1 thread pool, serves
/// repeats from the content-addressed solution cache (cache.h), and
/// renders responses. Transport-agnostic — server.h plugs stdio or a
/// Unix socket in front, tests and benches call it directly.
///
/// Request lifecycle:
///   parse -> resolve graph + pre-solve static analysis (bad or provably
///            infeasible requests are answered inline with structured
///            diagnostics — they never occupy a queue slot or worker)
///         -> admission (queue depth < queueCap, else "overloaded")
///         -> worker picks up (deadline re-checked; expired requests are
///            answered "deadline_exceeded" without solving)
///         -> cache lookup (exact hit -> cached result verbatim;
///            near miss -> cached schedule becomes the MILP warm-start
///            incumbent; miss -> cold solve)
///         -> successful solves inserted (and persisted) into the cache
///         -> response via the completion callback.
///
/// Back-pressure is explicit: the queue never grows past queueCap, so a
/// traffic burst costs each rejected client one round-trip instead of
/// unbounded daemon memory and unbounded queueing delay for everyone.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "svc/cache.h"
#include "svc/proto.h"
#include "util/thread_pool.h"

namespace lamp::svc {

struct ServiceOptions {
  /// Worker threads (<= 0: util::ThreadPool::defaultThreads()).
  int workers = 0;
  /// Bounded admission: maximum requests admitted but not yet started.
  /// Beyond it, submissions are rejected with status "overloaded".
  int queueCap = 64;
  /// Solution-cache directory ("" = in-memory cache only).
  std::string cacheDir;
  /// Upper clamp on any request's solver time limit.
  double maxTimeLimitSeconds = 300.0;
  /// Disables the cache entirely (every request solves cold).
  bool cacheEnabled = true;
};

struct ServiceStats {
  std::uint64_t received = 0;
  std::uint64_t served = 0;
  std::uint64_t badRequests = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadlineExceeded = 0;
  std::uint64_t flowFailures = 0;
  /// Requests rejected inline by the pre-solve static analysis.
  std::uint64_t infeasible = 0;
};

class Service {
 public:
  explicit Service(ServiceOptions opts = {});
  ~Service();  ///< drains all in-flight work
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Asynchronous entry point: parses and admits `line`; `done` receives
  /// exactly one response line, possibly on a worker thread and possibly
  /// before submit returns (rejections respond inline).
  void submit(const std::string& line, std::function<void(std::string)> done);

  /// Synchronous convenience wrapper (waits for the response).
  std::string call(const std::string& line);

  /// Blocks until every admitted request has been answered.
  void drain();

  std::string statsJson() const;
  ServiceStats stats() const;
  const SolutionCache& cache() const { return cache_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  std::string process(const Request& req, const workloads::Benchmark& bm,
                      double queueMs);
  std::string runFlowRequest(const Request& req,
                             const workloads::Benchmark& bm, double queueMs);

  ServiceOptions opts_;
  SolutionCache cache_;
  std::atomic<int> queued_{0};
  struct Counters {
    std::atomic<std::uint64_t> received{0};
    std::atomic<std::uint64_t> served{0};
    std::atomic<std::uint64_t> badRequests{0};
    std::atomic<std::uint64_t> overloaded{0};
    std::atomic<std::uint64_t> deadlineExceeded{0};
    std::atomic<std::uint64_t> flowFailures{0};
    std::atomic<std::uint64_t> infeasible{0};
  } counters_;
  /// Declared last: the pool's destructor runs first and joins workers
  /// while the members above are still alive.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace lamp::svc

#endif  // LAMP_SVC_SERVICE_H
