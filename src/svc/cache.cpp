#include "svc/cache.h"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "flow/flow_json.h"

namespace lamp::svc {

namespace fs = std::filesystem;
using util::Json;

namespace {

std::uint64_t stringHash64(std::string_view s) {
  // FNV-1a, enough to give option keys a fixed-width file-name token.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string numText(double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace

SolutionCache::SolutionCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    fs::create_directories(dir_, ec);  // best effort; load below tolerates absence
    loadDirectory();
  }
}

std::string SolutionCache::bucketId(const CacheKey& key) {
  return key.canonical.hex() + "-" + key.layout.hex() + "-" +
         hex64(stringHash64(key.hardKey));
}

std::string SolutionCache::entryPath(const CacheKey& key) const {
  const std::string soft =
      numText(key.tcpNs) + "," + numText(key.timeLimitSeconds);
  return dir_ + "/" + bucketId(key) + "-" + hex64(stringHash64(soft)) +
         ".json";
}

void SolutionCache::loadDirectory() {
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file() || de.path().extension() != ".json") continue;
    std::ifstream in(de.path());
    std::stringstream ss;
    ss << in.rdbuf();
    const auto doc = Json::parse(ss.str());
    if (!doc || !doc->isObject()) continue;
    const Json* canonical = doc->find("canonical");
    const Json* layout = doc->find("layout");
    const Json* hardKey = doc->find("hardKey");
    const Json* tcp = doc->find("tcpNs");
    const Json* tl = doc->find("timeLimitSeconds");
    const Json* result = doc->find("result");
    if (!canonical || !layout || !hardKey || !tcp || !tl || !result) continue;
    const auto canonicalDigest = ir::GraphDigest::fromHex(canonical->asString());
    const auto layoutDigest = ir::GraphDigest::fromHex(layout->asString());
    if (!canonicalDigest || !layoutDigest) continue;
    Entry e;
    e.tcpNs = tcp->asDouble();
    e.timeLimitSeconds = tl->asDouble();
    if (!flow::resultFromJson(*result, e.result, nullptr)) continue;
    CacheKey key{*canonicalDigest, *layoutDigest, hardKey->asString(), e.tcpNs,
                 e.timeLimitSeconds};
    auto& bucket = buckets_[bucketId(key)];
    bool replaced = false;
    for (Entry& existing : bucket) {
      if (existing.tcpNs == e.tcpNs &&
          existing.timeLimitSeconds == e.timeLimitSeconds) {
        existing = e;
        replaced = true;
        break;
      }
    }
    if (!replaced) bucket.push_back(std::move(e));
    ++stats_.loadedFromDisk;
  }
}

SolutionCache::Lookup SolutionCache::lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Lookup out;
  const auto it = buckets_.find(bucketId(key));
  if (it != buckets_.end()) {
    // Exact first; otherwise the best warm candidate: tightest-fitting
    // clock target (largest cached tcpNs still <= the request), then the
    // longest solver budget (more time = better incumbent, usually).
    const Entry* warm = nullptr;
    for (const Entry& e : it->second) {
      if (e.tcpNs == key.tcpNs && e.timeLimitSeconds == key.timeLimitSeconds) {
        ++stats_.exactHits;
        out.kind = Lookup::Kind::Exact;
        out.result = e.result;
        return out;
      }
      if (!e.result.success || e.tcpNs > key.tcpNs) continue;
      if (warm == nullptr || e.tcpNs > warm->tcpNs ||
          (e.tcpNs == warm->tcpNs &&
           e.timeLimitSeconds > warm->timeLimitSeconds)) {
        warm = &e;
      }
    }
    if (warm != nullptr) {
      ++stats_.warmHits;
      out.kind = Lookup::Kind::Warm;
      out.result = warm->result;
      return out;
    }
  }
  ++stats_.misses;
  return out;
}

void SolutionCache::insert(const CacheKey& key,
                           const flow::FlowResult& result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& bucket = buckets_[bucketId(key)];
    bool replaced = false;
    for (Entry& e : bucket) {
      if (e.tcpNs == key.tcpNs &&
          e.timeLimitSeconds == key.timeLimitSeconds) {
        e.result = result;
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      bucket.push_back(Entry{key.tcpNs, key.timeLimitSeconds, result});
    }
    ++stats_.inserts;
  }
  if (!dir_.empty()) persist(key, result);
}

void SolutionCache::persist(const CacheKey& key,
                            const flow::FlowResult& result) {
  Json doc = Json::object();
  doc.set("version", Json::integer(1));
  doc.set("canonical", Json::string(key.canonical.hex()));
  doc.set("layout", Json::string(key.layout.hex()));
  doc.set("hardKey", Json::string(key.hardKey));
  doc.set("tcpNs", Json::number(key.tcpNs));
  doc.set("timeLimitSeconds", Json::number(key.timeLimitSeconds));
  doc.set("result", flow::resultToJson(result));

  const std::string path = entryPath(key);
  // Thread-unique temp name: concurrent inserts of the same key must not
  // interleave partial writes; the final rename is atomic either way.
  const std::string tmp =
      path + ".tmp" +
      hex64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.diskWriteFailures;
      return;
    }
    doc.write(out);
    out << "\n";
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.diskWriteFailures;
  }
}

CacheStats SolutionCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t SolutionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, bucket] : buckets_) n += bucket.size();
  return n;
}

}  // namespace lamp::svc
