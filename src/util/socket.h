#ifndef LAMP_UTIL_SOCKET_H
#define LAMP_UTIL_SOCKET_H

/// \file socket.h
/// Unix-domain stream sockets plus a buffered newline-delimited line
/// channel — the transport under lampd's NDJSON protocol. POSIX-only by
/// design (the service is a local daemon; remote transports would sit in
/// front of it).

#include <string>
#include <string_view>

namespace lamp::util {

/// Binds and listens on a Unix-domain stream socket, replacing any stale
/// socket file at `path`. Returns the listening fd, or -1 with `error`
/// filled.
int listenUnixSocket(const std::string& path, std::string& error);

/// Connects to a Unix-domain stream socket. Returns the fd, or -1 with
/// `error` filled.
int connectUnixSocket(const std::string& path, std::string& error);

/// Blocking accept that retries on EINTR. Returns -1 when the listening
/// socket has been closed (the shutdown path).
int acceptClient(int listenFd);

/// Closes an fd if valid (EINTR-safe no-op wrapper).
void closeFd(int fd);

/// Buffered line reader/writer over one socket fd. Reads are buffered
/// internally; writes push the full line (plus '\n') through partial
/// writes. Not internally synchronized — writers serialize externally.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Reads one '\n'-terminated line (terminator stripped). Returns false
  /// on EOF or error. A final unterminated line is delivered as-is.
  bool readLine(std::string& out);

  /// Writes `line` plus a trailing newline. Returns false on error.
  bool writeLine(std::string_view line);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;
};

}  // namespace lamp::util

#endif  // LAMP_UTIL_SOCKET_H
