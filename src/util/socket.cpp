#include "util/socket.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace lamp::util {

namespace {

bool fillAddr(const std::string& path, sockaddr_un& addr, std::string& error) {
  if (path.size() >= sizeof(addr.sun_path)) {
    error = "socket path too long: " + path;
    return false;
  }
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

int listenUnixSocket(const std::string& path, std::string& error) {
  sockaddr_un addr;
  if (!fillAddr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  ::unlink(path.c_str());  // drop a stale socket from a previous run
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = "bind " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 64) != 0) {
    error = "listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int connectUnixSocket(const std::string& path, std::string& error) {
  sockaddr_un addr;
  if (!fillAddr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int acceptClient(int listenFd) {
  while (true) {
    const int fd = ::accept(listenFd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;
  }
}

void closeFd(int fd) {
  if (fd >= 0) ::close(fd);
}

bool LineChannel::readLine(std::string& out) {
  while (true) {
    const auto nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (!buf_.empty()) {  // deliver a trailing unterminated line
      out = std::move(buf_);
      buf_.clear();
      return true;
    }
    return false;
  }
}

bool LineChannel::writeLine(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace lamp::util
