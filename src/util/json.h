#ifndef LAMP_UTIL_JSON_H
#define LAMP_UTIL_JSON_H

/// \file json.h
/// Minimal JSON document model for the service wire protocol and the
/// machine-readable CLI/bench outputs. Self-contained (the toolchain
/// image has no JSON library) and deliberately small: ordered objects,
/// no comments, UTF-8 pass-through, numbers kept as their literal text
/// so that doubles round-trip bit-exactly (writing uses shortest
/// round-trip formatting via std::to_chars).

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lamp::util {

class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;  ///< null

  static Json boolean(bool b);
  static Json number(double v);          ///< shortest round-trip literal
  static Json integer(std::int64_t v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isObject() const { return kind_ == Kind::Object; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isString() const { return kind_ == Kind::String; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isBool() const { return kind_ == Kind::Bool; }

  bool asBool(bool fallback = false) const;
  double asDouble(double fallback = 0.0) const;
  std::int64_t asInt(std::int64_t fallback = 0) const;
  /// String payload ("" for non-strings).
  const std::string& asString() const;

  // Arrays.
  std::size_t size() const { return items_.size(); }
  const Json& at(std::size_t i) const { return items_[i]; }
  Json& push(Json v);  ///< returns the stored element

  // Objects (insertion-ordered, keys unique).
  const Json* find(std::string_view key) const;  ///< null if absent
  Json& set(std::string key, Json value);        ///< insert or replace
  const std::vector<std::pair<std::string, Json>>& members() const {
    return fields_;
  }

  /// Compact single-line rendering (the wire format).
  void write(std::ostream& os) const;
  std::string dump() const;

  /// Strict parse of one JSON document (trailing junk is an error).
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::string scalar_;  ///< number literal or string payload
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace lamp::util

#endif  // LAMP_UTIL_JSON_H
