#ifndef LAMP_UTIL_TIMER_H
#define LAMP_UTIL_TIMER_H

/// \file timer.h
/// Wall-clock helpers shared by the solver, flows and benches, replacing
/// the per-file steady_clock boilerplate.

#include <chrono>

namespace lamp::util {

/// Running stopwatch; starts at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Writes the elapsed wall time into `*out` when the scope closes.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* out) : out_(out) {}
  ~ScopedTimer() {
    if (out_ != nullptr) *out_ = watch_.seconds();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double seconds() const { return watch_.seconds(); }

 private:
  double* out_;
  Stopwatch watch_;
};

}  // namespace lamp::util

#endif  // LAMP_UTIL_TIMER_H
