#include "util/thread_pool.h"

#include <algorithm>

namespace lamp::util {

int ThreadPool::defaultThreads(int cap) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, std::max(1, cap));
}

ThreadPool::ThreadPool(int threads) {
  const int n = threads > 0 ? threads : defaultThreads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cvWork_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cvWork_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cvIdle_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cvWork_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inFlight_;
    }
    cvIdle_.notify_all();
  }
}

}  // namespace lamp::util
