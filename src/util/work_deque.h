#ifndef LAMP_UTIL_WORK_DEQUE_H
#define LAMP_UTIL_WORK_DEQUE_H

/// \file work_deque.h
/// Work-stealing deque for owner/thief node pools (branch & bound open
/// lists, task queues). The owner treats it as a LIFO stack (pushBottom /
/// popBottom), which preserves depth-first diving order; thieves take from
/// the opposite end (stealTop), so they receive the *oldest* — typically
/// shallowest — entries, which diversifies a parallel tree search instead
/// of fighting the owner over its dive path.
///
/// Scale target: tens of operations per millisecond (each entry funds an
/// LP solve or a whole flow), so a mutex-guarded std::deque is the right
/// tradeoff over a lock-free Chase-Lev buffer: no ABA hazards, trivially
/// correct under TSan, and contention is negligible at this granularity.

#include <algorithm>
#include <deque>
#include <iterator>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace lamp::util {

template <typename T>
class WorkDeque {
 public:
  /// Owner side: push a new entry on the bottom (hot end).
  void pushBottom(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    dq_.push_back(std::move(item));
  }

  /// Owner side: pop the most recently pushed entry (LIFO).
  std::optional<T> popBottom() {
    std::lock_guard<std::mutex> lock(mu_);
    if (dq_.empty()) return std::nullopt;
    T item = std::move(dq_.back());
    dq_.pop_back();
    return item;
  }

  /// Thief side: take the oldest entry (FIFO end).
  std::optional<T> stealTop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (dq_.empty()) return std::nullopt;
    T item = std::move(dq_.front());
    dq_.pop_front();
    return item;
  }

  /// Thief side: the best score over all entries (per `score`, lower is
  /// better), or nullopt when empty. A peek only — pair with stealBest.
  template <typename Score>
  std::optional<double> peekBestScore(Score&& score) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (dq_.empty()) return std::nullopt;
    double best = score(dq_.front());
    for (const T& item : dq_) best = std::min(best, score(item));
    return best;
  }

  /// Thief side: remove and return the entry with the lowest score. The
  /// O(n) scan is deliberate — entries here fund an LP solve each, so the
  /// deque stays short relative to the work a steal hands out.
  template <typename Score>
  std::optional<T> stealBest(Score&& score) {
    std::lock_guard<std::mutex> lock(mu_);
    if (dq_.empty()) return std::nullopt;
    auto bestIt = dq_.begin();
    double best = score(*bestIt);
    for (auto it = std::next(dq_.begin()); it != dq_.end(); ++it) {
      const double s = score(*it);
      if (s < best) {
        best = s;
        bestIt = it;
      }
    }
    T item = std::move(*bestIt);
    dq_.erase(bestIt);
    return item;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dq_.size();
  }

  bool empty() const { return size() == 0; }

  /// Removes and returns everything (termination-time bound aggregation).
  std::vector<T> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> out(std::make_move_iterator(dq_.begin()),
                       std::make_move_iterator(dq_.end()));
    dq_.clear();
    return out;
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> dq_;
};

}  // namespace lamp::util

#endif  // LAMP_UTIL_WORK_DEQUE_H
