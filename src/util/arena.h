#ifndef LAMP_UTIL_ARENA_H
#define LAMP_UTIL_ARENA_H

/// \file arena.h
/// Chunked bump allocator for short-lived, bulk-freed workloads (the cut
/// enumerator's per-node scratch signatures). allocate() is a pointer
/// bump; reset() recycles every chunk without returning memory to the
/// system, so a steady-state consumer stops calling malloc entirely
/// after the first few nodes warm the chunk list up.
///
/// Not thread-safe: concurrent users own one Arena each (the enumerator
/// keeps one per worker slice).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace lamp::util {

class Arena {
 public:
  /// `chunkBytes` is the granularity of system allocations; oversized
  /// requests get a dedicated chunk of their exact size.
  explicit Arena(std::size_t chunkBytes = 64 * 1024)
      : chunkBytes_(chunkBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Uninitialized storage for `n` objects of T. T must be trivially
  /// destructible — reset() never runs destructors.
  template <typename T>
  T* allocate(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is bulk-freed without destructor calls");
    return static_cast<T*>(allocateBytes(n * sizeof(T), alignof(T)));
  }

  /// Zero-initialized array of `n` T (T must be trivially copyable).
  template <typename T>
  T* allocateZeroed(std::size_t n) {
    T* p = allocate<T>(n);
    std::memset(static_cast<void*>(p), 0, n * sizeof(T));
    return p;
  }

  void* allocateBytes(std::size_t bytes, std::size_t align) {
    std::size_t p = (cursor_ + align - 1) & ~(align - 1);
    if (current_ == nullptr || p + bytes > currentSize_) {
      grow(bytes + align);
      p = (cursor_ + align - 1) & ~(align - 1);
    }
    cursor_ = p + bytes;
    liveBytes_ += bytes;
    if (liveBytes_ > peakBytes_) peakBytes_ = liveBytes_;
    return current_ + p;
  }

  /// Recycles every chunk (capacity is kept, contents become garbage).
  void reset() {
    liveBytes_ = 0;
    cursor_ = 0;
    chunkIndex_ = 0;
    current_ = chunks_.empty() ? nullptr : chunks_[0].data.get();
    currentSize_ = chunks_.empty() ? 0 : chunks_[0].size;
  }

  /// Largest sum of live allocation sizes seen since construction
  /// (survives reset(); the enumerator reports it per run).
  std::size_t peakBytes() const { return peakBytes_; }

  /// Total bytes reserved from the system across all chunks.
  std::size_t reservedBytes() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t need) {
    // Advance through already-reserved chunks before allocating new ones.
    while (chunkIndex_ + 1 < chunks_.size()) {
      ++chunkIndex_;
      if (chunks_[chunkIndex_].size >= need) {
        current_ = chunks_[chunkIndex_].data.get();
        currentSize_ = chunks_[chunkIndex_].size;
        cursor_ = 0;
        return;
      }
    }
    const std::size_t size = need > chunkBytes_ ? need : chunkBytes_;
    chunks_.push_back({std::make_unique<char[]>(size), size});
    chunkIndex_ = chunks_.size() - 1;
    current_ = chunks_.back().data.get();
    currentSize_ = size;
    cursor_ = 0;
  }

  std::size_t chunkBytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunkIndex_ = 0;
  char* current_ = nullptr;
  std::size_t currentSize_ = 0;
  std::size_t cursor_ = 0;
  std::size_t liveBytes_ = 0;
  std::size_t peakBytes_ = 0;
};

}  // namespace lamp::util

#endif  // LAMP_UTIL_ARENA_H
