#ifndef LAMP_UTIL_THREAD_POOL_H
#define LAMP_UTIL_THREAD_POOL_H

/// \file thread_pool.h
/// Minimal fixed-size thread pool for coarse-grained jobs (one job == one
/// experiment flow or one solver run, never per-node work). Jobs are
/// drained FIFO; wait() blocks until every submitted job has finished, so
/// the pool can be reused across submission rounds.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lamp::util {

class ThreadPool {
 public:
  /// `threads <= 0` selects defaultThreads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; runs as soon as a worker frees up. A job that throws
  /// terminates (jobs are expected to handle their own failures).
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and no job is in flight.
  void wait();

  int size() const { return static_cast<int>(workers_.size()); }

  /// Hardware concurrency clamped to [1, cap]. The cap keeps the default
  /// from oversubscribing machines whose core count dwarfs the number of
  /// useful independent jobs.
  static int defaultThreads(int cap = 8);

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable cvWork_;  ///< signals workers: job or shutdown
  std::condition_variable cvIdle_;  ///< signals wait(): all jobs drained
  std::deque<std::function<void()>> queue_;
  std::size_t inFlight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lamp::util

#endif  // LAMP_UTIL_THREAD_POOL_H
