#include "util/json.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace lamp::util {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  j.scalar_.assign(buf, res.ptr);
  // to_chars emits "inf"/"nan" for non-finite values, which JSON cannot
  // carry; clamp to null-ish zero rather than emitting invalid output.
  if (j.scalar_.find_first_not_of("0123456789+-.eE") != std::string::npos) {
    j.scalar_ = "0";
  }
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.kind_ = Kind::Number;
  j.scalar_ = std::to_string(v);
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.scalar_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

bool Json::asBool(bool fallback) const {
  return kind_ == Kind::Bool ? bool_ : fallback;
}

double Json::asDouble(double fallback) const {
  if (kind_ != Kind::Number) return fallback;
  return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t Json::asInt(std::int64_t fallback) const {
  if (kind_ != Kind::Number) return fallback;
  if (scalar_.find_first_of(".eE") != std::string::npos) {
    return static_cast<std::int64_t>(asDouble(static_cast<double>(fallback)));
  }
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

const std::string& Json::asString() const {
  static const std::string kEmpty;
  return kind_ == Kind::String ? scalar_ : kEmpty;
}

Json& Json::push(Json v) {
  items_.push_back(std::move(v));
  return items_.back();
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(std::string key, Json value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
  return fields_.back().second;
}

namespace {

void writeEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

void Json::write(std::ostream& os) const {
  switch (kind_) {
    case Kind::Null: os << "null"; break;
    case Kind::Bool: os << (bool_ ? "true" : "false"); break;
    case Kind::Number: os << scalar_; break;
    case Kind::String: writeEscaped(os, scalar_); break;
    case Kind::Array:
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) os << ',';
        items_[i].write(os);
      }
      os << ']';
      break;
    case Kind::Object:
      os << '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) os << ',';
        writeEscaped(os, fields_[i].first);
        os << ':';
        fields_[i].second.write(os);
      }
      os << '}';
      break;
  }
}

std::string Json::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) {
      error = msg + " at offset " + std::to_string(pos);
    }
    return false;
  }

  void skipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parseString(std::string& out) {
    skipWs();
    if (pos >= text.size() || text[pos] != '"') return fail("expected string");
    ++pos;
    out.clear();
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // BMP-only UTF-8 encoding (surrogate pairs unsupported; the
          // protocol never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseValue(Json& out) {
    skipWs();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parseObject(out);
    if (c == '[') return parseArray(out);
    if (c == '"') {
      std::string s;
      if (!parseString(s)) return false;
      out = Json::string(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      out = Json::boolean(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      out = Json::boolean(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      out = Json();
      return true;
    }
    return parseNumber(out);
  }

  bool parseNumber(Json& out) {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    bool dot = false, exp = false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
        ++pos;
      } else if (c == '.' && !dot && !exp) {
        dot = true;
        ++pos;
      } else if ((c == 'e' || c == 'E') && digits && !exp) {
        exp = true;
        ++pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
      } else {
        break;
      }
    }
    if (!digits) return fail("expected value");
    // Integers keep their literal; non-integers renormalize through
    // strtod + shortest-round-trip formatting, which preserves the
    // double value exactly (what the cache's bit-identity relies on).
    const std::string lit(text.substr(start, pos - start));
    if (lit.find_first_of(".eE") == std::string::npos) {
      out = Json::integer(std::strtoll(lit.c_str(), nullptr, 10));
    } else {
      out = Json::number(std::strtod(lit.c_str(), nullptr));
    }
    return true;
  }

  bool parseArray(Json& out) {
    if (!consume('[')) return false;
    out = Json::array();
    skipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Json v;
      if (!parseValue(v)) return false;
      out.push(std::move(v));
      skipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parseObject(Json& out) {
    if (!consume('{')) return false;
    out = Json::object();
    skipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      std::string key;
      if (!parseString(key)) return false;
      if (!consume(':')) return false;
      Json v;
      if (!parseValue(v)) return false;
      out.set(std::move(key), std::move(v));
      skipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parseValue(out)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skipWs();
  if (p.pos != text.size()) {
    if (error) *error = "trailing characters at offset " + std::to_string(p.pos);
    return std::nullopt;
  }
  return out;
}

}  // namespace lamp::util
