#ifndef LAMP_LP_SIMPLEX_H
#define LAMP_LP_SIMPLEX_H

/// \file simplex.h
/// Bounded-variable primal simplex for the continuous relaxation of a
/// Model. Two-phase (artificial variables), revised form with a dense
/// basis inverse and sparse constraint columns; Dantzig pricing with a
/// Bland anti-cycling fallback.
///
/// Scale target: the modulo-scheduling MILPs this repo builds (hundreds to
/// a few thousand rows). Not a general-purpose LP code.

#include <cstdint>
#include <memory>
#include <vector>

#include "lp/model.h"

namespace lamp::lp {

struct SimplexOptions {
  double feasTol = 1e-7;   ///< bound/row feasibility tolerance
  double optTol = 1e-7;    ///< reduced-cost optimality tolerance
  std::int64_t maxIterations = 500000;
  double timeLimitSeconds = kInf;
  /// Early-termination threshold for the incremental (dual) path. Every
  /// dual-feasible basis values a valid lower bound on the LP optimum and
  /// the dual simplex raises it monotonically, so once it crosses this
  /// value the caller will discard the node no matter what the exact
  /// optimum is — the solve stops with SolveStatus::Cutoff and the bound
  /// reached in SimplexResult::objective. Degenerate LPs (like modulo
  /// scheduling) spend most of their dual pivots *at* the optimal
  /// objective restoring feasibility; a branch & bound caller that sets
  /// this to its incumbent skips that entire plateau.
  double objectiveCutoff = kInf;
};

struct SimplexResult {
  SolveStatus status = SolveStatus::Error;
  double objective = 0.0;
  std::vector<double> x;  ///< structural variable values
  std::int64_t iterations = 0;
};

/// Solves the LP relaxation of `model` (integrality dropped). Variable
/// bounds may be overridden per call, which is how branch & bound fixes
/// branching decisions without copying the model.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model, SimplexOptions opts = {});
  ~SimplexSolver();
  SimplexSolver(SimplexSolver&&) noexcept;
  SimplexSolver& operator=(SimplexSolver&&) noexcept;

  /// Solves with the model's own bounds.
  SimplexResult solve();

  /// Solves with overriding bounds (vectors sized numVars()).
  SimplexResult solve(const std::vector<double>& lb,
                      const std::vector<double>& ub);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Hot-restart solver for branch & bound. The first solve runs the full
/// two-phase primal simplex; every later solve only *changes variable
/// bounds*, which keeps the optimal basis dual-feasible, so primal
/// feasibility is restored with a few dual simplex pivots instead of a
/// from-scratch solve. Falls back to the full solve on numerical trouble.
class IncrementalSimplex {
 public:
  explicit IncrementalSimplex(const Model& model, SimplexOptions opts = {});
  ~IncrementalSimplex();

  /// Solves under the given bounds, reusing the previous basis.
  SimplexResult solve(const std::vector<double>& lb,
                      const std::vector<double>& ub);

  /// Adjusts the per-solve wall-clock limit (e.g. branch & bound passing
  /// down its remaining budget).
  void setTimeLimit(double seconds);

  /// Sets SimplexOptions::objectiveCutoff for subsequent solves (kInf
  /// disables). A solve that stops this way returns SolveStatus::Cutoff
  /// with `objective` holding the dual bound it reached; the warm basis
  /// stays valid.
  void setObjectiveCutoff(double cutoff);

  /// Statistics: dual pivots taken across all hot solves.
  std::int64_t dualPivots() const;
  std::int64_t coldSolves() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace lamp::lp

#endif  // LAMP_LP_SIMPLEX_H
