#include "lp/presolve.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace lamp::lp {

namespace {

constexpr double kFeasTol = 1e-7;

struct Row {
  std::vector<Term> terms;
  Sense sense = Sense::Le;
  double rhs = 0.0;
  std::string name;
  bool dropped = false;
};

/// Minimum / maximum activity of a row under the current bounds.
/// Infinite bounds propagate to infinite activities.
void activity(const Row& row, const std::vector<double>& lb,
              const std::vector<double>& ub, double& minAct, double& maxAct) {
  minAct = 0.0;
  maxAct = 0.0;
  for (const Term& t : row.terms) {
    const double lo = t.coef >= 0 ? lb[t.var] : ub[t.var];
    const double hi = t.coef >= 0 ? ub[t.var] : lb[t.var];
    minAct += t.coef * lo;
    maxAct += t.coef * hi;
  }
}

}  // namespace

Model presolve(const Model& model, PresolveStats* statsOut, int maxPasses) {
  PresolveStats stats;
  const std::size_t n = model.numVars();
  std::vector<double> lb(n), ub(n);
  for (Var v = 0; v < static_cast<Var>(n); ++v) {
    lb[v] = model.lowerBound(v);
    ub[v] = model.upperBound(v);
  }

  // Rows in <= / >= / == form; we propagate on both sides of equalities.
  std::vector<Row> rows;
  rows.reserve(model.numConstraints());
  for (const Constraint& c : model.constraints()) {
    rows.push_back(Row{c.terms, c.sense, c.rhs, c.name, false});
  }

  const auto tighten = [&](Var v, double newLb, double newUb) {
    bool changed = false;
    if (model.isIntegerType(v)) {
      newLb = std::ceil(newLb - 1e-9);
      newUb = std::floor(newUb + 1e-9);
    }
    if (newLb > lb[v] + 1e-9) {
      lb[v] = newLb;
      changed = true;
    }
    if (newUb < ub[v] - 1e-9) {
      ub[v] = newUb;
      changed = true;
    }
    if (changed) ++stats.boundsTightened;
    if (lb[v] > ub[v] + kFeasTol) stats.infeasible = true;
    return changed;
  };

  for (int pass = 0; pass < maxPasses && !stats.infeasible; ++pass) {
    ++stats.passes;
    bool changed = false;
    for (Row& row : rows) {
      if (row.dropped) continue;

      // Empty rows: pure feasibility checks.
      if (row.terms.empty()) {
        const bool ok = (row.sense == Sense::Le && 0.0 <= row.rhs + kFeasTol) ||
                        (row.sense == Sense::Ge && 0.0 >= row.rhs - kFeasTol) ||
                        (row.sense == Sense::Eq &&
                         std::abs(row.rhs) <= kFeasTol);
        if (!ok) stats.infeasible = true;
        row.dropped = true;
        ++stats.rowsDropped;
        changed = true;
        continue;
      }

      // Singleton rows become bounds.
      if (row.terms.size() == 1) {
        const Term& t = row.terms[0];
        const double b = row.rhs / t.coef;
        const bool flip = t.coef < 0;
        switch (row.sense) {
          case Sense::Le:
            changed |= flip ? tighten(t.var, b, ub[t.var])
                            : tighten(t.var, lb[t.var], b);
            break;
          case Sense::Ge:
            changed |= flip ? tighten(t.var, lb[t.var], b)
                            : tighten(t.var, b, ub[t.var]);
            break;
          case Sense::Eq:
            changed |= tighten(t.var, b, b);
            break;
        }
        row.dropped = true;
        ++stats.singletonRows;
        continue;
      }

      double minAct = 0.0, maxAct = 0.0;
      activity(row, lb, ub, minAct, maxAct);

      // Infeasibility / redundancy by activity bounds.
      if (row.sense == Sense::Le || row.sense == Sense::Eq) {
        if (minAct > row.rhs + 1e-6) {
          stats.infeasible = true;
          break;
        }
      }
      if (row.sense == Sense::Ge || row.sense == Sense::Eq) {
        if (maxAct < row.rhs - 1e-6) {
          stats.infeasible = true;
          break;
        }
      }
      const bool leRedundant =
          row.sense == Sense::Le && maxAct <= row.rhs + 1e-9;
      const bool geRedundant =
          row.sense == Sense::Ge && minAct >= row.rhs - 1e-9;
      if (leRedundant || geRedundant) {
        row.dropped = true;
        ++stats.rowsDropped;
        changed = true;
        continue;
      }

      // Bound propagation: for <= (and the <= side of ==),
      //   a_j x_j <= rhs - minAct(others); symmetrically for >=.
      for (const Term& t : row.terms) {
        if (!std::isfinite(minAct) && !std::isfinite(maxAct)) break;
        const double lo = t.coef >= 0 ? lb[t.var] : ub[t.var];
        const double hi = t.coef >= 0 ? ub[t.var] : lb[t.var];
        if (row.sense != Sense::Ge && std::isfinite(minAct)) {
          const double rest = minAct - t.coef * lo;
          const double limit = (row.rhs - rest) / t.coef;
          changed |= t.coef > 0 ? tighten(t.var, lb[t.var], limit)
                                : tighten(t.var, limit, ub[t.var]);
        }
        if (row.sense != Sense::Le && std::isfinite(maxAct)) {
          const double rest = maxAct - t.coef * hi;
          const double limit = (row.rhs - rest) / t.coef;
          changed |= t.coef > 0 ? tighten(t.var, limit, ub[t.var])
                                : tighten(t.var, lb[t.var], limit);
        }
        if (stats.infeasible) break;
      }
      if (stats.infeasible) break;
    }
    if (!changed) break;
  }

  // Rebuild the reduced model with identical variable indexing.
  Model out(model.name() + "_presolved");
  for (Var v = 0; v < static_cast<Var>(n); ++v) {
    out.addVar(lb[v], ub[v], model.varType(v), model.varName(v));
  }
  for (const Row& row : rows) {
    if (row.dropped) continue;
    LinExpr e;
    for (const Term& t : row.terms) e.add(t.var, t.coef);
    out.addConstraint(e, row.sense, row.rhs, row.name);
  }
  out.setObjective(model.objective());

  if (statsOut) *statsOut = stats;
  return out;
}

}  // namespace lamp::lp
