#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace lamp::lp {

std::string_view solveStatusName(SolveStatus s) {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Feasible: return "feasible";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::Unbounded: return "unbounded";
    case SolveStatus::NoSolution: return "no-solution";
    case SolveStatus::Cutoff: return "cutoff";
    case SolveStatus::Error: return "error";
  }
  return "?";
}

void LinExpr::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (const Term& t : terms_) {
    if (!merged.empty() && merged.back().var == t.var) {
      merged.back().coef += t.coef;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coef == 0.0; }),
               merged.end());
  terms_ = std::move(merged);
}

double LinExpr::evaluate(const std::vector<double>& x) const {
  double v = constant_;
  for (const Term& t : terms_) v += t.coef * x[t.var];
  return v;
}

Var Model::addVar(double lb, double ub, VarType type, std::string name) {
  if (type == VarType::Binary) {
    lb = std::max(lb, 0.0);
    ub = std::min(ub, 1.0);
  }
  const Var v = static_cast<Var>(lb_.size());
  lb_.push_back(lb);
  ub_.push_back(ub);
  type_.push_back(type);
  varNames_.push_back(name.empty() ? "x" + std::to_string(v)
                                   : std::move(name));
  return v;
}

void Model::addConstraint(LinExpr expr, Sense sense, double rhs,
                          std::string name) {
  expr.normalize();
  Constraint c;
  c.terms = expr.terms();
  c.sense = sense;
  c.rhs = rhs - expr.constant();
  c.name = name.empty() ? "c" + std::to_string(constraints_.size())
                        : std::move(name);
  constraints_.push_back(std::move(c));
}

void Model::setObjective(LinExpr expr) {
  expr.normalize();
  objective_ = std::move(expr);
}

std::size_t Model::numIntegerVars() const {
  std::size_t n = 0;
  for (const VarType t : type_) {
    if (t != VarType::Continuous) ++n;
  }
  return n;
}

void Model::writeLp(std::ostream& os) const {
  auto writeExpr = [&](const std::vector<Term>& terms) {
    bool first = true;
    for (const Term& t : terms) {
      if (t.coef >= 0 && !first) os << " + ";
      if (t.coef < 0) os << (first ? "- " : " - ");
      os << std::abs(t.coef) << ' ' << varNames_[t.var];
      first = false;
    }
    if (first) os << "0";
  };

  os << "\\ model: " << name_ << "\nMinimize\n obj: ";
  writeExpr(objective_.terms());
  if (objective_.constant() != 0.0) os << " + " << objective_.constant();
  os << "\nSubject To\n";
  for (const Constraint& c : constraints_) {
    os << ' ' << c.name << ": ";
    writeExpr(c.terms);
    switch (c.sense) {
      case Sense::Le: os << " <= "; break;
      case Sense::Ge: os << " >= "; break;
      case Sense::Eq: os << " = "; break;
    }
    os << c.rhs << "\n";
  }
  os << "Bounds\n";
  for (Var v = 0; v < static_cast<Var>(numVars()); ++v) {
    os << ' ' << lb_[v] << " <= " << varNames_[v] << " <= " << ub_[v] << "\n";
  }
  os << "Generals\n";
  for (Var v = 0; v < static_cast<Var>(numVars()); ++v) {
    if (isIntegerType(v)) os << ' ' << varNames_[v];
  }
  os << "\nEnd\n";
}

std::string Model::checkFeasible(const std::vector<double>& x,
                                 double tol) const {
  if (x.size() != numVars()) return "wrong assignment size";
  std::ostringstream msg;
  for (Var v = 0; v < static_cast<Var>(numVars()); ++v) {
    if (x[v] < lb_[v] - tol || x[v] > ub_[v] + tol) {
      msg << "bound violated: " << varNames_[v] << " = " << x[v] << " not in ["
          << lb_[v] << ", " << ub_[v] << "]";
      return msg.str();
    }
    if (isIntegerType(v) && std::abs(x[v] - std::round(x[v])) > tol) {
      msg << "integrality violated: " << varNames_[v] << " = " << x[v];
      return msg.str();
    }
  }
  for (const Constraint& c : constraints_) {
    double lhs = 0.0;
    for (const Term& t : c.terms) lhs += t.coef * x[t.var];
    const bool ok = (c.sense == Sense::Le && lhs <= c.rhs + tol) ||
                    (c.sense == Sense::Ge && lhs >= c.rhs - tol) ||
                    (c.sense == Sense::Eq && std::abs(lhs - c.rhs) <= tol);
    if (!ok) {
      msg << "constraint violated: " << c.name << " lhs=" << lhs
          << " rhs=" << c.rhs;
      return msg.str();
    }
  }
  return {};
}

}  // namespace lamp::lp
