#ifndef LAMP_LP_MODEL_H
#define LAMP_LP_MODEL_H

/// \file model.h
/// A small modeling API for (mixed-integer) linear programs, in the spirit
/// of the CPLEX/Gurobi C++ APIs the paper's experiments relied on:
/// variables with bounds and types, linear expressions, constraints, and a
/// linear objective. Solved by lp::SimplexSolver (continuous relaxations)
/// and lp::MilpSolver (branch & bound).

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace lamp::lp {

/// Variable handle (index into the model).
using Var = std::int32_t;
inline constexpr Var kNoVar = -1;

/// +infinity for bounds.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

enum class VarType : std::uint8_t {
  Continuous,
  Integer,
  Binary,  ///< integer with implied bounds [0, 1]
};

/// One term of a linear expression.
struct Term {
  Var var = kNoVar;
  double coef = 0.0;
};

/// A linear expression: sum of terms plus a constant. Terms may repeat;
/// normalized() merges duplicates.
class LinExpr {
 public:
  LinExpr() = default;
  /*implicit*/ LinExpr(double constant) : constant_(constant) {}

  static LinExpr term(Var v, double coef) {
    LinExpr e;
    e.add(v, coef);
    return e;
  }

  LinExpr& add(Var v, double coef) {
    if (coef != 0.0) terms_.push_back(Term{v, coef});
    return *this;
  }
  LinExpr& add(const LinExpr& other, double scale = 1.0) {
    for (const Term& t : other.terms_) add(t.var, t.coef * scale);
    constant_ += other.constant_ * scale;
    return *this;
  }
  LinExpr& addConstant(double c) {
    constant_ += c;
    return *this;
  }

  const std::vector<Term>& terms() const { return terms_; }
  double constant() const { return constant_; }

  /// Merges duplicate variables and drops zero coefficients.
  void normalize();

  /// Evaluates against a full assignment vector.
  double evaluate(const std::vector<double>& x) const;

 private:
  std::vector<Term> terms_;
  double constant_ = 0.0;
};

enum class Sense : std::uint8_t { Le, Ge, Eq };

/// A linear constraint `expr (<=,>=,==) rhs` (expression constant folded
/// into the rhs by Model::addConstraint).
struct Constraint {
  std::vector<Term> terms;
  Sense sense = Sense::Le;
  double rhs = 0.0;
  std::string name;
};

/// Solver outcome classification.
enum class SolveStatus : std::uint8_t {
  Optimal,     ///< proved optimal (within tolerances)
  Feasible,    ///< feasible incumbent, limit hit before optimality proof
  Infeasible,
  Unbounded,
  NoSolution,  ///< limit hit with no feasible point found
  Cutoff,      ///< dual bound crossed the caller's objective cutoff
  Error,
};

std::string_view solveStatusName(SolveStatus s);

/// Result of an LP or MILP solve.
struct Solution {
  SolveStatus status = SolveStatus::Error;
  double objective = 0.0;
  /// Best proven lower bound on a minimization MILP (== objective when
  /// Optimal).
  double bestBound = -kInf;
  std::vector<double> values;  ///< one entry per model variable

  // Statistics.
  std::int64_t simplexIterations = 0;
  std::int64_t branchNodes = 0;
  std::int64_t prunedNodes = 0;  ///< fathomed by bound before the LP ran
  std::int64_t steals = 0;       ///< work-steals between B&B workers
  std::int64_t dualPivots = 0;   ///< hot-restart dual simplex pivots
  std::int64_t coldSolves = 0;   ///< from-scratch LP solves
  double wallSeconds = 0.0;

  bool feasible() const {
    return status == SolveStatus::Optimal || status == SolveStatus::Feasible;
  }
  double value(Var v) const { return values[static_cast<std::size_t>(v)]; }
};

/// A mixed-integer linear program. Minimization only (negate to maximize).
class Model {
 public:
  Model() = default;
  explicit Model(std::string name) : name_(std::move(name)) {}

  /// Adds a variable; Binary forces bounds into [0,1].
  Var addVar(double lb, double ub, VarType type, std::string name = {});

  Var addBinary(std::string name = {}) {
    return addVar(0.0, 1.0, VarType::Binary, std::move(name));
  }
  Var addContinuous(double lb, double ub, std::string name = {}) {
    return addVar(lb, ub, VarType::Continuous, std::move(name));
  }

  /// Adds `expr sense rhs`; the expression's constant is folded into rhs.
  void addConstraint(LinExpr expr, Sense sense, double rhs,
                     std::string name = {});

  /// Sets the minimization objective.
  void setObjective(LinExpr expr);

  std::size_t numVars() const { return lb_.size(); }
  std::size_t numConstraints() const { return constraints_.size(); }
  std::size_t numIntegerVars() const;

  double lowerBound(Var v) const { return lb_[v]; }
  double upperBound(Var v) const { return ub_[v]; }
  VarType varType(Var v) const { return type_[v]; }
  const std::string& varName(Var v) const { return varNames_[v]; }
  void setBounds(Var v, double lb, double ub) {
    lb_[v] = lb;
    ub_[v] = ub;
  }

  const std::vector<Constraint>& constraints() const { return constraints_; }
  const LinExpr& objective() const { return objective_; }
  const std::string& name() const { return name_; }

  bool isIntegerType(Var v) const {
    return type_[v] == VarType::Integer || type_[v] == VarType::Binary;
  }

  /// Writes the model in CPLEX LP text format (debugging aid).
  void writeLp(std::ostream& os) const;

  /// Checks a point for feasibility within `tol`; returns a diagnostic for
  /// the first violated constraint/bound/integrality, or empty if feasible.
  std::string checkFeasible(const std::vector<double>& x,
                            double tol = 1e-6) const;

 private:
  std::string name_;
  std::vector<double> lb_, ub_;
  std::vector<VarType> type_;
  std::vector<std::string> varNames_;
  std::vector<Constraint> constraints_;
  LinExpr objective_;
};

}  // namespace lamp::lp

#endif  // LAMP_LP_MODEL_H
