#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

namespace lamp::lp {

namespace {

enum class ColState : std::uint8_t { AtLower, AtUpper, Basic, Free };

/// Sparse structural columns + row data, built once per model.
struct Csc {
  std::vector<std::int32_t> colStart, rowIdx;
  std::vector<double> val, rhs;
  std::vector<Sense> sense;
  std::size_t n = 0, m = 0;

  static Csc build(const Model& model) {
    Csc a;
    a.n = model.numVars();
    a.m = model.numConstraints();
    std::vector<std::int32_t> counts(a.n, 0);
    for (const Constraint& c : model.constraints()) {
      for (const Term& t : c.terms) ++counts[t.var];
    }
    a.colStart.assign(a.n + 1, 0);
    for (std::size_t j = 0; j < a.n; ++j) {
      a.colStart[j + 1] = a.colStart[j] + counts[j];
    }
    a.rowIdx.resize(a.colStart[a.n]);
    a.val.resize(a.colStart[a.n]);
    std::vector<std::int32_t> fill(a.colStart.begin(), a.colStart.end() - 1);
    a.rhs.resize(a.m);
    a.sense.resize(a.m);
    for (std::size_t i = 0; i < a.m; ++i) {
      const Constraint& c = model.constraints()[i];
      a.rhs[i] = c.rhs;
      a.sense[i] = c.sense;
      for (const Term& t : c.terms) {
        a.rowIdx[fill[t.var]] = static_cast<std::int32_t>(i);
        a.val[fill[t.var]] = t.coef;
        ++fill[t.var];
      }
    }
    return a;
  }
};

/// All solver state: bounded revised simplex with a dense basis inverse.
/// Persistent across solves for the incremental (dual) path.
struct Worker {
  const Csc* A = nullptr;
  const Model* model = nullptr;
  SimplexOptions opts;

  std::vector<double> lb, ub, x, cost;
  std::vector<ColState> state;
  std::vector<std::int32_t> artRow;
  std::vector<double> artSign;
  std::vector<std::int32_t> basic;
  std::vector<double> binv, xB, y, w, colBuf;

  std::int64_t iterations = 0;
  std::int64_t dualIterations = 0;
  int degenerateRun = 0;
  bool bland = false;
  std::chrono::steady_clock::time_point deadline = {};
  bool hasDeadline = false;

  std::size_t m() const { return A->m; }
  std::size_t n() const { return A->n; }
  std::size_t numCols() const { return A->n + A->m + artRow.size(); }

  void setDeadline() {
    if (std::isfinite(opts.timeLimitSeconds)) {
      hasDeadline = true;
      deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(opts.timeLimitSeconds));
    } else {
      hasDeadline = false;
    }
  }

  bool timedOut() const {
    return hasDeadline && std::chrono::steady_clock::now() > deadline;
  }

  template <typename F>
  void forEachEntry(std::size_t col, F&& f) const {
    if (col < A->n) {
      for (std::int32_t k = A->colStart[col]; k < A->colStart[col + 1]; ++k) {
        f(A->rowIdx[k], A->val[k]);
      }
    } else if (col < A->n + A->m) {
      f(static_cast<std::int32_t>(col - A->n), 1.0);
    } else {
      f(artRow[col - A->n - A->m], artSign[col - A->n - A->m]);
    }
  }

  double boundValue(std::size_t col) const {
    switch (state[col]) {
      case ColState::AtLower: return lb[col];
      case ColState::AtUpper: return ub[col];
      case ColState::Free: return 0.0;
      case ColState::Basic: return x[col];
    }
    return 0.0;
  }

  void btran() {
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t i = 0; i < m(); ++i) {
      const double cb = cost[basic[i]];
      if (cb == 0.0) continue;
      const double* row = &binv[i * m()];
      for (std::size_t k = 0; k < m(); ++k) y[k] += cb * row[k];
    }
  }

  void ftran(std::size_t col) {
    std::fill(colBuf.begin(), colBuf.end(), 0.0);
    forEachEntry(col, [&](std::int32_t r, double v) { colBuf[r] += v; });
    for (std::size_t i = 0; i < m(); ++i) {
      const double* row = &binv[i * m()];
      double acc = 0.0;
      for (std::size_t k = 0; k < m(); ++k) acc += row[k] * colBuf[k];
      w[i] = acc;
    }
  }

  double reducedCost(std::size_t col) const {
    double d = cost[col];
    forEachEntry(col, [&](std::int32_t r, double v) { d -= y[r] * v; });
    return d;
  }

  void computeXB() {
    std::fill(colBuf.begin(), colBuf.end(), 0.0);
    for (std::size_t i = 0; i < m(); ++i) colBuf[i] = A->rhs[i];
    for (std::size_t j = 0; j < numCols(); ++j) {
      if (state[j] == ColState::Basic) continue;
      const double v = boundValue(j);
      x[j] = v;
      if (v == 0.0) continue;
      forEachEntry(j, [&](std::int32_t r, double a) { colBuf[r] -= a * v; });
    }
    for (std::size_t i = 0; i < m(); ++i) {
      const double* row = &binv[i * m()];
      double acc = 0.0;
      for (std::size_t k = 0; k < m(); ++k) acc += row[k] * colBuf[k];
      xB[i] = acc;
    }
    for (std::size_t i = 0; i < m(); ++i) x[basic[i]] = xB[i];
  }

  bool refactor() {
    std::vector<double> mat(m() * m(), 0.0);
    for (std::size_t i = 0; i < m(); ++i) {
      forEachEntry(basic[i],
                   [&](std::int32_t r, double v) { mat[r * m() + i] += v; });
    }
    std::fill(binv.begin(), binv.end(), 0.0);
    for (std::size_t i = 0; i < m(); ++i) binv[i * m() + i] = 1.0;
    for (std::size_t col = 0; col < m(); ++col) {
      std::size_t piv = col;
      double best = std::abs(mat[col * m() + col]);
      for (std::size_t r = col + 1; r < m(); ++r) {
        if (std::abs(mat[r * m() + col]) > best) {
          best = std::abs(mat[r * m() + col]);
          piv = r;
        }
      }
      if (best < 1e-11) return false;
      if (piv != col) {
        for (std::size_t k = 0; k < m(); ++k) {
          std::swap(mat[piv * m() + k], mat[col * m() + k]);
          std::swap(binv[piv * m() + k], binv[col * m() + k]);
        }
      }
      const double inv = 1.0 / mat[col * m() + col];
      for (std::size_t k = 0; k < m(); ++k) {
        mat[col * m() + k] *= inv;
        binv[col * m() + k] *= inv;
      }
      for (std::size_t r = 0; r < m(); ++r) {
        if (r == col) continue;
        const double f = mat[r * m() + col];
        if (f == 0.0) continue;
        for (std::size_t k = 0; k < m(); ++k) {
          mat[r * m() + k] -= f * mat[col * m() + k];
          binv[r * m() + k] -= f * binv[col * m() + k];
        }
      }
    }
    return true;
  }

  /// Elementary pivot update of Binv around row r with direction w.
  void updateBinv(std::size_t r) {
    double* prow = &binv[r * m()];
    const double inv = 1.0 / w[r];
    for (std::size_t k = 0; k < m(); ++k) prow[k] *= inv;
    for (std::size_t i = 0; i < m(); ++i) {
      if (i == r) continue;
      const double f = w[i];
      if (f == 0.0) continue;
      double* row = &binv[i * m()];
      for (std::size_t k = 0; k < m(); ++k) row[k] -= f * prow[k];
    }
  }

  /// Primal simplex with the current `cost`. Returns Optimal, Unbounded,
  /// NoSolution (limits) or Error.
  SolveStatus iterate() {
    int sinceCheck = 0;
    while (true) {
      if (iterations >= opts.maxIterations) return SolveStatus::NoSolution;
      if ((iterations & 0xFF) == 0 && timedOut()) {
        return SolveStatus::NoSolution;
      }
      ++iterations;

      btran();

      std::size_t enter = numCols();
      double bestScore = opts.optTol;
      int enterDir = +1;
      for (std::size_t j = 0; j < numCols(); ++j) {
        if (state[j] == ColState::Basic) continue;
        if (lb[j] == ub[j] && state[j] != ColState::Free) continue;
        const double d = reducedCost(j);
        double score = 0.0;
        int dir = +1;
        if (state[j] == ColState::AtLower && d < -opts.optTol) {
          score = -d;
        } else if (state[j] == ColState::AtUpper && d > opts.optTol) {
          score = d;
          dir = -1;
        } else if (state[j] == ColState::Free && std::abs(d) > opts.optTol) {
          score = std::abs(d);
          dir = d < 0 ? +1 : -1;
        } else {
          continue;
        }
        if (bland) {
          enter = j;
          enterDir = dir;
          break;
        }
        if (score > bestScore) {
          bestScore = score;
          enter = j;
          enterDir = dir;
        }
      }
      if (enter == numCols()) return SolveStatus::Optimal;

      ftran(enter);
      const int sigma = enterDir;

      double limit = ub[enter] - lb[enter];
      if (!std::isfinite(limit)) limit = kInf;
      double bestDelta = limit;
      std::size_t leaveRow = m();
      double leaveAt = 0.0;
      for (std::size_t i = 0; i < m(); ++i) {
        const double rate = -sigma * w[i];
        if (std::abs(rate) < 1e-10) continue;
        const std::size_t bcol = basic[i];
        double delta, hit;
        if (rate > 0) {
          if (!std::isfinite(ub[bcol])) continue;
          delta = (ub[bcol] - xB[i]) / rate;
          hit = ub[bcol];
        } else {
          if (!std::isfinite(lb[bcol])) continue;
          delta = (lb[bcol] - xB[i]) / rate;
          hit = lb[bcol];
        }
        if (delta < -opts.feasTol) delta = 0.0;
        if (delta < bestDelta - 1e-12 ||
            (delta < bestDelta + 1e-12 && leaveRow < m() &&
             std::abs(w[i]) > std::abs(w[leaveRow]))) {
          bestDelta = std::max(delta, 0.0);
          leaveRow = i;
          leaveAt = hit;
        }
      }

      if (!std::isfinite(bestDelta)) return SolveStatus::Unbounded;

      if (bestDelta <= 1e-10) {
        if (++degenerateRun > 200) bland = true;
      } else {
        degenerateRun = 0;
        if (bland && ++sinceCheck > 50) {
          bland = false;
          sinceCheck = 0;
        }
      }

      const double step = sigma * bestDelta;
      for (std::size_t i = 0; i < m(); ++i) {
        xB[i] -= w[i] * step;
        x[basic[i]] = xB[i];
      }

      if (leaveRow == m()) {
        state[enter] = state[enter] == ColState::AtLower ? ColState::AtUpper
                                                         : ColState::AtLower;
        x[enter] = boundValue(enter);
        continue;
      }

      const std::size_t leave = basic[leaveRow];
      if (std::abs(w[leaveRow]) < 1e-9) {
        if (!refactor()) return SolveStatus::Error;
        computeXB();
        continue;
      }

      x[enter] = boundValue(enter) + step;
      state[enter] = ColState::Basic;
      x[leave] = leaveAt;
      state[leave] =
          (std::abs(leaveAt - ub[leave]) < std::abs(leaveAt - lb[leave]))
              ? ColState::AtUpper
              : ColState::AtLower;
      updateBinv(leaveRow);
      basic[leaveRow] = static_cast<std::int32_t>(enter);
      xB[leaveRow] = x[enter];

      if ((iterations % 2000) == 0) {
        if (!refactor()) return SolveStatus::Error;
        computeXB();
      }
    }
  }

  /// Objective value of the current basis point. For a dual-feasible
  /// basis this is a valid lower bound on the LP optimum (it is the dual
  /// objective), which is what makes the cutoff test below sound.
  double objectiveNow() const {
    double z = 0.0;
    for (const Term& t : model->objective().terms()) z += t.coef * x[t.var];
    return z;
  }

  /// One pricing pass that makes the basis genuinely dual feasible — the
  /// precondition for c'x being a valid dual bound. Unfixing a column a
  /// previous node had branched to a single value silently breaks dual
  /// feasibility: while fixed, the pivot loops skip the column, so its
  /// reduced cost drifts to an arbitrary sign, and the node that frees
  /// it inherits that sign. (The eventual primal cleanup repairs
  /// optimality either way, but a cutoff fired from a dual-infeasible
  /// basis would prune a node it cannot prove anything about.) A
  /// wrong-signed column is repaired by flipping it to its opposite
  /// bound — always possible for the 0/1 branching variables; returns
  /// false when some column can't be flipped (opposite bound infinite),
  /// in which case the caller must not trust c'x as a bound.
  bool repairDualFeasibility(double tol) {
    btran();
    bool flipped = false;
    bool ok = true;
    for (std::size_t j = 0; j < numCols(); ++j) {
      if (state[j] == ColState::Basic) continue;
      if (lb[j] == ub[j]) continue;  // fixed: either bound multiplier works
      const double d = reducedCost(j);
      if (state[j] == ColState::AtLower && d < -tol) {
        if (std::isfinite(ub[j])) {
          state[j] = ColState::AtUpper;
          flipped = true;
        } else {
          ok = false;
        }
      } else if (state[j] == ColState::AtUpper && d > tol) {
        if (std::isfinite(lb[j])) {
          state[j] = ColState::AtLower;
          flipped = true;
        } else {
          ok = false;
        }
      } else if (state[j] == ColState::Free && std::abs(d) > tol) {
        ok = false;
      }
    }
    if (flipped) computeXB();
    return ok;
  }

  /// Dual simplex: restores primal feasibility from a dual-feasible
  /// basis (reduced-cost signs are unaffected by bound changes).
  /// Returns Optimal (primal feasible), Infeasible, NoSolution, Cutoff
  /// (dual bound crossed opts.objectiveCutoff) or Error.
  SolveStatus dualRestore(std::int64_t maxPivots) {
    // The cutoff is only sound from a genuinely dual-feasible start; the
    // repair costs one pricing pass, about as much as a single pivot.
    const bool hasCutoff = std::isfinite(opts.objectiveCutoff) &&
                           repairDualFeasibility(opts.optTol * 10);
    for (std::int64_t pivots = 0; pivots < maxPivots; ++pivots) {
      if ((pivots & 0x3F) == 0 && timedOut()) return SolveStatus::NoSolution;
      // The bound rises monotonically, so the moment it reaches the
      // cutoff the caller is guaranteed to fathom this node; every pivot
      // after that (typically the whole degenerate plateau at the LP
      // optimum) would be wasted work. The basis is untouched here, so
      // the worker stays hot.
      if (hasCutoff && objectiveNow() >= opts.objectiveCutoff) {
        return SolveStatus::Cutoff;
      }

      // Leaving variable: most violated basic.
      std::size_t r = m();
      double worst = opts.feasTol * 10;
      int dir = 0;
      for (std::size_t i = 0; i < m(); ++i) {
        const std::size_t col = basic[i];
        if (xB[i] > ub[col] + opts.feasTol) {
          const double v = xB[i] - ub[col];
          if (v > worst) {
            worst = v;
            r = i;
            dir = +1;
          }
        } else if (xB[i] < lb[col] - opts.feasTol) {
          const double v = lb[col] - xB[i];
          if (v > worst) {
            worst = v;
            r = i;
            dir = -1;
          }
        }
      }
      if (r == m()) return SolveStatus::Optimal;

      btran();
      const double* rowR = &binv[r * m()];

      std::size_t enter = numCols();
      double bestRatio = kInf;
      double bestAlpha = 0.0;
      for (std::size_t j = 0; j < numCols(); ++j) {
        if (state[j] == ColState::Basic) continue;
        if (lb[j] == ub[j] && state[j] != ColState::Free) continue;
        double alpha = 0.0;
        forEachEntry(j,
                     [&](std::int32_t row, double v) { alpha += rowR[row] * v; });
        if (std::abs(alpha) < 1e-9) continue;
        const double signedAlpha = dir * alpha;
        bool eligible = false;
        if (state[j] == ColState::AtLower && signedAlpha > 0) eligible = true;
        if (state[j] == ColState::AtUpper && signedAlpha < 0) eligible = true;
        if (state[j] == ColState::Free) eligible = true;
        if (!eligible) continue;
        const double d = reducedCost(j);
        const double ratio = std::max(0.0, std::abs(d)) / std::abs(alpha);
        if (ratio < bestRatio - 1e-12 ||
            (ratio < bestRatio + 1e-12 && std::abs(alpha) > std::abs(bestAlpha))) {
          bestRatio = ratio;
          bestAlpha = alpha;
          enter = j;
        }
      }
      if (enter == numCols()) return SolveStatus::Infeasible;

      ftran(enter);
      if (std::abs(w[r]) < 1e-9) {
        if (!refactor()) return SolveStatus::Error;
        computeXB();
        continue;
      }

      const std::size_t leave = basic[r];
      const double target = dir > 0 ? ub[leave] : lb[leave];
      const double t = (xB[r] - target) / w[r];

      for (std::size_t i = 0; i < m(); ++i) {
        xB[i] -= w[i] * t;
        x[basic[i]] = xB[i];
      }
      x[enter] = boundValue(enter) + t;
      state[enter] = ColState::Basic;
      x[leave] = target;
      state[leave] = dir > 0 ? ColState::AtUpper : ColState::AtLower;
      updateBinv(r);
      basic[r] = static_cast<std::int32_t>(enter);
      xB[r] = x[enter];
      ++dualIterations;

      if ((dualIterations % 2000) == 0) {
        if (!refactor()) return SolveStatus::Error;
        computeXB();
      }
    }
    return SolveStatus::NoSolution;
  }

  /// Full two-phase primal solve under the given structural bounds.
  /// Leaves the worker hot (phase-2 costs, optimal basis) on success.
  SolveStatus freshSolve(const std::vector<double>& lbOverride,
                         const std::vector<double>& ubOverride) {
    const std::size_t base = n() + m();
    artRow.clear();
    artSign.clear();
    lb.resize(base);
    ub.resize(base);
    for (std::size_t j = 0; j < n(); ++j) {
      lb[j] = lbOverride.empty() ? model->lowerBound(static_cast<Var>(j))
                                 : lbOverride[j];
      ub[j] = ubOverride.empty() ? model->upperBound(static_cast<Var>(j))
                                 : ubOverride[j];
      if (lb[j] > ub[j] + opts.feasTol) return SolveStatus::Infeasible;
    }
    for (std::size_t i = 0; i < m(); ++i) {
      switch (A->sense[i]) {
        case Sense::Le:
          lb[n() + i] = 0.0;
          ub[n() + i] = kInf;
          break;
        case Sense::Ge:
          lb[n() + i] = -kInf;
          ub[n() + i] = 0.0;
          break;
        case Sense::Eq:
          lb[n() + i] = 0.0;
          ub[n() + i] = 0.0;
          break;
      }
    }

    state.assign(base, ColState::AtLower);
    x.assign(base, 0.0);
    for (std::size_t j = 0; j < base; ++j) {
      if (std::isfinite(lb[j])) {
        state[j] = ColState::AtLower;
      } else if (std::isfinite(ub[j])) {
        state[j] = ColState::AtUpper;
      } else {
        state[j] = ColState::Free;
      }
      x[j] = boundValue(j);
    }

    // Residuals with every column nonbasic decide slack vs artificial.
    std::vector<double> resid(m(), 0.0);
    for (std::size_t i = 0; i < m(); ++i) resid[i] = A->rhs[i];
    for (std::size_t j = 0; j < base; ++j) {
      const double v = x[j];
      if (v == 0.0) continue;
      forEachEntry(j, [&](std::int32_t r, double a) { resid[r] -= a * v; });
    }
    basic.assign(m(), 0);
    for (std::size_t i = 0; i < m(); ++i) {
      const std::size_t sj = n() + i;
      const double target = resid[i] + x[sj];
      if (target >= lb[sj] - opts.feasTol &&
          target <= ub[sj] + opts.feasTol) {
        state[sj] = ColState::Basic;
        x[sj] = target;
        basic[i] = static_cast<std::int32_t>(sj);
      } else {
        const double snb = (target > ub[sj]) ? ub[sj] : lb[sj];
        x[sj] = snb;
        const double residual = target - snb;
        artRow.push_back(static_cast<std::int32_t>(i));
        artSign.push_back(residual >= 0 ? 1.0 : -1.0);
        lb.push_back(0.0);
        ub.push_back(kInf);
        x.push_back(std::abs(residual));
        state.push_back(ColState::Basic);
        basic[i] = static_cast<std::int32_t>(numCols() - 1);
      }
    }

    binv.assign(m() * m(), 0.0);
    xB.assign(m(), 0.0);
    y.assign(m(), 0.0);
    w.assign(m(), 0.0);
    colBuf.assign(m(), 0.0);
    if (!refactor()) return SolveStatus::Error;
    computeXB();

    if (!artRow.empty()) {
      cost.assign(numCols(), 0.0);
      for (std::size_t a = 0; a < artRow.size(); ++a) cost[base + a] = 1.0;
      bland = false;
      degenerateRun = 0;
      const SolveStatus st = iterate();
      if (st != SolveStatus::Optimal) {
        return st == SolveStatus::Unbounded ? SolveStatus::Error : st;
      }
      double artSum = 0.0;
      for (std::size_t a = 0; a < artRow.size(); ++a) artSum += x[base + a];
      if (artSum > 1e-6) return SolveStatus::Infeasible;
      for (std::size_t a = 0; a < artRow.size(); ++a) {
        lb[base + a] = 0.0;
        ub[base + a] = 0.0;
        if (state[base + a] != ColState::Basic) {
          state[base + a] = ColState::AtLower;
          x[base + a] = 0.0;
        }
      }
    }

    cost.assign(numCols(), 0.0);
    for (const Term& t : model->objective().terms()) cost[t.var] += t.coef;
    bland = false;
    degenerateRun = 0;
    return iterate();
  }

  void extract(SimplexResult& result) const {
    result.x.assign(n(), 0.0);
    for (std::size_t j = 0; j < n(); ++j) result.x[j] = x[j];
    result.objective = model->objective().evaluate(result.x);
  }
};

}  // namespace

// --- SimplexSolver (stateless facade) ----------------------------------------

struct SimplexSolver::Impl {
  const Model& model;
  SimplexOptions opts;
  Csc csc;
};

SimplexSolver::SimplexSolver(const Model& model, SimplexOptions opts)
    : impl_(new Impl{model, opts, Csc::build(model)}) {}
SimplexSolver::~SimplexSolver() = default;
SimplexSolver::SimplexSolver(SimplexSolver&&) noexcept = default;
SimplexSolver& SimplexSolver::operator=(SimplexSolver&&) noexcept = default;

SimplexResult SimplexSolver::solve() {
  return solve(std::vector<double>(), std::vector<double>());
}

SimplexResult SimplexSolver::solve(const std::vector<double>& lb,
                                   const std::vector<double>& ub) {
  Worker wk;
  wk.A = &impl_->csc;
  wk.model = &impl_->model;
  wk.opts = impl_->opts;
  wk.setDeadline();
  SimplexResult result;
  result.status = wk.freshSolve(lb, ub);
  result.iterations = wk.iterations;
  if (result.status == SolveStatus::Optimal) wk.extract(result);
  return result;
}

// --- IncrementalSimplex --------------------------------------------------------

struct IncrementalSimplex::Impl {
  const Model& model;
  SimplexOptions opts;
  Csc csc;
  Worker wk;
  bool hot = false;
  std::int64_t coldSolves = 0;

  explicit Impl(const Model& m, SimplexOptions o)
      : model(m), opts(o), csc(Csc::build(m)) {
    wk.A = &csc;
    wk.model = &m;
    wk.opts = o;
  }
};

IncrementalSimplex::IncrementalSimplex(const Model& model, SimplexOptions opts)
    : impl_(new Impl(model, opts)) {}
IncrementalSimplex::~IncrementalSimplex() = default;

void IncrementalSimplex::setTimeLimit(double seconds) {
  impl_->opts.timeLimitSeconds = seconds;
}

void IncrementalSimplex::setObjectiveCutoff(double cutoff) {
  impl_->opts.objectiveCutoff = cutoff;
}

std::int64_t IncrementalSimplex::dualPivots() const {
  return impl_->wk.dualIterations;
}
std::int64_t IncrementalSimplex::coldSolves() const {
  return impl_->coldSolves;
}

SimplexResult IncrementalSimplex::solve(const std::vector<double>& lb,
                                        const std::vector<double>& ub) {
  Worker& wk = impl_->wk;
  wk.opts = impl_->opts;
  wk.setDeadline();
  SimplexResult result;

  for (std::size_t j = 0; j < impl_->csc.n; ++j) {
    if (lb[j] > ub[j] + impl_->opts.feasTol) {
      result.status = SolveStatus::Infeasible;
      return result;
    }
  }

  if (impl_->hot) {
    // Apply the new bounds; nonbasic columns stay on their side (this
    // preserves dual feasibility), only their values shift.
    bool seatable = true;
    for (std::size_t j = 0; j < impl_->csc.n && seatable; ++j) {
      wk.lb[j] = lb[j];
      wk.ub[j] = ub[j];
      if (wk.state[j] == ColState::AtLower && !std::isfinite(lb[j])) {
        seatable = false;
      }
      if (wk.state[j] == ColState::AtUpper && !std::isfinite(ub[j])) {
        seatable = false;
      }
    }
    if (seatable) {
      wk.computeXB();
      const std::int64_t beforePrimal = wk.iterations;
      const std::int64_t beforeDual = wk.dualIterations;
      SolveStatus st = wk.dualRestore(50000);
      if (st == SolveStatus::Optimal) {
        // Dual feasibility was preserved, so this should already be
        // optimal; a short primal cleanup guards tolerance drift.
        st = wk.iterate();
      }
      result.iterations = (wk.iterations - beforePrimal) +
                          (wk.dualIterations - beforeDual);
      if (st == SolveStatus::Optimal || st == SolveStatus::Infeasible ||
          st == SolveStatus::NoSolution || st == SolveStatus::Cutoff) {
        // The basis stays dual feasible in all four cases, so the worker
        // remains hot for the next call.
        result.status = st;
        if (st == SolveStatus::Optimal) {
          wk.extract(result);
        } else if (st == SolveStatus::Cutoff) {
          // No primal point to extract, but the dual bound reached is a
          // valid lower bound on this LP — report it so the caller can
          // use it as the fathomed node's bound.
          result.objective = wk.objectiveNow();
        }
        return result;
      }
      // Error: fall through to the cold path.
    }
  }

  ++impl_->coldSolves;
  const std::int64_t before = wk.iterations;
  result.status = wk.freshSolve(lb, ub);
  result.iterations = wk.iterations - before;
  impl_->hot = result.status == SolveStatus::Optimal;
  if (result.status == SolveStatus::Optimal) wk.extract(result);
  return result;
}

}  // namespace lamp::lp
