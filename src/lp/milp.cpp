#include "lp/milp.h"

#include "lp/presolve.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>

namespace lamp::lp {

namespace {

/// One open branch & bound node: bound overrides relative to the root,
/// stored as a chain of single changes to keep memory linear in depth.
struct BoundChange {
  Var var = kNoVar;
  double lb = 0.0;
  double ub = 0.0;
  std::shared_ptr<const BoundChange> parent;
};

struct NodeRec {
  std::shared_ptr<const BoundChange> changes;
  double parentBound = -kInf;  ///< LP bound of the parent (pruning key)
  int depth = 0;
};

}  // namespace

MilpSolver::MilpSolver(const Model& model, MilpOptions opts)
    : model_(model), opts_(std::move(opts)) {}

void MilpSolver::addSos1Group(std::vector<Var> vars,
                              std::vector<double> positions) {
  sosVars_.push_back(std::move(vars));
  sosPos_.push_back(std::move(positions));
}

void MilpSolver::setInitialIncumbent(std::vector<double> x) {
  initialIncumbent_ = std::move(x);
}

Solution MilpSolver::solve() {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  const auto elapsed = [&] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  Solution best;
  best.status = SolveStatus::NoSolution;
  best.objective = kInf;
  best.bestBound = -kInf;

  if (!initialIncumbent_.empty() &&
      model_.checkFeasible(initialIncumbent_, 1e-5).empty()) {
    best.values = initialIncumbent_;
    best.objective = model_.objective().evaluate(initialIncumbent_);
    best.status = SolveStatus::Feasible;
    if (opts_.onIncumbent) opts_.onIncumbent(best.objective, best.values);
  }

  // Shape-preserving presolve: same variables, tighter bounds, fewer
  // rows. Every integer-feasible point (incl. the incumbent) survives.
  PresolveStats preStats;
  const Model presolved =
      opts_.presolve ? presolve(model_, &preStats) : Model();
  const Model& work = opts_.presolve ? presolved : model_;
  if (preStats.infeasible) {
    best.status = best.feasible() ? SolveStatus::Optimal
                                  : SolveStatus::Infeasible;
    best.wallSeconds = elapsed();
    return best;
  }

  const std::size_t n = work.numVars();
  std::vector<double> rootLb(n), rootUb(n);
  for (Var v = 0; v < static_cast<Var>(n); ++v) {
    rootLb[v] = work.lowerBound(v);
    rootUb[v] = work.upperBound(v);
  }

  SimplexOptions lpOpts = opts_.lp;
  IncrementalSimplex lpSolver(work, lpOpts);

  // Map each variable to its SOS group, if any.
  std::vector<std::int32_t> sosOf(n, -1);
  for (std::size_t g = 0; g < sosVars_.size(); ++g) {
    for (const Var v : sosVars_[g]) sosOf[v] = static_cast<std::int32_t>(g);
  }

  std::vector<NodeRec> stack;
  stack.push_back(NodeRec{});

  std::vector<double> lb(n), ub(n);
  bool exploredAll = true;

  while (!stack.empty()) {
    if (elapsed() > opts_.timeLimitSeconds ||
        best.branchNodes >= opts_.maxNodes) {
      exploredAll = false;
      break;
    }
    NodeRec node = std::move(stack.back());
    stack.pop_back();
    ++best.branchNodes;

    if (best.feasible() &&
        node.parentBound >= best.objective - opts_.absGapTol) {
      continue;  // pruned by bound
    }

    // Materialize bounds for this node.
    lb = rootLb;
    ub = rootUb;
    for (const BoundChange* ch = node.changes.get(); ch != nullptr;
         ch = ch->parent.get()) {
      lb[ch->var] = std::max(lb[ch->var], ch->lb);
      ub[ch->var] = std::min(ub[ch->var], ch->ub);
    }

    lpSolver.setTimeLimit(std::max(0.1, opts_.timeLimitSeconds - elapsed()));
    const SimplexResult lp = lpSolver.solve(lb, ub);
    best.simplexIterations += lp.iterations;
    if (lp.status == SolveStatus::Infeasible) continue;
    if (lp.status != SolveStatus::Optimal) {
      // LP hit its own limit or failed: can't trust a bound here.
      exploredAll = false;
      continue;
    }
    if (best.feasible() && lp.objective >= best.objective - opts_.absGapTol) {
      continue;
    }

    // Find the most fractional integer variable, preferring SOS groups.
    Var fracVar = kNoVar;
    double fracScore = opts_.intTol;
    std::int32_t fracGroup = -1;
    for (Var v = 0; v < static_cast<Var>(n); ++v) {
      if (!model_.isIntegerType(v)) continue;
      const double x = lp.x[v];
      const double f = std::abs(x - std::round(x));
      if (f > fracScore) {
        fracScore = f;
        fracVar = v;
        fracGroup = sosOf[v];
      }
    }

    if (fracVar == kNoVar) {
      // Integral: new incumbent. Round int vars exactly before storing.
      std::vector<double> x = lp.x;
      for (Var v = 0; v < static_cast<Var>(n); ++v) {
        if (model_.isIntegerType(v)) x[v] = std::round(x[v]);
      }
      if (lp.objective < best.objective - 1e-12) {
        best.values = std::move(x);
        best.objective = lp.objective;
        best.status = SolveStatus::Feasible;
        if (opts_.onIncumbent) opts_.onIncumbent(best.objective, best.values);
      }
      continue;
    }

    if (fracGroup >= 0) {
      // SOS1 branch: split the group on the position axis around the
      // LP-relaxation's barycenter.
      const auto& vars = sosVars_[fracGroup];
      const auto& pos = sosPos_[fracGroup];
      double wsum = 0.0, psum = 0.0;
      for (std::size_t k = 0; k < vars.size(); ++k) {
        const double xv = std::clamp(lp.x[vars[k]], 0.0, 1.0);
        wsum += xv;
        psum += xv * pos[k];
      }
      const double split = wsum > 0 ? psum / wsum : pos[pos.size() / 2];
      // Members strictly above the split go to the "high" child; make sure
      // both children exclude at least one *free* member.
      std::vector<Var> lowSet, highSet;
      for (std::size_t k = 0; k < vars.size(); ++k) {
        if (ub[vars[k]] < 0.5) continue;  // already excluded here
        (pos[k] <= split ? lowSet : highSet).push_back(vars[k]);
      }
      if (!lowSet.empty() && !highSet.empty()) {
        auto mkChild = [&](const std::vector<Var>& exclude) {
          std::shared_ptr<const BoundChange> chain = node.changes;
          for (const Var v : exclude) {
            auto ch = std::make_shared<BoundChange>();
            ch->var = v;
            ch->lb = rootLb[v];
            ch->ub = 0.0;
            ch->parent = chain;
            chain = std::move(ch);
          }
          stack.push_back(NodeRec{chain, lp.objective, node.depth + 1});
        };
        // Dive first into the side with more LP mass: push it last.
        double lowMass = 0.0;
        for (const Var v : lowSet) lowMass += lp.x[v];
        if (lowMass >= wsum / 2) {
          mkChild(lowSet);   // child allowing only high
          mkChild(highSet);  // child allowing only low — explored first
        } else {
          mkChild(highSet);
          mkChild(lowSet);
        }
        continue;
      }
      // Degenerate group (all mass on one side): fall through to 0/1.
    }

    // Plain 0/1 (or integer floor/ceil) branching.
    const double xv = lp.x[fracVar];
    auto mkChild = [&](double clb, double cub) {
      auto ch = std::make_shared<BoundChange>();
      ch->var = fracVar;
      ch->lb = clb;
      ch->ub = cub;
      ch->parent = node.changes;
      stack.push_back(NodeRec{std::move(ch), lp.objective, node.depth + 1});
    };
    const double fl = std::floor(xv), ce = std::ceil(xv);
    // Push the dive side last so DFS explores it first.
    if ((xv - fl) > 0.5) {
      mkChild(rootLb[fracVar], fl);
      mkChild(ce, rootUb[fracVar]);
    } else {
      mkChild(ce, rootUb[fracVar]);
      mkChild(rootLb[fracVar], fl);
    }
  }

  best.wallSeconds = elapsed();
  best.dualPivots = lpSolver.dualPivots();
  best.coldSolves = lpSolver.coldSolves();
  for (const NodeRec& rec : stack) {
    best.bestBound = best.bestBound == -kInf
                         ? rec.parentBound
                         : std::min(best.bestBound, rec.parentBound);
  }
  if (exploredAll && stack.empty()) {
    best.status = best.feasible() ? SolveStatus::Optimal
                                  : SolveStatus::Infeasible;
    if (best.feasible()) best.bestBound = best.objective;
  } else if (best.feasible()) {
    best.status = SolveStatus::Feasible;
  } else {
    best.status = SolveStatus::NoSolution;
  }
  return best;
}

}  // namespace lamp::lp
