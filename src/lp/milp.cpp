#include "lp/milp.h"

#include "lp/presolve.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"
#include "util/work_deque.h"

#include <string>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

namespace lamp::lp {

namespace {

/// One open branch & bound node: bound overrides relative to the root,
/// stored as a chain of single changes to keep memory linear in depth.
/// Chains are shared across workers after a steal; shared_ptr's atomic
/// control block makes that safe, and the payload is immutable once
/// published.
struct BoundChange {
  Var var = kNoVar;
  double lb = 0.0;
  double ub = 0.0;
  std::shared_ptr<const BoundChange> parent;
};

struct NodeRec {
  std::shared_ptr<const BoundChange> changes;
  double parentBound = -kInf;  ///< LP bound of the parent (pruning key)
  int depth = 0;
};

int resolveThreads(int requested) {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(hw, 1, 8);
}

/// Read-only search context shared by the serial loop and every worker.
struct SearchCtx {
  const Model& model;  ///< original model: integrality, SOS membership
  const Model& work;   ///< presolved model whose relaxations are solved
  const MilpOptions& opts;
  const std::vector<std::vector<Var>>& sosVars;
  const std::vector<std::vector<double>>& sosPos;
  std::vector<std::int32_t> sosOf;  ///< var -> SOS group or -1
  std::vector<double> rootLb, rootUb;
};

enum class NodeOutcome {
  Done,     ///< node fathomed or branched
  LpLimit,  ///< the LP hit its own limit: its bound cannot be trusted
};

/// Expands one open node: solves the relaxation, fathoms by bound /
/// integrality, or branches (SOS1 split first, 0/1 otherwise). Children
/// are emitted through `pushChild` with the dive side pushed LAST, so a
/// LIFO consumer explores it first — the historical serial order.
/// `incumbentObj` returns (hasIncumbent, objective) for pruning;
/// `commitIncumbent(obj, x)` publishes an integral point (it re-checks
/// improvement itself). The body is a faithful transliteration of the
/// original serial solver, so a single-threaded caller reproduces it node
/// for node.
///
/// `useLpCutoff` arms the LP with the incumbent as a dual-objective
/// cutoff: the dual simplex raises a valid lower bound monotonically, so
/// it can stop the moment the bound proves the node prunable instead of
/// grinding through the (heavily degenerate) plateau at the LP optimum.
/// Only the parallel path sets it — the serial path must stay node- and
/// pivot-identical to the historical solver.
template <typename PushChild, typename IncumbentObj, typename CommitIncumbent>
NodeOutcome expandNode(const SearchCtx& ctx, IncrementalSimplex& lpSolver,
                       const NodeRec& node, std::vector<double>& lb,
                       std::vector<double>& ub, double remainingSeconds,
                       bool useLpCutoff, std::int64_t& simplexIterations,
                       PushChild&& pushChild, IncumbentObj&& incumbentObj,
                       CommitIncumbent&& commitIncumbent) {
  const std::size_t n = ctx.work.numVars();

  // Materialize bounds for this node.
  lb = ctx.rootLb;
  ub = ctx.rootUb;
  for (const BoundChange* ch = node.changes.get(); ch != nullptr;
       ch = ch->parent.get()) {
    lb[ch->var] = std::max(lb[ch->var], ch->lb);
    ub[ch->var] = std::min(ub[ch->var], ch->ub);
  }

  if (useLpCutoff) {
    const auto [hasIncumbent, bestObj] = incumbentObj();
    lpSolver.setObjectiveCutoff(hasIncumbent ? bestObj - ctx.opts.absGapTol
                                             : kInf);
  }
  lpSolver.setTimeLimit(std::max(0.1, remainingSeconds));
  const SimplexResult lp = lpSolver.solve(lb, ub);
  simplexIterations += lp.iterations;
  if (lp.status == SolveStatus::Infeasible) return NodeOutcome::Done;
  if (lp.status == SolveStatus::Cutoff) {
    // The dual bound alone proved the node can't beat the incumbent.
    return NodeOutcome::Done;
  }
  if (lp.status != SolveStatus::Optimal) {
    // LP hit its own limit or failed: can't trust a bound here.
    return NodeOutcome::LpLimit;
  }
  {
    const auto [hasIncumbent, bestObj] = incumbentObj();
    if (hasIncumbent && lp.objective >= bestObj - ctx.opts.absGapTol) {
      return NodeOutcome::Done;
    }
  }

  // Find the most fractional integer variable, preferring SOS groups.
  Var fracVar = kNoVar;
  double fracScore = ctx.opts.intTol;
  std::int32_t fracGroup = -1;
  for (Var v = 0; v < static_cast<Var>(n); ++v) {
    if (!ctx.model.isIntegerType(v)) continue;
    const double x = lp.x[v];
    const double f = std::abs(x - std::round(x));
    if (f > fracScore) {
      fracScore = f;
      fracVar = v;
      fracGroup = ctx.sosOf[v];
    }
  }

  if (fracVar == kNoVar) {
    // Integral: new incumbent. Round int vars exactly before storing.
    std::vector<double> x = lp.x;
    for (Var v = 0; v < static_cast<Var>(n); ++v) {
      if (ctx.model.isIntegerType(v)) x[v] = std::round(x[v]);
    }
    commitIncumbent(lp.objective, std::move(x));
    return NodeOutcome::Done;
  }

  if (fracGroup >= 0) {
    // SOS1 branch: split the group on the position axis around the
    // LP-relaxation's barycenter.
    const auto& vars = ctx.sosVars[fracGroup];
    const auto& pos = ctx.sosPos[fracGroup];
    double wsum = 0.0, psum = 0.0;
    for (std::size_t k = 0; k < vars.size(); ++k) {
      const double xv = std::clamp(lp.x[vars[k]], 0.0, 1.0);
      wsum += xv;
      psum += xv * pos[k];
    }
    const double split = wsum > 0 ? psum / wsum : pos[pos.size() / 2];
    // Members strictly above the split go to the "high" child; make sure
    // both children exclude at least one *free* member.
    std::vector<Var> lowSet, highSet;
    for (std::size_t k = 0; k < vars.size(); ++k) {
      if (ub[vars[k]] < 0.5) continue;  // already excluded here
      (pos[k] <= split ? lowSet : highSet).push_back(vars[k]);
    }
    if (!lowSet.empty() && !highSet.empty()) {
      auto mkChild = [&](const std::vector<Var>& exclude) {
        std::shared_ptr<const BoundChange> chain = node.changes;
        for (const Var v : exclude) {
          auto ch = std::make_shared<BoundChange>();
          ch->var = v;
          ch->lb = ctx.rootLb[v];
          ch->ub = 0.0;
          ch->parent = chain;
          chain = std::move(ch);
        }
        pushChild(NodeRec{chain, lp.objective, node.depth + 1});
      };
      // Dive first into the side with more LP mass: push it last.
      double lowMass = 0.0;
      for (const Var v : lowSet) lowMass += lp.x[v];
      if (lowMass >= wsum / 2) {
        mkChild(lowSet);   // child allowing only high
        mkChild(highSet);  // child allowing only low — explored first
      } else {
        mkChild(highSet);
        mkChild(lowSet);
      }
      return NodeOutcome::Done;
    }
    // Degenerate group (all mass on one side): fall through to 0/1.
  }

  // Plain 0/1 (or integer floor/ceil) branching.
  const double xv = lp.x[fracVar];
  auto mkChild = [&](double clb, double cub) {
    auto ch = std::make_shared<BoundChange>();
    ch->var = fracVar;
    ch->lb = clb;
    ch->ub = cub;
    ch->parent = node.changes;
    pushChild(NodeRec{std::move(ch), lp.objective, node.depth + 1});
  };
  const double fl = std::floor(xv), ce = std::ceil(xv);
  // Push the dive side last so DFS explores it first.
  if ((xv - fl) > 0.5) {
    mkChild(ctx.rootLb[fracVar], fl);
    mkChild(ce, ctx.rootUb[fracVar]);
  } else {
    mkChild(ce, ctx.rootUb[fracVar]);
    mkChild(ctx.rootLb[fracVar], fl);
  }
  return NodeOutcome::Done;
}

/// The historical depth-first serial solver (threads == 1): one stack,
/// one incremental LP, node-for-node identical to the pre-parallel code.
Solution solveSerial(const SearchCtx& ctx, Solution best,
                     const util::Stopwatch& clock) {
  const MilpOptions& opts = ctx.opts;
  const std::size_t n = ctx.work.numVars();
  IncrementalSimplex lpSolver(ctx.work, opts.lp);

  std::vector<NodeRec> stack;
  stack.push_back(NodeRec{});

  std::vector<double> lb(n), ub(n);
  bool exploredAll = true;

  while (!stack.empty()) {
    if (clock.seconds() > opts.timeLimitSeconds ||
        best.branchNodes >= opts.maxNodes) {
      exploredAll = false;
      break;
    }
    NodeRec node = std::move(stack.back());
    stack.pop_back();
    ++best.branchNodes;

    if (best.feasible() &&
        node.parentBound >= best.objective - opts.absGapTol) {
      ++best.prunedNodes;
      continue;  // pruned by bound
    }

    const NodeOutcome outcome = expandNode(
        ctx, lpSolver, node, lb, ub, opts.timeLimitSeconds - clock.seconds(),
        /*useLpCutoff=*/false, best.simplexIterations,
        [&](NodeRec child) { stack.push_back(std::move(child)); },
        [&]() { return std::pair<bool, double>{best.feasible(), best.objective}; },
        [&](double obj, std::vector<double> x) {
          if (obj < best.objective - 1e-12) {
            best.values = std::move(x);
            best.objective = obj;
            best.status = SolveStatus::Feasible;
            obs::instant("incumbent", "milp", obs::traceArg("objective", obj));
            if (opts.onIncumbent) opts.onIncumbent(best.objective, best.values);
          }
        });
    if (outcome == NodeOutcome::LpLimit) exploredAll = false;
  }

  best.wallSeconds = clock.seconds();
  best.dualPivots = lpSolver.dualPivots();
  best.coldSolves = lpSolver.coldSolves();
  for (const NodeRec& rec : stack) {
    best.bestBound = best.bestBound == -kInf
                         ? rec.parentBound
                         : std::min(best.bestBound, rec.parentBound);
  }
  if (exploredAll && stack.empty()) {
    best.status = best.feasible() ? SolveStatus::Optimal
                                  : SolveStatus::Infeasible;
    if (best.feasible()) best.bestBound = best.objective;
  } else if (best.feasible()) {
    best.status = SolveStatus::Feasible;
  } else {
    best.status = SolveStatus::NoSolution;
  }
  return best;
}

// --- parallel branch & bound -------------------------------------------------

/// Incumbent record shared by all workers. Updates (and the user's
/// onIncumbent callback) are serialized under `mu`; the objective is
/// additionally mirrored into a relaxed atomic so the per-node pruning
/// test costs one uncontended load. A stale snapshot only ever *delays* a
/// prune by one node — it never prunes incorrectly, because the snapshot
/// moves monotonically downward.
struct SharedIncumbent {
  std::mutex mu;
  std::vector<double> values;
  double objective = kInf;
  bool feasible = false;
  std::atomic<double> snapshot{kInf};
};

struct WorkerStats {
  std::int64_t simplexIterations = 0;
  std::int64_t nodesExpanded = 0;
  std::int64_t prunedNodes = 0;
  std::int64_t steals = 0;
  std::int64_t dualPivots = 0;
  std::int64_t coldSolves = 0;
};

struct ParallelState {
  explicit ParallelState(int threads) : pools(threads) {}

  /// One owner deque per worker: the owner dives LIFO (preserving the
  /// serial dive-first order inside its subtree), idle workers steal the
  /// oldest — shallowest — node from a victim, which spreads the search
  /// across distant subtrees instead of racing down one dive path.
  std::vector<util::WorkDeque<NodeRec>> pools;
  SharedIncumbent inc;
  /// Nodes pushed but not yet fully expanded (counts in-flight nodes, so
  /// zero really means "tree exhausted", not "queues momentarily empty").
  std::atomic<std::int64_t> openNodes{0};
  std::atomic<std::int64_t> branchNodes{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> exploredAll{true};
  std::mutex idleMu;
  std::condition_variable idleCv;

  /// Workers currently holding stolen work, and the cap on them.
  /// Speculative exploration is only free when it runs on otherwise-idle
  /// hardware: with more workers than cores they just time-slice the
  /// dives and inflate the tree (expansions that better incumbents would
  /// have pruned). So at most (cores - 1) workers hold stolen subtrees at
  /// a time — the rest idle until a token frees up. The cap is soft (a
  /// race can overshoot by one briefly), which is harmless.
  std::atomic<int> explorers{0};
  int explorerCap = 1;
};

void workerMain(const SearchCtx& ctx, ParallelState& st,
                const util::Stopwatch& clock, int wid, WorkerStats& stats) {
  obs::setThreadName("bnb-worker-" + std::to_string(wid));
  obs::Span workerSpan("bnb_worker", "milp");
  // Each worker owns its incremental LP: the dual warm start is only
  // valid within one thread's sequence of bound changes.
  IncrementalSimplex lpSolver(ctx.work, ctx.opts.lp);
  const std::size_t n = ctx.work.numVars();
  std::vector<double> lb(n), ub(n);
  util::WorkDeque<NodeRec>& mine = st.pools[wid];
  const int nw = static_cast<int>(st.pools.size());

  const auto nodeScore = [](const NodeRec& rec) { return rec.parentBound; };
  // True while this worker's open subtree came from a steal; it holds one
  // of the explorer tokens until that subtree is exhausted.
  bool holdingToken = false;
  const auto nextNode = [&]() -> std::optional<NodeRec> {
    if (auto node = mine.popBottom()) return node;
    if (holdingToken) {
      // Stolen subtree exhausted: hand the token to the next explorer.
      holdingToken = false;
      st.explorers.fetch_sub(1, std::memory_order_relaxed);
    }
    // Incumbent-gated stealing: until a first incumbent exists there is
    // nothing to prune or cut off with, so a stolen dive only duplicates
    // cold LP work and — on a loaded machine — starves the primary dive
    // of the cycles it needs to reach feasibility at all. Let the worker
    // holding the root dive exactly like the serial solver; everyone
    // else waits for the first incumbent before spreading out.
    if (st.inc.snapshot.load(std::memory_order_relaxed) >= kInf) {
      return std::nullopt;
    }
    if (st.explorers.fetch_add(1, std::memory_order_relaxed) >=
        st.explorerCap) {
      st.explorers.fetch_sub(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    // Steal the globally most promising open node (lowest LP bound): the
    // thief restarts a dive from the subtree most likely to hold the
    // optimum. This makes idle workers best-first explorers while owners
    // stay depth-first divers — the portfolio that finds strong
    // incumbents early and keeps the proof tree small.
    int victim = -1;
    double best = kInf;
    for (int k = 1; k < nw; ++k) {
      const int v = (wid + k) % nw;
      if (const auto s = st.pools[v].peekBestScore(nodeScore);
          s.has_value() && *s < best) {
        best = *s;
        victim = v;
      }
    }
    if (victim >= 0) {
      if (auto node = st.pools[victim].stealBest(nodeScore)) {
        holdingToken = true;
        ++stats.steals;
        return node;
      }
      // Lost the race to another thief: fall back to any available node.
      for (int k = 1; k < nw; ++k) {
        if (auto node = st.pools[(wid + k) % nw].stealTop()) {
          holdingToken = true;
          ++stats.steals;
          return node;
        }
      }
    }
    st.explorers.fetch_sub(1, std::memory_order_relaxed);
    return std::nullopt;
  };

  while (!st.stop.load(std::memory_order_relaxed)) {
    if (clock.seconds() > ctx.opts.timeLimitSeconds ||
        st.branchNodes.load(std::memory_order_relaxed) >= ctx.opts.maxNodes) {
      st.exploredAll.store(false, std::memory_order_relaxed);
      st.stop.store(true, std::memory_order_relaxed);
      st.idleCv.notify_all();
      break;
    }
    std::optional<NodeRec> node = nextNode();
    if (!node.has_value()) {
      if (st.openNodes.load(std::memory_order_acquire) == 0) break;
      // Brief timed wait instead of a bare condition: a missed notify can
      // only cost one tick, which keeps termination reasoning trivial.
      std::unique_lock<std::mutex> lock(st.idleMu);
      st.idleCv.wait_for(lock, std::chrono::milliseconds(1));
      continue;
    }
    st.branchNodes.fetch_add(1, std::memory_order_relaxed);
    ++stats.nodesExpanded;

    const double bestObj = st.inc.snapshot.load(std::memory_order_relaxed);
    const bool pruned =
        bestObj < kInf && node->parentBound >= bestObj - ctx.opts.absGapTol;
    if (pruned) ++stats.prunedNodes;
    if (!pruned) {
      const NodeOutcome outcome = expandNode(
          ctx, lpSolver, *node, lb, ub,
          ctx.opts.timeLimitSeconds - clock.seconds(),
          /*useLpCutoff=*/true, stats.simplexIterations,
          [&](NodeRec child) {
            st.openNodes.fetch_add(1, std::memory_order_release);
            mine.pushBottom(std::move(child));
            st.idleCv.notify_one();
          },
          [&]() {
            const double obj =
                st.inc.snapshot.load(std::memory_order_relaxed);
            return std::pair<bool, double>{obj < kInf, obj};
          },
          [&](double obj, std::vector<double> x) {
            std::lock_guard<std::mutex> lock(st.inc.mu);
            if (obj < st.inc.objective - 1e-12) {
              st.inc.values = std::move(x);
              st.inc.objective = obj;
              st.inc.feasible = true;
              st.inc.snapshot.store(obj, std::memory_order_relaxed);
              obs::instant("incumbent", "milp",
                           obs::traceArg("objective", obj));
              if (ctx.opts.onIncumbent) {
                ctx.opts.onIncumbent(obj, st.inc.values);
              }
            }
          });
      if (outcome == NodeOutcome::LpLimit) {
        st.exploredAll.store(false, std::memory_order_relaxed);
      }
    }
    // The node (and its just-pushed children) are accounted before this
    // decrement, so openNodes can only reach zero when the tree is done.
    if (st.openNodes.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      st.idleCv.notify_all();
    }
  }

  stats.dualPivots = lpSolver.dualPivots();
  stats.coldSolves = lpSolver.coldSolves();
  workerSpan.endArgs(obs::traceArg(
      "nodesExpanded", static_cast<double>(stats.nodesExpanded)));
}

Solution solveParallel(const SearchCtx& ctx, Solution best,
                       const util::Stopwatch& clock, int threads) {
  ParallelState st(threads);
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  st.explorerCap = std::max(1, hw - 1);
  if (best.feasible()) {
    st.inc.values = best.values;
    st.inc.objective = best.objective;
    st.inc.feasible = true;
    st.inc.snapshot.store(best.objective, std::memory_order_relaxed);
  }
  st.openNodes.store(1, std::memory_order_relaxed);
  st.pools[0].pushBottom(NodeRec{});

  std::vector<WorkerStats> stats(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&ctx, &st, &clock, w, &stats] {
      workerMain(ctx, st, clock, w, stats[w]);
    });
  }
  for (std::thread& t : workers) t.join();

  best.branchNodes += st.branchNodes.load(std::memory_order_relaxed);
  for (const WorkerStats& ws : stats) {
    best.simplexIterations += ws.simplexIterations;
    best.prunedNodes += ws.prunedNodes;
    best.steals += ws.steals;
    best.dualPivots += ws.dualPivots;
    best.coldSolves += ws.coldSolves;
  }
  if (st.inc.feasible) {
    best.values = std::move(st.inc.values);
    best.objective = st.inc.objective;
    best.status = SolveStatus::Feasible;
  }

  bool anyLeft = false;
  for (util::WorkDeque<NodeRec>& pool : st.pools) {
    for (const NodeRec& rec : pool.drain()) {
      anyLeft = true;
      best.bestBound = best.bestBound == -kInf
                           ? rec.parentBound
                           : std::min(best.bestBound, rec.parentBound);
    }
  }
  best.wallSeconds = clock.seconds();
  if (st.exploredAll.load(std::memory_order_relaxed) && !anyLeft) {
    best.status = best.feasible() ? SolveStatus::Optimal
                                  : SolveStatus::Infeasible;
    if (best.feasible()) best.bestBound = best.objective;
  } else if (best.feasible()) {
    best.status = SolveStatus::Feasible;
  } else {
    best.status = SolveStatus::NoSolution;
  }
  return best;
}

}  // namespace

MilpSolver::MilpSolver(const Model& model, MilpOptions opts)
    : model_(model), opts_(std::move(opts)) {}

void MilpSolver::addSos1Group(std::vector<Var> vars,
                              std::vector<double> positions) {
  sosVars_.push_back(std::move(vars));
  sosPos_.push_back(std::move(positions));
}

void MilpSolver::setInitialIncumbent(std::vector<double> x) {
  initialIncumbent_ = std::move(x);
}

Solution MilpSolver::solve() {
  util::Stopwatch clock;
  obs::Span solveSpan("milp_solve", "milp");

  // Process-wide solver telemetry; one pass per solve on exit.
  const auto recordMetrics = [](const Solution& s) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("lamp_milp_solves_total", "MILP solves completed").inc();
    reg.counter("lamp_milp_nodes_explored_total", "branch & bound nodes")
        .inc(static_cast<std::uint64_t>(s.branchNodes));
    reg.counter("lamp_milp_nodes_pruned_total", "nodes fathomed by bound")
        .inc(static_cast<std::uint64_t>(s.prunedNodes));
    reg.counter("lamp_milp_steals_total", "B&B work steals")
        .inc(static_cast<std::uint64_t>(s.steals));
    reg.histogram("lamp_milp_solve_seconds",
                  obs::Histogram::exponentialBounds(0.001, 4.0, 12),
                  "MILP wall time per solve")
        .observe(s.wallSeconds);
    return s;
  };

  Solution best;
  best.status = SolveStatus::NoSolution;
  best.objective = kInf;
  best.bestBound = -kInf;

  if (!initialIncumbent_.empty() &&
      model_.checkFeasible(initialIncumbent_, 1e-5).empty()) {
    best.values = initialIncumbent_;
    best.objective = model_.objective().evaluate(initialIncumbent_);
    best.status = SolveStatus::Feasible;
    obs::instant("incumbent", "milp",
                 obs::traceArg("objective", best.objective));
    if (opts_.onIncumbent) opts_.onIncumbent(best.objective, best.values);
  }

  // Shape-preserving presolve: same variables, tighter bounds, fewer
  // rows. Every integer-feasible point (incl. the incumbent) survives.
  PresolveStats preStats;
  const Model presolved =
      opts_.presolve ? presolve(model_, &preStats) : Model();
  const Model& work = opts_.presolve ? presolved : model_;
  if (preStats.infeasible) {
    best.status = best.feasible() ? SolveStatus::Optimal
                                  : SolveStatus::Infeasible;
    best.wallSeconds = clock.seconds();
    return recordMetrics(best);
  }

  const std::size_t n = work.numVars();
  SearchCtx ctx{model_, work,  opts_, sosVars_,
                sosPos_, {},    {},    {}};
  ctx.rootLb.resize(n);
  ctx.rootUb.resize(n);
  for (Var v = 0; v < static_cast<Var>(n); ++v) {
    ctx.rootLb[v] = work.lowerBound(v);
    ctx.rootUb[v] = work.upperBound(v);
  }

  // Map each variable to its SOS group, if any.
  ctx.sosOf.assign(n, -1);
  for (std::size_t g = 0; g < sosVars_.size(); ++g) {
    for (const Var v : sosVars_[g]) ctx.sosOf[v] = static_cast<std::int32_t>(g);
  }

  const int threads = resolveThreads(opts_.threads);
  Solution sol = threads == 1
                     ? solveSerial(ctx, std::move(best), clock)
                     : solveParallel(ctx, std::move(best), clock, threads);
  solveSpan.endArgs(
      obs::traceArg("branchNodes", static_cast<double>(sol.branchNodes)));
  return recordMetrics(sol);
}

}  // namespace lamp::lp
