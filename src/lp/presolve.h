#ifndef LAMP_LP_PRESOLVE_H
#define LAMP_LP_PRESOLVE_H

/// \file presolve.h
/// Shape-preserving MILP presolve: iterated bound propagation (with
/// integral rounding on integer variables), redundant-row elimination and
/// singleton-row absorption. The variable set and indexing are kept
/// intact, so branch & bound can run on the reduced model with the same
/// branching decisions and the same incumbent vectors.
///
/// Soundness for B&B: every *integer-feasible* point of the original
/// model satisfies the tightened bounds (propagation only derives implied
/// bounds; rounding uses integrality), and a row redundant over the root
/// box stays redundant over every child box (children only shrink
/// bounds). LP relaxation values may improve — that is the point.

#include "lp/model.h"

namespace lamp::lp {

struct PresolveStats {
  int boundsTightened = 0;
  int rowsDropped = 0;
  int singletonRows = 0;
  int passes = 0;
  bool infeasible = false;
};

/// Returns the reduced model (same variables, possibly tighter bounds,
/// possibly fewer rows). When stats->infeasible is set, the model admits
/// no solution and the returned model is the partially reduced one.
Model presolve(const Model& model, PresolveStats* stats = nullptr,
               int maxPasses = 6);

}  // namespace lamp::lp

#endif  // LAMP_LP_PRESOLVE_H
