#ifndef LAMP_LP_MILP_H
#define LAMP_LP_MILP_H

/// \file milp.h
/// Branch & bound MILP solver on top of lp::SimplexSolver. Plays the role
/// CPLEX played in the paper's experiments: it is run under a wall-clock
/// cap and returns the best incumbent found (Solution::status == Feasible)
/// when the cap expires before the optimality proof completes.
///
/// Features used by the scheduler:
///  - binary/integer branching (most-fractional),
///  - SOS1 group branching (the one-hot cycle-assignment rows s_{v,t},
///    split on the time axis — far stronger than 0/1 branching),
///  - warm-start incumbents (the SDC schedule mapped to a feasible point),
///  - deterministic node selection (depth-first diving with best-bound
///    pruning),
///  - parallel tree search (MilpOptions::threads): a shared pool of open
///    nodes serviced by worker threads, each owning its own
///    IncrementalSimplex so warm starts stay thread-local. threads == 1
///    reproduces the serial solver node for node; with more threads the
///    returned objective is unchanged on any instance solved to
///    optimality (the tree is explored exhaustively up to valid bound
///    pruning), but node counts and which optimal vertex is returned may
///    differ. See DESIGN.md "Concurrency model".

#include <functional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace lamp::lp {

struct MilpOptions {
  double timeLimitSeconds = 60.0;
  std::int64_t maxNodes = 1'000'000;
  double intTol = 1e-6;      ///< integrality tolerance
  double absGapTol = 1e-6;   ///< stop when bound within this of incumbent
  /// Run shape-preserving presolve (bound propagation, redundant-row
  /// elimination) before branch & bound.
  bool presolve = true;
  /// Branch & bound worker threads. 0 = auto (hardware concurrency capped
  /// at 8); 1 = the exact serial solver.
  int threads = 0;
  SimplexOptions lp;
  /// Optional per-incumbent callback (objective, values). Invocations are
  /// serialized (under the incumbent lock) even with threads > 1; the
  /// callback must not re-enter the solver.
  std::function<void(double, const std::vector<double>&)> onIncumbent;
};

class MilpSolver {
 public:
  explicit MilpSolver(const Model& model, MilpOptions opts = {});

  /// Declares that the given binary variables form a one-hot group
  /// (sum == 1 enforced by a model constraint). Used for branching only;
  /// groups must be pairwise disjoint. `positions` gives each member's
  /// ordinal on the branching axis (e.g. the cycle index).
  void addSos1Group(std::vector<Var> vars, std::vector<double> positions);

  /// Supplies a known-feasible assignment used as the initial incumbent.
  /// Ignored (with a diagnostic in Solution) if it fails checkFeasible.
  void setInitialIncumbent(std::vector<double> x);

  Solution solve();

 private:
  const Model& model_;
  MilpOptions opts_;
  std::vector<std::vector<Var>> sosVars_;
  std::vector<std::vector<double>> sosPos_;
  std::vector<double> initialIncumbent_;
};

}  // namespace lamp::lp

#endif  // LAMP_LP_MILP_H
