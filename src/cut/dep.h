#ifndef LAMP_CUT_DEP_H
#define LAMP_CUT_DEP_H

/// \file dep.h
/// Bit-level dependence tracking on the word-level CDFG: the DEP functions
/// of Section 3.1. DEP(v[j]) lists the (operand index, operand bit) pairs
/// output bit j depends on, per operation class:
///  - bitwise ops: one bit of each operand,
///  - shifts / bit rearrangement: a single routed bit,
///  - arithmetic: all bits at or below j of both operands,
///  - comparisons: every operand bit, except recognized sign tests
///    (x < 0, x >= 0 signed) which collapse to the sign bit,
///  - mux: the select bit plus bit j of both data operands.
/// Bits of Const operands never appear (constants fold into LUT masks).

#include <cstdint>
#include <vector>

#include "ir/graph.h"
#include "ir/simplify.h"

namespace lamp::cut {

/// One bit-level dependence of an output bit.
struct DepBit {
  std::uint16_t operandIndex = 0;  ///< which operand of the node
  std::uint16_t bit = 0;           ///< bit of that operand
};

/// Computes DEP(node[bit]). `g` is needed to inspect operand widths and
/// recognize comparisons against constants. Const operands are omitted.
/// Input/Output/Const/BlackBox nodes have no DEP (empty result).
///
/// `facts` (optional, computed on this graph) extends the Const rule to
/// analysis-known operand bits: a bit the dataflow engine proves
/// constant hard-wires into the LUT truth table exactly like a Const
/// operand, so it leaves the DEP set. Loop-carried operand bits only
/// qualify when known ZERO — the register reset (0) must agree with the
/// proven value.
std::vector<DepBit> depBits(const ir::Graph& g, ir::NodeId node,
                            std::uint16_t bit,
                            const ir::BitFacts* facts = nullptr);

/// True when this node kind routes bits without logic (Shift class):
/// a single-dependence output bit of such a node is a wire, not a LUT.
bool isWireClass(ir::OpKind kind);

/// True when output bit `bit` of this node is exactly equal to its single
/// dependence bit — i.e. the operation is neutral there (AND with a 1
/// constant bit, OR/XOR with a 0 constant bit, a routed Shift-class bit).
/// Such bits cost no LUT even inside Bitwise nodes. `facts` extends the
/// constant-operand rule to analysis-known neutral bits.
bool isIdentityBit(const ir::Graph& g, ir::NodeId node, std::uint16_t bit,
                   const ir::BitFacts* facts = nullptr);

/// True if the comparison node is a recognized sign test whose result
/// depends only on the top bit of operand 0 (e.g. signed x < 0, x >= 0).
bool isSignTest(const ir::Graph& g, ir::NodeId node);

/// True when at least one output bit of `node` depends on operand
/// `operandIndex`. Dominating constants (x & 0, x | ~0) and shifted-out
/// ranges can make an operand entirely irrelevant to the cone. With
/// `facts`, only demanded output bits are consulted and known operand
/// bits are excluded, mirroring the masked enumeration — pass the same
/// facts the cut database was built with.
bool operandRelevant(const ir::Graph& g, ir::NodeId node,
                     std::uint16_t operandIndex,
                     const ir::BitFacts* facts = nullptr);

}  // namespace lamp::cut

#endif  // LAMP_CUT_DEP_H
