#include "cut/dep.h"

namespace lamp::cut {

using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpClass;
using ir::OpKind;

bool isWireClass(OpKind kind) { return ir::opClass(kind) == OpClass::Shift; }

namespace {

/// If exactly one operand of a 2-input bitwise op is constant, returns
/// its index; -1 otherwise.
int constOperand(const Graph& g, const Node& n) {
  const bool c0 = g.node(n.operands[0].src).kind == OpKind::Const;
  const bool c1 = g.node(n.operands[1].src).kind == OpKind::Const;
  if (c0 == c1) return -1;
  return c0 ? 0 : 1;
}

bool constBit(const Graph& g, const Node& n, int opIdx, std::uint16_t bit) {
  return ((g.node(n.operands[opIdx].src).constValue >> bit) & 1) != 0;
}

/// Whether the bit an operand reference reads is analysis-known, and
/// its value. Loop-carried reads join with the register reset, so only
/// known-0 producer bits stay known through a dist > 0 edge.
bool knownOperandBit(const ir::BitFacts* facts, const ir::Edge& e,
                     std::uint16_t bit, bool* value) {
  if (facts == nullptr || e.src >= facts->knownMask.size()) return false;
  if (((facts->knownMask[e.src] >> bit) & 1) == 0) return false;
  const bool v = ((facts->knownVal[e.src] >> bit) & 1) != 0;
  if (e.dist > 0 && v) return false;  // reset 0 disagrees with a known 1
  if (value != nullptr) *value = e.dist > 0 ? false : v;
  return true;
}

}  // namespace

bool isIdentityBit(const Graph& g, ir::NodeId node, std::uint16_t bit,
                   const ir::BitFacts* facts) {
  const Node& n = g.node(node);
  if (isWireClass(n.kind)) return true;
  if (n.kind != OpKind::And && n.kind != OpKind::Or && n.kind != OpKind::Xor) {
    return false;
  }
  const auto neutral = [&](bool one) {
    switch (n.kind) {
      case OpKind::And: return one;    // x & 1 = x
      case OpKind::Or: return !one;    // x | 0 = x
      case OpKind::Xor: return !one;   // x ^ 0 = x (x ^ 1 needs a NOT LUT)
      default: return false;
    }
  };
  const int ci = constOperand(g, n);
  if (ci >= 0 && neutral(constBit(g, n, ci, bit))) return true;
  // Analysis-known neutral bits make the other operand's bit a wire too.
  for (int i = 0; i < 2; ++i) {
    bool v = false;
    if (knownOperandBit(facts, n.operands[1 - i], bit, &v) && neutral(v)) {
      return true;
    }
  }
  return false;
}

bool isSignTest(const Graph& g, NodeId node) {
  const Node& n = g.node(node);
  if (!n.isSigned) return false;
  if (n.kind != OpKind::Lt && n.kind != OpKind::Ge) return false;
  const Node& rhs = g.node(n.operands[1].src);
  return rhs.kind == OpKind::Const && rhs.constValue == 0;
}

bool operandRelevant(const Graph& g, ir::NodeId node,
                     std::uint16_t operandIndex, const ir::BitFacts* facts) {
  const Node& n = g.node(node);
  if (!ir::isLutMappable(n.kind)) return true;  // ports always matter
  std::uint64_t costed = ~0ull;
  if (facts != nullptr && facts->compatibleWith(g)) {
    costed = facts->demandedOf(g, node) & ~facts->knownMask[node];
  }
  for (std::uint16_t j = 0; j < n.width; ++j) {
    if (j < 64 && ((costed >> j) & 1) == 0) continue;
    for (const DepBit& d : depBits(g, node, j, facts)) {
      if (d.operandIndex == operandIndex) return true;
    }
  }
  return false;
}

std::vector<DepBit> depBits(const Graph& g, NodeId node, std::uint16_t bit,
                            const ir::BitFacts* facts) {
  const Node& n = g.node(node);
  std::vector<DepBit> deps;
  const auto opIsConst = [&](std::uint16_t i) {
    return g.node(n.operands[i].src).kind == OpKind::Const;
  };
  const auto push = [&](std::uint16_t opIdx, int b) {
    const Node& src = g.node(n.operands[opIdx].src);
    if (b < 0 || b >= src.width) return;  // shifted-in constant bit
    if (opIsConst(opIdx)) return;         // constants fold into the LUT
    if (knownOperandBit(facts, n.operands[opIdx],
                        static_cast<std::uint16_t>(b), nullptr)) {
      return;  // analysis-known bits hard-wire into the LUT mask
    }
    deps.push_back(DepBit{opIdx, static_cast<std::uint16_t>(b)});
  };

  switch (n.kind) {
    case OpKind::Input:
    case OpKind::Output:
    case OpKind::Const:
    case OpKind::Mul:
    case OpKind::Load:
    case OpKind::Store:
      break;  // no DEP: sources, sinks, and black boxes

    case OpKind::And:
    case OpKind::Or: {
      // A dominating constant bit (0 for AND, 1 for OR) makes the output
      // bit constant: no dependences at all.
      const int ci = constOperand(g, n);
      if (ci >= 0) {
        const bool one = constBit(g, n, ci, bit);
        if ((n.kind == OpKind::And && !one) || (n.kind == OpKind::Or && one)) {
          break;
        }
      }
      push(0, bit);
      push(1, bit);
      break;
    }
    case OpKind::Xor:
      push(0, bit);
      push(1, bit);
      break;
    case OpKind::Not:
      push(0, bit);
      break;

    case OpKind::Shl:
      push(0, bit - n.attr0);
      break;
    case OpKind::Shr:
      push(0, bit + n.attr0);
      break;
    case OpKind::AShr: {
      const int src = bit + n.attr0;
      push(0, src >= n.width ? n.width - 1 : src);
      break;
    }
    case OpKind::Slice:
      push(0, bit + n.attr0);
      break;
    case OpKind::Concat: {
      const std::uint16_t loWidth = g.node(n.operands[1].src).width;
      if (bit < loWidth) {
        push(1, bit);
      } else {
        push(0, bit - loWidth);
      }
      break;
    }
    case OpKind::ZExt:
      push(0, bit);  // push() drops bits beyond the source width
      break;
    case OpKind::SExt: {
      const std::uint16_t w = g.node(n.operands[0].src).width;
      push(0, bit >= w ? w - 1 : bit);
      break;
    }

    case OpKind::Add:
    case OpKind::Sub:
      for (int b = bit; b >= 0; --b) {
        push(0, b);
        push(1, b);
      }
      break;

    case OpKind::Lt:
    case OpKind::Ge:
      if (isSignTest(g, node)) {
        push(0, g.node(n.operands[0].src).width - 1);
        break;
      }
      [[fallthrough]];
    case OpKind::Eq:
    case OpKind::Ne:
    case OpKind::Le:
    case OpKind::Gt:
      for (int b = g.node(n.operands[0].src).width - 1; b >= 0; --b) {
        push(0, b);
        push(1, b);
      }
      break;

    case OpKind::Mux: {
      // A known select hard-wires into the LUT mask and drops the
      // never-taken arm entirely (matching the backward demanded pass,
      // which sends no demand into that arm).
      bool sel = false;
      if (knownOperandBit(facts, n.operands[0], 0, &sel)) {
        push(sel ? 1 : 2, bit);
        break;
      }
      push(0, 0);  // select
      push(1, bit);
      push(2, bit);
      break;
    }
  }
  return deps;
}

}  // namespace lamp::cut
