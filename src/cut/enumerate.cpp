/// \file enumerate.cpp
/// Word-level cut enumeration (Algorithm 1), rebuilt around
/// performance-first data structures:
///
///  - Packed signatures: each candidate node first collects the universe
///    of boundary bits any of its cuts could reference (direct fanin
///    bits plus every support bit of every absorbable fanin cut), sorted
///    by BitKey. Supports then live as fixed-width bitsets over that
///    universe, so the per-bit hot loop of compose() is word-parallel
///    OR + popcount instead of pairwise sorted-vector merges, and the
///    per-(operand, cut, bit) signatures are translated into universe
///    indices exactly once per node instead of once per candidate.
///  - Arena allocation: signature tables come from per-worker
///    util::Arena instances that are bulk-reset per node, so the steady
///    state allocates nothing on the candidate path.
///  - Memoization: each node's cut set carries a version; recomputation
///    is keyed on (dist-0 fanin versions, facts digest). Worklist
///    re-visits (back-edge consumers re-pushed when a producer changed)
///    hit the memo and recompute nothing.
///  - Parallel waves: cut sets depend only on dist-0 fanins (registers
///    are cone boundaries), so nodes of equal topological level are
///    independent and run concurrently on util::ThreadPool. Every node
///    writes only its own set, so output is bit-identical for any
///    thread count.
///
/// The default configuration (DepthAware strategy, serial) reproduces
/// the historical enumeration bit for bit.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <sstream>

#include "cut/cut.h"
#include "cut/dep.h"
#include "ir/passes.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/arena.h"
#include "util/thread_pool.h"

namespace lamp::cut {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpClass;
using ir::OpKind;

std::string_view cutStrategyName(CutStrategy s) {
  switch (s) {
    case CutStrategy::DepthAware: return "depth";
    case CutStrategy::AreaMin: return "area";
    case CutStrategy::SupportMin: return "support";
    case CutStrategy::Balanced: return "balanced";
  }
  return "?";
}

bool parseCutStrategy(std::string_view token, CutStrategy& out) {
  for (const CutStrategy s : allCutStrategies()) {
    if (token == cutStrategyName(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

const std::array<CutStrategy, 4>& allCutStrategies() {
  static const std::array<CutStrategy, 4> all = {
      CutStrategy::DepthAware, CutStrategy::AreaMin, CutStrategy::SupportMin,
      CutStrategy::Balanced};
  return all;
}

namespace {

/// Minimum candidate count before the packed-signature path is worth
/// its per-node setup; below it the merge path wins (see candidates()).
constexpr std::size_t kPackedMinCandidates = 64;

/// Sorted-set union dst ∪= add, merging into `scratch` (a reusable buffer
/// that keeps its capacity across calls). Abandons the merge and returns
/// false the moment the union exceeds `cap` elements — a doomed bit need
/// not finish merging. `cap < 0` disables the limit.
bool unionIntoCapped(SupportSet& dst, const SupportSet& add,
                     SupportSet& scratch, int cap) {
  if (add.empty()) {
    return cap < 0 || static_cast<int>(dst.size()) <= cap;
  }
  if (dst.empty()) {
    dst = add;
    return cap < 0 || static_cast<int>(dst.size()) <= cap;
  }
  scratch.clear();
  const std::size_t limit =
      cap < 0 ? dst.size() + add.size() : static_cast<std::size_t>(cap);
  auto a = dst.begin();
  auto b = add.begin();
  while (a != dst.end() || b != add.end()) {
    BitKey next;
    if (b == add.end() || (a != dst.end() && *a < *b)) {
      next = *a++;
    } else {
      if (a != dst.end() && *a == *b) ++a;
      next = *b++;
    }
    if (scratch.size() >= limit && cap >= 0) return false;  // early exit
    scratch.push_back(next);
  }
  dst.swap(scratch);
  return true;
}

void insertSorted(std::vector<CutElement>& v, CutElement e) {
  const auto it = std::lower_bound(v.begin(), v.end(), e);
  if (it == v.end() || *it != e) v.insert(it, e);
}

void insertSorted(std::vector<NodeId>& v, NodeId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

/// LUT cost when a wide arithmetic node is implemented on a carry chain:
/// one LUT per operand bit (adders, subtractors and comparators all
/// consume a LUT + CARRY mux per bit on Xilinx-style fabrics).
int carryLutCost(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (n.kind == OpKind::Add || n.kind == OpKind::Sub) return n.width;
  return g.node(n.operands[0].src).width;  // comparisons
}

Cut makeCarryCut(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  Cut cut;
  cut.kind = CutKind::Carry;
  cut.isUnit = true;
  cut.lutCost = carryLutCost(g, id);
  cut.coneNodes = {id};
  for (const Edge& e : n.operands) {
    if (g.node(e.src).kind == OpKind::Const) continue;
    insertSorted(cut.elements, CutElement{e.src, e.dist});
  }
  return cut;
}

Cut makePortCut(const Graph& g, NodeId id, CutKind kind) {
  const Node& n = g.node(id);
  Cut cut;
  cut.kind = kind;
  cut.isUnit = true;
  cut.lutCost = 0;
  for (const Edge& e : n.operands) {
    if (g.node(e.src).kind == OpKind::Const) continue;
    insertSorted(cut.elements, CutElement{e.src, e.dist});
  }
  return cut;
}

/// 64-bit fingerprint of one boundary element; the OR over a cut's
/// elements gives a Bloom-style signature whose word test
/// (a & ~b) == 0 is a necessary condition for "a's elements are a
/// subset of b's" — a one-word reject before the exact check.
std::uint64_t elementFingerprint(const CutElement& e) {
  const std::uint64_t h =
      (static_cast<std::uint64_t>(e.node) * 0x9E3779B97F4A7C15ull) ^
      (static_cast<std::uint64_t>(e.dist) * 0xC2B2AE3D27D4EB4Full);
  return 1ull << (h >> 58);
}

std::uint64_t cutFingerprint(const Cut& c) {
  std::uint64_t fp = 0;
  for (const CutElement& e : c.elements) fp |= elementFingerprint(e);
  return fp;
}

/// Strict weak order applied by the priority stage before the cap.
/// DepthAware reproduces the historical ranking bit for bit.
bool strategyBefore(CutStrategy s, const Cut& a, const Cut& b) {
  switch (s) {
    case CutStrategy::DepthAware:
      if (a.coneNodes.size() != b.coneNodes.size()) {
        return a.coneNodes.size() > b.coneNodes.size();
      }
      if (a.lutCost != b.lutCost) return a.lutCost < b.lutCost;
      return a.elements.size() < b.elements.size();
    case CutStrategy::AreaMin:
      if (a.lutCost != b.lutCost) return a.lutCost < b.lutCost;
      if (a.coneNodes.size() != b.coneNodes.size()) {
        return a.coneNodes.size() > b.coneNodes.size();
      }
      return a.elements.size() < b.elements.size();
    case CutStrategy::SupportMin:
      if (a.maxSupport != b.maxSupport) return a.maxSupport < b.maxSupport;
      if (a.elements.size() != b.elements.size()) {
        return a.elements.size() < b.elements.size();
      }
      if (a.lutCost != b.lutCost) return a.lutCost < b.lutCost;
      return a.coneNodes.size() > b.coneNodes.size();
    case CutStrategy::Balanced: {
      // Cost and boundary pressure balanced against absorbed depth.
      const long sa = 2L * a.lutCost + static_cast<long>(a.elements.size()) -
                      2L * static_cast<long>(a.coneNodes.size());
      const long sb = 2L * b.lutCost + static_cast<long>(b.elements.size()) -
                      2L * static_cast<long>(b.coneNodes.size());
      if (sa != sb) return sa < sb;
      if (a.lutCost != b.lutCost) return a.lutCost < b.lutCost;
      return a.coneNodes.size() > b.coneNodes.size();
    }
  }
  return false;
}

/// Per-operand expansion choice: index 0 == treat the fanin as a boundary
/// (its trivial cut); otherwise absorb the fanin through cut index-1.
struct SlotOptions {
  std::vector<const Cut*> cuts;  ///< cuts[0] == nullptr (boundary)
};

/// Per-worker scratch: one signature arena plus reusable buffers. All
/// vectors keep their capacity across nodes, so the steady state
/// allocates only when a node outgrows every earlier one.
struct Workspace {
  util::Arena arena;  ///< per-node signature tables, bulk-reset per node

  std::vector<BitKey> universe;        ///< sorted boundary-bit universe
  std::vector<std::uint32_t> elemOf;   ///< universe index -> element index
  std::vector<CutElement> elems;       ///< element universe, sorted
  std::vector<std::vector<DepBit>> deps;  ///< per costed output bit
  std::vector<bool> identity;          ///< per output bit identity flag
  std::vector<std::uint64_t> bitSigs;  ///< per-bit union signatures
  std::vector<std::uint8_t> wireFlags; ///< per-bit wire flag
  std::vector<int> supCount;           ///< per-bit support popcount
  std::vector<std::uint64_t> unionSig; ///< all-bits union signature
  std::vector<Cut> result;             ///< candidate accumulator

  // Per-node scratch sized to the operand count; kept here so their
  // heap capacity survives across nodes (a node allocates only when it
  // outgrows every earlier one).
  std::vector<SlotOptions> options;            ///< per slot: choices
  std::vector<std::size_t> slotOf;             ///< operand -> owning slot
  std::vector<std::vector<std::uint16_t>> refBits;  ///< per slot, sorted
  std::vector<std::vector<std::uint32_t>> refPos;   ///< operand bit -> index
  std::vector<std::array<std::uint64_t, 4>> slotMask;  ///< referenced bits
  std::vector<std::uint64_t*> sigOf;           ///< per slot signature table
  std::vector<std::uint8_t*> wireOf;           ///< per slot wire table
  std::vector<std::size_t> idx;                ///< mixed-radix counter
  std::vector<const Cut*> choices;             ///< per operand (merge path)
  SupportSet scratch;                          ///< merge buffer (merge path)

  void prepare(std::size_t p) {
    if (options.size() < p) {
      options.resize(p);
      slotOf.resize(p);
      refBits.resize(p);
      refPos.resize(p);
      slotMask.resize(p);
      sigOf.resize(p);
      wireOf.resize(p);
    }
    for (std::size_t i = 0; i < p; ++i) {
      options[i].cuts.clear();
      slotMask[i] = {};
      sigOf[i] = nullptr;
      wireOf[i] = nullptr;
    }
  }
};

struct Enumerator {
  const Graph& g;
  const CutEnumOptions& opts;
  /// Bit-level facts for masking, dropped when they do not index this
  /// graph (rebuilt stage graphs re-enumerate without facts).
  const ir::BitFacts* facts;
  std::uint64_t factsDigest = 0;
  std::vector<CutSet> cutsOf;

  /// Memoization state: version[v] bumps whenever cutsOf[v] changes;
  /// memoKey[v] hashes (facts digest, dist-0 fanin versions) at the
  /// last computation. A re-visit whose key matches skips recomputation
  /// entirely. Registers are cone boundaries, so dist > 0 fanins are
  /// deliberately NOT part of the key — their cut sets never influence
  /// this node's candidates.
  std::vector<std::uint64_t> version;
  std::vector<std::uint64_t> memoKey;

  std::atomic<std::size_t> visits{0};
  std::atomic<std::size_t> memoHits{0};
  std::atomic<std::size_t> computed{0};

  explicit Enumerator(const Graph& graph, const CutEnumOptions& options)
      : g(graph), opts(options),
        facts(options.facts != nullptr && options.facts->compatibleWith(graph)
                  ? options.facts
                  : nullptr),
        cutsOf(graph.size()), version(graph.size(), 0),
        memoKey(graph.size(), 0) {
    if (facts != nullptr) factsDigest = digestFacts(*facts);
  }

  static std::uint64_t digestFacts(const ir::BitFacts& f) {
    std::uint64_t h = 0xCBF29CE484222325ull;
    const auto mix = [&h](const std::vector<std::uint64_t>& v) {
      for (const std::uint64_t x : v) {
        h ^= x;
        h *= 0x100000001B3ull;
      }
    };
    mix(f.knownMask);
    mix(f.knownVal);
    mix(f.demanded);
    mix(f.live);
    mix(f.lo);
    mix(f.hi);
    return h | 1;  // never 0: 0 means "no facts"
  }

  /// Memo key of node v under the current fanin cut-set versions.
  std::uint64_t nodeKey(NodeId v) const {
    std::uint64_t h = 0xCBF29CE484222325ull ^ factsDigest;
    for (const Edge& e : g.node(v).operands) {
      if (e.dist != 0) continue;
      h ^= e.src;
      h *= 0x100000001B3ull;
      h ^= version[e.src];
      h *= 0x100000001B3ull;
    }
    return h | 1;  // never 0: 0 means "never computed"
  }

  // --- packed-signature candidate enumeration ------------------------------

  /// Builds every candidate cut of one LUT-mappable node from the
  /// current cut sets of its fanins. `unitOnly` restricts the expansion
  /// to the unit cut (the trivialCuts() path).
  void candidates(NodeId v, Workspace& ws, bool unitOnly) {
    const Node& n = g.node(v);
    const std::size_t p = n.operands.size();
    ws.result.clear();

    // Absorbable cuts per operand. Operands referencing the same
    // (node, dist) share one choice slot for consistency.
    ws.prepare(p);
    std::vector<SlotOptions>& options = ws.options;
    std::vector<std::size_t>& slotOf = ws.slotOf;
    for (std::size_t i = 0; i < p; ++i) {
      slotOf[i] = i;
      for (std::size_t h = 0; h < i; ++h) {
        if (n.operands[h].src == n.operands[i].src &&
            n.operands[h].dist == n.operands[i].dist) {
          slotOf[i] = h;
          break;
        }
      }
      if (slotOf[i] != i) continue;
      options[i].cuts.push_back(nullptr);  // boundary
      if (unitOnly) continue;
      const Edge& e = n.operands[i];
      if (e.dist != 0) continue;  // never expand through a register
      if (!ir::isLutMappable(g.node(e.src).kind)) continue;
      for (const Cut& c : cutsOf[e.src].cuts) {
        if (c.kind == CutKind::Lut) options[i].cuts.push_back(&c);
      }
    }

    // Costed bits: demanded by some observer and not analysis-known.
    // Undemanded bits need no logic at all; known bits hard-wire into
    // the LUT mask. Skipped bits keep empty supports (never a wire), so
    // they cost nothing and never constrain K.
    std::uint64_t costed = ~0ull;
    if (facts != nullptr) {
      costed = facts->demandedOf(g, v) & ~facts->knownMask[v];
    }
    // DEP sets and identity flags are per-node facts — computed once
    // here, not once per candidate.
    if (ws.deps.size() < n.width) ws.deps.resize(n.width);
    ws.identity.assign(n.width, false);
    for (std::uint16_t j = 0; j < n.width; ++j) {
      ws.deps[j].clear();
      if (j < 64 && ((costed >> j) & 1) == 0) continue;
      ws.deps[j] = depBits(g, v, j, facts);
      ws.identity[j] = isIdentityBit(g, v, j, facts);
    }

    // Hybrid dispatch: the packed-signature machinery pays a per-node
    // setup (universe sort + signature translation) that only amortizes
    // when the candidate space dwarfs it. Small cones take the direct
    // merge path instead — both paths produce identical cuts, so the
    // choice is invisible downstream (and deterministic: it depends only
    // on the graph). The first gate (candidate product) needs no DEP
    // walk, so the common small-cone case dispatches to the merge path
    // without touching the per-bit dependency sets at all.
    std::size_t cand = 1;
    for (std::size_t s = 0; s < p; ++s) {
      if (slotOf[s] != s) continue;
      if (cand < (std::size_t{1} << 20)) cand *= options[s].cuts.size();
    }
    if (cand < kPackedMinCandidates) {
      enumerateMerge(v, costed, ws);
      finishCandidates(v, ws);
      return;
    }

    // Referenced operand bits per slot, deduplicated into 256-bit masks
    // (BitKey bit indices are 8-bit): arith DEP sets reference low
    // operand bits from every higher output bit, so walking raw
    // (output bit, dep) pairs would touch the same operand bit O(width)
    // times.
    std::vector<std::array<std::uint64_t, 4>>& slotMask = ws.slotMask;
    for (std::size_t s = 0; s < p; ++s) slotMask[s] = {};
    for (std::uint16_t j = 0; j < n.width; ++j) {
      for (const DepBit& d : ws.deps[j]) {
        slotMask[slotOf[d.operandIndex]][(d.bit >> 6) & 3] |=
            1ull << (d.bit & 63);
      }
    }
    std::size_t tableEntries = 0;
    for (std::size_t s = 0; s < p; ++s) {
      if (slotOf[s] != s) continue;
      std::size_t uniqueBits = 0;
      for (const std::uint64_t m : slotMask[s]) uniqueBits += std::popcount(m);
      tableEntries += options[s].cuts.size() * uniqueBits;
    }
    if (cand < 2 * tableEntries) {
      enumerateMerge(v, costed, ws);
      finishCandidates(v, ws);
      return;
    }

    // Packed path from here on: materialize the sorted unique referenced
    // bits of each slot from its mask (ascending scan, so already
    // sorted).
    std::vector<std::vector<std::uint16_t>>& refBits = ws.refBits;
    std::vector<std::vector<std::uint32_t>>& refPos = ws.refPos;
    for (std::size_t s = 0; s < p; ++s) {
      refBits[s].clear();
      if (slotOf[s] != s) continue;
      for (std::size_t w = 0; w < 4; ++w) {
        std::uint64_t m = slotMask[s][w];
        while (m != 0) {
          refBits[s].push_back(
              static_cast<std::uint16_t>(w * 64 + std::countr_zero(m)));
          m &= m - 1;
        }
      }
    }

    // Boundary-bit universe: every BitKey any candidate of v could
    // reference — the direct fanin bit of each referenced operand bit
    // plus every support bit of every absorbable fanin cut.
    ws.universe.clear();
    for (std::size_t s = 0; s < p; ++s) {
      if (slotOf[s] != s) continue;
      const Edge& e = n.operands[s];
      for (const std::uint16_t b : refBits[s]) {
        ws.universe.push_back(makeBitKey(e.src, e.dist, b));
        for (const Cut* c : options[s].cuts) {
          if (c == nullptr) continue;
          const SupportSet& sup = c->bitSupport[b];
          ws.universe.insert(ws.universe.end(), sup.begin(), sup.end());
        }
      }
    }
    std::sort(ws.universe.begin(), ws.universe.end());
    ws.universe.erase(std::unique(ws.universe.begin(), ws.universe.end()),
                      ws.universe.end());
    const std::size_t uBits = ws.universe.size();
    const std::size_t words = (uBits + 63) / 64;

    // Element universe: distinct (node, dist) pairs, in BitKey order
    // (node-major, so already CutElement-sorted).
    ws.elemOf.resize(uBits);
    ws.elems.clear();
    for (std::size_t u = 0; u < uBits; ++u) {
      const CutElement e{bitKeyNode(ws.universe[u]),
                         bitKeyDist(ws.universe[u])};
      if (ws.elems.empty() || ws.elems.back() != e) ws.elems.push_back(e);
      ws.elemOf[u] = static_cast<std::uint32_t>(ws.elems.size() - 1);
    }

    const auto universeIndex = [&](BitKey key) {
      return static_cast<std::size_t>(
          std::lower_bound(ws.universe.begin(), ws.universe.end(), key) -
          ws.universe.begin());
    };

    // Signature tables, translated once per node: for each slot, option
    // and referenced operand bit, the packed universe signature of that
    // choice's contribution plus its wire flag (boundary contributions
    // and absorbed wire bits never turn a routed bit into a LUT).
    std::vector<std::uint64_t*>& sigOf = ws.sigOf;
    std::vector<std::uint8_t*>& wireOf = ws.wireOf;
    for (std::size_t s = 0; s < p; ++s) {
      if (slotOf[s] != s || refBits[s].empty()) continue;
      const std::size_t srcWidth = g.node(n.operands[s].src).width;
      refPos[s].assign(srcWidth, 0);
      for (std::size_t t = 0; t < refBits[s].size(); ++t) {
        refPos[s][refBits[s][t]] = static_cast<std::uint32_t>(t);
      }
      const std::size_t nOpt = options[s].cuts.size();
      const std::size_t nBit = refBits[s].size();
      sigOf[s] = ws.arena.allocateZeroed<std::uint64_t>(nOpt * nBit * words);
      wireOf[s] = ws.arena.allocate<std::uint8_t>(nOpt * nBit);
      for (std::size_t oi = 0; oi < nOpt; ++oi) {
        const Cut* c = options[s].cuts[oi];
        for (std::size_t t = 0; t < nBit; ++t) {
          std::uint64_t* sig = sigOf[s] + (oi * nBit + t) * words;
          const std::uint16_t b = refBits[s][t];
          if (c == nullptr) {
            const Edge& e = n.operands[s];
            const std::size_t u = universeIndex(makeBitKey(e.src, e.dist, b));
            sig[u / 64] |= 1ull << (u % 64);
            wireOf[s][oi * nBit + t] = 1;
          } else {
            for (const BitKey key : c->bitSupport[b]) {
              const std::size_t u = universeIndex(key);
              sig[u / 64] |= 1ull << (u % 64);
            }
            wireOf[s][oi * nBit + t] = c->bitIsWire[b] ? 1 : 0;
          }
        }
      }
    }

    ws.bitSigs.resize(static_cast<std::size_t>(n.width) * words);
    ws.wireFlags.resize(n.width);
    ws.supCount.resize(n.width);
    ws.unionSig.resize(words);

    // Feasibility pass for the current option indices: pure word ops
    // over the signature tables, touching no heap at all. Returns false
    // the moment a bit's support popcount exceeds K or the boundary
    // exceeds maxElements — the common case for deep candidates, which
    // therefore costs zero allocations.
    const auto feasible = [&](const std::vector<std::size_t>& idx) {
      std::fill(ws.unionSig.begin(), ws.unionSig.end(), 0);
      for (std::uint16_t j = 0; j < n.width; ++j) {
        if (j < 64 && ((costed >> j) & 1) == 0) {
          ws.supCount[j] = -1;  // skipped bit: empty support, never a wire
          continue;
        }
        std::uint64_t* acc = ws.bitSigs.data() + std::size_t(j) * words;
        std::fill(acc, acc + words, 0);
        bool wireBit = ws.identity[j] && ws.deps[j].size() <= 1;
        for (const DepBit& d : ws.deps[j]) {
          const std::size_t s = slotOf[d.operandIndex];
          const std::size_t nBit = refBits[s].size();
          const std::size_t t = refPos[s][d.bit];
          const std::uint64_t* sig = sigOf[s] + (idx[s] * nBit + t) * words;
          for (std::size_t w = 0; w < words; ++w) acc[w] |= sig[w];
          if (idx[s] != 0 && wireOf[s][idx[s] * nBit + t] == 0) {
            wireBit = false;
          }
        }
        int sup = 0;
        for (std::size_t w = 0; w < words; ++w) {
          sup += std::popcount(acc[w]);
          ws.unionSig[w] |= acc[w];
        }
        if (sup > opts.k) return false;  // support exceeds K: infeasible
        ws.supCount[j] = sup;
        ws.wireFlags[j] = wireBit ? 1 : 0;
      }
      // Boundary element count from the union signature; same-element
      // universe bits are contiguous, so counting is a running compare.
      int elems = 0;
      std::uint32_t lastElem = ~0u;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t m = ws.unionSig[w];
        while (m != 0) {
          const std::size_t u = w * 64 + std::countr_zero(m);
          m &= m - 1;
          if (ws.elemOf[u] != lastElem) {
            lastElem = ws.elemOf[u];
            if (++elems > opts.maxElements) return false;
          }
        }
      }
      return true;
    };

    // Materializes the feasibility pass's candidate into a Cut — only
    // ever called for feasible candidates, so every allocation here
    // lands in a kept cut.
    const auto materialize = [&](const std::vector<std::size_t>& idx,
                                 Cut& out) {
      out.kind = CutKind::Lut;
      out.coneNodes = {v};
      out.isUnit = true;
      out.bitSupport.resize(n.width);
      out.bitIsWire.assign(n.width, false);
      for (std::size_t i = 0; i < p; ++i) {
        if (slotOf[i] != i || idx[i] == 0) continue;
        out.isUnit = false;
        for (const NodeId cn : options[i].cuts[idx[i]]->coneNodes) {
          insertSorted(out.coneNodes, cn);
        }
      }
      for (std::uint16_t j = 0; j < n.width; ++j) {
        if (ws.supCount[j] < 0) continue;  // skipped bit
        const int sup = ws.supCount[j];
        const bool wireBit = ws.wireFlags[j] != 0;
        out.bitIsWire[j] = wireBit;
        out.maxSupport = std::max(out.maxSupport, sup);
        if (sup > 0 && !wireBit) ++out.lutCost;
        // The universe is BitKey-sorted, so ascending set bits emit the
        // sorted support directly.
        const std::uint64_t* acc = ws.bitSigs.data() + std::size_t(j) * words;
        SupportSet& supSet = out.bitSupport[j];
        supSet.reserve(sup);
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t m = acc[w];
          while (m != 0) {
            const std::size_t u = w * 64 + std::countr_zero(m);
            m &= m - 1;
            supSet.push_back(ws.universe[u]);
          }
        }
      }
      std::uint32_t lastElem = ~0u;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t m = ws.unionSig[w];
        while (m != 0) {
          const std::size_t u = w * 64 + std::countr_zero(m);
          m &= m - 1;
          if (ws.elemOf[u] != lastElem) {
            lastElem = ws.elemOf[u];
            out.elements.push_back(ws.elems[lastElem]);
          }
        }
      }
    };

    // Mixed-radix counter over the real slots — identical visit order
    // to the historical pairwise enumeration.
    ws.idx.assign(p, 0);
    std::vector<std::size_t>& idx = ws.idx;
    while (true) {
      if (feasible(idx)) {
        ws.result.emplace_back();
        materialize(idx, ws.result.back());
      }

      std::size_t i = 0;
      for (; i < p; ++i) {
        if (slotOf[i] != i) continue;
        if (++idx[i] < options[i].cuts.size()) break;
        idx[i] = 0;
      }
      if (i == p) break;
    }

    finishCandidates(v, ws);
  }

  /// Shared candidate tail: carry fallback when the unit cut was
  /// K-infeasible for wide arithmetic, then the prune/priority stage.
  void finishCandidates(NodeId v, Workspace& ws) const {
    const bool hasUnit =
        std::any_of(ws.result.begin(), ws.result.end(),
                    [](const Cut& c) { return c.isUnit; });
    if (!hasUnit && ir::opClass(g.node(v).kind) == OpClass::Arith) {
      ws.result.push_back(makeCarryCut(g, v));
    }
    prune(ws.result);
  }

  /// Direct merge enumeration for small cones: per-candidate sorted-set
  /// unions (with the per-node DEP/identity precompute shared with the
  /// packed path). Identical output to the packed path.
  void enumerateMerge(NodeId v, std::uint64_t costed, Workspace& ws) const {
    const Node& n = g.node(v);
    const std::size_t p = n.operands.size();
    ws.idx.assign(p, 0);
    if (ws.choices.size() < p) ws.choices.resize(p);
    while (true) {
      for (std::size_t i = 0; i < p; ++i) {
        ws.choices[i] = ws.options[ws.slotOf[i]].cuts[ws.idx[ws.slotOf[i]]];
      }
      Cut cut;
      if (composeMerge(v, costed, ws, cut)) {
        ws.result.push_back(std::move(cut));
      }
      std::size_t i = 0;
      for (; i < p; ++i) {
        if (ws.slotOf[i] != i) continue;
        if (++ws.idx[i] < ws.options[i].cuts.size()) break;
        ws.idx[i] = 0;
      }
      if (i == p) break;
    }
  }

  /// Merge-path compose: per-bit sorted-vector unions capped at K.
  bool composeMerge(NodeId v, std::uint64_t costed, Workspace& ws,
                    Cut& out) const {
    const Node& n = g.node(v);
    out.kind = CutKind::Lut;
    out.coneNodes = {v};
    out.isUnit = true;
    out.bitSupport.resize(n.width);
    out.bitIsWire.assign(n.width, false);
    for (std::size_t i = 0; i < n.operands.size(); ++i) {
      if (ws.choices[i] != nullptr) {
        out.isUnit = false;
        for (const NodeId cn : ws.choices[i]->coneNodes) {
          insertSorted(out.coneNodes, cn);
        }
      }
    }

    for (std::uint16_t j = 0; j < n.width; ++j) {
      if (j < 64 && ((costed >> j) & 1) == 0) {
        continue;  // skipped bit: empty support, never a wire
      }
      bool wireBit = ws.identity[j] && ws.deps[j].size() <= 1;
      for (const DepBit& d : ws.deps[j]) {
        const Edge& e = n.operands[d.operandIndex];
        if (ws.choices[d.operandIndex] == nullptr) {
          // Boundary bit of the fanin itself: a single sorted insert.
          SupportSet& sup = out.bitSupport[j];
          const BitKey key = makeBitKey(e.src, e.dist, d.bit);
          const auto it = std::lower_bound(sup.begin(), sup.end(), key);
          if (it == sup.end() || *it != key) sup.insert(it, key);
          if (static_cast<int>(sup.size()) > opts.k) return false;
        } else {
          const Cut& c = *ws.choices[d.operandIndex];
          if (!unionIntoCapped(out.bitSupport[j], c.bitSupport[d.bit],
                               ws.scratch, opts.k)) {
            return false;  // support already exceeds K: cut is infeasible
          }
          if (!c.bitIsWire[d.bit]) wireBit = false;
        }
      }
      out.bitIsWire[j] = wireBit;
      out.maxSupport = std::max(out.maxSupport,
                                static_cast<int>(out.bitSupport[j].size()));
      if (!out.bitSupport[j].empty() && !out.bitIsWire[j]) ++out.lutCost;
    }

    for (const SupportSet& s : out.bitSupport) {
      for (const BitKey k : s) {
        insertSorted(out.elements, CutElement{bitKeyNode(k), bitKeyDist(k)});
      }
    }
    return static_cast<int>(out.elements.size()) <= opts.maxElements;
  }

  void prune(std::vector<Cut>& cuts) const {
    // Deduplicate identical element sets, keeping the cheapest.
    std::sort(cuts.begin(), cuts.end(), [](const Cut& a, const Cut& b) {
      if (a.elements != b.elements) return a.elements < b.elements;
      return a.lutCost < b.lutCost;
    });
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [](const Cut& a, const Cut& b) {
                             return a.elements == b.elements;
                           }),
               cuts.end());

    // Per-cut element fingerprints: one-word subset pre-filter.
    std::vector<std::uint64_t> fp(cuts.size());
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      fp[i] = cutFingerprint(cuts[i]);
    }

    // Subset dominance: drop B when some A has a subset boundary and no
    // higher cost (selecting A constrains strictly fewer roots).
    std::vector<bool> dead(cuts.size(), false);
    for (std::size_t a = 0; a < cuts.size(); ++a) {
      if (dead[a]) continue;
      for (std::size_t b = 0; b < cuts.size(); ++b) {
        if (a == b || dead[b] || cuts[b].isUnit) continue;
        if (cuts[a].lutCost > cuts[b].lutCost) continue;
        if (cuts[a].elements.size() >= cuts[b].elements.size()) continue;
        if ((fp[a] & ~fp[b]) != 0) continue;  // cannot be a subset
        if (std::includes(cuts[b].elements.begin(), cuts[b].elements.end(),
                          cuts[a].elements.begin(), cuts[a].elements.end())) {
          dead[b] = true;
        }
      }
    }
    // Masked cost dominance (facts only): drop B when some A has a
    // boundary no larger and a STRICTLY lower LUT cost. Without facts
    // every Lut cut of a node prices each costed root bit at one LUT, so
    // costs barely differ across cuts and the baseline enumeration is
    // left untouched. Under masking, known bits hard-wire into LUT masks
    // and give deep cones genuinely lower costs; keeping cuts beaten on
    // both size and cost only bloats the MILP's selection space. The
    // unit/carry fallback is always kept.
    if (facts != nullptr) {
      for (std::size_t a = 0; a < cuts.size(); ++a) {
        if (dead[a]) continue;
        for (std::size_t b = 0; b < cuts.size(); ++b) {
          if (a == b || dead[b] || cuts[b].isUnit) continue;
          if (cuts[a].lutCost < cuts[b].lutCost &&
              cuts[a].elements.size() <= cuts[b].elements.size()) {
            dead[b] = true;
          }
        }
      }
    }

    std::vector<Cut> kept;
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(cuts[i]));
    }

    // Priority stage: strategy ranking, always keeping the unit/carry
    // fallback when the cap would drop it.
    std::stable_sort(kept.begin(), kept.end(),
                     [this](const Cut& a, const Cut& b) {
                       return strategyBefore(opts.strategy, a, b);
                     });
    if (static_cast<int>(kept.size()) > opts.maxCutsPerNode) {
      const auto unitIt = std::find_if(kept.begin(), kept.end(),
                                       [](const Cut& c) { return c.isUnit; });
      Cut unit;
      bool saveUnit = false;
      if (unitIt != kept.end() &&
          unitIt - kept.begin() >= opts.maxCutsPerNode) {
        unit = *unitIt;
        saveUnit = true;
      }
      kept.resize(opts.maxCutsPerNode);
      if (saveUnit) kept.back() = std::move(unit);
    }
    cuts = std::move(kept);
  }

  // --- per-node driver -----------------------------------------------------

  /// Recomputes one node's cut set unless the memo says nothing it
  /// depends on changed. Returns true when the set changed.
  bool processNode(NodeId v, Workspace& ws) {
    visits.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t key = nodeKey(v);
    if (memoKey[v] == key) {
      memoHits.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    obs::Span span("cut_node", "cut_enum");
    computed.fetch_add(1, std::memory_order_relaxed);
    ws.arena.reset();

    const Node& n = g.node(v);
    std::vector<Cut> next;
    switch (ir::opClass(n.kind)) {
      case OpClass::Io:
        if (n.kind == OpKind::Output) {
          next.push_back(makePortCut(g, v, CutKind::Sink));
        }
        break;  // Input/Const: boundary-only, no selectable cuts
      case OpClass::BlackBox:
        next.push_back(makePortCut(g, v, CutKind::BlackBox));
        break;
      default:
        candidates(v, ws, /*unitOnly=*/false);
        next = std::move(ws.result);
        ws.result = {};
        break;
    }

    memoKey[v] = key;
    bool changed = next.size() != cutsOf[v].cuts.size();
    for (std::size_t i = 0; !changed && i < next.size(); ++i) {
      changed = next[i].elements != cutsOf[v].cuts[i].elements ||
                next[i].lutCost != cutsOf[v].cuts[i].lutCost;
    }
    if (!changed) return false;
    cutsOf[v].cuts = std::move(next);
    version[v] += 1;
    return true;
  }

  /// Algorithm 1 as topological waves. Cut sets propagate only through
  /// dist-0 edges, so nodes of equal level are independent: each wave
  /// runs its nodes concurrently (chunked over `pool`), then back-edge
  /// consumers of changed producers are re-visited — those re-visits
  /// hit the memo, which is exactly what makes the fixpoint cheap.
  void run(util::ThreadPool* pool, std::size_t* arenaPeak) {
    const std::vector<NodeId> topo = ir::topologicalOrder(g);
    std::vector<std::uint32_t> level(g.size(), 0);
    std::uint32_t maxLevel = 0;
    for (const NodeId v : topo) {
      std::uint32_t l = 0;
      for (const Edge& e : g.node(v).operands) {
        if (e.dist == 0) l = std::max(l, level[e.src] + 1);
      }
      level[v] = l;
      maxLevel = std::max(maxLevel, l);
    }
    std::vector<std::vector<NodeId>> waves(maxLevel + 1);
    for (const NodeId v : topo) waves[level[v]].push_back(v);

    const int workers = pool != nullptr ? pool->size() : 1;
    std::vector<Workspace> ws(static_cast<std::size_t>(std::max(workers, 1)));
    std::vector<NodeId> changed;
    int iterations = opts.maxIterations;
    for (const std::vector<NodeId>& wave : waves) {
      if ((iterations -= static_cast<int>(wave.size())) < 0) break;
      if (workers <= 1 || wave.size() < 2 * static_cast<std::size_t>(workers)) {
        for (const NodeId v : wave) {
          if (processNode(v, ws[0])) changed.push_back(v);
        }
        continue;
      }
      // Contiguous chunks, one workspace each; nodes write only their
      // own cut set, so any interleaving yields identical output.
      const std::size_t chunks = static_cast<std::size_t>(workers);
      std::vector<std::vector<NodeId>> changedBy(chunks);
      for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = wave.size() * c / chunks;
        const std::size_t hi = wave.size() * (c + 1) / chunks;
        if (lo == hi) continue;
        pool->submit([this, &wave, &ws, &changedBy, c, lo, hi] {
          for (std::size_t i = lo; i < hi; ++i) {
            if (processNode(wave[i], ws[c])) changedBy[c].push_back(wave[i]);
          }
        });
      }
      pool->wait();
      for (const auto& part : changedBy) {
        changed.insert(changed.end(), part.begin(), part.end());
      }
    }

    // Back-edge consumers of changed producers (loop-carried fanouts
    // behind the wave front). Registers bound the cone, so their memo
    // keys are unchanged — every one of these is a memo hit.
    std::vector<NodeId> revisit;
    const auto& fanouts = g.fanouts();
    std::vector<std::uint32_t> topoPos(g.size(), 0);
    for (std::size_t i = 0; i < topo.size(); ++i) {
      topoPos[topo[i]] = static_cast<std::uint32_t>(i);
    }
    for (const NodeId v : changed) {
      for (const Graph::Fanout& f : fanouts[v]) {
        if (g.node(f.dst).operands[f.operandIndex].dist == 0) continue;
        if (topoPos[f.dst] <= topoPos[v]) revisit.push_back(f.dst);
      }
    }
    std::sort(revisit.begin(), revisit.end());
    revisit.erase(std::unique(revisit.begin(), revisit.end()), revisit.end());
    for (const NodeId v : revisit) {
      if (iterations-- <= 0) break;
      processNode(v, ws[0]);
    }

    if (arenaPeak != nullptr) {
      for (const Workspace& w : ws) {
        *arenaPeak = std::max(*arenaPeak, w.arena.peakBytes());
      }
    }
  }
};

/// Resolved worker count for an enumeration over `g`. Requests beyond
/// the machine's core count are clamped: per-node enumeration is
/// compute-bound, so oversubscription only adds wave-barrier wakeups.
/// The output is bit-identical either way; CutDatabase::threadsUsed
/// records what actually ran.
int effectiveThreads(const CutEnumOptions& opts, const Graph& g) {
  const int hw = util::ThreadPool::defaultThreads();
  int t = opts.threads;
  if (t == 0) t = hw;
  // Negative counts are the testing hook: exactly -t workers, no
  // hardware clamp and no tiny-graph shortcut, so the parallel path
  // runs (and is sanitizer-checked) even on single-core machines.
  if (t < 0) return std::max(1, -t);
  t = std::min(t, hw);
  // Tiny graphs cannot amortize a wave barrier.
  if (g.size() < 32) t = 1;
  return t;
}

void recordMetrics(const CutDatabase& db) {
  auto& reg = obs::Registry::global();
  reg.counter("lamp_cutenum_nodes_total",
              "Cut sets (re)computed by the enumerator")
      .inc(db.nodesComputed);
  reg.counter("lamp_cutenum_memo_hits_total",
              "Worklist visits answered by the per-node memo")
      .inc(db.memoHits);
  reg.counter("lamp_cutenum_cuts_total", "Cuts produced by the enumerator")
      .inc(db.totalCuts);
  reg.gauge("lamp_cutenum_arena_peak_bytes",
            "Peak live bytes in the signature arenas of the last run")
      .set(static_cast<double>(db.arenaPeakBytes));
}

}  // namespace

std::string Cut::str(const ir::Graph& g) const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) os << ", ";
    const Node& n = g.node(elements[i].node);
    if (!n.name.empty()) {
      os << n.name;
    } else {
      os << ir::opKindName(n.kind) << elements[i].node;
    }
    if (elements[i].dist) os << "@-" << elements[i].dist;
  }
  os << "}";
  switch (kind) {
    case CutKind::Carry: os << " carry"; break;
    case CutKind::BlackBox: os << " bb"; break;
    case CutKind::Sink: os << " out"; break;
    case CutKind::Lut:
      os << " lut:" << lutCost << " sup:" << maxSupport;
      break;
  }
  return os.str();
}

CutDatabase enumerateCuts(const Graph& g, const CutEnumOptions& opts) {
  obs::Span span("cut_enum", "flow");
  const auto start = std::chrono::steady_clock::now();
  Enumerator e(g, opts);
  CutDatabase db;
  db.threadsUsed = effectiveThreads(opts, g);
  if (db.threadsUsed > 1) {
    util::ThreadPool pool(db.threadsUsed);
    e.run(&pool, &db.arenaPeakBytes);
  } else {
    e.run(nullptr, &db.arenaPeakBytes);
  }
  db.cutsOf = std::move(e.cutsOf);
  db.worklistVisits = e.visits.load(std::memory_order_relaxed);
  db.memoHits = e.memoHits.load(std::memory_order_relaxed);
  db.nodesComputed = e.computed.load(std::memory_order_relaxed);
  for (const CutSet& cs : db.cutsOf) db.totalCuts += cs.cuts.size();
  recordMetrics(db);
  span.endArgs("{\"totalCuts\":" + std::to_string(db.totalCuts) +
               ",\"memoHits\":" + std::to_string(db.memoHits) + "}");
  db.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return db;
}

CutDatabase trivialCuts(const Graph& g, const CutEnumOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  CutDatabase db;
  db.cutsOf.resize(g.size());
  Enumerator e(g, opts);  // reuse the unit-cut composition path
  Workspace ws;
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    switch (ir::opClass(n.kind)) {
      case OpClass::Io:
        if (n.kind == OpKind::Output) {
          db.cutsOf[v].cuts.push_back(makePortCut(g, v, CutKind::Sink));
        }
        break;
      case OpClass::BlackBox:
        db.cutsOf[v].cuts.push_back(makePortCut(g, v, CutKind::BlackBox));
        break;
      default: {
        ws.arena.reset();
        e.candidates(v, ws, /*unitOnly=*/true);
        if (!ws.result.empty()) {
          db.cutsOf[v].cuts.push_back(std::move(ws.result.front()));
        } else {
          db.cutsOf[v].cuts.push_back(makeCarryCut(g, v));
        }
        break;
      }
    }
    db.totalCuts += db.cutsOf[v].cuts.size();
  }
  db.arenaPeakBytes = ws.arena.peakBytes();
  db.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return db;
}

}  // namespace lamp::cut
