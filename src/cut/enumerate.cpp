#include <algorithm>
#include <chrono>
#include <deque>
#include <sstream>

#include "cut/cut.h"
#include "cut/dep.h"
#include "ir/passes.h"
#include "obs/trace.h"

namespace lamp::cut {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpClass;
using ir::OpKind;

namespace {

/// Sorted-set union dst ∪= add, merging into `scratch` (a reusable buffer
/// that keeps its capacity across calls, so the per-bit hot loop of
/// compose() stops allocating). Abandons the merge and returns false the
/// moment the union exceeds `cap` elements — a doomed bit need not finish
/// merging. `cap < 0` disables the limit.
bool unionIntoCapped(SupportSet& dst, const SupportSet& add,
                     SupportSet& scratch, int cap) {
  if (add.empty()) {
    return cap < 0 || static_cast<int>(dst.size()) <= cap;
  }
  if (dst.empty()) {
    dst = add;
    return cap < 0 || static_cast<int>(dst.size()) <= cap;
  }
  scratch.clear();
  const std::size_t limit =
      cap < 0 ? dst.size() + add.size() : static_cast<std::size_t>(cap);
  auto a = dst.begin();
  auto b = add.begin();
  while (a != dst.end() || b != add.end()) {
    BitKey next;
    if (b == add.end() || (a != dst.end() && *a < *b)) {
      next = *a++;
    } else {
      if (a != dst.end() && *a == *b) ++a;
      next = *b++;
    }
    if (scratch.size() >= limit && cap >= 0) return false;  // early exit
    scratch.push_back(next);
  }
  dst.swap(scratch);
  return true;
}

void insertSorted(std::vector<CutElement>& v, CutElement e) {
  const auto it = std::lower_bound(v.begin(), v.end(), e);
  if (it == v.end() || *it != e) v.insert(it, e);
}

void insertSorted(std::vector<NodeId>& v, NodeId id) {
  const auto it = std::lower_bound(v.begin(), v.end(), id);
  if (it == v.end() || *it != id) v.insert(it, id);
}

/// LUT cost when a wide arithmetic node is implemented on a carry chain:
/// one LUT per operand bit (adders, subtractors and comparators all
/// consume a LUT + CARRY mux per bit on Xilinx-style fabrics).
int carryLutCost(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  if (n.kind == OpKind::Add || n.kind == OpKind::Sub) return n.width;
  return g.node(n.operands[0].src).width;  // comparisons
}

Cut makeCarryCut(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  Cut cut;
  cut.kind = CutKind::Carry;
  cut.isUnit = true;
  cut.lutCost = carryLutCost(g, id);
  cut.coneNodes = {id};
  for (const Edge& e : n.operands) {
    if (g.node(e.src).kind == OpKind::Const) continue;
    insertSorted(cut.elements, CutElement{e.src, e.dist});
  }
  return cut;
}

Cut makePortCut(const Graph& g, NodeId id, CutKind kind) {
  const Node& n = g.node(id);
  Cut cut;
  cut.kind = kind;
  cut.isUnit = true;
  cut.lutCost = 0;
  for (const Edge& e : n.operands) {
    if (g.node(e.src).kind == OpKind::Const) continue;
    insertSorted(cut.elements, CutElement{e.src, e.dist});
  }
  return cut;
}

/// Per-operand expansion choice: nullptr == treat the fanin as a boundary
/// (its trivial cut); otherwise absorb the fanin through the given cut.
using Choice = const Cut*;

struct Enumerator {
  const Graph& g;
  const CutEnumOptions& opts;
  /// Bit-level facts for masking, dropped when they do not index this
  /// graph (rebuilt stage graphs re-enumerate without facts).
  const ir::BitFacts* facts;
  std::vector<CutSet> cutsOf;
  std::size_t visits = 0;
  /// Merge buffer reused by every unionIntoCapped call in compose(); its
  /// capacity survives across bits and nodes, so the hot loop allocates
  /// only when a support outgrows every earlier one.
  mutable SupportSet scratch;

  explicit Enumerator(const Graph& graph, const CutEnumOptions& options)
      : g(graph), opts(options),
        facts(options.facts != nullptr && options.facts->compatibleWith(graph)
                  ? options.facts
                  : nullptr),
        cutsOf(graph.size()) {}

  /// Builds the candidate cut of `v` for a fixed combination of choices
  /// (one per operand). Returns false if K/element limits are violated.
  bool compose(NodeId v, const std::vector<Choice>& choice, Cut& out) const {
    const Node& n = g.node(v);
    out = Cut{};
    out.kind = CutKind::Lut;
    out.coneNodes = {v};
    out.isUnit = true;
    out.bitSupport.resize(n.width);
    out.bitIsWire.assign(n.width, false);

    for (std::size_t i = 0; i < n.operands.size(); ++i) {
      if (choice[i] != nullptr) {
        out.isUnit = false;
        for (const NodeId cn : choice[i]->coneNodes) {
          insertSorted(out.coneNodes, cn);
        }
      }
    }

    // Costed bits: demanded by some observer and not analysis-known.
    // Undemanded bits need no logic at all; known bits hard-wire into
    // the LUT mask. Skipped bits keep empty supports (never a wire), so
    // they cost nothing and never constrain K. The backward demanded
    // pass propagates through the same per-kind structure, so absorbed
    // producer cuts always carry the supports consumers read.
    std::uint64_t costed = ~0ull;
    if (facts != nullptr) {
      costed = facts->demandedOf(g, v) & ~facts->knownMask[v];
    }
    for (std::uint16_t j = 0; j < n.width; ++j) {
      if (j < 64 && ((costed >> j) & 1) == 0) continue;
      const auto deps = depBits(g, v, j, facts);
      // Routed or neutral-masked bits (shift class, AND with 1, OR/XOR
      // with 0) are wires unless an absorbed source bit adds logic.
      bool wireBit = isIdentityBit(g, v, j, facts) && deps.size() <= 1;
      for (const DepBit& d : deps) {
        const Edge& e = n.operands[d.operandIndex];
        if (choice[d.operandIndex] == nullptr) {
          // Boundary bit of the fanin itself: a single sorted insert, no
          // temporary set.
          SupportSet& sup = out.bitSupport[j];
          const BitKey key = makeBitKey(e.src, e.dist, d.bit);
          const auto it = std::lower_bound(sup.begin(), sup.end(), key);
          if (it == sup.end() || *it != key) sup.insert(it, key);
          if (static_cast<int>(sup.size()) > opts.k) return false;
        } else {
          const Cut& c = *choice[d.operandIndex];
          if (!unionIntoCapped(out.bitSupport[j], c.bitSupport[d.bit],
                               scratch, opts.k)) {
            return false;  // support already exceeds K: cut is infeasible
          }
          if (!c.bitIsWire[d.bit]) wireBit = false;
        }
      }
      out.bitIsWire[j] = wireBit;
      out.maxSupport = std::max(out.maxSupport,
                                static_cast<int>(out.bitSupport[j].size()));
      if (!out.bitSupport[j].empty() && !out.bitIsWire[j]) ++out.lutCost;
    }

    for (const SupportSet& s : out.bitSupport) {
      for (const BitKey k : s) {
        insertSorted(out.elements, CutElement{bitKeyNode(k), bitKeyDist(k)});
      }
    }
    return static_cast<int>(out.elements.size()) <= opts.maxElements;
  }

  /// Recomputes the full candidate cut set of one LUT-mappable node from
  /// the current cut sets of its fanins.
  std::vector<Cut> candidates(NodeId v) {
    const Node& n = g.node(v);
    const std::size_t p = n.operands.size();

    // Absorbable cuts per operand. Operands referencing the same
    // (node, dist) share one choice slot for consistency.
    std::vector<std::vector<Choice>> options(p);
    std::vector<std::size_t> slotOf(p);  // first operand with same source
    for (std::size_t i = 0; i < p; ++i) {
      slotOf[i] = i;
      for (std::size_t h = 0; h < i; ++h) {
        if (n.operands[h].src == n.operands[i].src &&
            n.operands[h].dist == n.operands[i].dist) {
          slotOf[i] = h;
          break;
        }
      }
      if (slotOf[i] != i) continue;
      options[i].push_back(nullptr);  // boundary
      const Edge& e = n.operands[i];
      if (e.dist != 0) continue;  // never expand through a register
      if (!ir::isLutMappable(g.node(e.src).kind)) continue;
      for (const Cut& c : cutsOf[e.src].cuts) {
        if (c.kind == CutKind::Lut) options[i].push_back(&c);
      }
    }

    std::vector<Cut> result;
    std::vector<Choice> choice(p, nullptr);
    std::vector<std::size_t> idx(p, 0);
    while (true) {
      for (std::size_t i = 0; i < p; ++i) {
        choice[i] = options[slotOf[i]][idx[slotOf[i]]];
      }
      Cut cut;
      if (compose(v, choice, cut)) result.push_back(std::move(cut));

      // Advance the mixed-radix counter over the real slots.
      std::size_t i = 0;
      for (; i < p; ++i) {
        if (slotOf[i] != i) continue;
        if (++idx[i] < options[i].size()) break;
        idx[i] = 0;
      }
      if (i == p) break;
    }

    // The unit cut can be K-infeasible for wide arithmetic: fall back to a
    // carry-chain implementation so every node stays realizable.
    const bool hasUnit =
        std::any_of(result.begin(), result.end(),
                    [](const Cut& c) { return c.isUnit; });
    if (!hasUnit && ir::opClass(n.kind) == OpClass::Arith) {
      result.push_back(makeCarryCut(g, v));
    }
    prune(result);
    return result;
  }

  void prune(std::vector<Cut>& cuts) const {
    // Deduplicate identical element sets, keeping the cheapest.
    std::sort(cuts.begin(), cuts.end(), [](const Cut& a, const Cut& b) {
      if (a.elements != b.elements) return a.elements < b.elements;
      return a.lutCost < b.lutCost;
    });
    cuts.erase(std::unique(cuts.begin(), cuts.end(),
                           [](const Cut& a, const Cut& b) {
                             return a.elements == b.elements;
                           }),
               cuts.end());

    // Subset dominance: drop B when some A has a subset boundary and no
    // higher cost (selecting A constrains strictly fewer roots).
    std::vector<bool> dead(cuts.size(), false);
    for (std::size_t a = 0; a < cuts.size(); ++a) {
      if (dead[a]) continue;
      for (std::size_t b = 0; b < cuts.size(); ++b) {
        if (a == b || dead[b] || cuts[b].isUnit) continue;
        if (cuts[a].lutCost > cuts[b].lutCost) continue;
        if (cuts[a].elements.size() >= cuts[b].elements.size()) continue;
        if (std::includes(cuts[b].elements.begin(), cuts[b].elements.end(),
                          cuts[a].elements.begin(), cuts[a].elements.end())) {
          dead[b] = true;
        }
      }
    }
    // Masked cost dominance (facts only): drop B when some A has a
    // boundary no larger and a STRICTLY lower LUT cost. Without facts
    // every Lut cut of a node prices each costed root bit at one LUT, so
    // costs barely differ across cuts and the baseline enumeration is
    // left untouched. Under masking, known bits hard-wire into LUT masks
    // and give deep cones genuinely lower costs; keeping cuts beaten on
    // both size and cost only bloats the MILP's selection space. The
    // unit/carry fallback is always kept.
    if (facts != nullptr) {
      for (std::size_t a = 0; a < cuts.size(); ++a) {
        if (dead[a]) continue;
        for (std::size_t b = 0; b < cuts.size(); ++b) {
          if (a == b || dead[b] || cuts[b].isUnit) continue;
          if (cuts[a].lutCost < cuts[b].lutCost &&
              cuts[a].elements.size() <= cuts[b].elements.size()) {
            dead[b] = true;
          }
        }
      }
    }

    std::vector<Cut> kept;
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      if (!dead[i]) kept.push_back(std::move(cuts[i]));
    }

    // Priority cap: deepest cones first (they enable fewer roots), always
    // keeping the unit/carry fallback.
    std::stable_sort(kept.begin(), kept.end(), [](const Cut& a, const Cut& b) {
      if (a.coneNodes.size() != b.coneNodes.size()) {
        return a.coneNodes.size() > b.coneNodes.size();
      }
      if (a.lutCost != b.lutCost) return a.lutCost < b.lutCost;
      return a.elements.size() < b.elements.size();
    });
    if (static_cast<int>(kept.size()) > opts.maxCutsPerNode) {
      const auto unitIt = std::find_if(kept.begin(), kept.end(),
                                       [](const Cut& c) { return c.isUnit; });
      Cut unit;
      bool saveUnit = false;
      if (unitIt != kept.end() &&
          unitIt - kept.begin() >= opts.maxCutsPerNode) {
        unit = *unitIt;
        saveUnit = true;
      }
      kept.resize(opts.maxCutsPerNode);
      if (saveUnit) kept.back() = std::move(unit);
    }
    cuts = std::move(kept);
  }

  void run() {
    // Algorithm 1: worklist over nodes in topological order.
    std::deque<NodeId> work;
    std::vector<bool> inList(g.size(), false);
    for (const NodeId v : ir::topologicalOrder(g)) {
      work.push_back(v);
      inList[v] = true;
    }
    const auto& fanouts = g.fanouts();
    int iterations = opts.maxIterations;
    while (!work.empty() && iterations-- > 0) {
      const NodeId v = work.front();
      work.pop_front();
      inList[v] = false;
      ++visits;

      const Node& n = g.node(v);
      std::vector<Cut> next;
      switch (ir::opClass(n.kind)) {
        case OpClass::Io:
          if (n.kind == OpKind::Output) {
            next.push_back(makePortCut(g, v, CutKind::Sink));
          }
          break;  // Input/Const: boundary-only, no selectable cuts
        case OpClass::BlackBox:
          next.push_back(makePortCut(g, v, CutKind::BlackBox));
          break;
        default:
          next = candidates(v);
          break;
      }

      bool changed = next.size() != cutsOf[v].cuts.size();
      for (std::size_t i = 0; !changed && i < next.size(); ++i) {
        changed = next[i].elements != cutsOf[v].cuts[i].elements ||
                  next[i].lutCost != cutsOf[v].cuts[i].lutCost;
      }
      if (!changed) continue;
      cutsOf[v].cuts = std::move(next);
      for (const Graph::Fanout& f : fanouts[v]) {
        if (!inList[f.dst]) {
          work.push_back(f.dst);
          inList[f.dst] = true;
        }
      }
    }
  }
};

}  // namespace

std::string Cut::str(const ir::Graph& g) const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i) os << ", ";
    const Node& n = g.node(elements[i].node);
    if (!n.name.empty()) {
      os << n.name;
    } else {
      os << ir::opKindName(n.kind) << elements[i].node;
    }
    if (elements[i].dist) os << "@-" << elements[i].dist;
  }
  os << "}";
  switch (kind) {
    case CutKind::Carry: os << " carry"; break;
    case CutKind::BlackBox: os << " bb"; break;
    case CutKind::Sink: os << " out"; break;
    case CutKind::Lut:
      os << " lut:" << lutCost << " sup:" << maxSupport;
      break;
  }
  return os.str();
}

CutDatabase enumerateCuts(const Graph& g, const CutEnumOptions& opts) {
  obs::Span span("cut_enum", "flow");
  const auto start = std::chrono::steady_clock::now();
  Enumerator e(g, opts);
  e.run();
  CutDatabase db;
  db.cutsOf = std::move(e.cutsOf);
  db.worklistVisits = e.visits;
  for (const CutSet& cs : db.cutsOf) db.totalCuts += cs.cuts.size();
  span.endArgs(obs::traceArg("totalCuts",
                             static_cast<double>(db.totalCuts)));
  db.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return db;
}

CutDatabase trivialCuts(const Graph& g, const CutEnumOptions& opts) {
  const auto start = std::chrono::steady_clock::now();
  CutDatabase db;
  db.cutsOf.resize(g.size());
  Enumerator e(g, opts);  // reuse compose() for unit cuts
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    switch (ir::opClass(n.kind)) {
      case OpClass::Io:
        if (n.kind == OpKind::Output) {
          db.cutsOf[v].cuts.push_back(makePortCut(g, v, CutKind::Sink));
        }
        break;
      case OpClass::BlackBox:
        db.cutsOf[v].cuts.push_back(makePortCut(g, v, CutKind::BlackBox));
        break;
      default: {
        const std::vector<Choice> choice(n.operands.size(), nullptr);
        Cut unit;
        if (e.compose(v, choice, unit)) {
          db.cutsOf[v].cuts.push_back(std::move(unit));
        } else {
          db.cutsOf[v].cuts.push_back(makeCarryCut(g, v));
        }
        break;
      }
    }
    db.totalCuts += db.cutsOf[v].cuts.size();
  }
  db.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return db;
}

}  // namespace lamp::cut
