#ifndef LAMP_CUT_CUT_H
#define LAMP_CUT_CUT_H

/// \file cut.h
/// Word-level cuts for mapping-aware scheduling (Section 3.1 of the
/// paper). A cut of node v is a set of boundary (node, dist) elements;
/// its cone is the dist-0 logic between the boundary and v that a LUT
/// array would absorb. Feasibility is *per output bit*: every bit of v
/// must depend on at most K boundary bits (tracked through the per-class
/// DEP functions).

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ir/graph.h"
#include "ir/simplify.h"

namespace lamp::cut {

/// A boundary element: the producing node and how many iterations ago its
/// value was produced (dist > 0 elements arrive from pipeline registers).
struct CutElement {
  ir::NodeId node = ir::kNoNode;
  std::uint32_t dist = 0;

  friend auto operator<=>(const CutElement&, const CutElement&) = default;
};

/// A single boundary *bit*, packed for cheap set operations:
/// key = node << 32 | dist << 8 | bit.
using BitKey = std::uint64_t;

inline BitKey makeBitKey(ir::NodeId node, std::uint32_t dist,
                         std::uint32_t bit) {
  return (static_cast<std::uint64_t>(node) << 32) |
         (static_cast<std::uint64_t>(dist & 0xFFFFFF) << 8) |
         (bit & 0xFF);
}
inline ir::NodeId bitKeyNode(BitKey k) {
  return static_cast<ir::NodeId>(k >> 32);
}
inline std::uint32_t bitKeyDist(BitKey k) {
  return static_cast<std::uint32_t>((k >> 8) & 0xFFFFFF);
}
inline std::uint32_t bitKeyBit(BitKey k) {
  return static_cast<std::uint32_t>(k & 0xFF);
}

/// Sorted set of boundary bits one output bit depends on.
using SupportSet = std::vector<BitKey>;

/// How a selected cut is implemented.
enum class CutKind : std::uint8_t {
  Lut,       ///< K-feasible cone, one LUT per costed output bit
  Carry,     ///< carry-chain implementation of a wide arithmetic node
  BlackBox,  ///< unit "cut" of a black-box op (ports, not LUTs)
  Sink,      ///< unit "cut" of an Output marker
};

/// One cut of a node.
struct Cut {
  CutKind kind = CutKind::Lut;
  /// Sorted, unique boundary elements.
  std::vector<CutElement> elements;
  /// Per output bit of the root: boundary bits it depends on
  /// (empty for Carry/BlackBox/Sink cuts, which skip the K check).
  std::vector<SupportSet> bitSupport;
  /// Per output bit: true when the bit is pure routing (no LUT needed).
  std::vector<bool> bitIsWire;
  /// Nodes absorbed by the cone, root included (empty for non-Lut cuts).
  std::vector<ir::NodeId> coneNodes;
  /// LUTs consumed if this cut is selected.
  int lutCost = 0;
  /// Largest per-bit support (0 for non-Lut kinds).
  int maxSupport = 0;
  /// True for the unit cut (boundary == direct fanins).
  bool isUnit = false;

  bool containsElement(ir::NodeId node, std::uint32_t dist) const {
    assert(std::is_sorted(elements.begin(), elements.end()) &&
           "Cut::elements must stay sorted");
    return std::binary_search(elements.begin(), elements.end(),
                              CutElement{node, dist});
  }

  std::string str(const ir::Graph& g) const;
};

/// All selectable cuts of one node (the trivial self-cut is implicit and
/// never selectable). Empty for Input/Const nodes.
struct CutSet {
  std::vector<Cut> cuts;
};

/// Cut-ranking strategy: the ordering the prune/priority stage applies
/// before capping to maxCutsPerNode. Strategies change which cuts
/// survive the cap (and therefore the MILP's selection space), never
/// feasibility — the unit/carry fallback is always kept.
enum class CutStrategy : std::uint8_t {
  DepthAware,  ///< deepest cones first (historical default ranking)
  AreaMin,     ///< cheapest LUT cost first
  SupportMin,  ///< smallest per-bit support first (routing pressure)
  Balanced,    ///< blend: cost + boundary size - cone depth
};

/// Machine token ("depth" | "area" | "support" | "balanced") used by the
/// CLI, option serialization and cache keys.
std::string_view cutStrategyName(CutStrategy s);

/// Parses a cutStrategyName() token; returns false on unknown input.
bool parseCutStrategy(std::string_view token, CutStrategy& out);

/// Every strategy in racing order. DepthAware comes first so cost ties
/// resolve to the historical ranking.
const std::array<CutStrategy, 4>& allCutStrategies();

/// Options for word-level cut enumeration.
struct CutEnumOptions {
  int k = 4;                ///< LUT input count (paper: K <= 6)
  int maxCutsPerNode = 8;   ///< priority cap after pruning
  int maxElements = 8;      ///< word-level boundary size cap
  int maxIterations = 1 << 22;  ///< worklist safety bound
  /// Ranking applied by the prune/priority stage before the cap.
  CutStrategy strategy = CutStrategy::DepthAware;
  /// Worker threads for per-node enumeration (1 = serial, 0 = one per
  /// hardware thread, capped). Requests beyond the machine's core count
  /// are clamped — oversubscribing a compute-bound sweep only adds
  /// barrier wakeups; CutDatabase::threadsUsed reports the effective
  /// value. Negative counts are a testing hook: exactly -threads
  /// workers, bypassing the clamp so the parallel path runs (and is
  /// sanitizer-checked) even on single-core machines. Output is
  /// bit-identical for every thread count: nodes are processed in
  /// topological waves and each node's cut set depends only on
  /// already-finalized fanin sets.
  int threads = 1;
  /// Optional bit-level facts computed on the SAME graph being
  /// enumerated (analyze::analyzeDataflow + toBitFacts): output bits no
  /// observer demands are skipped entirely (no support, no LUT, no K
  /// check) and known operand bits fold into the LUT mask like Const
  /// operands, shrinking supports and the MILP's cut-selection space.
  /// Ignored when null or size-mismatched. Must outlive the enumeration;
  /// any schedule validated against masked cuts needs the same facts
  /// (sched::ValidationInput::facts).
  const ir::BitFacts* facts = nullptr;
};

/// Cut sets for every node plus enumeration statistics.
struct CutDatabase {
  std::vector<CutSet> cutsOf;  ///< indexed by NodeId
  std::size_t totalCuts = 0;
  std::size_t worklistVisits = 0;
  double wallSeconds = 0.0;
  /// Worklist visits answered by the per-node memo (fanin cut-set
  /// versions + facts digest unchanged) without recomputation.
  std::size_t memoHits = 0;
  /// Nodes whose cut sets were actually (re)computed.
  std::size_t nodesComputed = 0;
  /// Peak bytes live in the per-worker signature arenas (max over
  /// workers; the arenas are bulk-reset per node).
  std::size_t arenaPeakBytes = 0;
  /// Effective worker count the enumeration ran with.
  int threadsUsed = 1;

  const CutSet& at(ir::NodeId id) const { return cutsOf[id]; }
};

/// Algorithm 1: word-level cut enumeration with bit-level dependence
/// tracking. Loop-carried (dist > 0) edges act as cone boundaries.
CutDatabase enumerateCuts(const ir::Graph& g, const CutEnumOptions& opts = {});

/// The mapping-agnostic database used by MILP-base: every node gets only
/// its unit cut (or carry/black-box equivalent).
CutDatabase trivialCuts(const ir::Graph& g, const CutEnumOptions& opts = {});

}  // namespace lamp::cut

#endif  // LAMP_CUT_CUT_H
