#include "analyze/diagnostics.h"

#include <sstream>

namespace lamp::analyze {

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::Info: return "info";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

bool parseSeverity(std::string_view name, Severity& out) {
  if (name == "info") { out = Severity::Info; return true; }
  if (name == "warning") { out = Severity::Warning; return true; }
  if (name == "error") { out = Severity::Error; return true; }
  return false;
}

util::Json diagnosticToJson(const Diagnostic& d) {
  util::Json j = util::Json::object();
  j.set("code", util::Json::string(d.code));
  j.set("severity", util::Json::string(std::string(severityName(d.severity))));
  j.set("message", util::Json::string(d.message));
  util::Json nodes = util::Json::array();
  for (ir::NodeId id : d.nodes) {
    nodes.push(util::Json::integer(static_cast<std::int64_t>(id)));
  }
  j.set("nodes", std::move(nodes));
  if (!d.hint.empty()) j.set("hint", util::Json::string(d.hint));
  return j;
}

namespace {

bool fail(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

bool diagnosticFromJson(const util::Json& j, Diagnostic& out,
                        std::string* error) {
  if (!j.isObject()) return fail(error, "diagnostic must be an object");
  const util::Json* code = j.find("code");
  if (!code || !code->isString() || code->asString().empty()) {
    return fail(error, "diagnostic.code must be a non-empty string");
  }
  const util::Json* sev = j.find("severity");
  Severity severity = Severity::Error;
  if (!sev || !sev->isString() || !parseSeverity(sev->asString(), severity)) {
    return fail(error, "diagnostic.severity must be info|warning|error");
  }
  const util::Json* msg = j.find("message");
  if (!msg || !msg->isString()) {
    return fail(error, "diagnostic.message must be a string");
  }
  out = Diagnostic{};
  out.code = code->asString();
  out.severity = severity;
  out.message = msg->asString();
  if (const util::Json* nodes = j.find("nodes")) {
    if (!nodes->isArray()) return fail(error, "diagnostic.nodes must be an array");
    for (std::size_t i = 0; i < nodes->size(); ++i) {
      const util::Json& id = nodes->at(i);
      if (!id.isNumber() || id.asInt(-1) < 0) {
        return fail(error, "diagnostic.nodes entries must be node ids");
      }
      out.nodes.push_back(static_cast<ir::NodeId>(id.asInt()));
    }
  }
  if (const util::Json* hint = j.find("hint")) {
    if (!hint->isString()) return fail(error, "diagnostic.hint must be a string");
    out.hint = hint->asString();
  }
  return true;
}

util::Json diagnosticsToJson(const std::vector<Diagnostic>& ds) {
  util::Json arr = util::Json::array();
  for (const Diagnostic& d : ds) arr.push(diagnosticToJson(d));
  return arr;
}

bool diagnosticsFromJson(const util::Json& j, std::vector<Diagnostic>& out,
                         std::string* error) {
  if (!j.isArray()) return fail(error, "diagnostics must be an array");
  out.clear();
  out.reserve(j.size());
  for (std::size_t i = 0; i < j.size(); ++i) {
    Diagnostic d;
    if (!diagnosticFromJson(j.at(i), d, error)) return false;
    out.push_back(std::move(d));
  }
  return true;
}

std::string renderDiagnostic(const ir::Graph& g, const Diagnostic& d) {
  std::ostringstream os;
  os << severityName(d.severity) << "[" << d.code << "]: " << d.message;
  if (!d.nodes.empty()) {
    os << "\n    nodes:";
    constexpr std::size_t kMaxListed = 8;
    for (std::size_t i = 0; i < d.nodes.size() && i < kMaxListed; ++i) {
      const ir::NodeId id = d.nodes[i];
      os << (i == 0 ? " " : ", ") << id;
      if (id < g.size()) {
        const ir::Node& n = g.node(id);
        os << " (" << ir::opKindName(n.kind);
        if (!n.name.empty()) os << " '" << n.name << "'";
        os << ")";
      }
    }
    if (d.nodes.size() > kMaxListed) {
      os << ", +" << (d.nodes.size() - kMaxListed) << " more";
    }
  }
  if (!d.hint.empty()) os << "\n    hint: " << d.hint;
  return os.str();
}

}  // namespace lamp::analyze
