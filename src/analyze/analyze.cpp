#include "analyze/analyze.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <sstream>

#include "analyze/dataflow.h"
#include "cut/cut.h"
#include "cut/dep.h"
#include "ir/passes.h"

namespace lamp::analyze {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpClass;
using ir::OpKind;

namespace {

std::string nodeLabel(const Graph& g, NodeId id) {
  std::ostringstream os;
  os << "node " << id;
  if (id < g.size()) {
    const Node& n = g.node(id);
    os << " (" << ir::opKindName(n.kind);
    if (!n.name.empty()) os << " '" << n.name << "'";
    os << ")";
  }
  return os.str();
}

std::string formatNs(double ns) {
  std::ostringstream os;
  os << ns;
  return os.str();
}

/// Nodes reachable (against edges, any distance) from an Output or Store.
std::vector<bool> liveSet(const Graph& g) {
  std::vector<bool> live(g.size(), false);
  std::vector<NodeId> stack;
  for (NodeId id = 0; id < g.size(); ++id) {
    const OpKind k = g.node(id).kind;
    if (k == OpKind::Output || k == OpKind::Store) {
      live[id] = true;
      stack.push_back(id);
    }
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (const Edge& e : g.node(id).operands) {
      if (e.src < g.size() && !live[e.src]) {
        live[e.src] = true;
        stack.push_back(e.src);
      }
    }
  }
  return live;
}

// ---------------------------------------------------------------------------
// structure: LAMP007 (ir::verifyAll) + LAMP009 (no observable sinks)

void runStructure(const Graph& g, const AnalysisOptions&,
                  AnalysisReport& report) {
  for (const ir::VerifyIssue& issue : ir::verifyAll(g)) {
    Diagnostic d;
    d.code = std::string(kCodeStructural);
    d.severity = Severity::Error;
    d.message = issue.message;
    if (issue.node != ir::kNoNode) d.nodes.push_back(issue.node);
    d.hint = "fix the CDFG construction; see ir::verifyAll";
    report.diagnostics.push_back(std::move(d));
    report.structurallyValid = false;
  }
  bool hasSink = false;
  for (const Node& n : g.nodes()) {
    if (n.kind == OpKind::Output || n.kind == OpKind::Store) {
      hasSink = true;
      break;
    }
  }
  if (!hasSink && g.size() > 0) {
    Diagnostic d;
    d.code = std::string(kCodeNoSinks);
    d.severity = Severity::Warning;
    d.message = "graph has no Output or Store node; nothing is observable";
    d.hint = "add outputs, or the whole graph is dead code";
    report.diagnostics.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// clock: LAMP001 — indivisible mapped delay above the clock target

void runClock(const Graph& g, const AnalysisOptions& opts,
              AnalysisReport& report) {
  std::vector<NodeId> offenders;
  NodeId slowest = ir::kNoNode;
  double slowestNs = 0.0;
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& n = g.node(id);
    // Black boxes are pipelined IP: latencyCycles()/remainderNs() spread
    // their delay over cycles, so only fabric logic is indivisible.
    if (ir::isBlackBox(n.kind)) continue;
    const double d = opts.delays.rootDelay(g, id);
    if (d <= opts.tcpNs + 1e-9) continue;
    offenders.push_back(id);
    if (d > slowestNs) {
      slowestNs = d;
      slowest = id;
    }
  }
  if (offenders.empty()) return;
  Diagnostic d;
  d.code = std::string(kCodeClockInfeasible);
  d.severity = Severity::Error;
  std::ostringstream os;
  os << offenders.size() << " operation(s) have an indivisible mapped delay "
     << "above the " << formatNs(opts.tcpNs) << " ns clock target; slowest is "
     << nodeLabel(g, slowest) << " at " << formatNs(slowestNs) << " ns";
  d.message = os.str();
  d.nodes = std::move(offenders);
  d.hint = "raise tcpNs to at least " + formatNs(slowestNs) +
           " ns or narrow the operation: a LUT level or carry chain cannot "
           "be split across cycles (Eq. 8)";
  report.diagnostics.push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// recurrence: LAMP002 — recMII from loop-carried cycles

struct RecArc {
  NodeId from = 0;
  NodeId to = 0;
  int lat = 0;
  int dist = 0;
};

/// Bellman-Ford longest-path positive-cycle detection on arcs weighted
/// lat(from) - ii*dist. A positive cycle means some loop-carried cycle
/// has sum(lat) > ii * sum(dist), i.e. Eq. 7 is unsatisfiable at `ii`.
/// When `cycleOut` is non-null and a cycle is found, it receives the
/// node list of one binding cycle (in dependence order).
bool hasPositiveCycle(const Graph& g, const std::vector<RecArc>& arcs, int ii,
                      std::vector<NodeId>* cycleOut) {
  const std::size_t n = g.size();
  if (n == 0 || arcs.empty()) return false;
  std::vector<long long> dist(n, 0);
  std::vector<std::int64_t> parent(n, -1);
  NodeId last = ir::kNoNode;
  for (std::size_t round = 0; round <= n; ++round) {
    bool changed = false;
    for (std::size_t a = 0; a < arcs.size(); ++a) {
      const RecArc& arc = arcs[a];
      const long long w =
          static_cast<long long>(arc.lat) - static_cast<long long>(ii) * arc.dist;
      if (dist[arc.from] + w > dist[arc.to]) {
        dist[arc.to] = dist[arc.from] + w;
        parent[arc.to] = static_cast<std::int64_t>(a);
        changed = true;
        last = arc.to;
      }
    }
    if (!changed) return false;
  }
  if (cycleOut) {
    // Walk predecessor arcs n steps to land inside a cycle, then collect.
    NodeId x = last;
    for (std::size_t i = 0; i < n && parent[x] >= 0; ++i) {
      x = arcs[static_cast<std::size_t>(parent[x])].from;
    }
    std::vector<NodeId> cycle;
    NodeId cur = x;
    do {
      cycle.push_back(cur);
      if (parent[cur] < 0) break;
      cur = arcs[static_cast<std::size_t>(parent[cur])].from;
    } while (cur != x && cycle.size() <= n);
    std::reverse(cycle.begin(), cycle.end());
    *cycleOut = std::move(cycle);
  }
  return true;
}

}  // namespace

Recurrence recurrenceMii(const Graph& g, const sched::DelayModel& dm,
                         double tcpNs) {
  std::vector<RecArc> arcs;
  long long totalLat = 0;
  bool anyCarried = false;
  for (NodeId v = 0; v < g.size(); ++v) {
    for (const Edge& e : g.node(v).operands) {
      if (e.src >= g.size()) continue;
      RecArc arc;
      arc.from = e.src;
      arc.to = v;
      arc.lat = dm.latencyCycles(g, e.src, tcpNs);
      arc.dist = static_cast<int>(e.dist);
      if (arc.dist > 0) anyCarried = true;
      totalLat += arc.lat;
      arcs.push_back(arc);
    }
  }
  Recurrence r;
  if (!anyCarried) return r;
  if (!hasPositiveCycle(g, arcs, 1, nullptr)) return r;
  // Smallest feasible II lies in (1, cap]: a cycle's latency sum is at
  // most totalLat, so II = totalLat + 1 always satisfies every cycle.
  int lo = 2;
  int hi = static_cast<int>(std::min<long long>(totalLat + 1, 1 << 24));
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (hasPositiveCycle(g, arcs, mid, nullptr)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  r.recMii = lo;
  hasPositiveCycle(g, arcs, lo - 1, &r.cycle);
  return r;
}

int resourceMii(const Graph& g, const sched::ResourceLimits& limits) {
  int mii = 1;
  for (const auto& [rc, limit] : limits) {
    if (limit <= 0) continue;
    int count = 0;
    for (const Node& n : g.nodes()) {
      if (ir::isBlackBox(n.kind) && n.resourceClass() == rc) ++count;
    }
    mii = std::max(mii, (count + limit - 1) / limit);
  }
  return mii;
}

namespace {

void runRecurrence(const Graph& g, const AnalysisOptions& opts,
                   AnalysisReport& report) {
  const Recurrence r = recurrenceMii(g, opts.delays, opts.tcpNs);
  report.recMii = r.recMii;
  if (r.recMii <= opts.ii) return;
  Diagnostic d;
  d.code = std::string(kCodeRecurrenceMii);
  d.severity = r.recMii > opts.maxIi ? Severity::Error : Severity::Warning;
  std::ostringstream os;
  os << "a loop-carried recurrence through " << r.cycle.size()
     << " node(s) requires II >= " << r.recMii << " (requested II=" << opts.ii
     << ")";
  d.message = os.str();
  d.nodes = r.cycle;
  if (d.severity == Severity::Error) {
    d.hint = "request ii >= " + std::to_string(r.recMii) +
             " or shorten the recurrence (fewer multi-cycle ops on the cycle)";
  } else {
    d.hint = "the flow will retry and is expected to settle at II=" +
             std::to_string(r.recMii);
  }
  report.diagnostics.push_back(std::move(d));
}

void runResources(const Graph& g, const AnalysisOptions& opts,
                  AnalysisReport& report) {
  report.resMii = resourceMii(g, opts.resources);
  for (const auto& [rc, limit] : opts.resources) {
    std::vector<NodeId> members;
    for (NodeId id = 0; id < g.size(); ++id) {
      const Node& n = g.node(id);
      if (ir::isBlackBox(n.kind) && n.resourceClass() == rc) {
        members.push_back(id);
      }
    }
    if (members.empty()) continue;
    if (limit <= 0) {
      Diagnostic d;
      d.code = std::string(kCodeResourceMii);
      d.severity = Severity::Error;
      d.message = "resource class " +
                  std::string(ir::resourceClassName(rc)) +
                  " has limit 0 but " + std::to_string(members.size()) +
                  " operation(s) need it";
      d.nodes = std::move(members);
      d.hint = "raise the resource limit";
      report.diagnostics.push_back(std::move(d));
      continue;
    }
    const int mii =
        (static_cast<int>(members.size()) + limit - 1) / limit;
    if (mii <= opts.ii) continue;
    Diagnostic d;
    d.code = std::string(kCodeResourceMii);
    d.severity = mii > opts.maxIi ? Severity::Error : Severity::Warning;
    std::ostringstream os;
    os << members.size() << " operation(s) compete for " << limit << " "
       << ir::resourceClassName(rc) << " unit(s), requiring II >= " << mii
       << " (requested II=" << opts.ii << ")";
    d.message = os.str();
    d.nodes = std::move(members);
    d.hint = d.severity == Severity::Error
                 ? "request ii >= " + std::to_string(mii) +
                       " or raise the resource limit"
                 : "the flow will retry and is expected to settle at II=" +
                       std::to_string(mii);
    report.diagnostics.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// cones: LAMP004 — support that can never be K-feasible

void runCones(const Graph& g, const AnalysisOptions& opts,
              AnalysisReport& report) {
  const std::vector<bool> live = liveSet(g);
  std::vector<NodeId> offenders;
  NodeId worstNode = ir::kNoNode;
  int worstSupport = 0;
  int worstBit = 0;
  for (NodeId id = 0; id < g.size(); ++id) {
    const Node& n = g.node(id);
    if (!live[id]) continue;  // dead cones never need a root
    if (!ir::isLutMappable(n.kind)) continue;
    // Arith roots always have the carry-macro fallback cut, so only
    // LUT-only classes can be unmappable (see cut::enumerateCuts).
    if (ir::opClass(n.kind) == OpClass::Arith) continue;
    for (std::uint16_t bit = 0; bit < n.width; ++bit) {
      std::set<cut::BitKey> boundary;
      for (const cut::DepBit& dep : cut::depBits(g, id, bit)) {
        const Edge& e = n.operands[dep.operandIndex];
        const Node& src = g.node(e.src);
        // Bits that no cut can absorb: loop-carried operands (cuts are
        // combinational) and non-LUT sources (inputs, black boxes).
        // Every cut of this bit keeps them on its boundary, so more
        // than K of them proves no K-feasible cut exists.
        if (e.dist == 0 && ir::isLutMappable(src.kind)) continue;
        boundary.insert(cut::makeBitKey(e.src, e.dist, dep.bit));
      }
      const int support = static_cast<int>(boundary.size());
      if (support <= opts.k) continue;
      if (offenders.empty() || offenders.back() != id) offenders.push_back(id);
      if (support > worstSupport) {
        worstSupport = support;
        worstNode = id;
        worstBit = bit;
      }
    }
  }
  if (offenders.empty()) return;
  Diagnostic d;
  d.code = std::string(kCodeUnmappableCone);
  d.severity = opts.mappingAware ? Severity::Error : Severity::Warning;
  std::ostringstream os;
  os << offenders.size() << " node(s) have output bits whose unabsorbable "
     << "support exceeds K=" << opts.k << "; worst is " << nodeLabel(g, worstNode)
     << " bit " << worstBit << " needing " << worstSupport
     << " boundary bits — no K-feasible cut exists";
  d.message = os.str();
  d.nodes = std::move(offenders);
  d.hint = opts.mappingAware
               ? "raise k (lampc --k, 2..8) or decompose the operation"
               : "mapping-aware scheduling of this graph needs a larger k";
  report.diagnostics.push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// liveness: LAMP005 dead nodes, LAMP006 unused inputs

void runLiveness(const Graph& g, const AnalysisOptions&,
                 AnalysisReport& report) {
  const std::vector<bool> live = liveSet(g);
  std::vector<NodeId> dead;
  std::vector<NodeId> unusedInputs;
  for (NodeId id = 0; id < g.size(); ++id) {
    if (live[id]) continue;
    const OpKind k = g.node(id).kind;
    if (k == OpKind::Input) {
      unusedInputs.push_back(id);
    } else if (k != OpKind::Const) {
      dead.push_back(id);
    }
  }
  if (!dead.empty()) {
    Diagnostic d;
    d.code = std::string(kCodeDeadNode);
    d.severity = Severity::Warning;
    d.message = std::to_string(dead.size()) +
                " node(s) unreachable from any Output/Store";
    d.nodes = std::move(dead);
    d.hint = "run ir::compact (lampc --fold) to drop dead logic before "
             "scheduling";
    report.diagnostics.push_back(std::move(d));
  }
  if (!unusedInputs.empty()) {
    Diagnostic d;
    d.code = std::string(kCodeUnusedInput);
    d.severity = Severity::Warning;
    d.message = std::to_string(unusedInputs.size()) +
                " input(s) never reach an Output/Store";
    d.nodes = std::move(unusedInputs);
    d.hint = "drop the input or wire it to an output";
    report.diagnostics.push_back(std::move(d));
  }
}

// ---------------------------------------------------------------------------
// fold: LAMP008 — constant-foldable islands

void runFold(const Graph& g, const AnalysisOptions&, AnalysisReport& report) {
  std::vector<bool> isConst(g.size(), false);
  std::vector<NodeId> island;
  for (NodeId id : ir::topologicalOrder(g)) {
    const Node& n = g.node(id);
    if (n.kind == OpKind::Const) {
      isConst[id] = true;
      continue;
    }
    if (!ir::isLutMappable(n.kind) || n.operands.empty()) continue;
    bool allConst = true;
    for (const Edge& e : n.operands) {
      // Loop-carried operands read register resets on early iterations,
      // so they are never constant (matches ir::foldConstants).
      if (e.dist != 0 || !isConst[e.src]) {
        allConst = false;
        break;
      }
    }
    if (!allConst) continue;
    isConst[id] = true;
    island.push_back(id);
  }
  if (island.empty()) return;
  Diagnostic d;
  d.code = std::string(kCodeConstFoldable);
  d.severity = Severity::Info;
  d.message = std::to_string(island.size()) +
              " node(s) compute constants (foldable island)";
  d.nodes = std::move(island);
  d.hint = "run ir::foldConstants (lampc --fold) so the solver never sees "
           "them";
  report.diagnostics.push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// dataflow: LAMP010-013 — bit-level findings from the fixpoint engine

void runDataflow(const Graph& g, const AnalysisOptions&,
                 AnalysisReport& report) {
  const DataflowResult flow = analyzeDataflow(g);
  const std::vector<bool> live = liveSet(g);

  // Nodes whose value is constant because every (dist-0) operand is
  // constant belong to LAMP008's const-island finding; reporting their
  // known compares/selects again here would be noise.
  std::vector<bool> isConst(g.size(), false);
  for (NodeId id : ir::topologicalOrder(g)) {
    const Node& n = g.node(id);
    if (n.kind == OpKind::Const) {
      isConst[id] = true;
      continue;
    }
    if (!ir::isLutMappable(n.kind) || n.operands.empty()) continue;
    bool allConst = true;
    for (const Edge& e : n.operands) {
      if (e.dist != 0 || !isConst[e.src]) {
        allConst = false;
        break;
      }
    }
    isConst[id] = allConst;
  }

  const auto mask = [](int w) {
    return w >= 64 ? ~0ull : (1ull << w) - 1;
  };
  // Known bit of `e`'s value as its consumer reads it: through a
  // register (dist > 0) only known-0 survives, because the reset value
  // 0 must agree with the proven bit.
  const auto readBit = [&](const Edge& e, std::uint16_t bit, bool& value) {
    const NodeBits& b = flow.bits[e.src];
    if (((b.knownMask >> bit) & 1) == 0) return false;
    const bool v = ((b.knownVal >> bit) & 1) != 0;
    if (e.dist > 0 && v) return false;
    value = e.dist > 0 ? false : v;
    return true;
  };

  // LAMP010: top output bits no reachable value can set.
  {
    std::vector<NodeId> offenders;
    int totalBits = 0;
    NodeId worst = ir::kNoNode;
    int worstBits = 0;
    for (NodeId id = 0; id < g.size(); ++id) {
      const Node& n = g.node(id);
      if (n.kind != OpKind::Output || n.width == 0) continue;
      const NodeBits& b = flow.bits[id];
      const std::uint64_t zeros = b.knownMask & ~b.knownVal & mask(n.width);
      int top = 0;
      for (int j = n.width - 1; j >= 0 && ((zeros >> j) & 1) != 0; --j) ++top;
      if (top == 0) continue;
      offenders.push_back(id);
      totalBits += top;
      if (top > worstBits) {
        worstBits = top;
        worst = id;
      }
    }
    if (!offenders.empty()) {
      Diagnostic d;
      d.code = std::string(kCodeDeadOutputBits);
      d.severity = Severity::Info;
      std::ostringstream os;
      os << totalBits << " output bit(s) across " << offenders.size()
         << " port(s) are provably zero; worst is " << nodeLabel(g, worst)
         << " whose top " << worstBits << " bit(s) never rise";
      d.message = os.str();
      d.nodes = std::move(offenders);
      d.hint = "narrow the output port (or enable FlowOptions::simplify "
               "to let the flow narrow internally)";
      report.diagnostics.push_back(std::move(d));
    }
  }

  // LAMP011: truncations that always lose set bits.
  {
    std::vector<NodeId> offenders;
    for (NodeId id = 0; id < g.size(); ++id) {
      const Node& n = g.node(id);
      if (!live[id] || isConst[id] || n.kind != OpKind::Slice) continue;
      const Edge& e = n.operands[0];
      const std::uint16_t srcWidth = g.node(e.src).width;
      const std::uint64_t kept = mask(n.width) << n.attr0;
      const std::uint64_t dropped = mask(srcWidth) & ~kept;
      // Only dist-0 known-1 bits prove a loss (see readBit).
      const NodeBits& b = flow.bits[e.src];
      const std::uint64_t ones =
          e.dist == 0 ? (b.knownMask & b.knownVal) : 0;
      if ((ones & dropped) != 0) offenders.push_back(id);
    }
    if (!offenders.empty()) {
      Diagnostic d;
      d.code = std::string(kCodeOverflowTruncation);
      d.severity = Severity::Warning;
      d.message = std::to_string(offenders.size()) +
                  " truncation(s) always drop bits that are provably set "
                  "(the sliced-away range contains known-1 bits)";
      d.nodes = std::move(offenders);
      d.hint = "widen the slice or fix the producer; the dropped bits can "
               "never reach an observer";
      report.diagnostics.push_back(std::move(d));
    }
  }

  // LAMP012: comparisons whose outcome is proven.
  {
    std::vector<NodeId> offenders;
    bool anyTrue = false, anyFalse = false;
    for (NodeId id = 0; id < g.size(); ++id) {
      const Node& n = g.node(id);
      if (!live[id] || isConst[id]) continue;
      if (n.kind != OpKind::Eq && n.kind != OpKind::Ne &&
          n.kind != OpKind::Lt && n.kind != OpKind::Le &&
          n.kind != OpKind::Gt && n.kind != OpKind::Ge) {
        continue;
      }
      const NodeBits& b = flow.bits[id];
      if ((b.knownMask & 1) == 0) continue;
      offenders.push_back(id);
      ((b.knownVal & 1) != 0 ? anyTrue : anyFalse) = true;
    }
    if (!offenders.empty()) {
      Diagnostic d;
      d.code = std::string(kCodeConstantCompare);
      d.severity = Severity::Warning;
      std::string kinds = anyTrue && anyFalse ? "always-true/always-false"
                          : anyTrue           ? "always-true"
                                              : "always-false";
      d.message = std::to_string(offenders.size()) + " " + kinds +
                  " comparison(s): the operand ranges/bits prove the "
                  "result before any input arrives";
      d.nodes = std::move(offenders);
      d.hint = "replace the comparison with a constant (or enable "
               "FlowOptions::simplify to fold it)";
      report.diagnostics.push_back(std::move(d));
    }
  }

  // LAMP013: mux arms no select value reaches.
  {
    std::vector<NodeId> offenders;
    for (NodeId id = 0; id < g.size(); ++id) {
      const Node& n = g.node(id);
      if (!live[id] || isConst[id] || n.kind != OpKind::Mux) continue;
      bool sel = false;
      if (!readBit(n.operands[0], 0, sel)) continue;
      // The select itself being a const island is LAMP008 territory.
      if (g.node(n.operands[0].src).kind == OpKind::Const ||
          isConst[n.operands[0].src]) {
        continue;
      }
      offenders.push_back(id);
    }
    if (!offenders.empty()) {
      Diagnostic d;
      d.code = std::string(kCodeDeadMuxArm);
      d.severity = Severity::Warning;
      d.message = std::to_string(offenders.size()) +
                  " mux(es) have a proven select: one data arm can never "
                  "be chosen";
      d.nodes = std::move(offenders);
      d.hint = "drop the dead arm (or enable FlowOptions::simplify to "
               "forward the live one)";
      report.diagnostics.push_back(std::move(d));
    }
  }
}

constexpr std::array<Pass, 8> kPasses = {{
    {"structure", "LAMP007,LAMP009",
     "IR well-formedness (all violations) and observable sinks", runStructure},
    {"clock", "LAMP001",
     "indivisible mapped delays vs the clock target (Eq. 8)", runClock},
    {"recurrence", "LAMP002",
     "recMII over loop-carried cycles (Eq. 7)", runRecurrence},
    {"resources", "LAMP003",
     "resMII per resource class (Eq. 14)", runResources},
    {"cones", "LAMP004",
     "cut support that can never be K-feasible", runCones},
    {"liveness", "LAMP005,LAMP006",
     "dead nodes and unused inputs", runLiveness},
    {"fold", "LAMP008",
     "constant-foldable islands", runFold},
    {"dataflow", "LAMP010,LAMP011,LAMP012,LAMP013",
     "bit-level known-bits/range/demanded findings", runDataflow},
}};

}  // namespace

bool AnalysisReport::hasErrors() const {
  return count(Severity::Error) > 0;
}

std::size_t AnalysisReport::count(Severity s) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == s) ++n;
  }
  return n;
}

std::span<const Pass> passRegistry() { return kPasses; }

AnalysisReport analyzeGraph(const Graph& g, const AnalysisOptions& opts) {
  AnalysisOptions o = opts;
  o.maxIi = std::max(o.maxIi, o.ii);
  AnalysisReport report;
  for (const Pass& pass : passRegistry()) {
    pass.run(g, o, report);
    // A malformed graph breaks the preconditions of every later pass
    // (topological order, DEP queries, delay lookups) — stop here.
    if (!report.structurallyValid) break;
  }
  return report;
}

std::string summarizeErrors(const AnalysisReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity != Severity::Error) continue;
    if (!out.empty()) out += "; ";
    out += "[" + d.code + "] " + d.message;
  }
  return out;
}

std::string renderReport(const Graph& g, const AnalysisReport& report) {
  std::ostringstream os;
  os << "graph '" << g.name() << "': " << g.size() << " nodes; recMII="
     << report.recMii << ", resMII=" << report.resMii << "; "
     << report.count(Severity::Error) << " error(s), "
     << report.count(Severity::Warning) << " warning(s), "
     << report.count(Severity::Info) << " info(s)\n";
  if (report.diagnostics.empty()) {
    os << "  no findings\n";
    return os.str();
  }
  for (const Diagnostic& d : report.diagnostics) {
    os << "  " << renderDiagnostic(g, d) << "\n";
  }
  return os.str();
}

util::Json reportToJson(const Graph& g, const AnalysisReport& report) {
  util::Json j = util::Json::object();
  j.set("graph", util::Json::string(g.name()));
  j.set("nodes", util::Json::integer(static_cast<std::int64_t>(g.size())));
  j.set("recMii", util::Json::integer(report.recMii));
  j.set("resMii", util::Json::integer(report.resMii));
  j.set("errors", util::Json::integer(
                      static_cast<std::int64_t>(report.count(Severity::Error))));
  j.set("warnings",
        util::Json::integer(
            static_cast<std::int64_t>(report.count(Severity::Warning))));
  j.set("infos", util::Json::integer(
                     static_cast<std::int64_t>(report.count(Severity::Info))));
  j.set("diagnostics", diagnosticsToJson(report.diagnostics));
  return j;
}

}  // namespace lamp::analyze
