#ifndef LAMP_ANALYZE_DATAFLOW_H
#define LAMP_ANALYZE_DATAFLOW_H

/// \file dataflow.h
/// Bit-level dataflow framework over the word-level CDFG: a worklist
/// fixpoint engine with three transfer-function families —
///
///  - forward known-bits: which result bits are the same constant in
///    every iteration (generalizes ir::foldConstants to partial words),
///  - forward interval range: unsigned [lo, hi] per node, propagated
///    through add/sub/shift/mux/compare with widening on loop-carried
///    cycles,
///  - backward demanded-bits: which result bits any Output/Store/black
///    box can ever observe, seeded at the sinks and narrowed through
///    the same per-kind DEP structure the cut enumerator uses.
///
/// The two forward lattices refine each other at each node (the common
/// high prefix of lo and hi yields known bits; known bits clamp the
/// interval), and known bits feed the backward pass (a bit ANDed with a
/// known 0 is not demanded). Loop-carried (dist > 0) operands join the
/// producer's value with the register reset value 0, matching the
/// interpreter's edge-level semantics.
///
/// Termination: known bits only ever move known -> unknown, demanded
/// bits only ever grow, and the interval is widened to the known-bit
/// envelope after a bounded number of per-node updates — every lattice
/// has finite height, so Kleene iteration converges; `maxVisits` is a
/// defensive cap on top (see DataflowTest.CyclicRecurrenceTerminates).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/graph.h"
#include "ir/simplify.h"
#include "util/json.h"

namespace lamp::analyze {

/// Facts for one node. Masks follow the ir::BitFacts conventions:
/// everything pre-masked to the node width, knownVal subset of
/// knownMask, demanded == 0 for nodes no sink observes.
struct NodeBits {
  std::uint64_t knownMask = 0;
  std::uint64_t knownVal = 0;
  std::uint64_t demanded = 0;
  /// Observability superset of `demanded`: bit j set when some observer
  /// reads bit j of v at all, *including* through consumer bits the
  /// forward pass already proved constant. `demanded` strips known bits
  /// (they need no logic — a LUT mask or fold supplies them), which is
  /// the right mask for costing; rewrites that *replace* a value (the
  /// simplifier's forwarding and narrowing) must instead preserve every
  /// live bit, known or not.
  std::uint64_t live = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend bool operator==(const NodeBits&, const NodeBits&) = default;
};

struct DataflowOptions {
  /// Per-node forward updates before the interval is widened to the
  /// known-bit envelope (keeps slow-counting recurrences from stepping
  /// the fixpoint once per representable value).
  int wideningThreshold = 4;
  /// Defensive cap on total worklist visits across both passes.
  std::size_t maxVisits = 1u << 22;
};

struct DataflowResult {
  std::vector<NodeBits> bits;  ///< indexed by NodeId
  std::size_t forwardVisits = 0;
  std::size_t backwardVisits = 0;
  /// False only if maxVisits was exhausted; the facts are then still
  /// sound (joins only ever widen) but possibly imprecise.
  bool converged = true;
};

/// Runs the three analyses to fixpoint. The graph must verify.
DataflowResult analyzeDataflow(const ir::Graph& g,
                               const DataflowOptions& opts = {});

/// Repackages the result as the layer-neutral container consumed by
/// ir::simplify, cut enumeration and the schedule validator.
ir::BitFacts toBitFacts(const DataflowResult& r);

/// Per-node summary as a JSON array (one object per node). Masks are
/// serialized as "0x..." hex strings — util::Json integers are int64,
/// and 64-bit masks must round-trip losslessly.
util::Json dataflowToJson(const std::vector<NodeBits>& bits);

/// Inverse of dataflowToJson(). Returns false and fills `error` (when
/// non-null) on shape violations.
bool dataflowFromJson(const util::Json& j, std::vector<NodeBits>& out,
                      std::string* error = nullptr);

}  // namespace lamp::analyze

#endif  // LAMP_ANALYZE_DATAFLOW_H
