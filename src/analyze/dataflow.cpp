#include "analyze/dataflow.h"

#include <algorithm>
#include <bit>
#include <deque>

#include "ir/eval.h"
#include "ir/passes.h"
#include "obs/trace.h"

namespace lamp::analyze {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;

namespace {

std::uint64_t fullMask(std::uint16_t width) {
  return width >= 64 ? ~0ull : (1ull << width) - 1;
}

// Shifts with an out-of-range guard (shifting a uint64 by >= 64 is UB;
// semantically those bits are gone).
std::uint64_t shl(std::uint64_t v, unsigned s) { return s >= 64 ? 0 : v << s; }
std::uint64_t shr(std::uint64_t v, unsigned s) { return s >= 64 ? 0 : v >> s; }

/// Forward abstract value: known bits plus an unsigned interval, both
/// over the producing node's width.
struct Val {
  std::uint64_t km = 0;  ///< bit known
  std::uint64_t kv = 0;  ///< value of known bits (subset of km)
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
};

Val topVal(std::uint16_t w) { return Val{0, 0, 0, fullMask(w)}; }

Val constVal(std::uint64_t c, std::uint16_t w) {
  const std::uint64_t m = ir::maskToWidth(c, w);
  return Val{fullMask(w), m, m, m};
}

Val joinVal(const Val& a, const Val& b) {
  Val j;
  j.km = a.km & b.km & ~(a.kv ^ b.kv);
  j.kv = a.kv & j.km;
  j.lo = std::min(a.lo, b.lo);
  j.hi = std::max(a.hi, b.hi);
  return j;
}

/// Mutual refinement of the two forward lattices: the common high
/// prefix of [lo, hi] is known, and known bits envelope the interval.
void refine(Val& v, std::uint16_t w) {
  const std::uint64_t mask = fullMask(w);
  v.km &= mask;
  v.kv &= v.km;
  v.lo = std::min(v.lo, mask);
  v.hi = std::min(v.hi, mask);
  if (v.lo > v.hi) std::swap(v.lo, v.hi);  // defensive
  // Range -> known: bits above the highest differing bit of lo and hi
  // are shared by every value in between.
  const std::uint64_t x = v.lo ^ v.hi;
  const std::uint64_t below = x == 0 ? 0 : (shl(2, std::bit_width(x) - 1) - 1);
  const std::uint64_t common = mask & ~below;
  const std::uint64_t fresh = common & ~v.km;
  v.km |= fresh;
  v.kv |= v.lo & fresh;
  // Known -> range: unknown bits only ever add to kv.
  v.lo = std::max(v.lo, v.kv);
  v.hi = std::min(v.hi, v.kv | (~v.km & mask));
  if (v.lo > v.hi) {  // contradictory facts: fall back to the envelope
    v.lo = v.kv;
    v.hi = v.kv | (~v.km & mask);
  }
}

/// Ripple-carry knownness of a + b + carryIn over w bits. The sum bit is
/// known when a, b and the carry are; the carry out is known whenever
/// any two of them are known and agree (their value is the majority).
Val addKnown(const Val& a, const Val& b, bool carryKnown, bool carryVal,
             std::uint16_t w) {
  Val r;
  for (std::uint16_t j = 0; j < w && j < 64; ++j) {
    const bool aK = (a.km >> j) & 1, bK = (b.km >> j) & 1;
    const bool av = (a.kv >> j) & 1, bv = (b.kv >> j) & 1;
    if (aK && bK && carryKnown) {
      if (av ^ bv ^ carryVal) r.kv |= 1ull << j;
      r.km |= 1ull << j;
    }
    if (aK && bK && av == bv) {
      carryKnown = true;
      carryVal = av;
    } else if (aK && carryKnown && av == carryVal) {
      carryVal = av;
    } else if (bK && carryKnown && bv == carryVal) {
      carryVal = bv;
    } else {
      carryKnown = false;
    }
  }
  return r;
}

struct Engine {
  const Graph& g;
  const DataflowOptions& opts;
  std::vector<Val> state;
  std::vector<bool> computed;
  std::vector<int> updates;
  std::size_t visits = 0;
  bool converged = true;

  explicit Engine(const Graph& graph, const DataflowOptions& options)
      : g(graph), opts(options), state(graph.size()),
        computed(graph.size(), false), updates(graph.size(), 0) {}

  std::uint16_t width(NodeId v) const { return g.node(v).width; }
  std::uint16_t opWidth(NodeId v, std::size_t i) const {
    return g.node(g.node(v).operands[i].src).width;
  }

  /// Abstract value an operand reference reads: the producer's state,
  /// joined with the register reset value 0 for loop-carried edges
  /// (matching the interpreter's edge-level semantics). An uncomputed
  /// producer — only reachable through a dist > 0 forward reference on
  /// the first sweep — contributes just the reset value.
  Val readOperand(const Edge& e) const {
    const std::uint16_t w = g.node(e.src).width;
    if (!computed[e.src]) return constVal(0, w);
    Val v = state[e.src];
    if (e.dist > 0) v = joinVal(v, constVal(0, w));
    return v;
  }

  Val transfer(NodeId id) const {
    const Node& n = g.node(id);
    const std::uint16_t w = n.width;
    const std::uint64_t mask = fullMask(w);

    std::vector<Val> in;
    in.reserve(n.operands.size());
    for (const Edge& e : n.operands) in.push_back(readOperand(e));

    // Generic full fold: every operand fully known and the op is pure.
    if (!n.operands.empty() && n.kind != OpKind::Load &&
        n.kind != OpKind::Store) {
      bool allKnown = true;
      std::vector<std::uint64_t> ops;
      for (std::size_t i = 0; i < in.size(); ++i) {
        allKnown &= in[i].km == fullMask(opWidth(id, i));
        ops.push_back(in[i].kv);
      }
      if (allKnown) {
        if (const auto value = ir::evalPureOp(g, id, ops)) {
          return constVal(*value, w);
        }
      }
    }

    Val r = topVal(w);
    switch (n.kind) {
      case OpKind::Input:
      case OpKind::Load:
        break;  // top
      case OpKind::Store:
        return Val{};  // width 0: nothing to know
      case OpKind::Const:
        return constVal(n.constValue, w);
      case OpKind::Output:
        return in[0];

      case OpKind::And: {
        const Val &a = in[0], &b = in[1];
        r.km = (a.km & b.km) | (a.km & ~a.kv) | (b.km & ~b.kv);
        r.kv = a.kv & b.kv;
        r.lo = 0;
        r.hi = std::min(a.hi, b.hi);
        break;
      }
      case OpKind::Or: {
        const Val &a = in[0], &b = in[1];
        r.km = (a.km & b.km) | (a.km & a.kv) | (b.km & b.kv);
        r.kv = (a.kv | b.kv) & r.km;
        r.lo = std::max(a.lo, b.lo);
        r.hi = fullMask(std::max(std::bit_width(a.hi), std::bit_width(b.hi)));
        break;
      }
      case OpKind::Xor: {
        const Val &a = in[0], &b = in[1];
        r.km = a.km & b.km;
        r.kv = (a.kv ^ b.kv) & r.km;
        r.lo = 0;
        r.hi = fullMask(std::max(std::bit_width(a.hi), std::bit_width(b.hi)));
        break;
      }
      case OpKind::Not: {
        const Val& a = in[0];
        r.km = a.km;
        r.kv = ~a.kv & a.km & mask;
        r.lo = mask - a.hi;
        r.hi = mask - a.lo;
        break;
      }

      case OpKind::Shl: {
        const Val& a = in[0];
        const auto s = static_cast<unsigned>(n.attr0);
        r.km = (shl(a.km, s) | (shl(1, s) - 1)) & mask;
        r.kv = shl(a.kv, s) & mask;
        if (s == 0 || a.hi <= shr(mask, s)) {  // no bits shifted out
          r.lo = shl(a.lo, s);
          r.hi = shl(a.hi, s);
        }
        break;
      }
      case OpKind::Shr: {
        const Val& a = in[0];
        const auto s = static_cast<unsigned>(n.attr0);
        r.km = (shr(a.km, s) | (mask & ~shr(mask, s))) & mask;
        r.kv = shr(a.kv, s);
        r.lo = shr(a.lo, s);
        r.hi = shr(a.hi, s);
        break;
      }
      case OpKind::AShr: {
        const Val& a = in[0];
        const auto s = static_cast<unsigned>(n.attr0);
        const std::uint64_t sign = 1ull << (w - 1);
        if ((a.km & sign) != 0 && (a.kv & sign) == 0) {
          // Sign known 0: behaves as a logical shift.
          r.km = (shr(a.km, s) | (mask & ~shr(mask, s))) & mask;
          r.kv = shr(a.kv, s);
          r.lo = shr(a.lo, s);
          r.hi = shr(a.hi, s);
        } else {
          // Replicated sign: bit j reads a[min(j+s, w-1)].
          for (std::uint16_t j = 0; j < w; ++j) {
            const std::uint16_t src =
                static_cast<std::uint32_t>(j) + s >= w ? w - 1 : j + s;
            if ((a.km >> src) & 1) {
              r.km |= 1ull << j;
              r.kv |= ((a.kv >> src) & 1) << j;
            }
          }
        }
        break;
      }
      case OpKind::Slice: {
        const Val& a = in[0];
        const auto s = static_cast<unsigned>(n.attr0);
        r.km = shr(a.km, s) & mask;
        r.kv = shr(a.kv, s) & mask;
        r.hi = std::min(mask, shr(a.hi, s));
        if (s + w >= opWidth(id, 0)) r.lo = shr(a.lo, s);  // no truncation
        break;
      }
      case OpKind::Concat: {
        const Val &a = in[0], &b = in[1];
        const std::uint16_t wb = opWidth(id, 1);
        r.km = (shl(a.km, wb) | b.km) & mask;
        r.kv = (shl(a.kv, wb) | b.kv) & mask;
        r.lo = shl(a.lo, wb) + b.lo;
        r.hi = shl(a.hi, wb) + b.hi;
        break;
      }
      case OpKind::ZExt: {
        const Val& a = in[0];
        r.km = a.km | (mask & ~fullMask(opWidth(id, 0)));
        r.kv = a.kv;
        r.lo = a.lo;
        r.hi = a.hi;
        break;
      }
      case OpKind::SExt: {
        const Val& a = in[0];
        const std::uint16_t wa = opWidth(id, 0);
        const std::uint64_t sign = 1ull << (wa - 1);
        const std::uint64_t high = mask & ~fullMask(wa);
        r.km = a.km & fullMask(wa);
        r.kv = a.kv;
        if ((a.km & sign) != 0) {
          r.km |= high;
          if ((a.kv & sign) != 0) {
            r.kv |= high;
            r.lo = high | std::max(a.lo, sign);
            r.hi = high | a.hi;
          } else {
            r.lo = a.lo;
            r.hi = std::min(a.hi, sign - 1);
          }
        }
        break;
      }

      case OpKind::Add:
      case OpKind::Sub: {
        const Val& a = in[0];
        Val b = in[1];
        bool carry = false;
        if (n.kind == OpKind::Sub) {  // a + ~b + 1
          b.kv = ~b.kv & b.km & mask;
          carry = true;
        }
        r = addKnown(a, b, true, carry, w);
        r.lo = 0;
        r.hi = mask;
        const Val& rb = in[1];
        if (n.kind == OpKind::Add) {
          if (a.hi <= ~0ull - rb.hi && a.hi + rb.hi <= mask) {
            r.lo = a.lo + rb.lo;
            r.hi = a.hi + rb.hi;
          } else if (w < 64 && a.lo + rb.lo > mask) {  // every sum wraps
            r.lo = a.lo + rb.lo - mask - 1;
            r.hi = std::min(a.hi + rb.hi - mask - 1, mask);
          }
        } else {
          if (a.lo >= rb.hi) {  // never wraps
            r.lo = a.lo - rb.hi;
            r.hi = a.hi - rb.lo;
          } else if (w < 64 && a.hi < rb.lo) {  // always wraps
            r.lo = mask + 1 + a.lo - rb.hi;
            r.hi = mask + 1 + a.hi - rb.lo;
          }
        }
        break;
      }

      case OpKind::Eq:
      case OpKind::Ne:
      case OpKind::Lt:
      case OpKind::Le:
      case OpKind::Gt:
      case OpKind::Ge:
        r = compareVal(id, in[0], in[1]);
        break;

      case OpKind::Mux: {
        const Val& sel = in[0];
        if ((sel.km & 1) != 0) {
          return (sel.kv & 1) != 0 ? in[1] : in[2];
        }
        r = joinVal(in[1], in[2]);
        break;
      }

      case OpKind::Mul: {
        const Val &a = in[0], &b = in[1];
        // Trailing known-zero bits of the factors add up in the product.
        const int tz = std::countr_one(a.km & ~a.kv) +
                       std::countr_one(b.km & ~b.kv);
        r.km = mask & (shl(1, tz) - 1);
        r.kv = 0;
        if ((a.hi == 0 || b.hi <= ~0ull / a.hi) && a.hi * b.hi <= mask) {
          r.lo = a.lo * b.lo;  // product fits the node width: no wrap
          r.hi = a.hi * b.hi;
        }
        break;
      }
    }
    refine(r, w);
    return r;
  }

  /// Comparison knownness from ranges and known-bit disagreement.
  /// Signed operands are mapped to the unsigned order by flipping the
  /// sign bit, legal only for ranges that do not cross the boundary.
  Val compareVal(NodeId id, Val a, Val b) const {
    const Node& n = g.node(id);
    const std::uint16_t wa = opWidth(id, 0);
    bool known = false, value = false;
    if (n.kind == OpKind::Eq || n.kind == OpKind::Ne) {
      if (a.hi < b.lo || b.hi < a.lo ||
          (a.km & b.km & (a.kv ^ b.kv)) != 0) {
        known = true;
        value = n.kind == OpKind::Ne;
      }
    } else {
      bool comparable = true;
      if (n.isSigned) {
        const std::uint64_t sign = 1ull << (wa - 1);
        const auto crosses = [&](const Val& v) {
          return v.lo < sign && v.hi >= sign;
        };
        comparable = !crosses(a) && !crosses(b);
        if (comparable) {
          a.lo ^= sign;
          a.hi ^= sign;
          b.lo ^= sign;
          b.hi ^= sign;
        }
      }
      if (comparable) {
        const bool swap = n.kind == OpKind::Gt || n.kind == OpKind::Ge;
        if (swap) std::swap(a, b);  // a < b / a <= b forms only
        const bool orEq = n.kind == OpKind::Le || n.kind == OpKind::Ge;
        if (orEq ? a.hi <= b.lo : a.hi < b.lo) {
          known = true;
          value = true;
        } else if (orEq ? a.lo > b.hi : a.lo >= b.hi) {
          known = true;
          value = false;
        }
      }
    }
    if (!known) return topVal(1);
    return constVal(value ? 1 : 0, 1);
  }

  void runForward() {
    std::deque<NodeId> work;
    std::vector<bool> inList(g.size(), false);
    for (const NodeId v : ir::topologicalOrder(g)) {
      work.push_back(v);
      inList[v] = true;
    }
    const auto& fanouts = g.fanouts();
    while (!work.empty()) {
      if (++visits > opts.maxVisits) {
        converged = false;
        break;
      }
      const NodeId v = work.front();
      work.pop_front();
      inList[v] = false;

      Val next = transfer(v);
      if (computed[v]) {
        next = joinVal(state[v], next);  // monotone: joins only widen
        refine(next, width(v));
      }
      if (computed[v] && ++updates[v] > opts.wideningThreshold) {
        // Widen the interval to the known-bit envelope: it then moves
        // only when a known bit is lost, bounding the iteration count.
        next.lo = next.kv;
        next.hi = next.kv | (~next.km & fullMask(width(v)));
      }
      const bool changed = !computed[v] || next.km != state[v].km ||
                           next.kv != state[v].kv || next.lo != state[v].lo ||
                           next.hi != state[v].hi;
      computed[v] = true;
      if (!changed) continue;
      state[v] = next;
      for (const Graph::Fanout& f : fanouts[v]) {
        if (!inList[f.dst]) {
          work.push_back(f.dst);
          inList[f.dst] = true;
        }
      }
    }
  }
};

/// Backward demanded-bits pass over the final forward state.
struct Backward {
  const Graph& g;
  const std::vector<Val>& fwd;
  const DataflowOptions& opts;
  std::vector<std::uint64_t> demanded;
  std::vector<std::uint64_t> live;
  std::size_t visits = 0;
  bool converged = true;

  Backward(const Graph& graph, const std::vector<Val>& forward,
           const DataflowOptions& options)
      : g(graph),
        fwd(forward),
        opts(options),
        demanded(graph.size(), 0),
        live(graph.size(), 0) {}

  /// Known bits of the value an operand reference reads (reset-joined
  /// for loop-carried edges): known 0 survives the join with reset 0.
  Val readOperand(const Edge& e) const {
    Val v = fwd[e.src];
    if (e.dist > 0) v = joinVal(v, constVal(0, g.node(e.src).width));
    return v;
  }

  bool isConstEdge(const Edge& e) const {
    return g.node(e.src).kind == OpKind::Const;
  }

  /// Bits of operand `i` that output demand D of node `id` can observe.
  ///
  /// With `forLive` set the value-based refinements (And/Or dominance,
  /// known mux selects) only apply when the dominating sibling is a
  /// Const node. The live mask licenses whole-value substitutions, and
  /// those run simultaneously across the graph: a refinement justified
  /// by a *computed* sibling's known bit can be invalidated when that
  /// sibling is itself rewritten on a non-live position, but a Const is
  /// immutable. Structural cases (shifts, slices, concat, arithmetic
  /// prefixes) are exact for any operand values and stay shared.
  std::uint64_t operandDemand(NodeId id, std::size_t i, std::uint64_t d,
                              bool forLive = false) const {
    const Node& n = g.node(id);
    const std::uint16_t wa = g.node(n.operands[i].src).width;
    const std::uint64_t opm = fullMask(wa);
    switch (n.kind) {
      case OpKind::Input:
      case OpKind::Const:
        return 0;
      case OpKind::Output:
        return d & opm;
      case OpKind::Store:
        return opm;  // side effect: address and data always observable
      case OpKind::Load:
      case OpKind::Mul:
        return d != 0 ? opm : 0;  // black boxes use whole ports

      case OpKind::And: {
        if (forLive && !isConstEdge(n.operands[1 - i])) return d & opm;
        const Val other = readOperand(n.operands[1 - i]);
        return d & ~(other.km & ~other.kv) & opm;  // known-0 dominates
      }
      case OpKind::Or: {
        if (forLive && !isConstEdge(n.operands[1 - i])) return d & opm;
        const Val other = readOperand(n.operands[1 - i]);
        return d & ~(other.km & other.kv) & opm;  // known-1 dominates
      }
      case OpKind::Xor:
      case OpKind::Not:
        return d & opm;

      case OpKind::Shl:
        return shr(d, static_cast<unsigned>(n.attr0)) & opm;
      case OpKind::Shr:
      case OpKind::Slice:
        return shl(d, static_cast<unsigned>(n.attr0)) & opm;
      case OpKind::AShr: {
        const auto s = static_cast<unsigned>(n.attr0);
        std::uint64_t req = shl(d, s) & opm;
        if (s > 0 && shr(d, n.width - s) != 0) req |= 1ull << (n.width - 1);
        return req;
      }
      case OpKind::Concat: {
        const std::uint16_t wb = g.node(n.operands[1].src).width;
        return i == 0 ? shr(d, wb) & opm : d & fullMask(wb);
      }
      case OpKind::ZExt:
        return d & opm;
      case OpKind::SExt: {
        std::uint64_t req = d & opm;
        if (shr(d, wa) != 0) req |= 1ull << (wa - 1);
        return req;
      }

      case OpKind::Add:
      case OpKind::Sub:
        // Bit j needs operand bits <= j: a prefix up to the top demand.
        return d == 0 ? 0 : fullMask(std::bit_width(d)) & opm;

      case OpKind::Eq:
      case OpKind::Ne:
      case OpKind::Lt:
      case OpKind::Le:
      case OpKind::Gt:
      case OpKind::Ge:
        if ((d & 1) == 0) return 0;
        // Recognized sign tests collapse to the sign bit of operand 0
        // (mirrors cut::isSignTest without a cut-layer dependency).
        if (n.isSigned && (n.kind == OpKind::Lt || n.kind == OpKind::Ge) &&
            g.node(n.operands[1].src).kind == OpKind::Const &&
            g.node(n.operands[1].src).constValue == 0) {
          return i == 0 ? 1ull << (wa - 1) : 0;
        }
        return opm;

      case OpKind::Mux: {
        if (forLive && !isConstEdge(n.operands[0])) {
          return i == 0 ? (d != 0 ? 1 : 0) : d & opm;
        }
        const Val sel = readOperand(n.operands[0]);
        const bool selKnown = (sel.km & 1) != 0;
        if (i == 0) return (d != 0 && !selKnown) ? 1 : 0;
        if (!selKnown) return d & opm;
        const bool takesA = (sel.kv & 1) != 0;
        return (i == 1) == takesA ? d & opm : 0;
      }
    }
    return opm;
  }

  void run() {
    std::deque<NodeId> work;
    std::vector<bool> inList(g.size(), false);
    const auto push = [&](NodeId v) {
      if (!inList[v]) {
        work.push_back(v);
        inList[v] = true;
      }
    };
    for (NodeId v = 0; v < g.size(); ++v) {
      const OpKind k = g.node(v).kind;
      if (k == OpKind::Output) {
        demanded[v] = fullMask(g.node(v).width);
        live[v] = demanded[v];
      }
      if (k == OpKind::Output || k == OpKind::Store) push(v);
    }
    while (!work.empty()) {
      if (++visits > opts.maxVisits) {
        converged = false;
        break;
      }
      const NodeId v = work.front();
      work.pop_front();
      inList[v] = false;
      // Known output bits need no inputs: the LUT mask (or a fold)
      // supplies them, so demand only flows from the unknown bits. The
      // live mask skips that stripping — observers still *read* known
      // bits, and any rewrite that substitutes a whole value must keep
      // them, so liveness follows every observed bit to its sources.
      const std::uint64_t d = demanded[v] & ~fwd[v].km;
      const Node& n = g.node(v);
      for (std::size_t i = 0; i < n.operands.size(); ++i) {
        const NodeId u = n.operands[i].src;
        const std::uint64_t req = demanded[u] | operandDemand(v, i, d);
        if (req != demanded[u]) {
          demanded[u] = req;
          push(u);
        }
        const std::uint64_t liv =
            live[u] | operandDemand(v, i, live[v], /*forLive=*/true);
        if (liv != live[u]) {
          live[u] = liv;
          push(u);
        }
      }
    }
  }
};

}  // namespace

DataflowResult analyzeDataflow(const Graph& g, const DataflowOptions& opts) {
  obs::Span span("dataflow", "flow");
  Engine fwd(g, opts);
  fwd.runForward();
  Backward bwd(g, fwd.state, opts);
  bwd.run();

  DataflowResult r;
  r.forwardVisits = fwd.visits;
  r.backwardVisits = bwd.visits;
  span.endArgs(obs::traceArg("visits",
                             static_cast<double>(fwd.visits + bwd.visits)));
  r.converged = fwd.converged && bwd.converged;
  r.bits.resize(g.size());
  for (NodeId v = 0; v < g.size(); ++v) {
    const Val& s = fwd.state[v];
    r.bits[v] =
        NodeBits{s.km, s.kv, bwd.demanded[v], bwd.live[v], s.lo, s.hi};
  }
  return r;
}

ir::BitFacts toBitFacts(const DataflowResult& r) {
  ir::BitFacts f;
  f.knownMask.reserve(r.bits.size());
  for (const NodeBits& b : r.bits) {
    f.knownMask.push_back(b.knownMask);
    f.knownVal.push_back(b.knownVal);
    f.demanded.push_back(b.demanded);
    f.live.push_back(b.live);
    f.lo.push_back(b.lo);
    f.hi.push_back(b.hi);
  }
  return f;
}

namespace {

std::string hex64(std::uint64_t v) {
  char buf[19] = "0x";
  char* p = buf + 2;
  bool started = false;
  for (int s = 60; s >= 0; s -= 4) {
    const auto nib = static_cast<unsigned>((v >> s) & 0xF);
    if (!started && nib == 0 && s != 0) continue;
    started = true;
    *p++ = "0123456789abcdef"[nib];
  }
  return std::string(buf, p - buf);
}

bool parseHex64(const util::Json* j, std::uint64_t& out, std::string* error,
                const char* field) {
  if (j == nullptr || !j->isString() ||
      j->asString().rfind("0x", 0) != 0) {
    if (error) *error = std::string("analysis entry: missing hex ") + field;
    return false;
  }
  out = 0;
  const std::string& s = j->asString();
  if (s.size() < 3 || s.size() > 18) {
    if (error) *error = std::string("analysis entry: bad hex ") + field;
    return false;
  }
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    unsigned nib = 0;
    if (c >= '0' && c <= '9') nib = c - '0';
    else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
    else {
      if (error) *error = std::string("analysis entry: bad hex ") + field;
      return false;
    }
    out = (out << 4) | nib;
  }
  return true;
}

}  // namespace

util::Json dataflowToJson(const std::vector<NodeBits>& bits) {
  util::Json arr = util::Json::array();
  for (const NodeBits& b : bits) {
    util::Json j = util::Json::object();
    j.set("known", util::Json::string(hex64(b.knownMask)));
    j.set("val", util::Json::string(hex64(b.knownVal)));
    j.set("demanded", util::Json::string(hex64(b.demanded)));
    j.set("live", util::Json::string(hex64(b.live)));
    j.set("lo", util::Json::string(hex64(b.lo)));
    j.set("hi", util::Json::string(hex64(b.hi)));
    arr.push(std::move(j));
  }
  return arr;
}

bool dataflowFromJson(const util::Json& j, std::vector<NodeBits>& out,
                      std::string* error) {
  if (!j.isArray()) {
    if (error) *error = "analysis: expected an array";
    return false;
  }
  out.clear();
  out.reserve(j.size());
  for (std::size_t i = 0; i < j.size(); ++i) {
    const util::Json& e = j.at(i);
    if (!e.isObject()) {
      if (error) *error = "analysis entry: expected an object";
      return false;
    }
    NodeBits b;
    if (!parseHex64(e.find("known"), b.knownMask, error, "known") ||
        !parseHex64(e.find("val"), b.knownVal, error, "val") ||
        !parseHex64(e.find("demanded"), b.demanded, error, "demanded") ||
        !parseHex64(e.find("live"), b.live, error, "live") ||
        !parseHex64(e.find("lo"), b.lo, error, "lo") ||
        !parseHex64(e.find("hi"), b.hi, error, "hi")) {
      return false;
    }
    out.push_back(b);
  }
  return true;
}

}  // namespace lamp::analyze
