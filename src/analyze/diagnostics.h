#ifndef LAMP_ANALYZE_DIAGNOSTICS_H
#define LAMP_ANALYZE_DIAGNOSTICS_H

/// \file diagnostics.h
/// Structured diagnostics emitted by the pre-solve static analyses
/// (see analyze.h). Every diagnostic carries a stable code so that
/// clients — the service wire protocol, CLI --json output, tests —
/// can match on it without parsing prose. Codes are append-only:
///
///   LAMP001  clock-infeasible node (indivisible delay > tcpNs)
///   LAMP002  recurrence-bound minimum II (recMII) above requested II
///   LAMP003  resource-bound minimum II (resMII) above requested II
///   LAMP004  cone that can never be K-feasible (unabsorbable support > K)
///   LAMP005  dead node (unreachable from any Output/Store)
///   LAMP006  unused input
///   LAMP007  structural violation (ir::verifyAll)
///   LAMP008  constant-foldable island
///   LAMP009  graph has no observable sinks
///   LAMP010  dead output bits (high bits of a sink no producer can set)
///   LAMP011  truncation provably drops known-set bits
///   LAMP012  comparison with a range/bit-proven constant result
///   LAMP013  mux arm no select value can reach
///
/// Severity policy: Error means the MILP flow is provably doomed (or the
/// graph is malformed) and the solver must not run; Warning means the
/// request is suspect but the flow can proceed (possibly at a higher II);
/// Info is advisory (missed front-end optimization).

#include <string>
#include <string_view>
#include <vector>

#include "ir/graph.h"
#include "util/json.h"

namespace lamp::analyze {

enum class Severity : std::uint8_t { Info = 0, Warning = 1, Error = 2 };

/// "info" / "warning" / "error".
std::string_view severityName(Severity s);

/// Inverse of severityName(). Returns false on unknown names.
bool parseSeverity(std::string_view name, Severity& out);

// Stable diagnostic codes (see file comment for the table).
inline constexpr std::string_view kCodeClockInfeasible = "LAMP001";
inline constexpr std::string_view kCodeRecurrenceMii = "LAMP002";
inline constexpr std::string_view kCodeResourceMii = "LAMP003";
inline constexpr std::string_view kCodeUnmappableCone = "LAMP004";
inline constexpr std::string_view kCodeDeadNode = "LAMP005";
inline constexpr std::string_view kCodeUnusedInput = "LAMP006";
inline constexpr std::string_view kCodeStructural = "LAMP007";
inline constexpr std::string_view kCodeConstFoldable = "LAMP008";
inline constexpr std::string_view kCodeNoSinks = "LAMP009";
inline constexpr std::string_view kCodeDeadOutputBits = "LAMP010";
inline constexpr std::string_view kCodeOverflowTruncation = "LAMP011";
inline constexpr std::string_view kCodeConstantCompare = "LAMP012";
inline constexpr std::string_view kCodeDeadMuxArm = "LAMP013";

/// One structured finding. `nodes` lists the ids the finding is anchored
/// on (the binding recurrence cycle for LAMP002, the offending nodes for
/// everything else); it may be empty for graph-level findings (LAMP009).
struct Diagnostic {
  std::string code;
  Severity severity = Severity::Error;
  std::string message;
  std::vector<ir::NodeId> nodes;
  std::string hint;  ///< actionable suggestion; may be empty

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// {"code":..., "severity":..., "message":..., "nodes":[...], "hint":...}
/// `hint` is omitted when empty.
util::Json diagnosticToJson(const Diagnostic& d);

/// Inverse of diagnosticToJson(). Returns false and fills `error`
/// (when non-null) on shape violations.
bool diagnosticFromJson(const util::Json& j, Diagnostic& out,
                        std::string* error = nullptr);

/// Serializes a list of diagnostics as a JSON array (and back).
util::Json diagnosticsToJson(const std::vector<Diagnostic>& ds);
bool diagnosticsFromJson(const util::Json& j, std::vector<Diagnostic>& out,
                         std::string* error = nullptr);

/// Human-readable one-finding rendering, e.g.
///   error[LAMP001]: 1 operation slower than ...
///       nodes: 3 (mul 'm'), 7 (add)
///       hint: raise tcpNs ...
/// `g` is used to attach kind/name to node ids; pass the analyzed graph.
std::string renderDiagnostic(const ir::Graph& g, const Diagnostic& d);

}  // namespace lamp::analyze

#endif  // LAMP_ANALYZE_DIAGNOSTICS_H
