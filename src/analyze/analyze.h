#ifndef LAMP_ANALYZE_ANALYZE_H
#define LAMP_ANALYZE_ANALYZE_H

/// \file analyze.h
/// Pre-solve static analysis over CDFGs: a registry of cheap passes that
/// predict, in microseconds, whether the MILP of Eqs. 2-15 can possibly
/// succeed — and explain why not in structured form (diagnostics.h).
///
/// The passes check necessary conditions only: a clean report never
/// guarantees the solver succeeds, but an Error-severity finding proves
/// it cannot (at the requested clock/II), so callers — flow::runFlow and
/// the lampd service — fail fast instead of burning a solver deadline.
///
///  - structure:   ir::verifyAll violations (LAMP007) + missing sinks
///                 (LAMP009). Structural errors gate all later passes.
///  - clock:       nodes whose indivisible fabric delay (one LUT level,
///                 a carry chain) exceeds tcpNs; Eq. 8 has no solution
///                 for them. Black boxes are exempt: their multi-cycle
///                 latency is modeled by latencyCycles(). (LAMP001)
///  - recurrence:  recMII = min II admitted by every loop-carried cycle
///                 (Eq. 7 summed around a cycle gives
///                 II >= ceil(sum lat / sum dist)); found by binary
///                 search over Bellman-Ford positive-cycle detection,
///                 reporting the binding cycle. (LAMP002)
///  - resources:   resMII = ceil(#ops / limit) per resource class,
///                 Eq. 14's pigeonhole bound. (LAMP003)
///  - cones:       output bits with more than K *unabsorbable* dependence
///                 bits (inputs, black boxes, loop-carried operands) can
///                 never sit in a K-feasible cut, so MILP-map's cut cover
///                 (Eq. 4) is unsatisfiable for them. (LAMP004)
///  - liveness:    dead nodes / unused inputs. (LAMP005, LAMP006)
///  - fold:        constant islands a front-end should have folded.
///                 (LAMP008)
///  - dataflow:    bit-level findings from the known-bits/range/demanded
///                 fixpoint (dataflow.h): output bits provably zero
///                 (LAMP010), truncations that always drop set bits
///                 (LAMP011), comparisons with a proven constant result
///                 (LAMP012), and mux arms no select value reaches
///                 (LAMP013).

#include <span>
#include <string>
#include <vector>

#include "analyze/diagnostics.h"
#include "ir/graph.h"
#include "sched/delay_model.h"
#include "sched/schedule.h"

namespace lamp::analyze {

struct AnalysisOptions {
  /// Requested initiation interval.
  int ii = 1;
  /// Largest II the caller is prepared to fall back to. flow::runFlow
  /// retries II..II+8, so MII bounds inside (ii, maxIi] are Warnings
  /// (the flow will bump II) while bounds above maxIi are Errors.
  int maxIi = 1;
  /// Target clock period (ns).
  double tcpNs = 10.0;
  /// Cut input cap K for the cone-sanity pass.
  int k = 4;
  /// True when the flow will run mapping-aware (MilpMap): unmappable
  /// cones are then Errors; otherwise they only warn.
  bool mappingAware = true;
  sched::DelayModel delays;
  sched::ResourceLimits resources;
};

struct AnalysisReport {
  std::vector<Diagnostic> diagnostics;
  /// Recurrence-bound minimum II (1 when no loop-carried cycle binds).
  int recMii = 1;
  /// Resource-bound minimum II.
  int resMii = 1;
  /// False when ir::verifyAll found violations; later passes are then
  /// skipped (their preconditions do not hold on a malformed graph).
  bool structurallyValid = true;

  bool hasErrors() const;
  std::size_t count(Severity s) const;
};

/// One registered pass. `codes` lists the diagnostic codes it may emit.
struct Pass {
  std::string_view name;
  std::string_view codes;
  std::string_view summary;
  void (*run)(const ir::Graph& g, const AnalysisOptions& opts,
              AnalysisReport& report);
};

/// The registry, in execution order. The "structure" pass always runs
/// first; the rest are skipped when it invalidates the graph.
std::span<const Pass> passRegistry();

/// Runs every applicable pass and returns the combined report.
AnalysisReport analyzeGraph(const ir::Graph& g, const AnalysisOptions& opts);

/// The recurrence bound alone: minimum II admitted by every loop-carried
/// cycle under `dm`/`tcpNs` latencies, plus the node list of a binding
/// cycle (empty when recMii == 1). Exposed for tests and tools; equals
/// the recMII the "recurrence" pass reports.
struct Recurrence {
  int recMii = 1;
  std::vector<ir::NodeId> cycle;
};
Recurrence recurrenceMii(const ir::Graph& g, const sched::DelayModel& dm,
                         double tcpNs);

/// The resource bound alone: max over classes of ceil(#ops / limit).
int resourceMii(const ir::Graph& g, const sched::ResourceLimits& limits);

/// "; "-joined messages of all Error diagnostics ("" when none).
std::string summarizeErrors(const AnalysisReport& report);

/// Multi-line human-readable report (used by lampc --analyze/lamp-lint).
std::string renderReport(const ir::Graph& g, const AnalysisReport& report);

/// Machine-readable report (lampc --analyze --json / lamp-lint --json):
/// {"graph":..., "nodes":..., "recMii":..., "resMii":..., "errors":N,
///  "warnings":N, "infos":N, "diagnostics":[...]}
util::Json reportToJson(const ir::Graph& g, const AnalysisReport& report);

}  // namespace lamp::analyze

#endif  // LAMP_ANALYZE_ANALYZE_H
