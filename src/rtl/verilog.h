#ifndef LAMP_RTL_VERILOG_H
#define LAMP_RTL_VERILOG_H

/// \file verilog.h
/// Verilog-2001 emission of a scheduled pipeline — the artifact the
/// paper's flow hands to Vivado. The module streams one iteration per II
/// clocks: combinational logic per pipeline stage, shift-register chains
/// for values that live across cycles (including loop-carried state), a
/// valid chain, and simple synchronous memories for Load/Store classes.

#include <iosfwd>
#include <string>

#include "sched/schedule.h"

namespace lamp::rtl {

struct VerilogOptions {
  std::string moduleName;      ///< default: graph name, sanitized
  bool emitValidChain = true;  ///< valid_in -> valid_out pipeline
  int memoryDepth = 1024;      ///< words per Load/Store resource class
};

/// Emits the scheduled design. The schedule must have passed
/// validateSchedule; node start times within a cycle do not affect the
/// netlist (combinational chaining is implicit in the wiring).
void emitVerilog(std::ostream& os, const ir::Graph& g,
                 const sched::Schedule& s, const sched::DelayModel& dm,
                 const VerilogOptions& opts = {});

/// Identifier-safe name for a node ("n12_acc").
std::string signalName(const ir::Graph& g, ir::NodeId id);

}  // namespace lamp::rtl

#endif  // LAMP_RTL_VERILOG_H
