#include "rtl/verilog.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "ir/passes.h"

namespace lamp::rtl {

using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;
using sched::DelayModel;
using sched::Schedule;

namespace {

std::string sanitize(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "m_" + out;
  }
  return out;
}

/// Emission context: per-node ready cycle and register-chain depth.
struct Emitter {
  const Graph& g;
  const Schedule& s;
  const DelayModel& dm;
  const VerilogOptions& opts;
  std::ostream& os;
  std::vector<int> ready;      // cycle a node's value appears
  std::vector<int> chainLen;   // register stages carried behind each value

  int readyCycle(NodeId v) const { return ready[v]; }

  /// Signal carrying node u's value as read by a consumer scheduled at
  /// `useCycle` in the producer's iteration frame.
  std::string ref(NodeId u, int useCycle) const {
    const Node& n = g.node(u);
    if (n.kind == OpKind::Const) {
      // Constants inline even on loop-carried (dist > 0) edges. The
      // simulators model a 0 reset during pipeline fill; the RTL leaves
      // fill cycles undefined (the _d chains below are unreset too) and
      // relies on the valid chain to gate them, so inlining is within
      // the same startup convention.
      std::ostringstream c;
      c << n.width << "'d" << n.constValue;
      return c.str();
    }
    const int delay = useCycle - ready[u];
    if (delay <= 0) return signalName(g, u);
    return signalName(g, u) + "_d" + std::to_string(delay);
  }

  std::string opnd(NodeId v, std::size_t i) const {
    const Edge& e = g.node(v).operands[i];
    return ref(e.src, s.cycle[v] + static_cast<int>(e.dist) * s.ii);
  }

  std::string expr(NodeId v) const {
    const Node& n = g.node(v);
    std::ostringstream e;
    switch (n.kind) {
      case OpKind::And: e << opnd(v, 0) << " & " << opnd(v, 1); break;
      case OpKind::Or: e << opnd(v, 0) << " | " << opnd(v, 1); break;
      case OpKind::Xor: e << opnd(v, 0) << " ^ " << opnd(v, 1); break;
      case OpKind::Not: e << "~" << opnd(v, 0); break;
      case OpKind::Shl: e << opnd(v, 0) << " << " << n.attr0; break;
      case OpKind::Shr: e << opnd(v, 0) << " >> " << n.attr0; break;
      case OpKind::AShr:
        e << "$signed(" << opnd(v, 0) << ") >>> " << n.attr0;
        break;
      case OpKind::Slice:
        e << opnd(v, 0) << "[" << (n.attr0 + n.width - 1) << ":" << n.attr0
          << "]";
        break;
      case OpKind::Concat:
        e << "{" << opnd(v, 0) << ", " << opnd(v, 1) << "}";
        break;
      case OpKind::ZExt:
        e << "{{" << (n.width - g.node(n.operands[0].src).width) << "{1'b0}}, "
          << opnd(v, 0) << "}";
        break;
      case OpKind::SExt: {
        const int sw = g.node(n.operands[0].src).width;
        e << "{{" << (n.width - sw) << "{" << opnd(v, 0) << "[" << (sw - 1)
          << "]}}, " << opnd(v, 0) << "}";
        break;
      }
      case OpKind::Add: e << opnd(v, 0) << " + " << opnd(v, 1); break;
      case OpKind::Sub: e << opnd(v, 0) << " - " << opnd(v, 1); break;
      case OpKind::Eq: e << opnd(v, 0) << " == " << opnd(v, 1); break;
      case OpKind::Ne: e << opnd(v, 0) << " != " << opnd(v, 1); break;
      case OpKind::Lt:
      case OpKind::Le:
      case OpKind::Gt:
      case OpKind::Ge: {
        const char* rel = n.kind == OpKind::Lt   ? " < "
                          : n.kind == OpKind::Le ? " <= "
                          : n.kind == OpKind::Gt ? " > "
                                                 : " >= ";
        if (n.isSigned) {
          e << "$signed(" << opnd(v, 0) << ")" << rel << "$signed("
            << opnd(v, 1) << ")";
        } else {
          e << opnd(v, 0) << rel << opnd(v, 1);
        }
        break;
      }
      case OpKind::Mux:
        e << opnd(v, 0) << " ? " << opnd(v, 1) << " : " << opnd(v, 2);
        break;
      case OpKind::Mul: e << opnd(v, 0) << " * " << opnd(v, 1); break;
      default: e << "/* unsupported */ 0"; break;
    }
    return e.str();
  }
};

std::string range(int width) {
  return "[" + std::to_string(width - 1) + ":0] ";
}

}  // namespace

std::string signalName(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  std::string base = "n" + std::to_string(id);
  if (!n.name.empty()) base += "_" + sanitize(n.name);
  return base;
}

void emitVerilog(std::ostream& os, const Graph& g, const Schedule& s,
                 const DelayModel& dm, const VerilogOptions& opts) {
  Emitter em{g, s, dm, opts, os, {}, {}};
  em.ready.assign(g.size(), 0);
  em.chainLen.assign(g.size(), 0);
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const) continue;
    em.ready[v] = (n.kind == OpKind::Input ? 0 : s.cycle[v]) +
                  dm.latencyCycles(g, v, s.tcpNs);
  }
  // Register chains: longest use delay per producer.
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const) continue;
    for (const Edge& e : n.operands) {
      if (g.node(e.src).kind == OpKind::Const) continue;
      const int use = s.cycle[v] + static_cast<int>(e.dist) * s.ii;
      em.chainLen[e.src] =
          std::max(em.chainLen[e.src], use - em.ready[e.src]);
    }
  }

  const int latency = s.latency(g);
  const std::string name =
      opts.moduleName.empty() ? sanitize(g.name()) : opts.moduleName;

  // --- header ---------------------------------------------------------------
  os << "// Generated by lamp (mapping-aware modulo scheduling).\n"
     << "// II = " << s.ii << ", Tcp = " << s.tcpNs
     << " ns, pipeline latency = " << latency << " cycles.\n"
     << "module " << name << " (\n  input wire clk,\n  input wire rst";
  if (opts.emitValidChain) os << ",\n  input wire valid_in";
  for (const NodeId in : g.inputs()) {
    os << ",\n  input wire " << range(g.node(in).width) << signalName(g, in);
  }
  if (opts.emitValidChain) os << ",\n  output wire valid_out";
  for (const NodeId out : g.outputs()) {
    os << ",\n  output wire " << range(g.node(out).width)
       << signalName(g, out);
  }
  os << "\n);\n\n";

  // --- valid chain ------------------------------------------------------------
  if (opts.emitValidChain) {
    if (latency == 0) {
      os << "  assign valid_out = valid_in;\n\n";
    } else {
      os << "  reg [" << (latency - 1) << ":0] valid_sr;\n"
         << "  always @(posedge clk) begin\n"
         << "    if (rst) valid_sr <= 0;\n"
         << "    else valid_sr <= {valid_sr, valid_in};\n"
         << "  end\n"
         << "  assign valid_out = valid_sr[" << (latency - 1) << "];\n\n";
    }
  }

  // --- memories ----------------------------------------------------------------
  std::set<int> memClasses;
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Load || n.kind == OpKind::Store) {
      memClasses.insert(n.attr0);
    }
  }
  for (const int rc : memClasses) {
    os << "  reg [63:0] mem_rc" << rc << " [0:" << (opts.memoryDepth - 1)
       << "];\n";
  }
  if (!memClasses.empty()) os << "\n";

  // --- combinational logic + pipeline registers --------------------------------
  for (const NodeId v : ir::topologicalOrder(g)) {
    const Node& n = g.node(v);
    switch (n.kind) {
      case OpKind::Const:
      case OpKind::Input:
        break;
      case OpKind::Output:
        os << "  assign " << signalName(g, v) << " = " << em.opnd(v, 0)
           << ";\n";
        break;
      case OpKind::Store:
        os << "  always @(posedge clk) begin\n"
           << "    if (!rst) mem_rc" << n.attr0 << "[" << em.opnd(v, 0)
           << "] <= " << em.opnd(v, 1) << ";\n  end\n";
        break;
      case OpKind::Load: {
        // Synchronous read when the op carries a full-cycle latency,
        // combinational ROM read otherwise.
        const int lat = dm.latencyCycles(g, v, s.tcpNs);
        if (lat > 0) {
          os << "  reg " << range(n.width) << signalName(g, v) << ";\n"
             << "  always @(posedge clk) " << signalName(g, v) << " <= mem_rc"
             << n.attr0 << "[" << em.opnd(v, 0) << "];\n";
        } else {
          os << "  wire " << range(n.width) << signalName(g, v) << " = mem_rc"
             << n.attr0 << "[" << em.opnd(v, 0) << "];\n";
        }
        break;
      }
      case OpKind::Mul: {
        const int lat = dm.latencyCycles(g, v, s.tcpNs);
        if (lat > 0) {
          os << "  reg " << range(n.width) << signalName(g, v)
             << ";  // DSP, " << lat << " register stage(s)\n";
          std::string prev = em.expr(v);
          for (int k = 1; k < lat; ++k) {
            os << "  reg " << range(n.width) << signalName(g, v) << "_p" << k
               << ";\n  always @(posedge clk) " << signalName(g, v) << "_p"
               << k << " <= " << prev << ";\n";
            prev = signalName(g, v) + "_p" + std::to_string(k);
          }
          os << "  always @(posedge clk) " << signalName(g, v)
             << " <= " << prev << ";\n";
        } else {
          os << "  wire " << range(n.width) << signalName(g, v) << " = "
             << em.expr(v) << ";\n";
        }
        break;
      }
      default:
        os << "  wire " << range(n.width) << signalName(g, v) << " = "
           << em.expr(v) << ";\n";
        break;
    }
    // Shift-register chain for values consumed in later cycles.
    if (n.width > 0 && n.kind != OpKind::Output && n.kind != OpKind::Store) {
      for (int k = 1; k <= em.chainLen[v]; ++k) {
        os << "  reg " << range(n.width) << signalName(g, v) << "_d" << k
           << ";\n  always @(posedge clk) " << signalName(g, v) << "_d" << k
           << " <= "
           << (k == 1 ? signalName(g, v)
                      : signalName(g, v) + "_d" + std::to_string(k - 1))
           << ";\n";
      }
    }
  }

  os << "\nendmodule\n";
}

}  // namespace lamp::rtl
