#ifndef LAMP_MAP_AREA_H
#define LAMP_MAP_AREA_H

/// \file area.h
/// Downstream implementation evaluator — the stand-in for Vivado's
/// synthesis + P&R in the paper's experiments. Given a validated modulo
/// schedule, it:
///
///  1. decides which values materialize (registered stage outputs):
///     anything consumed in a later absolute cycle, consumed by a
///     black-box port / primary output, or produced by a black box;
///  2. counts flip-flops exactly from value lifetimes (bits x cycles),
///     which is independent of LUT mapping;
///  3. re-maps each pipeline stage's logic with a timing-constrained,
///     area-oriented cut cover (area-flow selection over stage-local cut
///     enumeration) honoring the register boundaries the schedule chose —
///     exactly the freedom downstream tools have: they may repack logic
///     within a stage but can never move a register;
///  4. reports the achieved critical path over all stages.
///
/// Because the same evaluator runs on every flow's schedule (HLS-tool,
/// MILP-base, MILP-map), relative CP/LUT/FF comparisons are meaningful.

#include <string>
#include <vector>

#include "cut/cut.h"
#include "ir/graph.h"
#include "sched/schedule.h"

namespace lamp::map {

struct AreaOptions {
  cut::CutEnumOptions cuts;  ///< stage-local enumeration parameters
};

struct AreaReport {
  int luts = 0;      ///< total LUTs after per-stage remapping
  int ffs = 0;       ///< pipeline register bits
  double cpNs = 0.0; ///< achieved critical path
  int latency = 0;   ///< pipeline depth in cycles
  int stages = 0;    ///< latency + 1
  int materializedValues = 0;
  /// Per-stage LUT counts and critical paths (diagnostics).
  std::vector<int> lutsPerStage;
  std::vector<double> cpPerStage;
  std::string warning;  ///< non-empty if the mapper had to degrade
};

/// Evaluates a schedule. The schedule must have passed validateSchedule.
AreaReport evaluate(const ir::Graph& g, const sched::Schedule& s,
                    const sched::DelayModel& dm, const AreaOptions& opts = {});

/// Register bits implied by the schedule's lifetimes alone (the FF part of
/// evaluate(), exposed for tests and the MILP cross-check).
int countRegisterBits(const ir::Graph& g, const sched::Schedule& s,
                      const sched::DelayModel& dm);

/// Vivado-timing-summary-style text: one line per pipeline stage with
/// LUTs, critical path and slack against the clock target.
std::string timingSummary(const AreaReport& rep, double tcpNs);

}  // namespace lamp::map

#endif  // LAMP_MAP_AREA_H
