#include "map/area.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <set>

#include "ir/passes.h"

namespace lamp::map {

using cut::Cut;
using cut::CutDatabase;
using cut::CutElement;
using ir::Edge;
using ir::Graph;
using ir::Node;
using ir::NodeId;
using ir::OpKind;
using sched::DelayModel;
using sched::Schedule;

namespace {

bool isValueNode(const Node& n) {
  return n.kind != OpKind::Output && n.kind != OpKind::Store &&
         n.kind != OpKind::Const;
}

/// Cycle at which a node's value becomes available.
int readyCycle(const Graph& g, const Schedule& s, const DelayModel& dm,
               NodeId v) {
  if (g.node(v).kind == OpKind::Input) return 0;
  return s.cycle[v] + dm.latencyCycles(g, v, s.tcpNs);
}

/// ns offset within the ready cycle at which the value is stable.
double readyNs(const Graph& g, const Schedule& s, const DelayModel& dm,
               NodeId v) {
  const Node& n = g.node(v);
  if (n.kind == OpKind::Input || n.kind == OpKind::Const) return 0.0;
  return s.startNs[v] + dm.remainderNs(g, v, s.tcpNs);
}

/// Which values must exist as physical nets (registered or port-visible).
std::vector<bool> computeMaterialized(const Graph& g, const Schedule& s,
                                      const DelayModel& dm) {
  std::vector<bool> mat(g.size(), false);
  for (NodeId v = 0; v < g.size(); ++v) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Const) continue;
    const bool portConsumer =
        n.kind == OpKind::Output || ir::isBlackBox(n.kind);
    for (const Edge& e : n.operands) {
      const Node& u = g.node(e.src);
      if (u.kind == OpKind::Const) continue;
      if (u.kind == OpKind::Input) continue;  // inputs are ports already
      const int useCycle = s.cycle[v] + static_cast<int>(e.dist) * s.ii;
      if (portConsumer || useCycle > readyCycle(g, s, dm, e.src)) {
        mat[e.src] = true;
      }
    }
    if (ir::isBlackBox(n.kind) && n.width > 0) mat[v] = true;
  }
  return mat;
}

/// Stage-local netlist: a copy of the logic cone of one pipeline stage
/// with boundary values turned into Input nodes.
struct StageNetlist {
  Graph graph{"stage"};
  std::vector<NodeId> toOriginal;           // stage id -> original id
  std::map<std::uint64_t, NodeId> boundary; // (orig,dist) -> stage input id
  std::vector<NodeId> required;             // stage ids of required roots
  std::vector<double> inputArrival;         // per stage node (inputs only)
};

std::uint64_t bkey(NodeId id, std::uint32_t dist) {
  return (static_cast<std::uint64_t>(id) << 16) | dist;
}

/// Builds the netlist for stage `t`.
StageNetlist buildStage(const Graph& g, const Schedule& s,
                        const DelayModel& dm, const std::vector<bool>& mat,
                        int t, const std::vector<NodeId>& targets) {
  StageNetlist sn;
  std::map<NodeId, NodeId> localOf;  // internal original -> stage id

  // Recursive clone; returns the stage id producing (orig, dist)'s value.
  auto clone = [&](auto&& self, NodeId orig, std::uint32_t dist) -> NodeId {
    const Node& n = g.node(orig);
    // A (value, dist) reference is a stage boundary when it is an input/
    // black-box port, crosses a register (ready before this stage in the
    // consumer's iteration frame), or arrives over a loop-carried edge.
    const bool boundary =
        n.kind == OpKind::Input || ir::isBlackBox(n.kind) ||
        (mat[orig] &&
         readyCycle(g, s, dm, orig) - static_cast<int>(dist) * s.ii < t) ||
        dist > 0;
    if (n.kind == OpKind::Const) {
      // Clone constants per stage (cheap, keeps cuts well-formed).
      const auto it = localOf.find(orig);
      if (it != localOf.end()) return it->second;
      Node c = n;
      c.operands.clear();
      const NodeId sid = sn.graph.add(std::move(c));
      sn.toOriginal.push_back(orig);
      sn.inputArrival.push_back(0.0);
      localOf[orig] = sid;
      return sid;
    }
    if (boundary) {
      const auto key = bkey(orig, dist);
      const auto it = sn.boundary.find(key);
      if (it != sn.boundary.end()) return it->second;
      Node in;
      in.kind = OpKind::Input;
      in.width = n.width;
      in.name = "b" + std::to_string(orig) + "_" + std::to_string(dist);
      const NodeId sid = sn.graph.add(std::move(in));
      sn.toOriginal.push_back(orig);
      // Same-clock combinational boundary (black box finishing this cycle,
      // or a cross-stage chain): arrives at its schedule finish time.
      const int avail =
          readyCycle(g, s, dm, orig) - static_cast<int>(dist) * s.ii;
      sn.inputArrival.push_back(avail == t ? readyNs(g, s, dm, orig) : 0.0);
      sn.boundary[key] = sid;
      return sid;
    }
    // Internal logic node of this stage.
    const auto it = localOf.find(orig);
    if (it != localOf.end()) return it->second;
    Node copy = n;
    copy.operands.clear();
    for (const Edge& e : n.operands) {
      const NodeId src = self(self, e.src, e.dist);
      copy.operands.push_back(Edge{src, 0});
    }
    const NodeId sid = sn.graph.add(std::move(copy));
    sn.toOriginal.push_back(orig);
    sn.inputArrival.push_back(0.0);
    localOf[orig] = sid;
    return sid;
  };

  for (const NodeId v : targets) {
    sn.required.push_back(clone(clone, v, 0));
  }
  return sn;
}

/// Area-flow cover of a stage netlist. Returns LUTs used and the stage's
/// maximum arrival time; appends to `warning` on timing degradation.
struct CoverResult {
  int luts = 0;
  double arrivalMax = 0.0;
};

CoverResult coverStage(const StageNetlist& sn, const DelayModel& dm,
                       double tcpNs, const cut::CutEnumOptions& cutOpts,
                       std::string& warning) {
  CoverResult res;
  const Graph& g = sn.graph;
  const CutDatabase db = cut::enumerateCuts(g, cutOpts);
  const auto order = ir::topologicalOrder(g);
  const auto& fanouts = g.fanouts();

  // Optimal arrival labels (FlowMap-style) and area flow.
  std::vector<double> label(g.size(), 0.0), aflow(g.size(), 0.0);
  std::vector<int> bestDelayCut(g.size(), -1);
  for (const NodeId v : order) {
    const Node& n = g.node(v);
    if (n.kind == OpKind::Input) {
      label[v] = sn.inputArrival[v];
      continue;
    }
    if (n.kind == OpKind::Const) continue;
    const double dRoot = dm.rootDelay(g, v);
    double bestLab = 1e30, bestAf = 1e30;
    for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
      const Cut& c = db.at(v).cuts[i];
      double arr = 0.0, af = c.lutCost;
      for (const CutElement& e : c.elements) {
        arr = std::max(arr, label[e.node]);
        const double share =
            std::max<std::size_t>(1, fanouts[e.node].size());
        af += aflow[e.node] / static_cast<double>(share);
      }
      const double myDelay =
          c.kind == cut::CutKind::Lut
              ? (c.lutCost > 0 ? dm.lutDelayNs : 0.0)
              : dRoot;
      if (arr + myDelay < bestLab - 1e-12) {
        bestLab = arr + myDelay;
        bestDelayCut[v] = static_cast<int>(i);
      }
      bestAf = std::min(bestAf, af);
    }
    label[v] = bestLab;
    aflow[v] = bestAf;
  }

  // Extraction: required roots pick the cheapest cut meeting their
  // required time (Tcp, or the optimal label when even that exceeds Tcp).
  std::vector<bool> chosen(g.size(), false);
  std::vector<double> arrival(g.size(), 0.0);
  std::vector<NodeId> work = sn.required;
  std::vector<int> pickOf(g.size(), -1);
  while (!work.empty()) {
    const NodeId v = work.back();
    work.pop_back();
    if (chosen[v]) continue;
    const Node& n = g.node(v);
    if (n.kind == OpKind::Input || n.kind == OpKind::Const) continue;
    chosen[v] = true;
    const double requiredNs = std::max(tcpNs, label[v] + 1e-9);
    double bestScore = 1e30;
    int best = -1;
    for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
      const Cut& c = db.at(v).cuts[i];
      double arr = 0.0, score = c.lutCost;
      for (const CutElement& e : c.elements) {
        arr = std::max(arr, label[e.node]);
        if (!chosen[e.node]) score += aflow[e.node];
      }
      const double myDelay = c.kind == cut::CutKind::Lut
                                 ? (c.lutCost > 0 ? dm.lutDelayNs : 0.0)
                                 : dm.rootDelay(g, v);
      if (arr + myDelay > requiredNs) continue;
      if (score < bestScore - 1e-12) {
        bestScore = score;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) best = bestDelayCut[v];
    if (best < 0) {
      warning += "uncoverable node in stage; ";
      continue;
    }
    pickOf[v] = best;
    for (const CutElement& e : db.at(v).cuts[best].elements) {
      if (!chosen[e.node]) work.push_back(e.node);
    }
  }

  // Cost + exact arrival of the chosen cover, in topological order.
  for (const NodeId v : order) {
    if (pickOf[v] < 0) {
      if (g.node(v).kind == OpKind::Input) arrival[v] = sn.inputArrival[v];
      continue;
    }
    const Cut& c = db.at(v).cuts[pickOf[v]];
    res.luts += c.lutCost;
    double arr = 0.0;
    for (const CutElement& e : c.elements) arr = std::max(arr, arrival[e.node]);
    const double myDelay = c.kind == cut::CutKind::Lut
                               ? (c.lutCost > 0 ? dm.lutDelayNs : 0.0)
                               : dm.rootDelay(g, v);
    arrival[v] = arr + myDelay;
    res.arrivalMax = std::max(res.arrivalMax, arrival[v]);
  }
  return res;
}

}  // namespace

int countRegisterBits(const Graph& g, const Schedule& s,
                      const DelayModel& dm) {
  int bits = 0;
  for (NodeId u = 0; u < g.size(); ++u) {
    // Held inputs cost registers too, so Input nodes are included here.
    const Node& n = g.node(u);
    if (!isValueNode(n) || n.width == 0) continue;
    int lastUse = readyCycle(g, s, dm, u);
    for (const auto& f : g.fanouts()[u]) {
      const Edge& e = g.node(f.dst).operands[f.operandIndex];
      if (g.node(f.dst).kind == OpKind::Const) continue;
      lastUse = std::max(lastUse,
                         s.cycle[f.dst] + static_cast<int>(e.dist) * s.ii);
    }
    bits += n.width * (lastUse - readyCycle(g, s, dm, u));
  }
  return bits;
}

AreaReport evaluate(const Graph& g, const Schedule& s, const DelayModel& dm,
                    const AreaOptions& opts) {
  AreaReport rep;
  rep.latency = s.latency(g);
  rep.stages = rep.latency + 1;
  rep.ffs = countRegisterBits(g, s, dm);

  const std::vector<bool> mat = computeMaterialized(g, s, dm);
  for (NodeId v = 0; v < g.size(); ++v) {
    if (mat[v]) ++rep.materializedValues;
  }

  rep.lutsPerStage.assign(rep.stages, 0);
  for (int t = 0; t < rep.stages; ++t) {
    std::vector<NodeId> targets;
    for (NodeId v = 0; v < g.size(); ++v) {
      const Node& n = g.node(v);
      if (!mat[v] || !ir::isLutMappable(n.kind)) continue;
      if (readyCycle(g, s, dm, v) == t) targets.push_back(v);
    }
    double stageArr = 0.0;
    if (!targets.empty()) {
      const StageNetlist sn = buildStage(g, s, dm, mat, t, targets);
      const CoverResult cr =
          coverStage(sn, dm, s.tcpNs, opts.cuts, rep.warning);
      rep.lutsPerStage[t] = cr.luts;
      rep.luts += cr.luts;
      stageArr = cr.arrivalMax;
    }
    // Black boxes finishing in this cycle extend the stage's critical path.
    for (NodeId v = 0; v < g.size(); ++v) {
      const Node& n = g.node(v);
      if (!ir::isBlackBox(n.kind) || s.cycle[v] == sched::kUnscheduled) {
        continue;
      }
      if (readyCycle(g, s, dm, v) == t) {
        stageArr = std::max(stageArr, readyNs(g, s, dm, v));
      }
    }
    rep.cpPerStage.push_back(stageArr);
    rep.cpNs = std::max(rep.cpNs, stageArr);
  }
  return rep;
}

std::string timingSummary(const AreaReport& rep, double tcpNs) {
  std::ostringstream os;
  os << "Timing summary (target " << tcpNs << " ns, achieved " << rep.cpNs
     << " ns, " << rep.stages << " stage(s), " << rep.luts << " LUTs, "
     << rep.ffs << " FFs)\n";
  for (int t = 0; t < rep.stages; ++t) {
    const double cp =
        t < static_cast<int>(rep.cpPerStage.size()) ? rep.cpPerStage[t] : 0.0;
    const double slack = tcpNs - cp;
    os << "  stage " << t << ": "
       << (t < static_cast<int>(rep.lutsPerStage.size())
               ? rep.lutsPerStage[t]
               : 0)
       << " LUTs, cp " << cp << " ns, slack " << slack << " ns"
       << (slack < 0 ? "  (VIOLATED)" : "") << "\n";
  }
  if (!rep.warning.empty()) os << "  warning: " << rep.warning << "\n";
  return os.str();
}

}  // namespace lamp::map
