#ifndef LAMP_FLOW_FLOW_H
#define LAMP_FLOW_FLOW_H

/// \file flow.h
/// End-to-end experimental flows, one per Table 1 row group:
///
///  - HLS Tool   : SDC heuristic modulo scheduling (additive delays),
///  - MILP-base  : exact MILP over trivial cuts (mapping-agnostic),
///  - MILP-map   : exact MILP over enumerated cuts (mapping-aware),
///
/// each followed by the same downstream evaluator (per-stage remapping,
/// FF counting, achieved CP) and, optionally, functional verification of
/// the schedule against the untimed interpreter.

#include <optional>
#include <string>

#include "analyze/analyze.h"
#include "analyze/dataflow.h"
#include "cut/cut.h"
#include "map/area.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"
#include "workloads/workloads.h"

namespace lamp::flow {

enum class Method { HlsTool, MilpBase, MilpMap };

std::string_view methodName(Method m);

/// Short machine token ("hls" | "base" | "map") used by the CLI, the
/// service protocol and cache keys.
std::string_view methodToken(Method m);

/// Parses a methodToken() string; returns false on unknown input.
bool parseMethodToken(std::string_view token, Method& out);

struct FlowOptions {
  int ii = 1;
  double tcpNs = 10.0;
  double alpha = 0.5;
  double beta = 0.5;
  /// Wall-clock cap for the MILP solver (the paper used 60 minutes; the
  /// default here keeps the full Table 1 run laptop-scale).
  double solverTimeLimitSeconds = 20.0;
  /// Extra pipeline-latency slack on top of the SDC schedule's latency.
  int latencyMargin = 1;
  cut::CutEnumOptions cuts;
  /// Race every cut-ranking strategy for the mapping-aware arm: one
  /// enumeration per strategy, each scored by its greedy mapping-aware
  /// covering's cost (alpha * LUTs + beta * register bits), keeping the
  /// cheapest database (Mapping-Fusion style). Ties keep the earliest
  /// strategy in cut::allCutStrategies() order — DepthAware first — so
  /// racing never changes a result unless another strategy strictly
  /// wins. The winner is reported in FlowResult::cutStrategy.
  bool raceCutStrategies = false;
  sched::DelayModel delays;
  /// Verify each schedule functionally against the interpreter using
  /// this many random input frames (0 disables).
  int verifyFrames = 8;
  std::uint32_t verifySeed = 1;
  /// Branch & bound worker threads per MILP solve
  /// (lp::MilpOptions::threads; 0 = auto). Defaults to serial so
  /// experiment flows stay reproducible run to run; lampc --threads and
  /// the LAMP_THREADS bench knob opt in to the parallel solver.
  int solverThreads = 1;
  /// Optional externally supplied incumbent for the MILP arms — the
  /// lampd solution cache passes a previously solved schedule of the
  /// same graph here (near-miss reuse: same instance at a looser clock
  /// target or a different solver time limit). The schedule must index
  /// this graph's nodes and is only adopted when it validates against
  /// the request's constraints and beats the heuristic warm start; its
  /// selectedCut entries are interpreted against the cut database the
  /// chosen method enumerates (deterministic, so indices from an earlier
  /// identical enumeration stay valid). Must outlive the runFlow call.
  const sched::Schedule* warmStartHint = nullptr;
  /// Rewrite the graph with analysis-proven simplifications before
  /// scheduling (constant cones folded, identity ops forwarded,
  /// provably-narrow arithmetic narrowed). The rewrite is checked
  /// against the original by differential simulation; a divergence
  /// fails the flow instead of scheduling a wrong graph. The result's
  /// schedule then indexes FlowResult::simplifiedGraph, not the input
  /// benchmark's graph.
  bool simplify = false;
  /// Attach the per-node bit-level dataflow summary (known bits, range,
  /// demanded bits) of the scheduled graph to FlowResult::analysis.
  bool emitAnalysis = false;
  /// Turn on the obs span tracer for this run (equivalent to setting
  /// LAMP_TRACE=1 before startup; see obs/trace.h). Deliberately not
  /// part of the service cache key — telemetry must never change what
  /// gets solved.
  bool trace = false;
};

/// Wall-clock seconds per flow phase, accumulated across the II retry
/// window (a retried phase counts every attempt). The legacy
/// FlowResult::buildSeconds/solveSeconds scalars are sums over these:
/// buildSeconds = analyze + dataflow + simplify + cutEnum + milpBuild,
/// solveSeconds = milpSolve.
struct PhaseSeconds {
  double analyze = 0.0;   ///< pre-solve static analysis gate
  double dataflow = 0.0;  ///< bit-level dataflow fixpoint
  double simplify = 0.0;  ///< graph rewrite + differential check
  double cutEnum = 0.0;   ///< cut enumeration (trivial or mapping-aware)
  double milpBuild = 0.0; ///< MILP model construction
  double milpSolve = 0.0; ///< branch & bound
  double validate = 0.0;  ///< schedule validation
  double verify = 0.0;    ///< functional verification vs the interpreter
};

struct FlowResult {
  bool success = false;
  /// Accumulated diagnostics, "; "-separated: downstream failures
  /// (validation, functional verification) append to — never overwrite —
  /// earlier solver diagnostics, and the schedule that triggered them
  /// stays populated so callers can surface both.
  std::string error;
  Method method = Method::HlsTool;

  sched::Schedule schedule;
  map::AreaReport area;

  // Solver statistics (zero for the heuristic flow).
  lp::SolveStatus status = lp::SolveStatus::Optimal;
  /// Back-compat sums over `phases` (see PhaseSeconds): solveSeconds is
  /// the B&B time, buildSeconds everything upstream of it.
  double solveSeconds = 0.0;
  double buildSeconds = 0.0;
  /// Per-phase timing breakdown (rides the JSON serializers, so cached
  /// daemon hits replay it unchanged).
  PhaseSeconds phases;
  std::int64_t branchNodes = 0;
  std::size_t numVars = 0;
  std::size_t numConstraints = 0;
  std::size_t numCuts = 0;
  double objective = 0.0;

  bool functionallyVerified = false;

  /// Cut-ranking strategy whose database produced this result: the
  /// racing winner under FlowOptions::raceCutStrategies, otherwise the
  /// configured CutEnumOptions::strategy (only meaningful for the
  /// mapping-aware arm; the additive arms use unit cuts).
  cut::CutStrategy cutStrategy = cut::CutStrategy::DepthAware;

  /// Findings of the pre-solve static analysis (analyze::analyzeGraph),
  /// always populated — Warnings/Infos on successful runs too. When the
  /// analysis proves the request infeasible, `success` is false, `error`
  /// summarizes the Error findings, and the solver never ran.
  std::vector<analyze::Diagnostic> diagnostics;

  /// Per-node dataflow summary of the scheduled graph
  /// (FlowOptions::emitAnalysis; empty otherwise).
  std::vector<analyze::NodeBits> analysis;

  /// When FlowOptions::simplify rewrote the graph, the rewritten graph
  /// that `schedule` and `area` index (empty when simplification was
  /// off), and the original-to-rewritten node map (ir::kNoNode for
  /// nodes folded away). The rewrite is deterministic, so re-running
  /// ir::simplify over the same input reproduces it.
  ir::Graph simplifiedGraph;
  std::vector<ir::NodeId> simplifyMap;

  /// The graph `schedule` refers to: `original` unless simplification
  /// rewrote it. Pass the benchmark graph the flow ran on.
  const ir::Graph& scheduleGraph(const ir::Graph& original) const {
    return simplifiedGraph.size() > 0 ? simplifiedGraph : original;
  }
};

/// The analysis configuration runFlow() gates on, exposed so other
/// admission points (the lampd service) apply the *same* gate and never
/// disagree with the flow about feasibility: requested II with the
/// retry window (+8) as slack, the method's mapping-awareness, and the
/// benchmark's resource limits.
analyze::AnalysisOptions analysisOptions(const workloads::Benchmark& bm,
                                         Method method,
                                         const FlowOptions& opts);

/// Runs one method on one benchmark. If the requested II is infeasible
/// the flow retries with II+1 (up to 8x), like production schedulers do.
FlowResult runFlow(const workloads::Benchmark& bm, Method method,
                   const FlowOptions& opts = {});

/// All three methods on one benchmark (shares the SDC warm start).
struct BenchmarkResults {
  FlowResult hls;
  FlowResult milpBase;
  FlowResult milpMap;
};

BenchmarkResults runAllMethods(const workloads::Benchmark& bm,
                               const FlowOptions& opts = {});

/// One (benchmark, method) unit for the concurrent experiment harness.
/// The benchmark must outlive the runFlowJobs call.
struct FlowJob {
  const workloads::Benchmark* benchmark = nullptr;
  Method method = Method::HlsTool;
};

/// Runs independent flow jobs on a util::ThreadPool (`workers <= 0`
/// selects one per hardware thread, capped). Results return in input
/// order. Jobs share nothing, so any interleaving gives the same results
/// as the serial loop. When more than one worker runs, each job's solver
/// is forced to solverThreads == 1: the job-level parallelism already
/// saturates the machine, and nested solver threads would oversubscribe.
std::vector<FlowResult> runFlowJobs(const std::vector<FlowJob>& jobs,
                                    const FlowOptions& opts = {},
                                    int workers = 0);

}  // namespace lamp::flow

#endif  // LAMP_FLOW_FLOW_H
