#include "flow/flow_json.h"

#include <charconv>

#include "lp/model.h"

namespace lamp::flow {

using util::Json;

namespace {

bool parseStatus(std::string_view name, lp::SolveStatus& out) {
  for (const lp::SolveStatus s :
       {lp::SolveStatus::Optimal, lp::SolveStatus::Feasible,
        lp::SolveStatus::Infeasible, lp::SolveStatus::Unbounded,
        lp::SolveStatus::NoSolution, lp::SolveStatus::Cutoff,
        lp::SolveStatus::Error}) {
    if (lp::solveStatusName(s) == name) {
      out = s;
      return true;
    }
  }
  return false;
}

Json intArray(const std::vector<int>& v) {
  Json a = Json::array();
  for (const int x : v) a.push(Json::integer(x));
  return a;
}

Json doubleArray(const std::vector<double>& v) {
  Json a = Json::array();
  for (const double x : v) a.push(Json::number(x));
  return a;
}

bool readIntArray(const Json* j, std::vector<int>& out) {
  if (j == nullptr || !j->isArray()) return false;
  out.clear();
  out.reserve(j->size());
  for (std::size_t i = 0; i < j->size(); ++i) {
    if (!j->at(i).isNumber()) return false;
    out.push_back(static_cast<int>(j->at(i).asInt()));
  }
  return true;
}

bool readDoubleArray(const Json* j, std::vector<double>& out) {
  if (j == nullptr || !j->isArray()) return false;
  out.clear();
  out.reserve(j->size());
  for (std::size_t i = 0; i < j->size(); ++i) {
    if (!j->at(i).isNumber()) return false;
    out.push_back(j->at(i).asDouble());
  }
  return true;
}

/// Shortest-round-trip double text for cache keys.
std::string numKey(double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

}  // namespace

Json resultToJson(const FlowResult& r) {
  Json j = Json::object();
  j.set("success", Json::boolean(r.success));
  j.set("error", Json::string(r.error));
  j.set("method", Json::string(std::string(methodToken(r.method))));
  j.set("functionallyVerified", Json::boolean(r.functionallyVerified));

  Json sched = Json::object();
  sched.set("ii", Json::integer(r.schedule.ii));
  sched.set("tcpNs", Json::number(r.schedule.tcpNs));
  sched.set("cycle", intArray(r.schedule.cycle));
  sched.set("startNs", doubleArray(r.schedule.startNs));
  sched.set("selectedCut", intArray(r.schedule.selectedCut));
  j.set("schedule", std::move(sched));

  Json area = Json::object();
  area.set("luts", Json::integer(r.area.luts));
  area.set("ffs", Json::integer(r.area.ffs));
  area.set("cpNs", Json::number(r.area.cpNs));
  area.set("latency", Json::integer(r.area.latency));
  area.set("stages", Json::integer(r.area.stages));
  area.set("materializedValues", Json::integer(r.area.materializedValues));
  area.set("lutsPerStage", intArray(r.area.lutsPerStage));
  area.set("cpPerStage", doubleArray(r.area.cpPerStage));
  area.set("warning", Json::string(r.area.warning));
  j.set("area", std::move(area));

  Json solver = Json::object();
  solver.set("status",
             Json::string(std::string(lp::solveStatusName(r.status))));
  solver.set("objective", Json::number(r.objective));
  solver.set("solveSeconds", Json::number(r.solveSeconds));
  solver.set("buildSeconds", Json::number(r.buildSeconds));
  solver.set("branchNodes", Json::integer(r.branchNodes));
  solver.set("numVars", Json::integer(static_cast<std::int64_t>(r.numVars)));
  solver.set("numConstraints",
             Json::integer(static_cast<std::int64_t>(r.numConstraints)));
  solver.set("numCuts", Json::integer(static_cast<std::int64_t>(r.numCuts)));
  solver.set("cutStrategy",
             Json::string(std::string(cut::cutStrategyName(r.cutStrategy))));
  // Per-phase wall seconds: the breakdown the legacy two scalars sum
  // over. Rides every serialized result, so cached daemon hits replay
  // the original run's telemetry bit-identically.
  Json phases = Json::object();
  phases.set("analyze", Json::number(r.phases.analyze));
  phases.set("dataflow", Json::number(r.phases.dataflow));
  phases.set("simplify", Json::number(r.phases.simplify));
  phases.set("cutEnum", Json::number(r.phases.cutEnum));
  phases.set("milpBuild", Json::number(r.phases.milpBuild));
  phases.set("milpSolve", Json::number(r.phases.milpSolve));
  phases.set("validate", Json::number(r.phases.validate));
  phases.set("verify", Json::number(r.phases.verify));
  solver.set("phaseSeconds", std::move(phases));
  j.set("solver", std::move(solver));
  j.set("diagnostics", analyze::diagnosticsToJson(r.diagnostics));
  // Optional fields: absent unless the corresponding flow option ran.
  if (!r.analysis.empty()) {
    j.set("analysis", analyze::dataflowToJson(r.analysis));
  }
  if (!r.simplifyMap.empty()) {
    Json m = Json::array();
    for (const ir::NodeId id : r.simplifyMap) {
      m.push(Json::integer(id == ir::kNoNode ? -1
                                             : static_cast<std::int64_t>(id)));
    }
    j.set("simplifyMap", std::move(m));
  }
  return j;
}

bool resultFromJson(const Json& j, FlowResult& out, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (!j.isObject()) return fail("result is not an object");
  out = FlowResult{};

  const Json* v = j.find("success");
  if (v == nullptr || !v->isBool()) return fail("missing success");
  out.success = v->asBool();
  if ((v = j.find("error")) != nullptr) out.error = v->asString();
  if ((v = j.find("method")) == nullptr ||
      !parseMethodToken(v->asString(), out.method)) {
    return fail("bad method");
  }
  if ((v = j.find("functionallyVerified")) != nullptr) {
    out.functionallyVerified = v->asBool();
  }

  const Json* sched = j.find("schedule");
  if (sched == nullptr || !sched->isObject()) return fail("missing schedule");
  out.schedule.ii = static_cast<int>(
      sched->find("ii") ? sched->find("ii")->asInt(1) : 1);
  out.schedule.tcpNs =
      sched->find("tcpNs") ? sched->find("tcpNs")->asDouble(10.0) : 10.0;
  if (!readIntArray(sched->find("cycle"), out.schedule.cycle) ||
      !readDoubleArray(sched->find("startNs"), out.schedule.startNs) ||
      !readIntArray(sched->find("selectedCut"), out.schedule.selectedCut)) {
    return fail("bad schedule arrays");
  }
  if (out.schedule.startNs.size() != out.schedule.cycle.size() ||
      out.schedule.selectedCut.size() != out.schedule.cycle.size()) {
    return fail("schedule arrays of unequal length");
  }

  const Json* area = j.find("area");
  if (area != nullptr && area->isObject()) {
    const auto num = [&](const char* key, double fallback) {
      const Json* f = area->find(key);
      return f ? f->asDouble(fallback) : fallback;
    };
    out.area.luts = static_cast<int>(num("luts", 0));
    out.area.ffs = static_cast<int>(num("ffs", 0));
    out.area.cpNs = num("cpNs", 0.0);
    out.area.latency = static_cast<int>(num("latency", 0));
    out.area.stages = static_cast<int>(num("stages", 0));
    out.area.materializedValues = static_cast<int>(num("materializedValues", 0));
    (void)readIntArray(area->find("lutsPerStage"), out.area.lutsPerStage);
    (void)readDoubleArray(area->find("cpPerStage"), out.area.cpPerStage);
    if (const Json* w = area->find("warning")) out.area.warning = w->asString();
  }

  const Json* solver = j.find("solver");
  if (solver != nullptr && solver->isObject()) {
    if (const Json* s = solver->find("status")) {
      if (!parseStatus(s->asString(), out.status)) return fail("bad status");
    }
    const auto num = [&](const char* key, double fallback) {
      const Json* f = solver->find(key);
      return f ? f->asDouble(fallback) : fallback;
    };
    out.objective = num("objective", 0.0);
    out.solveSeconds = num("solveSeconds", 0.0);
    out.buildSeconds = num("buildSeconds", 0.0);
    const Json* bn = solver->find("branchNodes");
    out.branchNodes = bn ? bn->asInt(0) : 0;
    const Json* nv = solver->find("numVars");
    out.numVars = nv ? static_cast<std::size_t>(nv->asInt(0)) : 0;
    const Json* nc = solver->find("numConstraints");
    out.numConstraints = nc ? static_cast<std::size_t>(nc->asInt(0)) : 0;
    const Json* nk = solver->find("numCuts");
    out.numCuts = nk ? static_cast<std::size_t>(nk->asInt(0)) : 0;
    // Absent in results cached before cut strategies existed; those ran
    // the historical DepthAware ranking, which is the field's default.
    if (const Json* cs = solver->find("cutStrategy")) {
      if (!cut::parseCutStrategy(cs->asString(), out.cutStrategy)) {
        return fail("bad cutStrategy");
      }
    }
    // Absent in results cached before the phase breakdown existed.
    if (const Json* ph = solver->find("phaseSeconds");
        ph != nullptr && ph->isObject()) {
      const auto pnum = [&](const char* key) {
        const Json* f = ph->find(key);
        return f ? f->asDouble(0.0) : 0.0;
      };
      out.phases.analyze = pnum("analyze");
      out.phases.dataflow = pnum("dataflow");
      out.phases.simplify = pnum("simplify");
      out.phases.cutEnum = pnum("cutEnum");
      out.phases.milpBuild = pnum("milpBuild");
      out.phases.milpSolve = pnum("milpSolve");
      out.phases.validate = pnum("validate");
      out.phases.verify = pnum("verify");
    }
  }
  // Absent in results cached before diagnostics existed — tolerated so
  // old solution-cache files keep loading (they round-trip without it).
  if (const Json* diags = j.find("diagnostics")) {
    if (!analyze::diagnosticsFromJson(*diags, out.diagnostics, error)) {
      return false;
    }
  }
  if (const Json* an = j.find("analysis")) {
    if (!analyze::dataflowFromJson(*an, out.analysis, error)) return false;
  }
  if (const Json* sm = j.find("simplifyMap")) {
    if (!sm->isArray()) return fail("simplifyMap is not an array");
    out.simplifyMap.clear();
    out.simplifyMap.reserve(sm->size());
    for (std::size_t i = 0; i < sm->size(); ++i) {
      if (!sm->at(i).isNumber()) return fail("bad simplifyMap entry");
      const std::int64_t id = sm->at(i).asInt();
      out.simplifyMap.push_back(id < 0 ? ir::kNoNode
                                       : static_cast<ir::NodeId>(id));
    }
    // The rewritten graph itself is not serialized: ir::simplify is
    // deterministic, so holders of the input graph can reproduce it.
  }
  return true;
}

Json optionsToJson(const FlowOptions& o) {
  Json j = Json::object();
  j.set("ii", Json::integer(o.ii));
  j.set("tcpNs", Json::number(o.tcpNs));
  j.set("alpha", Json::number(o.alpha));
  j.set("beta", Json::number(o.beta));
  j.set("timeLimitSeconds", Json::number(o.solverTimeLimitSeconds));
  j.set("latencyMargin", Json::integer(o.latencyMargin));
  j.set("k", Json::integer(o.cuts.k));
  j.set("verifyFrames", Json::integer(o.verifyFrames));
  j.set("verifySeed", Json::integer(o.verifySeed));
  j.set("solverThreads", Json::integer(o.solverThreads));
  j.set("cutStrategy",
        Json::string(std::string(cut::cutStrategyName(o.cuts.strategy))));
  j.set("cutThreads", Json::integer(o.cuts.threads));
  j.set("raceCutStrategies", Json::integer(o.raceCutStrategies ? 1 : 0));
  j.set("simplify", Json::integer(o.simplify ? 1 : 0));
  j.set("emitAnalysis", Json::integer(o.emitAnalysis ? 1 : 0));
  return j;
}

bool optionsFromJson(const Json& j, FlowOptions& out, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };
  if (j.isNull()) return true;  // absent options object = all defaults
  if (!j.isObject()) return fail("options is not an object");
  for (const auto& [key, value] : j.members()) {
    if (key == "cutStrategy") {
      // The one string-valued option: a cutStrategyName() token.
      if (!value.isString() ||
          !cut::parseCutStrategy(value.asString(), out.cuts.strategy)) {
        return fail("bad cutStrategy '" + value.asString() + "'");
      }
      continue;
    }
    if (!value.isNumber()) return fail("option '" + key + "' is not a number");
    if (key == "ii") {
      out.ii = static_cast<int>(value.asInt());
    } else if (key == "tcpNs") {
      out.tcpNs = value.asDouble();
    } else if (key == "alpha") {
      out.alpha = value.asDouble();
    } else if (key == "beta") {
      out.beta = value.asDouble();
    } else if (key == "timeLimitSeconds") {
      out.solverTimeLimitSeconds = value.asDouble();
    } else if (key == "latencyMargin") {
      out.latencyMargin = static_cast<int>(value.asInt());
    } else if (key == "k") {
      out.cuts.k = static_cast<int>(value.asInt());
    } else if (key == "verifyFrames") {
      out.verifyFrames = static_cast<int>(value.asInt());
    } else if (key == "verifySeed") {
      out.verifySeed = static_cast<std::uint32_t>(value.asInt());
    } else if (key == "solverThreads") {
      out.solverThreads = static_cast<int>(value.asInt());
    } else if (key == "cutThreads") {
      out.cuts.threads = static_cast<int>(value.asInt());
    } else if (key == "raceCutStrategies") {
      out.raceCutStrategies = value.asInt() != 0;
    } else if (key == "simplify") {
      out.simplify = value.asInt() != 0;
    } else if (key == "emitAnalysis") {
      out.emitAnalysis = value.asInt() != 0;
    } else {
      return fail("unknown option '" + key + "'");
    }
  }
  if (out.ii < 1) return fail("ii must be >= 1");
  if (out.tcpNs <= 0) return fail("tcpNs must be positive");
  if (out.cuts.k < 2 || out.cuts.k > 8) return fail("k out of range [2,8]");
  return true;
}

std::string hardOptionKey(Method m, const FlowOptions& o) {
  // v2: simplify/emitAnalysis joined the key — a schedule solved over
  // the rewritten graph must never warm-start (or answer) a request for
  // the original one, and vice versa.
  // v3: cut strategy and strategy racing joined — both change which cuts
  // survive the priority cap and hence the MILP's selection space.
  // cuts.threads stays out: enumeration is bit-identical at every
  // thread count.
  std::string key = "v3;m=";
  key += methodToken(m);
  key += ";ii=" + std::to_string(o.ii);
  key += ";a=" + numKey(o.alpha);
  key += ";b=" + numKey(o.beta);
  key += ";k=" + std::to_string(o.cuts.k);
  key += ";cs=";
  key += cut::cutStrategyName(o.cuts.strategy);
  key += ";rs=" + std::to_string(o.raceCutStrategies ? 1 : 0);
  key += ";lm=" + std::to_string(o.latencyMargin);
  key += ";vf=" + std::to_string(o.verifyFrames);
  key += ";vs=" + std::to_string(o.verifySeed);
  key += ";sp=" + std::to_string(o.simplify ? 1 : 0);
  key += ";ea=" + std::to_string(o.emitAnalysis ? 1 : 0);
  return key;
}

}  // namespace lamp::flow
