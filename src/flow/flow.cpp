#include "flow/flow.h"

#include <limits>

#include "analyze/dataflow.h"
#include "ir/simplify.h"
#include "map/area.h"
#include "obs/trace.h"
#include "sched/greedy.h"
#include "sched/schedule.h"
#include "sim/pipeline_sim.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace lamp::flow {

using workloads::Benchmark;

std::string_view methodName(Method m) {
  switch (m) {
    case Method::HlsTool: return "HLS Tool";
    case Method::MilpBase: return "MILP-base";
    case Method::MilpMap: return "MILP-map";
  }
  return "?";
}

std::string_view methodToken(Method m) {
  switch (m) {
    case Method::HlsTool: return "hls";
    case Method::MilpBase: return "base";
    case Method::MilpMap: return "map";
  }
  return "?";
}

bool parseMethodToken(std::string_view token, Method& out) {
  if (token == "hls") {
    out = Method::HlsTool;
  } else if (token == "base") {
    out = Method::MilpBase;
  } else if (token == "map") {
    out = Method::MilpMap;
  } else {
    return false;
  }
  return true;
}

namespace {

/// Mapping-Fusion style strategy racing: one enumeration per ranking
/// strategy, each scored by the cost of its greedy mapping-aware
/// covering at this II (alpha * LUTs + beta * register bits). The
/// cheapest database wins; ties keep the earliest strategy in
/// cut::allCutStrategies() order (DepthAware first), so racing never
/// changes a result unless another ranking strictly improves it.
cut::CutDatabase raceCutStrategyDatabases(const Benchmark& bm,
                                          const FlowOptions& opts,
                                          const cut::CutEnumOptions& mapCuts,
                                          int ii,
                                          cut::CutStrategy& winner) {
  const obs::Span span("cut_strategy_race", "flow");
  cut::CutDatabase best;
  double bestCost = std::numeric_limits<double>::infinity();
  bool haveAny = false;
  for (const cut::CutStrategy s : cut::allCutStrategies()) {
    cut::CutEnumOptions o = mapCuts;
    o.strategy = s;
    cut::CutDatabase db = cut::enumerateCuts(bm.graph, o);
    // Strategies whose greedy covering fails (or fails validation) race
    // with infinite cost: they can still win only if every strategy
    // fails, in which case the first (DepthAware) database is kept and
    // the MILP decides on its own.
    double cost = std::numeric_limits<double>::infinity();
    sched::SdcOptions go;
    go.ii = ii;
    go.tcpNs = opts.tcpNs;
    go.resources = bm.resources;
    const sched::SdcResult greedy =
        sched::greedyMapSchedule(bm.graph, db, opts.delays, go);
    if (greedy.success &&
        sched::validateSchedule(
            {bm.graph, db, opts.delays, bm.resources, mapCuts.facts},
            greedy.schedule) == std::nullopt) {
      double lutCost = 0.0;
      for (ir::NodeId v = 0; v < bm.graph.size(); ++v) {
        if (greedy.schedule.isRoot(v)) {
          lutCost += db.at(v).cuts[greedy.schedule.selectedCut[v]].lutCost;
        }
      }
      cost = opts.alpha * lutCost +
             opts.beta * map::countRegisterBits(bm.graph, greedy.schedule,
                                                opts.delays);
    }
    if (!haveAny || cost < bestCost) {
      haveAny = true;
      bestCost = cost;
      winner = s;
      best = std::move(db);
    }
  }
  return best;
}

/// Keeps every diagnostic: later failures append to earlier ones (e.g.
/// the solver-cap fallback reason) instead of replacing them.
void appendError(std::string& error, std::string msg) {
  if (error.empty()) {
    error = std::move(msg);
  } else {
    error += "; " + msg;
  }
}

/// Functional check of a schedule against the untimed interpreter.
bool verifyFunctionally(const Benchmark& bm, const sched::Schedule& s,
                        const cut::CutDatabase& db, const FlowOptions& opts) {
  if (opts.verifyFrames <= 0) return true;
  std::vector<sim::InputFrame> frames;
  for (int k = 0; k < opts.verifyFrames; ++k) {
    frames.push_back(bm.makeInputs(k, opts.verifySeed));
  }
  sim::Interpreter interp(bm.graph);
  if (bm.initMemory) bm.initMemory(interp.memory());
  const auto golden = interp.run(frames);

  sim::Memory pipeMem;
  if (bm.initMemory) bm.initMemory(pipeMem);
  const auto run =
      sim::runPipeline(bm.graph, s, opts.delays, frames, &pipeMem, &db);
  if (!run.ok || run.outputs.size() != golden.size()) return false;
  for (std::size_t k = 0; k < golden.size(); ++k) {
    if (run.outputs[k] != golden[k]) return false;
  }
  return true;
}

FlowResult finish(const Benchmark& bm, FlowResult r,
                  const cut::CutDatabase& db, const FlowOptions& opts,
                  const ir::BitFacts* facts) {
  {
    const obs::Span span("validate", "flow");
    const util::Stopwatch watch;
    const sched::ValidationInput vin{bm.graph, db, opts.delays, bm.resources,
                                     facts};
    const auto diag = sched::validateSchedule(vin, r.schedule);
    r.phases.validate = watch.seconds();
    if (diag) {
      r.success = false;
      appendError(r.error, "schedule validation failed: " + *diag);
      return r;
    }
  }
  map::AreaOptions ao;
  ao.cuts = opts.cuts;
  // The per-stage evaluator rebuilds graphs with fresh node ids; facts
  // indexed by this graph's ids must not leak into those enumerations.
  ao.cuts.facts = nullptr;
  r.area = map::evaluate(bm.graph, r.schedule, opts.delays, ao);
  {
    const obs::Span span("verify", "flow");
    const util::ScopedTimer t(&r.phases.verify);
    r.functionallyVerified = verifyFunctionally(bm, r.schedule, db, opts);
  }
  if (opts.verifyFrames > 0 && !r.functionallyVerified) {
    // The schedule (and area report) stay populated: callers get both
    // the solve outcome and the verification failure.
    r.success = false;
    appendError(r.error, "pipeline simulation diverged from the reference");
  }
  return r;
}

/// Rewrites NodeId-keyed frames through the simplification node map.
sim::InputFrame remapFrame(const sim::InputFrame& f,
                           const std::vector<ir::NodeId>& oldToNew) {
  sim::InputFrame out;
  for (const auto& [id, v] : f) {
    if (id < oldToNew.size() && oldToNew[id] != ir::kNoNode) {
      out[oldToNew[id]] = v;
    }
  }
  return out;
}

/// Differential simulation of the simplified graph against the original
/// over seeded random frames. Returns a diagnostic on any divergence.
std::optional<std::string> simplifyDivergence(
    const Benchmark& bm, const ir::Graph& simplified,
    const std::vector<ir::NodeId>& oldToNew, const FlowOptions& opts) {
  const int frames = std::max(opts.verifyFrames, 4);
  std::vector<sim::InputFrame> in, inSimp;
  for (int k = 0; k < frames; ++k) {
    in.push_back(bm.makeInputs(k, opts.verifySeed));
    inSimp.push_back(remapFrame(in.back(), oldToNew));
  }
  sim::Interpreter ref(bm.graph);
  if (bm.initMemory) bm.initMemory(ref.memory());
  const auto golden = ref.run(in);
  sim::Interpreter simp(simplified);
  if (bm.initMemory) bm.initMemory(simp.memory());
  const auto got = simp.run(inSimp);
  for (std::size_t k = 0; k < golden.size(); ++k) {
    for (const auto& [id, v] : golden[k]) {
      const ir::NodeId nid = oldToNew[id];
      const auto it = nid == ir::kNoNode ? got[k].end() : got[k].find(nid);
      if (it == got[k].end() || it->second != v) {
        return "output " + bm.graph.node(id).name + " differs at iteration " +
               std::to_string(k);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

namespace {

/// One attempt at a fixed II; runFlow retries at larger IIs on failure.
/// `facts` are bit-level facts of bm.graph; the mapping-aware arm
/// enumerates its cut database under them.
FlowResult runFlowAtIi(const Benchmark& bm, Method method,
                       const FlowOptions& opts, int ii,
                       const ir::BitFacts* facts);

}  // namespace

analyze::AnalysisOptions analysisOptions(const Benchmark& bm, Method method,
                                         const FlowOptions& opts) {
  analyze::AnalysisOptions ao;
  ao.ii = opts.ii;
  ao.maxIi = opts.ii + 8;  // matches the retry window in runFlow below
  ao.tcpNs = opts.tcpNs;
  ao.k = opts.cuts.k;
  ao.mappingAware = method == Method::MilpMap;
  ao.delays = opts.delays;
  ao.resources = bm.resources;
  return ao;
}

FlowResult runFlow(const Benchmark& bm, Method method,
                   const FlowOptions& opts) {
  if (opts.trace) obs::setTraceEnabled(true);
  const obs::Span flowSpan("flow", "flow");
  PhaseSeconds phases;

  // Pre-solve gate: a request the static analysis proves infeasible
  // (malformed IR, an op slower than the clock, MII beyond the retry
  // window, an unmappable cone) fails fast with structured diagnostics
  // instead of burning the solver time limit. Warnings and infos ride
  // along on whatever result the flow produces.
  analyze::AnalysisReport report;
  {
    const obs::Span span("analyze", "flow");
    const util::Stopwatch watch;
    report = analyze::analyzeGraph(bm.graph, analysisOptions(bm, method, opts));
    phases.analyze = watch.seconds();
  }
  if (report.hasErrors()) {
    FlowResult r;
    r.method = method;
    r.status = lp::SolveStatus::Infeasible;
    r.error = "pre-solve analysis: " + analyze::summarizeErrors(report);
    r.diagnostics = std::move(report.diagnostics);
    r.phases = phases;
    r.buildSeconds = phases.analyze;
    return r;
  }

  // Bit-level dataflow on the input graph: drives the optional rewrite
  // and the mapping-aware arm's masked cut enumeration.
  util::Stopwatch dflowWatch;
  analyze::DataflowResult dflow = analyze::analyzeDataflow(bm.graph);
  ir::BitFacts facts = analyze::toBitFacts(dflow);
  phases.dataflow += dflowWatch.seconds();

  Benchmark work;                // simplified copy, when enabled
  const Benchmark* active = &bm;
  std::vector<ir::NodeId> simplifyMap;
  if (opts.simplify) {
    const obs::Span span("simplify", "flow");
    const util::Stopwatch watch;
    ir::Graph simplified = ir::simplify(bm.graph, facts, nullptr,
                                        &simplifyMap);
    if (const auto diag =
            simplifyDivergence(bm, simplified, simplifyMap, opts)) {
      FlowResult r;
      r.method = method;
      r.error = "simplification diverged from the original graph: " + *diag;
      r.diagnostics = std::move(report.diagnostics);
      phases.simplify = watch.seconds();
      r.phases = phases;
      r.buildSeconds = phases.analyze + phases.dataflow + phases.simplify;
      return r;
    }
    work = bm;
    work.graph = std::move(simplified);
    // Input frames are NodeId-keyed; route them through the node map.
    work.makeInputs = [base = bm.makeInputs, map = simplifyMap](
                          std::uint64_t it, std::uint32_t seed) {
      return remapFrame(base(it, seed), map);
    };
    active = &work;
    phases.simplify = watch.seconds();
    // Facts must index the graph actually enumerated and scheduled.
    dflowWatch.restart();
    dflow = analyze::analyzeDataflow(work.graph);
    facts = analyze::toBitFacts(dflow);
    phases.dataflow += dflowWatch.seconds();
  }

  // Production schedulers bump the II when the recurrence, resources, or
  // (for the additive model) recurrence *chaining* cannot meet it. The
  // mapping-aware arm frequently sustains a smaller II than the additive
  // arms — an effect worth keeping visible, so each arm gets its own
  // smallest feasible II.
  FlowResult last;
  for (int ii = opts.ii; ii <= opts.ii + 8; ++ii) {
    last = runFlowAtIi(*active, method, opts, ii, &facts);
    // Retried attempts accumulate: the breakdown reports what the flow
    // actually spent, not just the final II's share.
    phases.cutEnum += last.phases.cutEnum;
    phases.milpBuild += last.phases.milpBuild;
    phases.milpSolve += last.phases.milpSolve;
    phases.validate += last.phases.validate;
    phases.verify += last.phases.verify;
    if (last.success) break;
    if (last.status == lp::SolveStatus::NoSolution) break;  // cap hit
  }
  last.phases = phases;
  last.buildSeconds = phases.analyze + phases.dataflow + phases.simplify +
                      phases.cutEnum + phases.milpBuild;
  last.solveSeconds = phases.milpSolve;
  last.diagnostics = std::move(report.diagnostics);
  if (opts.simplify) {
    last.simplifiedGraph = active->graph;
    last.simplifyMap = std::move(simplifyMap);
  }
  if (opts.emitAnalysis) last.analysis = std::move(dflow.bits);
  return last;
}

namespace {

FlowResult runFlowAtIi(const Benchmark& bm, Method method,
                       const FlowOptions& opts, int ii,
                       const ir::BitFacts* facts) {
  FlowResult result;
  result.method = method;

  // Only the mapping-aware enumeration consumes the bit-level facts;
  // the additive arms keep the paper's unit-cut model untouched. Any
  // caller-supplied facts pointer is ignored — it cannot be trusted to
  // index this (possibly rewritten) graph.
  cut::CutEnumOptions baseCuts = opts.cuts;
  baseCuts.facts = nullptr;
  cut::CutEnumOptions mapCuts = baseCuts;
  mapCuts.facts = facts;
  const ir::BitFacts* dbFacts = method == Method::MilpMap ? facts : nullptr;

  const util::Stopwatch cutWatch;
  cut::CutStrategy usedStrategy = mapCuts.strategy;
  const cut::CutDatabase db =
      method == Method::MilpMap
          ? (opts.raceCutStrategies
                 ? raceCutStrategyDatabases(bm, opts, mapCuts, ii,
                                            usedStrategy)
                 : cut::enumerateCuts(bm.graph, mapCuts))
          : cut::trivialCuts(bm.graph, baseCuts);
  result.cutStrategy = usedStrategy;
  const cut::CutDatabase trivial =
      method == Method::MilpMap ? cut::trivialCuts(bm.graph, baseCuts) : db;
  result.phases.cutEnum = cutWatch.seconds();
  result.numCuts = db.totalCuts;

  // The SDC baseline also provides the latency bound and warm start for
  // the MILPs.
  sched::SdcOptions sdcOpts;
  sdcOpts.ii = ii;
  sdcOpts.tcpNs = opts.tcpNs;
  sdcOpts.resources = bm.resources;
  sched::SdcResult sdc = sdcSchedule(bm.graph, trivial, opts.delays, sdcOpts);
  bool baselineIsGreedy = false;

  if (!sdc.success && method == Method::MilpMap) {
    // The additive heuristic can fail an II that mapping-aware schedules
    // meet (shorter recurrence chains): fall back to the greedy
    // mapping-aware schedule for the latency bound and warm start.
    sdc = sched::greedyMapSchedule(bm.graph, db, opts.delays, sdcOpts);
    if (sdc.success &&
        sched::validateSchedule(
            {bm.graph, db, opts.delays, bm.resources, dbFacts},
            sdc.schedule) != std::nullopt) {
      sdc.success = false;
    }
    baselineIsGreedy = sdc.success;
  }
  if (!sdc.success) {
    result.error = "baseline scheduling failed: " + sdc.error;
    return result;
  }

  if (method == Method::HlsTool) {
    result.schedule = sdc.schedule;
    result.status = lp::SolveStatus::Optimal;
    result.success = true;
    return finish(bm, std::move(result), db, opts, dbFacts);
  }

  sched::MilpSchedOptions mo;
  mo.ii = sdc.schedule.ii;
  mo.tcpNs = opts.tcpNs;
  mo.alpha = opts.alpha;
  mo.beta = opts.beta;
  mo.maxLatency = sdc.schedule.latency(bm.graph) + opts.latencyMargin;
  mo.resources = bm.resources;
  mo.solver.timeLimitSeconds = opts.solverTimeLimitSeconds;
  mo.solver.threads = opts.solverThreads;
  mo.warmStart = &sdc.schedule;
  mo.warmStartSelectsCuts = baselineIsGreedy;

  // A mapping-aware greedy schedule (cover first, then list scheduling of
  // the LUT-level netlist) usually beats the SDC start by a wide margin;
  // use it as the incumbent whenever it is valid and cheaper.
  const auto scheduleCost = [&](const sched::Schedule& s,
                                const cut::CutDatabase& cuts) {
    double lutCost = 0.0;
    for (ir::NodeId v = 0; v < bm.graph.size(); ++v) {
      if (s.isRoot(v)) lutCost += cuts.at(v).cuts[s.selectedCut[v]].lutCost;
    }
    return opts.alpha * lutCost +
           opts.beta * map::countRegisterBits(bm.graph, s, opts.delays);
  };
  sched::SdcResult greedy;
  if (!baselineIsGreedy) {
    sched::SdcOptions go;
    go.ii = sdc.schedule.ii;
    go.tcpNs = opts.tcpNs;
    go.resources = bm.resources;
    go.maxLatency = mo.maxLatency;
    greedy = sched::greedyMapSchedule(bm.graph, db, opts.delays, go);
    if (greedy.success &&
        sched::validateSchedule(
            {bm.graph, db, opts.delays, bm.resources, dbFacts},
            greedy.schedule) == std::nullopt &&
        scheduleCost(greedy.schedule, db) <
            scheduleCost(sdc.schedule, baselineIsGreedy ? db : trivial)) {
      mo.warmStart = &greedy.schedule;
      mo.warmStartSelectsCuts = true;
    }
  }

  // A cached incumbent from the service layer (same graph solved before,
  // e.g. at a tighter clock or a shorter time limit) outranks the
  // heuristic starts whenever it is still feasible here and cheaper —
  // branch & bound then begins at the previous solve's upper bound.
  if (opts.warmStartHint != nullptr) {
    const sched::Schedule& hint = *opts.warmStartHint;
    if (hint.ii == mo.ii && hint.cycle.size() == bm.graph.size() &&
        hint.selectedCut.size() == bm.graph.size() &&
        hint.latency(bm.graph) <= mo.maxLatency &&
        sched::validateSchedule(
            {bm.graph, db, opts.delays, bm.resources, dbFacts},
            hint) == std::nullopt &&
        scheduleCost(hint, db) <
            scheduleCost(*mo.warmStart,
                         mo.warmStartSelectsCuts ? db : trivial)) {
      mo.warmStart = &hint;
      mo.warmStartSelectsCuts = true;
    }
  }

  const sched::MilpSchedResult milp =
      sched::milpSchedule(bm.graph, db, opts.delays, mo);

  result.status = milp.status;
  result.solveSeconds = milp.solveSeconds;
  result.buildSeconds = milp.buildSeconds;
  result.phases.milpBuild = milp.buildSeconds;
  result.phases.milpSolve = milp.solveSeconds;
  result.branchNodes = milp.branchNodes;
  result.numVars = milp.numVars;
  result.numConstraints = milp.numConstraints;
  result.objective = milp.objective;
  if (!milp.success) {
    if (milp.status == lp::SolveStatus::NoSolution) {
      // Instance beyond the exact solver (or no incumbent within the
      // cap): fall back to the best heuristic schedule — the paper's own
      // conclusion that a scalable heuristic must take over at size.
      result.schedule = *mo.warmStart;
      if (!mo.warmStartSelectsCuts) {
        // The schedule's cut indices target the trivial database; remap
        // each materialized node to the unit cut of `db`.
        for (ir::NodeId v = 0; v < bm.graph.size(); ++v) {
          if (result.schedule.selectedCut[v] < 0 || db.at(v).cuts.empty()) {
            continue;
          }
          result.schedule.selectedCut[v] = 0;
          for (std::size_t i = 0; i < db.at(v).cuts.size(); ++i) {
            if (db.at(v).cuts[i].isUnit) {
              result.schedule.selectedCut[v] = static_cast<int>(i);
            }
          }
        }
      }
      result.success = true;
      result.error = milp.error;  // kept as a diagnostic
      return finish(bm, std::move(result), db, opts, dbFacts);
    }
    result.error = milp.error;
    return result;
  }
  result.schedule = milp.schedule;
  result.success = true;
  return finish(bm, std::move(result), db, opts, dbFacts);
}

}  // namespace

BenchmarkResults runAllMethods(const Benchmark& bm, const FlowOptions& opts) {
  BenchmarkResults r;
  r.hls = runFlow(bm, Method::HlsTool, opts);
  r.milpBase = runFlow(bm, Method::MilpBase, opts);
  r.milpMap = runFlow(bm, Method::MilpMap, opts);
  return r;
}

std::vector<FlowResult> runFlowJobs(const std::vector<FlowJob>& jobs,
                                    const FlowOptions& opts, int workers) {
  std::vector<FlowResult> results(jobs.size());
  const int n = workers > 0 ? workers : util::ThreadPool::defaultThreads();
  if (n <= 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] = runFlow(*jobs[i].benchmark, jobs[i].method, opts);
    }
    return results;
  }
  FlowOptions jobOpts = opts;
  jobOpts.solverThreads = 1;  // job-level parallelism owns the cores
  util::ThreadPool pool(n);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool.submit([&, i] {
      results[i] = runFlow(*jobs[i].benchmark, jobs[i].method, jobOpts);
    });
  }
  pool.wait();
  return results;
}

}  // namespace lamp::flow
