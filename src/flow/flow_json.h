#ifndef LAMP_FLOW_FLOW_JSON_H
#define LAMP_FLOW_FLOW_JSON_H

/// \file flow_json.h
/// The single JSON rendering of flow inputs and outputs, shared by
/// `lampc --emit-json`, the `lampd` service protocol and the on-disk
/// solution cache — one serializer, so the CLI and the daemon cannot
/// drift apart. FlowResult round-trips losslessly: every schedule field
/// (including doubles, written shortest-round-trip) parses back to the
/// identical value, which is what makes cached schedules bit-identical
/// across serve paths and daemon restarts.

#include <string>

#include "flow/flow.h"
#include "util/json.h"

namespace lamp::flow {

/// Full FlowResult -> JSON (success, error, method token, schedule,
/// area report, solver statistics, verification flag).
util::Json resultToJson(const FlowResult& r);

/// Inverse of resultToJson. Returns false (with `error` filled) on
/// malformed or inconsistent input (e.g. schedule arrays of unequal
/// length).
bool resultFromJson(const util::Json& j, FlowResult& out, std::string* error);

/// FlowOptions -> JSON using the request-protocol key names.
util::Json optionsToJson(const FlowOptions& o);

/// Applies a request's "options" object on top of `out` (which callers
/// pre-fill with defaults). Unknown keys are rejected — the drift guard
/// for protocol evolution. Only scalar knobs are exposed; structural
/// fields (delay model, cut caps beyond k) keep their defaults.
bool optionsFromJson(const util::Json& j, FlowOptions& out,
                     std::string* error);

/// Deterministic key of every option that selects a distinct solution
/// space, *excluding* the soft axes (tcpNs, solverTimeLimitSeconds) the
/// cache treats as near-miss dimensions, and excluding solverThreads
/// (parallelism changes wall-clock, not the solution space). Two
/// requests with equal hardOptionKey + equal graph hashes are the same
/// cache bucket.
std::string hardOptionKey(Method m, const FlowOptions& o);

}  // namespace lamp::flow

#endif  // LAMP_FLOW_FLOW_JSON_H
