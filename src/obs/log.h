#ifndef LAMP_OBS_LOG_H
#define LAMP_OBS_LOG_H

/// \file log.h
/// Structured (NDJSON) event logging. Each call renders one JSON object
/// per line — {"ts":<unix seconds>,"event":"...", ...fields} — so the
/// daemon's per-request logs are machine-parseable (request id, cache
/// hit class, queue wait, deadline slack) instead of printf prose.
///
/// The logger is process-wide and disabled by default; tools opt in by
/// pointing it at a stream (stderr or a file). Lines are written whole
/// under a mutex, so concurrent requests never interleave mid-record.

#include <iosfwd>
#include <string_view>

#include "util/json.h"

namespace lamp::obs {

/// True when a sink is attached and events are being written.
bool logEnabled();

/// Attaches the sink stream (nullptr detaches / disables). The stream
/// must outlive logging; callers own it.
void setLogSink(std::ostream* os);

/// Writes one NDJSON record: `fields` (an object; other kinds are
/// wrapped under "data") plus "ts" (unix seconds, 3 decimals) and
/// "event". No-op when disabled.
void logEvent(std::string_view event, util::Json fields);

}  // namespace lamp::obs

#endif  // LAMP_OBS_LOG_H
