#ifndef LAMP_OBS_TRACE_H
#define LAMP_OBS_TRACE_H

/// \file trace.h
/// Low-overhead hierarchical span tracer emitting Chrome trace-event
/// JSON (the format chrome://tracing and Perfetto load directly).
///
/// Model: a process-wide on/off flag, per-thread event buffers, and RAII
/// spans. When tracing is off, constructing a Span costs one relaxed
/// atomic load and nothing else — cheap enough to leave the
/// instrumentation in every hot path permanently (the overhead budget is
/// < 2% of wall time on the solver microbenchmarks; tests/obs_test
/// asserts it). When tracing is on, each span records a begin ('B') and
/// end ('E') event into its thread's buffer: no cross-thread
/// synchronization on the hot path beyond the buffer's own (uncontended)
/// mutex, which only the final collection ever competes for.
///
/// Events carry microsecond timestamps from one process-wide
/// steady_clock epoch, so timestamps are monotonic per thread and
/// mutually comparable across threads. Buffers are capped (events past
/// the cap are counted, not stored) so a runaway trace cannot exhaust
/// memory.
///
/// Enabling: setTraceEnabled(true), or the LAMP_TRACE environment
/// variable (any value except "0"), checked once at first use.
/// Dumping: writeChromeTrace() renders every live and retired thread
/// buffer as one {"traceEvents": [...]} document; lampc --trace-out and
/// lampd --trace-dir call it at exit.

#include <cstdint>
#include <iosfwd>
#include <string>

namespace lamp::obs {

/// True when span/instant events are being recorded.
bool traceEnabled();

/// Turns tracing on or off process-wide (overrides LAMP_TRACE).
void setTraceEnabled(bool on);

/// Names the calling thread in the trace viewer (emitted as a
/// thread_name metadata event). No-op while tracing is off.
void setThreadName(const std::string& name);

/// Renders one numeric key as a trace-event args object ({"key":v}).
std::string traceArg(const char* key, double value);

/// Records an instant event ('i', thread scope) — e.g. a new MILP
/// incumbent with its objective value. `argsJson` must be empty or a
/// complete JSON object literal (see traceArg).
void instant(const char* name, const char* category,
             std::string argsJson = {});

/// RAII span: records 'B' at construction and 'E' at destruction on the
/// calling thread. Name and category must outlive the span (string
/// literals in practice).
class Span {
 public:
  explicit Span(const char* name, const char* category = "lamp");
  /// Span whose end event carries args (e.g. a result size).
  Span(const char* name, const char* category, std::string endArgsJson);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches args to the pending end event (ignored when inactive).
  void endArgs(std::string argsJson);

  bool active() const { return active_; }

 private:
  const char* name_;
  const char* category_;
  std::string endArgs_;
  bool active_;
};

/// Writes every buffered event (all threads, including exited ones) as
/// a Chrome trace-event JSON document. Does not clear the buffers.
void writeChromeTrace(std::ostream& os);

/// Total buffered events across all threads (tests, size reporting).
std::size_t traceEventCount();

/// Events dropped because a per-thread buffer hit its cap.
std::uint64_t traceDroppedEvents();

/// Discards all buffered events (buffers stay registered).
void clearTrace();

}  // namespace lamp::obs

#endif  // LAMP_OBS_TRACE_H
