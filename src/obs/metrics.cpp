#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace lamp::obs {

namespace {

/// Shortest-round-trip double text (matches util::Json number output).
std::string numText(double v) {
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void addDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {}

void Histogram::observe(double v) {
  // First bucket whose upper bound admits v; past-the-end = +Inf bucket.
  const std::size_t i =
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  // upper_bound gives bounds_[i] > v; Prometheus buckets are `le`
  // (inclusive), so step back onto an exactly-equal bound.
  const std::size_t b = (i > 0 && bounds_[i - 1] == v) ? i - 1 : i;
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  addDouble(sum_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.resize(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    s.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t next = cum + counts[i];
    if (static_cast<double>(next) >= rank && counts[i] > 0) {
      if (i >= bounds.size()) {
        // +Inf bucket: clamp to the largest finite bound.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double frac =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> Histogram::exponentialBounds(double start, double factor,
                                                int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  double v = start;
  for (int i = 0; i < n; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* r = new Registry();
  return *r;
}

Registry::Entry* Registry::findLocked(const std::string& name) {
  for (auto& e : entries_) {
    if (e->name == name) return e.get();
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = findLocked(name)) return *e->counter;
  auto e = std::make_unique<Entry>();
  e->kind = Entry::Kind::Counter;
  e->name = name;
  e->help = std::move(help);
  e->counter = std::make_unique<Counter>();
  entries_.push_back(std::move(e));
  return *entries_.back()->counter;
}

Gauge& Registry::gauge(const std::string& name, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = findLocked(name)) return *e->gauge;
  auto e = std::make_unique<Entry>();
  e->kind = Entry::Kind::Gauge;
  e->name = name;
  e->help = std::move(help);
  e->gauge = std::make_unique<Gauge>();
  entries_.push_back(std::move(e));
  return *entries_.back()->gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds, std::string help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = findLocked(name)) return *e->histogram;
  auto e = std::make_unique<Entry>();
  e->kind = Entry::Kind::Histogram;
  e->name = name;
  e->help = std::move(help);
  e->histogram = std::make_unique<Histogram>(std::move(bounds));
  entries_.push_back(std::move(e));
  return *entries_.back()->histogram;
}

util::Json Registry::toJson() const {
  using util::Json;
  std::lock_guard<std::mutex> lock(mu_);
  Json j = Json::object();
  for (const auto& e : entries_) {
    switch (e->kind) {
      case Entry::Kind::Counter: {
        Json m = Json::object();
        m.set("type", Json::string("counter"));
        m.set("value", Json::integer(
                           static_cast<std::int64_t>(e->counter->value())));
        j.set(e->name, std::move(m));
        break;
      }
      case Entry::Kind::Gauge: {
        Json m = Json::object();
        m.set("type", Json::string("gauge"));
        m.set("value", Json::number(e->gauge->value()));
        j.set(e->name, std::move(m));
        break;
      }
      case Entry::Kind::Histogram: {
        const Histogram::Snapshot s = e->histogram->snapshot();
        Json m = Json::object();
        m.set("type", Json::string("histogram"));
        m.set("count", Json::integer(static_cast<std::int64_t>(s.count)));
        m.set("sum", Json::number(s.sum));
        m.set("p50", Json::number(s.quantile(0.50)));
        m.set("p95", Json::number(s.quantile(0.95)));
        m.set("p99", Json::number(s.quantile(0.99)));
        Json buckets = Json::array();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.counts.size(); ++i) {
          cum += s.counts[i];
          Json b = Json::object();
          b.set("le", i < s.bounds.size()
                          ? Json::number(s.bounds[i])
                          : Json::string("+Inf"));
          b.set("count", Json::integer(static_cast<std::int64_t>(cum)));
          buckets.push(std::move(b));
        }
        m.set("buckets", std::move(buckets));
        j.set(e->name, std::move(m));
        break;
      }
    }
  }
  return j;
}

std::string Registry::toPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& e : entries_) {
    if (!e->help.empty()) {
      out += "# HELP " + e->name + " " + e->help + "\n";
    }
    switch (e->kind) {
      case Entry::Kind::Counter:
        out += "# TYPE " + e->name + " counter\n";
        out += e->name + " " + std::to_string(e->counter->value()) + "\n";
        break;
      case Entry::Kind::Gauge:
        out += "# TYPE " + e->name + " gauge\n";
        out += e->name + " " + numText(e->gauge->value()) + "\n";
        break;
      case Entry::Kind::Histogram: {
        const Histogram::Snapshot s = e->histogram->snapshot();
        out += "# TYPE " + e->name + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.counts.size(); ++i) {
          cum += s.counts[i];
          const std::string le =
              i < s.bounds.size() ? numText(s.bounds[i]) : "+Inf";
          out += e->name + "_bucket{le=\"" + le + "\"} " +
                 std::to_string(cum) + "\n";
        }
        out += e->name + "_sum " + numText(s.sum) + "\n";
        out += e->name + "_count " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    switch (e->kind) {
      case Entry::Kind::Counter:
        // In place, not by swapping the object out: references handed
        // out by counter() must stay valid across a reset.
        e->counter->reset();
        break;
      case Entry::Kind::Gauge:
        e->gauge->set(0.0);
        break;
      case Entry::Kind::Histogram:
        e->histogram->reset();
        break;
    }
  }
}

}  // namespace lamp::obs
