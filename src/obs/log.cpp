#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <ostream>

namespace lamp::obs {

namespace {

std::mutex gMu;
std::atomic<std::ostream*> gSink{nullptr};

double unixSeconds() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double s = std::chrono::duration<double>(now).count();
  return std::round(s * 1000.0) / 1000.0;  // ms resolution is plenty
}

}  // namespace

bool logEnabled() {
  return gSink.load(std::memory_order_relaxed) != nullptr;
}

void setLogSink(std::ostream* os) {
  std::lock_guard<std::mutex> lock(gMu);
  gSink.store(os, std::memory_order_relaxed);
}

void logEvent(std::string_view event, util::Json fields) {
  if (!logEnabled()) return;
  util::Json rec = util::Json::object();
  rec.set("ts", util::Json::number(unixSeconds()));
  rec.set("event", util::Json::string(std::string(event)));
  if (fields.isObject()) {
    for (const auto& [key, value] : fields.members()) {
      rec.set(key, value);
    }
  } else if (!fields.isNull()) {
    rec.set("data", std::move(fields));
  }
  const std::string line = rec.dump();
  std::lock_guard<std::mutex> lock(gMu);
  std::ostream* os = gSink.load(std::memory_order_relaxed);
  if (os == nullptr) return;  // detached while we rendered
  *os << line << '\n';
  os->flush();
}

}  // namespace lamp::obs
