#ifndef LAMP_OBS_METRICS_H
#define LAMP_OBS_METRICS_H

/// \file metrics.h
/// Process-wide metrics: counters, gauges and fixed-bucket latency
/// histograms, collected in a Registry that renders to JSON (with
/// p50/p95/p99 estimates per histogram) and to the Prometheus text
/// exposition format.
///
/// Update paths are lock-free (relaxed atomics); registration and
/// rendering serialize on the registry mutex, so a render is one
/// consistent pass over every metric — the property svc::Service relies
/// on for its `stats` verb (its old hand-rolled statsJson() read each
/// counter at a different instant).
///
/// There is one process-global registry (Registry::global()) for
/// solver-level metrics, and components that need isolated counting —
/// e.g. each svc::Service instance, so tests with several services do
/// not share counters — own their own Registry and merge it into their
/// exposition.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.h"

namespace lamp::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  /// Counters are monotonic in normal operation; reset exists for
  /// Registry::reset() (tests) only.
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (Prometheus-style cumulative exposition; the
/// implicit +Inf bucket is always present). Bounds are upper bounds,
/// strictly ascending. observe() is lock-free.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          ///< finite upper bounds
    std::vector<std::uint64_t> counts;   ///< per-bucket (bounds.size()+1)
    std::uint64_t count = 0;
    double sum = 0.0;

    /// Quantile estimate by linear interpolation inside the bucket that
    /// holds the target rank (the Prometheus histogram_quantile model).
    /// Observations in the +Inf bucket clamp to the last finite bound.
    double quantile(double q) const;
  };
  Snapshot snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

  void reset();

  /// n ascending bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> exponentialBounds(double start, double factor,
                                               int n);

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Named metrics, insertion-ordered. Metric references returned by
/// counter()/gauge()/histogram() stay valid for the registry's lifetime;
/// calling a getter again with the same name returns the same object.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (solver internals, flow counters).
  static Registry& global();

  Counter& counter(const std::string& name, std::string help = {});
  Gauge& gauge(const std::string& name, std::string help = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       std::string help = {});

  /// One consistent pass: {"name": {"type":..., "value":...}, ...};
  /// histograms carry count/sum/buckets and p50/p95/p99.
  util::Json toJson() const;

  /// Prometheus text exposition (# HELP/# TYPE + samples).
  std::string toPrometheus() const;

  /// Zeroes every counter/gauge/histogram (tests).
  void reset();

 private:
  struct Entry {
    enum class Kind : std::uint8_t { Counter, Gauge, Histogram } kind;
    std::string name;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry* findLocked(const std::string& name);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace lamp::obs

#endif  // LAMP_OBS_METRICS_H
