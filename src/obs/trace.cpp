#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "util/json.h"

namespace lamp::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// One buffered trace event. Name/category point at string literals at
/// the instrumentation sites; args (when present) are pre-rendered JSON
/// object text, built only while tracing is enabled.
struct Event {
  char ph = 'B';  // 'B' begin, 'E' end, 'i' instant
  std::int64_t tsUs = 0;
  const char* name = "";
  const char* cat = "";
  std::string args;
};

/// Capped per-thread buffer. The owning thread appends under `mu`
/// (uncontended except during a concurrent dump); the collector locks
/// the same mutex, so dumping mid-run is safe.
struct ThreadBuf {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::string threadName;
  std::vector<Event> events;
  std::uint64_t dropped = 0;
};

constexpr std::size_t kMaxEventsPerThread = 1u << 20;

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;  // live + exited threads
  std::uint32_t nextTid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives exiting threads
  return *r;
}

std::atomic<bool>& enabledFlag() {
  static std::atomic<bool> flag{[] {
    const char* e = std::getenv("LAMP_TRACE");
    return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
  }()};
  return flag;
}

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

std::int64_t nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch())
      .count();
}

ThreadBuf& threadBuf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    b->tid = r.nextTid++;
    r.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

void record(char ph, const char* name, const char* cat, std::string args) {
  const std::int64_t ts = nowUs();  // before the lock: cheap + ordered
  ThreadBuf& buf = threadBuf();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(Event{ph, ts, name, cat, std::move(args)});
}

}  // namespace

bool traceEnabled() {
  return enabledFlag().load(std::memory_order_relaxed);
}

void setTraceEnabled(bool on) {
  if (on) (void)epoch();  // pin the epoch no later than enabling
  enabledFlag().store(on, std::memory_order_relaxed);
}

void setThreadName(const std::string& name) {
  if (!traceEnabled()) return;
  ThreadBuf& buf = threadBuf();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.threadName = name;
}

std::string traceArg(const char* key, double value) {
  util::Json j = util::Json::object();
  j.set(key, util::Json::number(value));
  return j.dump();
}

void instant(const char* name, const char* category, std::string argsJson) {
  if (!traceEnabled()) return;
  record('i', name, category, std::move(argsJson));
}

Span::Span(const char* name, const char* category)
    : name_(name), category_(category), active_(traceEnabled()) {
  if (active_) record('B', name_, category_, {});
}

Span::Span(const char* name, const char* category, std::string endArgsJson)
    : Span(name, category) {
  if (active_) endArgs_ = std::move(endArgsJson);
}

void Span::endArgs(std::string argsJson) {
  if (active_) endArgs_ = std::move(argsJson);
}

Span::~Span() {
  // Symmetry over the enable flag: a span opened while tracing was on
  // always closes, even if tracing was turned off meanwhile — every 'B'
  // gets its 'E'.
  if (active_) record('E', name_, category_, std::move(endArgs_));
}

void writeChromeTrace(std::ostream& os) {
  Registry& r = registry();
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    bufs = r.bufs;
  }
  os << "{\"traceEvents\":[";
  bool first = true;
  std::uint64_t dropped = 0;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mu);
    dropped += buf->dropped;
    if (!buf->threadName.empty()) {
      os << (first ? "" : ",")
         << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << buf->tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":"
         << util::Json::string(buf->threadName).dump() << "}}";
      first = false;
    }
    for (const Event& e : buf->events) {
      os << (first ? "" : ",") << "{\"ph\":\"" << e.ph
         << "\",\"ts\":" << e.tsUs << ",\"pid\":1,\"tid\":" << buf->tid
         << ",\"name\":" << util::Json::string(e.name).dump()
         << ",\"cat\":" << util::Json::string(e.cat).dump();
      if (e.ph == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
      if (!e.args.empty()) os << ",\"args\":" << e.args;
      os << "}";
      first = false;
    }
  }
  os << "],\"displayTimeUnit\":\"ms\",\"lampDroppedEvents\":" << dropped
     << "}\n";
}

std::size_t traceEventCount() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::size_t n = 0;
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::uint64_t traceDroppedEvents() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t n = 0;
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->dropped;
  }
  return n;
}

void clearTrace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
    buf->dropped = 0;
  }
}

}  // namespace lamp::obs
