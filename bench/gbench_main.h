#ifndef LAMP_BENCH_GBENCH_MAIN_H
#define LAMP_BENCH_GBENCH_MAIN_H

/// \file gbench_main.h
/// Shared main() for the google-benchmark micro targets. Unless the
/// caller passed its own --benchmark_out, the JSON artifact is routed
/// through bench::outputPath() so every micro_* binary leaves its
/// BENCH_*.json next to the hand-rolled benches' artifacts.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"

namespace lamp::bench {

inline int gbenchMain(int argc, char** argv, const char* defaultJson) {
  std::vector<char*> args(argv, argv + argc);
  bool hasOut = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) hasOut = true;
  }
  std::string outArg, fmtArg;
  if (!hasOut) {
    outArg = "--benchmark_out=" + outputPath(defaultJson);
    fmtArg = "--benchmark_out_format=json";
    args.push_back(outArg.data());
    args.push_back(fmtArg.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace lamp::bench

#endif  // LAMP_BENCH_GBENCH_MAIN_H
