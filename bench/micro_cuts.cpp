// Microbenchmark for the bit-level dataflow masking: measures, per
// benchmark, how much the known-bits / demanded-bits facts (plus the
// fact-driven graph simplification) shrink the cut enumeration and the
// downstream mapping-aware MILP. Two configurations per design:
//   off  cuts enumerated on the original graph without facts,
//   on   graph simplified from the facts, cuts enumerated with masking.
// Results go to BENCH_cuts.json with the schema
//   {bench, config, nodes, cuts, max_cone, milp_vars, milp_constraints,
//    solve_s, status}
// so successive PRs can track the reduction trajectory. The README's
// before/after cut-count table is generated from this output.
//
// Knobs: LAMP_SCALE, LAMP_TIME_LIMIT (cap per solve, default 20 s),
// LAMP_FILTER, LAMP_CSV.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/dataflow.h"
#include "bench_util.h"
#include "cut/cut.h"
#include "ir/simplify.h"
#include "report/table.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

using namespace lamp;

namespace {

struct Row {
  std::string bench;
  std::string config;
  std::size_t nodes = 0;
  std::size_t cuts = 0;
  std::size_t maxCone = 0;
  std::size_t milpVars = 0;
  std::size_t milpConstraints = 0;
  double solveSeconds = 0.0;
  std::string status;
};

void writeJson(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"config\": \"" << r.config
        << "\", \"nodes\": " << r.nodes << ", \"cuts\": " << r.cuts
        << ", \"max_cone\": " << r.maxCone << ", \"milp_vars\": " << r.milpVars
        << ", \"milp_constraints\": " << r.milpConstraints
        << ", \"solve_s\": " << r.solveSeconds << ", \"status\": \""
        << r.status << "\"}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

Row measure(const std::string& bench, const std::string& config,
            const ir::Graph& g, const ir::BitFacts* facts,
            const sched::ResourceLimits& resources, double timeLimit) {
  Row row;
  row.bench = bench;
  row.config = config;
  row.nodes = g.size();

  cut::CutEnumOptions co;
  co.facts = facts;
  const cut::CutDatabase db = cut::enumerateCuts(g, co);
  row.cuts = db.totalCuts;
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    for (const cut::Cut& c : db.at(v).cuts) {
      row.maxCone = std::max(row.maxCone, c.coneNodes.size());
    }
  }

  sched::DelayModel delays;
  const cut::CutDatabase trivial = cut::trivialCuts(g, co);
  sched::SdcOptions sdcOpts;
  sdcOpts.resources = resources;
  sched::SdcResult sdc;
  for (sdcOpts.ii = 1; sdcOpts.ii <= 8; ++sdcOpts.ii) {
    sdc = sched::sdcSchedule(g, trivial, delays, sdcOpts);
    if (sdc.success) break;
  }
  if (!sdc.success) {
    row.status = "sdc_failed";
    return row;
  }

  sched::MilpSchedOptions mo;
  mo.ii = sdc.schedule.ii;
  mo.maxLatency = sdc.schedule.latency(g) + 1;
  mo.resources = resources;
  mo.solver.timeLimitSeconds = timeLimit;
  const sched::MilpSchedResult r = sched::milpSchedule(g, db, delays, mo);
  row.milpVars = r.numVars;
  row.milpConstraints = r.numConstraints;
  row.solveSeconds = r.solveSeconds;
  row.status = std::string(lp::solveStatusName(r.status));
  return row;
}

}  // namespace

int main() {
  const auto scale = bench::envScale();
  const double timeLimit = bench::envTimeLimit(20.0);

  report::Table table({"Bench", "Config", "Nodes", "Cuts", "MaxCone",
                       "MilpVars", "MilpRows", "Solve(s)", "Status"});
  std::vector<Row> rows;

  for (const auto& bm : bench::selectedBenchmarks(scale)) {
    std::cerr << "[micro_cuts] " << bm.name << "...\n";
    rows.push_back(measure(bm.name, "off", bm.graph, nullptr, bm.resources,
                           timeLimit));

    const analyze::DataflowResult dflow = analyze::analyzeDataflow(bm.graph);
    const ir::BitFacts facts = analyze::toBitFacts(dflow);
    const ir::Graph simplified = ir::simplify(bm.graph, facts);
    const analyze::DataflowResult dflow2 = analyze::analyzeDataflow(simplified);
    const ir::BitFacts facts2 = analyze::toBitFacts(dflow2);
    rows.push_back(measure(bm.name, "on", simplified, &facts2, bm.resources,
                           timeLimit));
  }

  for (const Row& r : rows) {
    table.addRow({r.bench, r.config, std::to_string(r.nodes),
                  std::to_string(r.cuts), std::to_string(r.maxCone),
                  std::to_string(r.milpVars),
                  std::to_string(r.milpConstraints),
                  report::fixed(r.solveSeconds), r.status});
  }
  if (bench::envCsv()) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  const std::string jsonPath = bench::outputPath("BENCH_cuts.json");
  writeJson(jsonPath, rows);
  std::cerr << "[micro_cuts] wrote " << jsonPath << " (" << rows.size()
            << " rows)\n";
  return 0;
}
