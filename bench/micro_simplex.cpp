// google-benchmark microbenchmarks for the LP substrate: cold solves vs
// incremental (dual simplex) re-solves — the mechanism that makes the
// branch & bound viable on scheduling MILPs.

#include <benchmark/benchmark.h>

#include <random>

#include "gbench_main.h"
#include "lp/simplex.h"

using namespace lamp::lp;

namespace {

/// A feasible random assignment-flavoured LP with n one-hot groups of g
/// binaries (relaxed) plus coupling rows — shaped like the scheduling
/// relaxations the B&B solves.
Model makeModel(int groups, int width, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> cDist(0.1, 2.0);
  Model m;
  std::vector<std::vector<Var>> vars(groups);
  LinExpr obj;
  for (int i = 0; i < groups; ++i) {
    LinExpr onehot;
    for (int j = 0; j < width; ++j) {
      const Var v = m.addContinuous(0.0, 1.0);
      vars[i].push_back(v);
      onehot.add(v, 1.0);
      obj.add(v, cDist(rng) * j);
    }
    m.addConstraint(onehot, Sense::Eq, 1.0);
    if (i > 0) {
      // Precedence-like coupling between consecutive groups.
      LinExpr prec;
      for (int j = 0; j < width; ++j) {
        prec.add(vars[i - 1][j], j);
        prec.add(vars[i][j], -static_cast<double>(j));
      }
      m.addConstraint(prec, Sense::Le, 0.0);
    }
  }
  m.setObjective(obj);
  return m;
}

void BM_SimplexCold(benchmark::State& state) {
  const Model m = makeModel(static_cast<int>(state.range(0)), 6, 42);
  for (auto _ : state) {
    SimplexSolver s(m);
    benchmark::DoNotOptimize(s.solve().objective);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SimplexCold)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_SimplexIncrementalRebound(benchmark::State& state) {
  const Model m = makeModel(static_cast<int>(state.range(0)), 6, 42);
  IncrementalSimplex inc(m);
  std::vector<double> lb(m.numVars()), ub(m.numVars());
  for (Var v = 0; v < static_cast<Var>(m.numVars()); ++v) {
    lb[v] = m.lowerBound(v);
    ub[v] = m.upperBound(v);
  }
  (void)inc.solve(lb, ub);  // prime the basis
  std::mt19937 rng(7);
  for (auto _ : state) {
    // Fix one variable to 0 (a branch), solve, relax it again.
    const Var v = static_cast<Var>(rng() % m.numVars());
    ub[v] = 0.0;
    benchmark::DoNotOptimize(inc.solve(lb, ub).status);
    ub[v] = m.upperBound(v);
    benchmark::DoNotOptimize(inc.solve(lb, ub).status);
  }
}
BENCHMARK(BM_SimplexIncrementalRebound)
    ->RangeMultiplier(2)
    ->Range(8, 64);

}  // namespace

int main(int argc, char** argv) {
  return lamp::bench::gbenchMain(argc, argv, "BENCH_simplex.json");
}
