// google-benchmark microbenchmarks for word-level cut enumeration:
// scaling in graph size and in K (the paper notes enumeration is
// exponential in K yet fast for the practical K <= 6).

#include <benchmark/benchmark.h>

#include "cut/cut.h"
#include "gbench_main.h"
#include "ir/builder.h"

using namespace lamp;

namespace {

ir::Graph xorTree(int leaves, int width) {
  ir::GraphBuilder b("tree");
  std::vector<ir::Value> layer;
  for (int i = 0; i < leaves; ++i) {
    layer.push_back(b.input("i" + std::to_string(i),
                            static_cast<std::uint16_t>(width)));
  }
  while (layer.size() > 1) {
    std::vector<ir::Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.bxor(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = std::move(next);
  }
  b.output(layer[0], "o");
  return b.take();
}

void BM_CutEnumTreeSize(benchmark::State& state) {
  const ir::Graph g = xorTree(static_cast<int>(state.range(0)), 16);
  cut::CutEnumOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::enumerateCuts(g, opts).totalCuts);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CutEnumTreeSize)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_CutEnumK(benchmark::State& state) {
  const ir::Graph g = xorTree(64, 16);
  cut::CutEnumOptions opts;
  opts.k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::enumerateCuts(g, opts).totalCuts);
  }
}
BENCHMARK(BM_CutEnumK)->DenseRange(2, 6);

void BM_TrivialCuts(benchmark::State& state) {
  const ir::Graph g = xorTree(static_cast<int>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cut::trivialCuts(g).totalCuts);
  }
}
BENCHMARK(BM_TrivialCuts)->Range(8, 128);

}  // namespace

int main(int argc, char** argv) {
  return lamp::bench::gbenchMain(argc, argv, "BENCH_cutenum.json");
}
