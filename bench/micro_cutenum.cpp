// Cut-enumeration engine microbench: every paper benchmark, enumerated
// repeatedly per thread count, reporting median ms/iteration, cuts/sec,
// memo hits and peak arena bytes. Writes BENCH_cutenum.json (see
// bench_util.h for where) and, when a baseline file is present,
// per-benchmark speedup against it plus the greedy mapping LUT cost so
// regressions in either speed or mapping quality are visible.
//
// Extra knobs on top of bench_util.h:
//   LAMP_BENCH_ITERS=<n>    timed iterations per (benchmark, threads)
//   LAMP_BASELINE_JSON=F    baseline file (default:
//                           bench/baseline_pr5_cutenum.json in the repo)

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analyze/dataflow.h"
#include "bench_util.h"
#include "cut/cut.h"
#include "sched/greedy.h"
#include "util/json.h"

using namespace lamp;
using util::Json;

namespace {

int envIters(int fallback) {
  const char* s = std::getenv("LAMP_BENCH_ITERS");
  const int n = s != nullptr ? std::atoi(s) : 0;
  return n > 0 ? n : fallback;
}

/// Baseline entries committed by an earlier PR: median ms/iteration of
/// its enumerator and the LUT cost of its greedy mapping-aware covering.
struct Baseline {
  double msPerIter = 0.0;
  double greedyLutCost = -1.0;
  bool valid = false;
};

Baseline baselineFor(const Json* doc, const std::string& name) {
  Baseline b;
  if (doc == nullptr) return b;
  const Json* e = doc->find(name);
  if (e == nullptr || !e->isObject()) return b;
  const Json* ms = e->find("msPerIter");
  if (ms == nullptr || !ms->isNumber()) return b;
  b.msPerIter = ms->asDouble();
  if (const Json* lc = e->find("greedyLutCost")) {
    b.greedyLutCost = lc->asDouble(-1.0);
  }
  b.valid = true;
  return b;
}

/// LUT cost of the greedy mapping-aware covering at the smallest II the
/// heuristic sustains — the "selected mapping" quality figure tracked
/// against the baseline (the databases decide what the covering can
/// pick, so a worse database shows up here even when the MILP would
/// recover).
double greedyLutCost(const workloads::Benchmark& bm,
                     const cut::CutDatabase& db) {
  sched::DelayModel delays;
  sched::SdcOptions go;
  go.resources = bm.resources;
  for (go.ii = 1; go.ii <= 9; ++go.ii) {
    const sched::SdcResult r =
        sched::greedyMapSchedule(bm.graph, db, delays, go);
    if (!r.success) continue;
    double cost = 0.0;
    for (ir::NodeId v = 0; v < bm.graph.size(); ++v) {
      if (r.schedule.isRoot(v)) {
        cost += db.at(v).cuts[r.schedule.selectedCut[v]].lutCost;
      }
    }
    return cost;
  }
  return -1.0;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

}  // namespace

int main() {
  const std::vector<workloads::Benchmark> benchmarks =
      bench::selectedBenchmarks(bench::envScale());
  const std::vector<int> threadCounts = bench::envThreadCounts({1, 8});
  const int iters = envIters(25);
  const bool csv = bench::envCsv();

  std::optional<Json> baselineDoc;
  {
    std::string path = bench::outputPath("bench/baseline_pr5_cutenum.json");
    if (const char* p = std::getenv("LAMP_BASELINE_JSON")) path = p;
    if (std::ifstream in(path); in) {
      std::stringstream ss;
      ss << in.rdbuf();
      baselineDoc = Json::parse(ss.str());
    }
  }
  const Json* base = baselineDoc ? &*baselineDoc : nullptr;

  if (csv) {
    std::cout << "benchmark,threads,nodes,totalCuts,msPerIter,cutsPerSec,"
                 "memoHits,arenaPeakBytes,greedyLutCost,speedup\n";
  } else {
    std::cout << "Cut enumeration engine: " << benchmarks.size()
              << " benchmarks x {";
    for (std::size_t i = 0; i < threadCounts.size(); ++i) {
      std::cout << (i ? "," : "") << threadCounts[i];
    }
    std::cout << "} threads, " << iters << " iterations each\n\n";
  }

  Json rows = Json::array();
  for (const auto& bm : benchmarks) {
    // Mapping quality is thread-independent (enumeration is
    // bit-identical at every thread count): compute it once.
    cut::CutEnumOptions qopts;
    const double lutCost = greedyLutCost(bm, cut::enumerateCuts(bm.graph, qopts));
    const Baseline b = baselineFor(base, bm.name);

    for (const int threads : threadCounts) {
      cut::CutEnumOptions opts;
      opts.threads = threads;
      cut::CutDatabase db = cut::enumerateCuts(bm.graph, opts);  // warm-up
      std::vector<double> ms;
      ms.reserve(static_cast<std::size_t>(iters));
      for (int i = 0; i < iters; ++i) {
        const util::Stopwatch sw;
        db = cut::enumerateCuts(bm.graph, opts);
        ms.push_back(sw.seconds() * 1e3);
      }
      const double msPerIter = median(std::move(ms));
      const double cutsPerSec =
          msPerIter > 0 ? static_cast<double>(db.totalCuts) / (msPerIter / 1e3)
                        : 0.0;
      const double speedup =
          b.valid && msPerIter > 0 ? b.msPerIter / msPerIter : 0.0;

      Json row = Json::object();
      row.set("benchmark", Json::string(bm.name));
      row.set("threads", Json::integer(threads));
      row.set("threadsUsed", Json::integer(db.threadsUsed));
      row.set("nodes", Json::integer(static_cast<std::int64_t>(bm.graph.size())));
      row.set("totalCuts", Json::integer(static_cast<std::int64_t>(db.totalCuts)));
      row.set("msPerIter", Json::number(msPerIter));
      row.set("cutsPerSec", Json::number(cutsPerSec));
      row.set("memoHits", Json::integer(static_cast<std::int64_t>(db.memoHits)));
      row.set("nodesComputed",
              Json::integer(static_cast<std::int64_t>(db.nodesComputed)));
      row.set("arenaPeakBytes",
              Json::integer(static_cast<std::int64_t>(db.arenaPeakBytes)));
      row.set("greedyLutCost", Json::number(lutCost));
      if (b.valid) {
        row.set("baselineMsPerIter", Json::number(b.msPerIter));
        row.set("speedup", Json::number(speedup));
        if (b.greedyLutCost >= 0) {
          row.set("baselineGreedyLutCost", Json::number(b.greedyLutCost));
        }
      }
      rows.push(std::move(row));

      if (csv) {
        std::cout << bm.name << "," << threads << "," << bm.graph.size() << ","
                  << db.totalCuts << "," << msPerIter << "," << cutsPerSec
                  << "," << db.memoHits << "," << db.arenaPeakBytes << ","
                  << lutCost << "," << speedup << "\n";
      } else {
        std::cout << "  " << bm.name << " t=" << threads << ": " << msPerIter
                  << " ms/iter, " << cutsPerSec / 1e6 << " Mcuts/s, "
                  << db.totalCuts << " cuts, memo " << db.memoHits
                  << ", arena " << db.arenaPeakBytes << " B, greedy LUTs "
                  << lutCost;
        if (b.valid) std::cout << ", speedup " << speedup << "x";
        std::cout << "\n";
      }
    }
  }

  Json doc = Json::object();
  doc.set("bench", Json::string("cutenum"));
  doc.set("iterations", Json::integer(iters));
  doc.set("baselinePresent", Json::boolean(base != nullptr));
  doc.set("rows", std::move(rows));
  const std::string out = bench::outputPath("BENCH_cutenum.json");
  std::ofstream os(out);
  doc.write(os);
  os << "\n";
  if (!csv) std::cout << "\nWrote " << out << "\n";
  return 0;
}
