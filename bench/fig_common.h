#ifndef LAMP_BENCH_FIG_COMMON_H
#define LAMP_BENCH_FIG_COMMON_H

/// \file fig_common.h
/// The Reed-Solomon encoder kernel of Figures 1 and 2: five operations
/// (shift A, xor B, sign-test C, select D, xor E) with a loop-carried
/// dependence through the accumulator E, built at the figure's 2-bit
/// width. The figure's delay model charges every logic operation or LUT
/// 2 ns against a 5 ns clock.

#include "ir/builder.h"
#include "ir/passes.h"
#include "sched/delay_model.h"

namespace lamp::bench {

struct FigKernel {
  ir::Graph graph;
  ir::NodeId a, b, c, d, e;  // the five operations of the figure
};

inline FigKernel figureKernel(std::uint16_t width = 2) {
  ir::GraphBuilder bld("rs_encoder_fig");
  ir::Value s = bld.input("s", width, true);
  ir::Value t = bld.input("t", width, true);
  ir::Value ePh = bld.placeholder(width, "E");

  ir::Value A = bld.shr(s, 1, "A");
  ir::Value B = bld.bxor(t, A, "B");
  ir::Value zero = bld.constant(0, width);
  ir::Value C = bld.ge(B, zero, true, "C");
  ir::Value D = bld.mux(C, B, ir::Value{ePh.id, 1}, "D");
  ir::Value E = bld.bxor(D, t, "E");
  bld.bindPlaceholder(ePh, E);
  bld.output(E, "out");

  FigKernel k;
  k.graph = ir::compact(bld.graph());
  for (ir::NodeId v = 0; v < k.graph.size(); ++v) {
    const std::string& name = k.graph.node(v).name;
    if (name == "A") k.a = v;
    if (name == "B") k.b = v;
    if (name == "C") k.c = v;
    if (name == "D") k.d = v;
    if (name == "E") k.e = v;
  }
  return k;
}

/// Figure 1's delay model: every logic operation (or mapped LUT) costs
/// 2 ns, including shifts; target clock period 5 ns.
inline sched::DelayModel figureDelays() {
  sched::DelayModel dm;
  dm.lutDelayNs = 2.0;
  dm.bitwiseAdditiveNs = 2.0;
  dm.muxAdditiveNs = 2.0;
  dm.carryBaseNs = 2.0;
  dm.carryPerBitNs = 0.0;
  dm.shiftAdditiveNs = 2.0;
  return dm;
}

inline constexpr double kFigureTcp = 5.0;

}  // namespace lamp::bench

#endif  // LAMP_BENCH_FIG_COMMON_H
