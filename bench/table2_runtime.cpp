// Reproduces Table 2 of the paper: MILP solver runtime per benchmark for
// MILP-base vs MILP-map, plus instance sizes (our analogue of the paper's
// "LLVM Instrs" column is the CDFG node count). The paper capped CPLEX at
// 60 minutes and reported the cap for the hard instances; LAMP_TIME_LIMIT
// plays that role here (MILP-map should be dramatically slower and hit
// the cap on the hard designs — that asymmetry is the claim).

#include <iostream>

#include "bench_util.h"
#include "report/table.h"

using namespace lamp;

int main() {
  const auto scale = bench::envScale();
  flow::FlowOptions opts;
  opts.solverTimeLimitSeconds = bench::envTimeLimit(20.0);
  opts.verifyFrames = 0;  // Table 2 measures solver runtime only
  opts.solverThreads = bench::envThreads(1);

  report::Table table({"Design", "CDFG Nodes", "Cuts", "MILP vars",
                       "MILP rows", "MILP-base (s)", "MILP-map (s)",
                       "base status", "map status"});

  // The base and map arms of every benchmark are independent solver runs:
  // run the whole (benchmark x method) grid on the flow job pool.
  const std::vector<workloads::Benchmark> benchmarks =
      bench::selectedBenchmarks(scale);
  std::vector<flow::FlowJob> jobs;
  for (const auto& bm : benchmarks) {
    jobs.push_back({&bm, flow::Method::MilpBase});
    jobs.push_back({&bm, flow::Method::MilpMap});
  }
  std::cerr << "[table2] running " << benchmarks.size()
            << " benchmarks x 2 MILP arms (LAMP_JOBS="
            << (bench::envJobs() > 0 ? std::to_string(bench::envJobs())
                                     : std::string("auto"))
            << ")...\n";
  const std::vector<flow::FlowResult> all =
      flow::runFlowJobs(jobs, opts, bench::envJobs());

  double sumBase = 0, sumMap = 0, sumNodes = 0;
  int count = 0;
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    const auto& bm = benchmarks[b];
    const flow::FlowResult& base = all[b * 2 + 0];
    const flow::FlowResult& mapr = all[b * 2 + 1];
    table.addRow({bm.name, std::to_string(bm.graph.size()),
                  std::to_string(mapr.numCuts), std::to_string(mapr.numVars),
                  std::to_string(mapr.numConstraints),
                  report::fixed(base.solveSeconds, 1),
                  report::fixed(mapr.solveSeconds, 1),
                  std::string(lp::solveStatusName(base.status)),
                  std::string(lp::solveStatusName(mapr.status))});
    sumBase += base.solveSeconds;
    sumMap += mapr.solveSeconds;
    sumNodes += static_cast<double>(bm.graph.size());
    ++count;
  }
  table.addRule();
  table.addRow({"Mean", report::fixed(sumNodes / count, 1), "", "", "",
                report::fixed(sumBase / count, 1),
                report::fixed(sumMap / count, 1), "", ""});

  std::cout << "\nTable 2: MILP solver runtime per benchmark (cap "
            << opts.solverTimeLimitSeconds << " s, the paper capped CPLEX "
            << "at 3600 s)\n\n";
  if (bench::envCsv()) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nPaper shape check: MILP-map runtime >> MILP-base runtime, "
               "growing with the\nnumber of enumerated cuts; hard instances "
               "hit the cap and return incumbents\n(status 'feasible'), "
               "exactly as the paper's 3600 s rows.\n";
  return 0;
}
