#ifndef LAMP_BENCH_BENCH_UTIL_H
#define LAMP_BENCH_BENCH_UTIL_H

/// \file bench_util.h
/// Shared option handling for the paper-reproduction bench binaries.
/// Environment knobs (all optional):
///   LAMP_SCALE=paper        paper-scale benchmark instances
///   LAMP_TIME_LIMIT=<sec>   MILP wall-clock cap per instance
///   LAMP_FILTER=CLZ,RS      restrict to a comma-separated benchmark list
///   LAMP_CSV=1              CSV instead of aligned tables
///   LAMP_JOBS=<n>           concurrent (benchmark x method) flow jobs
///                           (default: one per hardware thread, capped)
///   LAMP_THREADS=<n>        branch & bound threads per MILP solve when
///                           jobs run one at a time (0 = auto)
///   LAMP_BENCH_THREADS=1,2  thread counts for the micro_milp sweep
///   LAMP_BENCH_OUT=DIR      redirect BENCH_*.json artifacts (the
///                           bench_smoke ctest points this at scratch so
///                           test runs never clobber the repo-root files)
///
/// All timing in bench/ goes through util::Stopwatch — no bench binary
/// should touch std::chrono directly.

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "flow/flow.h"
#include "util/timer.h"
#include "workloads/workloads.h"

namespace lamp::bench {

inline workloads::Scale envScale() {
  const char* s = std::getenv("LAMP_SCALE");
  return (s != nullptr && std::string(s) == "paper") ? workloads::Scale::Paper
                                                     : workloads::Scale::Default;
}

inline double envTimeLimit(double fallback) {
  const char* s = std::getenv("LAMP_TIME_LIMIT");
  return s != nullptr ? std::atof(s) : fallback;
}

inline bool envCsv() {
  const char* s = std::getenv("LAMP_CSV");
  return s != nullptr && std::string(s) == "1";
}

inline int envJobs() {
  const char* s = std::getenv("LAMP_JOBS");
  return s != nullptr ? std::atoi(s) : 0;  // 0 = pool default
}

inline int envThreads(int fallback) {
  const char* s = std::getenv("LAMP_THREADS");
  return s != nullptr ? std::atoi(s) : fallback;
}

/// Thread counts for solver-scaling sweeps; LAMP_BENCH_THREADS is a
/// comma-separated override (the bench_smoke lane passes "1").
inline std::vector<int> envThreadCounts(std::vector<int> fallback) {
  const char* s = std::getenv("LAMP_BENCH_THREADS");
  if (s == nullptr) return fallback;
  std::vector<int> out;
  std::string tok;
  for (std::istringstream in(s); std::getline(in, tok, ',');) {
    const int n = std::atoi(tok.c_str());
    if (n > 0) out.push_back(n);
  }
  return out.empty() ? fallback : out;
}

/// Where a BENCH_*.json artifact lands: LAMP_BENCH_OUT if set, else the
/// repo root baked in at configure time (so artifacts land in a stable
/// place regardless of the invocation directory), else the CWD.
inline std::string outputPath(const std::string& filename) {
  if (const char* dir = std::getenv("LAMP_BENCH_OUT")) {
    return std::string(dir) + "/" + filename;
  }
#ifdef LAMP_REPO_ROOT
  return std::string(LAMP_REPO_ROOT) + "/" + filename;
#else
  return filename;
#endif
}

inline std::vector<workloads::Benchmark> selectedBenchmarks(
    workloads::Scale scale) {
  std::vector<workloads::Benchmark> all = workloads::allBenchmarks(scale);
  const char* f = std::getenv("LAMP_FILTER");
  if (f == nullptr) return all;
  const std::string filter = f;
  std::vector<workloads::Benchmark> out;
  for (auto& bm : all) {
    if (filter.find(bm.name) != std::string::npos) out.push_back(std::move(bm));
  }
  return out;
}

}  // namespace lamp::bench

#endif  // LAMP_BENCH_BENCH_UTIL_H
