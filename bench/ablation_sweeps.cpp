// Ablation studies for the design choices DESIGN.md calls out:
//  (a) LUT input count K (the paper notes cut enumeration is exponential
//      in K but fast for K <= 6),
//  (b) the per-node cut cap (our pruning knob; the paper relies on CPLEX
//      presolve instead),
//  (c) the alpha/beta LUT-vs-register trade-off of objective (15),
//  (d) the greedy mapping-aware heuristic (the paper's "future work")
//      versus the exact MILP.

#include <iostream>

#include "bench_util.h"
#include "map/area.h"
#include "report/table.h"
#include "sched/greedy.h"

using namespace lamp;

namespace {

workloads::Benchmark pick(const std::string& name) {
  for (auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
    if (bm.name == name) return bm;
  }
  std::abort();
}

}  // namespace

int main() {
  const double cap = bench::envTimeLimit(10.0);

  // --- (a)+(b): K and cut-cap sweep on GFMUL ---------------------------------
  {
    report::Table t({"K", "cut cap", "total cuts", "enum ms", "LUT", "FF",
                     "stages", "MILP status"});
    const workloads::Benchmark bm = pick("GFMUL");
    for (const int k : {3, 4, 6}) {
      for (const int cap2 : {2, 4, 8}) {
        flow::FlowOptions o;
        o.cuts.k = k;
        o.cuts.maxCutsPerNode = cap2;
        o.solverTimeLimitSeconds = cap;
        const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, o);
        const auto db = cut::enumerateCuts(bm.graph, o.cuts);
        t.addRow({std::to_string(k), std::to_string(cap2),
                  std::to_string(db.totalCuts),
                  report::fixed(db.wallSeconds * 1e3, 2),
                  r.success ? std::to_string(r.area.luts) : "-",
                  r.success ? std::to_string(r.area.ffs) : "-",
                  r.success ? std::to_string(r.area.stages) : "-",
                  std::string(lp::solveStatusName(r.status))});
      }
    }
    std::cout << "\nAblation (a,b): K and cut cap on GFMUL (cap " << cap
              << " s)\n\n";
    t.print(std::cout);
  }

  // --- (c): alpha/beta sweep on XORR ------------------------------------------
  {
    report::Table t({"alpha", "beta", "LUT", "FF", "stages"});
    const workloads::Benchmark bm = pick("XORR");
    for (const auto& [a, b2] : {std::pair{1.0, 0.0}, std::pair{0.5, 0.5},
                                std::pair{0.1, 0.9}, std::pair{0.0, 1.0}}) {
      flow::FlowOptions o;
      o.alpha = a;
      o.beta = b2;
      o.solverTimeLimitSeconds = cap;
      const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, o);
      t.addRow({report::fixed(a, 1), report::fixed(b2, 1),
                r.success ? std::to_string(r.area.luts) : "-",
                r.success ? std::to_string(r.area.ffs) : "-",
                r.success ? std::to_string(r.area.stages) : "-"});
    }
    std::cout << "\nAblation (c): objective weights on XORR\n\n";
    t.print(std::cout);
  }

  // --- (d): greedy mapping-aware heuristic vs MILP-map -------------------------
  {
    report::Table t({"Design", "Method", "LUT", "FF", "stages", "time (s)"});
    for (const char* name : {"XORR", "GFMUL", "GSM", "RS"}) {
      const workloads::Benchmark bm = pick(name);
      flow::FlowOptions o;
      o.solverTimeLimitSeconds = cap;
      const flow::FlowResult milp = flow::runFlow(bm, flow::Method::MilpMap, o);

      const auto db = cut::enumerateCuts(bm.graph, o.cuts);
      sched::SdcOptions go;
      go.resources = bm.resources;
      const util::Stopwatch greedyWatch;
      sched::SdcResult greedy;
      for (go.ii = 1; go.ii <= 4; ++go.ii) {
        greedy = sched::greedyMapSchedule(bm.graph, db, o.delays, go);
        if (greedy.success) break;
      }
      const double gs = greedyWatch.seconds();
      if (milp.success) {
        t.addRow({bm.name, "MILP-map", std::to_string(milp.area.luts),
                  std::to_string(milp.area.ffs),
                  std::to_string(milp.area.stages),
                  report::fixed(milp.solveSeconds, 2)});
      }
      if (greedy.success) {
        const auto rep = map::evaluate(bm.graph, greedy.schedule, o.delays);
        t.addRow({bm.name, "GreedyMap", std::to_string(rep.luts),
                  std::to_string(rep.ffs), std::to_string(rep.stages),
                  report::fixed(gs, 2)});
      }
      t.addRule();
    }
    std::cout << "\nAblation (d): scalable mapping-aware heuristic "
                 "(Section 5 future work)\nvs the exact MILP\n\n";
    t.print(std::cout);
  }
  return 0;
}
