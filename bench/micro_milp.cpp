// Microbenchmark for the parallel branch & bound solver: times the RS and
// AES modulo-scheduling MILPs (Table 2-class instances) at 1/2/4/8 worker
// threads and writes machine-readable results to BENCH_milp.json with the
// schema {bench, threads, wall_s, nodes, speedup} (plus objective/status
// for auditability), so successive PRs can track the perf trajectory.
//
// The solves run *without* the SDC warm start the experiment flows pass:
// every configuration has to discover its own incumbents, which is
// precisely where the parallel search's diversification (idle workers
// steal shallow siblings instead of following the serial dive) pays off —
// earlier incumbents prune subtrees the serial dive wastes time in, so
// wall-clock can drop even on a single core.
//
// Knobs: LAMP_SCALE, LAMP_TIME_LIMIT (cap per solve, default 60 s),
// LAMP_FILTER (restrict benchmarks), LAMP_CSV, LAMP_BENCH_THREADS
// (comma-separated thread sweep, default 1,2,4,8), LAMP_BENCH_OUT.

#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cut/cut.h"
#include "report/table.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

using namespace lamp;

namespace {

struct Row {
  std::string bench;
  int threads = 1;
  double wallSeconds = 0.0;
  std::int64_t nodes = 0;
  double speedup = 1.0;
  double objective = 0.0;
  std::string status;
};

void writeJson(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"bench\": \"" << r.bench << "\", \"threads\": " << r.threads
        << ", \"wall_s\": " << r.wallSeconds << ", \"nodes\": " << r.nodes
        << ", \"speedup\": " << r.speedup << ", \"objective\": " << r.objective
        << ", \"status\": \"" << r.status << "\"}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
}

}  // namespace

int main() {
  const auto scale = bench::envScale();
  const double timeLimit = bench::envTimeLimit(60.0);
  const std::vector<int> threadCounts = bench::envThreadCounts({1, 2, 4, 8});

  // RS and AES by default (the Table 2 designs whose solves dominate);
  // LAMP_FILTER widens or narrows the set.
  std::vector<workloads::Benchmark> benchmarks;
  const bool filtered = std::getenv("LAMP_FILTER") != nullptr;
  for (auto& bm : bench::selectedBenchmarks(scale)) {
    if (filtered || bm.name == "RS" || bm.name == "AES") {
      benchmarks.push_back(std::move(bm));
    }
  }

  sched::DelayModel delays;
  cut::CutEnumOptions cutOpts;
  report::Table table({"Bench", "Threads", "Wall(s)", "Nodes", "Speedup",
                       "Objective", "Status"});
  std::vector<Row> rows;

  for (const auto& bm : benchmarks) {
    const cut::CutDatabase mapDb = cut::enumerateCuts(bm.graph, cutOpts);
    const cut::CutDatabase trivial = cut::trivialCuts(bm.graph, cutOpts);

    // SDC pass for the latency bound only (its schedule is NOT used as a
    // warm start here — see the file comment).
    sched::SdcOptions sdcOpts;
    sdcOpts.resources = bm.resources;
    sched::SdcResult sdc;
    for (sdcOpts.ii = 1; sdcOpts.ii <= 8; ++sdcOpts.ii) {
      sdc = sched::sdcSchedule(bm.graph, trivial, delays, sdcOpts);
      if (sdc.success) break;
    }
    if (!sdc.success) {
      std::cerr << "[micro_milp] " << bm.name
                << ": SDC baseline failed, skipping\n";
      continue;
    }

    // Both Table 2 arms: the mapping-agnostic MILP (trivial cuts) and the
    // mapping-aware MILP (enumerated cuts).
    const struct {
      const char* suffix;
      const cut::CutDatabase* db;
    } arms[] = {{"-base", &trivial}, {"-map", &mapDb}};

    for (const auto& arm : arms) {
      sched::MilpSchedOptions mo;
      mo.ii = sdc.schedule.ii;
      mo.maxLatency = sdc.schedule.latency(bm.graph) + 1;
      mo.resources = bm.resources;
      mo.solver.timeLimitSeconds = timeLimit;
      mo.warmStart = nullptr;

      const std::string name = bm.name + arm.suffix;
      double serialWall = 0.0;
      for (const int threads : threadCounts) {
        std::cerr << "[micro_milp] " << name << " @ " << threads
                  << " thread(s)...\n";
        mo.solver.threads = threads;
        const sched::MilpSchedResult r =
            sched::milpSchedule(bm.graph, *arm.db, delays, mo);
        Row row;
        row.bench = name;
        row.threads = threads;
        row.wallSeconds = r.solveSeconds;
        row.nodes = r.branchNodes;
        row.objective = r.objective;
        row.status = std::string(lp::solveStatusName(r.status));
        if (threads == 1) serialWall = r.solveSeconds;
        row.speedup = row.wallSeconds > 0 ? serialWall / row.wallSeconds : 1.0;
        rows.push_back(row);
        table.addRow({row.bench, std::to_string(row.threads),
                      report::fixed(row.wallSeconds, 3),
                      std::to_string(row.nodes), report::fixed(row.speedup, 2),
                      report::fixed(row.objective, 4), row.status});
      }
      table.addRule();
    }
  }

  if (bench::envCsv()) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  const std::string jsonPath = bench::outputPath("BENCH_milp.json");
  writeJson(jsonPath, rows);
  std::cout << "\nWrote " << jsonPath << " (" << rows.size() << " rows)\n";
  return 0;
}
