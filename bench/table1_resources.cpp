// Reproduces Table 1 of the paper: CP / LUT / FF for every benchmark
// under the three methods (HLS tool, MILP-base, MILP-map), with
// percentage deltas relative to the HLS tool, followed by the Section
// 4.1/4.2 aggregate claims. Target clock period 10 ns, II = 1.

#include <iostream>

#include "bench_util.h"
#include "report/table.h"

using namespace lamp;

int main() {
  const auto scale = bench::envScale();
  flow::FlowOptions opts;
  opts.solverTimeLimitSeconds = bench::envTimeLimit(20.0);
  opts.solverThreads = bench::envThreads(1);

  report::Table table({"Design", "Domain", "Method", "CP(ns)", "LUT", "LUT%",
                       "FF", "FF%", "Stages", "Status"});

  struct Agg {
    double lutHls = 0, lutBase = 0, lutMap = 0;
    double ffHls = 0, ffBase = 0, ffMap = 0;
    int designs = 0;
  } kernels, apps;

  // Every (benchmark, method) pair is independent: fan the whole grid out
  // on the flow job pool and assemble rows from the ordered results.
  const std::vector<workloads::Benchmark> benchmarks =
      bench::selectedBenchmarks(scale);
  const flow::Method methods[3] = {flow::Method::HlsTool,
                                   flow::Method::MilpBase,
                                   flow::Method::MilpMap};
  std::vector<flow::FlowJob> jobs;
  for (const auto& bm : benchmarks) {
    for (const flow::Method m : methods) jobs.push_back({&bm, m});
  }
  std::cerr << "[table1] running " << benchmarks.size()
            << " benchmarks x 3 methods (LAMP_JOBS="
            << (bench::envJobs() > 0 ? std::to_string(bench::envJobs())
                                     : std::string("auto"))
            << ")...\n";
  const std::vector<flow::FlowResult> all =
      flow::runFlowJobs(jobs, opts, bench::envJobs());

  bool first = true;
  for (std::size_t b = 0; b < benchmarks.size(); ++b) {
    const auto& bm = benchmarks[b];
    if (!first) table.addRule();
    first = false;
    flow::BenchmarkResults r;
    r.hls = all[b * 3 + 0];
    r.milpBase = all[b * 3 + 1];
    r.milpMap = all[b * 3 + 2];
    const flow::FlowResult* rows[3] = {&r.hls, &r.milpBase, &r.milpMap};
    for (const flow::FlowResult* f : rows) {
      if (!f->success) {
        table.addRow({bm.name, bm.domain, std::string(methodName(f->method)),
                      "-", "-", "-", "-", "-", "-", "FAILED: " + f->error});
        continue;
      }
      const bool base = f->method == flow::Method::HlsTool;
      table.addRow(
          {bm.name, bm.domain, std::string(methodName(f->method)),
           report::fixed(f->area.cpNs), std::to_string(f->area.luts),
           base ? "" : report::pctDelta(f->area.luts, r.hls.area.luts),
           std::to_string(f->area.ffs),
           base ? "" : report::pctDelta(f->area.ffs, r.hls.area.ffs),
           std::to_string(f->area.stages),
           std::string(lp::solveStatusName(f->status)) +
               (f->functionallyVerified ? " ok" : "")});
    }
    if (r.hls.success && r.milpBase.success && r.milpMap.success) {
      Agg& a = bm.domain == "Kernel" ? kernels : apps;
      a.lutHls += r.hls.area.luts;
      a.lutBase += r.milpBase.area.luts;
      a.lutMap += r.milpMap.area.luts;
      a.ffHls += r.hls.area.ffs;
      a.ffBase += r.milpBase.area.ffs;
      a.ffMap += r.milpMap.area.ffs;
      ++a.designs;
    }
  }

  std::cout << "\nTable 1: resource usage comparison (Tcp = 10 ns, II = 1)\n"
            << "Percentages are relative to the HLS-tool row.\n\n";
  if (bench::envCsv()) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }

  const auto aggregate = [&](const char* label, const Agg& a) {
    if (a.designs == 0) return;
    std::cout << "\n" << label << " (" << a.designs << " designs):\n";
    std::cout << "  MILP-map vs HLS tool:  LUT "
              << report::pctDelta(a.lutMap, a.lutHls) << ", FF "
              << report::pctDelta(a.ffMap, a.ffHls) << "\n";
    std::cout << "  MILP-base vs HLS tool: LUT "
              << report::pctDelta(a.lutBase, a.lutHls) << ", FF "
              << report::pctDelta(a.ffBase, a.ffHls) << "\n";
    std::cout << "  MILP-map vs MILP-base: FF "
              << report::pctDelta(a.ffMap, a.ffBase) << "\n";
  };
  aggregate("Section 4.1 aggregate - kernels", kernels);
  aggregate("Section 4.2 aggregate - applications", apps);

  std::cout << "\nPaper shape check: MILP-map should cut FFs sharply on "
               "every design,\nhold or reduce LUTs, and MILP-base alone "
               "should show little of either.\n";
  return 0;
}
