// Reproduces Figure 2: word-level cut enumeration on the Reed-Solomon
// encoder kernel at 2-bit width with 4-input LUTs, showing (a) the
// shift-routed dependence of A, (b) the bitwise dependence of B, (c) the
// sign-test collapse of C = (B >= 0) to a single bit, and (d) cut sets
// that remain well-defined across the loop-carried cycle through D and E.

#include <iostream>

#include "cut/cut.h"
#include "cut/dep.h"
#include "fig_common.h"

using namespace lamp;

int main() {
  const bench::FigKernel k = bench::figureKernel();
  const ir::Graph& g = k.graph;

  cut::CutEnumOptions opts;
  opts.k = 4;
  const cut::CutDatabase db = cut::enumerateCuts(g, opts);

  std::cout << "Figure 2: word-level cut enumeration for the Reed-Solomon "
               "encoder\n(2-bit operations, K = 4)\n\n";

  // Bit-level dependence tracking highlights from the figure's narrative.
  std::cout << "DEP highlights:\n";
  for (std::uint16_t bit = 0; bit < 2; ++bit) {
    const auto deps = cut::depBits(g, k.a, bit);
    std::cout << "  A[" << bit << "] (shift)   depends on "
              << deps.size() << " bit(s) of s\n";
  }
  for (std::uint16_t bit = 0; bit < 2; ++bit) {
    const auto deps = cut::depBits(g, k.b, bit);
    std::cout << "  B[" << bit << "] (xor)     depends on " << deps.size()
              << " bits (one of t, one of A)\n";
  }
  {
    const auto deps = cut::depBits(g, k.c, 0);
    std::cout << "  C (B >= 0)    depends on " << deps.size()
              << " bit only - the sign bit of B (bit " << deps[0].bit
              << ")\n";
  }
  std::cout << "\nEnumerated cut sets:\n";
  for (const ir::NodeId v : {k.a, k.b, k.c, k.d, k.e}) {
    std::cout << "  CUT(" << g.node(v).name << "):\n";
    for (const cut::Cut& c : db.at(v).cuts) {
      std::cout << "    " << c.str(g) << (c.isUnit ? "  [unit]" : "") << "\n";
    }
  }

  std::cout << "\nTotals: " << db.totalCuts << " cuts across " << g.size()
            << " nodes, " << db.worklistVisits << " worklist visits, "
            << db.wallSeconds * 1e3 << " ms\n";
  std::cout << "\nPaper shape check: C's cuts reach through B thanks to the "
               "sign-bit collapse,\nand D/E carry cuts whose elements "
               "include E from the previous iteration\n(E@-1), the "
               "loop-carried boundary of Section 3.1.\n";
  return 0;
}
