// Reproduces Figure 1: the Reed-Solomon encoder kernel scheduled (a) by
// the additive-delay flow (pessimistic: extra pipeline stages + LUTs) and
// (b) by mapping-aware scheduling (the whole kernel chains inside one
// cycle). Target clock 5 ns, every logic op / LUT 2 ns, II = 1.

#include <iostream>

#include "bench_util.h"
#include "fig_common.h"
#include "report/table.h"

using namespace lamp;

namespace {

int countRoots(const ir::Graph& g, const sched::Schedule& s) {
  int roots = 0;
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    if (!s.isRoot(v)) continue;
    const ir::OpKind k = g.node(v).kind;
    if (ir::isLutMappable(k)) ++roots;
  }
  return roots;
}

}  // namespace

int main() {
  const bench::FigKernel kernel = bench::figureKernel();

  workloads::Benchmark bm;
  bm.name = "RS-encoder-fig1";
  bm.domain = "Kernel";
  bm.description = "Figure 1 Reed-Solomon encoder example";
  bm.graph = kernel.graph;
  bm.makeInputs = [&](std::uint64_t iter, std::uint32_t seed) {
    sim::InputFrame f;
    f[0] = (iter * 3 + seed) & 3;
    f[1] = (iter * 7 + seed * 5) & 3;
    return f;
  };

  flow::FlowOptions opts;
  opts.tcpNs = bench::kFigureTcp;
  opts.delays = bench::figureDelays();
  opts.solverTimeLimitSeconds = bench::envTimeLimit(10.0);

  const flow::FlowResult pessimistic =
      flow::runFlow(bm, flow::Method::HlsTool, opts);
  const flow::FlowResult optimal = flow::runFlow(bm, flow::Method::MilpMap, opts);

  std::cout << "Figure 1: pipeline schedule for the Reed-Solomon encoder "
               "kernel\n(Tcp = 5 ns, 2 ns per logic op or LUT, II = 1)\n\n";
  report::Table t({"Schedule", "Pipeline stages", "Mapped word-level LUTs",
                   "LUT bits", "FF bits", "CP(ns)", "verified"});
  for (const auto& [label, r] :
       {std::pair{"(a) additive-delay (suboptimal)", &pessimistic},
        std::pair{"(b) mapping-aware (optimal)", &optimal}}) {
    if (!r->success) {
      std::cout << label << " FAILED: " << r->error << "\n";
      return 1;
    }
    t.addRow({label, std::to_string(r->area.stages),
              std::to_string(countRoots(bm.graph, r->schedule)),
              std::to_string(r->area.luts), std::to_string(r->area.ffs),
              report::fixed(r->area.cpNs),
              r->functionallyVerified ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\nPaper claim: (a) needs 3 LUTs and 3 pipeline stages, (b) "
               "needs 2 LUTs and\n1 stage. The reproduction should show the "
               "same collapse: fewer stages, fewer\nmapped LUTs, and far "
               "fewer FFs for the mapping-aware schedule.\n";
  return 0;
}
