// Microbenchmark for the lampd scheduling service: cold-vs-warm request
// latency through the content-addressed solution cache, and admission
// queue throughput at 1/4/8 workers. Writes BENCH_svc.json with the
// schema
//
//   {"latency":    [{bench, method, cold_ms, warm_ms, speedup}, ...],
//    "throughput": [{workers, requests, cold_s, cold_rps,
//                    warm_s, warm_rps}, ...]}
//
// The latency section is the paper-facing acceptance number: a repeated
// request must be served orders of magnitude (>= 10x on RS at paper
// scale) faster than its cold solve, because the second serve is a cache
// lookup plus JSON render instead of cut enumeration + branch & bound.
//
// Knobs: LAMP_SCALE, LAMP_TIME_LIMIT (per-solve cap, default 60 s),
// LAMP_FILTER (restrict latency benchmarks), LAMP_CSV.

#include <condition_variable>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "report/table.h"
#include "svc/service.h"
#include "util/json.h"
#include "util/timer.h"

using namespace lamp;

namespace {

struct LatencyRow {
  std::string bench;
  std::string method;
  double coldMs = 0.0;
  double warmMs = 0.0;
  double speedup = 0.0;
};

struct ThroughputRow {
  int workers = 1;
  int requests = 0;
  double coldSeconds = 0.0;
  double warmSeconds = 0.0;
};

std::string requestLine(const std::string& id, const std::string& bench,
                        const std::string& method, double timeLimit,
                        double tcpNs, bool paperScale) {
  std::ostringstream os;
  os << "{\"id\":\"" << id << "\",\"benchmark\":\"" << bench
     << "\",\"method\":\"" << method
     << "\",\"options\":{\"timeLimitSeconds\":" << timeLimit
     << ",\"tcpNs\":" << tcpNs << "}";
  if (paperScale) os << ",\"paperScale\":true";
  os << "}";
  return os.str();
}

double timedCall(svc::Service& service, const std::string& line) {
  util::Stopwatch sw;
  const std::string resp = service.call(line);
  const double ms = sw.seconds() * 1000.0;
  const auto doc = util::Json::parse(resp);
  if (!doc || doc->find("ok") == nullptr || !doc->find("ok")->asBool()) {
    std::cerr << "[micro_svc] request failed: " << resp.substr(0, 200) << "\n";
    std::exit(1);
  }
  return ms;
}

/// Pushes all `lines` through the service concurrently and returns the
/// wall-clock seconds until every response arrived.
double timedBurst(svc::Service& service, const std::vector<std::string>& lines) {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  util::Stopwatch sw;
  for (const std::string& line : lines) {
    service.submit(line, [&](std::string) {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done == lines.size(); });
  return sw.seconds();
}

}  // namespace

int main() {
  const auto scale = bench::envScale();
  const bool paperScale = scale == workloads::Scale::Paper;
  const double timeLimit = bench::envTimeLimit(60.0);

  // --- cold vs warm latency --------------------------------------------------
  // GFMUL (small, LUT-dominated) and RS (the paper's running example)
  // by default; LAMP_FILTER substitutes its own list.
  std::vector<std::string> latencyBenchmarks = {"GFMUL", "RS"};
  if (const char* f = std::getenv("LAMP_FILTER")) {
    latencyBenchmarks.clear();
    std::string name;
    for (std::istringstream in(f); std::getline(in, name, ',');) {
      if (!name.empty()) latencyBenchmarks.push_back(name);
    }
  }

  report::Table latencyTable(
      {"Bench", "Method", "Cold(ms)", "Warm(ms)", "Speedup"});
  std::vector<LatencyRow> latencyRows;
  {
    svc::ServiceOptions so;
    so.workers = 1;
    svc::Service service(so);
    for (const std::string& bench : latencyBenchmarks) {
      for (const char* method : {"map", "base"}) {
        const std::string line = requestLine("lat-" + bench + "-" + method,
                                             bench, method, timeLimit, 10.0,
                                             paperScale);
        std::cerr << "[micro_svc] latency " << bench << "/" << method
                  << " cold...\n";
        LatencyRow row;
        row.bench = bench;
        row.method = method;
        row.coldMs = timedCall(service, line);
        row.warmMs = timedCall(service, line);  // exact cache hit
        row.speedup = row.warmMs > 0 ? row.coldMs / row.warmMs : 0.0;
        latencyRows.push_back(row);
        latencyTable.addRow({row.bench, row.method,
                             report::fixed(row.coldMs, 2),
                             report::fixed(row.warmMs, 3),
                             report::fixed(row.speedup, 1)});
      }
    }
  }

  // --- queue throughput ------------------------------------------------------
  // 24 distinct short requests (tcpNs sweep over three small benchmarks)
  // pushed through the bounded queue at 1/4/8 workers: the cold pass
  // measures solver throughput, the warm pass measures the service
  // overhead floor (parse + hash + cache lookup + render).
  std::vector<std::string> burst;
  {
    int n = 0;
    for (const char* bench : {"CLZ", "XORR", "GFMUL"}) {
      for (int i = 0; i < 8; ++i) {
        burst.push_back(requestLine("tp-" + std::to_string(n++), bench, "map",
                                    std::min(timeLimit, 10.0),
                                    10.0 + 0.5 * i, paperScale));
      }
    }
  }

  report::Table throughputTable(
      {"Workers", "Requests", "Cold(s)", "Cold(rps)", "Warm(s)", "Warm(rps)"});
  std::vector<ThroughputRow> throughputRows;
  for (const int workers : {1, 4, 8}) {
    std::cerr << "[micro_svc] throughput @ " << workers << " worker(s)...\n";
    svc::ServiceOptions so;
    so.workers = workers;
    so.queueCap = static_cast<int>(burst.size());
    svc::Service service(so);
    ThroughputRow row;
    row.workers = workers;
    row.requests = static_cast<int>(burst.size());
    row.coldSeconds = timedBurst(service, burst);
    row.warmSeconds = timedBurst(service, burst);
    throughputRows.push_back(row);
    throughputTable.addRow(
        {std::to_string(row.workers), std::to_string(row.requests),
         report::fixed(row.coldSeconds, 2),
         report::fixed(row.requests / row.coldSeconds, 2),
         report::fixed(row.warmSeconds, 3),
         report::fixed(row.requests / row.warmSeconds, 1)});
  }

  if (bench::envCsv()) {
    latencyTable.printCsv(std::cout);
    throughputTable.printCsv(std::cout);
  } else {
    latencyTable.print(std::cout);
    std::cout << "\n";
    throughputTable.print(std::cout);
  }

  const std::string jsonPath = bench::outputPath("BENCH_svc.json");
  std::ofstream out(jsonPath);
  out << "{\n  \"latency\": [\n";
  for (std::size_t i = 0; i < latencyRows.size(); ++i) {
    const LatencyRow& r = latencyRows[i];
    out << "    {\"bench\": \"" << r.bench << "\", \"method\": \"" << r.method
        << "\", \"cold_ms\": " << r.coldMs << ", \"warm_ms\": " << r.warmMs
        << ", \"speedup\": " << r.speedup << "}"
        << (i + 1 < latencyRows.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"throughput\": [\n";
  for (std::size_t i = 0; i < throughputRows.size(); ++i) {
    const ThroughputRow& r = throughputRows[i];
    out << "    {\"workers\": " << r.workers
        << ", \"requests\": " << r.requests << ", \"cold_s\": " << r.coldSeconds
        << ", \"cold_rps\": " << r.requests / r.coldSeconds
        << ", \"warm_s\": " << r.warmSeconds
        << ", \"warm_rps\": " << r.requests / r.warmSeconds << "}"
        << (i + 1 < throughputRows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "\nWrote " << jsonPath << " (" << latencyRows.size()
            << " latency rows, " << throughputRows.size()
            << " throughput rows)\n";
  return 0;
}
