// Quickstart: build a small kernel with the GraphBuilder, enumerate
// word-level cuts, run mapping-aware modulo scheduling, and inspect the
// result. Mirrors the README's 5-minute tour.

#include <iostream>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "map/area.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

using namespace lamp;

int main() {
  // 1. Describe one iteration of a pipelined loop: a running parity
  //    accumulator over two inputs (note the loop-carried .prev(1)).
  ir::GraphBuilder b("quickstart");
  ir::Value a = b.input("a", 16);
  ir::Value c = b.input("c", 16);
  ir::Value acc = b.placeholder(16, "acc");
  ir::Value mixed = b.bxor(b.bxor(a, c), b.bnot(b.band(a, c)), "mixed");
  ir::Value next = b.bxor(mixed, acc.prev(1), "acc_next");
  b.bindPlaceholder(acc, next);
  b.output(next, "parity");
  const ir::Graph g = ir::compact(b.graph());

  if (const auto diag = ir::verify(g)) {
    std::cerr << "graph error: " << *diag << "\n";
    return 1;
  }
  std::cout << "Built '" << g.name() << "' with " << g.size() << " nodes\n";

  // 2. Enumerate K-feasible word-level cuts (Algorithm 1 of the paper).
  const cut::CutDatabase cuts = cut::enumerateCuts(g);
  std::cout << "Enumerated " << cuts.totalCuts << " cuts (K = 4)\n";

  // 3. Schedule: SDC baseline for the latency bound, then the
  //    mapping-aware MILP (Section 3.2).
  const sched::DelayModel delays;
  const auto sdc = sched::sdcSchedule(g, cut::trivialCuts(g), delays, {});
  if (!sdc.success) {
    std::cerr << "SDC failed: " << sdc.error << "\n";
    return 1;
  }
  sched::MilpSchedOptions mo;
  mo.maxLatency = sdc.schedule.latency(g) + 1;
  mo.warmStart = &sdc.schedule;
  mo.solver.timeLimitSeconds = 10;
  const auto milp = sched::milpSchedule(g, cuts, delays, mo);
  if (!milp.success) {
    std::cerr << "MILP failed: " << milp.error << "\n";
    return 1;
  }

  // 4. Inspect: cycles, selected cuts, and the implementation report.
  std::cout << "\nSchedule (II = 1, Tcp = 10 ns):\n";
  for (ir::NodeId v = 0; v < g.size(); ++v) {
    const ir::Node& n = g.node(v);
    if (n.kind == ir::OpKind::Const) continue;
    std::cout << "  " << ir::opKindName(n.kind)
              << (n.name.empty() ? "" : " '" + n.name + "'") << " -> cycle "
              << milp.schedule.cycle[v];
    if (milp.schedule.isRoot(v) &&
        !cuts.at(v).cuts.empty()) {
      std::cout << ", root of cut "
                << cuts.at(v).cuts[milp.schedule.selectedCut[v]].str(g);
    } else if (ir::isLutMappable(n.kind)) {
      std::cout << ", absorbed into a consumer's LUT";
    }
    std::cout << "\n";
  }

  const map::AreaReport rep = map::evaluate(g, milp.schedule, delays);
  std::cout << "\nImplementation: " << rep.luts << " LUTs, " << rep.ffs
            << " FF bits, " << rep.stages << " pipeline stage(s), CP "
            << rep.cpNs << " ns\n";
  return 0;
}
