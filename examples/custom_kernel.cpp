// Bring-your-own kernel: a population-count + threshold detector built
// directly with the GraphBuilder, scheduled with the scalable greedy
// mapping-aware heuristic (the paper's future work) and with the exact
// MILP, comparing quality and runtime.

#include <chrono>
#include <iostream>

#include "cut/cut.h"
#include "ir/builder.h"
#include "ir/passes.h"
#include "map/area.h"
#include "sched/greedy.h"
#include "sched/milp_sched.h"
#include "sched/sdc.h"

using namespace lamp;

namespace {

ir::Graph popcountKernel(int bits) {
  ir::GraphBuilder b("popcount" + std::to_string(bits));
  ir::Value x = b.input("x", static_cast<std::uint16_t>(bits));
  std::vector<ir::Value> layer;
  for (int i = 0; i < bits; ++i) layer.push_back(b.bit(x, i));
  std::uint16_t w = 1;
  while (layer.size() > 1) {
    ++w;
    std::vector<ir::Value> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(b.add(b.zext(layer[i], w), b.zext(layer[i + 1], w)));
    }
    if (layer.size() % 2) next.push_back(b.zext(layer.back(), w));
    layer = std::move(next);
  }
  b.output(layer[0], "count");
  ir::Value threshold = b.constant(static_cast<std::uint64_t>(bits / 2), w);
  b.output(b.gt(layer[0], threshold, false), "majority");
  return ir::compact(b.graph());
}

}  // namespace

int main() {
  const ir::Graph g = popcountKernel(32);
  std::cout << "Custom kernel: " << g.name() << " (" << g.size()
            << " nodes — narrow adders, prime LUT-packing territory)\n\n";

  const sched::DelayModel delays;
  const cut::CutDatabase mapped = cut::enumerateCuts(g);
  const cut::CutDatabase trivial = cut::trivialCuts(g);

  // Baseline: additive-delay SDC (what a commercial tool would do).
  const auto sdc = sched::sdcSchedule(g, trivial, delays, {});
  if (!sdc.success) {
    std::cerr << "SDC failed: " << sdc.error << "\n";
    return 1;
  }
  const auto sdcRep = map::evaluate(g, sdc.schedule, delays);
  std::cout << "SDC baseline:   " << sdcRep.luts << " LUTs, " << sdcRep.ffs
            << " FFs, " << sdcRep.stages << " stage(s)\n";

  // Scalable mapping-aware heuristic: milliseconds.
  const auto t0 = std::chrono::steady_clock::now();
  const auto greedy = sched::greedyMapSchedule(g, mapped, delays, {});
  const double greedyMs =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  if (greedy.success) {
    const auto rep = map::evaluate(g, greedy.schedule, delays);
    std::cout << "GreedyMap:      " << rep.luts << " LUTs, " << rep.ffs
              << " FFs, " << rep.stages << " stage(s)   [" << greedyMs
              << " ms]\n";
  }

  // Exact MILP: seconds, provably area-efficient within the model.
  sched::MilpSchedOptions mo;
  mo.maxLatency = sdc.schedule.latency(g) + 1;
  mo.warmStart = greedy.success ? &greedy.schedule : &sdc.schedule;
  mo.warmStartSelectsCuts = greedy.success;
  mo.solver.timeLimitSeconds = 20;
  const auto milp = sched::milpSchedule(g, mapped, delays, mo);
  if (milp.success) {
    const auto rep = map::evaluate(g, milp.schedule, delays);
    std::cout << "MILP-map:       " << rep.luts << " LUTs, " << rep.ffs
              << " FFs, " << rep.stages << " stage(s)   ["
              << milp.solveSeconds << " s, "
              << lp::solveStatusName(milp.status) << "]\n";
  } else {
    std::cout << "MILP failed: " << milp.error << "\n";
  }
  return 0;
}
