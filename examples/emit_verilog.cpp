// From C++-built dataflow to synthesizable RTL: schedules the GFMUL
// kernel mapping-aware and prints the generated Verilog pipeline.
// Usage: emit_verilog [benchmark-name]   (default GFMUL)

#include <iostream>

#include "flow/flow.h"
#include "rtl/verilog.h"

using namespace lamp;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "GFMUL";
  for (const auto& bm : workloads::allBenchmarks(workloads::Scale::Default)) {
    if (bm.name != which) continue;
    flow::FlowOptions opts;
    opts.solverTimeLimitSeconds = 10;
    const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
    if (!r.success) {
      std::cerr << "flow failed: " << r.error << "\n";
      return 1;
    }
    std::cerr << "// " << bm.name << ": " << r.area.luts << " LUTs, "
              << r.area.ffs << " FFs, " << r.area.stages << " stage(s)\n";
    rtl::emitVerilog(std::cout, bm.graph, r.schedule, opts.delays);
    return 0;
  }
  std::cerr << "unknown benchmark '" << which << "'\n";
  return 1;
}
