// Pipelining a kernel with black boxes and resource constraints: the AES
// round column uses S-box ROM reads that compete for memory ports. The
// example sweeps the available port count and shows how the modulo
// reservation shifts the schedule (Eq. 14 of the paper).

#include <iostream>

#include "flow/flow.h"
#include "report/table.h"

using namespace lamp;

int main() {
  workloads::Benchmark bm = workloads::makeAes(workloads::Scale::Default);
  std::cout << "Benchmark: " << bm.name << " (" << bm.graph.size()
            << " nodes), 4 S-box reads per iteration\n\n";

  report::Table t({"S-box ports", "II", "Stages", "LUT", "FF", "status"});
  for (const int ports : {4, 2, 1}) {
    bm.resources[ir::ResourceClass::MemPortA] = ports;
    flow::FlowOptions opts;
    opts.solverTimeLimitSeconds = 10;
    const flow::FlowResult r = flow::runFlow(bm, flow::Method::MilpMap, opts);
    if (!r.success) {
      t.addRow({std::to_string(ports), "-", "-", "-", "-",
                "FAILED: " + r.error});
      continue;
    }
    t.addRow({std::to_string(ports), std::to_string(r.schedule.ii),
              std::to_string(r.area.stages), std::to_string(r.area.luts),
              std::to_string(r.area.ffs),
              std::string(lp::solveStatusName(r.status)) +
                  (r.functionallyVerified ? " ok" : "")});
  }
  t.print(std::cout);
  std::cout << "\nWith fewer ROM ports the scheduler must either spread the "
               "four reads across\nmodulo slots (larger II) — throughput "
               "traded for BRAM ports.\n";
  return 0;
}
