// The paper's running example end to end: the Reed-Solomon decoder
// syndrome kernel with loop-carried accumulators. Schedules it three
// ways, validates each schedule, streams 16 symbols through the
// cycle-accurate pipeline simulator, and cross-checks against the
// untimed interpreter.

#include <iostream>

#include "flow/flow.h"
#include "report/table.h"
#include "sim/pipeline_sim.h"

using namespace lamp;

int main() {
  const workloads::Benchmark bm = workloads::makeRs(workloads::Scale::Default);
  std::cout << "Benchmark: " << bm.name << " - " << bm.description << " ("
            << bm.graph.size() << " nodes)\n\n";

  flow::FlowOptions opts;
  opts.solverTimeLimitSeconds = 10;
  const flow::BenchmarkResults r = flow::runAllMethods(bm, opts);

  report::Table t({"Method", "II", "Stages", "LUT", "FF", "CP(ns)",
                   "verified"});
  for (const flow::FlowResult* f : {&r.hls, &r.milpBase, &r.milpMap}) {
    if (!f->success) {
      std::cout << methodName(f->method) << " failed: " << f->error << "\n";
      continue;
    }
    t.addRow({std::string(methodName(f->method)),
              std::to_string(f->schedule.ii), std::to_string(f->area.stages),
              std::to_string(f->area.luts), std::to_string(f->area.ffs),
              report::fixed(f->area.cpNs),
              f->functionallyVerified ? "yes" : "NO"});
  }
  t.print(std::cout);

  // Stream a short codeword through the mapping-aware pipeline and print
  // the syndromes as they emerge, one result per II cycles.
  std::cout << "\nStreaming 16 symbols through the MILP-map pipeline:\n";
  std::vector<sim::InputFrame> frames;
  for (std::uint64_t k = 0; k < 16; ++k) frames.push_back(bm.makeInputs(k, 1));
  const auto run = sim::runPipeline(bm.graph, r.milpMap.schedule,
                                    flow::FlowOptions{}.delays, frames);
  if (!run.ok) {
    std::cout << "pipeline error: " << run.error << "\n";
    return 1;
  }
  const auto outs = bm.graph.outputs();
  for (std::size_t k = 0; k < frames.size(); k += 5) {
    std::cout << "  iter " << k << ": syndromes";
    for (std::size_t j = 0; j + 1 < outs.size(); ++j) {
      std::cout << " 0x" << std::hex << run.outputs[k].at(outs[j]) << std::dec;
    }
    std::cout << " err=" << run.outputs[k].at(outs.back()) << "\n";
  }
  std::cout << "\nPeak live register bits observed: " << run.peakLiveBits
            << " (static count: " << r.milpMap.area.ffs << ")\n";
  return 0;
}
